// NP-hardness: demonstrate Theorem 1's reduction from balanced
// bipartite clique to the workflow difference problem on the 4-node
// non-SP specification, and show that the SP recognizer rejects that
// specification — the boundary of tractability.
//
//	go run ./examples/nphardness
package main

import (
	"fmt"
	"log"

	"repro/internal/naive"
	"repro/internal/spgraph"
)

func main() {
	fmt.Println("The forbidden minor for directed acyclic SP-graphs:")
	gs := spgraph.ForbiddenMinor()
	fmt.Println(gs)
	if spgraph.IsSP(gs) {
		log.Fatal("the N-graph must not be series-parallel")
	}
	fmt.Println("=> not series-parallel; differencing over it is NP-hard (Theorem 1)")
	fmt.Println()

	// Encode a bipartite clique question: does H (4x4) contain a 2x2
	// biclique?
	ci := &naive.CliqueInstance{
		N: 4,
		Adj: [][]bool{
			{true, true, false, false},
			{true, true, true, false},
			{false, false, true, true},
			{false, true, false, true},
		},
		L: 2,
	}
	red, err := naive.BuildCliqueReduction(ci)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bipartite graph H: n=%d, m=%d edges; asking for a %dx%d clique\n",
		ci.N, ci.NumEdges(), ci.L, ci.L)
	fmt.Printf("encoded as two runs of the 4-node specification:\n")
	fmt.Printf("  R1: %d nodes, %d edges (encodes H)\n", red.R1.NumNodes(), red.R1.NumEdges())
	fmt.Printf("  R2: %d nodes, %d edges (encodes the complete %dx%d graph)\n",
		red.R2.NumNodes(), red.R2.NumEdges(), ci.L, ci.L)
	fmt.Printf("threshold Γ = (m − l²) + 4(n − l) = %d\n\n", red.Gamma)

	if ci.HasClique() {
		fmt.Println("H contains a 2x2 biclique (found by brute force),")
		fmt.Printf("so an edit script of cost exactly Γ = %d exists:\n", red.Gamma)
		fmt.Printf("  canonical script over clique {x0,x1}x{y0,y1} costs %d\n",
			red.CliqueEditCost(ci, []int{0, 1}, []int{0, 1}))
	} else {
		fmt.Println("H contains no 2x2 biclique; every edit script costs at least Γ+2.")
	}
	fmt.Println()
	fmt.Println("For SP specifications with well-nested forks and loops, the library")
	fmt.Println("instead solves differencing exactly in O(|E|³) time (Sections IV-VI).")
}
