// Cost models: reproduce the Section VIII-D observation that the
// minimum-cost edit script under one cost model can be far from
// optimal under another, using the Fig. 17(b) specification (a fork
// over ten parallel paths of sharply different lengths).
//
//	go run ./examples/costmodels
package main

import (
	"fmt"
	"log"
	"math/rand"

	provdiff "repro"
	"repro/internal/core"
	"repro/internal/gen"
)

func main() {
	sp, err := gen.Fig17bSpec(nil) // i-th path has length i²
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 17(b) specification: %d edges, fork over 10 paths of lengths 1,4,9,...,100\n",
		sp.G.NumEdges())

	rng := rand.New(rand.NewSource(42))
	params := provdiff.RunParams{ProbP: 0.5, ProbF: 1, MaxF: 5, MaxL: 1}
	r1, err := provdiff.RandomRun(sp, params, rng)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := provdiff.RandomRun(sp, params, rng)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two runs with 5 fork copies each: %d and %d edges\n\n", r1.NumEdges(), r2.NumEdges())

	unit := provdiff.Unit{}
	length := provdiff.Length{}
	optUnit, err := provdiff.Distance(r1, r2, unit)
	if err != nil {
		log.Fatal(err)
	}
	optLen, err := provdiff.Distance(r1, r2, length)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal distance under unit cost:   %g\n", optUnit)
	fmt.Printf("optimal distance under length cost: %g\n\n", optLen)

	fmt.Println("eps   script cost under unit (err%)   under length (err%)")
	for _, eps := range []float64{0, 0.25, 0.5, 0.75, 1} {
		res, err := provdiff.Diff(r1, r2, provdiff.Power{Epsilon: eps})
		if err != nil {
			log.Fatal(err)
		}
		script, _, err := res.Script()
		if err != nil {
			log.Fatal(err)
		}
		cu := core.EvaluateScript(script, unit)
		cl := core.EvaluateScript(script, length)
		fmt.Printf("%.2f  %8g (%5.1f%%)            %8g (%5.1f%%)\n",
			eps, cu, pct(cu, optUnit), cl, pct(cl, optLen))
	}
	fmt.Println("\nThe unit-optimal script matches fork copies by shared path count and")
	fmt.Println("wastes length; the length-optimal script preserves long paths and")
	fmt.Println("wastes operations — exactly the trade-off of Fig. 16.")
}

func pct(got, opt float64) float64 {
	if opt == 0 {
		return 0
	}
	return (got - opt) / opt * 100
}
