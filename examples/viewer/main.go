// Viewer: generate a standalone PDiffView HTML page for the paper's
// Fig. 2 worked example (runs R1 and R2, edit distance 4).
//
//	go run ./examples/viewer [out.html]
package main

import (
	"fmt"
	"log"
	"os"

	provdiff "repro"
	"repro/internal/fixtures"
)

func main() {
	out := "pdiffview-fig2.html"
	if len(os.Args) > 1 {
		out = os.Args[1]
	}
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)

	dv, err := provdiff.NewDiffView(r1, r2, provdiff.Unit{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dv.Summary())
	if dv.Result.Distance != 4 {
		log.Fatalf("expected the paper's distance 4, got %g", dv.Result.Distance)
	}
	page := dv.HTML("Fig. 2: R1 vs R2 (edit distance 4)")
	if err := os.WriteFile(out, []byte(page), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s — open it in a browser to step through the diff\n", out)
}
