// Quickstart: build a small SP-workflow specification, execute two
// runs that fork differently, and difference them.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	provdiff "repro"
	"repro/internal/sptree"
)

// nCopies executes every parallel branch and replicates each fork n
// times.
type nCopies struct{ n int }

func (d nCopies) ParallelSubset(p *sptree.Node) []int {
	all := make([]int, len(p.Children))
	for i := range all {
		all[i] = i
	}
	return all
}
func (d nCopies) ForkCopies(*sptree.Node) int     { return d.n }
func (d nCopies) LoopIterations(*sptree.Node) int { return 1 }

func main() {
	// A pipeline: fetch -> align -> (blastA | blastB) -> report,
	// where the align..collect segment may fork over input sets.
	g := provdiff.NewGraph()
	for _, m := range []string{"fetch", "align", "blastA", "blastB", "collect", "report"} {
		g.MustAddNode(provdiff.NodeID(m), m)
	}
	g.MustAddEdge("fetch", "align")
	eA := g.MustAddEdge("align", "blastA")
	eA2 := g.MustAddEdge("blastA", "collect")
	eB := g.MustAddEdge("align", "blastB")
	eB2 := g.MustAddEdge("blastB", "collect")
	g.MustAddEdge("collect", "report")

	// Each BLAST branch may fork over the sequences it receives.
	forks := []provdiff.EdgeSet{{eA, eA2}, {eB, eB2}}
	sp, err := provdiff.NewSpec(g, forks, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Two provenance records of the same experiment: yesterday each
	// branch processed one batch, today three batches each.
	small, err := provdiff.Execute(sp, nCopies{n: 1})
	if err != nil {
		log.Fatal(err)
	}
	big, err := provdiff.Execute(sp, nCopies{n: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 1: %d edges, run 2: %d edges\n", small.NumEdges(), big.NumEdges())

	res, err := provdiff.Diff(small, big, provdiff.Unit{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edit distance (unit cost): %g\n", res.Distance)

	script, _, err := res.Script()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("minimum-cost edit script:")
	fmt.Print(script.String())

	// The same pair under the length cost model.
	dLen, err := provdiff.Distance(small, big, provdiff.Length{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("edit distance (length cost): %g\n", dLen)
}
