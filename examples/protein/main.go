// Protein annotation: difference two provenance records of the Fig. 1
// protein-annotation workflow — the motivating example of the paper.
// One run converges after a single reciprocal-best-hit iteration and
// annotates two domain sequences; the other loops twice and annotates
// three.
//
//	go run ./examples/protein
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"

	provdiff "repro"
	"repro/internal/sptree"
)

// labDecider drives the workflow like a scientist would: loop the
// BLAST phase `iters` times, fork the per-sequence annotation phase
// `seqs` times, and take every optional branch.
type labDecider struct {
	iters, seqs int
	rng         *rand.Rand
}

func (d labDecider) ParallelSubset(p *sptree.Node) []int {
	all := make([]int, len(p.Children))
	for i := range all {
		all[i] = i
	}
	return all
}

func (d labDecider) ForkCopies(f *sptree.Node) int {
	// The big per-sequence fork spans collectTop1&Compare .. export.
	if f.Src == "collectTop1&Compare" {
		return d.seqs
	}
	// BLAST forks replicate per database hit.
	return 1 + d.rng.Intn(2)
}

func (d labDecider) LoopIterations(*sptree.Node) int { return d.iters }

func main() {
	sp, err := provdiff.ProteinAnnotation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("specification: %d modules, %d links, %d forks, %d loops\n",
		sp.G.NumNodes(), sp.G.NumEdges(), len(sp.Forks), len(sp.Loops))

	monday, err := provdiff.Execute(sp, labDecider{iters: 1, seqs: 2, rng: rand.New(rand.NewSource(1))})
	if err != nil {
		log.Fatal(err)
	}
	friday, err := provdiff.Execute(sp, labDecider{iters: 2, seqs: 3, rng: rand.New(rand.NewSource(2))})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Monday's run:  %d steps, %d data links\n", monday.NumNodes(), monday.NumEdges())
	fmt.Printf("Friday's run:  %d steps, %d data links\n", friday.NumNodes(), friday.NumEdges())

	dv, err := provdiff.NewDiffView(monday, friday, provdiff.Unit{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(dv.Summary())

	// Zoom: which parts of the workflow changed?
	fmt.Println()
	fmt.Print(dv.ClusterReport(2))

	// Persist both provenance records as XML, as the prototype does.
	for name, r := range map[string]*provdiff.Run{"monday.xml": monday, "friday.xml": friday} {
		f, err := os.CreateTemp("", name)
		if err != nil {
			log.Fatal(err)
		}
		if err := provdiff.EncodeRun(f, r, name); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s\n", f.Name())
		f.Close()
	}
}
