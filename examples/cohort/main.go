// Cohort analysis: a scientist runs the protein-annotation experiment
// eight times under two protocols and wants to see which executions
// behave alike. Pairwise provenance differencing yields a distance
// matrix; clustering recovers the two protocols; data annotations
// explain a residual difference between two control-flow-identical
// runs.
//
//	go run ./examples/cohort
package main

import (
	"fmt"
	"log"
	"math/rand"

	provdiff "repro"
)

func main() {
	sp, err := provdiff.ProteinAnnotation()
	if err != nil {
		log.Fatal(err)
	}

	// Protocol A: shallow search (few fork copies, single iteration).
	// Protocol B: exhaustive search (more copies, loops twice).
	protoA := provdiff.RunParams{ProbP: 1, ProbF: 0.3, MaxF: 2, ProbL: 0, MaxL: 1}
	protoB := provdiff.RunParams{ProbP: 1, ProbF: 0.9, MaxF: 4, ProbL: 1, MaxL: 2}

	rng := rand.New(rand.NewSource(7))
	var runs []*provdiff.Run
	var names []string
	for i := 0; i < 4; i++ {
		r, err := provdiff.RandomRun(sp, protoA, rng)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, r)
		names = append(names, fmt.Sprintf("shallow-%d", i+1))
	}
	for i := 0; i < 4; i++ {
		r, err := provdiff.RandomRun(sp, protoB, rng)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, r)
		names = append(names, fmt.Sprintf("deep-%d", i+1))
	}

	mx, err := provdiff.DistanceMatrix(runs, names, provdiff.Unit{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("pairwise edit distances (unit cost):")
	fmt.Println(mx)

	fmt.Printf("medoid (most typical run):   %s\n", names[mx.Medoid()])
	fmt.Printf("outlier (most unusual run):  %s\n\n", names[mx.Outlier()])

	root := mx.Cluster()
	fmt.Println("hierarchical clustering (UPGMA):")
	fmt.Print(root.Render())

	// k-medoids recovers the two protocols as flat clusters, each
	// summarized by its medoid — the most representative execution.
	cl, err := provdiff.KMedoids(mx.D, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nk-medoids (k=2, silhouette %.2f):\n", cl.Silhouette)
	for c := 0; c < cl.K; c++ {
		fmt.Printf("  cluster around %s:", names[cl.Medoids[c]])
		for i, a := range cl.Assign {
			if a == c {
				fmt.Printf(" %s", names[i])
			}
		}
		fmt.Println()
	}

	// knn outlier scores: which execution behaves least like any
	// neighborhood of the cohort?
	scores, err := provdiff.Outliers(mx.D, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmost anomalous run: %s (knn score %.2f)\n", names[scores[0].Index], scores[0].Score)

	// A data-level difference between the two most similar runs.
	i := mx.Medoid()
	j, d := mx.Nearest(i)
	fmt.Printf("\nclosest pair: %s and %s (control-flow distance %g)\n", names[i], names[j], d)
	a1 := provdiff.NewAnnotations()
	a2 := provdiff.NewAnnotations()
	// Annotate the shared first module with the protocol parameters.
	for nid, lbl := range map[string]string{"1a": "getProteinSeq"} {
		_ = lbl
		a1.SetParam(provdiff.NodeID(nid), "evalue", "1e-5")
		a2.SetParam(provdiff.NodeID(nid), "evalue", "1e-8")
	}
	res, err := provdiff.Diff(runs[i], runs[j], provdiff.Unit{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndata differences on the matched provenance:")
	fmt.Print(provdiff.DataDiff(res, a1, a2))
}
