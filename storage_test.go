package provdiff

// Tests for the public storage surface: the backend constructors, the
// sharded composition, and OpenRepository — the same calls an embedder
// makes to put the store on a non-default backend.

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// seedStorageFixture returns a catalog spec and two runs for it.
func seedStorageFixture(t *testing.T) (sp *Spec, r1, r2 *Run) {
	t.Helper()
	sp, err := Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	params := RunParams{ProbP: 0.8, ProbF: 0.5, MaxF: 3, ProbL: 0.5, MaxL: 2}
	if r1, err = RandomRun(sp, params, rng); err != nil {
		t.Fatal(err)
	}
	if r2, err = RandomRun(sp, params, rng); err != nil {
		t.Fatal(err)
	}
	return sp, r1, r2
}

// roundTrip saves a spec and two runs through st and diffs them back.
func roundTrip(t *testing.T, st *Store, sp *Spec, r1, r2 *Run) {
	t.Helper()
	if err := st.SaveSpec("pa", sp); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRun("pa", "r1", r1); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRun("pa", "r2", r2); err != nil {
		t.Fatal(err)
	}
	res, err := st.Diff("pa", "r1", "r2", Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < 0 {
		t.Fatalf("negative distance %g", res.Distance)
	}
}

func TestStorageBackendFacade(t *testing.T) {
	sp, r1, r2 := seedStorageFixture(t)

	t.Run("fs", func(t *testing.T) {
		be, err := NewFSBackend(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st := OpenStoreBackend(be)
		defer st.Close()
		roundTrip(t, st, sp, r1, r2)
		if st.BackendKind() != "fs" {
			t.Fatalf("kind = %q", st.BackendKind())
		}
	})

	t.Run("memory", func(t *testing.T) {
		st := OpenStoreBackend(NewMemoryBackend())
		defer st.Close()
		roundTrip(t, st, sp, r1, r2)
	})

	t.Run("object", func(t *testing.T) {
		be, err := NewObjectBackend(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		st := OpenStoreBackend(be)
		defer st.Close()
		roundTrip(t, st, sp, r1, r2)
	})

	t.Run("by-kind", func(t *testing.T) {
		for _, kind := range []string{"fs", "memory", "object"} {
			be, err := NewStorageBackend(kind, t.TempDir())
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if be.Kind() != kind {
				t.Fatalf("kind = %q, want %q", be.Kind(), kind)
			}
			if err := be.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := NewStorageBackend("s3", t.TempDir()); err == nil {
			t.Fatal("unknown kind accepted")
		}
	})
}

func TestShardedStorageFacade(t *testing.T) {
	sp, r1, r2 := seedStorageFixture(t)
	be, err := NewShardedBackend(NewMemoryBackend(), NewMemoryBackend())
	if err != nil {
		t.Fatal(err)
	}
	st := OpenStoreBackend(be)
	defer st.Close()
	roundTrip(t, st, sp, r1, r2)

	st2, err := OpenStoreSharded(NewMemoryBackend(), NewMemoryBackend(), NewMemoryBackend())
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	roundTrip(t, st2, sp, r1, r2)
	stats := st2.ShardStats()
	if len(stats) != 3 {
		t.Fatalf("shard stats = %d entries, want 3", len(stats))
	}
	var specs int
	for _, s := range stats {
		specs += s.Specs
	}
	if specs != 1 {
		t.Fatalf("spec placed %d times across shards, want once", specs)
	}
}

func TestOpenRepositoryFacade(t *testing.T) {
	sp, r1, r2 := seedStorageFixture(t)
	dir := t.TempDir()
	st, err := OpenRepository(dir, "object", 2)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, st, sp, r1, r2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen over the shard directories created above.
	again, err := OpenRepository(dir, "object", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer again.Close()
	names, err := again.ListRuns("pa")
	if err != nil || len(names) != 2 {
		t.Fatalf("reopen: runs=%v err=%v", names, err)
	}
	// Single-backend path.
	st1, err := OpenRepository(filepath.Join(dir, "single"), "fs", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer st1.Close()
	roundTrip(t, st1, sp, r1, r2)
}
