package provdiff

import (
	"repro/internal/graph"
	"repro/internal/view"
	"repro/internal/wfrun"
)

// Visualization (the PDiffView prototype, Section VII).
type (
	// DiffView bundles a diff with its script, edge classification,
	// cluster rollups and HTML/SVG rendering.
	DiffView = view.Diff
	// EdgeStatus classifies run edges as kept/deleted/inserted.
	EdgeStatus = view.Status
	// ClusterChange is a per-composite-module change rollup.
	ClusterChange = view.ClusterChange
)

// Edge status values.
const (
	EdgeKept     = view.Kept
	EdgeDeleted  = view.Deleted
	EdgeInserted = view.Inserted
	EdgeImplicit = view.Implicit
)

// NewDiffView computes the diff, edit script and visualization data
// for a pair of runs.
func NewDiffView(r1, r2 *Run, m CostModel) (*DiffView, error) {
	return view.New(r1, r2, m)
}

// RenderSVG draws a run graph with diff-status edge coloring.
func RenderSVG(r *wfrun.Run, status map[graph.Edge]view.Status) string {
	return view.RenderSVG(r, status)
}
