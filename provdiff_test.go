package provdiff

// End-to-end tests through the public API only.

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildPipeline constructs the quickstart specification.
func buildPipeline(t testing.TB) *Spec {
	t.Helper()
	g := NewGraph()
	for _, m := range []string{"fetch", "align", "blastA", "blastB", "collect", "report"} {
		g.MustAddNode(NodeID(m), m)
	}
	g.MustAddEdge("fetch", "align")
	eA := g.MustAddEdge("align", "blastA")
	eA2 := g.MustAddEdge("blastA", "collect")
	eB := g.MustAddEdge("align", "blastB")
	eB2 := g.MustAddEdge("blastB", "collect")
	g.MustAddEdge("collect", "report")
	sp, err := NewSpec(g, []EdgeSet{{eA, eA2}, {eB, eB2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestPublicAPIEndToEnd(t *testing.T) {
	sp := buildPipeline(t)
	r1, err := Execute(sp, FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	r2, err := RandomRun(sp, RunParams{ProbP: 1, ProbF: 1, MaxF: 3, MaxL: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Diff(r1, r2, Unit{})
	if err != nil {
		t.Fatal(err)
	}
	script, _, err := res.Script()
	if err != nil {
		t.Fatal(err)
	}
	if script.TotalCost() != res.Distance {
		t.Fatalf("script cost %g != distance %g", script.TotalCost(), res.Distance)
	}
	// XML round trip through the facade.
	var bufS, bufR bytes.Buffer
	if err := EncodeSpec(&bufS, sp, "pipeline"); err != nil {
		t.Fatal(err)
	}
	sp2, err := DecodeSpec(&bufS)
	if err != nil {
		t.Fatal(err)
	}
	if err := EncodeRun(&bufR, r2, "r2"); err != nil {
		t.Fatal(err)
	}
	r2b, err := DecodeRun(&bufR, sp2)
	if err != nil {
		t.Fatal(err)
	}
	if r2b.NumEdges() != r2.NumEdges() {
		t.Fatal("run changed across XML round trip")
	}
	// Viewer.
	dv, err := NewDiffView(r1, r2, Length{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dv.HTML("t"), "<svg") {
		t.Fatal("viewer HTML missing SVG")
	}
}

func TestPublicCatalogAndGenerators(t *testing.T) {
	names := CatalogNames()
	if len(names) != 6 {
		t.Fatalf("catalog names = %v", names)
	}
	for _, n := range names {
		if _, err := Catalog(n); err != nil {
			t.Fatalf("%s: %v", n, err)
		}
	}
	rng := rand.New(rand.NewSource(2))
	sp, err := RandomSpec(SpecConfig{Edges: 30, SeriesRatio: 1, Forks: 2, Loops: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunWithTargetEdges(sp, 120, 0.15, RunParams{ProbP: 0.9, ProbF: 0.5, MaxF: 3, ProbL: 0.5, MaxL: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumEdges() < 60 {
		t.Fatalf("target-size run too small: %d", r.NumEdges())
	}
	pa, err := ProteinAnnotation()
	if err != nil {
		t.Fatal(err)
	}
	if pa.G.NumNodes() != 15 {
		t.Fatal("protein annotation workflow wrong size")
	}
}

func TestPublicDeriveRun(t *testing.T) {
	sp := buildPipeline(t)
	r, err := Execute(sp, FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := DeriveRun(sp, r.Graph, r.EdgeRefs())
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumEdges() != r.NumEdges() {
		t.Fatal("derive changed the run")
	}
}

func TestCheckMetricFacade(t *testing.T) {
	if err := CheckMetric(Power{Epsilon: 0.5}, 8, nil); err != nil {
		t.Fatal(err)
	}
	if err := CheckMetric(Power{Epsilon: 3}, 8, nil); err == nil {
		t.Fatal("superlinear power must fail the metric check")
	}
}

// TestQuickDistanceIsMetric is a property-based check over the public
// API: for random run triples of a random specification, the distance
// is a metric and bounded by full delete+insert.
func TestQuickDistanceIsMetric(t *testing.T) {
	sp := buildPipeline(t)
	property := func(seedA, seedB, seedC int64, modelPick uint8) bool {
		var m CostModel
		switch modelPick % 3 {
		case 0:
			m = Unit{}
		case 1:
			m = Length{}
		default:
			m = Power{Epsilon: 0.5}
		}
		mk := func(seed int64) *Run {
			rng := rand.New(rand.NewSource(seed))
			r, err := RandomRun(sp, RunParams{ProbP: 0.8, ProbF: 0.6, MaxF: 3, MaxL: 1}, rng)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		a, b, c := mk(seedA), mk(seedB), mk(seedC)
		dab, err := Distance(a, b, m)
		if err != nil {
			return false
		}
		dba, _ := Distance(b, a, m)
		dac, _ := Distance(a, c, m)
		dcb, _ := Distance(c, b, m)
		daa, _ := Distance(a, a, m)
		const eps = 1e-9
		if daa != 0 || dab < 0 {
			return false
		}
		if dab-dba > eps || dba-dab > eps {
			return false
		}
		return dab <= dac+dcb+eps
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickScriptRealizesDistance property-checks script extraction:
// cost equals distance and the target is reproduced.
func TestQuickScriptRealizesDistance(t *testing.T) {
	sp := buildPipeline(t)
	property := func(seedA, seedB int64) bool {
		mk := func(seed int64) *Run {
			rng := rand.New(rand.NewSource(seed))
			r, err := RandomRun(sp, RunParams{ProbP: 0.7, ProbF: 0.7, MaxF: 4, MaxL: 1}, rng)
			if err != nil {
				t.Fatal(err)
			}
			return r
		}
		a, b := mk(seedA), mk(seedB)
		res, err := Diff(a, b, Unit{})
		if err != nil {
			return false
		}
		script, _, err := res.Script()
		if err != nil {
			return false
		}
		return script.TotalCost() == res.Distance
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiffWithDataFacade(t *testing.T) {
	sp := buildPipeline(t)
	r1, err := Execute(sp, FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Execute(sp, FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := NewAnnotations(), NewAnnotations()
	for _, e := range r1.Graph.Edges() {
		a1.SetData(e, "v1")
	}
	for _, e := range r2.Graph.Edges() {
		a2.SetData(e, "v2")
	}
	res, err := DiffWithData(r1, r2, Unit{}, a1, a2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance <= 0 {
		t.Fatal("data penalty should make identical control flow non-zero")
	}
	rep := DataDiff(res, a1, a2)
	if len(rep.Data) == 0 {
		t.Fatal("data differences should be highlighted")
	}
}

// TestEvolutionFacade exercises the workflow-evolution surface end to
// end through the public API: mutate a spec, map the versions, project
// a run across, cross-diff, and round-trip the mapping through the
// binary codec.
func TestEvolutionFacade(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	v1, err := RandomSpec(SpecConfig{Edges: 12, SeriesRatio: 1, Forks: 1, Loops: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	muts, err := MutateSpec(v1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	v2 := muts[len(muts)-1].Spec
	m, err := SpecEvolve(v1, v2, DefaultEvolveCosts())
	if err != nil {
		t.Fatal(err)
	}
	if m.Cost <= 0 {
		t.Errorf("evolution mapping cost %g, want > 0", m.Cost)
	}
	r1, err := RandomRun(v1, DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RandomRun(v2, DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	projected, proj, err := ProjectRun(m, r1, Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if projected.Spec != v2 {
		t.Error("projection landed in the wrong version")
	}
	if proj.Cost() < 0 {
		t.Errorf("projection cost %g", proj.Cost())
	}
	res, err := CrossDiff(m, r1, r2, Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < res.EngineDistance {
		t.Errorf("cross distance %g below engine distance %g", res.Distance, res.EngineDistance)
	}
	// Identity mapping degenerates to the plain diff.
	r1b, err := RandomRun(v1, DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Distance(r1, r1b, Unit{})
	if err != nil {
		t.Fatal(err)
	}
	same, err := CrossDiff(IdentitySpecMapping(v1), r1, r1b, Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if same.Distance != plain {
		t.Errorf("identity cross distance %g != plain %g", same.Distance, plain)
	}
	// Binary round trip.
	frame, err := EncodeSpecMappingBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeSpecMappingBinary(frame, v1, v2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cost != m.Cost || len(back.Pairs) != len(m.Pairs) {
		t.Errorf("mapping changed across binary round trip")
	}
}
