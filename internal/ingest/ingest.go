// Package ingest implements the group-commit pipeline between the
// HTTP server and the store. Every single-run import is enqueued as a
// Job on a bounded queue; one batcher goroutine drains the queue into
// batches (flushed when BatchSize jobs have gathered, when the
// optional MaxWait linger expires, or — with no linger — as soon as
// the queue runs dry) and hands each batch to a CommitFunc that
// performs ONE snapshot-segment append, ONE manifest save and ONE
// coalesced change notification however many runs it carries. Per-job
// results travel back on the job's response channel (synchronous
// clients park there) or onto its Ticket (asynchronous clients poll).
//
// The batcher never commits concurrently with itself, so commit
// functions see strictly ordered batches: jobs enqueued earlier are
// always committed no later than jobs enqueued after them.
package ingest

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"
)

// ErrQueueFull is returned by Enqueue when the bounded queue is at
// capacity; HTTP callers translate it into 429 + Retry-After.
var ErrQueueFull = errors.New("ingest: queue full")

// ErrClosed is returned by Enqueue after Close has begun draining;
// HTTP callers translate it into 503.
var ErrClosed = errors.New("ingest: pipeline closed")

// Result is the per-job outcome of a batch commit.
type Result struct {
	Err   error
	Nodes int
	Edges int
	// Hash is the hex content hash of the committed codec frame, as
	// attested to the provenance ledger (empty when the snapshot layer
	// is disabled).
	Hash string
}

// Job is one run import traveling through the pipeline. Exactly one
// of Resp/Ticket (or both) should be set; the pipeline — not the
// CommitFunc — delivers the Result to whichever is present, so a
// commit implementation cannot forget a waiter.
type Job struct {
	Spec string
	Run  string
	XML  []byte
	// Resp receives the job's Result after its batch commits. It must
	// be buffered (capacity >= 1): the batcher sends without blocking.
	Resp chan Result
	// Ticket, when set, is resolved with the job's Result for
	// asynchronous clients polling GET /v1/tickets/{id}.
	Ticket *Ticket
}

// CommitFunc commits one batch and returns one Result per job, in
// batch order. Returning fewer results marks the remainder failed.
type CommitFunc func(jobs []*Job) []Result

// Options tune a Pipeline. Zero values select the defaults.
type Options struct {
	// QueueDepth bounds the number of jobs waiting for the batcher;
	// enqueueing past it fails with ErrQueueFull.
	QueueDepth int
	// BatchSize caps how many jobs one commit may carry.
	BatchSize int
	// MaxWait is the linger window: after the first job of a batch
	// arrives, the batcher waits up to MaxWait for more before
	// flushing short. Zero (the default) disables lingering — a batch
	// flushes as soon as the queue runs dry, so a lone importer pays
	// no added latency and batches still form naturally whenever jobs
	// arrive faster than commits complete. Negative behaves like zero.
	MaxWait time.Duration
	// SlowCommit is the watchdog threshold: commits slower than this
	// increment the SlowCommits counter surfaced in /stats.
	SlowCommit time.Duration
}

// Defaults applied by New for zero Options fields.
const (
	DefaultQueueDepth = 1024
	DefaultBatchSize  = 64
	DefaultSlowCommit = 500 * time.Millisecond
)

// Stats is a point-in-time snapshot of pipeline counters.
type Stats struct {
	QueueDepth    int   // jobs currently waiting
	QueueCapacity int   // configured bound
	MaxDepth      int64 // deepest the queue has been (high-water mark)
	Enqueued      int64 // jobs accepted onto the queue
	Rejected      int64 // jobs refused with ErrQueueFull
	Committed     int64 // jobs whose commit succeeded
	Failed        int64 // jobs whose commit returned an error
	Batches       int64 // commits performed
	MaxBatch      int64 // largest batch committed
	AvgBatch      float64
	SlowCommits   int64 // commits slower than Options.SlowCommit
	LastCommitMS  float64
	Closed        bool
}

// Pipeline is the group-commit queue + batcher pair. Create with New;
// all methods are safe for concurrent use.
type Pipeline struct {
	opts   Options
	commit CommitFunc
	queue  chan *Job
	done   chan struct{}

	closeMu sync.RWMutex
	closed  bool

	enqueued, rejected   atomic.Int64
	committed, failed    atomic.Int64
	batches, jobsBatched atomic.Int64
	maxBatch             atomic.Int64
	maxDepth             atomic.Int64
	slowCommits          atomic.Int64
	lastCommitNanos      atomic.Int64
}

// New starts a pipeline committing through fn.
func New(fn CommitFunc, opts Options) *Pipeline {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = DefaultQueueDepth
	}
	if opts.BatchSize <= 0 {
		opts.BatchSize = DefaultBatchSize
	}
	if opts.MaxWait < 0 {
		opts.MaxWait = 0
	}
	if opts.SlowCommit <= 0 {
		opts.SlowCommit = DefaultSlowCommit
	}
	p := &Pipeline{
		opts:   opts,
		commit: fn,
		queue:  make(chan *Job, opts.QueueDepth),
		done:   make(chan struct{}),
	}
	go p.run()
	return p
}

// Enqueue hands a job to the batcher without blocking: ErrQueueFull
// when the queue is at capacity, ErrClosed after Close.
func (p *Pipeline) Enqueue(j *Job) error {
	p.closeMu.RLock()
	defer p.closeMu.RUnlock()
	if p.closed {
		return ErrClosed
	}
	select {
	case p.queue <- j:
		p.enqueued.Add(1)
		// Track the deepest the queue has been — the saturation gauge
		// /metrics exposes. The read races benignly with the batcher
		// draining; the high-water mark only ever moves up.
		if depth := int64(len(p.queue)); depth > p.maxDepth.Load() {
			for {
				cur := p.maxDepth.Load()
				if depth <= cur || p.maxDepth.CompareAndSwap(cur, depth) {
					break
				}
			}
		}
		return nil
	default:
		p.rejected.Add(1)
		return ErrQueueFull
	}
}

// Close drains the pipeline: no new jobs are accepted, every job
// already queued is committed, and Close returns once the batcher has
// exited — the graceful-shutdown ordering is Close the pipeline first,
// then the store. Safe to call more than once.
func (p *Pipeline) Close() {
	p.closeMu.Lock()
	if !p.closed {
		p.closed = true
		close(p.queue)
	}
	p.closeMu.Unlock()
	<-p.done
}

// run is the batcher goroutine: block for the first job, gather the
// rest of the batch, commit, repeat until the queue is closed and
// drained (a closed buffered channel still delivers its backlog).
func (p *Pipeline) run() {
	defer close(p.done)
	for {
		first, ok := <-p.queue
		if !ok {
			return
		}
		p.flush(p.gather(first))
	}
}

// gather assembles one batch starting from its first job: up to
// BatchSize jobs, stopping early when the queue runs dry (no linger)
// or the MaxWait window expires (linger mode).
func (p *Pipeline) gather(first *Job) []*Job {
	batch := append(make([]*Job, 0, p.opts.BatchSize), first)
	if p.opts.MaxWait <= 0 {
		for len(batch) < p.opts.BatchSize {
			select {
			case j, ok := <-p.queue:
				if !ok {
					return batch
				}
				batch = append(batch, j)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(p.opts.MaxWait)
	defer timer.Stop()
	for len(batch) < p.opts.BatchSize {
		select {
		case j, ok := <-p.queue:
			if !ok {
				return batch
			}
			batch = append(batch, j)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// flush commits one batch and fans its results back out to the
// waiters. Only the batcher goroutine calls flush, so the max/last
// counters need no compare-and-swap loops.
func (p *Pipeline) flush(batch []*Job) {
	start := time.Now()
	results := p.commit(batch)
	elapsed := time.Since(start)

	p.batches.Add(1)
	p.jobsBatched.Add(int64(len(batch)))
	if n := int64(len(batch)); n > p.maxBatch.Load() {
		p.maxBatch.Store(n)
	}
	p.lastCommitNanos.Store(elapsed.Nanoseconds())
	if elapsed > p.opts.SlowCommit {
		p.slowCommits.Add(1)
	}

	for i, j := range batch {
		res := Result{Err: errors.New("ingest: commit returned no result for job")}
		if i < len(results) {
			res = results[i]
		}
		if res.Err != nil {
			p.failed.Add(1)
		} else {
			p.committed.Add(1)
		}
		if j.Ticket != nil {
			j.Ticket.resolve(j.Run, res)
		}
		if j.Resp != nil {
			j.Resp <- res
		}
	}
}

// Stats snapshots the counters.
func (p *Pipeline) Stats() Stats {
	p.closeMu.RLock()
	closed := p.closed
	p.closeMu.RUnlock()
	st := Stats{
		QueueDepth:    len(p.queue),
		QueueCapacity: p.opts.QueueDepth,
		MaxDepth:      p.maxDepth.Load(),
		Enqueued:      p.enqueued.Load(),
		Rejected:      p.rejected.Load(),
		Committed:     p.committed.Load(),
		Failed:        p.failed.Load(),
		Batches:       p.batches.Load(),
		MaxBatch:      p.maxBatch.Load(),
		SlowCommits:   p.slowCommits.Load(),
		LastCommitMS:  float64(p.lastCommitNanos.Load()) / 1e6,
		Closed:        closed,
	}
	if st.Batches > 0 {
		st.AvgBatch = float64(p.jobsBatched.Load()) / float64(st.Batches)
	}
	return st
}
