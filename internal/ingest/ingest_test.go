package ingest

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// okCommit succeeds every job, recording batch sizes.
func okCommit(batches *[][]string, mu *sync.Mutex) CommitFunc {
	return func(jobs []*Job) []Result {
		names := make([]string, len(jobs))
		results := make([]Result, len(jobs))
		for i, j := range jobs {
			names[i] = j.Run
			results[i] = Result{Nodes: 1, Edges: 2}
		}
		mu.Lock()
		*batches = append(*batches, names)
		mu.Unlock()
		return results
	}
}

func enqueueWait(t *testing.T, p *Pipeline, run string) Result {
	t.Helper()
	j := &Job{Spec: "s", Run: run, Resp: make(chan Result, 1)}
	if err := p.Enqueue(j); err != nil {
		t.Fatalf("enqueue %s: %v", run, err)
	}
	return <-j.Resp
}

// A full batch commits in one flush: park the batcher on a gate so
// the whole batch queues up behind one in-flight commit.
func TestBatchCoalescing(t *testing.T) {
	var (
		mu      sync.Mutex
		batches [][]string
	)
	gate := make(chan struct{})
	entered := make(chan struct{})
	var first atomic.Bool
	inner := okCommit(&batches, &mu)
	p := New(func(jobs []*Job) []Result {
		if !first.Swap(true) {
			close(entered)
			<-gate
		}
		return inner(jobs)
	}, Options{QueueDepth: 64, BatchSize: 8})
	defer p.Close()

	// One job occupies the batcher (entered confirms it is alone in
	// its batch before anything else is queued)...
	warm := &Job{Spec: "s", Run: "warm", Resp: make(chan Result, 1)}
	if err := p.Enqueue(warm); err != nil {
		t.Fatal(err)
	}
	<-entered
	// ...while 8 more pile up on the queue.
	resps := make([]chan Result, 8)
	for i := range resps {
		resps[i] = make(chan Result, 1)
		if err := p.Enqueue(&Job{Spec: "s", Run: fmt.Sprintf("r%d", i), Resp: resps[i]}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	<-warm.Resp
	for i, c := range resps {
		if res := <-c; res.Err != nil {
			t.Fatalf("job %d: %v", i, res.Err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(batches) != 2 {
		t.Fatalf("batches = %v, want the warm-up plus ONE coalesced batch", batches)
	}
	if len(batches[1]) != 8 {
		t.Fatalf("coalesced batch carried %d jobs, want 8", len(batches[1]))
	}
	st := p.Stats()
	if st.MaxBatch != 8 || st.Committed != 9 {
		t.Fatalf("stats = %+v", st)
	}
}

// With a linger window, a lone job still commits once the window
// expires; without one, it commits immediately.
func TestMaxWaitAndEagerFlush(t *testing.T) {
	var (
		mu      sync.Mutex
		batches [][]string
	)
	p := New(okCommit(&batches, &mu), Options{QueueDepth: 8, BatchSize: 8, MaxWait: 5 * time.Millisecond})
	start := time.Now()
	if res := enqueueWait(t, p, "lingered"); res.Err != nil {
		t.Fatal(res.Err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("lingering commit returned after %v, want >= MaxWait", elapsed)
	}
	p.Close()

	eager := New(okCommit(&batches, &mu), Options{QueueDepth: 8, BatchSize: 8})
	defer eager.Close()
	if res := enqueueWait(t, eager, "eager"); res.Err != nil {
		t.Fatal(res.Err)
	}
	if st := eager.Stats(); st.Batches != 1 || st.AvgBatch != 1 {
		t.Fatalf("eager stats = %+v", st)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	gate := make(chan struct{})
	p := New(func(jobs []*Job) []Result {
		<-gate
		return make([]Result, len(jobs))
	}, Options{QueueDepth: 2, BatchSize: 1})
	defer p.Close()
	defer close(gate)

	// First job is picked up by the batcher (blocked in commit); two
	// more fill the queue; the fourth must bounce.
	if err := p.Enqueue(&Job{Run: "a"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	filled := 0
	for filled < 2 && time.Now().Before(deadline) {
		if err := p.Enqueue(&Job{Run: "fill"}); err == nil {
			filled++
		}
	}
	if filled != 2 {
		t.Fatalf("filled %d queue slots, want 2", filled)
	}
	if err := p.Enqueue(&Job{Run: "bounced"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue on full queue = %v, want ErrQueueFull", err)
	}
	if st := p.Stats(); st.Rejected == 0 {
		t.Fatalf("stats = %+v, want rejected > 0", st)
	}
}

// Close drains: jobs already queued are committed before Close
// returns, and later enqueues fail with ErrClosed.
func TestCloseDrains(t *testing.T) {
	var (
		mu      sync.Mutex
		batches [][]string
	)
	gate := make(chan struct{})
	var first atomic.Bool
	inner := okCommit(&batches, &mu)
	p := New(func(jobs []*Job) []Result {
		if !first.Swap(true) {
			<-gate
		}
		return inner(jobs)
	}, Options{QueueDepth: 64, BatchSize: 4})

	warm := &Job{Run: "warm", Resp: make(chan Result, 1)}
	if err := p.Enqueue(warm); err != nil {
		t.Fatal(err)
	}
	resps := make([]chan Result, 6)
	for i := range resps {
		resps[i] = make(chan Result, 1)
		if err := p.Enqueue(&Job{Run: fmt.Sprintf("q%d", i), Resp: resps[i]}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	p.Close()
	for i, c := range resps {
		select {
		case res := <-c:
			if res.Err != nil {
				t.Fatalf("drained job %d failed: %v", i, res.Err)
			}
		default:
			t.Fatalf("job %d was not committed by Close", i)
		}
	}
	if err := p.Enqueue(&Job{Run: "late"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close = %v, want ErrClosed", err)
	}
	p.Close() // idempotent
}

// A commit that returns short results marks the tail failed instead
// of leaving waiters parked forever.
func TestShortCommitResults(t *testing.T) {
	p := New(func(jobs []*Job) []Result {
		return make([]Result, len(jobs)-1)
	}, Options{QueueDepth: 8, BatchSize: 1})
	defer p.Close()
	if res := enqueueWait(t, p, "r"); res.Err == nil {
		t.Fatal("short commit result slipped through as success")
	}
}

func TestSlowCommitWatchdog(t *testing.T) {
	p := New(func(jobs []*Job) []Result {
		time.Sleep(3 * time.Millisecond)
		return make([]Result, len(jobs))
	}, Options{QueueDepth: 4, BatchSize: 1, SlowCommit: time.Millisecond})
	defer p.Close()
	enqueueWait(t, p, "slow")
	st := p.Stats()
	if st.SlowCommits != 1 {
		t.Fatalf("slow commits = %d, want 1", st.SlowCommits)
	}
	if st.LastCommitMS < 1 {
		t.Fatalf("last commit = %vms, want >= 1ms", st.LastCommitMS)
	}
}

func TestTicketLifecycle(t *testing.T) {
	reg := NewRegistry(4)
	tk := reg.New("pa", []string{"a", "b"})
	if got := tk.Snapshot(); got.State != StatePending || got.Total != 2 || got.Done != 0 {
		t.Fatalf("fresh ticket = %+v", got)
	}
	tk.resolve("a", Result{Nodes: 3, Edges: 4})
	if got := tk.Snapshot(); got.State != StatePending || got.Done != 1 {
		t.Fatalf("half-done ticket = %+v", got)
	}
	tk.resolve("b", Result{Err: errors.New("boom")})
	got := tk.Snapshot()
	if got.State != StateFailed || got.Done != 2 {
		t.Fatalf("resolved ticket = %+v", got)
	}
	if got.Runs[0].State != StateCommitted || got.Runs[0].Nodes != 3 {
		t.Fatalf("run a = %+v", got.Runs[0])
	}
	if got.Runs[1].State != StateFailed || got.Runs[1].Error != "boom" {
		t.Fatalf("run b = %+v", got.Runs[1])
	}
	// Double-resolution is ignored.
	tk.resolve("b", Result{})
	if again := tk.Snapshot(); again.State != StateFailed {
		t.Fatalf("re-resolved ticket = %+v", again)
	}
	if _, ok := reg.Get(tk.ID); !ok {
		t.Fatal("resolved ticket evicted while under retention bound")
	}
}

func TestTicketRetentionEviction(t *testing.T) {
	reg := NewRegistry(2)
	var ids []string
	for i := 0; i < 4; i++ {
		tk := reg.New("pa", []string{"r"})
		tk.resolve("r", Result{})
		ids = append(ids, tk.ID)
	}
	// Oldest two resolved tickets are evicted, newest two retained.
	for _, id := range ids[:2] {
		if _, ok := reg.Get(id); ok {
			t.Fatalf("ticket %s survived past retention", id)
		}
	}
	for _, id := range ids[2:] {
		if _, ok := reg.Get(id); !ok {
			t.Fatalf("ticket %s evicted while within retention", id)
		}
	}
	// A pending ticket is never evicted, however many resolve after it.
	pending := reg.New("pa", []string{"never"})
	for i := 0; i < 3; i++ {
		tk := reg.New("pa", []string{"r"})
		tk.resolve("r", Result{})
	}
	if _, ok := reg.Get(pending.ID); !ok {
		t.Fatal("pending ticket evicted")
	}
	if p, r := reg.Counts(); p != 1 || r != 2 {
		t.Fatalf("counts = (%d pending, %d retained), want (1, 2)", p, r)
	}
}

// TestTicketDuplicateRunNames is the regression test for the
// pending-leak: a bulk ticket naming the same run more than once used
// to collapse the duplicates into one index slot, so the second
// resolve found the slot already terminal, returned without
// decrementing pending, and the ticket stayed pending forever. Each
// duplicate must hold its own slot and the ticket must reach a
// terminal state after exactly one resolve per slot.
func TestTicketDuplicateRunNames(t *testing.T) {
	reg := NewRegistry(4)
	tk := reg.New("pa", []string{"a", "a", "b"})
	tk.resolve("a", Result{Nodes: 1})
	tk.resolve("a", Result{Err: errors.New("second write rejected")})
	if got := tk.Snapshot(); got.State != StatePending || got.Done != 2 {
		t.Fatalf("after both a-resolves: %+v", got)
	}
	tk.resolve("b", Result{Nodes: 2})
	got := tk.Snapshot()
	if got.State != StateFailed {
		t.Fatalf("duplicate-name ticket never reached a terminal state: %+v", got)
	}
	if got.Done != 3 {
		t.Fatalf("done = %d, want 3", got.Done)
	}
	// Resolves land on the duplicate slots in input order.
	if got.Runs[0].State != StateCommitted || got.Runs[1].State != StateFailed {
		t.Fatalf("duplicate slots resolved out of order: %+v", got.Runs)
	}
	if p, r := reg.Counts(); p != 0 || r != 1 {
		t.Fatalf("counts = (%d pending, %d retained), want (0, 1)", p, r)
	}
}

// TestTicketDuplicateRunNamesThroughPipeline drives the same shape
// end to end: duplicate-name jobs sharing one ticket, committed by
// the batcher, polled to a terminal state.
func TestTicketDuplicateRunNamesThroughPipeline(t *testing.T) {
	var (
		mu      sync.Mutex
		batches [][]string
	)
	p := New(okCommit(&batches, &mu), Options{QueueDepth: 8, BatchSize: 4, MaxWait: time.Millisecond})
	defer p.Close()
	reg := NewRegistry(4)
	tk := reg.New("s", []string{"dup", "dup", "other"})
	for _, run := range []string{"dup", "dup", "other"} {
		if err := p.Enqueue(&Job{Spec: "s", Run: run, Ticket: tk}); err != nil {
			t.Fatalf("enqueue %s: %v", run, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if got := tk.Snapshot(); got.State != StatePending {
			if got.State != StateCommitted || got.Done != 3 {
				t.Fatalf("terminal ticket = %+v", got)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticket still pending after commits: %+v", tk.Snapshot())
		}
		time.Sleep(time.Millisecond)
	}
}
