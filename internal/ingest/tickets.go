package ingest

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Ticket states, in lifecycle order. A ticket is pending until every
// run it covers has a result; it then resolves to committed (all runs
// landed) or failed (at least one did not).
const (
	StatePending   = "pending"
	StateCommitted = "committed"
	StateFailed    = "failed"
)

// DefaultTicketRetention bounds how many resolved tickets a Registry
// keeps for polling before the oldest are evicted. Pending tickets
// are never evicted (their population is already bounded by the
// ingest queue depth).
const DefaultTicketRetention = 256

// RunStatus is the per-run progress of an async ingest ticket.
type RunStatus struct {
	Run   string `json:"run"`
	State string `json:"state"` // pending | committed | failed
	Error string `json:"error,omitempty"`
	Nodes int    `json:"nodes,omitempty"`
	Edges int    `json:"edges,omitempty"`
	// Hash is the committed frame's content hash (the run's ledger
	// identity), when the commit path produced one.
	Hash string `json:"hash,omitempty"`
}

// Ticket tracks one asynchronous ingest request (a single run or a
// whole bulk batch) from 202 Accepted to its terminal state.
type Ticket struct {
	ID      string
	Spec    string
	created time.Time

	reg *Registry

	mu   sync.Mutex
	runs []RunStatus
	// idx queues the still-pending slot indices of each run name, in
	// input order. Duplicate names in one batch therefore hold distinct
	// slots and each resolve consumes exactly one — indexing by bare
	// name used to collapse duplicates, leaving the ticket's pending
	// count stuck above zero forever.
	idx      map[string][]int
	pending  int
	resolved time.Time
}

// View is a consistent snapshot of a ticket for serialization.
type View struct {
	ID      string      `json:"ticket"`
	Spec    string      `json:"spec"`
	State   string      `json:"state"`
	Total   int         `json:"total"`
	Done    int         `json:"done"`
	Runs    []RunStatus `json:"runs"`
	Created time.Time   `json:"created"`
}

// resolve records one run's commit result; the last pending run
// transitions the ticket to its terminal state and reports it to the
// registry for retention accounting. Called by the batcher (never
// while the registry lock is held — see Registry.Get for the lock
// order).
func (t *Ticket) resolve(run string, res Result) {
	t.mu.Lock()
	q := t.idx[run]
	if len(q) == 0 {
		t.mu.Unlock()
		return
	}
	i := q[0]
	t.idx[run] = q[1:]
	if res.Err != nil {
		t.runs[i].State = StateFailed
		t.runs[i].Error = res.Err.Error()
	} else {
		t.runs[i].State = StateCommitted
		t.runs[i].Nodes = res.Nodes
		t.runs[i].Edges = res.Edges
		t.runs[i].Hash = res.Hash
	}
	t.pending--
	done := t.pending == 0
	if done {
		t.resolved = time.Now()
	}
	t.mu.Unlock()
	if done && t.reg != nil {
		t.reg.noteResolved(t.ID)
	}
}

// Fail resolves one run of the ticket with an error outside any
// commit — the path for jobs that never made it onto the queue.
func (t *Ticket) Fail(run string, err error) {
	t.resolve(run, Result{Err: err})
}

// state computes the ticket-level state; caller holds t.mu.
func (t *Ticket) state() string {
	if t.pending > 0 {
		return StatePending
	}
	for _, rs := range t.runs {
		if rs.State == StateFailed {
			return StateFailed
		}
	}
	return StateCommitted
}

// Snapshot returns a consistent view of the ticket.
func (t *Ticket) Snapshot() View {
	t.mu.Lock()
	defer t.mu.Unlock()
	runs := make([]RunStatus, len(t.runs))
	copy(runs, t.runs)
	return View{
		ID:      t.ID,
		Spec:    t.Spec,
		State:   t.state(),
		Total:   len(t.runs),
		Done:    len(t.runs) - t.pending,
		Runs:    runs,
		Created: t.created,
	}
}

// Registry issues and retains tickets. Resolved tickets are kept in
// FIFO order up to the retention bound so clients have a polling
// window; pending tickets live until they resolve.
type Registry struct {
	mu       sync.Mutex
	byID     map[string]*Ticket
	resolved []string // resolution order, oldest first
	retain   int
}

// NewRegistry builds a registry retaining up to retain resolved
// tickets (<= 0 means DefaultTicketRetention).
func NewRegistry(retain int) *Registry {
	if retain <= 0 {
		retain = DefaultTicketRetention
	}
	return &Registry{byID: make(map[string]*Ticket), retain: retain}
}

// New issues a pending ticket covering the named runs, registered for
// polling immediately.
func (g *Registry) New(specName string, runNames []string) *Ticket {
	t := &Ticket{
		ID:      newTicketID(),
		Spec:    specName,
		created: time.Now(),
		reg:     g,
		runs:    make([]RunStatus, len(runNames)),
		idx:     make(map[string][]int, len(runNames)),
		pending: len(runNames),
	}
	for i, name := range runNames {
		t.runs[i] = RunStatus{Run: name, State: StatePending}
		t.idx[name] = append(t.idx[name], i)
	}
	g.mu.Lock()
	g.byID[t.ID] = t
	g.mu.Unlock()
	return t
}

// Get looks a ticket up by ID. The ticket pointer is returned with no
// locks held, so callers may Snapshot it freely.
func (g *Registry) Get(id string) (*Ticket, bool) {
	g.mu.Lock()
	t, ok := g.byID[id]
	g.mu.Unlock()
	return t, ok
}

// noteResolved records a terminal transition and evicts the oldest
// resolved tickets past the retention bound.
func (g *Registry) noteResolved(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.resolved = append(g.resolved, id)
	for len(g.resolved) > g.retain {
		delete(g.byID, g.resolved[0])
		g.resolved = g.resolved[1:]
	}
}

// Counts reports how many tickets are pending and how many resolved
// ones are retained for polling.
func (g *Registry) Counts() (pending, retained int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	retained = len(g.resolved)
	pending = len(g.byID) - retained
	return pending, retained
}

// newTicketID returns an unguessable identifier; ticket URLs are
// capability-style (knowing the ID is the authorization to poll it).
func newTicketID() string {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("ingest: crypto/rand unavailable: " + err.Error())
	}
	return "t" + hex.EncodeToString(b[:])
}
