package gen

import (
	"math/rand"
	"testing"

	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// TestCatalogMatchesTableI is the contract of the reconstruction: the
// six specifications carry exactly the characteristics published in
// Table I of the paper.
func TestCatalogMatchesTableI(t *testing.T) {
	want := map[string]spec.Stats{
		"PA":     {V: 11, E: 13, Forks: 3, ForkSz: 6, Loops: 1, LoopSz: 6},
		"EMBOSS": {V: 17, E: 22, Forks: 4, ForkSz: 10, Loops: 2, LoopSz: 10},
		"SAXPF":  {V: 27, E: 36, Forks: 7, ForkSz: 18, Loops: 1, LoopSz: 7},
		"MB":     {V: 17, E: 19, Forks: 2, ForkSz: 6, Loops: 1, LoopSz: 6},
		"PGAQ":   {V: 37, E: 41, Forks: 4, ForkSz: 22, Loops: 2, LoopSz: 26},
		"BAIDD":  {V: 29, E: 36, Forks: 8, ForkSz: 17, Loops: 2, LoopSz: 12},
	}
	for _, name := range CatalogNames {
		sp, err := Catalog(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := sp.Stats(); got != want[name] {
			t.Errorf("%s: stats %+v, want %+v", name, got, want[name])
		}
		if err := sptree.ValidateSpecTree(sp.Tree); err != nil {
			t.Errorf("%s: invalid annotated tree: %v", name, err)
		}
	}
	if _, err := Catalog("NOPE"); err == nil {
		t.Error("unknown catalog name must fail")
	}
}

func TestProteinAnnotation(t *testing.T) {
	sp, err := ProteinAnnotation()
	if err != nil {
		t.Fatal(err)
	}
	if sp.G.NumNodes() != 15 || sp.G.NumEdges() != 19 {
		t.Fatalf("PA Fig.1: V=%d E=%d, want 15/19", sp.G.NumNodes(), sp.G.NumEdges())
	}
	if len(sp.Forks) != 4 || len(sp.Loops) != 1 {
		t.Fatalf("PA Fig.1: %d forks %d loops", len(sp.Forks), len(sp.Loops))
	}
	// The workflow must be runnable with replicated forks and loops.
	rng := rand.New(rand.NewSource(1))
	r, err := RandomRun(sp, RunParams{ProbP: 0.9, ProbF: 0.8, MaxF: 3, ProbL: 0.8, MaxL: 3}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFig17bSpec(t *testing.T) {
	sp, err := Fig17bSpec(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Edges: s->u, v->t, plus sum i^2 for i=1..10 = 385.
	if got := sp.G.NumEdges(); got != 387 {
		t.Fatalf("Fig17b edges = %d, want 387", got)
	}
	if len(sp.Forks) != 1 {
		t.Fatalf("Fig17b forks = %d, want 1", len(sp.Forks))
	}
	// With linear path lengths the block is 55 edges.
	sp2, err := Fig17bSpec(func(i int) int { return i })
	if err != nil {
		t.Fatal(err)
	}
	if got := sp2.G.NumEdges(); got != 57 {
		t.Fatalf("Fig17b linear edges = %d, want 57", got)
	}
	// The fork must wrap the whole parallel block: its F node exists
	// with a P child.
	var f *sptree.Node
	sp.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.F {
			f = n
		}
		return true
	})
	if f == nil || f.Children[0].Type != sptree.P || len(f.Children[0].Children) != 10 {
		t.Fatalf("Fig17b fork structure wrong:\n%v", f)
	}
}

func TestRandomSpecRespectsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, r := range []float64{3, 1, 1.0 / 3} {
		for _, edges := range []int{10, 50, 120} {
			sp, err := RandomSpec(SpecConfig{Edges: edges, SeriesRatio: r, Forks: 3, Loops: 2}, rng)
			if err != nil {
				t.Fatalf("r=%g edges=%d: %v", r, edges, err)
			}
			if sp.G.NumEdges() != edges {
				t.Fatalf("r=%g: edges = %d, want %d", r, sp.G.NumEdges(), edges)
			}
			if err := sptree.ValidateSpecTree(sp.Tree); err != nil {
				t.Fatalf("r=%g edges=%d: %v", r, edges, err)
			}
		}
	}
}

func TestRandomSpecSeriesRatioShape(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	countS := func(sp *spec.Spec) (s, p int) {
		sp.Tree.Walk(func(n *sptree.Node) bool {
			switch n.Type {
			case sptree.S:
				s += len(n.Children) - 1
			case sptree.P:
				p += len(n.Children) - 1
			}
			return true
		})
		return
	}
	var sHigh, pHigh, sLow, pLow int
	for i := 0; i < 20; i++ {
		spHigh, err := RandomSpec(SpecConfig{Edges: 80, SeriesRatio: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, p := countS(spHigh)
		sHigh += s
		pHigh += p
		spLow, err := RandomSpec(SpecConfig{Edges: 80, SeriesRatio: 1.0 / 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		s, p = countS(spLow)
		sLow += s
		pLow += p
	}
	if sHigh <= pHigh {
		t.Errorf("series-heavy specs should have more series compositions: S=%d P=%d", sHigh, pHigh)
	}
	if pLow <= sLow {
		t.Errorf("parallel-heavy specs should have more parallel compositions: S=%d P=%d", sLow, pLow)
	}
}

func TestRandomRunsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		sp, err := RandomSpec(SpecConfig{Edges: 40, SeriesRatio: 1, Forks: 4, Loops: 2}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5; i++ {
			r, err := RandomRun(sp, DefaultRunParams(), rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := r.Validate(); err != nil {
				t.Fatalf("trial %d run %d: %v", trial, i, err)
			}
		}
	}
}

func TestRunWithTargetEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	sp, err := Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{100, 400, 1000} {
		r, err := RunWithTargetEdges(sp, target, 0.1, DefaultRunParams(), rng)
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		got := r.NumEdges()
		if got < int(float64(target)*0.7) || got > int(float64(target)*1.3) {
			t.Fatalf("target %d: got %d edges (outside loose bounds)", target, got)
		}
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RunWithTargetEdges(sp, 1, 0.1, DefaultRunParams(), rng); err == nil {
		t.Fatal("absurdly small target must fail")
	}
}

func TestDeciderCountBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	d := &randDecider{p: RunParams{ProbF: 1, MaxF: 20, ProbL: 0, MaxL: 20}, rng: rng}
	if got := d.ForkCopies(nil); got != 20 {
		t.Fatalf("probF=1 should give maxF copies, got %d", got)
	}
	if got := d.LoopIterations(nil); got != 1 {
		t.Fatalf("probL=0 should still give one iteration, got %d", got)
	}
}

// The catalog specifications should all be runnable at Fig. 11 scale.
func TestCatalogRunnableAtScale(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for _, name := range CatalogNames {
		sp, err := Catalog(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := RunWithTargetEdges(sp, 300, 0.15, DefaultRunParams(), rng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := wfrun.Derive(sp, r.Graph, r.EdgeRefs()); err != nil {
			t.Fatalf("%s: derive on scaled run failed: %v", name, err)
		}
	}
}
