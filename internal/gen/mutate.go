package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// Spec mutations model workflow evolution: the edits scientists apply
// between versions of a specification. Each mutation rebuilds the
// specification graph with one structural change applied and carries
// the tree-level edit bound the change costs — at most Renames module
// renames plus InsLeaves module insertions plus InsNodes combinator
// insertions — which the metamorphic suite uses as an upper bound on
// the recovered spec-mapping cost.

// Mutation is one applied spec-evolution step.
type Mutation struct {
	// Name identifies the mutation kind ("subdivide-edge",
	// "add-parallel-edge", "duplicate-parallel-branch").
	Name string
	// Spec is the mutated specification.
	Spec *spec.Spec
	// Renames, InsLeaves and InsNodes bound the tree edit the
	// mutation performs: module renames, inserted module edges and
	// inserted combinator nodes.
	Renames, InsLeaves, InsNodes int
}

// rebuild replays sp.G into a fresh graph, returning the new graph and
// the old-edge → new-edges mapping. replace may return substitute
// endpoint pairs for an edge (after adding any new nodes to out); a
// nil return replays the edge unchanged.
func rebuild(sp *spec.Spec, replace func(out *graph.Graph, e graph.Edge) [][2]graph.NodeID) (*graph.Graph, map[graph.Edge][]graph.Edge) {
	out := graph.New()
	for _, n := range sp.G.Nodes() {
		out.MustAddNode(n, sp.G.Label(n))
	}
	edgeMap := make(map[graph.Edge][]graph.Edge, sp.G.NumEdges())
	for _, e := range sp.G.Edges() {
		var subs [][2]graph.NodeID
		if replace != nil {
			subs = replace(out, e)
		}
		if subs == nil {
			subs = [][2]graph.NodeID{{e.From, e.To}}
		}
		for _, s := range subs {
			edgeMap[e] = append(edgeMap[e], out.MustAddEdge(s[0], s[1]))
		}
	}
	return out, edgeMap
}

// remapSets pushes fork/loop edge sets through an edge mapping,
// optionally appending extra edges to sets satisfying keep.
func remapSets(sets []spec.EdgeSet, edgeMap map[graph.Edge][]graph.Edge, extra []graph.Edge, keep func(spec.EdgeSet) bool) []spec.EdgeSet {
	out := make([]spec.EdgeSet, len(sets))
	for i, s := range sets {
		var ns spec.EdgeSet
		for _, e := range s {
			ns = append(ns, edgeMap[e]...)
		}
		if keep != nil && keep(s) {
			ns = append(ns, extra...)
		}
		out[i] = ns
	}
	return out
}

// freshLabel allocates a node label (and ID — spec graphs use labels
// as IDs) not present in the graph.
func freshLabel(g *graph.Graph, seq *int) graph.NodeID {
	for {
		id := graph.NodeID(fmt.Sprintf("w%d", *seq))
		*seq++
		if !g.HasNode(id) {
			return id
		}
	}
}

// SubdivideEdge splits a random specification edge (u, v) into
// (u, x), (x, v) through a fresh module x — the "insert module on a
// series edge" evolution. Fork and loop subgraphs containing the edge
// keep both halves.
func SubdivideEdge(sp *spec.Spec, rng *rand.Rand) (*Mutation, error) {
	edges := sp.G.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("gen: specification has no edges")
	}
	target := edges[rng.Intn(len(edges))]
	seq := 0
	g, edgeMap := rebuild(sp, func(out *graph.Graph, e graph.Edge) [][2]graph.NodeID {
		if e != target {
			return nil
		}
		x := freshLabel(out, &seq)
		out.MustAddNode(x, string(x))
		return [][2]graph.NodeID{{e.From, x}, {x, e.To}}
	})
	ns, err := spec.New(g,
		remapSets(sp.Forks, edgeMap, nil, nil),
		remapSets(sp.Loops, edgeMap, nil, nil))
	if err != nil {
		return nil, fmt.Errorf("gen: subdivide %s: %w", target, err)
	}
	return &Mutation{Name: "subdivide-edge", Spec: ns, Renames: 1, InsLeaves: 1, InsNodes: 1}, nil
}

// AddParallelEdge adds a new module edge parallel to a random existing
// specification edge — the "insert alternative module" evolution.
// Every fork and loop subgraph containing the original edge absorbs
// the new one, keeping the subgraph complete.
func AddParallelEdge(sp *spec.Spec, rng *rand.Rand) (*Mutation, error) {
	edges := sp.G.Edges()
	if len(edges) == 0 {
		return nil, fmt.Errorf("gen: specification has no edges")
	}
	target := edges[rng.Intn(len(edges))]
	g, edgeMap := rebuild(sp, nil)
	added := g.MustAddEdge(target.From, target.To)
	contains := func(s spec.EdgeSet) bool {
		for _, e := range s {
			if e == target {
				return true
			}
		}
		return false
	}
	ns, err := spec.New(g,
		remapSets(sp.Forks, edgeMap, []graph.Edge{added}, contains),
		remapSets(sp.Loops, edgeMap, []graph.Edge{added}, contains))
	if err != nil {
		return nil, fmt.Errorf("gen: parallel edge at %s: %w", target, err)
	}
	return &Mutation{Name: "add-parallel-edge", Spec: ns, InsLeaves: 1, InsNodes: 1}, nil
}

// DuplicateParallelBranch clones one branch of a random parallel
// composition: the branch's interior modules are duplicated under
// fresh labels and wired between the same terminals — the "replicate
// an alternative" evolution. Fork and loop subgraphs strictly
// containing the branch absorb the clone.
func DuplicateParallelBranch(sp *spec.Spec, rng *rand.Rand) (*Mutation, error) {
	var ps []*sptree.Node
	sp.Tree.Walk(func(n *sptree.Node) bool {
		if n.Type == sptree.P && len(n.Children) > 1 {
			ps = append(ps, n)
		}
		return true
	})
	if len(ps) == 0 {
		return nil, fmt.Errorf("gen: specification has no parallel composition")
	}
	p := ps[rng.Intn(len(ps))]
	branch := p.Children[rng.Intn(len(p.Children))]
	inBranch := make(map[graph.Edge]bool)
	for _, q := range branch.Leaves() {
		inBranch[q.Edge] = true
	}
	srcID, err := sp.G.NodeByLabel(branch.Src)
	if err != nil {
		return nil, fmt.Errorf("gen: duplicate branch: %w", err)
	}
	dstID, err := sp.G.NodeByLabel(branch.Dst)
	if err != nil {
		return nil, fmt.Errorf("gen: duplicate branch: %w", err)
	}

	g, edgeMap := rebuild(sp, nil)
	// Clone interior nodes under fresh labels, then replay the branch
	// edges between the cloned interiors (terminals stay shared).
	seq := 0
	cloneNode := make(map[graph.NodeID]graph.NodeID)
	mapped := func(n graph.NodeID) graph.NodeID {
		if n == srcID || n == dstID {
			return n
		}
		c, ok := cloneNode[n]
		if !ok {
			c = freshLabel(g, &seq)
			g.MustAddNode(c, string(c))
			cloneNode[n] = c
		}
		return c
	}
	var clones []graph.Edge
	for _, e := range sp.G.Edges() {
		if inBranch[e] {
			clones = append(clones, g.MustAddEdge(mapped(e.From), mapped(e.To)))
		}
	}
	strictSuperset := func(s spec.EdgeSet) bool {
		if len(s) <= len(inBranch) {
			return false
		}
		have := 0
		for _, e := range s {
			if inBranch[e] {
				have++
			}
		}
		return have == len(inBranch)
	}
	ns, err := spec.New(g,
		remapSets(sp.Forks, edgeMap, clones, strictSuperset),
		remapSets(sp.Loops, edgeMap, clones, strictSuperset))
	if err != nil {
		return nil, fmt.Errorf("gen: duplicate branch at %s[%s..%s]: %w", branch.Type, branch.Src, branch.Dst, err)
	}
	return &Mutation{
		Name:      "duplicate-parallel-branch",
		Spec:      ns,
		InsLeaves: branch.CountLeaves(),
		InsNodes:  branch.CountNodes() - branch.CountLeaves(),
	}, nil
}

// Mutators lists the spec-evolution mutation kinds.
var Mutators = []func(*spec.Spec, *rand.Rand) (*Mutation, error){
	SubdivideEdge,
	AddParallelEdge,
	DuplicateParallelBranch,
}

// Mutate applies n random mutations in sequence, skipping draws that
// do not apply to the current shape (e.g. duplicating a branch of a
// purely serial workflow). It returns the applied steps, whose last
// element carries the final specification.
func Mutate(sp *spec.Spec, n int, rng *rand.Rand) ([]*Mutation, error) {
	var out []*Mutation
	cur := sp
	for len(out) < n {
		applied := false
		for attempt := 0; attempt < 8 && !applied; attempt++ {
			mut, err := Mutators[rng.Intn(len(Mutators))](cur, rng)
			if err != nil {
				continue
			}
			out = append(out, mut)
			cur = mut.Spec
			applied = true
		}
		if !applied {
			return nil, fmt.Errorf("gen: no mutation applied after 8 attempts (spec with %d edges)", cur.G.NumEdges())
		}
	}
	return out, nil
}
