package gen

import (
	"math/rand"
	"testing"
)

func TestMutatorsProduceValidSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		sp, err := RandomSpec(SpecConfig{Edges: 4 + rng.Intn(14), SeriesRatio: 1.2, Forks: 1 + rng.Intn(2), Loops: rng.Intn(2)}, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, mutate := range Mutators {
			mut, err := mutate(sp, rng)
			if err != nil {
				continue // not applicable to this shape
			}
			// A mutated spec must execute: run the minimal run.
			if _, err := RandomRun(mut.Spec, DefaultRunParams(), rng); err != nil {
				t.Fatalf("%s produced an inexecutable spec: %v", mut.Name, err)
			}
			if mut.Spec.G.NumEdges() <= sp.G.NumEdges()-1 {
				t.Fatalf("%s lost edges: %d -> %d", mut.Name, sp.G.NumEdges(), mut.Spec.G.NumEdges())
			}
			if mut.InsLeaves < 1 {
				t.Fatalf("%s reports no inserted module", mut.Name)
			}
			// Annotation counts survive the rewrite.
			if len(mut.Spec.Forks) != len(sp.Forks) || len(mut.Spec.Loops) != len(sp.Loops) {
				t.Fatalf("%s changed annotation counts: forks %d->%d loops %d->%d",
					mut.Name, len(sp.Forks), len(mut.Spec.Forks), len(sp.Loops), len(mut.Spec.Loops))
			}
		}
	}
}

func TestMutateChains(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	sp, err := RandomSpec(SpecConfig{Edges: 10, SeriesRatio: 1, Forks: 1, Loops: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	muts, err := Mutate(sp, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(muts) != 5 {
		t.Fatalf("applied %d mutations, want 5", len(muts))
	}
	final := muts[len(muts)-1].Spec
	if final.G.NumEdges() <= sp.G.NumEdges() {
		t.Errorf("5 mutations did not grow the spec: %d -> %d edges", sp.G.NumEdges(), final.G.NumEdges())
	}
}

// TestRandomSpecDeterministic is the regression test for satellite
// "gen.RandomSpec must be deterministic for a given *rand.Rand": two
// generations from the same seed must agree structurally — tree
// signature, graph rendering, and the exact fork/loop edge sets — and
// runs drawn from the same seed must agree too. Map-iteration order
// must never leak into the output (the audit found the generator and
// spgraph decomposition already pin candidate orders by sorting;
// this pins them for good).
func TestRandomSpecDeterministic(t *testing.T) {
	cfgs := []SpecConfig{
		{Edges: 6, SeriesRatio: 1, Forks: 0, Loops: 0},
		{Edges: 14, SeriesRatio: 0.6, Forks: 2, Loops: 1},
		{Edges: 25, SeriesRatio: 2, Forks: 3, Loops: 2},
		{Edges: 40, SeriesRatio: 4, Forks: 4, Loops: 3},
	}
	for _, cfg := range cfgs {
		for seed := int64(1); seed <= 10; seed++ {
			sp1, err := RandomSpec(cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("cfg %+v seed %d: %v", cfg, seed, err)
			}
			sp2, err := RandomSpec(cfg, rand.New(rand.NewSource(seed)))
			if err != nil {
				t.Fatalf("cfg %+v seed %d: %v", cfg, seed, err)
			}
			if s1, s2 := sp1.Tree.Signature(), sp2.Tree.Signature(); s1 != s2 {
				t.Fatalf("cfg %+v seed %d: same-seed trees differ:\n%s\nvs\n%s", cfg, seed, s1, s2)
			}
			if g1, g2 := sp1.G.String(), sp2.G.String(); g1 != g2 {
				t.Fatalf("cfg %+v seed %d: same-seed graphs differ", cfg, seed)
			}
			if len(sp1.Forks) != len(sp2.Forks) || len(sp1.Loops) != len(sp2.Loops) {
				t.Fatalf("cfg %+v seed %d: annotation counts differ", cfg, seed)
			}
			for i := range sp1.Forks {
				if len(sp1.Forks[i]) != len(sp2.Forks[i]) {
					t.Fatalf("cfg %+v seed %d: fork %d sizes differ", cfg, seed, i)
				}
				for j := range sp1.Forks[i] {
					if sp1.Forks[i][j] != sp2.Forks[i][j] {
						t.Fatalf("cfg %+v seed %d: fork %d edge %d differs: %s vs %s",
							cfg, seed, i, j, sp1.Forks[i][j], sp2.Forks[i][j])
					}
				}
			}
			for i := range sp1.Loops {
				for j := range sp1.Loops[i] {
					if sp1.Loops[i][j] != sp2.Loops[i][j] {
						t.Fatalf("cfg %+v seed %d: loop %d edge %d differs", cfg, seed, i, j)
					}
				}
			}
			// Runs drawn with equal seeds from equal specs agree.
			r1, err := RandomRun(sp1, DefaultRunParams(), rand.New(rand.NewSource(seed+100)))
			if err != nil {
				t.Fatal(err)
			}
			r2, err := RandomRun(sp2, DefaultRunParams(), rand.New(rand.NewSource(seed+100)))
			if err != nil {
				t.Fatal(err)
			}
			if r1.Tree.Signature() != r2.Tree.Signature() {
				t.Fatalf("cfg %+v seed %d: same-seed runs differ", cfg, seed)
			}
		}
	}
}

// TestMutationsDeterministic extends the determinism pin to the
// mutation scripts: the same seed must pick the same edits.
func TestMutationsDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		run := func() string {
			rng := rand.New(rand.NewSource(seed))
			sp, err := RandomSpec(SpecConfig{Edges: 12, SeriesRatio: 1, Forks: 2, Loops: 1}, rng)
			if err != nil {
				t.Fatal(err)
			}
			muts, err := Mutate(sp, 3, rng)
			if err != nil {
				t.Fatal(err)
			}
			out := ""
			for _, m := range muts {
				out += m.Name + ":" + m.Spec.Tree.Signature() + ";"
			}
			return out
		}
		if a, b := run(), run(); a != b {
			t.Fatalf("seed %d: same-seed mutation scripts differ", seed)
		}
	}
}
