package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/spec"
)

// The paper's evaluation (Table I) uses six real scientific workflows
// collected from myExperiment. The workflows themselves are no longer
// available; this catalog reconstructs SP specifications with exactly
// the published characteristics (|V|, |E|, |F|, ||F||, |L|, ||L||),
// which is what drives the differencing workload of Fig. 11. The
// reconstruction is verified against Table I by unit test.

// CatalogNames lists the six Table I workflows in paper order.
var CatalogNames = []string{"PA", "EMBOSS", "SAXPF", "MB", "PGAQ", "BAIDD"}

// Catalog builds a Table I workflow specification by name.
func Catalog(name string) (*spec.Spec, error) {
	switch name {
	case "PA":
		return buildPA()
	case "EMBOSS":
		return buildEMBOSS()
	case "SAXPF":
		return buildSAXPF()
	case "MB":
		return buildMB()
	case "PGAQ":
		return buildPGAQ()
	case "BAIDD":
		return buildBAIDD()
	}
	return nil, fmt.Errorf("gen: unknown catalog workflow %q", name)
}

// builder assembles chain-of-blocks SP workflows and tracks the edge
// sets needed for fork/loop annotations.
type builder struct {
	g    *graph.Graph
	cur  graph.NodeID
	next int
}

func newBuilder() *builder {
	b := &builder{g: graph.New()}
	b.cur = b.fresh()
	return b
}

func (b *builder) fresh() graph.NodeID {
	id := graph.NodeID(fmt.Sprintf("m%d", b.next))
	b.g.MustAddNode(id, string(id))
	b.next++
	return id
}

// chain extends the workflow by k sequential modules and returns the
// edges added.
func (b *builder) chain(k int) spec.EdgeSet {
	var out spec.EdgeSet
	for i := 0; i < k; i++ {
		nxt := b.fresh()
		out = append(out, b.g.MustAddEdge(b.cur, nxt))
		b.cur = nxt
	}
	return out
}

// block appends a parallel block: paths[i] interior modules on branch
// i (0 = a direct edge). It returns the per-branch edge sets and the
// block's sink follows b.cur.
func (b *builder) block(paths ...int) []spec.EdgeSet {
	src := b.cur
	dst := b.fresh()
	out := make([]spec.EdgeSet, len(paths))
	for i, interior := range paths {
		prev := src
		for j := 0; j < interior; j++ {
			mid := b.fresh()
			out[i] = append(out[i], b.g.MustAddEdge(prev, mid))
			prev = mid
		}
		out[i] = append(out[i], b.g.MustAddEdge(prev, dst))
	}
	b.cur = dst
	return out
}

func union(sets ...spec.EdgeSet) spec.EdgeSet {
	var out spec.EdgeSet
	for _, s := range sets {
		out = append(out, s...)
	}
	return out
}

// buildPA reconstructs the protein-annotation workflow with Table I
// characteristics |V|=11, |E|=13, |F|=3, ||F||=6, |L|=1, ||L||=6.
func buildPA() (*spec.Spec, error) {
	b := newBuilder()
	b.chain(1)                // 1 -> 2
	blast := b.block(1, 1, 1) // 2 -> {3,4,5} -> 6
	b.chain(2)                // 6 -> 7 -> 8
	b.block(1, 1)             // 8 -> {9,10} -> 11
	forks := []spec.EdgeSet{blast[0], blast[1], blast[2]}
	loops := []spec.EdgeSet{union(blast...)}
	return spec.New(b.g, forks, loops)
}

// buildEMBOSS: |V|=17, |E|=22, |F|=4, ||F||=10, |L|=2, ||L||=10.
func buildEMBOSS() (*spec.Spec, error) {
	b := newBuilder()
	b.chain(1)
	blockA := b.block(1, 1, 0) // 5 edges
	b.chain(1)
	blockB := b.block(1, 1, 1, 0) // 7 edges
	pre := b.chain(1)
	blockC := b.block(1, 1) // 4 edges
	b.chain(3)
	forks := []spec.EdgeSet{blockA[0], blockA[1], blockB[0], union(blockC...)}
	loops := []spec.EdgeSet{union(blockA...), union(pre, union(blockC...))}
	return spec.New(b.g, forks, loops)
}

// buildSAXPF: |V|=27, |E|=36, |F|=7, ||F||=18, |L|=1, ||L||=7.
func buildSAXPF() (*spec.Spec, error) {
	b := newBuilder()
	b.chain(2)
	b1 := b.block(1, 1, 1, 0) // 7 edges
	b.chain(2)
	b2 := b.block(1, 1, 0) // 5 edges
	b.chain(2)
	pre := b.chain(1)
	b3 := b.block(1, 1, 0) // 5 edges
	b.chain(3)
	b4 := b.block(1, 1, 1, 0) // 7 edges
	b.chain(2)
	_ = b2
	forks := []spec.EdgeSet{
		b1[0], b1[1], b1[2],
		b4[0], b4[1], b4[2],
		union(pre, union(b3...)),
	}
	loops := []spec.EdgeSet{union(b1...)}
	return spec.New(b.g, forks, loops)
}

// buildMB: |V|=17, |E|=19, |F|=2, ||F||=6, |L|=1, ||L||=6.
func buildMB() (*spec.Spec, error) {
	b := newBuilder()
	b.chain(2)
	pre := b.chain(1)
	b1 := b.block(1, 1, 0) // 5 edges
	b.chain(3)
	b2 := b.block(1, 1) // 4 edges
	b.chain(4)
	forks := []spec.EdgeSet{b1[0], union(b2...)}
	loops := []spec.EdgeSet{union(pre, union(b1...))}
	return spec.New(b.g, forks, loops)
}

// buildPGAQ: |V|=37, |E|=41, |F|=4, ||F||=22, |L|=2, ||L||=26.
func buildPGAQ() (*spec.Spec, error) {
	b := newBuilder()
	b.chain(2)
	preA := b.chain(4)
	bA := b.block(1, 1, 0) // 5 edges
	postA := b.chain(4)
	span1 := b.chain(6) // standalone fork span
	b.chain(1)
	preB := b.chain(4)
	bB := b.block(1, 1, 0, 0) // 6 edges
	postB := b.chain(3)
	span2 := b.chain(5) // standalone fork span
	b.chain(1)
	forks := []spec.EdgeSet{
		union(bA...), // 5
		union(bB...), // 6
		span1,        // 6
		span2,        // 5
	}
	loops := []spec.EdgeSet{
		union(preA, union(bA...), postA), // 4+5+4 = 13
		union(preB, union(bB...), postB), // 4+6+3 = 13
	}
	return spec.New(b.g, forks, loops)
}

// buildBAIDD: |V|=29, |E|=36, |F|=8, ||F||=17, |L|=2, ||L||=12.
func buildBAIDD() (*spec.Spec, error) {
	b := newBuilder()
	b.chain(2)
	b1 := b.block(1, 1, 1, 0) // 7 edges
	b.chain(2)
	b2 := b.block(1, 1, 0) // 5 edges
	span := b.chain(3)
	b3 := b.block(1, 1, 0) // 5 edges
	b.chain(2)
	m1 := b.block(0, 0) // 2 parallel edges
	b.chain(8)
	forks := []spec.EdgeSet{
		b1[0], b1[1], b1[2],
		b2[0], b2[1],
		b3[0],
		union(m1...),
		span,
	}
	loops := []spec.EdgeSet{union(b1...), union(b3...)}
	return spec.New(b.g, forks, loops)
}

// ProteinAnnotation builds the full 15-module protein annotation
// workflow of Fig. 1: BLAST against SwissProt/TrEMBL/PIR with forks,
// the reciprocal-best-hit loop back from collectTop1&Compare to
// FastaFormat, optional domain search, and a forked annotation phase.
func ProteinAnnotation() (*spec.Spec, error) {
	g := graph.New()
	names := []string{
		"getProteinSeq", "FastaFormat", "BlastSwP", "BlastTrEMBL", "BlastPIR",
		"collectTop1&Compare", "getDomAnnot", "getProDomDom", "getPFAMDom",
		"extractDomSeq", "getGOAnnot", "getFunCatAnnot", "getBrendaAnnot",
		"getEnzymeAnnot", "exportAnnotSeq",
	}
	ids := make([]graph.NodeID, len(names)+1)
	for i, n := range names {
		id := graph.NodeID(fmt.Sprint(i + 1))
		g.MustAddNode(id, n)
		ids[i+1] = id
	}
	e := func(a, b int) graph.Edge { return g.MustAddEdge(ids[a], ids[b]) }
	e12 := e(1, 2)
	e23, e36 := e(2, 3), e(3, 6)
	e24, e46 := e(2, 4), e(4, 6)
	e25, e56 := e(2, 5), e(5, 6)
	e67 := e(6, 7)
	e78, e810 := e(7, 8), e(8, 10)
	e79, e910 := e(7, 9), e(9, 10)
	e710 := e(7, 10) // domains already known: skip the search
	e1011, e1112, e1215 := e(10, 11), e(11, 12), e(12, 15)
	e1013, e1314, e1415 := e(10, 13), e(13, 14), e(14, 15)
	_ = e12
	forks := []spec.EdgeSet{
		{e23, e36},
		{e24, e46},
		{e25, e56},
		// The per-sequence phase between 6 and 15 forks as a whole.
		{e67, e78, e810, e79, e910, e710, e1011, e1112, e1215, e1013, e1314, e1415},
	}
	loops := []spec.EdgeSet{
		{e23, e36, e24, e46, e25, e56}, // reciprocal best hits: 6 -> 2
	}
	return spec.New(g, forks, loops)
}

// Fig17bSpec builds the synthetic cost-model specification of
// Fig. 17(b): a fork over a block of 10 parallel paths between u and
// v, the i-th of length pathLen(i) (the paper uses i²), preceded and
// followed by single edges s->u and v->t.
func Fig17bSpec(pathLen func(i int) int) (*spec.Spec, error) {
	if pathLen == nil {
		pathLen = func(i int) int { return i * i }
	}
	b := newBuilder()
	b.chain(1) // s -> u
	lens := make([]int, 10)
	for i := range lens {
		lens[i] = pathLen(i+1) - 1 // interior module count
		if lens[i] < 0 {
			return nil, fmt.Errorf("gen: path length must be >= 1")
		}
	}
	paths := b.block(lens...)
	b.chain(1) // v -> t
	forks := []spec.EdgeSet{union(paths...)}
	return spec.New(b.g, forks, nil)
}
