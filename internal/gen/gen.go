// Package gen generates the synthetic workloads of the paper's
// evaluation (Section VIII): random SP-workflow specifications with a
// controlled series/parallel composition ratio and well-nested
// fork/loop annotations, and random valid runs parameterized by
// probP, probF/maxF and probL/maxL. It also reconstructs the six real
// workflow specifications of Table I and the cost-model specification
// of Fig. 17(b).
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// SpecConfig controls RandomSpec.
type SpecConfig struct {
	// Edges is the number of edges of the specification graph.
	Edges int
	// SeriesRatio is r, the ratio of series to parallel compositions
	// (Section VIII-B): a split is series with probability r/(r+1).
	// r = +Inf yields a single path; r = 0 a bundle of multi-edges.
	SeriesRatio float64
	// Forks and Loops are the number of fork and loop subgraphs to
	// annotate (0 for the pure series/parallel experiments).
	Forks, Loops int
}

// region records a subgraph created by one recursive split, usable as
// a fork or loop annotation.
type region struct {
	edges spec.EdgeSet
	// forkOK: the region is an exact decomposition-tree node or a
	// consecutive span of S children (true unless it is a parallel
	// branch that got flattened into its parallel parent).
	forkOK bool
	// loopOK additionally requires the region to be a complete
	// subgraph (it contains all paths between its terminals), which
	// fails for any branch of a parallel split.
	loopOK bool
}

// RandomSpec generates a random SP-workflow specification.
func RandomSpec(cfg SpecConfig, rng *rand.Rand) (*spec.Spec, error) {
	if cfg.Edges < 1 {
		return nil, fmt.Errorf("gen: need at least one edge")
	}
	g := graph.New()
	next := 0
	newNode := func() graph.NodeID {
		id := graph.NodeID(fmt.Sprintf("n%d", next))
		g.MustAddNode(id, string(id))
		next++
		return id
	}
	pSeries := cfg.SeriesRatio / (cfg.SeriesRatio + 1)
	var regions []region

	// build creates a random SP subgraph with `budget` edges between
	// s and t. parentParallel marks that this region is a branch of a
	// parallel split (not complete; only a fork candidate if it is an
	// exact node, which holds unless it is itself a parallel split —
	// then it merges with the parent P and is not even that).
	var build func(s, t graph.NodeID, budget int, parentParallel bool) region
	build = func(s, t graph.NodeID, budget int, parentParallel bool) region {
		if budget == 1 {
			e := g.MustAddEdge(s, t)
			r := region{edges: spec.EdgeSet{e}, forkOK: true, loopOK: !parentParallel}
			regions = append(regions, r)
			return r
		}
		split := budget / 2
		if budget > 2 {
			split = 1 + rng.Intn(budget-1)
		}
		var r region
		if rng.Float64() < pSeries {
			mid := newNode()
			left := build(s, mid, split, false)
			right := build(mid, t, budget-split, false)
			r = region{edges: append(append(spec.EdgeSet{}, left.edges...), right.edges...),
				forkOK: true, loopOK: !parentParallel}
		} else {
			left := build(s, t, split, true)
			right := build(s, t, budget-split, true)
			r = region{edges: append(append(spec.EdgeSet{}, left.edges...), right.edges...),
				// A parallel split nested directly under a parallel
				// split flattens into the parent P node, so it is
				// not an exact tree node.
				forkOK: !parentParallel, loopOK: !parentParallel}
		}
		regions = append(regions, r)
		return r
	}
	s, t := newNode(), newNode()
	build(s, t, cfg.Edges, false)

	// Parallel branches that are themselves parallel splits are not
	// exact tree nodes; their children are, so fork candidates are
	// plentiful. Pick disjoint-or-nested candidates at random — the
	// construction tree is laminar by design.
	var forkCands, loopCands []int
	for i, r := range regions {
		full := len(r.edges) == cfg.Edges
		if r.forkOK && !full {
			forkCands = append(forkCands, i)
		}
		if r.loopOK && !full {
			loopCands = append(loopCands, i)
		}
	}
	used := map[int]bool{}
	pick := func(cands []int, n int) []spec.EdgeSet {
		var out []spec.EdgeSet
		perm := rng.Perm(len(cands))
		for _, pi := range perm {
			if len(out) == n {
				break
			}
			idx := cands[pi]
			if used[idx] {
				continue
			}
			used[idx] = true
			out = append(out, regions[idx].edges)
		}
		return out
	}
	forks := pick(forkCands, cfg.Forks)
	loops := pick(loopCands, cfg.Loops)
	return spec.New(g, forks, loops)
}

// RunParams are the run generation parameters of Section VIII: probP
// is the probability each parallel branch is taken; each fork (loop)
// execution replicates up to MaxF (MaxL) copies, each taken with
// probability ProbF (ProbL); at least one branch/copy/iteration is
// always executed.
type RunParams struct {
	ProbP float64
	ProbF float64
	MaxF  int
	ProbL float64
	MaxL  int
}

// DefaultRunParams mirrors the paper's common setting: 95% branch
// probability and modest fork/loop replication.
func DefaultRunParams() RunParams {
	return RunParams{ProbP: 0.95, ProbF: 0.5, MaxF: 4, ProbL: 0.5, MaxL: 4}
}

type randDecider struct {
	p   RunParams
	rng *rand.Rand
}

// NewDecider builds a wfrun.Decider drawing choices from params.
func NewDecider(p RunParams, rng *rand.Rand) wfrun.Decider {
	return &randDecider{p: p, rng: rng}
}

func (d *randDecider) ParallelSubset(p *sptree.Node) []int {
	var subset []int
	for i := range p.Children {
		if d.rng.Float64() < d.p.ProbP {
			subset = append(subset, i)
		}
	}
	if len(subset) == 0 {
		subset = []int{d.rng.Intn(len(p.Children))}
	}
	return subset
}

func (d *randDecider) ForkCopies(*sptree.Node) int {
	return d.count(d.p.ProbF, d.p.MaxF)
}

func (d *randDecider) LoopIterations(*sptree.Node) int {
	return d.count(d.p.ProbL, d.p.MaxL)
}

func (d *randDecider) count(prob float64, max int) int {
	n := 0
	for i := 0; i < max; i++ {
		if d.rng.Float64() < prob {
			n++
		}
	}
	if n == 0 {
		n = 1
	}
	return n
}

// RandomRun executes a random valid run of sp with the given
// parameters.
func RandomRun(sp *spec.Spec, p RunParams, rng *rand.Rand) (*wfrun.Run, error) {
	return wfrun.Execute(sp, NewDecider(p, rng))
}

// RunWithTargetEdges generates a random run whose graph has
// approximately target edges (within the given relative tolerance) by
// adaptively scaling the fork/loop replication, as needed to sweep run
// sizes in the Fig. 11 experiment. It returns the best run found if
// the tolerance cannot be met within the attempt budget.
func RunWithTargetEdges(sp *spec.Spec, target int, tol float64, p RunParams, rng *rand.Rand) (*wfrun.Run, error) {
	if target < sp.G.NumEdges()/2 {
		return nil, fmt.Errorf("gen: target %d below minimum plausible run size", target)
	}
	best := (*wfrun.Run)(nil)
	bestErr := 1e18
	params := p
	if params.MaxF < 1 {
		params.MaxF = 1
	}
	if params.MaxL < 1 {
		params.MaxL = 1
	}
	for attempt := 0; attempt < 48; attempt++ {
		r, err := RandomRun(sp, params, rng)
		if err != nil {
			return nil, err
		}
		got := r.NumEdges()
		diff := float64(got-target) / float64(target)
		if abs(diff) < abs(bestErr) {
			best, bestErr = r, diff
		}
		if abs(diff) <= tol {
			return r, nil
		}
		// Scale replication toward the target.
		scale := float64(target) / float64(got)
		params.MaxF = clamp(int(float64(params.MaxF)*scale+0.5), 1, 4096)
		params.MaxL = clamp(int(float64(params.MaxL)*scale+0.5), 1, 4096)
	}
	if best == nil {
		return nil, fmt.Errorf("gen: could not generate a run near %d edges", target)
	}
	return best, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func clamp(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
