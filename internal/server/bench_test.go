package server

// Service-layer latency benchmarks. BenchmarkServeDiffCold measures a
// full diff request through the handler with the result cache
// disabled for that request (purged each iteration): engine checkout,
// differencing, script extraction, JSON encoding. BenchmarkServeDiffCached
// measures the same request served from the LRU. CI runs
// TestWriteBenchArtifact with BENCH_SERVER_JSON set to persist both as
// BENCH_server.json, so future PRs can track service-layer latency.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfxml"
)

func benchRequest(b *testing.B, srv *Server, target string) {
	b.Helper()
	req := httptest.NewRequest("GET", target, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s = %d %q", target, rec.Code, rec.Body.String())
	}
}

func BenchmarkServeDiffCached(b *testing.B) {
	srv, _ := seedServer(b, 2, Options{CacheSize: 8})
	benchRequest(b, srv, "/diff/pa/r0/r1") // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, "/diff/pa/r0/r1")
	}
}

func BenchmarkServeDiffCold(b *testing.B) {
	srv, _ := seedServer(b, 2, Options{CacheSize: 8})
	benchRequest(b, srv, "/diff/pa/r0/r1") // warm the engine pool and run cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.cache.purge()
		benchRequest(b, srv, "/diff/pa/r0/r1")
	}
}

func BenchmarkServeCohort(b *testing.B) {
	srv, _ := seedServer(b, 6, Options{CacheSize: 8})
	benchRequest(b, srv, "/cohort/pa")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, "/cohort/pa")
	}
}

// BenchmarkClusterCohort measures a k-medoids request over a 32-run
// cohort with a warm incremental matrix but a cold payload cache —
// the steady-state cost of re-clustering after each import.
func BenchmarkClusterCohort(b *testing.B) {
	srv, _ := seedServer(b, 32, Options{CacheSize: 8})
	benchRequest(b, srv, "/specs/pa/cluster?k=3") // build the matrix once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.cache.purge()
		benchRequest(b, srv, "/specs/pa/cluster?k=3")
	}
}

// BenchmarkIncrementalImport measures the full import→query→delete
// cycle against a 32-run cohort: each iteration diffs only the new
// row (32 pairs) instead of rebuilding all 496, which is what makes
// a growing repository affordable. The sibling full-recompute cost is
// BenchmarkServeCohort scaled to 32 runs; the diff-call ratio itself
// is asserted in TestCohortMatrixIncrementalSavesDiffs and
// TestCohortMatrixIncrementalOverHTTP.
func BenchmarkIncrementalImport(b *testing.B) {
	srv, st := seedServer(b, 32, Options{CacheSize: 8})
	body := encodeRun(b, st, 555)
	benchRequest(b, srv, "/specs/pa/nearest?run=r0&k=3") // build the matrix once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do(b, srv, "POST", "/specs/pa/runs/bench-fresh", body, nil)
		if rec.Code != 201 {
			b.Fatalf("import = %d", rec.Code)
		}
		benchRequest(b, srv, "/specs/pa/nearest?run=bench-fresh&k=3")
		if rec := do(b, srv, "DELETE", "/specs/pa/runs/bench-fresh", nil, nil); rec.Code != 200 {
			b.Fatalf("delete = %d", rec.Code)
		}
	}
}

// BenchmarkFullRecompute32 is the baseline BenchmarkIncrementalImport
// beats: a from-scratch 32-run matrix per iteration, as served before
// the incremental cohort cache existed.
func BenchmarkFullRecompute32(b *testing.B) {
	srv, _ := seedServer(b, 32, Options{CacheSize: 8})
	benchRequest(b, srv, "/cohort/pa")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, "/cohort/pa")
	}
}

// TestWriteBenchArtifact materializes the service benchmarks as a JSON
// file (path in $BENCH_SERVER_JSON) for the CI benchmark artifact. It
// is skipped in normal test runs.
func TestWriteBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SERVER_JSON")
	if path == "" {
		t.Skip("BENCH_SERVER_JSON not set")
	}
	type entry struct {
		NsPerOp       int64   `json:"ns_per_op"`
		AllocsPerOp   int64   `json:"allocs_per_op"`
		BytesPerOp    int64   `json:"bytes_per_op"`
		N             int     `json:"n"`
		MsPerOp       float64 `json:"ms_per_op"`
		SpeedupVsCold float64 `json:"speedup_vs_cold,omitempty"`
	}
	run := func(fn func(*testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
		}
	}
	cached := run(BenchmarkServeDiffCached)
	cold := run(BenchmarkServeDiffCold)
	cohort := run(BenchmarkServeCohort)
	clusterCohort := run(BenchmarkClusterCohort)
	incremental := run(BenchmarkIncrementalImport)
	full32 := run(BenchmarkFullRecompute32)
	sustainedPipeline := run(func(b *testing.B) {
		benchSustainedIngest(b, Options{IngestBatch: ingestClients, IngestMaxWait: 2 * time.Millisecond})
	})
	sustainedDirect := run(func(b *testing.B) {
		benchSustainedIngest(b, Options{DirectIngest: true})
	})
	if cold.NsPerOp > 0 {
		cached.SpeedupVsCold = float64(cold.NsPerOp) / float64(max(cached.NsPerOp, 1))
	}
	if full32.NsPerOp > 0 {
		incremental.SpeedupVsCold = float64(full32.NsPerOp) / float64(max(incremental.NsPerOp, 1))
	}
	if sustainedDirect.NsPerOp > 0 {
		sustainedPipeline.SpeedupVsCold = float64(sustainedDirect.NsPerOp) / float64(max(sustainedPipeline.NsPerOp, 1))
	}
	out := map[string]entry{
		"serve_diff_cached":         cached,
		"serve_diff_cold":           cold,
		"serve_cohort":              cohort,
		"cluster_cohort":            clusterCohort,
		"incremental_import":        incremental,
		"full_recompute_32":         full32,
		"sustained_ingest_pipeline": sustainedPipeline,
		"sustained_ingest_direct":   sustainedDirect,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cached %.3fms vs cold %.3fms (%.1fx); incremental import %.3fms vs full recompute %.3fms (%.1fx); sustained ingest pipeline %.3fms vs direct %.3fms (%.1fx)",
		path, cached.MsPerOp, cold.MsPerOp, cached.SpeedupVsCold,
		incremental.MsPerOp, full32.MsPerOp, incremental.SpeedupVsCold,
		sustainedPipeline.MsPerOp, sustainedDirect.MsPerOp, sustainedPipeline.SpeedupVsCold)
	if cached.NsPerOp >= cold.NsPerOp {
		t.Errorf("cached path (%d ns/op) is not faster than cold path (%d ns/op)", cached.NsPerOp, cold.NsPerOp)
	}
	if incremental.NsPerOp >= full32.NsPerOp {
		t.Errorf("incremental import (%d ns/op) is not faster than a full 32-run recompute (%d ns/op)", incremental.NsPerOp, full32.NsPerOp)
	}
	// The group-commit pipeline's headline claim is >=3x sustained
	// import-and-read throughput; assert with noise margin (measured
	// 3.9-5.1x on a single-core CI box).
	if sustainedPipeline.SpeedupVsCold < 2.5 {
		t.Errorf("sustained ingest pipeline speedup = %.2fx over direct, want >= 2.5x (pipeline %d ns/op, direct %d ns/op)",
			sustainedPipeline.SpeedupVsCold, sustainedPipeline.NsPerOp, sustainedDirect.NsPerOp)
	}
}

// smallRunBody encodes a run generated with low fork/loop replication:
// the import-cost profile where per-run bookkeeping (manifest saves,
// segment appends, fsync, cache eviction) dominates over parsing.
func smallRunBody(b *testing.B, st *store.Store, seed int64) []byte {
	b.Helper()
	sp, err := st.LoadSpec("pa")
	if err != nil {
		b.Fatal(err)
	}
	p := gen.RunParams{ProbP: 0.9}
	r, err := gen.RandomRun(sp, p, rand.New(rand.NewSource(seed)))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, "x"); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchSustainedIngest drives eight concurrent import-and-read-back
// clients: each iteration overwrites the client's run and immediately
// diffs it against a stable reference — a live repository under
// sustained ingest with its results actually being consumed. The
// direct (pre-pipeline) arm pays the full per-run lifecycle every
// time: a manifest save to drop the stale snapshot entry, a cache
// eviction, then on the read-back an XML re-parse plus a write-behind
// segment append and another manifest save. The pipeline arm parses
// once, publishes the run, and amortizes one fsynced append + one
// manifest save over the whole batch.
func benchSustainedIngest(b *testing.B, opts Options) {
	opts.CacheSize = -1 // no result LRU: every read-back does real work
	srv, st := seedServer(b, 2, opts)
	defer srv.Close()
	bodies := make([][]byte, 8)
	for i := range bodies {
		bodies[i] = smallRunBody(b, st, int64(2000+i))
	}
	// Materialize one run per client (and snapshot frames for the
	// seeded anchors) so the timed loop measures steady-state
	// overwrites.
	for i := 0; i < ingestClients; i++ {
		target := fmt.Sprintf("/v1/specs/pa/runs/w%d", i)
		if rec := do(b, srv, "POST", target, bodies[i%len(bodies)], nil); rec.Code != http.StatusCreated {
			b.Fatalf("%s = %d %q", target, rec.Code, rec.Body.String())
		}
	}
	if _, err := st.Snapshot("pa"); err != nil {
		b.Fatal(err)
	}
	var clients atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.SetParallelism(ingestClients)
	b.RunParallel(func(pb *testing.PB) {
		// One run name per client: overwrites of a name never race its
		// own read-back.
		c := int(clients.Add(1)-1) % ingestClients // one name per goroutine: ids stay unique
		name := fmt.Sprintf("w%d", c)
		for i := c; pb.Next(); i++ {
			rec := do(b, srv, "POST", "/v1/specs/pa/runs/"+name, bodies[i%len(bodies)], nil)
			if rec.Code != http.StatusCreated {
				b.Errorf("import %s = %d %q", name, rec.Code, rec.Body.String())
				return
			}
			target := "/v1/specs/pa/diff/" + name + "/r0"
			if rec := do(b, srv, "GET", target, nil, nil); rec.Code != http.StatusOK {
				b.Errorf("%s = %d %q", target, rec.Code, rec.Body.String())
				return
			}
		}
	})
}

// ingestClients is the concurrency of BenchmarkSustainedIngest (the
// bench runs on GOMAXPROCS(1) CI boxes, so SetParallelism alone sets
// the client count).
const ingestClients = 32

func BenchmarkSustainedIngest(b *testing.B) {
	b.Run("pipeline", func(b *testing.B) {
		benchSustainedIngest(b, Options{IngestBatch: ingestClients, IngestMaxWait: 2 * time.Millisecond})
	})
	b.Run("direct", func(b *testing.B) { benchSustainedIngest(b, Options{DirectIngest: true}) })
}
