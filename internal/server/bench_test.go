package server

// Service-layer latency benchmarks. BenchmarkServeDiffCold measures a
// full diff request through the handler with the result cache
// disabled for that request (purged each iteration): engine checkout,
// differencing, script extraction, JSON encoding. BenchmarkServeDiffCached
// measures the same request served from the LRU. CI runs
// TestWriteBenchArtifact with BENCH_SERVER_JSON set to persist both as
// BENCH_server.json, so future PRs can track service-layer latency.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
)

func benchRequest(b *testing.B, srv *Server, target string) {
	b.Helper()
	req := httptest.NewRequest("GET", target, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("%s = %d %q", target, rec.Code, rec.Body.String())
	}
}

func BenchmarkServeDiffCached(b *testing.B) {
	srv, _ := seedServer(b, 2, Options{CacheSize: 8})
	benchRequest(b, srv, "/diff/pa/r0/r1") // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, "/diff/pa/r0/r1")
	}
}

func BenchmarkServeDiffCold(b *testing.B) {
	srv, _ := seedServer(b, 2, Options{CacheSize: 8})
	benchRequest(b, srv, "/diff/pa/r0/r1") // warm the engine pool and run cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.cache.purge()
		benchRequest(b, srv, "/diff/pa/r0/r1")
	}
}

func BenchmarkServeCohort(b *testing.B) {
	srv, _ := seedServer(b, 6, Options{CacheSize: 8})
	benchRequest(b, srv, "/cohort/pa")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, "/cohort/pa")
	}
}

// BenchmarkClusterCohort measures a k-medoids request over a 32-run
// cohort with a warm incremental matrix but a cold payload cache —
// the steady-state cost of re-clustering after each import.
func BenchmarkClusterCohort(b *testing.B) {
	srv, _ := seedServer(b, 32, Options{CacheSize: 8})
	benchRequest(b, srv, "/specs/pa/cluster?k=3") // build the matrix once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv.cache.purge()
		benchRequest(b, srv, "/specs/pa/cluster?k=3")
	}
}

// BenchmarkIncrementalImport measures the full import→query→delete
// cycle against a 32-run cohort: each iteration diffs only the new
// row (32 pairs) instead of rebuilding all 496, which is what makes
// a growing repository affordable. The sibling full-recompute cost is
// BenchmarkServeCohort scaled to 32 runs; the diff-call ratio itself
// is asserted in TestCohortMatrixIncrementalSavesDiffs and
// TestCohortMatrixIncrementalOverHTTP.
func BenchmarkIncrementalImport(b *testing.B) {
	srv, st := seedServer(b, 32, Options{CacheSize: 8})
	body := encodeRun(b, st, 555)
	benchRequest(b, srv, "/specs/pa/nearest?run=r0&k=3") // build the matrix once
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := do(b, srv, "POST", "/specs/pa/runs/bench-fresh", body, nil)
		if rec.Code != 201 {
			b.Fatalf("import = %d", rec.Code)
		}
		benchRequest(b, srv, "/specs/pa/nearest?run=bench-fresh&k=3")
		if rec := do(b, srv, "DELETE", "/specs/pa/runs/bench-fresh", nil, nil); rec.Code != 200 {
			b.Fatalf("delete = %d", rec.Code)
		}
	}
}

// BenchmarkFullRecompute32 is the baseline BenchmarkIncrementalImport
// beats: a from-scratch 32-run matrix per iteration, as served before
// the incremental cohort cache existed.
func BenchmarkFullRecompute32(b *testing.B) {
	srv, _ := seedServer(b, 32, Options{CacheSize: 8})
	benchRequest(b, srv, "/cohort/pa")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRequest(b, srv, "/cohort/pa")
	}
}

// TestWriteBenchArtifact materializes the service benchmarks as a JSON
// file (path in $BENCH_SERVER_JSON) for the CI benchmark artifact. It
// is skipped in normal test runs.
func TestWriteBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_SERVER_JSON")
	if path == "" {
		t.Skip("BENCH_SERVER_JSON not set")
	}
	type entry struct {
		NsPerOp       int64   `json:"ns_per_op"`
		AllocsPerOp   int64   `json:"allocs_per_op"`
		BytesPerOp    int64   `json:"bytes_per_op"`
		N             int     `json:"n"`
		MsPerOp       float64 `json:"ms_per_op"`
		SpeedupVsCold float64 `json:"speedup_vs_cold,omitempty"`
	}
	run := func(fn func(*testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
		}
	}
	cached := run(BenchmarkServeDiffCached)
	cold := run(BenchmarkServeDiffCold)
	cohort := run(BenchmarkServeCohort)
	clusterCohort := run(BenchmarkClusterCohort)
	incremental := run(BenchmarkIncrementalImport)
	full32 := run(BenchmarkFullRecompute32)
	if cold.NsPerOp > 0 {
		cached.SpeedupVsCold = float64(cold.NsPerOp) / float64(max(cached.NsPerOp, 1))
	}
	if full32.NsPerOp > 0 {
		incremental.SpeedupVsCold = float64(full32.NsPerOp) / float64(max(incremental.NsPerOp, 1))
	}
	out := map[string]entry{
		"serve_diff_cached":  cached,
		"serve_diff_cold":    cold,
		"serve_cohort":       cohort,
		"cluster_cohort":     clusterCohort,
		"incremental_import": incremental,
		"full_recompute_32":  full32,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cached %.3fms vs cold %.3fms (%.1fx); incremental import %.3fms vs full recompute %.3fms (%.1fx)",
		path, cached.MsPerOp, cold.MsPerOp, cached.SpeedupVsCold,
		incremental.MsPerOp, full32.MsPerOp, incremental.SpeedupVsCold)
	if cached.NsPerOp >= cold.NsPerOp {
		t.Errorf("cached path (%d ns/op) is not faster than cold path (%d ns/op)", cached.NsPerOp, cold.NsPerOp)
	}
	if incremental.NsPerOp >= full32.NsPerOp {
		t.Errorf("incremental import (%d ns/op) is not faster than a full 32-run recompute (%d ns/op)", incremental.NsPerOp, full32.NsPerOp)
	}
}
