package server

import (
	"container/list"
	"sync"
)

// cacheKey identifies one cached per-pair artifact. kind distinguishes
// the JSON diff payload from the rendered SVG so both can be cached
// for the same pair without clashing. Cross-version artifacts carry
// the second specification in spec2 (runA belongs to spec, runB to
// spec2); same-spec artifacts leave it empty.
type cacheKey struct {
	spec, runA, runB, cost, kind string
	spec2                        string
}

const (
	kindDiff     = "diff"
	kindSVG      = "svg"
	kindCluster  = "cluster"
	kindOutliers = "outliers"
	kindNearest  = "nearest"
	kindCross    = "xdiff"
	kindEvolve   = "evolve"
	kindDrift    = "drift"
)

// cohortScoped reports whether a cached artifact depends on the whole
// cohort of its spec rather than on one run pair; such entries are
// invalidated by any run change in the spec. (A nearest-neighbor
// answer for run A changes when run B is imported, so per-run
// invalidation would serve stale neighbors.)
func cohortScoped(kind string) bool {
	switch kind {
	case kindCluster, kindOutliers, kindNearest, kindDrift:
		return true
	}
	return false
}

// resultCache is a bounded LRU of computed diff artifacts. Differencing
// a 400-edge pair costs ~0.4ms of CPU; a repository browsed
// interactively re-requests the same few pairs constantly, so a small
// cache absorbs most of the traffic. Entries for a run are invalidated
// when that run is re-imported or deleted (wired to store.OnRunChange).
// A capacity <= 0 disables caching entirely.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element
	gen   int64 // bumped by every invalidation; see addIfGen

	hits, misses, evictions, invalidations int64
}

type cacheEntry struct {
	key cacheKey
	val any
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[cacheKey]*list.Element),
	}
}

// get returns the cached value and promotes it to most-recent.
func (c *resultCache) get(key cacheKey) (any, bool) {
	if c.cap <= 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).val, true
}

// generation returns the invalidation generation a computation should
// capture before it starts reading store state.
func (c *resultCache) generation() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// addIfGen inserts a value only if no invalidation has happened since
// the caller captured gen. This closes the compute/invalidate race: a
// run overwritten while its diff was being computed bumps the
// generation, so the stale payload is discarded instead of cached.
func (c *resultCache) addIfGen(key cacheKey, val any, gen int64) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return
	}
	c.addLocked(key, val)
}

// add inserts (or refreshes) a value, evicting the least-recently-used
// entry when over capacity.
func (c *resultCache) add(key cacheKey, val any) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addLocked(key, val)
}

func (c *resultCache) addLocked(key cacheKey, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		c.evictions++
	}
}

// invalidateRun drops every cached artifact involving the given run of
// the given specification — pair artifacts naming the run in either
// diff position, plus every cohort-scoped artifact of the spec.
func (c *resultCache) invalidateRun(specName, runName string) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	for key, el := range c.items {
		match := key.spec == specName && (key.runA == runName || key.runB == runName || cohortScoped(key.kind))
		// Cross-version entries: runB lives in spec2, so a change to
		// that run must drop them too.
		if key.spec2 == specName && key.runB == runName {
			match = true
		}
		if match {
			c.ll.Remove(el)
			delete(c.items, key)
			c.invalidations++
		}
	}
}

// purge empties the cache (used by the cold-path benchmark).
func (c *resultCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
}

// cacheStats is a point-in-time snapshot for /stats.
type cacheStats struct {
	Capacity      int     `json:"capacity"`
	Size          int     `json:"size"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	Evictions     int64   `json:"evictions"`
	Invalidations int64   `json:"invalidations"`
	HitRate       float64 `json:"hit_rate"`
}

func (c *resultCache) snapshot() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := cacheStats{
		Capacity:      c.cap,
		Size:          c.ll.Len(),
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
	}
	if total := s.Hits + s.Misses; total > 0 {
		s.HitRate = float64(s.Hits) / float64(total)
	}
	return s
}
