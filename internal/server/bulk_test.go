package server

import (
	"archive/tar"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfxml"
)

// bulkTar builds a tar archive of n fresh runs of the stored "pa"
// spec, named prefix0..prefix{n-1}, and returns it with the names.
func bulkTar(tb testing.TB, st *store.Store, n int, seed int64, prefix string) ([]byte, []string) {
	tb.Helper()
	sp, err := st.LoadSpec("pa")
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	tw := tar.NewWriter(&buf)
	names := make([]string, n)
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			tb.Fatal(err)
		}
		var xmlBuf bytes.Buffer
		names[i] = fmt.Sprintf("%s%d", prefix, i)
		if err := wfxml.EncodeRun(&xmlBuf, r, names[i]); err != nil {
			tb.Fatal(err)
		}
		if err := tw.WriteHeader(&tar.Header{
			Name: "runs/" + names[i] + ".xml",
			Mode: 0o644,
			Size: int64(xmlBuf.Len()),
		}); err != nil {
			tb.Fatal(err)
		}
		if _, err := tw.Write(xmlBuf.Bytes()); err != nil {
			tb.Fatal(err)
		}
	}
	if err := tw.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), names
}

func TestBulkImportTar(t *testing.T) {
	srv, st := seedServer(t, 2, Options{CacheSize: 16})
	archive, names := bulkTar(t, st, 5, 31, "bulk")

	var resp struct {
		Spec     string   `json:"spec"`
		Imported int      `json:"imported"`
		Runs     []string `json:"runs"`
	}
	rec := do(t, srv, "POST", "/specs/pa/runs:bulk", archive, &resp)
	if rec.Code != http.StatusCreated {
		t.Fatalf("bulk import = %d %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("bulk import Content-Type = %q", ct)
	}
	if resp.Imported != 5 || len(resp.Runs) != 5 || resp.Spec != "pa" {
		t.Fatalf("payload: %+v", resp)
	}
	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, srv, "GET", "/specs/pa/runs", nil, &runs)
	if len(runs.Runs) != 7 {
		t.Fatalf("runs after bulk = %v", runs.Runs)
	}
	for _, n := range names {
		if rec := do(t, srv, "GET", "/diff/pa/r0/"+n, nil, nil); rec.Code != 200 {
			t.Fatalf("diff vs imported %s = %d", n, rec.Code)
		}
	}
}

func TestBulkImportNDJSON(t *testing.T) {
	srv, st := seedServer(t, 1, Options{CacheSize: 16})
	sp, err := st.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	var body bytes.Buffer
	for i := 0; i < 3; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		var xmlBuf bytes.Buffer
		if err := wfxml.EncodeRun(&xmlBuf, r, "x"); err != nil {
			t.Fatal(err)
		}
		line, _ := json.Marshal(bulkRunJSON{Name: fmt.Sprintf("nd%d", i), XML: xmlBuf.String()})
		body.Write(line)
		body.WriteByte('\n')
	}
	req := httptest.NewRequest("POST", "/specs/pa/runs:bulk", bytes.NewReader(body.Bytes()))
	req.Header.Set("Content-Type", "application/x-ndjson")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusCreated {
		t.Fatalf("ndjson bulk import = %d %q", rec.Code, rec.Body.String())
	}
	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, srv, "GET", "/specs/pa/runs", nil, &runs)
	if len(runs.Runs) != 4 {
		t.Fatalf("runs after ndjson bulk = %v", runs.Runs)
	}
}

func TestBulkImportRejectsGarbage(t *testing.T) {
	srv, _ := seedServer(t, 1, Options{CacheSize: 8})
	if rec := do(t, srv, "POST", "/specs/pa/runs:bulk", []byte("not a tar"), nil); rec.Code != 400 {
		t.Fatalf("garbage tar = %d", rec.Code)
	}
	if rec := do(t, srv, "POST", "/specs/nope/runs:bulk", nil, nil); rec.Code != 404 {
		t.Fatalf("unknown spec = %d", rec.Code)
	}
}

// TestBulkImportSingleRebuild is the acceptance assertion for
// coalesced invalidation: importing a whole cohort in one bulk
// request triggers exactly ONE cohort-matrix rebuild per spec, where
// the same runs imported one-by-one would each resync the matrix.
func TestBulkImportSingleRebuild(t *testing.T) {
	srv, st := seedServer(t, 4, Options{CacheSize: 16})
	// Build the incremental matrix.
	if rec := do(t, srv, "GET", "/specs/pa/cluster?k=2", nil, nil); rec.Code != 200 {
		t.Fatalf("cluster = %d", rec.Code)
	}
	e := srv.cohorts.entry("pa", cost.Unit{})
	if e == nil {
		t.Fatal("no cohort entry")
	}
	if got := e.hc.Rebuilds(); got != 1 {
		t.Fatalf("initial build count = %d, want 1", got)
	}

	archive, _ := bulkTar(t, st, 6, 77, "cohort")
	if rec := do(t, srv, "POST", "/specs/pa/runs:bulk", archive, nil); rec.Code != http.StatusCreated {
		t.Fatalf("bulk = %d", rec.Code)
	}
	// Resync happens lazily on the next analytics request; several
	// requests must still cost exactly one rebuild.
	for i := 0; i < 3; i++ {
		if rec := do(t, srv, "GET", "/specs/pa/cluster?k=2", nil, nil); rec.Code != 200 {
			t.Fatalf("cluster after bulk = %d", rec.Code)
		}
	}
	if got := e.hc.Rebuilds(); got != 2 {
		t.Fatalf("rebuilds after bulk import = %d, want 2 (one initial + one for the whole batch)", got)
	}
	if n := e.hc.Len(); n != 10 {
		t.Fatalf("cohort size after bulk = %d, want 10", n)
	}

	// Contrast: per-run imports resync incrementally — no further full
	// rebuilds, one O(n) row each.
	body := encodeRun(t, st, 555)
	for i := 0; i < 2; i++ {
		target := fmt.Sprintf("/specs/pa/runs/one%d", i)
		if rec := do(t, srv, "POST", target, body, nil); rec.Code != http.StatusCreated {
			t.Fatalf("single import = %d", rec.Code)
		}
		if rec := do(t, srv, "GET", "/specs/pa/cluster?k=2", nil, nil); rec.Code != 200 {
			t.Fatalf("cluster after single import = %d", rec.Code)
		}
	}
	if got := e.hc.Rebuilds(); got != 2 {
		t.Fatalf("single-run imports caused full rebuilds: %d, want still 2", got)
	}
}

func TestExportRoundTrip(t *testing.T) {
	srv, st := seedServer(t, 3, Options{CacheSize: 8})
	rec := do(t, srv, "GET", "/specs/pa/export", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("export = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-tar" {
		t.Fatalf("export content-type = %q", ct)
	}
	runs, err := store.ReadRunTar(bytes.NewReader(rec.Body.Bytes()), 1<<24, 1<<28)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("exported %d runs, want 3", len(runs))
	}
	// The archive re-imports into a fresh service instance.
	st2, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := st.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.SaveSpec("pa", sp); err != nil {
		t.Fatal(err)
	}
	srv2 := New(st2, Options{CacheSize: 8})
	rec2 := do(t, srv2, "POST", "/specs/pa/runs:bulk", rec.Body.Bytes(), nil)
	if rec2.Code != http.StatusCreated {
		t.Fatalf("re-import of export = %d %q", rec2.Code, rec2.Body.String())
	}
	var names struct {
		Runs []string `json:"runs"`
	}
	do(t, srv2, "GET", "/specs/pa/runs", nil, &names)
	if len(names.Runs) != 3 {
		t.Fatalf("re-imported runs = %v", names.Runs)
	}
}

// TestBulkImportClusterRace hammers bulk imports against concurrent
// /cluster and /nearest queries; run under -race it proves the
// coalesced invalidation path shares no unsynchronized state with the
// analytics read path.
func TestBulkImportClusterRace(t *testing.T) {
	srv, st := seedServer(t, 4, Options{CacheSize: 32})
	if rec := do(t, srv, "GET", "/specs/pa/cluster?k=2", nil, nil); rec.Code != 200 {
		t.Fatal("prime cluster")
	}
	const importers, readers, rounds = 2, 3, 5
	var wg sync.WaitGroup
	for im := 0; im < importers; im++ {
		wg.Add(1)
		go func(im int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				archive, _ := bulkTar(t, st, 2, int64(100+10*im+round), fmt.Sprintf("race%d-%d-", im, round))
				req := httptest.NewRequest("POST", "/specs/pa/runs:bulk", bytes.NewReader(archive))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != http.StatusCreated {
					t.Errorf("bulk import = %d %q", rec.Code, rec.Body.String())
					return
				}
			}
		}(im)
	}
	for rd := 0; rd < readers; rd++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds*3; round++ {
				req := httptest.NewRequest("GET", "/specs/pa/cluster?k=2", nil)
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != 200 {
					t.Errorf("cluster during bulk churn = %d %q", rec.Code, rec.Body.String())
					return
				}
			}
		}()
	}
	wg.Wait()
	// Settled state: the incremental matrix covers exactly the stored
	// runs.
	v, err := srv.cohortView("pa", cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	runs, err := st.ListRuns("pa")
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != len(runs) {
		t.Fatalf("settled cohort has %d rows, store has %d runs", v.Len(), len(runs))
	}
}
