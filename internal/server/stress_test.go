package server

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cost"
)

// TestCohortAnalyticsRaceStress hammers the incremental cohort matrix
// from all sides under the race detector: importers add and delete
// runs while readers pull /cluster and /nearest answers. Every 200
// response must be internally consistent, and once the writers settle
// the served matrix must equal a from-scratch recompute — the
// generation-checked invalidation may never retain a stale row.
func TestCohortAnalyticsRaceStress(t *testing.T) {
	srv, st := seedServer(t, 4, Options{CacheSize: 32})

	// Pre-encode distinct runs so the writer goroutines do no
	// generation work of their own.
	bodies := make([][]byte, 6)
	for i := range bodies {
		bodies[i] = encodeRun(t, st, int64(1000+i))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writers: continuous import/overwrite/delete churn.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("churn%d", w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				body := bodies[(w*3+i)%len(bodies)]
				if rec := do(t, srv, "POST", "/specs/pa/runs/"+name, body, nil); rec.Code != 201 {
					t.Errorf("import %s = %d %q", name, rec.Code, rec.Body.String())
					return
				}
				if i%3 == 2 {
					if rec := do(t, srv, "DELETE", "/specs/pa/runs/"+name, nil, nil); rec.Code != 200 {
						t.Errorf("delete %s = %d", name, rec.Code)
						return
					}
				}
			}
		}(w)
	}

	// Readers: clustering and nearest-neighbor queries racing the
	// churn. 400s are legitimate (k can exceed a momentarily shrunken
	// cohort); 404s happen when a churn run vanishes between queries;
	// anything else is a bug, as is an internally inconsistent 200.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					var p clusterPayload
					rec := do(t, srv, "GET", "/specs/pa/cluster?k=2&seed=3", nil, &p)
					if rec.Code != 200 && rec.Code != 400 {
						t.Errorf("cluster = %d %q", rec.Code, rec.Body.String())
						return
					}
					if rec.Code == 200 {
						if len(p.Clusters) != 2 {
							t.Errorf("cluster shape: %+v", p)
							return
						}
						for _, c := range p.Clusters {
							ok := false
							for _, r := range c.Runs {
								if r == c.Medoid {
									ok = true
								}
							}
							if !ok {
								t.Errorf("medoid outside cluster: %+v", p)
								return
							}
						}
					}
				case 1:
					var p nearestPayload
					rec := do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=3", nil, &p)
					if rec.Code != 200 && rec.Code != 400 && rec.Code != 404 {
						t.Errorf("nearest = %d %q", rec.Code, rec.Body.String())
						return
					}
					if rec.Code == 200 {
						for j, n := range p.Neighbors {
							if n.Run == "r0" {
								t.Errorf("run is its own neighbor: %+v", p)
								return
							}
							if j > 0 && n.Distance < p.Neighbors[j-1].Distance {
								t.Errorf("neighbors unsorted: %+v", p)
								return
							}
						}
					}
				case 2:
					var p outliersPayload
					rec := do(t, srv, "GET", "/specs/pa/outliers?k=2", nil, &p)
					if rec.Code != 200 && rec.Code != 400 {
						t.Errorf("outliers = %d %q", rec.Code, rec.Body.String())
						return
					}
				}
			}
		}(g)
	}

	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Settle: the next query must reflect exactly the on-disk cohort,
	// and every served distance must match a from-scratch recompute.
	runs, err := st.ListRuns("pa")
	if err != nil {
		t.Fatal(err)
	}
	var final nearestPayload
	if rec := do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=999", nil, &final); rec.Code != 200 {
		t.Fatalf("settle nearest = %d %q", rec.Code, rec.Body.String())
	}
	if len(final.Neighbors) != len(runs)-1 {
		t.Fatalf("settled cohort has %d neighbors for %d runs", len(final.Neighbors), len(runs))
	}
	fresh, err := st.Cohort("pa", runs, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	freshIdx := make(map[string]int, len(fresh.Labels))
	for i, l := range fresh.Labels {
		freshIdx[l] = i
	}
	for _, n := range final.Neighbors {
		j, ok := freshIdx[n.Run]
		if !ok {
			t.Fatalf("served neighbor %q not on disk (stale row retained)", n.Run)
		}
		if want := fresh.D[freshIdx["r0"]][j]; math.Abs(n.Distance-want) > 1e-9 {
			t.Fatalf("stale distance for %q: served %g, recompute %g", n.Run, n.Distance, want)
		}
	}
	// And the long-lived matrix itself agrees cell-for-cell.
	e := srv.cohorts.entry("pa", cost.Unit{})
	mx := e.hc.Snapshot()
	if len(mx.Labels) != len(fresh.Labels) {
		t.Fatalf("matrix has %d members, disk has %d", len(mx.Labels), len(fresh.Labels))
	}
	for i, a := range mx.Labels {
		for j, b := range mx.Labels {
			if want := fresh.D[freshIdx[a]][freshIdx[b]]; math.Abs(mx.D[i][j]-want) > 1e-9 {
				t.Fatalf("stale cell (%s,%s): %g vs %g", a, b, mx.D[i][j], want)
			}
		}
	}
}

// notifyingRecorder wraps a ResponseRecorder to signal the first body
// write, so a test can abort a request exactly once streaming began.
type notifyingRecorder struct {
	*httptest.ResponseRecorder
	once  sync.Once
	first chan struct{}
}

func (n *notifyingRecorder) Write(b []byte) (int, error) {
	n.once.Do(func() { close(n.first) })
	return n.ResponseRecorder.Write(b)
}

func (n *notifyingRecorder) Flush() {}

// TestCohortStreamAbortMidFlight is the regression test for the
// in-flight cohort guard: a streaming client that goes away while the
// matrix is still being computed must abort the fan-out promptly and
// report the abort in-band — not hang the workers, panic, or be served
// to completion. Before analysis.Options.Context existed the fan-out
// always ran to the last pair with the progress callback writing into
// a dead connection.
func TestCohortStreamAbortMidFlight(t *testing.T) {
	srv, _ := seedServer(t, 9, Options{CacheSize: 8, CohortWorkers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("GET", "/cohort/pa?stream=1", nil).WithContext(ctx)
	rec := &notifyingRecorder{ResponseRecorder: httptest.NewRecorder(), first: make(chan struct{})}

	finished := make(chan struct{})
	go func() {
		defer close(finished)
		srv.ServeHTTP(rec, req)
	}()
	select {
	case <-rec.first:
	case <-time.After(10 * time.Second):
		t.Fatal("stream never started")
	}
	cancel()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client abort")
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"type":"error"`) || !strings.Contains(body, "aborted") {
		t.Fatalf("aborted stream body lacks in-band error:\n%s", body)
	}
	if strings.Contains(body, `"type":"result"`) {
		t.Fatalf("aborted stream still delivered a result:\n%s", body)
	}

	// The service is healthy afterwards: the same cohort completes.
	rec2 := do(t, srv, "GET", "/cohort/pa", nil, nil)
	if rec2.Code != http.StatusOK {
		t.Fatalf("cohort after abort = %d %q", rec2.Code, rec2.Body.String())
	}
}
