package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfxml"
)

// seedServer builds a store with the PA catalog workflow under "pa"
// and n generated runs named r0..r{n-1}, and returns a server over it.
func seedServer(tb testing.TB, n int, opts Options) (*Server, *store.Store) {
	tb.Helper()
	st, err := store.Open(tb.TempDir())
	if err != nil {
		tb.Fatal(err)
	}
	pa, err := gen.Catalog("PA")
	if err != nil {
		tb.Fatal(err)
	}
	if err := st.SaveSpec("pa", pa); err != nil {
		tb.Fatal(err)
	}
	sp, err := st.LoadSpec("pa")
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			tb.Fatal(err)
		}
		if err := st.SaveRun("pa", fmt.Sprintf("r%d", i), r); err != nil {
			tb.Fatal(err)
		}
	}
	return New(st, opts), st
}

// get performs a request against the handler directly and decodes a
// JSON body when out is non-nil.
func do(tb testing.TB, h http.Handler, method, target string, body []byte, out any) *httptest.ResponseRecorder {
	tb.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			tb.Fatalf("%s %s: bad JSON %q: %v", method, target, rec.Body.String(), err)
		}
	}
	return rec
}

func TestBrowseEndpoints(t *testing.T) {
	srv, _ := seedServer(t, 3, Options{CacheSize: 8})

	var specs struct {
		Specs []struct {
			Name string `json:"name"`
			Runs int    `json:"runs"`
		} `json:"specs"`
	}
	rec := do(t, srv, "GET", "/specs", nil, &specs)
	if rec.Code != 200 || len(specs.Specs) != 1 || specs.Specs[0].Name != "pa" || specs.Specs[0].Runs != 3 {
		t.Fatalf("GET /specs = %d %q", rec.Code, rec.Body.String())
	}

	var runs struct {
		Spec string   `json:"spec"`
		Runs []string `json:"runs"`
	}
	rec = do(t, srv, "GET", "/specs/pa/runs", nil, &runs)
	if rec.Code != 200 || len(runs.Runs) != 3 || runs.Runs[0] != "r0" {
		t.Fatalf("GET /specs/pa/runs = %d %q", rec.Code, rec.Body.String())
	}

	if rec := do(t, srv, "GET", "/specs/nope/runs", nil, nil); rec.Code != 404 {
		t.Fatalf("unknown spec: got %d, want 404", rec.Code)
	}
	if rec := do(t, srv, "GET", "/healthz", nil, nil); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
}

func TestDiffEndpoint(t *testing.T) {
	srv, st := seedServer(t, 3, Options{CacheSize: 8})

	var p diffPayload
	rec := do(t, srv, "GET", "/diff/pa/r0/r1", nil, &p)
	if rec.Code != 200 {
		t.Fatalf("diff = %d %q", rec.Code, rec.Body.String())
	}
	if p.Cached {
		t.Fatal("first diff should not be cached")
	}
	// Cross-check against the store's own differencing.
	want, err := st.Diff("pa", "r0", "r1", cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Distance != want.Distance {
		t.Fatalf("distance = %g, want %g", p.Distance, want.Distance)
	}
	if p.OpCount != len(p.Ops) {
		t.Fatalf("op_count %d != len(ops) %d", p.OpCount, len(p.Ops))
	}

	// Second request must come from the cache with the same payload.
	var p2 diffPayload
	do(t, srv, "GET", "/diff/pa/r0/r1", nil, &p2)
	if !p2.Cached {
		t.Fatal("second diff should be cached")
	}
	if p2.Distance != p.Distance || p2.OpCount != p.OpCount {
		t.Fatalf("cached payload drifted: %+v vs %+v", p2, p)
	}

	// Distinct cost models are distinct cache entries.
	var pl diffPayload
	do(t, srv, "GET", "/diff/pa/r0/r1?cost=length", nil, &pl)
	if pl.Cached {
		t.Fatal("length-cost diff must not hit the unit-cost entry")
	}
	if pl.Cost != "length" {
		t.Fatalf("cost = %q", pl.Cost)
	}
	// Nearby power epsilons must not collide in the cache or the
	// engine pools: Power.Name() carries full precision.
	var pe diffPayload
	do(t, srv, "GET", "/diff/pa/r0/r1?cost=power:0.121", nil, &pe)
	if pe.Cached || pe.Cost != "power(0.121)" {
		t.Fatalf("power:0.121 payload = %+v", pe)
	}
	do(t, srv, "GET", "/diff/pa/r0/r1?cost=power:0.124", nil, &pe)
	if pe.Cached || pe.Cost != "power(0.124)" {
		t.Fatalf("power:0.124 must be its own entry, got %+v", pe)
	}

	// Errors.
	if rec := do(t, srv, "GET", "/diff/pa/r0/zz", nil, nil); rec.Code != 404 {
		t.Fatalf("unknown run: got %d, want 404", rec.Code)
	}
	if rec := do(t, srv, "GET", "/diff/zz/r0/r1", nil, nil); rec.Code != 404 {
		t.Fatalf("unknown spec: got %d, want 404", rec.Code)
	}
	if rec := do(t, srv, "GET", "/diff/pa/r0/r1?cost=bogus", nil, nil); rec.Code != 400 {
		t.Fatalf("bad cost model: got %d, want 400", rec.Code)
	}
	if rec := do(t, srv, "GET", "/diff/pa/r0/r1?cost=power:2", nil, nil); rec.Code != 400 {
		t.Fatalf("metric-violating cost model: got %d, want 400", rec.Code)
	}
	for _, bad := range []string{"power:nan", "power:-1", "power:inf"} {
		if rec := do(t, srv, "GET", "/diff/pa/r0/r1?cost="+bad, nil, nil); rec.Code != 400 {
			t.Fatalf("%s: got %d, want 400", bad, rec.Code)
		}
	}
}

func TestDiffSVG(t *testing.T) {
	srv, _ := seedServer(t, 2, Options{CacheSize: 8})
	rec := do(t, srv, "GET", "/diff/pa/r0/r1/svg", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("svg = %d %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	if !strings.HasPrefix(body, "<svg") || !strings.Contains(body, "edit distance") {
		t.Fatalf("not a pair SVG: %.120s", body)
	}
	// Cached second hit serves identical bytes.
	rec2 := do(t, srv, "GET", "/diff/pa/r0/r1/svg", nil, nil)
	if rec2.Body.String() != body {
		t.Fatal("cached SVG differs from computed SVG")
	}
}

// TestPathTraversalRejected covers the HTTP boundary: names with
// traversal components or separators — including URL-encoded ones the
// mux decodes back into the path value — must be rejected before they
// reach the filesystem, with a 400 (validation), never a 404 (probe).
func TestPathTraversalRejected(t *testing.T) {
	srv, st := seedServer(t, 2, Options{CacheSize: 8})
	// A file outside the repository root that a traversal could reach.
	for _, target := range []string{
		"/diff/pa/%2e%2e/r1",
		"/diff/pa/r0/%2e%2e%2fr1",
		"/diff/%2e%2e%2fpa/r0/r1",
		"/specs/%2e%2e/runs",
		"/specs/pa/runs/%2e%2e%2fescape",
		"/specs/pa/runs/a%2fb",
		"/specs/pa/runs/a%5cb", // backslash
		"/cohort/%2e%2e",
	} {
		method := "GET"
		if strings.Count(target, "/") >= 4 && strings.HasPrefix(target, "/specs/") {
			method = "POST"
		}
		rec := do(t, srv, method, target, []byte("<run/>"), nil)
		if rec.Code != 400 {
			t.Errorf("%s %s: got %d, want 400 (%q)", method, target, rec.Code, rec.Body.String())
		}
	}
	// The POST ?name= channel is validated too.
	rec := do(t, srv, "POST", "/specs/pa/runs?name=..", []byte("<run/>"), nil)
	if rec.Code != 400 {
		t.Fatalf("POST ?name=..: got %d, want 400", rec.Code)
	}
	// And the store itself refuses traversal names outright.
	if _, err := st.LoadRun("pa", "../escape"); err == nil {
		t.Fatal("store.LoadRun accepted a separator name")
	}
}

func TestImportAndDelete(t *testing.T) {
	srv, st := seedServer(t, 2, Options{CacheSize: 8})
	sp, err := st.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, "fresh"); err != nil {
		t.Fatal(err)
	}

	rec := do(t, srv, "POST", "/specs/pa/runs/fresh", buf.Bytes(), nil)
	if rec.Code != 201 {
		t.Fatalf("import = %d %q", rec.Code, rec.Body.String())
	}
	var p diffPayload
	if rec := do(t, srv, "GET", "/diff/pa/r0/fresh", nil, &p); rec.Code != 200 {
		t.Fatalf("diff of imported run = %d %q", rec.Code, rec.Body.String())
	}

	// Garbage XML is a 400, unknown spec a 404.
	if rec := do(t, srv, "POST", "/specs/pa/runs/bad", []byte("not xml"), nil); rec.Code != 400 {
		t.Fatalf("bad XML import = %d", rec.Code)
	}
	if rec := do(t, srv, "POST", "/specs/zz/runs/x", buf.Bytes(), nil); rec.Code != 404 {
		t.Fatalf("import into unknown spec = %d", rec.Code)
	}

	if rec := do(t, srv, "DELETE", "/specs/pa/runs/fresh", nil, nil); rec.Code != 200 {
		t.Fatalf("delete = %d %q", rec.Code, rec.Body.String())
	}
	if rec := do(t, srv, "GET", "/diff/pa/r0/fresh", nil, nil); rec.Code != 404 {
		t.Fatalf("diff of deleted run = %d, want 404", rec.Code)
	}
	if rec := do(t, srv, "DELETE", "/specs/pa/runs/fresh", nil, nil); rec.Code != 404 {
		t.Fatalf("double delete = %d, want 404", rec.Code)
	}
}

// TestCacheInvalidation proves the LRU drops entries for a run when it
// is overwritten or deleted, and keeps unrelated entries.
func TestCacheInvalidation(t *testing.T) {
	srv, st := seedServer(t, 3, Options{CacheSize: 8})

	warm := func(a, b string) diffPayload {
		var p diffPayload
		rec := do(t, srv, "GET", "/diff/pa/"+a+"/"+b, nil, &p)
		if rec.Code != 200 {
			t.Fatalf("diff %s %s = %d", a, b, rec.Code)
		}
		return p
	}
	warm("r0", "r1")
	warm("r1", "r2")
	warm("r0", "r2")
	if !warm("r0", "r1").Cached || !warm("r0", "r2").Cached {
		t.Fatal("cache should be warm")
	}

	// Overwrite r1 with a different run; entries touching r1 must go.
	sp, err := st.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1234))
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, "r1"); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, srv, "POST", "/specs/pa/runs/r1", buf.Bytes(), nil); rec.Code != 201 {
		t.Fatalf("overwrite = %d %q", rec.Code, rec.Body.String())
	}
	if warm("r0", "r1").Cached {
		t.Fatal("diff r0/r1 must be recomputed after r1 was overwritten")
	}
	if warm("r1", "r2").Cached {
		t.Fatal("diff r1/r2 must be recomputed after r1 was overwritten")
	}
	if !warm("r0", "r2").Cached {
		t.Fatal("diff r0/r2 does not involve r1 and must stay cached")
	}

	// Deleting through the store API (not HTTP) invalidates too: the
	// hook is on the store, so any writer is covered.
	if err := st.DeleteRun("pa", "r2"); err != nil {
		t.Fatal(err)
	}
	if rec := do(t, srv, "GET", "/diff/pa/r0/r2", nil, nil); rec.Code != 404 {
		t.Fatalf("diff of store-deleted run = %d, want 404", rec.Code)
	}
	if srv.cache.snapshot().Invalidations == 0 {
		t.Fatal("expected cache invalidations to be recorded")
	}
}

// TestLRUEviction exercises the bound directly.
func TestLRUEviction(t *testing.T) {
	c := newResultCache(2)
	k := func(a, b string) cacheKey { return cacheKey{spec: "s", runA: a, runB: b, cost: "unit", kind: kindDiff} }
	c.add(k("a", "b"), 1)
	c.add(k("b", "c"), 2)
	if _, ok := c.get(k("a", "b")); !ok {
		t.Fatal("a/b should be cached")
	}
	c.add(k("c", "d"), 3) // evicts b/c (LRU, since a/b was just touched)
	if _, ok := c.get(k("b", "c")); ok {
		t.Fatal("b/c should have been evicted")
	}
	if _, ok := c.get(k("a", "b")); !ok {
		t.Fatal("a/b should have survived eviction")
	}
	s := c.snapshot()
	if s.Evictions != 1 || s.Size != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	// Disabled cache never stores.
	off := newResultCache(0)
	off.add(k("a", "b"), 1)
	if _, ok := off.get(k("a", "b")); ok {
		t.Fatal("disabled cache returned a value")
	}
}

// TestAddIfGenRace covers the compute/invalidate window: a payload
// computed before an invalidation must not enter the cache after it.
func TestAddIfGenRace(t *testing.T) {
	c := newResultCache(4)
	k := cacheKey{spec: "s", runA: "a", runB: "b", cost: "unit", kind: kindDiff}
	gen := c.generation()
	c.invalidateRun("s", "b") // run changed while "computing"
	c.addIfGen(k, "stale", gen)
	if _, ok := c.get(k); ok {
		t.Fatal("stale payload cached across an invalidation")
	}
	// With no intervening invalidation the add goes through.
	gen = c.generation()
	c.addIfGen(k, "fresh", gen)
	if v, ok := c.get(k); !ok || v != "fresh" {
		t.Fatalf("fresh payload not cached: %v %v", v, ok)
	}
}

// TestEnginePoolCap: past the cap the pool map stops growing and get
// falls back to one-off engines instead of failing.
func TestEnginePoolCap(t *testing.T) {
	p := newEnginePools()
	for i := 0; i < maxEnginePools+10; i++ {
		m := cost.Power{Epsilon: float64(i) / float64(2*(maxEnginePools+10))}
		eng := p.get("spec", m)
		if eng == nil {
			t.Fatalf("get %d returned nil engine", i)
		}
		p.put("spec", m, eng)
	}
	if n := p.poolCount(); n != maxEnginePools {
		t.Fatalf("pool map grew to %d, cap is %d", n, maxEnginePools)
	}
}

// TestConcurrentDiffs hammers the diff endpoint from many goroutines
// (run under -race in CI): every response must be consistent with the
// sequentially computed distances, whether it was served cold, from a
// pooled engine, or from the cache.
func TestConcurrentDiffs(t *testing.T) {
	srv, st := seedServer(t, 4, Options{CacheSize: 4})

	type pair struct{ a, b string }
	pairs := []pair{{"r0", "r1"}, {"r0", "r2"}, {"r0", "r3"}, {"r1", "r2"}, {"r1", "r3"}, {"r2", "r3"}}
	want := make(map[pair]float64)
	for _, p := range pairs {
		res, err := st.Diff("pa", p.a, p.b, cost.Unit{})
		if err != nil {
			t.Fatal(err)
		}
		want[p] = res.Distance
	}

	var wg sync.WaitGroup
	errs := make(chan error, 256)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				p := pairs[(g+i)%len(pairs)]
				var got diffPayload
				rec := do(t, srv, "GET", "/diff/pa/"+p.a+"/"+p.b, nil, &got)
				if rec.Code != 200 {
					errs <- fmt.Errorf("%v: status %d", p, rec.Code)
					return
				}
				if got.Distance != want[p] {
					errs <- fmt.Errorf("%v: distance %g, want %g", p, got.Distance, want[p])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st2 := srv.Stats()
	if st2.Engines.Gets == 0 {
		t.Fatal("no engine checkouts recorded")
	}
	if st2.Engines.Reused == 0 {
		t.Fatal("expected at least one pooled-engine reuse under concurrency")
	}
}

func TestCohortEndpoint(t *testing.T) {
	srv, st := seedServer(t, 4, Options{CacheSize: 8})

	var p cohortPayload
	rec := do(t, srv, "GET", "/cohort/pa", nil, &p)
	if rec.Code != 200 {
		t.Fatalf("cohort = %d %q", rec.Code, rec.Body.String())
	}
	if len(p.Labels) != 4 || len(p.Matrix) != 4 || len(p.Matrix[0]) != 4 {
		t.Fatalf("cohort shape: %d labels, %dx%d matrix", len(p.Labels), len(p.Matrix), len(p.Matrix[0]))
	}
	mx, err := st.Cohort("pa", nil, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mx.D {
		for j := range mx.D[i] {
			if p.Matrix[i][j] != mx.D[i][j] {
				t.Fatalf("matrix[%d][%d] = %g, want %g", i, j, p.Matrix[i][j], mx.D[i][j])
			}
		}
	}
	if p.Dendrogram == "" || p.Medoid == "" || p.Outlier == "" {
		t.Fatalf("cohort payload incomplete: %+v", p)
	}

	if rec := do(t, srv, "GET", "/cohort/zz", nil, nil); rec.Code != 404 {
		t.Fatalf("cohort of unknown spec = %d, want 404", rec.Code)
	}
}

// TestCohortStream checks the NDJSON streaming mode: progress lines
// followed by a final result object.
func TestCohortStream(t *testing.T) {
	srv, _ := seedServer(t, 4, Options{CacheSize: 8})
	rec := do(t, srv, "GET", "/cohort/pa?stream=1", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("stream cohort = %d %q", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(rec.Body.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("want progress + result lines, got %d: %q", len(lines), rec.Body.String())
	}
	sawProgress := false
	for _, ln := range lines[:len(lines)-1] {
		var ev struct {
			Type  string `json:"type"`
			Done  int    `json:"done"`
			Total int    `json:"total"`
		}
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", ln, err)
		}
		if ev.Type != "progress" || ev.Total != 6 || ev.Done < 1 || ev.Done > 6 {
			t.Fatalf("bad progress event: %q", ln)
		}
		sawProgress = true
	}
	if !sawProgress {
		t.Fatal("no progress events before the result")
	}
	var final struct {
		Type   string        `json:"type"`
		Cohort cohortPayload `json:"cohort"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final.Type != "result" || len(final.Cohort.Labels) != 4 {
		t.Fatalf("bad final event: %q", lines[len(lines)-1])
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv, _ := seedServer(t, 2, Options{CacheSize: 8})
	do(t, srv, "GET", "/diff/pa/r0/r1", nil, nil)
	do(t, srv, "GET", "/diff/pa/r0/r1", nil, nil)

	var st struct {
		Requests map[string]int64 `json:"requests"`
		Cache    cacheStats       `json:"cache"`
		Engines  engineStats      `json:"engines"`
	}
	rec := do(t, srv, "GET", "/stats", nil, &st)
	if rec.Code != 200 {
		t.Fatalf("stats = %d", rec.Code)
	}
	if st.Requests["diff"] != 2 {
		t.Fatalf("diff count = %d, want 2", st.Requests["diff"])
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/1", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Engines.Gets != 1 || st.Engines.News != 1 {
		t.Fatalf("engine gets/news = %d/%d, want 1/1", st.Engines.Gets, st.Engines.News)
	}
}

// TestGracefulUse exercises the handler through a real HTTP server —
// the transport the CI smoke test uses.
func TestOverRealTransport(t *testing.T) {
	srv, _ := seedServer(t, 2, Options{CacheSize: 8})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/diff/pa/r0/r1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var p diffPayload
	if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.Spec != "pa" || p.RunA != "r0" {
		t.Fatalf("payload = %+v", p)
	}
}
