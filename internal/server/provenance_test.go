package server

// Acceptance test for the provenance ledger surface: after a mixed
// sync / async / bulk ingest, every run's inclusion proof must verify
// client-side against the ledger commitments published in /v1/stats —
// and keep verifying across a cold restart and a forced compaction.

import (
	"fmt"
	"net/http"
	"reflect"
	"sort"
	"testing"

	"repro/internal/ingest"
	"repro/internal/ledger"
	"repro/internal/store"
)

// proofFor fetches one run's proof and verifies it client-side,
// returning the proof and the ledger head it folds up to.
func proofFor(t *testing.T, srv *Server, spec, run string) (store.RunProof, string) {
	t.Helper()
	var p store.RunProof
	rec := do(t, srv, "GET", fmt.Sprintf("/v1/specs/%s/runs/%s/proof", spec, run), nil, &p)
	if rec.Code != http.StatusOK {
		t.Fatalf("proof %s/%s = %d %q", spec, run, rec.Code, rec.Body.String())
	}
	head, err := store.VerifyProof(&p)
	if err != nil {
		t.Fatalf("proof %s/%s does not verify: %v", spec, run, err)
	}
	return p, head
}

// statsLedger fetches /v1/stats and cross-checks the published
// repository root against one recomputed from the per-spec heads.
func statsLedger(t *testing.T, srv *Server) ledgerStats {
	t.Helper()
	var stats statsPayload
	if rec := do(t, srv, "GET", "/v1/stats", nil, &stats); rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	names := make([]string, 0, len(stats.Ledger.Specs))
	heads := make(map[string]ledger.Hash, len(stats.Ledger.Specs))
	for name, sl := range stats.Ledger.Specs {
		h, err := ledger.Parse(sl.Head)
		if err != nil {
			t.Fatalf("stats ledger head for %s: %v", name, err)
		}
		names = append(names, name)
		heads[name] = h
	}
	sort.Strings(names)
	if got := ledger.RepoRoot(names, heads).Hex(); got != stats.Ledger.RepoRoot {
		t.Fatalf("repo root recomputed from stats heads = %s, published %s", got, stats.Ledger.RepoRoot)
	}
	return stats.Ledger
}

func TestProofsVerifyAcrossIngestRestartCompaction(t *testing.T) {
	dir := t.TempDir()
	srv, st := seedServerAt(t, dir, 0, Options{})

	var runs []string

	// Sync ingest: the 201 body carries the content hash.
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("s%d", i)
		var body map[string]any
		rec := do(t, srv, "POST", "/v1/specs/pa/runs/"+name, encodeRun(t, st, 900+int64(i)), &body)
		if rec.Code != http.StatusCreated {
			t.Fatalf("sync ingest %s = %d %q", name, rec.Code, rec.Body.String())
		}
		if h, _ := body["hash"].(string); len(h) != 64 {
			t.Fatalf("201 body for %s: hash = %q, want 64 hex chars", name, body["hash"])
		}
		runs = append(runs, name)
	}

	// Async ingest: the resolved ticket surfaces the content hash.
	var acc acceptedJSON
	if rec := do(t, srv, "POST", "/v1/specs/pa/runs/a0?async=1", encodeRun(t, st, 910), &acc); rec.Code != http.StatusAccepted {
		t.Fatalf("async ingest = %d %q", rec.Code, rec.Body.String())
	}
	view := pollTicket(t, srv, acc.StatusURL)
	if view.State != ingest.StateCommitted {
		t.Fatalf("async ticket state = %q, want committed", view.State)
	}
	for _, rs := range view.Runs {
		if len(rs.Hash) != 64 {
			t.Fatalf("ticket run %s: hash = %q, want 64 hex chars", rs.Run, rs.Hash)
		}
	}
	runs = append(runs, "a0")

	// Bulk ingest.
	archive, bulkNames := bulkTar(t, st, 4, 920, "b")
	if rec := do(t, srv, "POST", "/v1/specs/pa/runs:bulk", archive, nil); rec.Code != http.StatusCreated {
		t.Fatalf("bulk ingest = %d %q", rec.Code, rec.Body.String())
	}
	runs = append(runs, bulkNames...)

	// verifyAll checks every proof against the stats commitments and
	// returns the proofs for later byte-level comparison.
	verifyAll := func(s *Server, phase string) map[string]store.RunProof {
		t.Helper()
		led := statsLedger(t, s)
		proofs := make(map[string]store.RunProof, len(runs))
		for _, name := range runs {
			p, head := proofFor(t, s, "pa", name)
			if head != led.Specs["pa"].Head {
				t.Fatalf("%s: proof for %s anchors to head %s, stats publish %s",
					phase, name, head, led.Specs["pa"].Head)
			}
			proofs[name] = p
		}
		return proofs
	}
	verifyAll(srv, "initial")

	// Cold restart over the same directory.
	srv.Close()
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(st2, Options{})
	defer srv2.Close()
	verifyAll(srv2, "restart")

	// Overwrite one run with new content (dead bytes in the segment),
	// then force a compaction. Proofs are ledger derivations, so the
	// untouched runs' proofs must come back byte-identical.
	if rec := do(t, srv2, "POST", "/v1/specs/pa/runs/s0", encodeRun(t, st2, 930), nil); rec.Code != http.StatusCreated {
		t.Fatalf("overwrite s0 = %d", rec.Code)
	}
	before := verifyAll(srv2, "pre-compaction")
	if err := st2.Compact("pa"); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := verifyAll(srv2, "post-compaction")
	for _, name := range runs {
		if !reflect.DeepEqual(before[name], after[name]) {
			t.Errorf("proof for %s changed across compaction:\nbefore %+v\nafter  %+v",
				name, before[name], after[name])
		}
	}

	// The full ledger audit stays green through all of it.
	rep, err := st2.VerifyLedger()
	if err != nil {
		t.Fatalf("VerifyLedger: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("ledger audit found issues: %v", rep.Issues)
	}
}
