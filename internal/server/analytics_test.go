package server

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfxml"
)

// encodeRun serializes a fresh random run of the stored "pa" spec.
func encodeRun(tb testing.TB, st *store.Store, seed int64) []byte {
	tb.Helper()
	sp, err := st.LoadSpec("pa")
	if err != nil {
		tb.Fatal(err)
	}
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, "x"); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func TestClusterEndpoint(t *testing.T) {
	srv, _ := seedServer(t, 6, Options{CacheSize: 16})
	var p clusterPayload
	if rec := do(t, srv, "GET", "/specs/pa/cluster?k=2&seed=7", nil, &p); rec.Code != 200 {
		t.Fatalf("cluster = %d %q", rec.Code, rec.Body.String())
	}
	if p.Spec != "pa" || p.K != 2 || len(p.Clusters) != 2 || p.Cached {
		t.Fatalf("payload: %+v", p)
	}
	seen := map[string]bool{}
	for _, c := range p.Clusters {
		if c.Medoid == "" || len(c.Runs) == 0 {
			t.Fatalf("empty cluster: %+v", p)
		}
		found := false
		for _, r := range c.Runs {
			seen[r] = true
			if r == c.Medoid {
				found = true
			}
		}
		if !found {
			t.Fatalf("medoid %s outside its cluster %v", c.Medoid, c.Runs)
		}
	}
	if len(seen) != 6 {
		t.Fatalf("clusters cover %d of 6 runs: %+v", len(seen), p)
	}

	// Deterministic: same request, same partition — and served from
	// cache the second time.
	var p2 clusterPayload
	do(t, srv, "GET", "/specs/pa/cluster?k=2&seed=7", nil, &p2)
	if !p2.Cached {
		t.Fatal("second cluster request should be cached")
	}
	p2.Cached = false
	if !reflect.DeepEqual(p, p2) {
		t.Fatalf("nondeterministic clustering:\n%+v\n%+v", p, p2)
	}

	// Distinct params are distinct cache entries.
	var p3 clusterPayload
	do(t, srv, "GET", "/specs/pa/cluster?k=3&seed=7", nil, &p3)
	if p3.Cached || p3.K != 3 {
		t.Fatalf("k=3: %+v", p3)
	}

	// Errors: bad k values, bad spec, tiny cohort.
	for _, target := range []string{
		"/specs/pa/cluster?k=0",
		"/specs/pa/cluster?k=99",
		"/specs/pa/cluster?k=abc",
		"/specs/pa/cluster?seed=x",
		"/specs/pa/cluster?cost=bogus",
	} {
		if rec := do(t, srv, "GET", target, nil, nil); rec.Code != 400 {
			t.Errorf("%s = %d, want 400", target, rec.Code)
		}
	}
	if rec := do(t, srv, "GET", "/specs/zz/cluster", nil, nil); rec.Code != 404 {
		t.Fatalf("unknown spec = %d, want 404", rec.Code)
	}
	tiny, _ := seedServer(t, 1, Options{CacheSize: 8})
	if rec := do(t, tiny, "GET", "/specs/pa/cluster?k=1", nil, nil); rec.Code != 400 {
		t.Fatalf("1-run cohort = %d, want 400", rec.Code)
	}
}

func TestOutliersEndpoint(t *testing.T) {
	srv, _ := seedServer(t, 5, Options{CacheSize: 16})
	var p outliersPayload
	if rec := do(t, srv, "GET", "/specs/pa/outliers?k=2", nil, &p); rec.Code != 200 {
		t.Fatalf("outliers = %d %q", rec.Code, rec.Body.String())
	}
	if len(p.Outliers) != 5 || p.Neighbors != 2 {
		t.Fatalf("payload: %+v", p)
	}
	for i := 1; i < len(p.Outliers); i++ {
		if p.Outliers[i].Score > p.Outliers[i-1].Score {
			t.Fatalf("outliers unsorted: %+v", p.Outliers)
		}
	}
	var p2 outliersPayload
	do(t, srv, "GET", "/specs/pa/outliers?k=2", nil, &p2)
	if !p2.Cached {
		t.Fatal("second outliers request should be cached")
	}
	if rec := do(t, srv, "GET", "/specs/pa/outliers?k=zz", nil, nil); rec.Code != 400 {
		t.Fatalf("bad k = %d", rec.Code)
	}
}

func TestNearestEndpoint(t *testing.T) {
	srv, _ := seedServer(t, 5, Options{CacheSize: 16})
	var p nearestPayload
	if rec := do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=3", nil, &p); rec.Code != 200 {
		t.Fatalf("nearest = %d %q", rec.Code, rec.Body.String())
	}
	if p.Run != "r0" || len(p.Neighbors) != 3 {
		t.Fatalf("payload: %+v", p)
	}
	for i, n := range p.Neighbors {
		if n.Run == "r0" {
			t.Fatalf("run is its own neighbor: %+v", p)
		}
		if i > 0 && n.Distance < p.Neighbors[i-1].Distance {
			t.Fatalf("neighbors unsorted: %+v", p.Neighbors)
		}
	}
	// k beyond the cohort clamps.
	var all nearestPayload
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=99", nil, &all)
	if len(all.Neighbors) != 4 {
		t.Fatalf("clamped k: %+v", all)
	}
	// The cached flag round-trips.
	var again nearestPayload
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=3", nil, &again)
	if !again.Cached {
		t.Fatal("second nearest request should be cached")
	}
	// Unknown run 404s; missing and invalid names 400.
	if rec := do(t, srv, "GET", "/specs/pa/nearest?run=zz", nil, nil); rec.Code != 404 {
		t.Fatalf("unknown run = %d, want 404", rec.Code)
	}
	if rec := do(t, srv, "GET", "/specs/pa/nearest", nil, nil); rec.Code != 400 {
		t.Fatalf("missing run = %d, want 400", rec.Code)
	}
	if rec := do(t, srv, "GET", "/specs/pa/nearest?run=%2e%2e", nil, nil); rec.Code != 400 {
		t.Fatalf("traversal run = %d, want 400", rec.Code)
	}
}

// TestCohortMatrixIncrementalOverHTTP: the server's cohort matrix is
// built once, then maintained with O(n) diffs per import, and
// invalidated payloads are never served stale.
func TestCohortMatrixIncrementalOverHTTP(t *testing.T) {
	srv, st := seedServer(t, 4, Options{CacheSize: 16})

	var before nearestPayload
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=9", nil, &before)
	if len(before.Neighbors) != 3 {
		t.Fatalf("before: %+v", before)
	}
	e := srv.cohorts.entry("pa", cost.Unit{})
	if e == nil {
		t.Fatal("cohort entry missing")
	}
	base := e.hc.DiffCalls()
	if base != 6 { // 4*3/2 pairs
		t.Fatalf("initial build = %d diffs, want 6", base)
	}

	// Import a 5th run: exactly 4 more diffs, and both the payload
	// cache and the matrix reflect it.
	if rec := do(t, srv, "POST", "/specs/pa/runs/fresh", encodeRun(t, st, 1234), nil); rec.Code != 201 {
		t.Fatalf("import = %d", rec.Code)
	}
	var after nearestPayload
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=9", nil, &after)
	if after.Cached {
		t.Fatal("nearest served stale from cache after import")
	}
	if len(after.Neighbors) != 4 {
		t.Fatalf("after import: %+v", after)
	}
	if got := e.hc.DiffCalls() - base; got != 4 {
		t.Fatalf("incremental import performed %d diffs, want exactly 4", got)
	}

	// Delete it again: zero additional diffs.
	mid := e.hc.DiffCalls()
	if rec := do(t, srv, "DELETE", "/specs/pa/runs/fresh", nil, nil); rec.Code != 200 {
		t.Fatalf("delete = %d", rec.Code)
	}
	var final nearestPayload
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=9", nil, &final)
	if len(final.Neighbors) != 3 {
		t.Fatalf("after delete: %+v", final)
	}
	for _, n := range final.Neighbors {
		if n.Run == "fresh" {
			t.Fatalf("deleted run still served: %+v", final)
		}
	}
	if got := e.hc.DiffCalls() - mid; got != 0 {
		t.Fatalf("delete performed %d diffs, want 0", got)
	}

	// Distinct cost models build distinct matrices.
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=2&cost=length", nil, nil)
	if n := srv.cohorts.count(); n != 2 {
		t.Fatalf("cohort matrices = %d, want 2", n)
	}
}
