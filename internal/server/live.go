package server

// Live-workflow monitoring: incremental event ingest for runs still
// executing, a drift score comparing the partial run against the
// cohort's most representative execution (its medoid), and an NDJSON
// watch stream pushing drift updates to attached clients.
//
// The drift score is a certified lower bound on the edit distance the
// partial run has ALREADY committed to against the medoid: it prices
// only excess executed instances — leaves the live run has over the
// medoid's count in the same homology class — at the model's
// histogram-bound rate (metricindex.LowerBoundRate). Executed
// instances never un-execute, so the score is monotone over the
// event stream; and because it never exceeds the histogram bound,
// which never exceeds the exact distance, the final exact diff after
// completion can only confirm or raise it, never contradict it.

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/metricindex"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/store"
	"repro/internal/wfrun"
)

// watchPingInterval paces keepalive lines on an otherwise idle watch
// stream, so intermediate proxies don't reap the connection.
const watchPingInterval = 15 * time.Second

// driftUpdate is one line of the watch stream and the drift block of a
// live-events response.
type driftUpdate struct {
	Type   string `json:"type"` // "drift"
	Spec   string `json:"spec"`
	Run    string `json:"run"`
	Events int    `json:"events"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	// Score is the monotone drift lower bound (0 when no baseline or
	// the cost model defeats the histogram bound). Final scores carry
	// the exact edit distance instead.
	Score float64 `json:"score"`
	// Excess counts executed leaf instances beyond the medoid's tally.
	Excess int `json:"excess"`
	// Baseline names the medoid run the score compares against; empty
	// when the cohort has no stored runs yet.
	Baseline string `json:"baseline,omitempty"`
	Cost     string `json:"cost"`
	// Final marks the post-completion update: Score is then the exact
	// edit distance of the finished run against the baseline.
	Final bool `json:"final,omitempty"`
}

// --- watch hub ------------------------------------------------------

// watchHub fans drift updates out to /watch subscribers. Publishing
// never blocks: a subscriber whose buffer is full loses the update and
// the drop is counted — safe because scores are cumulative, so the
// next update supersedes the lost one.
type watchHub struct {
	mu      sync.Mutex
	subs    map[string]map[chan driftUpdate]bool // spec → subscriber set
	dropped atomic.Int64
}

func newWatchHub() *watchHub {
	return &watchHub{subs: make(map[string]map[chan driftUpdate]bool)}
}

func (h *watchHub) subscribe(specName string) chan driftUpdate {
	ch := make(chan driftUpdate, 16)
	h.mu.Lock()
	defer h.mu.Unlock()
	set := h.subs[specName]
	if set == nil {
		set = make(map[chan driftUpdate]bool)
		h.subs[specName] = set
	}
	set[ch] = true
	return ch
}

func (h *watchHub) unsubscribe(specName string, ch chan driftUpdate) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if set := h.subs[specName]; set != nil {
		delete(set, ch)
		if len(set) == 0 {
			delete(h.subs, specName)
		}
	}
}

func (h *watchHub) publish(specName string, u driftUpdate) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for ch := range h.subs[specName] {
		select {
		case ch <- u:
		default:
			h.dropped.Add(1)
		}
	}
}

func (h *watchHub) subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, set := range h.subs {
		n += len(set)
	}
	return n
}

func (h *watchHub) droppedCount() int64 { return h.dropped.Load() }

// --- drift baseline -------------------------------------------------

// driftBaseline is the cached per-(spec, cost) comparison target.
type driftBaseline struct {
	Run    string  // medoid run name, "" when the cohort is empty
	Counts []int   // medoid executed instances per specification leaf
	Rate   float64 // histogram-bound price per excess instance
}

// leafCounts tallies a run's Q leaves per specification leaf index —
// the same bucketing wfrun.Live maintains incrementally.
func leafCounts(sp *spec.Spec, r *wfrun.Run) []int {
	_, total := sp.Interval(sp.Tree)
	counts := make([]int, total)
	r.Tree.Walk(func(v *sptree.Node) bool {
		if v.IsLeaf() && v.Spec != nil {
			if i, ok := sp.LeafIndex(v.Spec.Edge); ok {
				counts[i]++
			}
		}
		return true
	})
	return counts
}

// baseline resolves (computing and caching on miss) the drift baseline
// for a specification under a cost model. An empty cohort yields a
// baseline with no run — drift then reports structure only. The cache
// entry is cohort-scoped: any run change in the spec drops it, since
// the medoid may move.
func (s *Server) baseline(r *http.Request, specName string, m cost.Model) (driftBaseline, error) {
	key := cacheKey{spec: specName, cost: m.Name(), kind: kindDrift}
	t0 := time.Now()
	if v, ok := s.cache.get(key); ok {
		observeStage(r.Context(), stageCache, t0)
		return v.(driftBaseline), nil
	}
	observeStage(r.Context(), stageCache, t0)
	gen := s.cache.generation()
	sp, err := s.st.LoadSpec(specName)
	if err != nil {
		return driftBaseline{}, err
	}
	b := driftBaseline{Rate: metricindex.LowerBoundRate(m, sp)}
	runs, err := s.st.ListRuns(specName)
	if err != nil {
		return driftBaseline{}, err
	}
	switch len(runs) {
	case 0:
		// No cohort yet: cache the empty baseline so per-event appends
		// don't re-list the directory.
		s.cache.addIfGen(key, b, gen)
		return b, nil
	case 1:
		b.Run = runs[0]
	default:
		v, err := s.cohortView(specName, m)
		if err != nil {
			return driftBaseline{}, err
		}
		if v.Indexed() {
			cl, err := cluster.SampledKMedoids(r.Context(), v.Index, 1, 1, cluster.SampleOptions{})
			if err != nil {
				return driftBaseline{}, err
			}
			b.Run = v.Labels()[cl.Medoids[0]]
		} else {
			b.Run = v.Matrix.Labels[v.Matrix.Medoid()]
		}
	}
	medoid, err := s.st.LoadRun(specName, b.Run)
	if err != nil {
		return driftBaseline{}, err
	}
	b.Counts = leafCounts(sp, medoid)
	s.cache.addIfGen(key, b, gen)
	return b, nil
}

// drift scores a live status against the baseline.
func drift(st store.LiveStatus, b driftBaseline, m cost.Model) driftUpdate {
	excess := 0
	for i, c := range st.Counts {
		base := 0
		if i < len(b.Counts) {
			base = b.Counts[i]
		}
		if c > base {
			excess += c - base
		}
	}
	return driftUpdate{
		Type:     "drift",
		Spec:     st.Spec,
		Run:      st.Run,
		Events:   st.Events,
		Nodes:    st.Nodes,
		Edges:    st.Edges,
		Score:    b.Rate * float64(excess),
		Excess:   excess,
		Baseline: b.Run,
		Cost:     m.Name(),
	}
}

// --- handlers -------------------------------------------------------

// decodeEvents reads the request body as either one JSON array of
// events or an NDJSON stream of event objects. An empty body yields
// (nil, nil).
func decodeEvents(r *http.Request, limit int64) ([]wfrun.Event, error) {
	br := bufio.NewReader(http.MaxBytesReader(nil, r.Body, limit))
	// Peek past leading whitespace to pick the shape.
	for {
		c, err := br.Peek(1)
		if errors.Is(err, io.EOF) {
			return nil, nil
		}
		if err != nil {
			return nil, fmt.Errorf("reading event body: %w", err)
		}
		if c[0] == ' ' || c[0] == '\t' || c[0] == '\n' || c[0] == '\r' {
			br.Discard(1)
			continue
		}
		break
	}
	dec := json.NewDecoder(br)
	dec.DisallowUnknownFields()
	if c, _ := br.Peek(1); len(c) == 1 && c[0] == '[' {
		var evs []wfrun.Event
		if err := dec.Decode(&evs); err != nil {
			return nil, fmt.Errorf("decoding event array: %w", err)
		}
		return evs, nil
	}
	var evs []wfrun.Event
	for {
		var ev wfrun.Event
		if err := dec.Decode(&ev); errors.Is(err, io.EOF) {
			return evs, nil
		} else if err != nil {
			return nil, fmt.Errorf("decoding event %d: %w", len(evs), err)
		}
		evs = append(evs, ev)
	}
}

type liveEventsPayload struct {
	store.LiveStatus
	Drift driftUpdate `json:"drift"`
	// Completed is set when ?complete=1 promoted the run to a stored
	// run; Drift is then the final exact-distance update.
	Completed bool `json:"completed,omitempty"`
}

// handleLiveEvents appends node-status events to a live run (creating
// it on first touch), recomputes the drift score, pushes it to watch
// subscribers, and with ?complete=1 finishes the run: the assembled
// tree is imported through the group-commit path and the final update
// carries the exact edit distance against the baseline.
func (s *Server) handleLiveEvents(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec", "run")
	if !ok {
		return
	}
	q := s.query(r)
	m := q.cost()
	complete := q.flag("complete")
	if !q.valid(w) {
		return
	}
	t0 := time.Now()
	evs, err := decodeEvents(r, s.maxImportBytes())
	observeStage(r.Context(), stageParse, t0)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	if len(evs) == 0 && !complete {
		s.httpError(w, fmt.Errorf("event body is empty"), http.StatusBadRequest)
		return
	}

	// The baseline is resolved before the append so a first event on a
	// fresh spec sees a coherent (possibly empty) cohort snapshot.
	b, berr := s.baseline(r, ns[0], m)
	if berr != nil {
		s.storeError(w, berr)
		return
	}

	var status store.LiveStatus
	if len(evs) > 0 {
		t0 = time.Now()
		status, err = s.st.AppendLiveEvents(ns[0], ns[1], evs)
		observeStage(r.Context(), stageStore, t0)
		if err != nil {
			s.storeError(w, err)
			return
		}
	} else {
		// ?complete=1 with an empty body finishes a run whose events
		// all arrived earlier.
		st, ok, err := s.st.LiveStatusOf(ns[0], ns[1])
		if err != nil {
			s.storeError(w, err)
			return
		}
		if !ok {
			s.httpError(w, fmt.Errorf("no live run %s/%s", ns[0], ns[1]), http.StatusNotFound)
			return
		}
		status = st
	}

	t0 = time.Now()
	u := drift(status, b, m)
	observeStage(r.Context(), stageDiff, t0)

	p := liveEventsPayload{LiveStatus: status, Drift: u}
	if complete {
		t0 = time.Now()
		_, err := s.st.CompleteLiveRun(ns[0], ns[1])
		observeStage(r.Context(), stageStore, t0)
		if err != nil {
			s.storeError(w, err)
			return
		}
		p.Completed = true
		u.Final = true
		if b.Run != "" && b.Run != ns[1] {
			t0 = time.Now()
			dp, err := s.diffPair(r.Context(), ns[0], ns[1], b.Run, m)
			observeStage(r.Context(), stageDiff, t0)
			if err != nil {
				s.storeError(w, err)
				return
			}
			u.Score = dp.Distance
		}
		p.Drift = u
	}
	s.watch.publish(ns[0], u)
	writeJSON(w, p)
}

// handleWatch streams drift updates for a specification as NDJSON: a
// hello object naming the runs currently live, then one drift object
// per update until the client disconnects. Updates are pushed by
// handleLiveEvents through the hub; an idle stream carries periodic
// ping lines.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	if _, err := s.st.LoadSpec(ns[0]); err != nil {
		s.storeError(w, err)
		return
	}
	live, err := s.st.ListLiveRuns(ns[0])
	if err != nil {
		s.storeError(w, err)
		return
	}
	ch := s.watch.subscribe(ns[0])
	defer s.watch.unsubscribe(ns[0], ch)

	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	rc := http.NewResponseController(w)
	enc := json.NewEncoder(w)
	send := func(v any) bool {
		rc.SetWriteDeadline(time.Now().Add(progressWriteTimeout))
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if live == nil {
		live = []string{}
	}
	if !send(map[string]any{"type": "hello", "spec": ns[0], "live": live}) {
		return
	}
	ping := time.NewTicker(watchPingInterval)
	defer ping.Stop()
	for {
		select {
		case <-r.Context().Done():
			// Client went away (or server shutdown): unsubscribe and
			// release the goroutine instead of parking forever.
			return
		case u := <-ch:
			if !send(u) {
				return
			}
		case <-ping.C:
			if !send(map[string]any{"type": "ping"}) {
				return
			}
		}
	}
}
