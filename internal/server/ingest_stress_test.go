package server

// Race stress over the group-commit pipeline: sync imports, async
// imports with ticket polling, deletes, and /v1 analytic reads all
// interleave; run under -race this exercises the batcher's coalescing
// (including same-name jobs split into waves), the parse cache, and
// the cohort invalidation hooks at once. A settle phase then checks
// the pipeline's own accounting balances.

import (
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/ingest"
)

func TestIngestRaceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	srv, st := seedServer(t, 4, Options{
		CacheSize:       32,
		IngestBatch:     8,
		IngestMaxWait:   time.Millisecond,
		TicketRetention: 4096, // every async ticket must still be pollable at settle
	})
	bodies := make([][]byte, 4)
	for i := range bodies {
		bodies[i] = encodeRun(t, st, int64(600+i))
	}

	const (
		syncWriters = 2
		syncIters   = 60
		asyncPosts  = 60
	)
	var writers sync.WaitGroup
	writersDone := make(chan struct{})

	// Sync writers: overwrite a small rotating name set (forcing
	// same-name jobs through the wave splitter) and delete every
	// fourth round.
	for w := 0; w < syncWriters; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < syncIters; i++ {
				name := fmt.Sprintf("sw%dn%d", w, i%5)
				rec := do(t, srv, "POST", "/v1/specs/pa/runs/"+name, bodies[(w+i)%len(bodies)], nil)
				if rec.Code != http.StatusCreated {
					t.Errorf("sync post %s = %d %q", name, rec.Code, rec.Body.String())
					return
				}
				if i%4 == 3 {
					rec := do(t, srv, "DELETE", "/v1/specs/pa/runs/"+name, nil, nil)
					if rec.Code != http.StatusOK && rec.Code != http.StatusNotFound {
						t.Errorf("delete %s = %d %q", name, rec.Code, rec.Body.String())
						return
					}
				}
			}
		}(w)
	}

	// Async writer: fire-and-forget posts over its own rotating names;
	// every ticket is polled to resolution in the settle phase.
	statusURLs := make(chan string, asyncPosts)
	writers.Add(1)
	go func() {
		defer writers.Done()
		defer close(statusURLs)
		for i := 0; i < asyncPosts; i++ {
			var acc acceptedJSON
			rec := do(t, srv, "POST", fmt.Sprintf("/v1/specs/pa/runs/aw%d?async=1", i%6), bodies[i%len(bodies)], &acc)
			if rec.Code != http.StatusAccepted {
				t.Errorf("async post %d = %d %q", i, rec.Code, rec.Body.String())
				return
			}
			statusURLs <- acc.StatusURL
		}
	}()

	// Readers: the four seed runs r0..r3 are never written, so the
	// analytic endpoints must answer 200 throughout the churn.
	var readers sync.WaitGroup
	for g, target := range []string{
		"/v1/specs/pa/cluster?k=2&seed=1",
		"/v1/specs/pa/nearest?run=r0&k=2",
		"/v1/specs/pa/diff/r0/r1",
	} {
		readers.Add(1)
		go func(g int, target string) {
			defer readers.Done()
			for {
				select {
				case <-writersDone:
					return
				default:
				}
				if rec := do(t, srv, "GET", target, nil, nil); rec.Code != http.StatusOK {
					t.Errorf("reader %d: %s = %d %q", g, target, rec.Code, rec.Body.String())
					return
				}
			}
		}(g, target)
	}

	writers.Wait()
	close(writersDone)
	readers.Wait()

	// Settle: every async ticket resolves committed (the bodies were
	// valid, so the only acceptable terminal state is success).
	for url := range statusURLs {
		if view := pollTicket(t, srv, url); view.State != ingest.StateCommitted {
			t.Errorf("ticket %s resolved %q: %+v", url, view.State, view)
		}
	}

	// The pipeline's books must balance once quiet: everything
	// enqueued either committed or failed, nothing stuck in the queue.
	ps := srv.Stats().Ingest
	if ps.Enqueued != ps.Committed+ps.Failed {
		t.Errorf("ingest accounting: enqueued %d != committed %d + failed %d", ps.Enqueued, ps.Committed, ps.Failed)
	}
	if ps.Failed != 0 {
		t.Errorf("ingest failed count = %d, want 0", ps.Failed)
	}
	if ps.QueueDepth != 0 {
		t.Errorf("queue depth after settle = %d, want 0", ps.QueueDepth)
	}

	// Final consistency read, then shutdown refuses new work.
	if rec := do(t, srv, "GET", "/v1/specs/pa/cluster?k=2&seed=1", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("settled cluster = %d %q", rec.Code, rec.Body.String())
	}
	srv.Close()
	rec := do(t, srv, "POST", "/v1/specs/pa/runs/late", bodies[0], nil)
	wantEnvelope(t, rec, http.StatusServiceUnavailable, "unavailable")
}
