package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/cost"
	"repro/internal/ingest"
	"repro/internal/store"
)

// maxBulkBytes bounds a whole bulk-import request body; individual
// documents stay bounded by the per-document import limit.
const maxBulkBytes = 256 << 20

// bulkRunJSON is one NDJSON line of a streaming bulk import.
type bulkRunJSON struct {
	Name string `json:"name"`
	XML  string `json:"xml"`
}

// handleBulkImport ingests a whole cohort in one request:
//
//	POST /v1/specs/{spec}/runs:bulk
//
// The body is either a tar archive of <run>.xml files (any layout;
// names come from the base filename) or, with Content-Type
// application/x-ndjson, a stream of {"name":…,"xml":…} lines. By
// default all documents are parsed and derived concurrently through
// the store's bulk path, written with their snapshot frames, and
// announced with a single coalesced change notification per spec —
// so however many runs arrive, the cohort matrices resync exactly
// once. With ?async=1 the parsed batch is instead fanned onto the
// group-commit pipeline under one ticket and the response is 202 +
// the ticket to poll.
func (s *Server) handleBulkImport(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	specName := ns[0]
	if _, err := s.st.LoadSpec(specName); err != nil {
		s.storeError(w, err)
		return
	}
	body := http.MaxBytesReader(w, r.Body, maxBulkBytes)
	var (
		runs []store.RunData
		err  error
	)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/x-ndjson") || strings.HasPrefix(ct, "application/jsonl") {
		runs, err = readRunNDJSON(body)
	} else {
		runs, err = store.ReadRunTar(body, s.maxImportBytes(), maxBulkBytes)
	}
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	if len(runs) == 0 {
		s.httpError(w, fmt.Errorf("bulk import carried no runs"), http.StatusBadRequest)
		return
	}
	if s.query(r).flag("async") {
		s.asyncBulkImport(w, specName, runs)
		return
	}
	stats, err := s.st.ImportRuns(specName, runs, s.opts.CohortWorkers)
	if err != nil {
		// Partial imports report what landed inside the envelope.
		s.errCount.Add(1)
		w.Header().Set("Content-Type", "application/json")
		code := storeStatus(err)
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(errorEnvelope{Error: errorDetail{
			Code:     errorCode(code),
			Message:  err.Error(),
			Imported: stats.Imported,
		}})
		return
	}
	// Content-Type must precede WriteHeader or it is dropped.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{
		"spec":     specName,
		"imported": len(stats.Imported),
		"runs":     stats.Imported,
		"nodes":    stats.Nodes,
		"edges":    stats.Edges,
	})
}

// asyncBulkImport enqueues a whole bulk batch under one ticket. A
// duplicate name is a 409 up front (one ticket entry per run); if the
// queue fills midway the remaining runs resolve failed on the ticket
// rather than blocking — the client asked for fire-and-poll.
func (s *Server) asyncBulkImport(w http.ResponseWriter, specName string, runs []store.RunData) {
	names := make([]string, len(runs))
	seen := make(map[string]bool, len(runs))
	for i, rd := range runs {
		if seen[rd.Name] {
			s.httpError(w, fmt.Errorf("run %q appears twice in bulk import: %w", rd.Name, store.ErrDuplicateRun), http.StatusConflict)
			return
		}
		seen[rd.Name] = true
		names[i] = rd.Name
	}
	t := s.tickets.New(specName, names)
	for i, rd := range runs {
		if err := s.ingest.Enqueue(&ingest.Job{Spec: specName, Run: rd.Name, XML: rd.XML, Ticket: t}); err != nil {
			if i == 0 {
				// Nothing in flight yet: refuse the whole request so the
				// client can simply retry it.
				for _, name := range names {
					t.Fail(name, err)
				}
				s.enqueueError(w, err)
				return
			}
			t.Fail(rd.Name, err)
		}
	}
	s.writeTicketAccepted(w, t)
}

// readRunNDJSON collects runs from an NDJSON stream.
func readRunNDJSON(r io.Reader) ([]store.RunData, error) {
	sc := bufio.NewScanner(r)
	// Headroom above the per-run XML limit: JSON escaping can more
	// than double the document, plus the envelope fields.
	sc.Buffer(make([]byte, 64<<10), 2*defaultMaxImportBytes+(1<<20))
	var runs []store.RunData
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		var rec bulkRunJSON
		if err := json.Unmarshal([]byte(text), &rec); err != nil {
			return nil, fmt.Errorf("ndjson line %d: %w", line, err)
		}
		if err := store.ValidateName(rec.Name); err != nil {
			return nil, fmt.Errorf("ndjson line %d: %w", line, err)
		}
		if rec.XML == "" {
			return nil, fmt.Errorf("ndjson line %d: empty xml", line)
		}
		runs = append(runs, store.RunData{Name: rec.Name, XML: []byte(rec.XML)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ndjson: %w", err)
	}
	return runs, nil
}

// handleExport streams a specification and all its runs as a tar
// archive — the inverse of runs:bulk, suitable for piping straight
// back into another service instance:
//
//	GET /specs/{spec}/export
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	if _, err := s.st.LoadSpec(ns[0]); err != nil {
		s.storeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/x-tar")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", ns[0]+".tar"))
	if err := s.st.ExportSpec(ns[0], nil, w); err != nil {
		// Headers are committed; nothing sane to do but log via the
		// error counter. The truncated tar fails checksum on read.
		s.errCount.Add(1)
	}
}

// Warm builds the incremental cohort (and thus the engine
// shards and parsed-run rows) for every specification under the unit
// cost model — the provserved boot path after Store.PreloadAll, so
// the first analytics request of every spec is served from a warm
// cohort instead of paying the full build inline.
func (s *Server) Warm() error {
	specs, err := s.st.ListSpecs()
	if err != nil {
		return err
	}
	for _, name := range specs {
		names, err := s.st.ListRuns(name)
		if err != nil {
			return err
		}
		if len(names) < 2 {
			continue
		}
		if _, err := s.cohortView(name, cost.Unit{}); err != nil {
			return err
		}
	}
	return nil
}
