package server

// Group-commit ingest wiring. Single-run imports no longer call
// store.SaveRun inline: the handler validates at the boundary, reads
// the body, and enqueues a job on the internal/ingest pipeline. The
// batcher drains the queue into batches and hands them to commitBatch
// below, which parses every document concurrently and commits each
// spec's runs through store.ImportParsed — one fsynced segment
// append, one manifest save, one coalesced OnRunsBulkChange per
// batch, however many clients were importing at once.
//
// Synchronous clients (the default) park on the job's response
// channel and still see today's request/response contract: 201 with
// {spec, run, nodes, edges}, per-item errors individual. Asynchronous
// clients (?async=1) get 202 with a ticket resolvable at
// GET /v1/tickets/{id}. A full queue answers 429 + Retry-After.

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cli"
	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// newIngest builds the server's pipeline from its options.
func (s *Server) newIngest() *ingest.Pipeline {
	return ingest.New(s.commitBatch, ingest.Options{
		QueueDepth: s.opts.IngestQueue,
		BatchSize:  s.opts.IngestBatch,
		MaxWait:    s.opts.IngestMaxWait,
	})
}

// Close drains the ingest pipeline: every queued import is committed
// and the batcher exits. On graceful shutdown call Close after the
// HTTP listener stops accepting requests and before the store goes
// away. The server keeps answering reads afterwards; new imports get
// 503.
func (s *Server) Close() {
	s.ingest.Close()
}

// handleIngest serves POST /v1/specs/{spec}/runs[/{run}]. Both URL
// shapes — run named by path value or by ?name= — validate spec and
// run names at the boundary, BEFORE the body is read.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	specName := r.PathValue("spec")
	if err := cli.ValidateName(specName); err != nil {
		s.httpError(w, fmt.Errorf("spec: %w", err), http.StatusBadRequest)
		return
	}
	runName := r.PathValue("run")
	if runName == "" {
		runName = r.URL.Query().Get("name")
	}
	if err := cli.ValidateName(runName); err != nil {
		s.httpError(w, fmt.Errorf("run: %w", err), http.StatusBadRequest)
		return
	}
	if _, err := s.st.LoadSpec(specName); err != nil {
		s.storeError(w, err)
		return
	}
	t0 := time.Now()
	body, ok := s.readBody(w, r)
	observeStage(r.Context(), stageParse, t0)
	if !ok {
		return
	}
	if s.opts.DirectIngest {
		t0 = time.Now()
		s.directImport(w, specName, runName, body)
		observeStage(r.Context(), stageStore, t0)
		return
	}
	if s.query(r).flag("async") {
		t := s.tickets.New(specName, []string{runName})
		if err := s.ingest.Enqueue(&ingest.Job{Spec: specName, Run: runName, XML: body, Ticket: t}); err != nil {
			t.Fail(runName, err)
			s.enqueueError(w, err)
			return
		}
		s.writeTicketAccepted(w, t)
		return
	}
	job := &ingest.Job{Spec: specName, Run: runName, XML: body, Resp: make(chan ingest.Result, 1)}
	if err := s.ingest.Enqueue(job); err != nil {
		s.enqueueError(w, err)
		return
	}
	// Park until the batch carrying this job commits. The batcher
	// always delivers (Close drains), so no context select is needed;
	// a client that hangs up simply never reads the response.
	t0 = time.Now()
	res := <-job.Resp
	observeStage(r.Context(), stageStore, t0)
	if res.Err != nil {
		s.httpError(w, res.Err, ingestStatus(res.Err))
		return
	}
	// Content-Type must precede WriteHeader or it is dropped.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	body201 := map[string]any{
		"spec": specName, "run": runName,
		"nodes": res.Nodes, "edges": res.Edges,
	}
	if res.Hash != "" {
		body201["hash"] = res.Hash
	}
	writeJSON(w, body201)
}

// directImport is the pre-pipeline synchronous path, selected by
// Options.DirectIngest: parse and SaveRun inline, one manifest touch
// per request. Kept for the sustained-ingest benchmark's baseline and
// for the differential test proving the pipeline's on-disk result is
// byte-identical to it.
func (s *Server) directImport(w http.ResponseWriter, specName, runName string, body []byte) {
	sp, err := s.st.LoadSpec(specName)
	if err != nil {
		s.storeError(w, err)
		return
	}
	run, err := wfxml.DecodeRun(bytes.NewReader(body), sp)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	if err := s.st.SaveRun(specName, runName, run); err != nil {
		s.storeError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{
		"spec": specName, "run": runName,
		"nodes": run.NumNodes(), "edges": run.NumEdges(),
	})
}

// enqueueError reports a job the pipeline would not take: 429 with a
// Retry-After hint under backpressure, 503 during shutdown.
func (s *Server) enqueueError(w http.ResponseWriter, err error) {
	code := ingestStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	s.httpError(w, err, code)
}

// writeTicketAccepted answers an async ingest with 202 and the
// polling location.
func (s *Server) writeTicketAccepted(w http.ResponseWriter, t *ingest.Ticket) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/tickets/"+t.ID)
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{
		"ticket":     t.ID,
		"spec":       t.Spec,
		"state":      ingest.StatePending,
		"status_url": "/v1/tickets/" + t.ID,
	})
}

// handleTicket serves GET /v1/tickets/{id}.
func (s *Server) handleTicket(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t, ok := s.tickets.Get(id)
	if !ok {
		s.httpError(w, fmt.Errorf("unknown ticket %q (resolved tickets are retained for a bounded window)", id), http.StatusNotFound)
		return
	}
	writeJSON(w, t.Snapshot())
}

// commitBatch is the pipeline's CommitFunc. Parse errors are
// per-item: one malformed document fails only its own job, unlike the
// all-or-nothing runs:bulk endpoint. Commit errors from the store are
// wrapped as commitError so they surface as 500s, except the runs
// that bulkAbort reports as landed.
func (s *Server) commitBatch(jobs []*ingest.Job) []ingest.Result {
	results := make([]ingest.Result, len(jobs))
	parsed := make([]*wfrun.Run, len(jobs))

	// Parse phase: concurrent across the batch; spec objects come from
	// the store's cache after the first load.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				sp, err := s.st.LoadSpec(jobs[i].Spec)
				if err != nil {
					results[i].Err = err
					continue
				}
				r, err := wfxml.DecodeRun(bytes.NewReader(jobs[i].XML), sp)
				if err != nil {
					results[i].Err = err
					continue
				}
				parsed[i] = r
			}
		}()
	}
	wg.Wait()

	// Commit phase: group the surviving jobs by spec in arrival
	// order. A name repeated within one group is split into
	// sequential "waves" — each wave is a duplicate-free group commit,
	// and committing the waves in order preserves the last-write-wins
	// outcome sequential imports would have produced.
	var specOrder []string
	bySpec := make(map[string][]int)
	for i, j := range jobs {
		if results[i].Err != nil {
			continue
		}
		if _, ok := bySpec[j.Spec]; !ok {
			specOrder = append(specOrder, j.Spec)
		}
		bySpec[j.Spec] = append(bySpec[j.Spec], i)
	}
	for _, specName := range specOrder {
		pending := bySpec[specName]
		for len(pending) > 0 {
			inWave := make(map[string]bool, len(pending))
			var wave, rest []int
			for _, i := range pending {
				if inWave[jobs[i].Run] {
					rest = append(rest, i)
					continue
				}
				inWave[jobs[i].Run] = true
				wave = append(wave, i)
			}
			prs := make([]store.ParsedRun, len(wave))
			for k, i := range wave {
				prs[k] = store.ParsedRun{Name: jobs[i].Run, XML: jobs[i].XML, Run: parsed[i]}
			}
			stats, err := s.st.ImportParsed(specName, prs)
			landed := make(map[string]bool, len(stats.Imported))
			hashes := make(map[string]string, len(stats.Hashes))
			for k, name := range stats.Imported {
				landed[name] = true
				if k < len(stats.Hashes) {
					hashes[name] = stats.Hashes[k]
				}
			}
			for _, i := range wave {
				if err == nil || landed[jobs[i].Run] {
					results[i] = ingest.Result{Nodes: parsed[i].NumNodes(), Edges: parsed[i].NumEdges(), Hash: hashes[jobs[i].Run]}
				} else {
					results[i].Err = commitError{err}
				}
			}
			pending = rest
		}
	}
	return results
}
