package server

// Differential test for the group-commit pipeline: a set of runs
// ingested through the batched async path must leave the store
// byte-identical — run XML, snapshot segment, manifest — to the same
// runs imported sequentially through the direct (pre-pipeline) path,
// and both servers must give the same analytic answers.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfxml"
)

// encodeRunNamed is encodeRun with the run's own name in the document,
// so the direct path's decode→re-encode round trip is byte-stable.
func encodeRunNamed(tb testing.TB, st *store.Store, seed int64, name string) []byte {
	tb.Helper()
	sp, err := st.LoadSpec("pa")
	if err != nil {
		tb.Fatal(err)
	}
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, name); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// manifestShape mirrors the snapshot manifest for comparison, with
// the one legitimately divergent field (XML mod time) normalised out.
type manifestShape struct {
	Version   int                      `json:"version"`
	LiveBytes int64                    `json:"live_bytes"`
	DeadBytes int64                    `json:"dead_bytes"`
	Runs      map[string]manifestEntry `json:"runs"`
}

type manifestEntry struct {
	Offset      int64 `json:"offset"`
	Length      int64 `json:"length"`
	Codec       int   `json:"codec"`
	Nodes       int   `json:"nodes"`
	Edges       int   `json:"edges"`
	XMLSize     int64 `json:"xml_size"`
	XMLModNanos int64 `json:"xml_mod_nanos"`
}

func readManifest(t *testing.T, dir string) manifestShape {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, "pa", "snapshot", "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m manifestShape
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	for name, e := range m.Runs {
		e.XMLModNanos = 0
		m.Runs[name] = e
	}
	return m
}

func TestPipelineIngestByteIdenticalToSequential(t *testing.T) {
	const k = 6
	dirP, dirD := t.TempDir(), t.TempDir()
	srvP, stP := seedServerAt(t, dirP, 0, Options{IngestBatch: k, IngestMaxWait: 100 * time.Millisecond})
	srvD, stD := seedServerAt(t, dirD, 0, Options{DirectIngest: true})

	bodies := make([][]byte, k)
	names := make([]string, k)
	for i := range bodies {
		names[i] = fmt.Sprintf("q%d", i) // single digit: sorted order == arrival order
		bodies[i] = encodeRunNamed(t, stP, int64(3000+i), names[i])
	}

	// Pipeline arm: async posts, FIFO from this one goroutine, so the
	// batcher coalesces them (up to all k in one commit) in known order.
	statusURLs := make([]string, k)
	for i, name := range names {
		var acc acceptedJSON
		rec := do(t, srvP, "POST", "/v1/specs/pa/runs/"+name+"?async=1", bodies[i], &acc)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("async post %s = %d %q", name, rec.Code, rec.Body.String())
		}
		statusURLs[i] = acc.StatusURL
	}
	for i, url := range statusURLs {
		if view := pollTicket(t, srvP, url); view.State != "committed" {
			t.Fatalf("ticket for %s resolved %q: %+v", names[i], view.State, view)
		}
	}

	// Direct arm: the same bodies, sequential synchronous posts.
	for i, name := range names {
		if rec := do(t, srvD, "POST", "/v1/specs/pa/runs/"+name, bodies[i], nil); rec.Code != http.StatusCreated {
			t.Fatalf("direct post %s = %d %q", name, rec.Code, rec.Body.String())
		}
	}

	// Align the snapshot layer: idempotent for the pipeline arm (its
	// frames landed at commit), materialising for the direct arm (its
	// frames were deferred).
	if _, err := stP.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	if _, err := stD.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}

	for _, name := range names {
		rel := filepath.Join("pa", "runs", name+".xml")
		xp, err := os.ReadFile(filepath.Join(dirP, rel))
		if err != nil {
			t.Fatal(err)
		}
		xd, err := os.ReadFile(filepath.Join(dirD, rel))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(xp, xd) {
			t.Errorf("%s differs between pipeline and direct stores", rel)
		}
	}

	segP, err := os.ReadFile(filepath.Join(dirP, "pa", "snapshot", "runs.seg"))
	if err != nil {
		t.Fatal(err)
	}
	segD, err := os.ReadFile(filepath.Join(dirD, "pa", "snapshot", "runs.seg"))
	if err != nil {
		t.Fatal(err)
	}
	mp, md := readManifest(t, dirP), readManifest(t, dirD)
	if !bytes.Equal(segP, segD) {
		t.Errorf("snapshot segments differ: pipeline %d bytes, direct %d bytes", len(segP), len(segD))
		// Attribute the divergence to frames via the manifest layout.
		for _, name := range names {
			ep, ed := mp.Runs[name], md.Runs[name]
			if ep != ed {
				t.Errorf("  %s: manifest entries differ: %+v vs %+v", name, ep, ed)
				continue
			}
			fp := segP[ep.Offset : ep.Offset+ep.Length]
			fd := segD[ep.Offset : ep.Offset+ep.Length]
			if !bytes.Equal(fp, fd) {
				i := 0
				for i < len(fp) && fp[i] == fd[i] {
					i++
				}
				t.Errorf("  %s: frame differs at byte %d of %d (pipeline % x | direct % x)",
					name, i, len(fp), fp[max(0, i-4):min(len(fp), i+8)], fd[max(0, i-4):min(len(fd), i+8)])
			}
		}
	}

	if !reflect.DeepEqual(mp, md) {
		t.Errorf("manifests differ (mod times normalised):\npipeline: %+v\ndirect:   %+v", mp, md)
	}

	// Same analytic answers from both servers.
	for _, target := range []string{
		"/v1/specs/pa/runs",
		"/v1/specs/pa/diff/q0/q1",
		"/v1/specs/pa/diff/q2/q5",
		"/v1/specs/pa/cohort",
		"/v1/specs/pa/cluster?k=2&seed=9",
	} {
		rp := do(t, srvP, "GET", target, nil, nil)
		rd := do(t, srvD, "GET", target, nil, nil)
		if rp.Code != http.StatusOK || rd.Code != http.StatusOK {
			t.Errorf("%s: pipeline %d, direct %d", target, rp.Code, rd.Code)
			continue
		}
		if !bytes.Equal(rp.Body.Bytes(), rd.Body.Bytes()) {
			t.Errorf("%s answers differ:\npipeline: %q\ndirect:   %q", target, truncate(rp.Body.String()), truncate(rd.Body.String()))
		}
	}
	srvP.Close()
	srvD.Close()
}
