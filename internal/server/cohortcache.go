package server

import (
	"context"
	"errors"
	"io/fs"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cost"
	"repro/internal/wfrun"
)

// cohortEntry is the server's long-lived incremental cohort state for
// one (specification, cost model) pair: a HybridCohort that keeps a
// dense distance matrix for small cohorts and switches to the metric
// index past the configured threshold. The cohort persists across
// requests — importing one run into an n-run cohort differences only
// the incremental pairs — and is kept honest through generation-checked
// invalidation: every store run-change bumps gen and records the run
// as dirty, and a request only trusts the cohort after replaying the
// dirty set for the generation it captured. A row computed from a run
// that changed mid-sync can therefore be *served* to the request that
// raced the change (the change was concurrent, either order is
// linearizable) but can never be *retained*: the bumped generation
// forces the next request to replace it.
type cohortEntry struct {
	// syncMu serializes sync passes (and thus all cohort mutations).
	syncMu sync.Mutex
	hc     *analysis.HybridCohort
	inited bool  // hc has had its initial full build
	synced int64 // generation the cohort content reflects

	// stateMu guards the invalidation state; it is taken by the store
	// hook and nests inside syncMu on the sync path.
	stateMu sync.Mutex
	gen     int64
	dirty   map[string]bool
	// full marks the whole cohort stale: the next sync does one Reset
	// instead of one Remove+Add per dirty run. It is set by a failed
	// sync restoring a promoted batch; batches themselves only mark
	// dirty runs and the sync pass promotes large ones (cohortView).
	full bool
}

// maxCohortEntries bounds the entry map: its keys include the ?cost=
// parameter, which untrusted clients control. Past the cap, requests
// fall back to one-shot cohorts instead of growing the map.
const maxCohortEntries = 64

// cohortCaches holds all live cohorts, keyed like enginePools by
// spec + NUL + cost-model name.
type cohortCaches struct {
	mu      sync.Mutex
	entries map[string]*cohortEntry
	workers int
	hybrid  analysis.HybridOptions
}

func newCohortCaches(workers int, hybrid analysis.HybridOptions) *cohortCaches {
	return &cohortCaches{entries: make(map[string]*cohortEntry), workers: workers, hybrid: hybrid}
}

// entry returns the cohort entry for (spec, model), creating it on
// first use; nil once the map is at capacity.
func (cc *cohortCaches) entry(specName string, m cost.Model) *cohortEntry {
	key := poolKey(specName, m)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	e, ok := cc.entries[key]
	if !ok {
		if len(cc.entries) >= maxCohortEntries {
			return nil
		}
		e = &cohortEntry{
			hc:    analysis.NewHybridCohort(m, cc.workers, cc.hybrid),
			dirty: make(map[string]bool),
		}
		cc.entries[key] = e
	}
	return e
}

// all snapshots every live entry (for stats aggregation).
func (cc *cohortCaches) all() []*cohortEntry {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	out := make([]*cohortEntry, 0, len(cc.entries))
	for _, e := range cc.entries {
		out = append(out, e)
	}
	return out
}

// entriesForSpec snapshots the live cohort entries of one spec (its
// pool keys are "<spec>\x00<cost>" for every cost model seen).
func (cc *cohortCaches) entriesForSpec(specName string) []*cohortEntry {
	prefix := specName + "\x00"
	cc.mu.Lock()
	defer cc.mu.Unlock()
	var hit []*cohortEntry
	for key, e := range cc.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			hit = append(hit, e)
		}
	}
	return hit
}

// invalidate records a run change: every cohort of the spec (under any
// cost model) marks the run dirty and advances its generation. Runs
// outside the store hook goroutine's locks.
func (cc *cohortCaches) invalidate(specName, runName string) {
	for _, e := range cc.entriesForSpec(specName) {
		e.stateMu.Lock()
		e.gen++
		e.dirty[runName] = true
		e.stateMu.Unlock()
	}
}

// invalidateBulk records a coalesced batch change (bulk import or a
// group-commit from the ingest pipeline): every cohort of the spec
// advances its generation once and marks the batch's runs dirty. How
// the batch is replayed — one Remove+Add per dirty run, or one full
// Reset — is decided at sync time against the live cohort size (see
// cohortView): a pipeline batch of a few runs into a large cohort
// stays incremental, while a bulk import that rivals the cohort pays
// one Reset instead of n re-adds.
func (cc *cohortCaches) invalidateBulk(specName string, runNames []string) {
	for _, e := range cc.entriesForSpec(specName) {
		e.stateMu.Lock()
		e.gen++
		for _, name := range runNames {
			e.dirty[name] = true
		}
		e.stateMu.Unlock()
	}
}

// count reports how many cohorts are live.
func (cc *cohortCaches) count() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries)
}

// cohortRuns lists and loads the stored runs of a spec. Runs deleted
// between the listing and the load are skipped rather than failed: the
// deletion already bumped the generation, so a later request
// reconciles.
func (s *Server) cohortRuns(specName string) ([]string, []*wfrun.Run, error) {
	names, err := s.st.ListRuns(specName)
	if err != nil {
		return nil, nil, err
	}
	outNames := names[:0]
	runs := make([]*wfrun.Run, 0, len(names))
	for _, name := range names {
		r, err := s.st.LoadRun(specName, name)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, nil, err
		}
		outNames = append(outNames, name)
		runs = append(runs, r)
	}
	return outNames, runs, nil
}

// cohortView returns an up-to-date view of the spec's cohort under the
// given model — dense matrix below the index threshold, metric index
// above — incrementally synced against the store.
func (s *Server) cohortView(specName string, m cost.Model) (*analysis.CohortView, error) {
	e := s.cohorts.entry(specName, m)
	if e == nil {
		// Entry map at capacity: compute a one-shot cohort without
		// retaining it.
		names, runs, err := s.cohortRuns(specName)
		if err != nil {
			return nil, err
		}
		hc := analysis.NewHybridCohort(m, s.cohorts.workers, s.cohorts.hybrid)
		if err := hc.Reset(names, runs); err != nil {
			return nil, err
		}
		return hc.View(), nil
	}

	e.syncMu.Lock()
	defer e.syncMu.Unlock()

	e.stateMu.Lock()
	gen := e.gen
	dirty := e.dirty
	full := e.full
	e.dirty = make(map[string]bool)
	e.full = false
	e.stateMu.Unlock()

	if e.inited && e.synced == gen {
		return e.hc.View(), nil
	}

	// Replay strategy: a dirty set that rivals the live cohort is
	// cheaper to Reset in one fan-out than to Remove+Add row by row
	// (bulk imports land here); a small batch — a lone re-import or
	// one group-commit from the ingest pipeline — stays incremental.
	if e.inited && !full && 2*len(dirty) >= e.hc.Len() {
		full = true
	}

	// restoreDirty puts unapplied invalidations back on error, so a
	// failed sync can never launder a dirty run into a clean one.
	restoreDirty := func() {
		e.stateMu.Lock()
		for name := range dirty {
			e.dirty[name] = true
		}
		e.full = e.full || full
		e.stateMu.Unlock()
	}

	if !e.inited || full {
		names, runs, err := s.cohortRuns(specName)
		if err != nil {
			restoreDirty()
			return nil, err
		}
		if err := e.hc.Reset(names, runs); err != nil {
			restoreDirty()
			return nil, err
		}
		e.inited = true
	} else {
		// Changed or deleted runs leave the cohort first; whatever
		// still exists on disk is then (re-)added incrementally.
		for name := range dirty {
			e.hc.Remove(name)
		}
		names, err := s.st.ListRuns(specName)
		if err != nil {
			restoreDirty()
			return nil, err
		}
		for _, name := range names {
			if e.hc.Has(name) {
				continue
			}
			r, err := s.st.LoadRun(specName, name)
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue
				}
				restoreDirty()
				return nil, err
			}
			if err := e.hc.Add(name, r); err != nil {
				restoreDirty()
				return nil, err
			}
		}
	}
	// Publish the sync point: changes that raced this pass advanced
	// gen past the captured value, so they stay unsynced and the next
	// request reconciles them.
	e.synced = gen
	return e.hc.View(), nil
}

// exactCohortMatrix is the ?exact= escape hatch: a dense distance
// matrix at any cohort size. When the synced cohort is already dense
// its matrix is reused; an indexed cohort gets a one-shot O(n²)
// fan-out bound to the request context (the caller asked for the full
// bill, but not past the client hanging up).
func (s *Server) exactCohortMatrix(ctx context.Context, specName string, m cost.Model) (*analysis.Matrix, error) {
	v, err := s.cohortView(specName, m)
	if err != nil {
		return nil, err
	}
	if !v.Indexed() {
		return v.Matrix, nil
	}
	names, runs, err := s.cohortRuns(specName)
	if err != nil {
		return nil, err
	}
	return analysis.DistanceMatrixWith(runs, names, m, analysis.Options{Workers: s.cohorts.workers, Context: ctx})
}
