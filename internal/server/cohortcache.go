package server

import (
	"errors"
	"io/fs"
	"sync"

	"repro/internal/analysis"
	"repro/internal/cost"
	"repro/internal/wfrun"
)

// cohortEntry is the server's long-lived incremental distance matrix
// for one (specification, cost model) pair. The matrix persists across
// requests — importing one run into an n-run cohort differences only
// the n new pairs — and is kept honest through generation-checked
// invalidation: every store run-change bumps gen and records the run
// as dirty, and a request only trusts the matrix after replaying the
// dirty set for the generation it captured. A row computed from a run
// that changed mid-sync can therefore be *served* to the request that
// raced the change (the change was concurrent, either order is
// linearizable) but can never be *retained*: the bumped generation
// forces the next request to replace it.
type cohortEntry struct {
	// syncMu serializes sync passes (and thus all matrix mutations).
	syncMu sync.Mutex
	cm     *analysis.CohortMatrix
	inited bool  // cm has had its initial full build
	synced int64 // generation the matrix content reflects

	// stateMu guards the invalidation state; it is taken by the store
	// hook and nests inside syncMu on the sync path.
	stateMu sync.Mutex
	gen     int64
	dirty   map[string]bool
	// full marks the whole cohort stale (bulk import): the next sync
	// does one Reset instead of one Remove+Add per dirty run.
	full bool
}

// maxCohortEntries bounds the entry map: its keys include the ?cost=
// parameter, which untrusted clients control. Past the cap, requests
// fall back to one-shot matrices instead of growing the map.
const maxCohortEntries = 64

// cohortCaches holds all live cohort matrices, keyed like enginePools
// by spec + NUL + cost-model name.
type cohortCaches struct {
	mu      sync.Mutex
	entries map[string]*cohortEntry
	workers int
}

func newCohortCaches(workers int) *cohortCaches {
	return &cohortCaches{entries: make(map[string]*cohortEntry), workers: workers}
}

// entry returns the cohort entry for (spec, model), creating it on
// first use; nil once the map is at capacity.
func (cc *cohortCaches) entry(specName string, m cost.Model) *cohortEntry {
	key := poolKey(specName, m)
	cc.mu.Lock()
	defer cc.mu.Unlock()
	e, ok := cc.entries[key]
	if !ok {
		if len(cc.entries) >= maxCohortEntries {
			return nil
		}
		e = &cohortEntry{
			cm:    analysis.NewCohortMatrix(m, cc.workers),
			dirty: make(map[string]bool),
		}
		cc.entries[key] = e
	}
	return e
}

// entriesForSpec snapshots the live cohort entries of one spec (its
// pool keys are "<spec>\x00<cost>" for every cost model seen).
func (cc *cohortCaches) entriesForSpec(specName string) []*cohortEntry {
	prefix := specName + "\x00"
	cc.mu.Lock()
	defer cc.mu.Unlock()
	var hit []*cohortEntry
	for key, e := range cc.entries {
		if len(key) >= len(prefix) && key[:len(prefix)] == prefix {
			hit = append(hit, e)
		}
	}
	return hit
}

// invalidate records a run change: every cohort matrix of the spec
// (under any cost model) marks the run dirty and advances its
// generation. Runs outside the store hook goroutine's locks.
func (cc *cohortCaches) invalidate(specName, runName string) {
	for _, e := range cc.entriesForSpec(specName) {
		e.stateMu.Lock()
		e.gen++
		e.dirty[runName] = true
		e.stateMu.Unlock()
	}
}

// invalidateBulk records a coalesced bulk import: every cohort matrix
// of the spec advances its generation once and schedules one full
// rebuild, however many runs the batch carried — importing n runs
// costs one O(n²) Reset instead of n O(n) incremental rows (n(n-1)/2
// diffs either way, but one fan-out, one engine warm-up, one publish).
func (cc *cohortCaches) invalidateBulk(specName string, runNames []string) {
	for _, e := range cc.entriesForSpec(specName) {
		e.stateMu.Lock()
		e.gen++
		e.full = true
		e.stateMu.Unlock()
	}
}

// count reports how many cohort matrices are live.
func (cc *cohortCaches) count() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.entries)
}

// cohortRuns lists and loads the stored runs of a spec. Runs deleted
// between the listing and the load are skipped rather than failed: the
// deletion already bumped the generation, so a later request
// reconciles.
func (s *Server) cohortRuns(specName string) ([]string, []*wfrun.Run, error) {
	names, err := s.st.ListRuns(specName)
	if err != nil {
		return nil, nil, err
	}
	outNames := names[:0]
	runs := make([]*wfrun.Run, 0, len(names))
	for _, name := range names {
		r, err := s.st.LoadRun(specName, name)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, nil, err
		}
		outNames = append(outNames, name)
		runs = append(runs, r)
	}
	return outNames, runs, nil
}

// cohortSnapshot returns an up-to-date distance matrix for the spec
// under the given model, incrementally synced against the store.
func (s *Server) cohortSnapshot(specName string, m cost.Model) (*analysis.Matrix, error) {
	e := s.cohorts.entry(specName, m)
	if e == nil {
		// Entry map at capacity: compute a one-shot matrix without
		// retaining it.
		names, runs, err := s.cohortRuns(specName)
		if err != nil {
			return nil, err
		}
		cm := analysis.NewCohortMatrix(m, s.cohorts.workers)
		if err := cm.Reset(names, runs); err != nil {
			return nil, err
		}
		return cm.Snapshot(), nil
	}

	e.syncMu.Lock()
	defer e.syncMu.Unlock()

	e.stateMu.Lock()
	gen := e.gen
	dirty := e.dirty
	full := e.full
	e.dirty = make(map[string]bool)
	e.full = false
	e.stateMu.Unlock()

	if e.inited && e.synced == gen {
		return e.cm.Snapshot(), nil
	}

	// restoreDirty puts unapplied invalidations back on error, so a
	// failed sync can never launder a dirty run into a clean one.
	restoreDirty := func() {
		e.stateMu.Lock()
		for name := range dirty {
			e.dirty[name] = true
		}
		e.full = e.full || full
		e.stateMu.Unlock()
	}

	if !e.inited || full {
		names, runs, err := s.cohortRuns(specName)
		if err != nil {
			restoreDirty()
			return nil, err
		}
		if err := e.cm.Reset(names, runs); err != nil {
			restoreDirty()
			return nil, err
		}
		e.inited = true
	} else {
		// Changed or deleted runs leave the matrix first; whatever
		// still exists on disk is then (re-)added, one O(n) row each.
		for name := range dirty {
			e.cm.Remove(name)
		}
		names, err := s.st.ListRuns(specName)
		if err != nil {
			restoreDirty()
			return nil, err
		}
		for _, name := range names {
			if e.cm.Has(name) {
				continue
			}
			r, err := s.st.LoadRun(specName, name)
			if err != nil {
				if errors.Is(err, fs.ErrNotExist) {
					continue
				}
				restoreDirty()
				return nil, err
			}
			if err := e.cm.Add(name, r); err != nil {
				restoreDirty()
				return nil, err
			}
		}
	}
	// Publish the sync point: changes that raced this pass advanced
	// gen past the captured value, so they stay unsynced and the next
	// request reconciles them.
	e.synced = gen
	return e.cm.Snapshot(), nil
}
