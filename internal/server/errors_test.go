package server

// Uniform error-envelope coverage: every failure mode the service can
// produce — client errors, missing resources, conflicts, oversized
// documents, backpressure, storage faults, shutdown, and even the
// mux's own unknown-path/method-mismatch responses — must answer with
// {"error":{"code":...,"message":...}} and nothing else.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/ingest"
	"repro/internal/store"
)

// wantEnvelope asserts a response is exactly the error envelope with
// the given status and code, and returns the decoded detail.
func wantEnvelope(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) errorDetail {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d, want %d (body %q)", rec.Code, status, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var top map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &top); err != nil {
		t.Fatalf("body %q is not JSON: %v", rec.Body.String(), err)
	}
	if len(top) != 1 || top["error"] == nil {
		t.Fatalf("body %q is not a bare error envelope", rec.Body.String())
	}
	var d errorDetail
	if err := json.Unmarshal(top["error"], &d); err != nil {
		t.Fatalf("error detail %q: %v", top["error"], err)
	}
	if d.Code != code {
		t.Errorf("error code = %q, want %q (message %q)", d.Code, code, d.Message)
	}
	if d.Message == "" {
		t.Error("error message is empty")
	}
	return d
}

// seedServerAt is seedServer over a caller-owned directory, for tests
// that need to reach under the store.
func seedServerAt(t *testing.T, dir string, n int, opts Options) (*Server, *store.Store) {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, err := st.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveRun("pa", fmt.Sprintf("r%d", i), r); err != nil {
			t.Fatal(err)
		}
	}
	return New(st, opts), st
}

func TestErrorEnvelopes(t *testing.T) {
	srv, st := seedServer(t, 2, Options{CacheSize: 8, MaxImportBytes: 512})
	ndjsonDup := func() []byte {
		line, err := json.Marshal(map[string]string{"name": "dupz", "xml": "<run/>"})
		if err != nil {
			t.Fatal(err)
		}
		return append(append(line, '\n'), line...)
	}()
	_ = st

	cases := []struct {
		name        string
		method      string
		target      string
		body        []byte
		contentType string
		status      int
		code        string
	}{
		{name: "bad int param", method: "GET", target: "/v1/specs/pa/cluster?k=abc", status: 400, code: "bad_request"},
		{name: "bad cost param", method: "GET", target: "/v1/specs/pa/diff/r0/r1?cost=bogus", status: 400, code: "bad_request"},
		{name: "unknown spec", method: "GET", target: "/v1/specs/nosuch/runs", status: 404, code: "not_found"},
		{name: "unknown run", method: "GET", target: "/v1/specs/pa/diff/r0/nosuch", status: 404, code: "not_found"},
		{name: "unknown ticket", method: "GET", target: "/v1/tickets/tdeadbeef", status: 404, code: "not_found"},
		{name: "duplicate bulk name", method: "POST", target: "/v1/specs/pa/runs:bulk", body: ndjsonDup, contentType: "application/x-ndjson", status: 409, code: "conflict"},
		{name: "oversized document", method: "POST", target: "/v1/specs/pa/runs/big", body: make([]byte, 4096), status: 413, code: "payload_too_large"},
		{name: "unknown path", method: "GET", target: "/v1/nope", status: 404, code: "not_found"},
		{name: "method mismatch", method: "PUT", target: "/v1/specs", status: 405, code: "method_not_allowed"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req := httptest.NewRequest(c.method, c.target, bytesReader(c.body))
			if c.contentType != "" {
				req.Header.Set("Content-Type", c.contentType)
			}
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			wantEnvelope(t, rec, c.status, c.code)
		})
	}
}

func bytesReader(b []byte) io.Reader {
	if b == nil {
		return http.NoBody
	}
	return io.NopCloser(newSliceReader(b))
}

func newSliceReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct{ b []byte }

func (r *sliceReader) Read(p []byte) (int, error) {
	if len(r.b) == 0 {
		return 0, io.EOF
	}
	n := copy(p, r.b)
	r.b = r.b[n:]
	return n, nil
}

// TestEnvelope429Backpressure swaps in a pipeline whose commit is
// gated shut, fills its one-deep queue, and asserts the overflow
// answer: 429, rate_limited, Retry-After.
func TestEnvelope429Backpressure(t *testing.T) {
	srv, _ := seedServer(t, 0, Options{})
	body := []byte("<run/>") // never parsed: the gate holds every commit
	gate := make(chan struct{})
	blocked := ingest.New(func(jobs []*ingest.Job) []ingest.Result {
		<-gate
		return make([]ingest.Result, len(jobs))
	}, ingest.Options{QueueDepth: 1, BatchSize: 1})
	srv.ingest.Close()
	srv.ingest = blocked
	defer func() {
		close(gate)
		blocked.Close()
	}()

	var got429 *httptest.ResponseRecorder
	accepted := 0
	for i := 0; i < 5; i++ {
		rec := do(t, srv, "POST", "/v1/specs/pa/runs/bp?async=1", body, nil)
		switch rec.Code {
		case http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			got429 = rec
		default:
			t.Fatalf("post %d = %d %q", i, rec.Code, rec.Body.String())
		}
	}
	if accepted == 0 {
		t.Error("no post was accepted before the queue filled")
	}
	if got429 == nil {
		t.Fatal("five posts against a one-deep gated queue never drew a 429")
	}
	wantEnvelope(t, got429, http.StatusTooManyRequests, "rate_limited")
	if got := got429.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
}

// TestEnvelope500CommitFault forces the storage side of a batched
// commit to fail (the run's XML path is occupied by a directory): the
// document was valid, so the client gets the service's 500, not a 400.
func TestEnvelope500CommitFault(t *testing.T) {
	dir := t.TempDir()
	srv, st := seedServerAt(t, dir, 1, Options{})
	body := encodeRun(t, st, 777)
	if err := os.MkdirAll(filepath.Join(dir, "pa", "runs", "evil500.xml"), 0o755); err != nil {
		t.Fatal(err)
	}
	rec := do(t, srv, "POST", "/v1/specs/pa/runs/evil500", body, nil)
	wantEnvelope(t, rec, http.StatusInternalServerError, "internal")
}

// TestEnvelope503AfterClose: a drained pipeline refuses new imports
// with 503/unavailable while reads keep answering.
func TestEnvelope503AfterClose(t *testing.T) {
	srv, st := seedServer(t, 2, Options{})
	body := encodeRun(t, st, 778)
	srv.Close()
	rec := do(t, srv, "POST", "/v1/specs/pa/runs/late", body, nil)
	wantEnvelope(t, rec, http.StatusServiceUnavailable, "unavailable")
	if rec := do(t, srv, "GET", "/v1/specs/pa/runs", nil, nil); rec.Code != http.StatusOK {
		t.Errorf("read after Close = %d, want 200", rec.Code)
	}
}

// poisonedBody fails the test if anything reads it: boundary
// validation must reject bad names BEFORE touching the body.
type poisonedBody struct{ t *testing.T }

func (p poisonedBody) Read([]byte) (int, error) {
	p.t.Error("handler read the request body before validating names")
	return 0, io.EOF
}

// TestIngestBoundaryValidation pins the fix for the import-path
// asymmetry: both POST shapes (?name= and path value) validate the
// run name at the boundary, without reading the body, under /v1 and
// the legacy alias alike.
func TestIngestBoundaryValidation(t *testing.T) {
	srv, _ := seedServer(t, 0, Options{})
	targets := []string{
		"/v1/specs/pa/runs?name=..%2Fevil",
		"/v1/specs/pa/runs/..%2Fevil",
		"/v1/specs/pa/runs", // name missing entirely
		"/specs/pa/runs?name=..%2Fevil",
		"/specs/pa/runs/..%2Fevil",
		"/v1/specs/..%2Fevil/runs/ok", // spec side of the same boundary
	}
	for _, target := range targets {
		t.Run(target, func(t *testing.T) {
			req := httptest.NewRequest("POST", target, poisonedBody{t})
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			wantEnvelope(t, rec, http.StatusBadRequest, "bad_request")
		})
	}
}
