package server

// Provenance ledger surface: per-run Merkle inclusion proofs. The
// matching commitments — per-spec ledger heads and the repository
// root — are published in /v1/stats, so a client can verify a proof
// end to end without trusting this server: fold the leaf up the
// sibling path to the batch root, chain prev + root + later roots to
// the head, and compare against the published head.

import (
	"fmt"
	"net/http"
	"time"

	"repro/internal/cli"
	"repro/internal/store"
)

// handleProof serves GET /v1/specs/{spec}/runs/{run}/proof.
func (s *Server) handleProof(w http.ResponseWriter, r *http.Request) {
	specName := r.PathValue("spec")
	if err := cli.ValidateName(specName); err != nil {
		s.httpError(w, fmt.Errorf("spec: %w", err), http.StatusBadRequest)
		return
	}
	runName := r.PathValue("run")
	if err := cli.ValidateName(runName); err != nil {
		s.httpError(w, fmt.Errorf("run: %w", err), http.StatusBadRequest)
		return
	}
	t0 := time.Now()
	p, err := s.st.RunProof(specName, runName)
	if err != nil {
		observeStage(r.Context(), stageLedger, t0)
		s.storeError(w, err)
		return
	}
	// Self-check before serving: a proof that does not fold to its own
	// head would only confuse clients — better a loud 500 here.
	_, verr := store.VerifyProof(p)
	observeStage(r.Context(), stageLedger, t0)
	if verr != nil {
		s.httpError(w, verr, http.StatusInternalServerError)
		return
	}
	writeJSON(w, p)
}
