package server

import (
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cost"
)

// enginePools hands out reusable differencing engines, one pool per
// (specification, cost model) pair. core.Engine keeps its W_TG memo as
// long as consecutive Diff calls share a specification, so pooling per
// spec means a request almost always picks up an engine whose
// spec-level tables are already warm; pooling per cost model is
// required because an engine's model is fixed at construction. Engines
// are checked out for the duration of one request (they are not safe
// for concurrent use) and returned when the response is extracted.
type enginePools struct {
	mu    sync.Mutex
	pools map[string]*sync.Pool

	gets atomic.Int64 // engine checkouts
	news atomic.Int64 // checkouts that had to construct a fresh engine
}

func newEnginePools() *enginePools {
	return &enginePools{pools: make(map[string]*sync.Pool)}
}

// maxEnginePools bounds the pool map: its keys include the ?cost=
// parameter, which untrusted clients control (every distinct power
// epsilon is a distinct key). Past the cap, requests fall back to
// one-off engines instead of growing the map.
const maxEnginePools = 128

// poolKey separates spec and model names with a byte neither can
// contain (store.ValidateName rejects NUL).
func poolKey(specName string, m cost.Model) string {
	return specName + "\x00" + m.Name()
}

// pool returns the pool for (spec, model), creating it on first use;
// it returns nil once the pool map is at capacity.
func (p *enginePools) pool(specName string, m cost.Model) *sync.Pool {
	key := poolKey(specName, m)
	p.mu.Lock()
	defer p.mu.Unlock()
	pool, ok := p.pools[key]
	if !ok {
		if len(p.pools) >= maxEnginePools {
			return nil
		}
		pool = &sync.Pool{New: func() any {
			p.news.Add(1)
			return core.NewEngine(m)
		}}
		p.pools[key] = pool
	}
	return pool
}

// get checks an engine out for the calling goroutine.
func (p *enginePools) get(specName string, m cost.Model) *core.Engine {
	p.gets.Add(1)
	if pool := p.pool(specName, m); pool != nil {
		return pool.Get().(*core.Engine)
	}
	p.news.Add(1)
	return core.NewEngine(m)
}

// put returns a checked-out engine. The caller must have extracted
// everything it needs from the engine's last Result. Engines checked
// out past the pool cap are simply dropped.
func (p *enginePools) put(specName string, m cost.Model, eng *core.Engine) {
	if pool := p.pool(specName, m); pool != nil {
		pool.Put(eng)
	}
}

// poolCount reports how many (spec, model) pools exist.
func (p *enginePools) poolCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.pools)
}
