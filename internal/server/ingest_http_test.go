package server

// HTTP-level contract of the async ingest mode: 202 + ticket on
// accept, poll-to-committed at /v1/tickets/{id}, per-run failures
// resolved on the ticket rather than lost.

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/ingest"
)

type acceptedJSON struct {
	Ticket    string `json:"ticket"`
	Spec      string `json:"spec"`
	State     string `json:"state"`
	StatusURL string `json:"status_url"`
}

// pollTicket polls a ticket status URL until it leaves pending.
func pollTicket(t *testing.T, srv *Server, statusURL string) ingest.View {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var view ingest.View
		if rec := do(t, srv, "GET", statusURL, nil, &view); rec.Code != http.StatusOK {
			t.Fatalf("%s = %d %q", statusURL, rec.Code, rec.Body.String())
		}
		if view.State != ingest.StatePending {
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("ticket %s still pending after 10s", statusURL)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestAsyncIngestTicketRoundTrip(t *testing.T) {
	srv, st := seedServer(t, 1, Options{})
	body := encodeRun(t, st, 801)

	var acc acceptedJSON
	rec := do(t, srv, "POST", "/v1/specs/pa/runs/az?async=1", body, &acc)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async import = %d %q", rec.Code, rec.Body.String())
	}
	if acc.Ticket == "" || acc.State != ingest.StatePending || acc.Spec != "pa" {
		t.Fatalf("accept payload: %+v", acc)
	}
	if want := "/v1/tickets/" + acc.Ticket; acc.StatusURL != want || rec.Header().Get("Location") != want {
		t.Fatalf("status url %q / Location %q, want %q", acc.StatusURL, rec.Header().Get("Location"), want)
	}

	view := pollTicket(t, srv, acc.StatusURL)
	if view.State != ingest.StateCommitted || view.Total != 1 || view.Done != 1 {
		t.Fatalf("resolved view: %+v", view)
	}
	if len(view.Runs) != 1 || view.Runs[0].Run != "az" || view.Runs[0].State != ingest.StateCommitted || view.Runs[0].Nodes == 0 {
		t.Fatalf("run status: %+v", view.Runs)
	}

	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, srv, "GET", "/v1/specs/pa/runs", nil, &runs)
	if !contains(runs.Runs, "az") {
		t.Fatalf("committed run az missing from listing %v", runs.Runs)
	}
}

func TestAsyncIngestMalformedDocumentFailsTicket(t *testing.T) {
	srv, _ := seedServer(t, 0, Options{})
	var acc acceptedJSON
	rec := do(t, srv, "POST", "/v1/specs/pa/runs/bad?async=1", []byte("<not-a-run>"), &acc)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async import = %d %q", rec.Code, rec.Body.String())
	}
	view := pollTicket(t, srv, acc.StatusURL)
	if view.State != ingest.StateFailed {
		t.Fatalf("ticket state = %q, want failed (%+v)", view.State, view)
	}
	if len(view.Runs) != 1 || view.Runs[0].Error == "" {
		t.Fatalf("run status lacks the parse error: %+v", view.Runs)
	}
}

func TestAsyncBulkImportOneTicket(t *testing.T) {
	srv, st := seedServer(t, 0, Options{})
	tarBody, names := bulkTar(t, st, 3, 803, "qb")

	var acc acceptedJSON
	rec := do(t, srv, "POST", "/v1/specs/pa/runs:bulk?async=1", tarBody, &acc)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("async bulk = %d %q", rec.Code, rec.Body.String())
	}
	view := pollTicket(t, srv, acc.StatusURL)
	if view.State != ingest.StateCommitted || view.Total != len(names) || view.Done != len(names) {
		t.Fatalf("resolved view: %+v", view)
	}
	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, srv, "GET", "/v1/specs/pa/runs", nil, &runs)
	for _, name := range names {
		if !contains(runs.Runs, name) {
			t.Errorf("bulk run %s missing from listing %v", name, runs.Runs)
		}
	}
}

// TestSyncIngestPartialBatchErrors: jobs batched together fail and
// succeed individually — one malformed document in a coalesced batch
// must not poison its batchmates.
func TestSyncIngestPartialBatchErrors(t *testing.T) {
	srv, st := seedServer(t, 0, Options{IngestMaxWait: 50 * time.Millisecond, IngestBatch: 2})
	good := encodeRun(t, st, 804)

	type result struct {
		code int
		body string
	}
	results := make(chan result, 2)
	post := func(name string, body []byte) {
		rec := do(t, srv, "POST", "/v1/specs/pa/runs/"+name, body, nil)
		results <- result{rec.Code, rec.Body.String()}
	}
	go post("ok", good)
	go post("broken", []byte("<garbage"))
	a, b := <-results, <-results
	codes := []int{a.code, b.code}
	if !(contains2(codes, http.StatusCreated) && contains2(codes, http.StatusBadRequest)) {
		t.Fatalf("codes = %v (%q / %q), want one 201 and one 400", codes, a.body, b.body)
	}
	var runs struct {
		Runs []string `json:"runs"`
	}
	do(t, srv, "GET", "/v1/specs/pa/runs", nil, &runs)
	if !contains(runs.Runs, "ok") || contains(runs.Runs, "broken") {
		t.Fatalf("stored runs %v, want ok and not broken", runs.Runs)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

func contains2(xs []int, want int) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}

// TestTicketIDShape pins the capability-style identifier: opaque,
// unguessable, never a small integer a client might enumerate.
func TestTicketIDShape(t *testing.T) {
	srv, st := seedServer(t, 0, Options{})
	body := encodeRun(t, st, 805)
	var acc acceptedJSON
	do(t, srv, "POST", "/v1/specs/pa/runs/shape?async=1", body, &acc)
	if !strings.HasPrefix(acc.Ticket, "t") || len(acc.Ticket) != 25 {
		t.Fatalf("ticket id %q, want t + 24 hex chars", acc.Ticket)
	}
	pollTicket(t, srv, acc.StatusURL) // drain before TempDir cleanup
}
