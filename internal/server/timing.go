package server

// Per-request stage timing. Every route is wrapped by instrument(),
// which parks a RequestTiming in the request context; handlers charge
// wall time to named stages through observeStage. The finished struct
// feeds the /metrics histograms and, when Options.OnRequestTiming is
// set (provserved -timing-log), a CSV sink — the flat shape exists so
// one request is one spreadsheet row.

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// RequestTiming is the flat per-request record: identity, outcome, and
// milliseconds charged to each pipeline stage. Stages a request never
// touches stay zero.
type RequestTiming struct {
	Route    string    // route table name, e.g. "diff"
	Method   string    // HTTP method
	Status   int       // response status code
	Start    time.Time // arrival time
	TotalMS  float64   // end-to-end handler time
	ParseMS  float64   // request-body decode (XML/JSON/events)
	DiffMS   float64   // differencing / drift computation
	CacheMS  float64   // result-cache lookups
	StoreMS  float64   // store reads/writes incl. ingest commit waits
	LedgerMS float64   // Merkle proof construction
}

// TimingCSVHeader is the column row matching CSVRow.
func TimingCSVHeader() string {
	return "start,route,method,status,total_ms,parse_ms,diff_ms,cache_ms,store_ms,ledger_ms"
}

// CSVRow renders the record as one CSV line (no trailing newline).
func (t *RequestTiming) CSVRow() string {
	return fmt.Sprintf("%s,%s,%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f",
		t.Start.UTC().Format(time.RFC3339Nano), t.Route, t.Method, t.Status,
		t.TotalMS, t.ParseMS, t.DiffMS, t.CacheMS, t.StoreMS, t.LedgerMS)
}

type timingKey struct{}

// timingFrom retrieves the request's timing record; nil when the
// request did not pass through instrument (tests calling handlers
// directly), so stage observation must stay nil-safe.
func timingFrom(ctx context.Context) *RequestTiming {
	t, _ := ctx.Value(timingKey{}).(*RequestTiming)
	return t
}

// Stage names accepted by observeStage.
const (
	stageParse  = "parse"
	stageDiff   = "diff"
	stageCache  = "cache"
	stageStore  = "store"
	stageLedger = "ledger"
)

// observeStage charges elapsed wall time since start to a stage. Usage:
//
//	t0 := time.Now()
//	... work ...
//	observeStage(r.Context(), stageDiff, t0)
//
// Handlers run on one goroutine per request, so no locking is needed.
func observeStage(ctx context.Context, stage string, start time.Time) {
	t := timingFrom(ctx)
	if t == nil {
		return
	}
	ms := float64(time.Since(start).Nanoseconds()) / 1e6
	switch stage {
	case stageParse:
		t.ParseMS += ms
	case stageDiff:
		t.DiffMS += ms
	case stageCache:
		t.CacheMS += ms
	case stageStore:
		t.StoreMS += ms
	case stageLedger:
		t.LedgerMS += ms
	}
}

// statusWriter captures the response status for the timing record. It
// forwards Flush (the NDJSON streaming handlers type-assert
// http.Flusher) and exposes Unwrap so http.NewResponseController can
// reach the per-write deadline support of the underlying writer.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps a handler with the timing shell: it stamps the
// route name, runs the handler with a context-carried RequestTiming,
// then folds the finished record into the metrics registry and the
// optional timing sink.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := &RequestTiming{Route: route, Method: r.Method, Start: time.Now()}
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(context.WithValue(r.Context(), timingKey{}, t)))
		t.Status = sw.status
		if t.Status == 0 {
			// Handler wrote nothing; net/http will send 200.
			t.Status = http.StatusOK
		}
		t.TotalMS = float64(time.Since(t.Start).Nanoseconds()) / 1e6
		s.metrics.observeRequest(t)
		if s.opts.OnRequestTiming != nil {
			s.opts.OnRequestTiming(t)
		}
	}
}
