// Package server exposes a provenance repository over HTTP/JSON — the
// long-running service counterpart of the provstore CLI. The paper
// frames provenance differencing as an interactive tool a scientist
// queries repeatedly against a growing repository of runs (Section
// VII); this package is the serving layer that makes those repeated
// queries cheap:
//
//   - engines are pooled per (specification, cost model), so the W_TG
//     memo and all flat scratch tables of core.Engine persist across
//     requests instead of being rebuilt per diff;
//   - finished diff payloads (JSON and SVG) live in a bounded LRU
//     keyed by (spec, runA, runB, cost), invalidated through
//     store.OnRunChange when a run is re-imported or deleted;
//   - cohort matrices fan out over a worker pool and can stream
//     per-pair progress to the client as NDJSON;
//   - single-run imports flow through a group-commit pipeline
//     (internal/ingest): concurrent importers coalesce into one
//     segment append + one manifest save + one change notification
//     per batch, synchronously (default) or async via tickets.
//
// The API is versioned under /v1 (all JSON unless noted):
//
//	GET    /v1/specs                          list specifications
//	GET    /v1/specs/{spec}/runs              list runs of a specification
//	POST   /v1/specs/{spec}/runs              import a run (XML body, ?name=, ?async=1)
//	POST   /v1/specs/{spec}/runs/{run}        import a run (XML body, ?async=1)
//	POST   /v1/specs/{spec}/runs:bulk         bulk-import a cohort (tar or NDJSON, ?async=1)
//	GET    /v1/specs/{spec}/export            export spec + runs as a tar stream
//	DELETE /v1/specs/{spec}/runs/{run}        delete a run
//	GET    /v1/specs/{spec}/diff/{a}/{b}      distance + edit script (?cost=, ?across=)
//	GET    /v1/specs/{spec}/diff/{a}/{b}/svg  side-by-side SVG diff rendering
//	GET    /v1/specs/{spec}/cohort            distance matrix + dendrogram (?cost=, ?stream=1)
//	GET    /v1/specs/{a}/evolve/{b}           spec-evolution mapping between versions
//	GET    /v1/specs/{a}/evolve/{b}/svg       spec overlay (deleted red, inserted green)
//	GET    /v1/specs/{spec}/cluster           k-medoids partitioning (?k=, ?seed=, ?cost=)
//	GET    /v1/specs/{spec}/outliers          knn outlier scores (?k=, ?cost=)
//	GET    /v1/specs/{spec}/nearest           nearest neighbors (?run=, ?k=, ?cost=)
//	GET    /v1/specs/{spec}/runs/{run}/proof  Merkle inclusion proof from the provenance ledger
//	PATCH  /v1/specs/{spec}/runs/{run}/events append live node-status events (?cost=, ?complete=1)
//	GET    /v1/specs/{spec}/watch             stream live-run drift updates as NDJSON
//	GET    /v1/tickets/{id}                   async ingest ticket status
//	GET    /v1/metrics                        Prometheus text-format metrics
//	GET    /v1/stats                          service counters (incl. ledger heads + repository root)
//	GET    /v1/healthz                        liveness probe
//
// The pre-/v1 routes (same paths minus the prefix, plus the old
// /diff/{spec}/{a}/{b} and /cohort/{spec} shapes) remain as deprecated
// aliases: they are served by the same handlers byte-for-byte and
// carry "Deprecation: true" plus a successor-version Link header (see
// routes.go). Errors everywhere use one JSON envelope,
// {"error":{"code":...,"message":...}} (see errors.go).
//
// The three cohort-analytics endpoints share one incrementally
// maintained distance matrix per (spec, cost model): importing a run
// into an n-run cohort differences only the n new pairs, with
// store.OnRunChange generation checks guaranteeing a stale row is
// never retained (see cohortcache.go).
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/cost"
	"repro/internal/edit"
	"repro/internal/ingest"
	"repro/internal/store"
	"repro/internal/view"
)

// defaultMaxImportBytes bounds a POSTed run XML document unless
// Options.MaxImportBytes overrides it.
const defaultMaxImportBytes = 32 << 20

// progressWriteTimeout bounds each streamed NDJSON write; a client
// that stops reading gets its connection failed instead of stalling
// the cohort fan-out.
const progressWriteTimeout = 15 * time.Second

// Options configures a Server.
type Options struct {
	// CacheSize bounds the diff-result LRU in entries; <= 0 disables
	// result caching. DefaultCacheSize is a sensible service default.
	CacheSize int
	// CohortWorkers caps the cohort fan-out; <= 0 means GOMAXPROCS.
	CohortWorkers int
	// IndexThreshold is the cohort size at which the analytics
	// endpoints switch from the dense distance matrix to the metric
	// index: 0 means analysis.DefaultIndexThreshold, negative disables
	// indexing (always dense).
	IndexThreshold int
	// Landmarks is the metric index's landmark count; <= 0 means
	// metricindex.DefaultLandmarks.
	Landmarks int
	// IngestQueue bounds the group-commit queue; past it imports get
	// 429. <= 0 means ingest.DefaultQueueDepth.
	IngestQueue int
	// IngestBatch caps how many runs one pipeline commit carries;
	// <= 0 means ingest.DefaultBatchSize.
	IngestBatch int
	// IngestMaxWait is the batcher's linger window; 0 (default)
	// flushes as soon as the queue runs dry.
	IngestMaxWait time.Duration
	// MaxImportBytes bounds one run XML document; <= 0 means the
	// 32 MiB default.
	MaxImportBytes int64
	// TicketRetention bounds resolved async tickets kept for polling;
	// <= 0 means ingest.DefaultTicketRetention.
	TicketRetention int
	// DirectIngest bypasses the group-commit pipeline and imports
	// synchronously inline (the pre-pipeline behavior) — the baseline
	// arm of the sustained-ingest benchmark and differential tests.
	DirectIngest bool
	// OnRequestTiming, when set, receives every finished request's
	// stage-timing record after the handler returns (provserved wires
	// it to the -timing-log CSV sink). Must be safe for concurrent
	// calls; the record must not be retained past the call.
	OnRequestTiming func(*RequestTiming)
}

// DefaultCacheSize is the diff-result LRU capacity used by provserved
// unless overridden.
const DefaultCacheSize = 512

// Server serves a provenance repository over HTTP. It is safe for
// concurrent use; create it with New and mount it as an http.Handler.
// Call Close on shutdown to drain the ingest pipeline.
type Server struct {
	st      *store.Store
	pools   *enginePools
	cache   *resultCache
	cohorts *cohortCaches
	ingest  *ingest.Pipeline
	tickets *ingest.Registry
	opts    Options
	mux     *http.ServeMux
	started time.Time
	metrics *metricsRegistry
	watch   *watchHub

	reqDiff, reqSVG, reqCohort, reqSpecs, reqRuns atomic.Int64
	reqImport, reqDelete, reqStats                atomic.Int64
	reqCluster, reqOutliers, reqNearest           atomic.Int64
	reqBulk, reqExport, reqEvolve, reqTickets     atomic.Int64
	reqProof, reqLive, reqWatch, reqMetrics       atomic.Int64
	errCount                                      atomic.Int64
}

// New builds a Server over an open store and registers its routes.
// The server subscribes to the store's run-change notifications, so
// imports and deletions performed through any handle of the same
// Store invalidate cached diffs immediately.
func New(st *store.Store, opts Options) *Server {
	s := &Server{
		st:    st,
		pools: newEnginePools(),
		cache: newResultCache(opts.CacheSize),
		cohorts: newCohortCaches(opts.CohortWorkers, analysis.HybridOptions{
			IndexThreshold: opts.IndexThreshold,
			Landmarks:      opts.Landmarks,
		}),
		tickets: ingest.NewRegistry(opts.TicketRetention),
		opts:    opts,
		mux:     http.NewServeMux(),
		started: time.Now(),
		metrics: newMetricsRegistry(),
		watch:   newWatchHub(),
	}
	s.ingest = s.newIngest()
	st.OnRunChange(s.cache.invalidateRun)
	st.OnRunChange(s.cohorts.invalidate)
	// Batched imports arrive coalesced: per-run invalidation for the
	// pair cache (each named run's entries are stale), one batched
	// mark for the cohort matrices — the sync pass replays it
	// incrementally or as one Reset, whichever is cheaper.
	st.OnRunsBulkChange(func(specName string, runNames []string) {
		for _, run := range runNames {
			s.cache.invalidateRun(specName, run)
		}
		s.cohorts.invalidateBulk(specName, runNames)
	})
	s.registerRoutes()
	return s
}

// ServeHTTP implements http.Handler. Responses the mux generates on
// its own — 404 for unknown paths, 405 for method mismatches — are
// rewritten into the uniform error envelope; requests that resolve to
// a registered route reach their handler untouched.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if _, pattern := s.mux.Handler(r); pattern == "" {
		s.mux.ServeHTTP(&muxErrorWriter{w: w, s: s}, r)
		return
	}
	s.mux.ServeHTTP(w, r)
}

// maxImportBytes resolves the per-document size bound.
func (s *Server) maxImportBytes() int64 {
	if s.opts.MaxImportBytes > 0 {
		return s.opts.MaxImportBytes
	}
	return defaultMaxImportBytes
}

// names extracts and validates the named path values; a validation
// failure writes a 400 and returns false. Path values are decoded by
// the mux, so an encoded %2e%2e%2f arrives here as "../" and is
// rejected before it can reach the filesystem.
func (s *Server) names(w http.ResponseWriter, r *http.Request, keys ...string) ([]string, bool) {
	out := make([]string, len(keys))
	for i, k := range keys {
		v := r.PathValue(k)
		if err := cli.ValidateName(v); err != nil {
			s.httpError(w, fmt.Errorf("%s: %w", k, err), http.StatusBadRequest)
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, `{"ok":true}`+"\n")
}

// --- repository browsing -------------------------------------------

type specInfo struct {
	Name string `json:"name"`
	Runs int    `json:"runs"`
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	names, err := s.st.ListSpecs()
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	out := make([]specInfo, 0, len(names))
	for _, n := range names {
		runs, err := s.st.ListRuns(n)
		if err != nil {
			s.httpError(w, err, http.StatusInternalServerError)
			return
		}
		out = append(out, specInfo{Name: n, Runs: len(runs)})
	}
	writeJSON(w, map[string]any{"specs": out})
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	if _, err := s.st.LoadSpec(ns[0]); err != nil {
		s.storeError(w, err)
		return
	}
	runs, err := s.st.ListRuns(ns[0])
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	if runs == nil {
		runs = []string{}
	}
	writeJSON(w, map[string]any{"spec": ns[0], "runs": runs})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec", "run")
	if !ok {
		return
	}
	if err := s.st.DeleteRun(ns[0], ns[1]); err != nil {
		s.storeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"deleted": ns[0] + "/" + ns[1]})
}

// --- differencing ---------------------------------------------------

type opJSON struct {
	Kind      string   `json:"kind"`
	Cost      float64  `json:"cost"`
	Length    int      `json:"length"`
	Path      []string `json:"path"`
	Labels    []string `json:"labels"`
	Loop      bool     `json:"loop,omitempty"`
	Temporary bool     `json:"temporary,omitempty"`
}

type diffPayload struct {
	Spec     string   `json:"spec"`
	RunA     string   `json:"run_a"`
	RunB     string   `json:"run_b"`
	Cost     string   `json:"cost"`
	Distance float64  `json:"distance"`
	OpCount  int      `json:"op_count"`
	Ops      []opJSON `json:"ops"`
	Cached   bool     `json:"cached"`
}

func scriptJSON(sc *edit.Script) []opJSON {
	out := make([]opJSON, len(sc.Ops))
	for i, op := range sc.Ops {
		out[i] = opJSON{
			Kind:      op.Kind.String(),
			Cost:      op.Cost,
			Length:    op.Length,
			Path:      op.PathNodes,
			Labels:    op.PathLabels,
			Loop:      op.LoopOp,
			Temporary: op.Temporary,
		}
	}
	return out
}

// diffPair produces the JSON payload for one pair, through the cache.
// The engine is checked out only for the uncached computation and
// everything the payload needs is extracted before it is returned, so
// the pooled engine is immediately reusable.
func (s *Server) diffPair(ctx context.Context, specName, runA, runB string, m cost.Model) (diffPayload, error) {
	key := cacheKey{spec: specName, runA: runA, runB: runB, cost: m.Name(), kind: kindDiff}
	t0 := time.Now()
	v, ok := s.cache.get(key)
	observeStage(ctx, stageCache, t0)
	if ok {
		p := v.(diffPayload)
		p.Cached = true
		return p, nil
	}
	t0 = time.Now()
	defer func() { observeStage(ctx, stageDiff, t0) }()
	// Capture the invalidation generation before touching store state:
	// if either run changes while we compute, the payload is discarded
	// rather than cached stale.
	gen := s.cache.generation()
	eng := s.pools.get(specName, m)
	res, err := s.st.DiffWith(eng, specName, runA, runB)
	if err != nil {
		s.pools.put(specName, m, eng)
		return diffPayload{}, err
	}
	sc, _, err := res.Script()
	if err != nil {
		s.pools.put(specName, m, eng)
		return diffPayload{}, err
	}
	p := diffPayload{
		Spec:     specName,
		RunA:     runA,
		RunB:     runB,
		Cost:     m.Name(),
		Distance: res.Distance,
		OpCount:  len(sc.Ops),
		Ops:      scriptJSON(sc),
	}
	s.pools.put(specName, m, eng)
	s.cache.addIfGen(key, p, gen)
	return p, nil
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec", "a", "b")
	if !ok {
		return
	}
	q := s.query(r)
	m := q.cost()
	across := q.optionalName("across")
	if !q.valid(w) {
		return
	}
	if across != "" {
		// Cross-version comparison: run b belongs to the
		// lineage-linked specification named by ?across=.
		s.crossDiff(w, ns[0], ns[1], ns[2], across, m)
		return
	}
	p, err := s.diffPair(r.Context(), ns[0], ns[1], ns[2], m)
	if err != nil {
		s.storeError(w, err)
		return
	}
	writeJSON(w, p)
}

// handleDiffSVG serves the PDiffView rendering — source and target
// runs side by side, deletions red, insertions green — as a
// standalone SVG image.
func (s *Server) handleDiffSVG(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec", "a", "b")
	if !ok {
		return
	}
	q := s.query(r)
	m := q.cost()
	if !q.valid(w) {
		return
	}
	key := cacheKey{spec: ns[0], runA: ns[1], runB: ns[2], cost: m.Name(), kind: kindSVG}
	if v, ok := s.cache.get(key); ok {
		w.Header().Set("Content-Type", "image/svg+xml")
		io.WriteString(w, v.(string))
		return
	}
	gen := s.cache.generation()
	r1, err := s.st.LoadRun(ns[0], ns[1])
	if err != nil {
		s.storeError(w, err)
		return
	}
	r2, err := s.st.LoadRun(ns[0], ns[2])
	if err != nil {
		s.storeError(w, err)
		return
	}
	eng := s.pools.get(ns[0], m)
	d, err := view.NewWith(eng, m, r1, r2)
	if err != nil {
		s.pools.put(ns[0], m, eng)
		s.storeError(w, err)
		return
	}
	svg := d.PairSVG(ns[1], ns[2])
	s.pools.put(ns[0], m, eng)
	s.cache.addIfGen(key, svg, gen)
	w.Header().Set("Content-Type", "image/svg+xml")
	io.WriteString(w, svg)
}

// --- cohort ---------------------------------------------------------

type cohortPayload struct {
	Spec       string      `json:"spec"`
	Cost       string      `json:"cost"`
	Labels     []string    `json:"labels"`
	Matrix     [][]float64 `json:"matrix"`
	Medoid     string      `json:"medoid"`
	Outlier    string      `json:"outlier"`
	Dendrogram string      `json:"dendrogram"`
}

// handleCohort computes the pairwise distance matrix over all stored
// runs of a specification plus the UPGMA dendrogram. With ?stream=1
// the response is NDJSON: progress objects as pairs complete, then the
// final result object — the fan-out itself runs on a worker pool (one
// engine per worker) either way.
func (s *Server) handleCohort(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	q := s.query(r)
	m := q.cost()
	stream := q.flag("stream")
	if !q.valid(w) {
		return
	}
	if _, err := s.st.LoadSpec(ns[0]); err != nil {
		s.storeError(w, err)
		return
	}
	runs, err := s.st.ListRuns(ns[0])
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	if len(runs) < 2 {
		s.httpError(w, fmt.Errorf("cohort of %q needs at least two stored runs, have %d", ns[0], len(runs)), http.StatusBadRequest)
		return
	}
	// The request context aborts the fan-out when the client goes
	// away mid-stream (or the server shuts down): without it a
	// disconnected client would leave the workers differencing a
	// matrix nobody will read, with the progress callback writing
	// into a dead connection.
	opts := analysis.Options{Workers: s.opts.CohortWorkers, Context: r.Context()}
	var rc *http.ResponseController
	if stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		rc = http.NewResponseController(w)
		enc := json.NewEncoder(w)
		total := len(runs) * (len(runs) - 1) / 2
		// Emit at most ~100 progress lines however large the cohort.
		step := max(1, total/100)
		// Serialized by the analysis package; the handler goroutine is
		// blocked in CohortWith while these fire. The per-write
		// deadline keeps a stalled client from parking the cohort
		// workers behind a full TCP buffer: the write errors out and
		// the computation finishes on its own.
		opts.Progress = func(done, tot int) {
			if done%step != 0 && done != tot {
				return
			}
			rc.SetWriteDeadline(time.Now().Add(progressWriteTimeout))
			enc.Encode(map[string]any{"type": "progress", "done": done, "total": tot})
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	mx, err := s.st.CohortWith(ns[0], runs, m, opts)
	if err != nil {
		if stream {
			// Status is already committed; report in-band.
			rc.SetWriteDeadline(time.Now().Add(progressWriteTimeout))
			json.NewEncoder(w).Encode(map[string]any{"type": "error", "error": err.Error()})
			return
		}
		s.storeError(w, err)
		return
	}
	p := cohortPayload{
		Spec:       ns[0],
		Cost:       m.Name(),
		Labels:     mx.Labels,
		Matrix:     mx.D,
		Medoid:     mx.Labels[mx.Medoid()],
		Outlier:    mx.Labels[mx.Outlier()],
		Dendrogram: mx.Cluster().Render(),
	}
	if stream {
		rc.SetWriteDeadline(time.Now().Add(progressWriteTimeout))
		json.NewEncoder(w).Encode(map[string]any{"type": "result", "cohort": p})
		return
	}
	writeJSON(w, p)
}

// --- stats ----------------------------------------------------------

type engineStats struct {
	Pools     int     `json:"pools"`
	Gets      int64   `json:"gets"`
	News      int64   `json:"news"`
	Reused    int64   `json:"reused"`
	ReuseRate float64 `json:"reuse_rate"`
}

type metricIndexStats struct {
	// IndexedCohorts counts live cohorts currently answering from the
	// metric index rather than a dense matrix.
	IndexedCohorts int `json:"indexed_cohorts"`
	// ExactDiffs and PrunedPairs aggregate the cohorts' counters: how
	// many pairs were exactly differenced versus eliminated by a lower
	// bound, across maintenance and queries.
	ExactDiffs  int64 `json:"exact_diffs"`
	PrunedPairs int64 `json:"pruned_pairs"`
}

// ingestStats mirrors the pipeline + ticket counters into /stats; the
// slow-commit fields are the fsync watchdog (commits slower than the
// pipeline's threshold).
type ingestStats struct {
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	MaxDepth      int64   `json:"max_depth"`
	Enqueued      int64   `json:"enqueued"`
	Rejected      int64   `json:"rejected"`
	Committed     int64   `json:"committed"`
	Failed        int64   `json:"failed"`
	Batches       int64   `json:"batches"`
	MaxBatch      int64   `json:"max_batch"`
	AvgBatch      float64 `json:"avg_batch"`
	SlowCommits   int64   `json:"slow_commits"`
	LastCommitMS  float64 `json:"last_commit_ms"`

	TicketsPending  int `json:"tickets_pending"`
	TicketsRetained int `json:"tickets_retained"`
}

// ledgerStats publishes the provenance ledger's commitments: every
// spec's chain head plus the repository root folded over them. A
// client holding a RunProof needs exactly this to anchor the proof.
type ledgerStats struct {
	RepoRoot string                      `json:"repo_root"`
	Specs    map[string]store.SpecLedger `json:"specs"`
}

// storageStats names the storage backend the repository runs on and,
// when it is sharded, each shard's placement and traffic counters.
type storageStats struct {
	Backend string             `json:"backend"`
	Shards  []store.ShardStats `json:"shards,omitempty"`
}

type statsPayload struct {
	UptimeSeconds  float64          `json:"uptime_seconds"`
	Requests       map[string]int64 `json:"requests"`
	Errors         int64            `json:"errors"`
	Cache          cacheStats       `json:"cache"`
	Engines        engineStats      `json:"engines"`
	Ingest         ingestStats      `json:"ingest"`
	CohortMatrices int              `json:"cohort_matrices"`
	MetricIndex    metricIndexStats `json:"metric_index"`
	Ledger         ledgerStats      `json:"ledger"`
	Storage        storageStats     `json:"storage"`
}

// Stats snapshots the service counters (also served at /stats).
func (s *Server) Stats() statsPayload {
	gets, news := s.pools.gets.Load(), s.pools.news.Load()
	es := engineStats{
		Pools:  s.pools.poolCount(),
		Gets:   gets,
		News:   news,
		Reused: gets - news,
	}
	if gets > 0 {
		es.ReuseRate = float64(es.Reused) / float64(gets)
	}
	var mi metricIndexStats
	for _, e := range s.cohorts.all() {
		if e.hc.Indexed() {
			mi.IndexedCohorts++
		}
		mi.ExactDiffs += e.hc.DiffCalls()
		mi.PrunedPairs += e.hc.PrunedPairs()
	}
	ps := s.ingest.Stats()
	ig := ingestStats{
		QueueDepth:    ps.QueueDepth,
		QueueCapacity: ps.QueueCapacity,
		MaxDepth:      ps.MaxDepth,
		Enqueued:      ps.Enqueued,
		Rejected:      ps.Rejected,
		Committed:     ps.Committed,
		Failed:        ps.Failed,
		Batches:       ps.Batches,
		MaxBatch:      ps.MaxBatch,
		AvgBatch:      ps.AvgBatch,
		SlowCommits:   ps.SlowCommits,
		LastCommitMS:  ps.LastCommitMS,
	}
	ig.TicketsPending, ig.TicketsRetained = s.tickets.Counts()
	ls := ledgerStats{Specs: map[string]store.SpecLedger{}}
	if heads, root, err := s.st.LedgerHeads(); err == nil {
		ls.RepoRoot, ls.Specs = root, heads
	}
	return statsPayload{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests: map[string]int64{
			"specs":    s.reqSpecs.Load(),
			"runs":     s.reqRuns.Load(),
			"import":   s.reqImport.Load(),
			"delete":   s.reqDelete.Load(),
			"diff":     s.reqDiff.Load(),
			"svg":      s.reqSVG.Load(),
			"cohort":   s.reqCohort.Load(),
			"cluster":  s.reqCluster.Load(),
			"outliers": s.reqOutliers.Load(),
			"nearest":  s.reqNearest.Load(),
			"bulk":     s.reqBulk.Load(),
			"export":   s.reqExport.Load(),
			"evolve":   s.reqEvolve.Load(),
			"tickets":  s.reqTickets.Load(),
			"proof":    s.reqProof.Load(),
			"live":     s.reqLive.Load(),
			"watch":    s.reqWatch.Load(),
			"metrics":  s.reqMetrics.Load(),
			"stats":    s.reqStats.Load(),
		},
		CohortMatrices: s.cohorts.count(),
		MetricIndex:    mi,
		Ingest:         ig,
		Ledger:         ls,
		Storage:        storageStats{Backend: s.st.BackendKind(), Shards: s.st.ShardStats()},
		Errors:         s.errCount.Load(),
		Cache:          s.cache.snapshot(),
		Engines:        es,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}
