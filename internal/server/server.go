// Package server exposes a provenance repository over HTTP/JSON — the
// long-running service counterpart of the provstore CLI. The paper
// frames provenance differencing as an interactive tool a scientist
// queries repeatedly against a growing repository of runs (Section
// VII); this package is the serving layer that makes those repeated
// queries cheap:
//
//   - engines are pooled per (specification, cost model), so the W_TG
//     memo and all flat scratch tables of core.Engine persist across
//     requests instead of being rebuilt per diff;
//   - finished diff payloads (JSON and SVG) live in a bounded LRU
//     keyed by (spec, runA, runB, cost), invalidated through
//     store.OnRunChange when a run is re-imported or deleted;
//   - cohort matrices fan out over a worker pool and can stream
//     per-pair progress to the client as NDJSON.
//
// Endpoints (all JSON unless noted):
//
//	GET    /specs                        list specifications
//	GET    /specs/{spec}/runs            list runs of a specification
//	POST   /specs/{spec}/runs/{run}      import a run (XML body)
//	POST   /specs/{spec}/runs:bulk       bulk-import a cohort (tar or NDJSON)
//	GET    /specs/{spec}/export          export spec + runs as a tar stream
//	DELETE /specs/{spec}/runs/{run}      delete a run
//	GET    /diff/{spec}/{a}/{b}          distance + edit script (?cost=)
//	                                     (?across=SPEC2: cross-version diff, run b
//	                                     taken from the lineage-linked SPEC2)
//	GET    /diff/{spec}/{a}/{b}/svg      side-by-side SVG rendering
//	GET    /specs/{a}/evolve/{b}         spec-evolution mapping between versions
//	GET    /specs/{a}/evolve/{b}/svg     spec overlay (deleted red, inserted green)
//	GET    /cohort/{spec}                distance matrix + dendrogram
//	                                     (?cost=, ?stream=1 for NDJSON progress)
//	GET    /specs/{spec}/cluster         k-medoids partitioning (?k=, ?seed=, ?cost=)
//	GET    /specs/{spec}/outliers        knn outlier scores (?k=, ?cost=)
//	GET    /specs/{spec}/nearest         nearest neighbors (?run=, ?k=, ?cost=)
//	GET    /stats                        service counters
//	GET    /healthz                      liveness probe
//
// The three cohort-analytics endpoints share one incrementally
// maintained distance matrix per (spec, cost model): importing a run
// into an n-run cohort differences only the n new pairs, with
// store.OnRunChange generation checks guaranteeing a stale row is
// never retained (see cohortcache.go).
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/cost"
	"repro/internal/edit"
	"repro/internal/store"
	"repro/internal/view"
	"repro/internal/wfxml"
)

// maxImportBytes bounds a POSTed run XML document.
const maxImportBytes = 32 << 20

// progressWriteTimeout bounds each streamed NDJSON write; a client
// that stops reading gets its connection failed instead of stalling
// the cohort fan-out.
const progressWriteTimeout = 15 * time.Second

// Options configures a Server.
type Options struct {
	// CacheSize bounds the diff-result LRU in entries; <= 0 disables
	// result caching. DefaultCacheSize is a sensible service default.
	CacheSize int
	// CohortWorkers caps the cohort fan-out; <= 0 means GOMAXPROCS.
	CohortWorkers int
	// IndexThreshold is the cohort size at which the analytics
	// endpoints switch from the dense distance matrix to the metric
	// index: 0 means analysis.DefaultIndexThreshold, negative disables
	// indexing (always dense).
	IndexThreshold int
	// Landmarks is the metric index's landmark count; <= 0 means
	// metricindex.DefaultLandmarks.
	Landmarks int
}

// DefaultCacheSize is the diff-result LRU capacity used by provserved
// unless overridden.
const DefaultCacheSize = 512

// Server serves a provenance repository over HTTP. It is safe for
// concurrent use; create it with New and mount it as an http.Handler.
type Server struct {
	st      *store.Store
	pools   *enginePools
	cache   *resultCache
	cohorts *cohortCaches
	opts    Options
	mux     *http.ServeMux
	started time.Time

	reqDiff, reqSVG, reqCohort, reqSpecs, reqRuns atomic.Int64
	reqImport, reqDelete, reqStats                atomic.Int64
	reqCluster, reqOutliers, reqNearest           atomic.Int64
	reqBulk, reqExport, reqEvolve                 atomic.Int64
	errCount                                      atomic.Int64
}

// New builds a Server over an open store and registers its routes.
// The server subscribes to the store's run-change notifications, so
// imports and deletions performed through any handle of the same
// Store invalidate cached diffs immediately.
func New(st *store.Store, opts Options) *Server {
	s := &Server{
		st:      st,
		pools:   newEnginePools(),
		cache:   newResultCache(opts.CacheSize),
		cohorts: newCohortCaches(opts.CohortWorkers, analysis.HybridOptions{
			IndexThreshold: opts.IndexThreshold,
			Landmarks:      opts.Landmarks,
		}),
		opts:    opts,
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	st.OnRunChange(s.cache.invalidateRun)
	st.OnRunChange(s.cohorts.invalidate)
	// Bulk imports arrive coalesced: per-run invalidation for the pair
	// cache (each named run's entries are stale), one full-rebuild mark
	// for the cohort matrices (one Reset however many runs landed).
	st.OnRunsBulkChange(func(specName string, runNames []string) {
		for _, run := range runNames {
			s.cache.invalidateRun(specName, run)
		}
		s.cohorts.invalidateBulk(specName, runNames)
	})
	s.mux.HandleFunc("GET /specs", s.count(&s.reqSpecs, s.handleSpecs))
	s.mux.HandleFunc("GET /specs/{spec}/runs", s.count(&s.reqRuns, s.handleRuns))
	s.mux.HandleFunc("POST /specs/{spec}/runs", s.count(&s.reqImport, s.handleImport))
	s.mux.HandleFunc("POST /specs/{spec}/runs/{run}", s.count(&s.reqImport, s.handleImport))
	s.mux.HandleFunc("POST /specs/{spec}/runs:bulk", s.count(&s.reqBulk, s.handleBulkImport))
	s.mux.HandleFunc("GET /specs/{spec}/export", s.count(&s.reqExport, s.handleExport))
	s.mux.HandleFunc("DELETE /specs/{spec}/runs/{run}", s.count(&s.reqDelete, s.handleDelete))
	s.mux.HandleFunc("GET /diff/{spec}/{a}/{b}", s.count(&s.reqDiff, s.handleDiff))
	s.mux.HandleFunc("GET /diff/{spec}/{a}/{b}/svg", s.count(&s.reqSVG, s.handleDiffSVG))
	s.mux.HandleFunc("GET /cohort/{spec}", s.count(&s.reqCohort, s.handleCohort))
	s.mux.HandleFunc("GET /specs/{a}/evolve/{b}", s.count(&s.reqEvolve, s.handleEvolve))
	s.mux.HandleFunc("GET /specs/{a}/evolve/{b}/svg", s.count(&s.reqEvolve, s.handleEvolveSVG))
	s.mux.HandleFunc("GET /specs/{spec}/cluster", s.count(&s.reqCluster, s.handleCluster))
	s.mux.HandleFunc("GET /specs/{spec}/outliers", s.count(&s.reqOutliers, s.handleOutliers))
	s.mux.HandleFunc("GET /specs/{spec}/nearest", s.count(&s.reqNearest, s.handleNearest))
	s.mux.HandleFunc("GET /stats", s.count(&s.reqStats, s.handleStats))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		io.WriteString(w, `{"ok":true}`+"\n")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) count(c *atomic.Int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		h(w, r)
	}
}

// httpError maps service errors onto status codes: missing specs/runs
// are 404, everything else a caller can fix is 400.
func (s *Server) httpError(w http.ResponseWriter, err error, code int) {
	s.errCount.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func (s *Server) storeError(w http.ResponseWriter, err error) {
	if errors.Is(err, fs.ErrNotExist) {
		s.httpError(w, err, http.StatusNotFound)
		return
	}
	s.httpError(w, err, http.StatusBadRequest)
}

// names extracts and validates the named path values; a validation
// failure writes a 400 and returns false. Path values are decoded by
// the mux, so an encoded %2e%2e%2f arrives here as "../" and is
// rejected before it can reach the filesystem.
func (s *Server) names(w http.ResponseWriter, r *http.Request, keys ...string) ([]string, bool) {
	out := make([]string, len(keys))
	for i, k := range keys {
		v := r.PathValue(k)
		if err := store.ValidateName(v); err != nil {
			s.httpError(w, fmt.Errorf("%s: %w", k, err), http.StatusBadRequest)
			return nil, false
		}
		out[i] = v
	}
	return out, true
}

// costModel parses the ?cost= query parameter (default unit).
func (s *Server) costModel(w http.ResponseWriter, r *http.Request) (cost.Model, bool) {
	name := r.URL.Query().Get("cost")
	if name == "" {
		name = "unit"
	}
	m, err := cli.ParseCost(name)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return nil, false
	}
	return m, true
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

// --- repository browsing -------------------------------------------

type specInfo struct {
	Name string `json:"name"`
	Runs int    `json:"runs"`
}

func (s *Server) handleSpecs(w http.ResponseWriter, r *http.Request) {
	names, err := s.st.ListSpecs()
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	out := make([]specInfo, 0, len(names))
	for _, n := range names {
		runs, err := s.st.ListRuns(n)
		if err != nil {
			s.httpError(w, err, http.StatusInternalServerError)
			return
		}
		out = append(out, specInfo{Name: n, Runs: len(runs)})
	}
	writeJSON(w, map[string]any{"specs": out})
}

func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	if _, err := s.st.LoadSpec(ns[0]); err != nil {
		s.storeError(w, err)
		return
	}
	runs, err := s.st.ListRuns(ns[0])
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	if runs == nil {
		runs = []string{}
	}
	writeJSON(w, map[string]any{"spec": ns[0], "runs": runs})
}

// handleImport stores the XML run in the request body under
// /specs/{spec}/runs/{run} (or ?name= on the collection URL).
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	specName := ns[0]
	runName := r.PathValue("run")
	if runName == "" {
		runName = r.URL.Query().Get("name")
	}
	if err := store.ValidateName(runName); err != nil {
		s.httpError(w, fmt.Errorf("run: %w", err), http.StatusBadRequest)
		return
	}
	sp, err := s.st.LoadSpec(specName)
	if err != nil {
		s.storeError(w, err)
		return
	}
	run, err := wfxml.DecodeRun(http.MaxBytesReader(w, r.Body, maxImportBytes), sp)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	if err := s.st.SaveRun(specName, runName, run); err != nil {
		s.storeError(w, err)
		return
	}
	// Content-Type must precede WriteHeader or it is dropped.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{
		"spec": specName, "run": runName,
		"nodes": run.NumNodes(), "edges": run.NumEdges(),
	})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec", "run")
	if !ok {
		return
	}
	if err := s.st.DeleteRun(ns[0], ns[1]); err != nil {
		s.storeError(w, err)
		return
	}
	writeJSON(w, map[string]any{"deleted": ns[0] + "/" + ns[1]})
}

// --- differencing ---------------------------------------------------

type opJSON struct {
	Kind      string   `json:"kind"`
	Cost      float64  `json:"cost"`
	Length    int      `json:"length"`
	Path      []string `json:"path"`
	Labels    []string `json:"labels"`
	Loop      bool     `json:"loop,omitempty"`
	Temporary bool     `json:"temporary,omitempty"`
}

type diffPayload struct {
	Spec     string   `json:"spec"`
	RunA     string   `json:"run_a"`
	RunB     string   `json:"run_b"`
	Cost     string   `json:"cost"`
	Distance float64  `json:"distance"`
	OpCount  int      `json:"op_count"`
	Ops      []opJSON `json:"ops"`
	Cached   bool     `json:"cached"`
}

func scriptJSON(sc *edit.Script) []opJSON {
	out := make([]opJSON, len(sc.Ops))
	for i, op := range sc.Ops {
		out[i] = opJSON{
			Kind:      op.Kind.String(),
			Cost:      op.Cost,
			Length:    op.Length,
			Path:      op.PathNodes,
			Labels:    op.PathLabels,
			Loop:      op.LoopOp,
			Temporary: op.Temporary,
		}
	}
	return out
}

// diffPair produces the JSON payload for one pair, through the cache.
// The engine is checked out only for the uncached computation and
// everything the payload needs is extracted before it is returned, so
// the pooled engine is immediately reusable.
func (s *Server) diffPair(specName, runA, runB string, m cost.Model) (diffPayload, error) {
	key := cacheKey{spec: specName, runA: runA, runB: runB, cost: m.Name(), kind: kindDiff}
	if v, ok := s.cache.get(key); ok {
		p := v.(diffPayload)
		p.Cached = true
		return p, nil
	}
	// Capture the invalidation generation before touching store state:
	// if either run changes while we compute, the payload is discarded
	// rather than cached stale.
	gen := s.cache.generation()
	eng := s.pools.get(specName, m)
	res, err := s.st.DiffWith(eng, specName, runA, runB)
	if err != nil {
		s.pools.put(specName, m, eng)
		return diffPayload{}, err
	}
	sc, _, err := res.Script()
	if err != nil {
		s.pools.put(specName, m, eng)
		return diffPayload{}, err
	}
	p := diffPayload{
		Spec:     specName,
		RunA:     runA,
		RunB:     runB,
		Cost:     m.Name(),
		Distance: res.Distance,
		OpCount:  len(sc.Ops),
		Ops:      scriptJSON(sc),
	}
	s.pools.put(specName, m, eng)
	s.cache.addIfGen(key, p, gen)
	return p, nil
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec", "a", "b")
	if !ok {
		return
	}
	m, ok := s.costModel(w, r)
	if !ok {
		return
	}
	if across := r.URL.Query().Get("across"); across != "" {
		// Cross-version comparison: run b belongs to the
		// lineage-linked specification named by ?across=.
		s.crossDiff(w, ns[0], ns[1], ns[2], across, m)
		return
	}
	p, err := s.diffPair(ns[0], ns[1], ns[2], m)
	if err != nil {
		s.storeError(w, err)
		return
	}
	writeJSON(w, p)
}

// handleDiffSVG serves the PDiffView rendering — source and target
// runs side by side, deletions red, insertions green — as a
// standalone SVG image.
func (s *Server) handleDiffSVG(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec", "a", "b")
	if !ok {
		return
	}
	m, ok := s.costModel(w, r)
	if !ok {
		return
	}
	key := cacheKey{spec: ns[0], runA: ns[1], runB: ns[2], cost: m.Name(), kind: kindSVG}
	if v, ok := s.cache.get(key); ok {
		w.Header().Set("Content-Type", "image/svg+xml")
		io.WriteString(w, v.(string))
		return
	}
	gen := s.cache.generation()
	r1, err := s.st.LoadRun(ns[0], ns[1])
	if err != nil {
		s.storeError(w, err)
		return
	}
	r2, err := s.st.LoadRun(ns[0], ns[2])
	if err != nil {
		s.storeError(w, err)
		return
	}
	eng := s.pools.get(ns[0], m)
	d, err := view.NewWith(eng, m, r1, r2)
	if err != nil {
		s.pools.put(ns[0], m, eng)
		s.storeError(w, err)
		return
	}
	svg := d.PairSVG(ns[1], ns[2])
	s.pools.put(ns[0], m, eng)
	s.cache.addIfGen(key, svg, gen)
	w.Header().Set("Content-Type", "image/svg+xml")
	io.WriteString(w, svg)
}

// --- cohort ---------------------------------------------------------

type cohortPayload struct {
	Spec       string      `json:"spec"`
	Cost       string      `json:"cost"`
	Labels     []string    `json:"labels"`
	Matrix     [][]float64 `json:"matrix"`
	Medoid     string      `json:"medoid"`
	Outlier    string      `json:"outlier"`
	Dendrogram string      `json:"dendrogram"`
}

// handleCohort computes the pairwise distance matrix over all stored
// runs of a specification plus the UPGMA dendrogram. With ?stream=1
// the response is NDJSON: progress objects as pairs complete, then the
// final result object — the fan-out itself runs on a worker pool (one
// engine per worker) either way.
func (s *Server) handleCohort(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	m, ok := s.costModel(w, r)
	if !ok {
		return
	}
	if _, err := s.st.LoadSpec(ns[0]); err != nil {
		s.storeError(w, err)
		return
	}
	runs, err := s.st.ListRuns(ns[0])
	if err != nil {
		s.httpError(w, err, http.StatusInternalServerError)
		return
	}
	if len(runs) < 2 {
		s.httpError(w, fmt.Errorf("cohort of %q needs at least two stored runs, have %d", ns[0], len(runs)), http.StatusBadRequest)
		return
	}
	// The request context aborts the fan-out when the client goes
	// away mid-stream (or the server shuts down): without it a
	// disconnected client would leave the workers differencing a
	// matrix nobody will read, with the progress callback writing
	// into a dead connection.
	opts := analysis.Options{Workers: s.opts.CohortWorkers, Context: r.Context()}
	stream := r.URL.Query().Get("stream") != ""
	var rc *http.ResponseController
	if stream {
		w.Header().Set("Content-Type", "application/x-ndjson")
		flusher, _ := w.(http.Flusher)
		rc = http.NewResponseController(w)
		enc := json.NewEncoder(w)
		total := len(runs) * (len(runs) - 1) / 2
		// Emit at most ~100 progress lines however large the cohort.
		step := max(1, total/100)
		// Serialized by the analysis package; the handler goroutine is
		// blocked in CohortWith while these fire. The per-write
		// deadline keeps a stalled client from parking the cohort
		// workers behind a full TCP buffer: the write errors out and
		// the computation finishes on its own.
		opts.Progress = func(done, tot int) {
			if done%step != 0 && done != tot {
				return
			}
			rc.SetWriteDeadline(time.Now().Add(progressWriteTimeout))
			enc.Encode(map[string]any{"type": "progress", "done": done, "total": tot})
			if flusher != nil {
				flusher.Flush()
			}
		}
	}
	mx, err := s.st.CohortWith(ns[0], runs, m, opts)
	if err != nil {
		if stream {
			// Status is already committed; report in-band.
			rc.SetWriteDeadline(time.Now().Add(progressWriteTimeout))
			json.NewEncoder(w).Encode(map[string]any{"type": "error", "error": err.Error()})
			return
		}
		s.storeError(w, err)
		return
	}
	p := cohortPayload{
		Spec:       ns[0],
		Cost:       m.Name(),
		Labels:     mx.Labels,
		Matrix:     mx.D,
		Medoid:     mx.Labels[mx.Medoid()],
		Outlier:    mx.Labels[mx.Outlier()],
		Dendrogram: mx.Cluster().Render(),
	}
	if stream {
		rc.SetWriteDeadline(time.Now().Add(progressWriteTimeout))
		json.NewEncoder(w).Encode(map[string]any{"type": "result", "cohort": p})
		return
	}
	writeJSON(w, p)
}

// --- stats ----------------------------------------------------------

type engineStats struct {
	Pools     int     `json:"pools"`
	Gets      int64   `json:"gets"`
	News      int64   `json:"news"`
	Reused    int64   `json:"reused"`
	ReuseRate float64 `json:"reuse_rate"`
}

type metricIndexStats struct {
	// IndexedCohorts counts live cohorts currently answering from the
	// metric index rather than a dense matrix.
	IndexedCohorts int `json:"indexed_cohorts"`
	// ExactDiffs and PrunedPairs aggregate the cohorts' counters: how
	// many pairs were exactly differenced versus eliminated by a lower
	// bound, across maintenance and queries.
	ExactDiffs  int64 `json:"exact_diffs"`
	PrunedPairs int64 `json:"pruned_pairs"`
}

type statsPayload struct {
	UptimeSeconds  float64          `json:"uptime_seconds"`
	Requests       map[string]int64 `json:"requests"`
	Errors         int64            `json:"errors"`
	Cache          cacheStats       `json:"cache"`
	Engines        engineStats      `json:"engines"`
	CohortMatrices int              `json:"cohort_matrices"`
	MetricIndex    metricIndexStats `json:"metric_index"`
}

// Stats snapshots the service counters (also served at /stats).
func (s *Server) Stats() statsPayload {
	gets, news := s.pools.gets.Load(), s.pools.news.Load()
	es := engineStats{
		Pools:  s.pools.poolCount(),
		Gets:   gets,
		News:   news,
		Reused: gets - news,
	}
	if gets > 0 {
		es.ReuseRate = float64(es.Reused) / float64(gets)
	}
	var mi metricIndexStats
	for _, e := range s.cohorts.all() {
		if e.hc.Indexed() {
			mi.IndexedCohorts++
		}
		mi.ExactDiffs += e.hc.DiffCalls()
		mi.PrunedPairs += e.hc.PrunedPairs()
	}
	return statsPayload{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Requests: map[string]int64{
			"specs":    s.reqSpecs.Load(),
			"runs":     s.reqRuns.Load(),
			"import":   s.reqImport.Load(),
			"delete":   s.reqDelete.Load(),
			"diff":     s.reqDiff.Load(),
			"svg":      s.reqSVG.Load(),
			"cohort":   s.reqCohort.Load(),
			"cluster":  s.reqCluster.Load(),
			"outliers": s.reqOutliers.Load(),
			"nearest":  s.reqNearest.Load(),
			"bulk":     s.reqBulk.Load(),
			"export":   s.reqExport.Load(),
			"evolve":   s.reqEvolve.Load(),
			"stats":    s.reqStats.Load(),
		},
		CohortMatrices: s.cohorts.count(),
		MetricIndex:    mi,
		Errors:         s.errCount.Load(),
		Cache:          s.cache.snapshot(),
		Engines:        es,
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}
