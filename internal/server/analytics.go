package server

// Cohort analytics handlers: k-medoids clustering, knn outlier
// scoring and nearest-neighbor queries over the incrementally
// maintained per-spec distance matrix (cohortcache.go). The matrix is
// the expensive part — O(n) engine diffs per import, O(n²) only on
// first touch — while the analytics themselves are polynomial in the
// cohort size, so these handlers stay interactive even for large runs.

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/store"
)

// intParam parses an optional integer query parameter.
func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q: want an integer", name, v)
	}
	return n, nil
}

// cohortMatrixFor resolves the synced distance matrix for an analytics
// request, writing the error response itself on failure. minRuns
// guards the degenerate cohorts each endpoint cannot answer on.
func (s *Server) cohortMatrixFor(w http.ResponseWriter, r *http.Request, specName string, m cost.Model, minRuns int) (*analysis.Matrix, bool) {
	if _, err := s.st.LoadSpec(specName); err != nil {
		s.storeError(w, err)
		return nil, false
	}
	mx, err := s.cohortSnapshot(specName, m)
	if err != nil {
		s.storeError(w, err)
		return nil, false
	}
	have := 0
	if mx != nil {
		have = len(mx.Labels)
	}
	if have < minRuns {
		s.httpError(w, fmt.Errorf("cohort analytics on %q needs at least %d stored runs, have %d", specName, minRuns, have), http.StatusBadRequest)
		return nil, false
	}
	return mx, true
}

type clusterGroup struct {
	Medoid string   `json:"medoid"`
	Runs   []string `json:"runs"`
}

type clusterPayload struct {
	Spec       string         `json:"spec"`
	Cost       string         `json:"cost"`
	K          int            `json:"k"`
	Seed       int64          `json:"seed"`
	Clusters   []clusterGroup `json:"clusters"`
	Cost_      float64        `json:"total_distance"`
	Silhouette float64        `json:"silhouette"`
	Iterations int            `json:"iterations"`
	Cached     bool           `json:"cached"`
}

// handleCluster partitions the spec's stored runs into k clusters by
// PAM over the edit-distance matrix. The medoid of each cluster is its
// most representative execution — the paper's notion of a "typical"
// run generalized from the whole cohort to each behavioral group.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	m, ok := s.costModel(w, r)
	if !ok {
		return
	}
	k, err := intParam(r, "k", 2)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	seed64, err := intParam(r, "seed", 1)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	seed := int64(seed64)
	key := cacheKey{spec: ns[0], runA: fmt.Sprintf("k=%d", k), runB: fmt.Sprintf("seed=%d", seed), cost: m.Name(), kind: kindCluster}
	if v, ok := s.cache.get(key); ok {
		p := v.(clusterPayload)
		p.Cached = true
		writeJSON(w, p)
		return
	}
	gen := s.cache.generation()
	mx, ok := s.cohortMatrixFor(w, r, ns[0], m, 2)
	if !ok {
		return
	}
	cl, err := cluster.KMedoids(mx.D, k, seed)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	groups := make([]clusterGroup, cl.K)
	for c := 0; c < cl.K; c++ {
		groups[c].Medoid = mx.Labels[cl.Medoids[c]]
		for _, i := range cl.Members(c) {
			groups[c].Runs = append(groups[c].Runs, mx.Labels[i])
		}
	}
	p := clusterPayload{
		Spec:       ns[0],
		Cost:       m.Name(),
		K:          cl.K,
		Seed:       seed,
		Clusters:   groups,
		Cost_:      cl.Cost,
		Silhouette: cl.Silhouette,
		Iterations: cl.Iterations,
	}
	s.cache.addIfGen(key, p, gen)
	writeJSON(w, p)
}

type outlierJSON struct {
	Run     string  `json:"run"`
	Score   float64 `json:"score"`
	MeanAll float64 `json:"mean_all"`
}

type outliersPayload struct {
	Spec      string        `json:"spec"`
	Cost      string        `json:"cost"`
	Neighbors int           `json:"neighbors"`
	Outliers  []outlierJSON `json:"outliers"`
	Cached    bool          `json:"cached"`
}

// handleOutliers scores every stored run by its mean edit distance to
// its k nearest cohort members, most anomalous first.
func (s *Server) handleOutliers(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	m, ok := s.costModel(w, r)
	if !ok {
		return
	}
	k, err := intParam(r, "k", 3)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	key := cacheKey{spec: ns[0], runA: fmt.Sprintf("k=%d", k), cost: m.Name(), kind: kindOutliers}
	if v, ok := s.cache.get(key); ok {
		p := v.(outliersPayload)
		p.Cached = true
		writeJSON(w, p)
		return
	}
	gen := s.cache.generation()
	mx, ok := s.cohortMatrixFor(w, r, ns[0], m, 2)
	if !ok {
		return
	}
	scores, err := cluster.Outliers(mx.D, k)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	out := make([]outlierJSON, len(scores))
	for i, sc := range scores {
		out[i] = outlierJSON{Run: mx.Labels[sc.Index], Score: sc.Score, MeanAll: sc.MeanAll}
	}
	p := outliersPayload{Spec: ns[0], Cost: m.Name(), Neighbors: k, Outliers: out}
	s.cache.addIfGen(key, p, gen)
	writeJSON(w, p)
}

type neighborJSON struct {
	Run      string  `json:"run"`
	Distance float64 `json:"distance"`
}

type nearestPayload struct {
	Spec      string         `json:"spec"`
	Cost      string         `json:"cost"`
	Run       string         `json:"run"`
	Neighbors []neighborJSON `json:"neighbors"`
	Cached    bool           `json:"cached"`
}

// handleNearest returns the k stored runs closest to ?run= — "show me
// executions like this one", the interactive counterpart of the
// cohort matrix.
func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	m, ok := s.costModel(w, r)
	if !ok {
		return
	}
	runName := r.URL.Query().Get("run")
	if err := store.ValidateName(runName); err != nil {
		s.httpError(w, fmt.Errorf("run: %w", err), http.StatusBadRequest)
		return
	}
	k, err := intParam(r, "k", 5)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	key := cacheKey{spec: ns[0], runA: runName, runB: fmt.Sprintf("k=%d", k), cost: m.Name(), kind: kindNearest}
	if v, ok := s.cache.get(key); ok {
		p := v.(nearestPayload)
		p.Cached = true
		writeJSON(w, p)
		return
	}
	gen := s.cache.generation()
	mx, ok := s.cohortMatrixFor(w, r, ns[0], m, 2)
	if !ok {
		return
	}
	idx := -1
	for i, l := range mx.Labels {
		if l == runName {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.httpError(w, fmt.Errorf("unknown run %q of %q", runName, ns[0]), http.StatusNotFound)
		return
	}
	nn, err := cluster.Nearest(mx.D, idx, k)
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	out := make([]neighborJSON, len(nn))
	for i, n := range nn {
		out[i] = neighborJSON{Run: mx.Labels[n.Index], Distance: n.Distance}
	}
	p := nearestPayload{Spec: ns[0], Cost: m.Name(), Run: runName, Neighbors: out}
	s.cache.addIfGen(key, p, gen)
	writeJSON(w, p)
}
