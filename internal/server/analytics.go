package server

// Cohort analytics handlers: k-medoids clustering, knn outlier
// scoring and nearest-neighbor queries over the incrementally
// maintained per-spec cohort (cohortcache.go). Small cohorts answer
// from the dense distance matrix; cohorts past the index threshold
// answer from the metric index, where triangle and histogram lower
// bounds prune most exact diffs — byte-identically for nearest and
// outliers, and via sampled k-medoids for clustering. ?exact=1 forces
// the dense-matrix path at any size (a one-shot O(n²) fan-out when the
// cohort is indexed), without changing any cache key the normal path
// uses — exact responses simply bypass the result LRU.

import (
	"fmt"
	"net/http"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/cost"
)

// cohortViewFor resolves the synced cohort view for an analytics
// request, writing the error response itself on failure. minRuns
// guards the degenerate cohorts each endpoint cannot answer on. With
// exact set, an index-backed cohort is replaced by a one-shot dense
// matrix bound to the request context.
func (s *Server) cohortViewFor(w http.ResponseWriter, r *http.Request, specName string, m cost.Model, minRuns int, exact bool) (*analysis.CohortView, bool) {
	if _, err := s.st.LoadSpec(specName); err != nil {
		s.storeError(w, err)
		return nil, false
	}
	v, err := s.cohortView(specName, m)
	if err != nil {
		s.storeError(w, err)
		return nil, false
	}
	if v.Len() < minRuns {
		s.httpError(w, fmt.Errorf("cohort analytics on %q needs at least %d stored runs, have %d", specName, minRuns, v.Len()), http.StatusBadRequest)
		return nil, false
	}
	if exact && v.Indexed() {
		mx, err := s.exactCohortMatrix(r.Context(), specName, m)
		if err != nil {
			s.storeError(w, err)
			return nil, false
		}
		v = &analysis.CohortView{Matrix: mx}
	}
	return v, true
}

type clusterGroup struct {
	Medoid string   `json:"medoid"`
	Runs   []string `json:"runs"`
}

type clusterPayload struct {
	Spec       string         `json:"spec"`
	Cost       string         `json:"cost"`
	K          int            `json:"k"`
	Seed       int64          `json:"seed"`
	Clusters   []clusterGroup `json:"clusters"`
	Cost_      float64        `json:"total_distance"`
	Silhouette float64        `json:"silhouette"`
	Iterations int            `json:"iterations"`
	Indexed    bool           `json:"indexed,omitempty"`
	Cached     bool           `json:"cached"`
}

// handleCluster partitions the spec's stored runs into k clusters by
// PAM over the edit-distance matrix — sampled k-medoids once the
// cohort answers from the metric index (silhouette is then 0; pass
// ?exact=1 for full PAM at any size). The medoid of each cluster is
// its most representative execution — the paper's notion of a
// "typical" run generalized from the whole cohort to each behavioral
// group.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	q := s.query(r)
	m := q.cost()
	k := q.intVal("k", 2)
	seed := q.seed()
	exact := q.flag("exact")
	if !q.valid(w) {
		return
	}
	key := cacheKey{spec: ns[0], runA: fmt.Sprintf("k=%d", k), runB: fmt.Sprintf("seed=%d", seed), cost: m.Name(), kind: kindCluster}
	if !exact {
		if v, ok := s.cache.get(key); ok {
			p := v.(clusterPayload)
			p.Cached = true
			writeJSON(w, p)
			return
		}
	}
	gen := s.cache.generation()
	v, ok := s.cohortViewFor(w, r, ns[0], m, 2, exact)
	if !ok {
		return
	}
	var cl *cluster.Clustering
	var err error
	labels := v.Labels()
	if v.Indexed() {
		cl, err = cluster.SampledKMedoids(r.Context(), v.Index, k, seed, cluster.SampleOptions{})
	} else {
		cl, err = cluster.KMedoidsContext(r.Context(), v.Matrix.D, k, seed)
	}
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	groups := make([]clusterGroup, cl.K)
	for c := 0; c < cl.K; c++ {
		groups[c].Medoid = labels[cl.Medoids[c]]
		for _, i := range cl.Members(c) {
			groups[c].Runs = append(groups[c].Runs, labels[i])
		}
	}
	p := clusterPayload{
		Spec:       ns[0],
		Cost:       m.Name(),
		K:          cl.K,
		Seed:       seed,
		Clusters:   groups,
		Cost_:      cl.Cost,
		Silhouette: cl.Silhouette,
		Iterations: cl.Iterations,
		Indexed:    v.Indexed(),
	}
	if !exact {
		s.cache.addIfGen(key, p, gen)
	}
	writeJSON(w, p)
}

type outlierJSON struct {
	Run     string  `json:"run"`
	Score   float64 `json:"score"`
	MeanAll float64 `json:"mean_all,omitempty"`
}

type outliersPayload struct {
	Spec      string        `json:"spec"`
	Cost      string        `json:"cost"`
	Neighbors int           `json:"neighbors"`
	Outliers  []outlierJSON `json:"outliers"`
	Indexed   bool          `json:"indexed,omitempty"`
	Cached    bool          `json:"cached"`
}

// handleOutliers scores every stored run by its mean edit distance to
// its k nearest cohort members, most anomalous first. Indexed cohorts
// produce byte-identical scores and order; only the contextual
// mean_all field is omitted (it would force every pairwise diff —
// pass ?exact=1 to get it back).
func (s *Server) handleOutliers(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	q := s.query(r)
	m := q.cost()
	k := q.intVal("k", 3)
	exact := q.flag("exact")
	if !q.valid(w) {
		return
	}
	key := cacheKey{spec: ns[0], runA: fmt.Sprintf("k=%d", k), cost: m.Name(), kind: kindOutliers}
	if !exact {
		if v, ok := s.cache.get(key); ok {
			p := v.(outliersPayload)
			p.Cached = true
			writeJSON(w, p)
			return
		}
	}
	gen := s.cache.generation()
	v, ok := s.cohortViewFor(w, r, ns[0], m, 2, exact)
	if !ok {
		return
	}
	var scores []cluster.OutlierScore
	var err error
	labels := v.Labels()
	if v.Indexed() {
		scores, err = cluster.IndexedOutliers(v.Index, k)
	} else {
		scores, err = cluster.Outliers(v.Matrix.D, k)
	}
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	out := make([]outlierJSON, len(scores))
	for i, sc := range scores {
		out[i] = outlierJSON{Run: labels[sc.Index], Score: sc.Score, MeanAll: sc.MeanAll}
	}
	p := outliersPayload{Spec: ns[0], Cost: m.Name(), Neighbors: k, Outliers: out, Indexed: v.Indexed()}
	if !exact {
		s.cache.addIfGen(key, p, gen)
	}
	writeJSON(w, p)
}

type neighborJSON struct {
	Run      string  `json:"run"`
	Distance float64 `json:"distance"`
}

type nearestPayload struct {
	Spec      string         `json:"spec"`
	Cost      string         `json:"cost"`
	Run       string         `json:"run"`
	Neighbors []neighborJSON `json:"neighbors"`
	Indexed   bool           `json:"indexed,omitempty"`
	Cached    bool           `json:"cached"`
}

// handleNearest returns the k stored runs closest to ?run= — "show me
// executions like this one", the interactive counterpart of the
// cohort matrix. Indexed cohorts answer byte-identically while exactly
// diffing only the candidates the lower bounds cannot rule out.
func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "spec")
	if !ok {
		return
	}
	q := s.query(r)
	m := q.cost()
	runName := q.name("run")
	k := q.intVal("k", 5)
	exact := q.flag("exact")
	if !q.valid(w) {
		return
	}
	key := cacheKey{spec: ns[0], runA: runName, runB: fmt.Sprintf("k=%d", k), cost: m.Name(), kind: kindNearest}
	if !exact {
		if v, ok := s.cache.get(key); ok {
			p := v.(nearestPayload)
			p.Cached = true
			writeJSON(w, p)
			return
		}
	}
	gen := s.cache.generation()
	v, ok := s.cohortViewFor(w, r, ns[0], m, 2, exact)
	if !ok {
		return
	}
	labels := v.Labels()
	idx := -1
	for i, l := range labels {
		if l == runName {
			idx = i
			break
		}
	}
	if idx < 0 {
		s.httpError(w, fmt.Errorf("unknown run %q of %q", runName, ns[0]), http.StatusNotFound)
		return
	}
	var nn []cluster.Neighbor
	var err error
	if v.Indexed() {
		nn, err = cluster.IndexedNearest(v.Index, idx, k)
	} else {
		nn, err = cluster.Nearest(v.Matrix.D, idx, k)
	}
	if err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	out := make([]neighborJSON, len(nn))
	for i, n := range nn {
		out[i] = neighborJSON{Run: labels[n.Index], Distance: n.Distance}
	}
	p := nearestPayload{Spec: ns[0], Cost: m.Name(), Run: runName, Neighbors: out, Indexed: v.Indexed()}
	if !exact {
		s.cache.addIfGen(key, p, gen)
	}
	writeJSON(w, p)
}
