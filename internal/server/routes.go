package server

// The service route table. Version 1 lives under /v1 in one coherent
// scheme: every run-scoped resource hangs off its specification
// (/v1/specs/{spec}/diff/{a}/{b} — diff and cohort are spec-scoped
// like cluster/outliers/nearest always were). The pre-/v1 routes
// remain as thin aliases registered against the SAME handler func, so
// they answer byte-identically, plus a Deprecation header and a Link
// to the successor route. New surface (tickets) is v1-only.

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
)

// apiRoute is one row of the route table: the /v1 pattern, the
// deprecated unversioned alias it replaces (empty for v1-only
// routes), and the shared handler. Legacy patterns use the same path
// value names as their v1 twin so the substituted successor Link and
// the handler's PathValue lookups agree.
type apiRoute struct {
	Method string
	Path   string // pattern under /v1, e.g. "/specs/{spec}/diff/{a}/{b}"
	Legacy string // pre-/v1 pattern, "" when the route is v1-only
	Name   string // stable short name: the metrics route label and CSV column value
	Doc    string // one-line description for the generated route list

	handler http.HandlerFunc
}

// routeTable enumerates every endpoint. It is the single source the
// mux registration, the README/package-doc route list, and the
// legacy-parity test all draw from — a route added here is served,
// documented and parity-checked or it does not exist.
func (s *Server) routeTable() []apiRoute {
	return []apiRoute{
		{Method: "GET", Path: "/specs", Legacy: "/specs", Name: "specs",
			Doc: "list specifications", handler: s.count(&s.reqSpecs, s.handleSpecs)},
		{Method: "GET", Path: "/specs/{spec}/runs", Legacy: "/specs/{spec}/runs", Name: "runs",
			Doc: "list runs of a specification", handler: s.count(&s.reqRuns, s.handleRuns)},
		{Method: "POST", Path: "/specs/{spec}/runs", Legacy: "/specs/{spec}/runs", Name: "import",
			Doc: "import a run (XML body, ?name=, ?async=1)", handler: s.count(&s.reqImport, s.handleIngest)},
		{Method: "POST", Path: "/specs/{spec}/runs/{run}", Legacy: "/specs/{spec}/runs/{run}", Name: "import",
			Doc: "import a run (XML body, ?async=1)", handler: s.count(&s.reqImport, s.handleIngest)},
		{Method: "POST", Path: "/specs/{spec}/runs:bulk", Legacy: "/specs/{spec}/runs:bulk", Name: "bulk",
			Doc: "bulk-import a cohort (tar or NDJSON, ?async=1)", handler: s.count(&s.reqBulk, s.handleBulkImport)},
		{Method: "GET", Path: "/specs/{spec}/export", Legacy: "/specs/{spec}/export", Name: "export",
			Doc: "export spec + runs as a tar stream", handler: s.count(&s.reqExport, s.handleExport)},
		{Method: "DELETE", Path: "/specs/{spec}/runs/{run}", Legacy: "/specs/{spec}/runs/{run}", Name: "delete",
			Doc: "delete a run", handler: s.count(&s.reqDelete, s.handleDelete)},
		{Method: "GET", Path: "/specs/{spec}/diff/{a}/{b}", Legacy: "/diff/{spec}/{a}/{b}", Name: "diff",
			Doc: "distance + edit script (?cost=, ?across=)", handler: s.count(&s.reqDiff, s.handleDiff)},
		{Method: "GET", Path: "/specs/{spec}/diff/{a}/{b}/svg", Legacy: "/diff/{spec}/{a}/{b}/svg", Name: "diff_svg",
			Doc: "side-by-side SVG diff rendering", handler: s.count(&s.reqSVG, s.handleDiffSVG)},
		{Method: "GET", Path: "/specs/{spec}/cohort", Legacy: "/cohort/{spec}", Name: "cohort",
			Doc: "distance matrix + dendrogram (?cost=, ?stream=1)", handler: s.count(&s.reqCohort, s.handleCohort)},
		{Method: "GET", Path: "/specs/{a}/evolve/{b}", Legacy: "/specs/{a}/evolve/{b}", Name: "evolve",
			Doc: "spec-evolution mapping between versions", handler: s.count(&s.reqEvolve, s.handleEvolve)},
		{Method: "GET", Path: "/specs/{a}/evolve/{b}/svg", Legacy: "/specs/{a}/evolve/{b}/svg", Name: "evolve_svg",
			Doc: "spec overlay (deleted red, inserted green)", handler: s.count(&s.reqEvolve, s.handleEvolveSVG)},
		{Method: "GET", Path: "/specs/{spec}/cluster", Legacy: "/specs/{spec}/cluster", Name: "cluster",
			Doc: "k-medoids partitioning (?k=, ?seed=, ?cost=)", handler: s.count(&s.reqCluster, s.handleCluster)},
		{Method: "GET", Path: "/specs/{spec}/outliers", Legacy: "/specs/{spec}/outliers", Name: "outliers",
			Doc: "knn outlier scores (?k=, ?cost=)", handler: s.count(&s.reqOutliers, s.handleOutliers)},
		{Method: "GET", Path: "/specs/{spec}/nearest", Legacy: "/specs/{spec}/nearest", Name: "nearest",
			Doc: "nearest neighbors (?run=, ?k=, ?cost=)", handler: s.count(&s.reqNearest, s.handleNearest)},
		{Method: "GET", Path: "/specs/{spec}/runs/{run}/proof", Name: "proof",
			Doc: "Merkle inclusion proof against the provenance ledger", handler: s.count(&s.reqProof, s.handleProof)},
		{Method: "PATCH", Path: "/specs/{spec}/runs/{run}/events", Name: "live_events",
			Doc: "append live node-status events (?cost=, ?complete=1)", handler: s.count(&s.reqLive, s.handleLiveEvents)},
		{Method: "GET", Path: "/specs/{spec}/watch", Name: "watch",
			Doc: "stream live-run drift updates as NDJSON", handler: s.count(&s.reqWatch, s.handleWatch)},
		{Method: "GET", Path: "/tickets/{id}", Name: "tickets",
			Doc: "async ingest ticket status", handler: s.count(&s.reqTickets, s.handleTicket)},
		{Method: "GET", Path: "/metrics", Legacy: "/metrics", Name: "metrics",
			Doc: "Prometheus text-format metrics", handler: s.count(&s.reqMetrics, s.handleMetrics)},
		{Method: "GET", Path: "/stats", Legacy: "/stats", Name: "stats",
			Doc: "service counters", handler: s.count(&s.reqStats, s.handleStats)},
		{Method: "GET", Path: "/healthz", Legacy: "/healthz", Name: "healthz",
			Doc: "liveness probe", handler: s.handleHealthz},
	}
}

// registerRoutes mounts the table: every row under /v1, and each
// legacy alias wrapped with the deprecation headers. Every handler —
// v1 and alias alike — runs inside the timing shell, so /metrics sees
// the whole traffic under the route's stable name.
func (s *Server) registerRoutes() {
	for _, rt := range s.routeTable() {
		h := s.instrument(rt.Name, rt.handler)
		s.mux.HandleFunc(rt.Method+" /v1"+rt.Path, h)
		if rt.Legacy != "" {
			s.mux.HandleFunc(rt.Method+" "+rt.Legacy, s.deprecated("/v1"+rt.Path, h))
		}
	}
}

// deprecated wraps a legacy route. The response body and status come
// from exactly the handler the /v1 twin uses; the wrapper only adds
//
//	Deprecation: true
//	Link: </v1/...>; rel="successor-version"
//
// with the Link target built by substituting the request's path
// values into the successor pattern.
func (s *Server) deprecated(v1Pattern string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", substitutePattern(v1Pattern, r), "successor-version"))
		h(w, r)
	}
}

// substitutePattern fills a mux pattern's {name} segments from the
// request's path values (path-escaped; names are validated separately
// by the handlers).
func substitutePattern(pattern string, r *http.Request) string {
	segs := strings.Split(pattern, "/")
	for i, seg := range segs {
		name, ok := strings.CutPrefix(seg, "{")
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, "}")
		if !ok {
			continue
		}
		if v := r.PathValue(name); v != "" {
			segs[i] = url.PathEscape(v)
		}
	}
	return strings.Join(segs, "/")
}

func (s *Server) count(c *atomic.Int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		c.Add(1)
		h(w, r)
	}
}
