package server

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
)

// seedEvolveServer extends the pa repository with a lineage-linked
// version "pa-v2" (two mutations) carrying runs s0..s{n-1}.
func seedEvolveServer(tb testing.TB, n int, opts Options) (*Server, *store.Store) {
	tb.Helper()
	srv, st := seedServer(tb, n, opts)
	v1, err := st.LoadSpec("pa")
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	muts, err := gen.Mutate(v1, 2, rng)
	if err != nil {
		tb.Fatal(err)
	}
	if err := st.PutSpecVersion("pa", "pa-v2", muts[len(muts)-1].Spec); err != nil {
		tb.Fatal(err)
	}
	v2, err := st.LoadSpec("pa-v2")
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(v2, gen.DefaultRunParams(), rng)
		if err != nil {
			tb.Fatal(err)
		}
		if err := st.SaveRun("pa-v2", fmt.Sprintf("s%d", i), r); err != nil {
			tb.Fatal(err)
		}
	}
	return srv, st
}

func TestEvolveEndpoint(t *testing.T) {
	srv, _ := seedEvolveServer(t, 2, Options{CacheSize: 16})
	var p evolvePayload
	rec := do(t, srv, http.MethodGet, "/specs/pa/evolve/pa-v2", nil, &p)
	if rec.Code != http.StatusOK {
		t.Fatalf("evolve: %d %s", rec.Code, rec.Body.String())
	}
	if !p.Linked {
		t.Error("pa → pa-v2 not reported lineage-linked")
	}
	if p.Cost <= 0 {
		t.Errorf("mapping cost %g, want > 0", p.Cost)
	}
	if p.MappedModules == 0 || p.MappedModules != len(p.Modules) {
		t.Errorf("module alignment inconsistent: %d mapped, %d listed", p.MappedModules, len(p.Modules))
	}
	if p.InsertedModules < 1 {
		t.Errorf("two mutations inserted %d modules, want >= 1", p.InsertedModules)
	}
	if p.Cached {
		t.Error("first evolve answer claims cached")
	}
	// Second hit is served from the cache.
	do(t, srv, http.MethodGet, "/specs/pa/evolve/pa-v2", nil, &p)
	if !p.Cached {
		t.Error("second evolve answer not cached")
	}
	// Identity pair: zero cost.
	var ident evolvePayload
	do(t, srv, http.MethodGet, "/specs/pa/evolve/pa", nil, &ident)
	if ident.Cost != 0 || !ident.Linked {
		t.Errorf("self-evolve: cost %g linked %v", ident.Cost, ident.Linked)
	}
	// Unknown spec: 404.
	rec = do(t, srv, http.MethodGet, "/specs/pa/evolve/nope", nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown spec: %d, want 404", rec.Code)
	}
	// Traversal probe: 400.
	rec = do(t, srv, http.MethodGet, "/specs/pa/evolve/%2e%2e", nil, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("traversal probe: %d, want 400", rec.Code)
	}
}

func TestEvolveSVG(t *testing.T) {
	srv, _ := seedEvolveServer(t, 1, Options{CacheSize: 16})
	rec := do(t, srv, http.MethodGet, "/specs/pa/evolve/pa-v2/svg", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("evolve svg: %d %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/svg+xml" {
		t.Errorf("content type %q", ct)
	}
	body := rec.Body.String()
	if !strings.HasPrefix(body, "<svg") || !strings.Contains(body, "spec evolution cost") {
		t.Errorf("svg body malformed: %.120s", body)
	}
	// Both panes render: deleted red or kept gray on the left, inserted
	// green somewhere for the grown version.
	if !strings.Contains(body, "#22aa44") {
		t.Error("svg shows no inserted modules for a grown version")
	}
}

func TestCrossVersionDiffEndpoint(t *testing.T) {
	srv, _ := seedEvolveServer(t, 2, Options{CacheSize: 16})
	var p xdiffPayload
	rec := do(t, srv, http.MethodGet, "/diff/pa/r0/s0?across=pa-v2&cost=length", nil, &p)
	if rec.Code != http.StatusOK {
		t.Fatalf("cross diff: %d %s", rec.Code, rec.Body.String())
	}
	if p.SpecA != "pa" || p.SpecB != "pa-v2" {
		t.Errorf("payload specs %q/%q", p.SpecA, p.SpecB)
	}
	if p.Distance < 0 || p.Distance < p.EngineDistance {
		t.Errorf("distances inconsistent: total %g engine %g", p.Distance, p.EngineDistance)
	}
	if p.MappingCost <= 0 {
		t.Errorf("mapping cost %g, want > 0", p.MappingCost)
	}
	if p.ProjectedEdges <= 0 {
		t.Errorf("projected run has %d edges", p.ProjectedEdges)
	}
	if p.Cached {
		t.Error("first cross diff claims cached")
	}
	do(t, srv, http.MethodGet, "/diff/pa/r0/s0?across=pa-v2&cost=length", nil, &p)
	if !p.Cached {
		t.Error("second cross diff not cached")
	}
	// Unlinked pair: 400 with a helpful message.
	rec = do(t, srv, http.MethodGet, "/diff/pa/r0/r1?across=pa", nil, nil)
	if rec.Code != http.StatusOK {
		// Same spec is trivially linked (identity); only a genuinely
		// unlinked pair must 400 — build one.
		t.Fatalf("identity across: %d %s", rec.Code, rec.Body.String())
	}
	rec = do(t, srv, http.MethodGet, "/diff/pa/r0/s0?across=..", nil, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("traversal across: %d, want 400", rec.Code)
	}
	rec = do(t, srv, http.MethodGet, "/diff/pa/r0/zzz?across=pa-v2", nil, nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown cross run: %d, want 404", rec.Code)
	}
}

func TestCrossVersionDiffUnlinked400(t *testing.T) {
	srv, st := seedEvolveServer(t, 1, Options{CacheSize: 16})
	// An unrelated spec with no lineage record.
	em, err := gen.Catalog("EMBOSS")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("emboss", em); err != nil {
		t.Fatal(err)
	}
	sp, err := st.LoadSpec("emboss")
	if err != nil {
		t.Fatal(err)
	}
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRun("emboss", "e0", r); err != nil {
		t.Fatal(err)
	}
	rec := do(t, srv, http.MethodGet, "/diff/pa/r0/e0?across=emboss", nil, nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unlinked cross diff: %d, want 400", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "lineage") {
		t.Errorf("unlinked error does not mention lineage: %s", rec.Body.String())
	}
}

// TestCrossDiffInvalidation: re-importing the target-version run must
// drop the cached cross payload (it is keyed under the source spec).
func TestCrossDiffInvalidation(t *testing.T) {
	srv, st := seedEvolveServer(t, 2, Options{CacheSize: 16})
	var p xdiffPayload
	do(t, srv, http.MethodGet, "/diff/pa/r0/s0?across=pa-v2", nil, &p)
	do(t, srv, http.MethodGet, "/diff/pa/r0/s0?across=pa-v2", nil, &p)
	if !p.Cached {
		t.Fatal("cross payload not cached")
	}
	// Overwrite s0 in pa-v2 with a fresh run.
	v2, err := st.LoadSpec("pa-v2")
	if err != nil {
		t.Fatal(err)
	}
	r, err := gen.RandomRun(v2, gen.DefaultRunParams(), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRun("pa-v2", "s0", r); err != nil {
		t.Fatal(err)
	}
	do(t, srv, http.MethodGet, "/diff/pa/r0/s0?across=pa-v2", nil, &p)
	if p.Cached {
		t.Error("cross payload served stale after target run re-import")
	}
}

// TestEvolveConcurrent exercises the evolve and cross-diff paths from
// many goroutines (run under -race in CI): mapping caches, engine
// pools and the result LRU must tolerate concurrent readers.
func TestEvolveConcurrent(t *testing.T) {
	srv, _ := seedEvolveServer(t, 2, Options{CacheSize: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch (g + i) % 3 {
				case 0:
					rec := do(t, srv, http.MethodGet, "/specs/pa/evolve/pa-v2", nil, nil)
					if rec.Code != http.StatusOK {
						t.Errorf("evolve: %d", rec.Code)
					}
				case 1:
					rec := do(t, srv, http.MethodGet, fmt.Sprintf("/diff/pa/r%d/s%d?across=pa-v2", i%2, (g+i)%2), nil, nil)
					if rec.Code != http.StatusOK {
						t.Errorf("cross diff: %d", rec.Code)
					}
				default:
					rec := do(t, srv, http.MethodGet, "/specs/pa/evolve/pa-v2/svg", nil, nil)
					if rec.Code != http.StatusOK {
						t.Errorf("evolve svg: %d", rec.Code)
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
