package server

// Uniform JSON error envelope: every endpoint — /v1 and the
// deprecated legacy aliases alike — reports failures as
//
//	{"error":{"code":"not_found","message":"..."}}
//
// with the code derived from the HTTP status, so clients can switch
// on a stable machine-readable string instead of parsing messages.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"net/http"

	"repro/internal/ingest"
	"repro/internal/store"
)

// errorEnvelope is the uniform error body.
type errorEnvelope struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Imported lists the runs a partially failed bulk import DID land
	// before the error (they are on disk and announced).
	Imported []string `json:"imported,omitempty"`
}

// errorCode maps an HTTP status onto the envelope's stable code.
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusConflict:
		return "conflict"
	case http.StatusRequestEntityTooLarge:
		return "payload_too_large"
	case http.StatusTooManyRequests:
		return "rate_limited"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	default:
		if status >= 500 {
			return "internal"
		}
		return "bad_request"
	}
}

// httpError writes the error envelope for the given status.
func (s *Server) httpError(w http.ResponseWriter, err error, code int) {
	s.errCount.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(errorEnvelope{Error: errorDetail{Code: errorCode(code), Message: err.Error()}})
}

// storeError maps store-layer errors onto statuses: missing
// specs/runs are 404, duplicate names in a batch 409, everything else
// a caller can fix is 400.
func (s *Server) storeError(w http.ResponseWriter, err error) {
	s.httpError(w, err, storeStatus(err))
}

func storeStatus(err error) int {
	switch {
	case errors.Is(err, fs.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, store.ErrDuplicateRun):
		return http.StatusConflict
	default:
		return http.StatusBadRequest
	}
}

// commitError tags a storage-side failure of a batched ingest commit:
// the document was fine but the repository write was not, which is
// the service's fault (500), not the client's (400).
type commitError struct{ err error }

func (e commitError) Error() string { return e.err.Error() }
func (e commitError) Unwrap() error { return e.err }

// ingestStatus maps a pipeline result error (or enqueue error) onto a
// status: client-side document problems 400/404/409/413, backpressure
// 429, shutdown 503, storage faults 500.
func ingestStatus(err error) int {
	var tooBig *http.MaxBytesError
	var ce commitError
	switch {
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, ingest.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ingest.ErrClosed):
		return http.StatusServiceUnavailable
	case errors.Is(err, fs.ErrNotExist):
		return http.StatusNotFound
	case errors.Is(err, store.ErrDuplicateRun):
		return http.StatusConflict
	case errors.As(err, &ce):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

// muxErrorWriter rewrites the mux's own plain-text error responses
// (unknown path, method mismatch) into the JSON envelope. It is only
// installed when pattern resolution has already failed, so handler
// output never passes through it.
type muxErrorWriter struct {
	w    http.ResponseWriter
	s    *Server
	done bool
}

func (m *muxErrorWriter) Header() http.Header { return m.w.Header() }

func (m *muxErrorWriter) WriteHeader(code int) {
	if m.done {
		return
	}
	m.done = true
	msg := "no such route"
	if code == http.StatusMethodNotAllowed {
		msg = "method not allowed"
		if allow := m.w.Header().Get("Allow"); allow != "" {
			msg = "method not allowed (allowed: " + allow + ")"
		}
	}
	m.w.Header().Del("X-Content-Type-Options")
	m.s.httpError(m.w, errors.New(msg), code)
}

func (m *muxErrorWriter) Write(p []byte) (int, error) {
	if !m.done {
		m.WriteHeader(http.StatusOK)
	}
	return len(p), nil // the plain-text body is replaced by the envelope
}

// readBody drains a request body under the per-document size limit,
// translating the limiter's error into the 413 envelope.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.maxImportBytes()))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.httpError(w, fmt.Errorf("run document exceeds %d bytes", tooBig.Limit), http.StatusRequestEntityTooLarge)
		} else {
			s.httpError(w, err, http.StatusBadRequest)
		}
		return nil, false
	}
	return body, true
}
