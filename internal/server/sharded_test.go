package server

// Differential tests for the sharded multi-tenant repository: a server
// over a 2-shard backend must answer /v1/diff, /v1/cluster and /proof
// byte-identically to a server over a plain single backend given the
// same imports — and keep doing so after the shard processes are
// killed and reopened over the same directories, for both the fs and
// the object backend. Sharding is a placement concern; it must never
// leak into any response body.

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfxml"
)

// seedSpecNamed stores the PA catalog workflow under an arbitrary
// tenant name.
func seedSpecNamed(t *testing.T, st *store.Store, name string) {
	t.Helper()
	sp, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec(name, sp); err != nil {
		t.Fatal(err)
	}
}

// encodeRunFor renders one deterministic run document against a stored
// specification, so every arm imports the exact same bytes.
func encodeRunFor(t *testing.T, st *store.Store, spec string, seed int64, name string) []byte {
	t.Helper()
	sp, err := st.LoadSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, name); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// shardedTargets are the endpoints whose bodies must not depend on how
// specs are placed across backends.
var shardedTargets = []string{
	"/v1/specs",
	"/v1/specs/pa/runs",
	"/v1/specs/pa/diff/r0/r1",
	"/v1/specs/pa/diff/r1/r2",
	"/v1/specs/pa/cluster?k=2&seed=9",
	"/v1/specs/pa/runs/r0/proof",
	"/v1/specs/pa/runs/r2/proof",
	"/v1/specs/sa/runs/r0/proof",
}

// openShards builds one backend per directory; the store layer sees
// them only through the sharded router.
func openShards(t *testing.T, kind string, dirs []string) []store.Backend {
	t.Helper()
	shards := make([]store.Backend, len(dirs))
	for i, dir := range dirs {
		be, err := store.NewBackend(kind, dir)
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = be
	}
	return shards
}

// seedAll imports the same spec + run bodies into every server, via
// the same HTTP path, in the same order.
func seedAll(t *testing.T, stores []*store.Store, servers []*Server) {
	t.Helper()
	// Two tenants, so the 2-shard arm actually exercises routing; the
	// run bodies are encoded once and posted to every arm.
	type imp struct{ spec, run string }
	var imports []imp
	for _, spec := range []string{"pa", "sa"} {
		for i := 0; i < 3; i++ {
			imports = append(imports, imp{spec, fmt.Sprintf("r%d", i)})
		}
	}
	for _, spec := range []string{"pa", "sa"} {
		for _, st := range stores {
			seedSpecNamed(t, st, spec)
		}
	}
	for seed, im := range imports {
		body := encodeRunFor(t, stores[0], im.spec, int64(4000+seed), im.run)
		for i, srv := range servers {
			rec := do(t, srv, "POST", "/v1/specs/"+im.spec+"/runs/"+im.run, body, nil)
			if rec.Code != http.StatusCreated {
				t.Fatalf("arm %d: import %s/%s = %d %q", i, im.spec, im.run, rec.Code, rec.Body.String())
			}
		}
	}
}

// requireSameAnswers asserts byte-identical bodies across servers for
// every placement-independent endpoint.
func requireSameAnswers(t *testing.T, label string, single, sharded *Server) {
	t.Helper()
	for _, target := range shardedTargets {
		rs := do(t, single, "GET", target, nil, nil)
		rh := do(t, sharded, "GET", target, nil, nil)
		if rs.Code != http.StatusOK || rh.Code != http.StatusOK {
			t.Errorf("%s: %s: single %d, sharded %d (%q)", label, target, rs.Code, rh.Code, truncate(rh.Body.String()))
			continue
		}
		if !bytes.Equal(rs.Body.Bytes(), rh.Body.Bytes()) {
			t.Errorf("%s: %s answers differ:\nsingle:  %q\nsharded: %q",
				label, target, truncate(rs.Body.String()), truncate(rh.Body.String()))
		}
	}
}

func TestShardedServerByteIdenticalToSingle(t *testing.T) {
	for _, kind := range []string{"fs", "object"} {
		t.Run(kind, func(t *testing.T) {
			singleDir := t.TempDir()
			shardDirs := []string{t.TempDir(), t.TempDir()}

			stSingle := store.OpenBackend(mustBackend(t, kind, singleDir))
			stSharded, err := store.OpenSharded(openShards(t, kind, shardDirs)...)
			if err != nil {
				t.Fatal(err)
			}
			srvSingle := New(stSingle, Options{DirectIngest: true})
			srvSharded := New(stSharded, Options{DirectIngest: true})

			seedAll(t, []*store.Store{stSingle, stSharded}, []*Server{srvSingle, srvSharded})
			requireSameAnswers(t, kind+"/warm", srvSingle, srvSharded)

			// Kill and restart the sharded arm: close the store, reopen
			// fresh backends over the same directories. Everything —
			// including the ledger proofs — must replay identically.
			srvSharded.Close()
			if err := stSharded.Close(); err != nil {
				t.Fatal(err)
			}
			stSharded, err = store.OpenSharded(openShards(t, kind, shardDirs)...)
			if err != nil {
				t.Fatal(err)
			}
			srvSharded = New(stSharded, Options{DirectIngest: true})
			requireSameAnswers(t, kind+"/restarted", srvSingle, srvSharded)

			// And with the shard order reversed: discovery pins every
			// spec back to the shard that already holds it, so even a
			// reshuffled configuration serves the same bytes.
			srvSharded.Close()
			if err := stSharded.Close(); err != nil {
				t.Fatal(err)
			}
			reversed := openShards(t, kind, []string{shardDirs[1], shardDirs[0]})
			stSharded, err = store.OpenSharded(reversed...)
			if err != nil {
				t.Fatal(err)
			}
			srvSharded = New(stSharded, Options{DirectIngest: true})
			requireSameAnswers(t, kind+"/reversed", srvSingle, srvSharded)

			srvSingle.Close()
			srvSharded.Close()
		})
	}
}

func mustBackend(t *testing.T, kind, dir string) store.Backend {
	t.Helper()
	be, err := store.NewBackend(kind, dir)
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// TestShardedStatsAndMetrics pins the observability surface: /v1/stats
// gains a storage section naming the backend and one entry per shard,
// and /v1/metrics exposes the per-shard gauge/counter families.
func TestShardedStatsAndMetrics(t *testing.T) {
	stSharded, err := store.OpenSharded(store.NewMemoryBackend(), store.NewMemoryBackend())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(stSharded, Options{DirectIngest: true})
	defer srv.Close()
	stores := []*store.Store{stSharded}
	seedAll(t, stores, []*Server{srv})

	var payload struct {
		Storage struct {
			Backend string             `json:"backend"`
			Shards  []store.ShardStats `json:"shards"`
		} `json:"storage"`
	}
	if rec := do(t, srv, "GET", "/v1/stats", nil, &payload); rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	if payload.Storage.Backend != "sharded" {
		t.Fatalf("storage backend = %q, want sharded", payload.Storage.Backend)
	}
	if len(payload.Storage.Shards) != 2 {
		t.Fatalf("shard stats entries = %d, want 2", len(payload.Storage.Shards))
	}
	writes := int64(0)
	for _, sh := range payload.Storage.Shards {
		if sh.Kind != "memory" {
			t.Fatalf("shard %d kind = %q, want memory", sh.Index, sh.Kind)
		}
		// "pa" hashes to shard 0 and "sa" to shard 1, so a healthy ring
		// places exactly one tenant on each.
		if sh.Specs != 1 {
			t.Errorf("shard %d holds %d specs, want 1", sh.Index, sh.Specs)
		}
		if sh.Writes == 0 || sh.BytesWritten == 0 {
			t.Errorf("shard %d counted no traffic: %+v", sh.Index, sh)
		}
		writes += sh.Writes
	}
	if writes == 0 {
		t.Fatal("no writes counted across shards after imports")
	}

	rec := do(t, srv, "GET", "/v1/metrics", nil, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`provdiff_storage_shard_specs{shard="0",kind="memory"}`,
		`provdiff_storage_shard_specs{shard="1",kind="memory"}`,
		`provdiff_storage_shard_writes_total{shard="0",kind="memory"}`,
		`provdiff_storage_shard_appends_total{shard="1",kind="memory"}`,
		`provdiff_storage_shard_read_bytes_total{shard="0",kind="memory"}`,
		`provdiff_storage_shard_written_bytes_total{shard="1",kind="memory"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %s", want)
		}
	}

	// A single-backend server reports its kind and omits the shard list.
	stSingle, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srvSingle := New(stSingle, Options{})
	defer srvSingle.Close()
	payload.Storage.Backend, payload.Storage.Shards = "", nil
	if rec := do(t, srvSingle, "GET", "/v1/stats", nil, &payload); rec.Code != http.StatusOK {
		t.Fatalf("single stats = %d", rec.Code)
	}
	if payload.Storage.Backend != "fs" || len(payload.Storage.Shards) != 0 {
		t.Fatalf("single storage section = %+v", payload.Storage)
	}
	if rec := do(t, srvSingle, "GET", "/v1/metrics", nil, nil); strings.Contains(rec.Body.String(), "provdiff_storage_shard_") {
		t.Fatal("single-backend metrics expose shard families")
	}
}
