package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfrun"
)

// seedLiveServer is seedServer with the store directory exposed, so a
// test can reopen the repository from scratch and compare answers.
func seedLiveServer(tb testing.TB, n int, opts Options) (*Server, *store.Store, string) {
	tb.Helper()
	dir := tb.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	pa, err := gen.Catalog("PA")
	if err != nil {
		tb.Fatal(err)
	}
	if err := st.SaveSpec("pa", pa); err != nil {
		tb.Fatal(err)
	}
	sp, err := st.LoadSpec("pa")
	if err != nil {
		tb.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			tb.Fatal(err)
		}
		if err := st.SaveRun("pa", fmt.Sprintf("r%d", i), r); err != nil {
			tb.Fatal(err)
		}
	}
	return New(st, opts), st, dir
}

func eventBody(tb testing.TB, evs ...wfrun.Event) []byte {
	tb.Helper()
	b, err := json.Marshal(evs)
	if err != nil {
		tb.Fatal(err)
	}
	return b
}

// TestLiveDriftE2E is the acceptance path: a run is ingested
// event-by-event, every append's drift score is monotone and mirrored
// on the watch stream, and after completion the stored run diffs
// byte-identically to the same repository reopened from scratch.
func TestLiveDriftE2E(t *testing.T) {
	srv, st, dir := seedLiveServer(t, 3, Options{CacheSize: 32})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	sp, err := st.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	run, err := gen.RandomRun(sp, gen.DefaultRunParams(), rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	evs := wfrun.Events(run)
	if len(evs) < 4 {
		t.Fatalf("degenerate run: %d events", len(evs))
	}

	// Attach a watcher before the first event.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wreq, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/specs/pa/watch", nil)
	wresp, err := http.DefaultClient.Do(wreq)
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if ct := wresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("watch content type = %q", ct)
	}
	stream := bufio.NewReader(wresp.Body)
	var hello struct {
		Type string   `json:"type"`
		Live []string `json:"live"`
	}
	line, err := stream.ReadBytes('\n')
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(line, &hello); err != nil || hello.Type != "hello" {
		t.Fatalf("hello line = %q (%v)", line, err)
	}

	patch := func(url string, body []byte) liveEventsPayload {
		t.Helper()
		req, _ := http.NewRequest("PATCH", url, bytes.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var p liveEventsPayload
		if err := json.NewDecoder(resp.Body).Decode(&p); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("PATCH %s = %d", url, resp.StatusCode)
		}
		return p
	}
	readDrift := func() driftUpdate {
		t.Helper()
		for {
			line, err := stream.ReadBytes('\n')
			if err != nil {
				t.Fatalf("watch stream: %v", err)
			}
			var u driftUpdate
			if err := json.Unmarshal(line, &u); err != nil {
				t.Fatalf("watch line %q: %v", line, err)
			}
			if u.Type == "drift" {
				return u
			}
		}
	}

	url := hs.URL + "/v1/specs/pa/runs/live1/events"
	last := -1.0
	for i, ev := range evs {
		p := patch(url, eventBody(t, ev))
		if p.Events != i+1 {
			t.Fatalf("after event %d: status.Events = %d", i, p.Events)
		}
		if p.Drift.Score < last {
			t.Fatalf("drift regressed at event %d: %v < %v", i, p.Drift.Score, last)
		}
		last = p.Drift.Score
		u := readDrift()
		if u.Score != p.Drift.Score || u.Run != "live1" || u.Events != p.Events {
			t.Fatalf("watch update %+v != response drift %+v", u, p.Drift)
		}
	}

	// Complete with an empty body: the final update carries the exact
	// distance, which can only confirm or raise the running bound.
	p := patch(url+"?complete=1", nil)
	if !p.Completed || !p.Drift.Final {
		t.Fatalf("completion payload = %+v", p)
	}
	if p.Drift.Score < last {
		t.Fatalf("final exact distance %v below last bound %v", p.Drift.Score, last)
	}
	if u := readDrift(); !u.Final || u.Score != p.Drift.Score {
		t.Fatalf("final watch update = %+v", u)
	}
	cancel()

	// The live run is now a regular stored run; its diff against every
	// seeded run must be byte-identical when the repository is reopened
	// from scratch by an unrelated server.
	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(st2, Options{CacheSize: 32})
	defer srv2.Close()
	for i := 0; i < 3; i++ {
		path := fmt.Sprintf("/v1/specs/pa/diff/live1/r%d", i)
		a := do(t, srv, "GET", path, nil, nil)
		b := do(t, srv2, "GET", path, nil, nil)
		if a.Code != 200 || b.Code != 200 {
			t.Fatalf("diff %s = %d / %d", path, a.Code, b.Code)
		}
		// The warm server may answer from cache ("cached":true); strip
		// the flag before comparing.
		norm := func(s string) string { return strings.ReplaceAll(s, `"cached":true`, `"cached":false`) }
		if norm(a.Body.String()) != norm(b.Body.String()) {
			t.Fatalf("diff %s differs between live-completed and reopened store:\n%s\nvs\n%s", path, a.Body.String(), b.Body.String())
		}
	}

	// Appending to the completed name conflicts.
	req, _ := http.NewRequest("PATCH", url, bytes.NewReader(eventBody(t, evs[0])))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("append to completed run = %d, want 409", resp.StatusCode)
	}
}

// settleGoroutines waits for the goroutine count to drop back to (or
// below) the baseline plus slack.
func settleGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines did not settle: %d > %d+%d\n%s", n, base, slack, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStreamingDisconnectReleasesGoroutines drops clients mid-stream on
// both NDJSON routes — watch and cohort — and asserts the handler
// goroutines unwind instead of leaking. Run under -race in CI.
func TestStreamingDisconnectReleasesGoroutines(t *testing.T) {
	srv, st, _ := seedLiveServer(t, 4, Options{CacheSize: 32})
	defer srv.Close()
	hs := httptest.NewServer(srv)
	defer hs.Close()

	base := runtime.NumGoroutine()

	// Watch: the handler parks in its select until the context fires.
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/specs/pa/watch", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		// Read the hello line so the handler is known to be streaming.
		if _, err := bufio.NewReader(resp.Body).ReadBytes('\n'); err != nil {
			t.Fatal(err)
		}
		cancel()
		resp.Body.Close()
	}
	settleGoroutines(t, base, 2)
	if n := srv.watch.subscribers(); n != 0 {
		t.Fatalf("watch subscribers after disconnects = %d, want 0", n)
	}

	// Cohort stream: disconnect mid-fan-out; the analysis context must
	// abort the workers.
	sp, err := st.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 8; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveRun("pa", fmt.Sprintf("c%d", i), r); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, _ := http.NewRequestWithContext(ctx, "GET", hs.URL+"/v1/specs/pa/cohort?stream=1", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		cancel()
		resp.Body.Close()
	}
	settleGoroutines(t, base, 2)
}

// TestMetricsEndpoint scrapes /metrics after mixed traffic and checks
// the exposition parses: families declared once, histogram buckets
// cumulative and consistent with their _count, key series present.
func TestMetricsEndpoint(t *testing.T) {
	srv, _, _ := seedLiveServer(t, 3, Options{CacheSize: 16})
	defer srv.Close()
	do(t, srv, "GET", "/v1/specs", nil, nil)
	do(t, srv, "GET", "/v1/specs/pa/diff/r0/r1", nil, nil)
	do(t, srv, "GET", "/v1/specs/pa/diff/r0/r1", nil, nil) // cache hit
	do(t, srv, "GET", "/v1/specs/missing/runs", nil, nil)  // 404

	rec := do(t, srv, "GET", "/v1/metrics", nil, nil)
	if rec.Code != 200 {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}

	help := make(map[string]int)
	types := make(map[string]string)
	var bucketCum float64
	var lastHist string
	for _, line := range strings.Split(strings.TrimRight(rec.Body.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") {
			name := strings.Fields(line)[2]
			help[name]++
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			types[f[2]] = f[3]
			continue
		}
		// Sample line: name{labels} value — value must parse.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		var v float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &v); err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			series := line[:sp] // includes labels minus le
			series = series[:strings.LastIndex(series, "le=")]
			if series != lastHist {
				lastHist, bucketCum = series, 0
			}
			if v < bucketCum {
				t.Fatalf("bucket counts not cumulative at %q: %v < %v", line, v, bucketCum)
			}
			bucketCum = v
		case strings.HasSuffix(name, "_count") && strings.HasPrefix(line, lastHist[:strings.IndexByte(lastHist, '{')]):
			if v != bucketCum {
				t.Fatalf("_count %v != +Inf bucket %v at %q", v, bucketCum, line)
			}
		}
	}
	for name, n := range help {
		if n != 1 {
			t.Fatalf("family %s declared %d times", name, n)
		}
		if types[name] == "" {
			t.Fatalf("family %s has HELP but no TYPE", name)
		}
	}
	for _, want := range []string{
		"provdiff_requests_total", "provdiff_request_duration_seconds",
		"provdiff_stage_duration_seconds", "provdiff_errors_total",
		"provdiff_cache_hits_total", "provdiff_ingest_queue_depth",
		"provdiff_ingest_queue_high_water", "provdiff_live_runs",
		"provdiff_watch_subscribers", "provdiff_metricindex_pruned_pairs_total",
	} {
		if help[want] != 1 {
			t.Fatalf("family %s missing from exposition", want)
		}
	}
	// The 404 and the diffs must be visible per route and status class.
	body := rec.Body.String()
	for _, want := range []string{
		`provdiff_requests_total{route="diff",code="2xx"} 2`,
		`provdiff_requests_total{route="runs",code="4xx"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q", want)
		}
	}
}

// TestRequestTimingHook checks the per-request stage-timing records:
// route names, status codes, stage attribution, and the CSV shape.
func TestRequestTimingHook(t *testing.T) {
	var mu = make(chan *RequestTiming, 16)
	srv, _, _ := seedLiveServer(t, 2, Options{
		CacheSize:       16,
		OnRequestTiming: func(rt *RequestTiming) { mu <- rt },
	})
	defer srv.Close()

	do(t, srv, "GET", "/v1/specs/pa/diff/r0/r1", nil, nil)
	rt := <-mu
	if rt.Route != "diff" || rt.Method != "GET" || rt.Status != 200 {
		t.Fatalf("timing record = %+v", rt)
	}
	if rt.TotalMS <= 0 || rt.DiffMS <= 0 {
		t.Fatalf("diff request charged no time: %+v", rt)
	}
	row := rt.CSVRow()
	if n := strings.Count(row, ","); n != strings.Count(TimingCSVHeader(), ",") {
		t.Fatalf("CSV row has %d commas, header %d: %q", n, strings.Count(TimingCSVHeader(), ","), row)
	}

	do(t, srv, "GET", "/v1/specs/missing/runs", nil, nil)
	rt = <-mu
	if rt.Route != "runs" || rt.Status != 404 {
		t.Fatalf("404 timing record = %+v", rt)
	}
}
