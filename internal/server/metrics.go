package server

// A dependency-free Prometheus text-format (0.0.4) metrics registry.
// The request counters and latency histograms are fed by the timing
// middleware (timing.go); everything else is rendered on scrape from
// the same live counters /v1/stats reads, so the two surfaces can
// never disagree.

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/store"
)

// latencyBuckets are the histogram upper bounds in seconds, spanning
// sub-millisecond cache hits to multi-second cohort fan-outs.
var latencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

// histogram is a fixed-bucket latency histogram. Guarded by the
// registry mutex.
type histogram struct {
	counts []int64 // per-bucket (non-cumulative) observation counts
	sum    float64
	total  int64
}

func newHistogram() *histogram {
	return &histogram{counts: make([]int64, len(latencyBuckets))}
}

func (h *histogram) observe(seconds float64) {
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			h.counts[i]++
			break
		}
	}
	h.sum += seconds
	h.total++
}

// metricsRegistry aggregates per-route request counts and latency
// distributions plus per-stage latency distributions.
type metricsRegistry struct {
	mu       sync.Mutex
	requests map[[2]string]int64   // (route, status class "2xx") → count
	latency  map[string]*histogram // route → request duration
	stages   map[string]*histogram // stage → stage duration
}

func newMetricsRegistry() *metricsRegistry {
	return &metricsRegistry{
		requests: make(map[[2]string]int64),
		latency:  make(map[string]*histogram),
		stages:   make(map[string]*histogram),
	}
}

// observeRequest folds one finished request into the registry. Stage
// histograms only record stages the request actually exercised.
func (m *metricsRegistry) observeRequest(t *RequestTiming) {
	class := fmt.Sprintf("%dxx", t.Status/100)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[[2]string{t.Route, class}]++
	h := m.latency[t.Route]
	if h == nil {
		h = newHistogram()
		m.latency[t.Route] = h
	}
	h.observe(t.TotalMS / 1e3)
	for stage, ms := range map[string]float64{
		"parse":  t.ParseMS,
		"diff":   t.DiffMS,
		"cache":  t.CacheMS,
		"store":  t.StoreMS,
		"ledger": t.LedgerMS,
	} {
		if ms <= 0 {
			continue
		}
		sh := m.stages[stage]
		if sh == nil {
			sh = newHistogram()
			m.stages[stage] = sh
		}
		sh.observe(ms / 1e3)
	}
}

// promWriter accumulates one exposition document.
type promWriter struct{ b strings.Builder }

func (p *promWriter) family(name, help, typ string) {
	fmt.Fprintf(&p.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) value(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&p.b, "%s%s %g\n", name, labels, v)
}

func (p *promWriter) histogram(name, labels string, h *histogram) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += h.counts[i]
		fmt.Fprintf(&p.b, "%s_bucket{%s%sle=\"%g\"} %d\n", name, labels, sep, ub, cum)
	}
	fmt.Fprintf(&p.b, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.total)
	fmt.Fprintf(&p.b, "%s_sum{%s} %g\n", name, labels, h.sum)
	fmt.Fprintf(&p.b, "%s_count{%s} %d\n", name, labels, h.total)
}

// render produces the full exposition document against a stats
// snapshot taken by the caller.
func (m *metricsRegistry) render(st statsPayload, watchSubs int, watchDropped int64, liveRuns int) string {
	var p promWriter

	m.mu.Lock()
	p.family("provdiff_requests_total", "Requests served, by route and status class.", "counter")
	reqKeys := make([][2]string, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i][0] != reqKeys[j][0] {
			return reqKeys[i][0] < reqKeys[j][0]
		}
		return reqKeys[i][1] < reqKeys[j][1]
	})
	for _, k := range reqKeys {
		p.value("provdiff_requests_total", fmt.Sprintf("route=%q,code=%q", k[0], k[1]), float64(m.requests[k]))
	}

	p.family("provdiff_request_duration_seconds", "End-to-end request latency, by route.", "histogram")
	routes := make([]string, 0, len(m.latency))
	for r := range m.latency {
		routes = append(routes, r)
	}
	sort.Strings(routes)
	for _, r := range routes {
		p.histogram("provdiff_request_duration_seconds", fmt.Sprintf("route=%q", r), m.latency[r])
	}

	p.family("provdiff_stage_duration_seconds", "Request-stage latency (parse/diff/cache/store/ledger), over requests exercising the stage.", "histogram")
	stages := make([]string, 0, len(m.stages))
	for s := range m.stages {
		stages = append(stages, s)
	}
	sort.Strings(stages)
	for _, s := range stages {
		p.histogram("provdiff_stage_duration_seconds", fmt.Sprintf("stage=%q", s), m.stages[s])
	}
	m.mu.Unlock()

	counter := func(name, help string, v float64) {
		p.family(name, help, "counter")
		p.value(name, "", v)
	}
	gauge := func(name, help string, v float64) {
		p.family(name, help, "gauge")
		p.value(name, "", v)
	}

	counter("provdiff_errors_total", "Requests answered with an error envelope.", float64(st.Errors))
	gauge("provdiff_uptime_seconds", "Seconds since the server started.", st.UptimeSeconds)

	gauge("provdiff_cache_size", "Diff-result LRU entries currently cached.", float64(st.Cache.Size))
	gauge("provdiff_cache_capacity", "Diff-result LRU capacity.", float64(st.Cache.Capacity))
	counter("provdiff_cache_hits_total", "Diff-result LRU hits.", float64(st.Cache.Hits))
	counter("provdiff_cache_misses_total", "Diff-result LRU misses.", float64(st.Cache.Misses))
	counter("provdiff_cache_evictions_total", "Diff-result LRU evictions.", float64(st.Cache.Evictions))
	counter("provdiff_cache_invalidations_total", "Diff-result LRU invalidations from run changes.", float64(st.Cache.Invalidations))
	gauge("provdiff_cache_hit_ratio", "Diff-result LRU hit ratio since start.", st.Cache.HitRate)

	gauge("provdiff_ingest_queue_depth", "Group-commit ingest jobs currently queued.", float64(st.Ingest.QueueDepth))
	gauge("provdiff_ingest_queue_capacity", "Group-commit ingest queue bound.", float64(st.Ingest.QueueCapacity))
	gauge("provdiff_ingest_queue_high_water", "Deepest the ingest queue has been.", float64(st.Ingest.MaxDepth))
	counter("provdiff_ingest_enqueued_total", "Ingest jobs accepted onto the queue.", float64(st.Ingest.Enqueued))
	counter("provdiff_ingest_rejected_total", "Ingest jobs refused with queue-full.", float64(st.Ingest.Rejected))
	counter("provdiff_ingest_committed_total", "Ingest jobs committed.", float64(st.Ingest.Committed))
	counter("provdiff_ingest_failed_total", "Ingest jobs whose commit failed.", float64(st.Ingest.Failed))
	counter("provdiff_ingest_batches_total", "Group commits performed.", float64(st.Ingest.Batches))
	counter("provdiff_ingest_slow_commits_total", "Commits slower than the watchdog threshold.", float64(st.Ingest.SlowCommits))
	gauge("provdiff_ingest_tickets_pending", "Unresolved async ingest tickets.", float64(st.Ingest.TicketsPending))

	counter("provdiff_engine_gets_total", "Engine checkouts from the per-(spec,cost) pools.", float64(st.Engines.Gets))
	counter("provdiff_engine_news_total", "Engine checkouts that had to build a new engine.", float64(st.Engines.News))
	gauge("provdiff_engine_reuse_ratio", "Fraction of engine checkouts served from a pool.", st.Engines.ReuseRate)

	gauge("provdiff_cohort_matrices", "Cohort matrices/indexes currently maintained.", float64(st.CohortMatrices))
	gauge("provdiff_metricindex_indexed_cohorts", "Cohorts currently answered from the metric index.", float64(st.MetricIndex.IndexedCohorts))
	counter("provdiff_metricindex_exact_diffs_total", "Pairs exactly differenced by cohort maintenance and queries.", float64(st.MetricIndex.ExactDiffs))
	counter("provdiff_metricindex_pruned_pairs_total", "Pairs eliminated by a metric lower bound before the exact diff.", float64(st.MetricIndex.PrunedPairs))

	gauge("provdiff_live_runs", "Still-executing runs currently tracked.", float64(liveRuns))
	gauge("provdiff_watch_subscribers", "Clients currently attached to /watch streams.", float64(watchSubs))
	counter("provdiff_watch_dropped_total", "Drift updates dropped on slow watch subscribers.", float64(watchDropped))

	if shards := st.Storage.Shards; len(shards) > 0 {
		shardFamily := func(name, help, typ string, v func(sh store.ShardStats) float64) {
			p.family(name, help, typ)
			for _, sh := range shards {
				p.value(name, fmt.Sprintf("shard=%q,kind=%q", strconv.Itoa(sh.Index), sh.Kind), v(sh))
			}
		}
		shardFamily("provdiff_storage_shard_specs", "Specifications placed on each storage shard.", "gauge",
			func(sh store.ShardStats) float64 { return float64(sh.Specs) })
		shardFamily("provdiff_storage_shard_reads_total", "Blob reads served by each storage shard.", "counter",
			func(sh store.ShardStats) float64 { return float64(sh.Reads) })
		shardFamily("provdiff_storage_shard_writes_total", "Blob writes committed on each storage shard.", "counter",
			func(sh store.ShardStats) float64 { return float64(sh.Writes) })
		shardFamily("provdiff_storage_shard_appends_total", "Blob appends committed on each storage shard.", "counter",
			func(sh store.ShardStats) float64 { return float64(sh.Appends) })
		shardFamily("provdiff_storage_shard_read_bytes_total", "Bytes read from each storage shard.", "counter",
			func(sh store.ShardStats) float64 { return float64(sh.BytesRead) })
		shardFamily("provdiff_storage_shard_written_bytes_total", "Bytes written to each storage shard.", "counter",
			func(sh store.ShardStats) float64 { return float64(sh.BytesWritten) })
	}

	return p.b.String()
}

// handleMetrics serves the Prometheus exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := s.metrics.render(s.Stats(), s.watch.subscribers(), s.watch.droppedCount(), s.st.LiveCount())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = fmt.Fprint(w, doc)
}
