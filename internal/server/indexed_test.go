package server

import (
	"fmt"
	"testing"
)

// The indexed-analytics endpoint tests run a server whose index
// threshold is tiny, so a handful of runs exercises the metric-index
// path that production only reaches at 256+ runs.

func indexedServer(t *testing.T, n int) *Server {
	t.Helper()
	srv, _ := seedServer(t, n, Options{CacheSize: 16, IndexThreshold: 4, Landmarks: 2})
	return srv
}

// TestIndexedNearestMatchesExact: the indexed /nearest answer equals
// the ?exact=1 dense answer byte for byte, and the payload advertises
// which path served it.
func TestIndexedNearestMatchesExact(t *testing.T) {
	srv := indexedServer(t, 8)
	var idx, exact nearestPayload
	if rec := do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=3", nil, &idx); rec.Code != 200 {
		t.Fatalf("nearest = %d %q", rec.Code, rec.Body.String())
	}
	if !idx.Indexed {
		t.Fatalf("cohort of 8 with threshold 4 should answer indexed: %+v", idx)
	}
	if rec := do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=3&exact=1", nil, &exact); rec.Code != 200 {
		t.Fatalf("exact nearest = %d %q", rec.Code, rec.Body.String())
	}
	if exact.Indexed {
		t.Fatalf("?exact=1 should force the dense path: %+v", exact)
	}
	if len(idx.Neighbors) != 3 || len(exact.Neighbors) != 3 {
		t.Fatalf("neighbor counts: %d vs %d", len(idx.Neighbors), len(exact.Neighbors))
	}
	for i := range idx.Neighbors {
		if idx.Neighbors[i] != exact.Neighbors[i] {
			t.Fatalf("neighbor %d diverged: indexed %+v, exact %+v", i, idx.Neighbors[i], exact.Neighbors[i])
		}
	}

	// Exact responses bypass the result LRU in both directions: the
	// indexed answer was cached under the plain key, the exact answer
	// is never cached.
	var again nearestPayload
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=3", nil, &again)
	if !again.Cached {
		t.Fatal("indexed answer should be served from cache on repeat")
	}
	var exact2 nearestPayload
	do(t, srv, "GET", "/specs/pa/nearest?run=r0&k=3&exact=1", nil, &exact2)
	if exact2.Cached {
		t.Fatal("?exact=1 must not hit the result cache")
	}
}

// TestIndexedOutliersMatchesExact: scores and order are byte-identical;
// only the mean_all context differs (indexed omits it).
func TestIndexedOutliersMatchesExact(t *testing.T) {
	srv := indexedServer(t, 8)
	var idx, exact outliersPayload
	if rec := do(t, srv, "GET", "/specs/pa/outliers?k=2", nil, &idx); rec.Code != 200 {
		t.Fatalf("outliers = %d %q", rec.Code, rec.Body.String())
	}
	if rec := do(t, srv, "GET", "/specs/pa/outliers?k=2&exact=1", nil, &exact); rec.Code != 200 {
		t.Fatalf("exact outliers = %d %q", rec.Code, rec.Body.String())
	}
	if !idx.Indexed || exact.Indexed {
		t.Fatalf("indexed flags: %v %v", idx.Indexed, exact.Indexed)
	}
	if len(idx.Outliers) != 8 || len(exact.Outliers) != 8 {
		t.Fatalf("outlier counts: %d vs %d", len(idx.Outliers), len(exact.Outliers))
	}
	sawMeanAll := false
	for i := range idx.Outliers {
		if idx.Outliers[i].Run != exact.Outliers[i].Run || idx.Outliers[i].Score != exact.Outliers[i].Score {
			t.Fatalf("rank %d diverged: indexed %+v, exact %+v", i, idx.Outliers[i], exact.Outliers[i])
		}
		if idx.Outliers[i].MeanAll != 0 {
			t.Fatalf("indexed mean_all should be omitted: %+v", idx.Outliers[i])
		}
		if exact.Outliers[i].MeanAll != 0 {
			sawMeanAll = true
		}
	}
	if !sawMeanAll {
		t.Fatal("exact path lost its mean_all context")
	}
}

// TestIndexedClusterEndpoint: past the threshold /cluster answers by
// sampled k-medoids — valid partition, zero silhouette, indexed flag
// set — while ?exact=1 still runs full PAM.
func TestIndexedClusterEndpoint(t *testing.T) {
	srv := indexedServer(t, 8)
	var p clusterPayload
	if rec := do(t, srv, "GET", "/specs/pa/cluster?k=2&seed=5", nil, &p); rec.Code != 200 {
		t.Fatalf("cluster = %d %q", rec.Code, rec.Body.String())
	}
	if !p.Indexed || p.Silhouette != 0 || p.K != 2 || len(p.Clusters) != 2 {
		t.Fatalf("indexed cluster payload: %+v", p)
	}
	seen := map[string]bool{}
	for _, c := range p.Clusters {
		found := false
		for _, r := range c.Runs {
			seen[r] = true
			if r == c.Medoid {
				found = true
			}
		}
		if !found {
			t.Fatalf("medoid %s outside its cluster", c.Medoid)
		}
	}
	if len(seen) != 8 {
		t.Fatalf("partition covers %d of 8 runs", len(seen))
	}
	var ex clusterPayload
	if rec := do(t, srv, "GET", "/specs/pa/cluster?k=2&seed=5&exact=1", nil, &ex); rec.Code != 200 {
		t.Fatalf("exact cluster = %d %q", rec.Code, rec.Body.String())
	}
	if ex.Indexed {
		t.Fatalf("exact cluster should be dense: %+v", ex)
	}
	// Sampled and exact objectives agree closely on a tiny cohort
	// (the sample covers everything, only seeding differs).
	if p.Cost_ > ex.Cost_*1.05+1e-9 {
		t.Fatalf("sampled objective %g strays beyond 5%% of exact %g", p.Cost_, ex.Cost_)
	}
}

// TestIndexedInvalidation: run imports and deletions keep the indexed
// cohort honest, exactly like the dense one.
func TestIndexedInvalidation(t *testing.T) {
	srv := indexedServer(t, 6)
	var before outliersPayload
	do(t, srv, "GET", "/specs/pa/outliers?k=2", nil, &before)
	if !before.Indexed || len(before.Outliers) != 6 {
		t.Fatalf("seed cohort: %+v", before)
	}
	// Import one more run, then delete two: the cohort shrinks to 5.
	if rec := do(t, srv, "POST", "/specs/pa/runs/extra", encodeRun(t, srv.st, 99), nil); rec.Code != 200 && rec.Code != 201 {
		t.Fatalf("import = %d", rec.Code)
	}
	var grown outliersPayload
	do(t, srv, "GET", "/specs/pa/outliers?k=2", nil, &grown)
	if len(grown.Outliers) != 7 || grown.Cached {
		t.Fatalf("after import: %+v", grown)
	}
	for _, name := range []string{"r0", "extra"} {
		if rec := do(t, srv, "DELETE", "/specs/pa/runs/"+name, nil, nil); rec.Code != 200 && rec.Code != 204 {
			t.Fatalf("delete %s = %d", name, rec.Code)
		}
	}
	var after outliersPayload
	do(t, srv, "GET", "/specs/pa/outliers?k=2", nil, &after)
	if len(after.Outliers) != 5 || after.Cached {
		t.Fatalf("after deletes: %+v", after)
	}
	for _, o := range after.Outliers {
		if o.Run == "r0" || o.Run == "extra" {
			t.Fatalf("deleted run still scored: %+v", o)
		}
	}
}

// TestMetricIndexStats: the /stats payload aggregates index counters
// across live cohorts.
func TestMetricIndexStats(t *testing.T) {
	srv := indexedServer(t, 8)
	for i := 0; i < 3; i++ {
		do(t, srv, "GET", fmt.Sprintf("/specs/pa/nearest?run=r%d&k=3", i), nil, nil)
	}
	st := srv.Stats()
	if st.MetricIndex.IndexedCohorts < 1 {
		t.Fatalf("no indexed cohorts reported: %+v", st.MetricIndex)
	}
	if st.MetricIndex.ExactDiffs <= 0 {
		t.Fatalf("exact diff counter flat: %+v", st.MetricIndex)
	}
	if st.MetricIndex.PrunedPairs < 0 {
		t.Fatalf("negative pruned counter: %+v", st.MetricIndex)
	}
}
