package server

// Legacy-alias parity: every pre-/v1 route must answer byte-identically
// to its /v1 successor (same handler, same body, same status) while
// carrying the deprecation headers. The test is driven off routeTable()
// itself, so a route added with a Legacy alias but no parity case here
// fails the coverage check rather than silently shipping unverified.

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"
)

func TestV1LegacyParity(t *testing.T) {
	srv, st := seedEvolveServer(t, 3, Options{CacheSize: 16})
	runBody := encodeRun(t, st, 900)
	tarBody, _ := bulkTar(t, st, 2, 901, "pb")
	purge := func(t *testing.T) { srv.cache.purge() }
	reimport := func(name string) func(*testing.T) {
		return func(t *testing.T) {
			t.Helper()
			if rec := do(t, srv, "POST", "/v1/specs/pa/runs/"+name, runBody, nil); rec.Code != http.StatusCreated {
				t.Fatalf("seed %s = %d %q", name, rec.Code, rec.Body.String())
			}
		}
	}

	cases := []struct {
		key      string // Method + " " + legacy pattern, for the coverage check
		method   string
		legacy   string // concrete legacy URL
		v1       string // concrete /v1 URL
		body     []byte
		prep     func(*testing.T) // runs before EACH arm
		skipBody bool             // response carries request-time state (uptime)
	}{
		{key: "GET /specs", method: "GET", legacy: "/specs", v1: "/v1/specs"},
		{key: "GET /specs/{spec}/runs", method: "GET", legacy: "/specs/pa/runs", v1: "/v1/specs/pa/runs"},
		{key: "POST /specs/{spec}/runs", method: "POST", legacy: "/specs/pa/runs?name=px", v1: "/v1/specs/pa/runs?name=px", body: runBody},
		{key: "POST /specs/{spec}/runs/{run}", method: "POST", legacy: "/specs/pa/runs/py", v1: "/v1/specs/pa/runs/py", body: runBody},
		{key: "POST /specs/{spec}/runs:bulk", method: "POST", legacy: "/specs/pa/runs:bulk", v1: "/v1/specs/pa/runs:bulk", body: tarBody},
		{key: "GET /specs/{spec}/export", method: "GET", legacy: "/specs/pa/export", v1: "/v1/specs/pa/export"},
		{key: "DELETE /specs/{spec}/runs/{run}", method: "DELETE", legacy: "/specs/pa/runs/del0", v1: "/v1/specs/pa/runs/del0", prep: reimport("del0")},
		{key: "GET /diff/{spec}/{a}/{b}", method: "GET", legacy: "/diff/pa/r0/r1", v1: "/v1/specs/pa/diff/r0/r1", prep: purge},
		{key: "GET /diff/{spec}/{a}/{b}/svg", method: "GET", legacy: "/diff/pa/r0/r1/svg", v1: "/v1/specs/pa/diff/r0/r1/svg", prep: purge},
		{key: "GET /cohort/{spec}", method: "GET", legacy: "/cohort/pa", v1: "/v1/specs/pa/cohort", prep: purge},
		{key: "GET /specs/{a}/evolve/{b}", method: "GET", legacy: "/specs/pa/evolve/pa-v2", v1: "/v1/specs/pa/evolve/pa-v2", prep: purge},
		{key: "GET /specs/{a}/evolve/{b}/svg", method: "GET", legacy: "/specs/pa/evolve/pa-v2/svg", v1: "/v1/specs/pa/evolve/pa-v2/svg", prep: purge},
		{key: "GET /specs/{spec}/cluster", method: "GET", legacy: "/specs/pa/cluster?k=2&seed=3", v1: "/v1/specs/pa/cluster?k=2&seed=3", prep: purge},
		{key: "GET /specs/{spec}/outliers", method: "GET", legacy: "/specs/pa/outliers?k=2", v1: "/v1/specs/pa/outliers?k=2", prep: purge},
		{key: "GET /specs/{spec}/nearest", method: "GET", legacy: "/specs/pa/nearest?run=r0&k=2", v1: "/v1/specs/pa/nearest?run=r0&k=2", prep: purge},
		{key: "GET /metrics", method: "GET", legacy: "/metrics", v1: "/v1/metrics", skipBody: true},
		{key: "GET /stats", method: "GET", legacy: "/stats", v1: "/v1/stats", skipBody: true},
		{key: "GET /healthz", method: "GET", legacy: "/healthz", v1: "/v1/healthz"},
	}

	covered := make(map[string]bool, len(cases))
	for _, c := range cases {
		covered[c.key] = true
		t.Run(c.key, func(t *testing.T) {
			if c.prep != nil {
				c.prep(t)
			}
			lrec := do(t, srv, c.method, c.legacy, c.body, nil)
			if c.prep != nil {
				c.prep(t)
			}
			vrec := do(t, srv, c.method, c.v1, c.body, nil)

			if lrec.Code != vrec.Code {
				t.Errorf("status: legacy %d vs v1 %d (%q / %q)", lrec.Code, vrec.Code, lrec.Body.String(), vrec.Body.String())
			}
			if !c.skipBody && !bytes.Equal(lrec.Body.Bytes(), vrec.Body.Bytes()) {
				t.Errorf("bodies differ:\nlegacy: %q\nv1:     %q", truncate(lrec.Body.String()), truncate(vrec.Body.String()))
			}
			if got := lrec.Header().Get("Deprecation"); got != "true" {
				t.Errorf("legacy Deprecation header = %q, want \"true\"", got)
			}
			wantLink := fmt.Sprintf("<%s>; rel=%q", strings.SplitN(c.v1, "?", 2)[0], "successor-version")
			if got := lrec.Header().Get("Link"); got != wantLink {
				t.Errorf("legacy Link header = %q, want %q", got, wantLink)
			}
			if got := vrec.Header().Get("Deprecation"); got != "" {
				t.Errorf("v1 response carries Deprecation header %q", got)
			}
			if got := vrec.Header().Get("Link"); got != "" {
				t.Errorf("v1 response carries Link header %q", got)
			}
		})
	}

	// Coverage: every legacy alias in the route table has a parity
	// case, and every case names a real table row.
	table := make(map[string]bool)
	for _, rt := range srv.routeTable() {
		if rt.Legacy == "" {
			continue
		}
		key := rt.Method + " " + rt.Legacy
		table[key] = true
		if !covered[key] {
			t.Errorf("legacy route %s has no parity case", key)
		}
	}
	for key := range covered {
		if !table[key] {
			t.Errorf("parity case %s matches no legacy route in routeTable", key)
		}
	}
}

func truncate(s string) string {
	if len(s) > 300 {
		return s[:300] + "…"
	}
	return s
}

// TestTicketRouteIsV1Only pins the one deliberate asymmetry: the async
// ticket endpoint has no legacy alias.
func TestTicketRouteIsV1Only(t *testing.T) {
	srv, _ := seedServer(t, 0, Options{})
	if rec := do(t, srv, "GET", "/tickets/tdeadbeef", nil, nil); rec.Code != http.StatusNotFound {
		t.Fatalf("legacy /tickets = %d, want 404", rec.Code)
	}
}
