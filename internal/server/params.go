package server

// Consolidated query-parameter decoding. Every handler builds one
// reqQuery, pulls its typed parameters off it, and finishes with
// valid(w): the first malformed parameter — whichever handler it hits
// — produces the same 400 envelope naming the parameter. Before this
// helper each handler formatted its own errors, and the same bad ?k=
// read differently on /cluster than on /outliers.

import (
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/cli"
	"repro/internal/cost"
)

type reqQuery struct {
	s   *Server
	r   *http.Request
	err error
}

// query starts decoding the request's query parameters.
func (s *Server) query(r *http.Request) *reqQuery {
	return &reqQuery{s: s, r: r}
}

// fail records the first decode error; later parameters still return
// their defaults so handlers can decode unconditionally.
func (q *reqQuery) fail(err error) {
	if q.err == nil {
		q.err = err
	}
}

// valid finishes decoding: a recorded error writes the 400 envelope
// and reports false.
func (q *reqQuery) valid(w http.ResponseWriter) bool {
	if q.err != nil {
		q.s.httpError(w, q.err, http.StatusBadRequest)
		return false
	}
	return true
}

// cost decodes ?cost= (unit | length | power:EPS; default unit).
func (q *reqQuery) cost() cost.Model {
	name := q.r.URL.Query().Get("cost")
	if name == "" {
		name = "unit"
	}
	m, err := cli.ParseCost(name)
	if err != nil {
		q.fail(fmt.Errorf("cost: %w", err))
		return cost.Unit{}
	}
	return m
}

// intVal decodes an optional integer parameter (?k=, ?seed=).
func (q *reqQuery) intVal(name string, def int) int {
	v := q.r.URL.Query().Get(name)
	if v == "" {
		return def
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		q.fail(fmt.Errorf("%s: %q is not an integer", name, v))
		return def
	}
	return n
}

// seed decodes ?seed= (default 1).
func (q *reqQuery) seed() int64 {
	return int64(q.intVal("seed", 1))
}

// name decodes a required name-valued parameter (?run=, ?name=),
// validated at the boundary.
func (q *reqQuery) name(param string) string {
	v := q.r.URL.Query().Get(param)
	if err := cli.ValidateName(v); err != nil {
		q.fail(fmt.Errorf("%s: %w", param, err))
		return ""
	}
	return v
}

// optionalName decodes a name-valued parameter that may be absent
// (?across=); when present it is validated like name.
func (q *reqQuery) optionalName(param string) string {
	v := q.r.URL.Query().Get(param)
	if v == "" {
		return ""
	}
	if err := cli.ValidateName(v); err != nil {
		q.fail(fmt.Errorf("%s: %w", param, err))
		return ""
	}
	return v
}

// flag decodes a presence-style boolean parameter (?exact=1,
// ?stream=1, ?async=1): any non-empty value is true.
func (q *reqQuery) flag(name string) bool {
	return q.r.URL.Query().Get(name) != ""
}
