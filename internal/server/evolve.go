package server

import (
	"fmt"
	"io"
	"net/http"
	"sort"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/view"
)

// Workflow-evolution endpoints: spec-to-spec differencing and
// cross-version run comparison.
//
//	GET /specs/{a}/evolve/{b}         edit mapping between two spec versions
//	GET /specs/{a}/evolve/{b}/svg     side-by-side overlay (deleted red, inserted green)
//	GET /diff/{spec}/{a}/{b}?across=B cross-version run diff: run a of {spec}
//	                                  vs run b of lineage-linked spec B
//
// Mapping payloads are cached like diff payloads; entries are keyed by
// both specification names and invalidated when either side's runs
// change (mappings themselves depend only on the immutable specs, so
// run churn never stales them — the cache entries exist to skip the
// recompute of the JSON body).

type moduleAlignment struct {
	ASrc string `json:"a_src"`
	ADst string `json:"a_dst"`
	AKey int    `json:"a_key,omitempty"`
	BSrc string `json:"b_src"`
	BDst string `json:"b_dst"`
	BKey int    `json:"b_key,omitempty"`
	// Renamed marks survived modules whose terminals changed.
	Renamed bool `json:"renamed,omitempty"`
}

type evolvePayload struct {
	SpecA            string            `json:"spec_a"`
	SpecB            string            `json:"spec_b"`
	Linked           bool              `json:"lineage_linked"`
	Cost             float64           `json:"mapping_cost"`
	ANodes           int               `json:"a_nodes"`
	BNodes           int               `json:"b_nodes"`
	MappedNodes      int               `json:"mapped_nodes"`
	MappedModules    int               `json:"mapped_modules"`
	RenamedModules   int               `json:"renamed_modules"`
	DeletedModules   int               `json:"deleted_modules"`
	InsertedModules  int               `json:"inserted_modules"`
	RetypedInternals int               `json:"retyped_internals"`
	Modules          []moduleAlignment `json:"modules"`
	Cached           bool              `json:"cached"`
}

// handleEvolve serves the edit mapping between two specification
// versions. Unlike /diff?across, it answers for ANY pair of stored
// specs — lineage-linked pairs use (and persist) the recorded
// per-step mappings, unlinked pairs are mapped directly.
func (s *Server) handleEvolve(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "a", "b")
	if !ok {
		return
	}
	key := cacheKey{spec: ns[0], spec2: ns[1], kind: kindEvolve}
	if v, ok := s.cache.get(key); ok {
		p := v.(evolvePayload)
		p.Cached = true
		writeJSON(w, p)
		return
	}
	gen := s.cache.generation()
	m, linked, err := s.st.SpecMapping(ns[0], ns[1])
	if err != nil {
		s.storeError(w, err)
		return
	}
	st := m.Stats()
	p := evolvePayload{
		SpecA:            ns[0],
		SpecB:            ns[1],
		Linked:           linked,
		Cost:             m.Cost,
		ANodes:           st.ANodes,
		BNodes:           st.BNodes,
		MappedNodes:      st.Mapped,
		MappedModules:    st.MappedModules,
		RenamedModules:   st.RenamedModules,
		DeletedModules:   st.DeletedModules,
		InsertedModules:  st.InsertedModules,
		RetypedInternals: st.RetypedInternals,
		Modules:          make([]moduleAlignment, 0, st.MappedModules),
	}
	for a, b := range m.MappedModules() {
		al := moduleAlignment{
			ASrc: string(a.From), ADst: string(a.To), AKey: a.Key,
			BSrc: string(b.From), BDst: string(b.To), BKey: b.Key,
		}
		al.Renamed = al.ASrc != al.BSrc || al.ADst != al.BDst
		p.Modules = append(p.Modules, al)
	}
	sortModules(p.Modules)
	s.cache.addIfGen(key, p, gen)
	writeJSON(w, p)
}

func sortModules(ms []moduleAlignment) {
	sort.Slice(ms, func(i, j int) bool { return lessModule(ms[i], ms[j]) })
}

func lessModule(a, b moduleAlignment) bool {
	if a.ASrc != b.ASrc {
		return a.ASrc < b.ASrc
	}
	if a.ADst != b.ADst {
		return a.ADst < b.ADst
	}
	// Parallel modules share terminals; the key makes the order total
	// so payloads are byte-identical across restarts.
	return a.AKey < b.AKey
}

// handleEvolveSVG serves the side-by-side spec overlay: version A with
// deleted modules in red, version B with inserted modules in green.
func (s *Server) handleEvolveSVG(w http.ResponseWriter, r *http.Request) {
	ns, ok := s.names(w, r, "a", "b")
	if !ok {
		return
	}
	key := cacheKey{spec: ns[0], spec2: ns[1], kind: kindEvolve + "-svg"}
	if v, ok := s.cache.get(key); ok {
		w.Header().Set("Content-Type", "image/svg+xml")
		io.WriteString(w, v.(string))
		return
	}
	gen := s.cache.generation()
	m, linked, err := s.st.SpecMapping(ns[0], ns[1])
	if err != nil {
		s.storeError(w, err)
		return
	}
	keptA := make(map[graph.Edge]bool)
	keptB := make(map[graph.Edge]bool)
	for a, b := range m.MappedModules() {
		keptA[a] = true
		keptB[b] = true
	}
	caption := fmt.Sprintf("spec evolution cost %g", m.Cost)
	if linked {
		caption += " (lineage-linked)"
	}
	svg := view.SpecPairSVG(m.A, m.B, keptA, keptB, ns[0], ns[1], caption)
	s.cache.addIfGen(key, svg, gen)
	w.Header().Set("Content-Type", "image/svg+xml")
	io.WriteString(w, svg)
}

// --- cross-version run diff -----------------------------------------

type xdiffPayload struct {
	SpecA          string  `json:"spec_a"`
	RunA           string  `json:"run_a"`
	SpecB          string  `json:"spec_b"`
	RunB           string  `json:"run_b"`
	Cost           string  `json:"cost"`
	Distance       float64 `json:"distance"`
	EngineDistance float64 `json:"engine_distance"`
	DroppedCost    float64 `json:"dropped_cost"`
	InsertedCost   float64 `json:"inserted_cost"`
	MappingCost    float64 `json:"mapping_cost"`
	ProjectedNodes int     `json:"projected_nodes"`
	ProjectedEdges int     `json:"projected_edges"`
	Cached         bool    `json:"cached"`
}

// crossDiff serves /diff/{spec}/{a}/{b}?across={spec2}: run a of
// {spec} compared with run b of {spec2}. The two specifications must
// be lineage-linked — registered through PutSpecVersion / the
// put-version CLI — so the comparison runs under the recorded
// evolution mapping rather than an arbitrary guess.
func (s *Server) crossDiff(w http.ResponseWriter, specA, runA, runB, across string, m cost.Model) {
	if err := validateAcross(across); err != nil {
		s.httpError(w, err, http.StatusBadRequest)
		return
	}
	key := cacheKey{spec: specA, runA: runA, runB: runB, cost: m.Name(), kind: kindCross, spec2: across}
	if v, ok := s.cache.get(key); ok {
		p := v.(xdiffPayload)
		p.Cached = true
		writeJSON(w, p)
		return
	}
	// Reject unknown and unlinked pairs before any expensive work: the
	// spec load is cached and the linkage walk reads only lineage
	// records, so probing arbitrary ?across= names never computes (or
	// caches) a mapping.
	if _, err := s.st.LoadSpec(across); err != nil {
		s.storeError(w, err)
		return
	}
	linked, err := s.st.Linked(specA, across)
	if err != nil {
		s.storeError(w, err)
		return
	}
	if !linked {
		s.httpError(w, fmt.Errorf("specifications %q and %q are not lineage-linked; register versions with put-version before cross-diffing", specA, across), http.StatusBadRequest)
		return
	}
	gen := s.cache.generation()
	eng := s.pools.get(across, m)
	res, _, err := s.st.CrossDiffWith(eng, specA, runA, across, runB, m)
	s.pools.put(across, m, eng)
	if err != nil {
		s.storeError(w, err)
		return
	}
	p := xdiffPayload{
		SpecA:          specA,
		RunA:           runA,
		SpecB:          across,
		RunB:           runB,
		Cost:           m.Name(),
		Distance:       res.Distance,
		EngineDistance: res.EngineDistance,
		DroppedCost:    res.Projection.DroppedCost,
		InsertedCost:   res.Projection.InsertedCost,
		MappingCost:    res.Mapping.Cost,
		ProjectedNodes: res.Projected.NumNodes(),
		ProjectedEdges: res.Projected.NumEdges(),
	}
	s.cache.addIfGen(key, p, gen)
	writeJSON(w, p)
}

func validateAcross(name string) error {
	if err := store.ValidateName(name); err != nil {
		return fmt.Errorf("across: %w", err)
	}
	return nil
}
