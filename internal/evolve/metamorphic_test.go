package evolve

// Metamorphic property suite over the random generator: instead of
// comparing against hand-computed answers, these tests apply *known*
// mutation scripts to seeded random specifications and check relations
// the spec-evolution distance must satisfy whatever the inputs are:
//
//   - bound:     the recovered mapping cost never exceeds the cost of
//                the script that actually produced version B from
//                version A (the engine may find a cheaper explanation,
//                never a costlier one);
//   - identity:  diff(s, s) = 0 with a total mapping;
//   - symmetry:  diff(a, b) = diff(b, a), with the reverse mapping of
//                the same size;
//   - no-op projection: pushing a random run through the identity
//                mapping changes no run-diff distance.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/spec"
)

// scriptBound prices a mutation script under the spec edit costs — the
// metamorphic upper bound on the recovered mapping cost.
func scriptBound(muts []*gen.Mutation, c Costs) float64 {
	total := 0.0
	for _, m := range muts {
		total += float64(m.Renames)*c.Rename + float64(m.InsLeaves)*c.Leaf + float64(m.InsNodes)*c.Node
	}
	return total
}

func randomSpecs(t *testing.T, seed int64, n int) []*spec.Spec {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]*spec.Spec, 0, n)
	for len(out) < n {
		cfg := gen.SpecConfig{
			Edges:       3 + rng.Intn(18),
			SeriesRatio: []float64{0.5, 1, 2, 4}[rng.Intn(4)],
			Forks:       rng.Intn(3),
			Loops:       rng.Intn(2),
		}
		sp, err := gen.RandomSpec(cfg, rng)
		if err != nil {
			t.Fatalf("RandomSpec(%+v): %v", cfg, err)
		}
		out = append(out, sp)
	}
	return out
}

func TestMetamorphicMutationBound(t *testing.T) {
	c := DefaultCosts()
	eng := NewEngine(c)
	rng := rand.New(rand.NewSource(42))
	checked := 0
	for _, sp := range randomSpecs(t, 1, 40) {
		muts, err := gen.Mutate(sp, 1+rng.Intn(4), rng)
		if err != nil {
			t.Fatal(err)
		}
		mutated := muts[len(muts)-1].Spec
		m, err := eng.Diff(sp, mutated)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("mutated mapping invalid: %v", err)
		}
		bound := scriptBound(muts, c)
		if m.Cost > bound+eps {
			names := make([]string, len(muts))
			for i, mu := range muts {
				names[i] = mu.Name
			}
			t.Errorf("mapping cost %g exceeds script bound %g (script %v, spec %d edges)",
				m.Cost, bound, names, sp.G.NumEdges())
		}
		if m.Cost < -eps {
			t.Errorf("negative mapping cost %g", m.Cost)
		}
		checked++
	}
	if checked < 40 {
		t.Fatalf("only %d scripts checked", checked)
	}
}

// TestMetamorphicPerMutatorBound pins the bound per mutation kind, so
// a regression in one mutator's accounting cannot hide behind the
// others.
func TestMetamorphicPerMutatorBound(t *testing.T) {
	c := DefaultCosts()
	eng := NewEngine(c)
	rng := rand.New(rand.NewSource(7))
	applied := map[string]int{}
	for _, sp := range randomSpecs(t, 2, 30) {
		for _, mutate := range gen.Mutators {
			mut, err := mutate(sp, rng)
			if err != nil {
				continue // mutation does not apply to this shape
			}
			m, err := eng.Diff(sp, mut.Spec)
			if err != nil {
				t.Fatal(err)
			}
			bound := scriptBound([]*gen.Mutation{mut}, c)
			if m.Cost > bound+eps {
				t.Errorf("%s: mapping cost %g exceeds bound %g (spec %d edges)",
					mut.Name, m.Cost, bound, sp.G.NumEdges())
			}
			applied[mut.Name]++
		}
	}
	for _, name := range []string{"subdivide-edge", "add-parallel-edge", "duplicate-parallel-branch"} {
		if applied[name] == 0 {
			t.Errorf("mutator %s never applied", name)
		}
	}
}

func TestMetamorphicIdentity(t *testing.T) {
	eng := NewEngine(DefaultCosts())
	for _, sp := range randomSpecs(t, 3, 25) {
		m, err := eng.Diff(sp, sp)
		if err != nil {
			t.Fatal(err)
		}
		if m.Cost != 0 {
			t.Errorf("diff(s, s) = %g on %d-edge spec, want 0", m.Cost, sp.G.NumEdges())
		}
		if len(m.Pairs) != sp.Tree.CountNodes() {
			t.Errorf("identity mapping not total: %d of %d nodes", len(m.Pairs), sp.Tree.CountNodes())
		}
	}
}

func TestMetamorphicSymmetry(t *testing.T) {
	eng := NewEngine(DefaultCosts())
	rng := rand.New(rand.NewSource(9))
	specs := randomSpecs(t, 4, 24)
	for i := 0; i < len(specs); i += 2 {
		a, b := specs[i], specs[i+1]
		if rng.Intn(2) == 0 {
			// Half the pairs are mutation-related, half unrelated.
			muts, err := gen.Mutate(a, 1+rng.Intn(3), rng)
			if err != nil {
				t.Fatal(err)
			}
			b = muts[len(muts)-1].Spec
		}
		ab, err := eng.Diff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		ba, err := eng.Diff(b, a)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(ab.Cost-ba.Cost) > eps {
			t.Errorf("asymmetric: diff(a,b)=%g, diff(b,a)=%g (%d vs %d edges)",
				ab.Cost, ba.Cost, a.G.NumEdges(), b.G.NumEdges())
		}
		// Mapping *sizes* may differ between tied optimal solutions;
		// both directions must still be structurally valid.
		if err := ab.Validate(); err != nil {
			t.Error(err)
		}
		if err := ba.Validate(); err != nil {
			t.Error(err)
		}
	}
}

// TestMetamorphicNoOpProjection pins the anchor property of
// cross-version comparison: projecting a random run through the
// identity mapping must not change any run-diff distance, under any
// cost model, and must itself cost nothing.
func TestMetamorphicNoOpProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	models := []cost.Model{cost.Unit{}, cost.Length{}, cost.Power{Epsilon: 0.5}}
	for _, sp := range randomSpecs(t, 5, 12) {
		ident := Identity(sp)
		params := gen.RunParams{ProbP: 0.85, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}
		r1, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, cm := range models {
			projected, proj, err := ProjectRun(ident, r1, cm)
			if err != nil {
				t.Fatal(err)
			}
			if proj.Cost() != 0 {
				t.Fatalf("no-op projection cost %g, want 0", proj.Cost())
			}
			if err := projected.Validate(); err != nil {
				t.Fatalf("no-op projection invalid: %v", err)
			}
			want, err := core.Distance(r1, r2, cm)
			if err != nil {
				t.Fatal(err)
			}
			got, err := core.Distance(projected, r2, cm)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > eps {
				t.Errorf("%s: distance through no-op projection %g, want %g", cm.Name(), got, want)
			}
			// The self-distance of the projection is zero: the
			// projected run is the same run up to instance naming.
			self, err := core.Distance(projected, r1, cm)
			if err == nil && math.Abs(self) > eps {
				t.Errorf("%s: projected run is %g away from its source", cm.Name(), self)
			}
		}
	}
}
