package evolve

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/wfrun"
)

// benchVersions builds the gated benchmark fixture: the PA catalog
// workflow, a three-mutation evolution of it, and one run under each
// version — deterministic, so the perf gate compares like with like.
func benchVersions(b *testing.B) (*spec.Spec, *spec.Spec, *wfrun.Run, *wfrun.Run) {
	b.Helper()
	v1, err := gen.Catalog("PA")
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	muts, err := gen.Mutate(v1, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	v2 := muts[len(muts)-1].Spec
	params := gen.RunParams{ProbP: 0.9, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}
	r1, err := gen.RandomRun(v1, params, rng)
	if err != nil {
		b.Fatal(err)
	}
	r2, err := gen.RandomRun(v2, params, rng)
	if err != nil {
		b.Fatal(err)
	}
	return v1, v2, r1, r2
}

// BenchmarkSpecEvolve gates the spec-to-spec mapping hot path: one
// reused engine differencing the same version pair (the service's
// steady state for /specs/{a}/evolve/{b} on a cache miss).
func BenchmarkSpecEvolve(b *testing.B) {
	v1, v2, _, _ := benchVersions(b)
	eng := NewEngine(DefaultCosts())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := eng.Diff(v1, v2)
		if err != nil {
			b.Fatal(err)
		}
		if m.Cost <= 0 {
			b.Fatal("zero-cost mapping for mutated versions")
		}
	}
}

// BenchmarkCrossVersionDiff gates the full cross-version comparison:
// mapping reuse, run projection through wfrun.Execute, and the run
// diff of the projection on a reused engine.
func BenchmarkCrossVersionDiff(b *testing.B) {
	v1, v2, r1, r2 := benchVersions(b)
	m, err := SpecDiff(v1, v2, DefaultCosts())
	if err != nil {
		b.Fatal(err)
	}
	model := cost.Unit{}
	eng := core.NewEngine(model)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := CrossDiffWith(eng, m, r1, r2, model)
		if err != nil {
			b.Fatal(err)
		}
		if res.Distance < 0 {
			b.Fatal("negative cross distance")
		}
	}
}
