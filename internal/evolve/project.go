package evolve

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// ProjectRun pushes a run of specification version A through a
// SpecMapping into version B's node space, producing a *valid run of
// B* that mirrors r1 wherever the mapping carries structure across:
//
//   - a parallel branch is taken iff the branch's mapped counterpart
//     was executed in r1;
//   - a fork (loop) node mapped to a fork (loop) of A replicates as
//     many copies (iterations) as r1 did, each projected from its
//     corresponding copy;
//   - regions of B with no surviving counterpart (modules inserted by
//     the evolution, or regions r1 simply never executed) are executed
//     with minimal defaults: every parallel branch once, one fork
//     copy, one loop iteration.
//
// Because the projection is built by wfrun.Execute against B, the
// result carries a materialized graph and passes full run validation,
// so the existing run-diff engine, cohort matrices and clustering all
// accept it. The returned Projection prices what the mapping could
// not carry: maximal regions of r1 whose nodes have no image
// (DroppedCost, as deletions) and maximal synthetic regions of the
// projected run (InsertedCost, as insertions), both under the given
// run cost model.
//
// Projecting through Identity(r1.Spec) reproduces r1 up to parallel
// child order and node-instance naming, with zero projection cost —
// the metamorphic anchor the test suite pins: run-diff distances are
// unchanged by a no-op projection.
func ProjectRun(m *SpecMapping, r1 *wfrun.Run, runCost cost.Model) (*wfrun.Run, *Projection, error) {
	if m == nil || m.A == nil || m.B == nil {
		return nil, nil, fmt.Errorf("evolve: nil mapping")
	}
	if r1 == nil || r1.Spec != m.A {
		return nil, nil, fmt.Errorf("evolve: run does not belong to the mapping's source specification")
	}
	pj := &projector{m: m, consumed: make(map[*sptree.Node]bool)}
	plan := pj.plan(m.B.Tree, r1.Tree)
	dec := newPlanDecider(plan)
	out, err := wfrun.Execute(m.B, dec)
	if err != nil {
		return nil, nil, fmt.Errorf("evolve: projection produced an invalid run: %w", err)
	}
	proj := &Projection{}
	proj.priceDropped(r1.Tree, pj.consumed, runCost)
	proj.priceInserted(plan, out.Tree, runCost)
	return out, proj, nil
}

// Projection reports what a run projection could not carry through the
// mapping, priced under the run cost model.
type Projection struct {
	// DroppedCost is the total deletion price of the maximal regions
	// of the source run whose specification nodes have no image.
	DroppedCost float64
	// InsertedCost is the total insertion price of the maximal
	// synthetic regions of the projected run — regions of B the
	// mapping gave no counterpart for, executed with defaults.
	InsertedCost float64
	// DroppedRegions and InsertedRegions count those maximal regions.
	DroppedRegions, InsertedRegions int
}

// Cost is the total projection price.
func (p *Projection) Cost() float64 { return p.DroppedCost + p.InsertedCost }

// priceDropped walks the source run tree and prices every maximal
// subtree containing no consumed node as one deleted region.
func (p *Projection) priceDropped(v *sptree.Node, consumed map[*sptree.Node]bool, m cost.Model) {
	if !p.anyConsumed(v, consumed) {
		p.DroppedCost += core.DeletionCost(v, m)
		p.DroppedRegions++
		return
	}
	for _, c := range v.Children {
		p.priceDropped(c, consumed, m)
	}
}

func (p *Projection) anyConsumed(v *sptree.Node, consumed map[*sptree.Node]bool) bool {
	if consumed[v] {
		return true
	}
	for _, c := range v.Children {
		if p.anyConsumed(c, consumed) {
			return true
		}
	}
	return false
}

// priceInserted walks the plan and the projected run tree in lockstep
// (Execute realizes the plan shape exactly) and prices every maximal
// fully-synthetic plan subtree as one inserted region.
func (p *Projection) priceInserted(pn *planNode, run *sptree.Node, m cost.Model) {
	if !pn.anyBacked() {
		p.InsertedCost += core.DeletionCost(run, m)
		p.InsertedRegions++
		return
	}
	for i, c := range pn.children {
		p.priceInserted(c, run.Children[i], m)
	}
}

// --- plan -----------------------------------------------------------

// planNode is one node of the projected run in planning form: the B
// specification node it instantiates, the children to execute (for P
// nodes, subset[i] is the spec child index of children[i]), and
// whether the node is backed by an instance in the source run.
type planNode struct {
	b        *sptree.Node
	children []*planNode
	subset   []int
	backed   bool
}

func (pn *planNode) anyBacked() bool {
	if pn.backed {
		return true
	}
	for _, c := range pn.children {
		if c.anyBacked() {
			return true
		}
	}
	return false
}

type projector struct {
	m *SpecMapping
	// consumed marks source-run nodes that back a projected node.
	consumed map[*sptree.Node]bool
}

// res finds the first preorder node of u's subtree instantiating the A
// specification node a, or nil.
func res(u *sptree.Node, a *sptree.Node) *sptree.Node {
	if u == nil || a == nil {
		return nil
	}
	var found *sptree.Node
	u.Walk(func(v *sptree.Node) bool {
		if found != nil {
			return false
		}
		if v.Spec == a {
			found = v
			return false
		}
		return true
	})
	return found
}

// subtreeBacked reports whether any node of B subtree cb has a mapped
// counterpart instantiated within source-run context u — the test for
// taking a parallel branch.
func (pj *projector) subtreeBacked(u, cb *sptree.Node) bool {
	if u == nil {
		return false
	}
	backed := false
	cb.Walk(func(x *sptree.Node) bool {
		if backed {
			return false
		}
		if a := pj.m.BtoA(x); a != nil && res(u, a) != nil {
			backed = true
			return false
		}
		return true
	})
	return backed
}

// plan builds the projected execution of B subtree b against source
// run context u (nil = no context, execute defaults).
func (pj *projector) plan(b *sptree.Node, u *sptree.Node) *planNode {
	pn := &planNode{b: b}
	if a := pj.m.BtoA(b); a != nil {
		if t := res(u, a); t != nil {
			u = t
			pn.backed = true
			pj.consumed[t] = true
		} else {
			u = nil
		}
	}
	switch b.Type {
	case sptree.Q:
		// Leaf: nothing to decide.

	case sptree.S:
		for _, cb := range b.Children {
			pn.children = append(pn.children, pj.plan(cb, u))
		}

	case sptree.P:
		if u == nil {
			// Default insertion: every branch once.
			for i, cb := range b.Children {
				pn.subset = append(pn.subset, i)
				pn.children = append(pn.children, pj.plan(cb, nil))
			}
			break
		}
		for i, cb := range b.Children {
			if pj.subtreeBacked(u, cb) {
				pn.subset = append(pn.subset, i)
				pn.children = append(pn.children, pj.plan(cb, u))
			}
		}
		if len(pn.subset) == 0 {
			// The source executed none of the surviving branches; a
			// valid run must still take one.
			pn.subset = []int{0}
			pn.children = []*planNode{pj.plan(b.Children[0], u)}
		}

	case sptree.F, sptree.L:
		cb := b.Children[0]
		if pn.backed && u.Type == b.Type && len(u.Children) > 0 {
			// Replicate the source's copies/iterations, each projected
			// from its own copy.
			for _, uc := range u.Children {
				pn.children = append(pn.children, pj.plan(cb, uc))
			}
		} else {
			pn.children = append(pn.children, pj.plan(cb, u))
		}
	}
	return pn
}

// --- plan-driven decider --------------------------------------------

// planDecider replays a plan through wfrun.Execute. Execute's
// traversal (series children in order, parallel children in subset
// order, fork copies and loop iterations sequentially) visits
// decision points in exactly the plan's preorder, so one FIFO queue
// per specification node suffices.
type planDecider struct {
	subsets map[*sptree.Node][][]int
	counts  map[*sptree.Node][]int
}

func newPlanDecider(plan *planNode) *planDecider {
	d := &planDecider{
		subsets: make(map[*sptree.Node][][]int),
		counts:  make(map[*sptree.Node][]int),
	}
	var walk func(pn *planNode)
	walk = func(pn *planNode) {
		switch pn.b.Type {
		case sptree.P:
			d.subsets[pn.b] = append(d.subsets[pn.b], pn.subset)
		case sptree.F, sptree.L:
			d.counts[pn.b] = append(d.counts[pn.b], len(pn.children))
		}
		for _, c := range pn.children {
			walk(c)
		}
	}
	walk(plan)
	return d
}

func (d *planDecider) ParallelSubset(p *sptree.Node) []int {
	q := d.subsets[p]
	if len(q) == 0 {
		// Execute asked for a decision the plan did not script; take
		// every branch (never happens for plans built against p's own
		// specification tree).
		all := make([]int, len(p.Children))
		for i := range all {
			all[i] = i
		}
		return all
	}
	d.subsets[p] = q[1:]
	return q[0]
}

func (d *planDecider) count(n *sptree.Node) int {
	q := d.counts[n]
	if len(q) == 0 {
		return 1
	}
	d.counts[n] = q[1:]
	return q[0]
}

func (d *planDecider) ForkCopies(f *sptree.Node) int     { return d.count(f) }
func (d *planDecider) LoopIterations(l *sptree.Node) int { return d.count(l) }

// --- cross-version differencing -------------------------------------

// CrossResult is the outcome of comparing runs across specification
// versions.
type CrossResult struct {
	// Mapping is the spec-level alignment the comparison ran under.
	Mapping *SpecMapping
	// Projected is r1 pushed into version B's node space — a valid
	// run of B.
	Projected *wfrun.Run
	// Projection prices what the mapping could not carry.
	Projection *Projection
	// EngineDistance is the ordinary run edit distance between the
	// projected run and r2, both valid runs of B.
	EngineDistance float64
	// Distance is the cross-version distance: EngineDistance plus the
	// projection cost. It is a finite, non-negative dissimilarity —
	// not a metric across versions, since the projection prices
	// spec-forced change separately from data-driven change (which is
	// exactly the question spec evolution asks).
	Distance float64
}

// CrossDiff compares a run of specification version A with a run of
// version B under a spec mapping A → B: r1 is projected into B's node
// space and differenced against r2 with the ordinary run engine, and
// the regions the mapping could not carry are priced as inserts and
// deletes. With an identity mapping it degenerates to the plain run
// edit distance.
func CrossDiff(m *SpecMapping, r1, r2 *wfrun.Run, runCost cost.Model) (*CrossResult, error) {
	return CrossDiffWith(core.NewEngine(runCost), m, r1, r2, runCost)
}

// CrossDiffWith is CrossDiff with a caller-owned run engine (which
// must price with runCost), for service callers that pool engines per
// (specification, cost model).
func CrossDiffWith(eng *core.Engine, m *SpecMapping, r1, r2 *wfrun.Run, runCost cost.Model) (*CrossResult, error) {
	if m == nil {
		return nil, fmt.Errorf("evolve: nil mapping")
	}
	if r2 == nil || r2.Spec != m.B {
		return nil, fmt.Errorf("evolve: target run does not belong to the mapping's target specification")
	}
	projected, proj, err := ProjectRun(m, r1, runCost)
	if err != nil {
		return nil, err
	}
	d, err := eng.Distance(projected, r2)
	if err != nil {
		return nil, err
	}
	return &CrossResult{
		Mapping:        m,
		Projected:      projected,
		Projection:     proj,
		EngineDistance: d,
		Distance:       d + proj.Cost(),
	}, nil
}
