package evolve

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

const eps = 1e-9

func TestIdentityDiffIsZeroAndTotal(t *testing.T) {
	for _, name := range gen.CatalogNames {
		sp, err := gen.Catalog(name)
		if err != nil {
			t.Fatalf("catalog %s: %v", name, err)
		}
		m, err := SpecDiff(sp, sp, DefaultCosts())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if m.Cost != 0 {
			t.Errorf("%s: diff(s, s) = %g, want 0", name, m.Cost)
		}
		if got, want := len(m.Pairs), sp.Tree.CountNodes(); got != want {
			t.Errorf("%s: identity mapping has %d pairs, want total %d", name, got, want)
		}
		for _, p := range m.Pairs {
			if p[0] != p[1] {
				t.Errorf("%s: identity mapping pairs %s[%s..%s] with a different node", name, p[0].Type, p[0].Src, p[0].Dst)
			}
		}
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestSubdivideEdgeKnownCost(t *testing.T) {
	sp := fixtures.Fig2Spec()
	rng := rand.New(rand.NewSource(7))
	mut, err := gen.SubdivideEdge(sp, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultCosts()
	m, err := SpecDiff(sp, mut.Spec, c)
	if err != nil {
		t.Fatal(err)
	}
	bound := c.Rename + c.Leaf + c.Node
	if m.Cost <= 0 || m.Cost > bound+eps {
		t.Errorf("subdivide cost %g, want in (0, %g]", m.Cost, bound)
	}
	st := m.Stats()
	if st.InsertedModules != 1 {
		t.Errorf("subdivide inserted %d modules, want 1", st.InsertedModules)
	}
	if st.DeletedModules != 0 {
		t.Errorf("subdivide deleted %d modules, want 0", st.DeletedModules)
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
}

func TestMappingInvertAndCompose(t *testing.T) {
	sp := fixtures.Fig2Spec()
	rng := rand.New(rand.NewSource(3))
	m1, err := gen.SubdivideEdge(sp, rng)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := gen.AddParallelEdge(m1.Spec, rng)
	if err != nil {
		t.Fatal(err)
	}
	c := DefaultCosts()
	ab, err := SpecDiff(sp, m1.Spec, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := SpecDiff(m1.Spec, m2.Spec, c)
	if err != nil {
		t.Fatal(err)
	}
	inv := ab.Invert()
	if inv.Cost != ab.Cost || len(inv.Pairs) != len(ab.Pairs) {
		t.Errorf("invert changed cost/pairs: %g/%d vs %g/%d", inv.Cost, len(inv.Pairs), ab.Cost, len(ab.Pairs))
	}
	if err := inv.Validate(); err != nil {
		t.Error(err)
	}
	ac, err := Compose(ab, bc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ac.Validate(); err != nil {
		t.Error(err)
	}
	if ac.A != sp || ac.B != m2.Spec {
		t.Error("composed mapping has wrong endpoints")
	}
	// The direct distance never exceeds the composed upper bound.
	direct, err := SpecDiff(sp, m2.Spec, c)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cost > ac.Cost+eps {
		t.Errorf("direct cost %g exceeds composed bound %g", direct.Cost, ac.Cost)
	}
	if _, err := Compose(bc, ab); err == nil {
		t.Error("compose with mismatched endpoints succeeded")
	}
}

func TestDiffRejectsBadCosts(t *testing.T) {
	sp := fixtures.Fig2Spec()
	if _, err := SpecDiff(sp, sp, Costs{}); err == nil {
		t.Error("zero costs accepted")
	}
	if _, err := SpecDiff(sp, sp, Costs{Rename: 1, Retype: 1, Leaf: -1, Node: 1}); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := SpecDiff(nil, sp, DefaultCosts()); err == nil {
		t.Error("nil spec accepted")
	}
}

func TestEngineReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eng := NewEngine(DefaultCosts())
	for i := 0; i < 20; i++ {
		sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 4 + rng.Intn(12), SeriesRatio: 1.5, Forks: 1, Loops: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		muts, err := gen.Mutate(sp, 1+rng.Intn(2), rng)
		if err != nil {
			t.Fatal(err)
		}
		sp2 := muts[len(muts)-1].Spec
		reused, err := eng.Diff(sp, sp2)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := SpecDiff(sp, sp2, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(reused.Cost-fresh.Cost) > eps {
			t.Fatalf("iteration %d: reused engine cost %g != fresh %g", i, reused.Cost, fresh.Cost)
		}
		if len(reused.Pairs) != len(fresh.Pairs) {
			t.Fatalf("iteration %d: reused engine pairs %d != fresh %d", i, len(reused.Pairs), len(fresh.Pairs))
		}
	}
}

func TestCrossDiffIdentityEqualsPlainDiff(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	r1 := fixtures.Fig2R1(sp)
	r3 := fixtures.Fig2R3(sp)
	m := Identity(sp)
	for _, cm := range []cost.Model{cost.Unit{}, cost.Length{}} {
		want := mustDistance(t, r1, r3, cm)
		res, err := CrossDiff(m, r1, r3, cm)
		if err != nil {
			t.Fatal(err)
		}
		if res.Projection.Cost() != 0 {
			t.Errorf("%s: identity projection cost %g, want 0", cm.Name(), res.Projection.Cost())
		}
		if math.Abs(res.Distance-want) > eps {
			t.Errorf("%s: cross distance %g, want plain distance %g", cm.Name(), res.Distance, want)
		}
	}
}

func TestProjectionIsValidRunOfTarget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 15; i++ {
		sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 5 + rng.Intn(12), SeriesRatio: 1.0, Forks: 1, Loops: 1}, rng)
		if err != nil {
			t.Fatal(err)
		}
		muts, err := gen.Mutate(sp, 1+rng.Intn(3), rng)
		if err != nil {
			t.Fatal(err)
		}
		sp2 := muts[len(muts)-1].Spec
		m, err := SpecDiff(sp, sp2, DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		r1, err := gen.RandomRun(sp, gen.RunParams{ProbP: 0.8, ProbF: 0.5, MaxF: 3, ProbL: 0.5, MaxL: 3}, rng)
		if err != nil {
			t.Fatal(err)
		}
		projected, proj, err := ProjectRun(m, r1, cost.Unit{})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if projected.Spec != sp2 {
			t.Fatalf("iteration %d: projected run belongs to the wrong spec", i)
		}
		if err := projected.Validate(); err != nil {
			t.Fatalf("iteration %d: projected run invalid: %v", i, err)
		}
		if proj.DroppedCost < 0 || proj.InsertedCost < 0 {
			t.Fatalf("iteration %d: negative projection cost %+v", i, proj)
		}
	}
}

func TestCrossDiffRejectsMismatchedRuns(t *testing.T) {
	spA := fixtures.Fig2Spec()
	spB := fixtures.Fig2SpecWithLoop()
	m, err := SpecDiff(spA, spB, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	rB := fixtures.Fig2R3(spB)
	if _, _, err := ProjectRun(m, rB, cost.Unit{}); err == nil {
		t.Error("projection accepted a run of the wrong specification")
	}
	rA := fixtures.Fig2R1(spA)
	if _, err := CrossDiff(m, rA, rA, cost.Unit{}); err == nil {
		t.Error("cross diff accepted a target run of the wrong specification")
	}
}

func mustDistance(t *testing.T, r1, r2 *wfrun.Run, cm cost.Model) float64 {
	t.Helper()
	d, err := core.Distance(r1, r2, cm)
	if err != nil {
		t.Fatal(err)
	}
	return d
}
