// Package evolve computes edit mappings between SP-workflow
// specifications — the spec-evolution counterpart of the run
// differencing engine. Where package core compares two runs of one
// specification, evolve compares two *versions* of a specification
// whose SP-trees may differ structurally: modules renamed, inserted or
// deleted, series edges split, parallel branches added or duplicated,
// forks and loops introduced or dropped.
//
// The distance is a constrained tree edit distance over annotated
// SP-trees. For a pair of nodes (v1 of version A, v2 of version B) the
// recurrence considers
//
//   - matching v1 to v2 (free for identical modules / same combinator
//     type, Rename for modules whose terminals differ, Retype for a
//     series/parallel/fork/loop restructure), with the child forests
//     aligned by a minimum-cost non-crossing matching when both sides
//     are ordered (S, L) and a minimum-cost bipartite matching
//     otherwise (solved on the same match.Scratch primitives the run
//     engine uses);
//   - deleting the root of T_A[v1] (its children are promoted; one of
//     them continues against v2, the rest are deleted);
//   - inserting the root of T_B[v2] (symmetrically); and
//   - replacing the whole subtree (delete T_A[v1], insert T_B[v2]).
//
// The recurrence is symmetric in A and B and yields zero exactly on
// matching structure, so diff(s, s) = 0 with a total mapping. Like the
// run engine, the Engine memoizes decisions in flat slices indexed by
// the trees' dense preorder IDs (sptree.TreeIndex) with generation
// stamps, stores matched child pairs in a shared arena, and runs all
// matchings on one reusable match.Scratch — a batch of mappings
// performs O(1) steady-state allocation.
//
// The resulting SpecMapping aligns the surviving nodes of version A
// with their counterparts in version B. It is the bridge that lets the
// rest of the stack work across versions: ProjectRun pushes a run of A
// through the mapping into B's node space, and CrossDiff prices the
// parts the mapping cannot carry as inserts and deletes (see
// project.go).
package evolve

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/match"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// Costs prices the spec-level edit operations. All four costs must be
// positive: zero-cost operations would make "do nothing" mappings
// optimal and break the identity property diff(s, s) = 0 with a total
// mapping.
type Costs struct {
	// Rename is the cost of matching two modules (Q leaves) whose
	// terminal labels differ — a module renamed between versions.
	Rename float64
	// Retype is the cost of matching two internal nodes of different
	// types — a series/parallel/fork/loop restructure that preserves
	// the region's contents.
	Retype float64
	// Leaf is the cost of inserting or deleting one module edge.
	Leaf float64
	// Node is the cost of inserting or deleting one internal
	// (combinator) node.
	Node float64
}

// DefaultCosts is the cost model the store and service use: renaming a
// module (1) is cheaper than deleting and re-inserting it (2), and
// combinator nodes are half the weight of modules.
func DefaultCosts() Costs {
	return Costs{Rename: 1, Retype: 1, Leaf: 1, Node: 0.5}
}

func (c Costs) validate() error {
	if !(c.Rename > 0) || !(c.Retype > 0) || !(c.Leaf > 0) || !(c.Node > 0) {
		return fmt.Errorf("evolve: all costs must be positive, have %+v", c)
	}
	if math.IsInf(c.Rename, 0) || math.IsInf(c.Retype, 0) || math.IsInf(c.Leaf, 0) || math.IsInf(c.Node, 0) {
		return fmt.Errorf("evolve: costs must be finite, have %+v", c)
	}
	return nil
}

// SpecMapping aligns the surviving nodes of specification version A
// with their counterparts in version B. Pairs is injective in both
// directions and hierarchical: if (v1, v2) and (u1, u2) are pairs and
// u1 is a descendant of v1, then u2 is a descendant of v2.
type SpecMapping struct {
	A, B *spec.Spec
	// Cost is the edit distance realized by the mapping (for composed
	// mappings, an upper bound: the sum of the per-step costs).
	Cost float64
	// Pairs lists the matched (A node, B node) pairs in preorder of A.
	Pairs [][2]*sptree.Node

	aToB map[*sptree.Node]*sptree.Node
	bToA map[*sptree.Node]*sptree.Node
}

func newMapping(a, b *spec.Spec, cost float64, pairs [][2]*sptree.Node) *SpecMapping {
	m := &SpecMapping{
		A: a, B: b, Cost: cost, Pairs: pairs,
		aToB: make(map[*sptree.Node]*sptree.Node, len(pairs)),
		bToA: make(map[*sptree.Node]*sptree.Node, len(pairs)),
	}
	for _, p := range pairs {
		m.aToB[p[0]] = p[1]
		m.bToA[p[1]] = p[0]
	}
	return m
}

// AtoB returns the B node mapped to an A spec-tree node, or nil.
func (m *SpecMapping) AtoB(n *sptree.Node) *sptree.Node { return m.aToB[n] }

// BtoA returns the A node mapped to a B spec-tree node, or nil.
func (m *SpecMapping) BtoA(n *sptree.Node) *sptree.Node { return m.bToA[n] }

// NewMapping builds a SpecMapping from explicit pairs (the decode path
// of the binary codec), validating the structural invariants.
func NewMapping(a, b *spec.Spec, cost float64, pairs [][2]*sptree.Node) (*SpecMapping, error) {
	m := newMapping(a, b, cost, pairs)
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Identity returns the total self-mapping of a specification at cost
// zero — the mapping CrossDiff degenerates to a plain run diff under.
func Identity(sp *spec.Spec) *SpecMapping {
	var pairs [][2]*sptree.Node
	sp.Tree.Walk(func(n *sptree.Node) bool {
		pairs = append(pairs, [2]*sptree.Node{n, n})
		return true
	})
	return newMapping(sp, sp, 0, pairs)
}

// Invert returns the reverse mapping B → A. Costs are symmetric, so
// the cost carries over unchanged.
func (m *SpecMapping) Invert() *SpecMapping {
	pairs := make([][2]*sptree.Node, len(m.Pairs))
	for i, p := range m.Pairs {
		pairs[i] = [2]*sptree.Node{p[1], p[0]}
	}
	return newMapping(m.B, m.A, m.Cost, pairs)
}

// Compose chains a mapping A → B with a mapping B → C into a mapping
// A → C: a node survives the composition iff it survives both steps.
// The composed cost is the sum of the step costs — an upper bound on
// the direct A → C distance.
func Compose(m1, m2 *SpecMapping) (*SpecMapping, error) {
	if m1 == nil || m2 == nil {
		return nil, fmt.Errorf("evolve: compose of nil mapping")
	}
	if m1.B != m2.A {
		return nil, fmt.Errorf("evolve: compose: first mapping's target is not second mapping's source")
	}
	var pairs [][2]*sptree.Node
	for _, p := range m1.Pairs {
		if c := m2.AtoB(p[1]); c != nil {
			pairs = append(pairs, [2]*sptree.Node{p[0], c})
		}
	}
	return newMapping(m1.A, m2.B, m1.Cost+m2.Cost, pairs), nil
}

// MappedModules returns the module-level alignment: for every matched
// pair of Q leaves, the A spec edge and the B spec edge it survives as.
func (m *SpecMapping) MappedModules() map[graph.Edge]graph.Edge {
	out := make(map[graph.Edge]graph.Edge)
	for _, p := range m.Pairs {
		if p[0].Type == sptree.Q && p[1].Type == sptree.Q {
			out[p[0].Edge] = p[1].Edge
		}
	}
	return out
}

// Validate checks the structural invariants every mapping must hold:
// nodes belong to their trees, the map is injective in both
// directions, only like kinds pair (leaves with leaves), and the cost
// is finite and non-negative. The fuzz target runs this on every
// mapping the engine produces.
func (m *SpecMapping) Validate() error {
	if m.A == nil || m.B == nil || m.A.Tree == nil || m.B.Tree == nil {
		return fmt.Errorf("evolve: mapping lacks specifications")
	}
	if math.IsNaN(m.Cost) || math.IsInf(m.Cost, 0) || m.Cost < 0 {
		return fmt.Errorf("evolve: mapping cost %g is not a finite non-negative number", m.Cost)
	}
	inA := make(map[*sptree.Node]bool)
	m.A.Tree.Walk(func(n *sptree.Node) bool { inA[n] = true; return true })
	inB := make(map[*sptree.Node]bool)
	m.B.Tree.Walk(func(n *sptree.Node) bool { inB[n] = true; return true })
	seenA := make(map[*sptree.Node]bool, len(m.Pairs))
	seenB := make(map[*sptree.Node]bool, len(m.Pairs))
	for _, p := range m.Pairs {
		if !inA[p[0]] {
			return fmt.Errorf("evolve: mapped node %s[%s..%s] is not in specification A", p[0].Type, p[0].Src, p[0].Dst)
		}
		if !inB[p[1]] {
			return fmt.Errorf("evolve: mapped node %s[%s..%s] is not in specification B", p[1].Type, p[1].Src, p[1].Dst)
		}
		if seenA[p[0]] || seenB[p[1]] {
			return fmt.Errorf("evolve: mapping is not injective at %s[%s..%s]", p[0].Type, p[0].Src, p[0].Dst)
		}
		seenA[p[0]] = true
		seenB[p[1]] = true
		if (p[0].Type == sptree.Q) != (p[1].Type == sptree.Q) {
			return fmt.Errorf("evolve: mapping pairs a module with a combinator node")
		}
	}
	return nil
}

// Stats summarizes a mapping for reports and the service payload.
type MappingStats struct {
	ANodes, BNodes   int // spec-tree sizes
	Mapped           int // matched node pairs
	MappedModules    int // matched Q-leaf pairs
	RenamedModules   int // matched Q pairs whose terminals differ
	DeletedModules   int // A modules with no counterpart
	InsertedModules  int // B modules with no counterpart
	RetypedInternals int // matched internal pairs of different types
}

// Stats computes the summary counters of the mapping.
func (m *SpecMapping) Stats() MappingStats {
	st := MappingStats{
		ANodes: m.A.Tree.CountNodes(),
		BNodes: m.B.Tree.CountNodes(),
		Mapped: len(m.Pairs),
	}
	for _, p := range m.Pairs {
		if p[0].Type == sptree.Q {
			st.MappedModules++
			if p[0].Src != p[1].Src || p[0].Dst != p[1].Dst {
				st.RenamedModules++
			}
		} else if p[0].Type != p[1].Type {
			st.RetypedInternals++
		}
	}
	st.DeletedModules = m.A.Tree.CountLeaves() - st.MappedModules
	st.InsertedModules = m.B.Tree.CountLeaves() - st.MappedModules
	return st
}

// --- engine ---------------------------------------------------------

// decision kinds. The zero value marks an unset memo slot, so the
// kinds start at 1.
const (
	kMatch   uint8 = iota + 1 // v1 matched to v2; child pairs at [off, off+n) in the arena
	kDelRoot                  // v1's root deleted; child arg continues against v2
	kInsRoot                  // v2's root inserted; v1 continues against child arg
	kReplace                  // delete T_A[v1], insert T_B[v2]
)

// decision is the memoized outcome for one (v1, v2) pair.
type decision struct {
	cost   float64
	kind   uint8
	arg    int32
	off, n int32
}

// Engine computes spec-to-spec edit mappings, reusing all interior
// state between calls exactly like the run-diff engine: flat memo
// slices stamped by generation, a shared arena of matched child-index
// pairs, and one match.Scratch for every bipartite and non-crossing
// matching. An Engine is not safe for concurrent use; SpecMappings it
// returns are fully extracted and stay valid indefinitely.
type Engine struct {
	costs Costs

	idx1, idx2 sptree.TreeIndex
	n2         int
	memo       []decision
	memoGen    []uint32
	gen        uint32
	del1, del2 []float64 // subtree deletion price per preorder ID
	pairs      [][2]int32

	rows, dels, inss []float64
	ms               match.Scratch
}

// NewEngine returns a reusable spec-differencing engine.
func NewEngine(c Costs) *Engine { return &Engine{costs: c} }

// SpecDiff computes the edit mapping between two specification
// versions under the given costs. Batch callers should construct one
// Engine and call its Diff instead.
func SpecDiff(a, b *spec.Spec, c Costs) (*SpecMapping, error) {
	return NewEngine(c).Diff(a, b)
}

// Diff computes the minimum-cost edit mapping between the SP-trees of
// two specification versions.
func (e *Engine) Diff(a, b *spec.Spec) (*SpecMapping, error) {
	if a == nil || b == nil || a.Tree == nil || b.Tree == nil {
		return nil, fmt.Errorf("evolve: nil specification")
	}
	if err := e.costs.validate(); err != nil {
		return nil, err
	}
	e.idx1.Rebuild(a.Tree)
	e.idx2.Rebuild(b.Tree)
	n1, n2 := e.idx1.Len(), e.idx2.Len()
	e.n2 = n2
	total := n1 * n2
	if cap(e.memo) < total {
		e.memo = make([]decision, total)
		e.memoGen = make([]uint32, total)
	} else {
		e.memo = e.memo[:total]
		e.memoGen = e.memoGen[:total]
	}
	e.gen++
	if e.gen == 0 { // uint32 wrap: flush every stamp explicitly
		for i := range e.memoGen {
			e.memoGen[i] = 0
		}
		e.gen = 1
	}
	e.pairs = e.pairs[:0]
	e.del1 = fillDel(e.del1[:0], e.idx1.Nodes, e.costs)
	e.del2 = fillDel(e.del2[:0], e.idx2.Nodes, e.costs)
	cost := e.d(a.Tree, b.Tree)
	return newMapping(a, b, cost, e.extract(a.Tree, b.Tree)), nil
}

// fillDel computes the subtree deletion price of every node. Nodes are
// in preorder, so iterating backwards sees children before parents.
func fillDel(out []float64, nodes []*sptree.Node, c Costs) []float64 {
	for range nodes {
		out = append(out, 0)
	}
	for i := len(nodes) - 1; i >= 0; i-- {
		v := nodes[i]
		if v.Type == sptree.Q {
			out[i] = c.Leaf
			continue
		}
		sum := c.Node
		for _, ch := range v.Children {
			sum += out[ch.ID]
		}
		out[i] = sum
	}
	return out
}

func ordered(t sptree.Type) bool { return t == sptree.S || t == sptree.L }

// d computes (and memoizes) the edit distance between T_A[v1] and
// T_B[v2].
func (e *Engine) d(v1, v2 *sptree.Node) float64 {
	mi := v1.ID*e.n2 + v2.ID
	if e.memoGen[mi] == e.gen {
		return e.memo[mi].cost
	}
	// Force every child decision this pair can need before touching the
	// shared staging rows, so the rows are never live across recursion.
	if v1.Type != sptree.Q && v2.Type != sptree.Q {
		for _, c1 := range v1.Children {
			for _, c2 := range v2.Children {
				e.d(c1, c2)
			}
		}
	}
	if v1.Type != sptree.Q {
		for _, c1 := range v1.Children {
			e.d(c1, v2)
		}
	}
	if v2.Type != sptree.Q {
		for _, c2 := range v2.Children {
			e.d(v1, c2)
		}
	}

	// Candidate 1 (preferred on ties, so identical trees map totally):
	// match v1 to v2.
	dec := decision{cost: math.Inf(1), kind: kReplace}
	switch {
	case v1.Type == sptree.Q && v2.Type == sptree.Q:
		rel := 0.0
		if v1.Src != v2.Src || v1.Dst != v2.Dst {
			rel = e.costs.Rename
		}
		dec = decision{cost: rel, kind: kMatch, off: int32(len(e.pairs))}
	case v1.Type != sptree.Q && v2.Type != sptree.Q:
		rel := 0.0
		if v1.Type != v2.Type {
			rel = e.costs.Retype
		}
		forest, off, n := e.forest(v1, v2)
		dec = decision{cost: rel + forest, kind: kMatch, off: off, n: n}
	}

	// Candidate 2: delete v1's root, promote one child.
	if v1.Type != sptree.Q {
		for i, c1 := range v1.Children {
			cand := e.costs.Node + e.memo[c1.ID*e.n2+v2.ID].cost
			for _, o := range v1.Children {
				if o != c1 {
					cand += e.del1[o.ID]
				}
			}
			if cand < dec.cost {
				dec = decision{cost: cand, kind: kDelRoot, arg: int32(i)}
			}
		}
	}
	// Candidate 3: insert v2's root, descend into one child.
	if v2.Type != sptree.Q {
		for j, c2 := range v2.Children {
			cand := e.costs.Node + e.memo[v1.ID*e.n2+c2.ID].cost
			for _, o := range v2.Children {
				if o != c2 {
					cand += e.del2[o.ID]
				}
			}
			if cand < dec.cost {
				dec = decision{cost: cand, kind: kInsRoot, arg: int32(j)}
			}
		}
	}
	// Candidate 4: replace the whole subtree.
	if cand := e.del1[v1.ID] + e.del2[v2.ID]; cand < dec.cost {
		dec = decision{cost: cand, kind: kReplace}
	}

	e.memo[mi] = dec
	e.memoGen[mi] = e.gen
	return dec.cost
}

// forest aligns the child forests of two internal nodes: non-crossing
// when both parents are ordered (S, L), bipartite otherwise. All child
// decisions are already memoized; matched index pairs are appended to
// the shared arena.
func (e *Engine) forest(v1, v2 *sptree.Node) (cost float64, off, n int32) {
	m, nn := len(v1.Children), len(v2.Children)
	if cap(e.rows) < m*nn {
		e.rows = make([]float64, m*nn)
	}
	rows := e.rows[:m*nn]
	for i, c1 := range v1.Children {
		base := c1.ID * e.n2
		for j, c2 := range v2.Children {
			rows[i*nn+j] = e.memo[base+c2.ID].cost
		}
	}
	if cap(e.dels) < m {
		e.dels = make([]float64, m)
	}
	dels := e.dels[:m]
	for i, c1 := range v1.Children {
		dels[i] = e.del1[c1.ID]
	}
	if cap(e.inss) < nn {
		e.inss = make([]float64, nn)
	}
	inss := e.inss[:nn]
	for j, c2 := range v2.Children {
		inss[j] = e.del2[c2.ID]
	}
	var res match.Result
	if ordered(v1.Type) && ordered(v2.Type) {
		res = e.ms.NonCrossing(m, nn, rows, dels, inss)
	} else {
		res = e.ms.Bipartite(m, nn, rows, dels, inss)
	}
	off = int32(len(e.pairs))
	for _, p := range res.Pairs {
		e.pairs = append(e.pairs, [2]int32{int32(p[0]), int32(p[1])})
	}
	return res.Cost, off, int32(len(res.Pairs))
}

// extract reads the matched pairs off the memoized decisions of the
// last Diff, in preorder of A.
func (e *Engine) extract(r1, r2 *sptree.Node) [][2]*sptree.Node {
	var out [][2]*sptree.Node
	var rec func(v1, v2 *sptree.Node)
	rec = func(v1, v2 *sptree.Node) {
		dec := &e.memo[v1.ID*e.n2+v2.ID]
		switch dec.kind {
		case kMatch:
			out = append(out, [2]*sptree.Node{v1, v2})
			for _, p := range e.pairs[dec.off : dec.off+dec.n] {
				rec(v1.Children[p[0]], v2.Children[p[1]])
			}
		case kDelRoot:
			rec(v1.Children[dec.arg], v2)
		case kInsRoot:
			rec(v1, v2.Children[dec.arg])
		case kReplace:
			// Nothing survives.
		}
	}
	rec(r1, r2)
	return out
}
