package evolve

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/wfxml"
)

// FuzzSpecMapping: for any pair of parseable specification XML
// documents, SpecDiff must never panic, and every mapping it returns
// must be a valid injective node map with a finite, non-negative cost
// bounded by replacing both trees outright. The self-mapping of either
// side must cost zero and be total.
func FuzzSpecMapping(f *testing.F) {
	encode := func(name string) []byte {
		sp, err := gen.Catalog(name)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := wfxml.EncodeSpec(&buf, sp, name); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	pa := encode("PA")
	f.Add(pa, pa)
	f.Add(pa, encode("EMBOSS"))
	// A mutated pair: the shape the subsystem exists for.
	{
		sp, err := gen.Catalog("PA")
		if err != nil {
			f.Fatal(err)
		}
		muts, err := gen.Mutate(sp, 2, rand.New(rand.NewSource(1)))
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := wfxml.EncodeSpec(&buf, muts[len(muts)-1].Spec, "PA-v2"); err != nil {
			f.Fatal(err)
		}
		f.Add(pa, buf.Bytes())
	}
	tiny := []byte(`<specification><module id="s" label="S"/><module id="t" label="T"/><link from="s" to="t"/></specification>`)
	multi := []byte(`<specification><module id="s" label="S"/><module id="t" label="T"/><link from="s" to="t"/><link from="s" to="t" key="1"/><fork><edge from="s" to="t"/></fork></specification>`)
	f.Add(tiny, multi)
	f.Add([]byte(`not xml`), tiny)

	f.Fuzz(func(t *testing.T, xmlA, xmlB []byte) {
		// Bound the parse cost up front: huge grown documents spend
		// seconds in spec validation before the node-count cap below
		// can apply.
		if len(xmlA) > 16<<10 || len(xmlB) > 16<<10 {
			return
		}
		a, err := wfxml.DecodeSpec(bytes.NewReader(xmlA))
		if err != nil {
			return
		}
		b, err := wfxml.DecodeSpec(bytes.NewReader(xmlB))
		if err != nil {
			return
		}
		// Bound the DP size so the fuzzer spends its budget on shapes,
		// not on giant quadratic tables.
		if a.Tree.CountNodes() > 80 || b.Tree.CountNodes() > 80 {
			return
		}
		c := DefaultCosts()
		m, err := SpecDiff(a, b, c)
		if err != nil {
			t.Fatalf("SpecDiff failed on two valid specs: %v", err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid mapping: %v\nA:\n%s\nB:\n%s", err, a.Tree, b.Tree)
		}
		delA := fillDel(nil, a.Tree.Index().Nodes, c)
		delB := fillDel(nil, b.Tree.Index().Nodes, c)
		if ceil := delA[0] + delB[0]; m.Cost > ceil+1e-9 {
			t.Fatalf("mapping cost %g exceeds full-replacement ceiling %g", m.Cost, ceil)
		}
		self, err := SpecDiff(a, a, c)
		if err != nil {
			t.Fatal(err)
		}
		if self.Cost != 0 || len(self.Pairs) != a.Tree.CountNodes() {
			t.Fatalf("self-mapping not zero/total: cost %g, %d of %d nodes",
				self.Cost, len(self.Pairs), a.Tree.CountNodes())
		}
		// The inverse direction prices identically.
		rev, err := SpecDiff(b, a, c)
		if err != nil {
			t.Fatal(err)
		}
		if d := m.Cost - rev.Cost; d > 1e-9 || d < -1e-9 {
			t.Fatalf("asymmetric: %g vs %g", m.Cost, rev.Cost)
		}
	})
}
