package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"repro/internal/codec"
	"repro/internal/ledger"
	"repro/internal/spec"
	"repro/internal/wfrun"
)

// The snapshot layer persists a compact binary form of every parsed
// run next to the authoritative XML, so a cold store (a restarted
// provserved, a CI job, a new replica) rebuilds its in-memory caches
// by decoding snapshots instead of re-parsing and re-deriving XML.
//
// Layout, per specification (backend keys):
//
//	<spec>/snapshot/manifest.json   index of snapshotted runs
//	<spec>/snapshot/runs.seg        append-only run frames
//	<spec>/snapshot/spec.bin        binary specification frame
//
// The segment is append-only: every snapshotted run is one
// checksummed codec frame at a recorded offset, and the manifest maps
// run names to (offset, length, codec version, node/edge counts) plus
// a stat fingerprint of the run's XML blob. A manifest entry is only
// trusted when its fingerprint still matches the stored XML, so
// out-of-band edits to the authoritative blobs simply demote the
// snapshot to a miss. Deleting or re-importing a run drops its entry;
// the dead bytes stay in the segment until the compaction threshold
// is crossed, exactly like a log-structured store.
//
// Everything here is a cache of the XML: any read error, checksum
// mismatch, codec version skew or fingerprint drift falls back to the
// XML re-parse (which then repairs the snapshot write-behind). Losing
// the snapshot keys can never lose data.

// manifestVersion guards the manifest JSON schema itself. Version 2
// added content hashing (frame hash, XML hash, ledger batch seq); a
// version-1 manifest is discarded wholesale, its segment bytes counted
// dead, and every run re-snapshots — with hashes — on its next load.
const manifestVersion = 2

// compactMinDeadBytes and compactMinDeadRatio bound segment garbage:
// a manifest save triggers compaction once the segment holds at least
// compactMinDeadBytes of dead frames and they exceed
// compactMinDeadRatio of the file.
const (
	compactMinDeadBytes = 1 << 20
	compactMinDeadRatio = 0.5
)

// snapEntry indexes one run frame inside the segment.
type snapEntry struct {
	Offset int64 `json:"offset"`
	Length int64 `json:"length"`
	Codec  int   `json:"codec"` // codec.Version the frame was written with
	Nodes  int   `json:"nodes"`
	Edges  int   `json:"edges"`
	// XMLSize and XMLModNanos fingerprint the authoritative XML blob
	// the frame was derived from; XMLSHA256 is the digest of its bytes
	// and is what freshness actually rests on — size+mtime alone miss a
	// same-length rewrite inside the filesystem's mtime granularity.
	XMLSize     int64  `json:"xml_size"`
	XMLModNanos int64  `json:"xml_mod_nanos"`
	XMLSHA256   string `json:"xml_sha256"`
	// Hash is the hex SHA-256 content hash of the codec frame (the
	// frame's ledger identity); Batch is the seq of the ledger record
	// that most recently committed it.
	Hash  string `json:"hash"`
	Batch int64  `json:"batch"`
}

// snapManifest is the JSON document at snapshot/manifest.json.
type snapManifest struct {
	Version int                  `json:"version"`
	Live    int64                `json:"live_bytes"`
	Dead    int64                `json:"dead_bytes"`
	Runs    map[string]snapEntry `json:"runs"`
}

// snapState is the in-memory snapshot state of one specification.
// Guarded by Store.snapMu: manifest mutations and segment appends are
// rare (imports, deletes) and serialize; reads copy the entry out and
// release the lock before touching the segment blob.
type snapState struct {
	mu       sync.Mutex
	manifest *snapManifest
	loaded   bool
	// Ledger append cursor: seq and head of the last record in
	// ledger.log, loaded lazily alongside the manifest.
	ledgerLoaded bool
	ledgerSeq    int64
	ledgerHead   ledger.Hash
}

// Snapshot-layer backend keys.
func manifestKey(specName string) string { return specName + "/snapshot/manifest.json" }
func segmentKey(specName string) string  { return specName + "/snapshot/runs.seg" }
func specBinKey(specName string) string  { return specName + "/snapshot/spec.bin" }
func ledgerKey(specName string) string   { return specName + "/snapshot/ledger.log" }

// snap returns the snapshot state for a spec, creating it on first
// use. The manifest itself is loaded lazily under the state lock.
func (s *Store) snap(specName string) *snapState {
	s.snapsMu.Lock()
	defer s.snapsMu.Unlock()
	st, ok := s.snaps[specName]
	if !ok {
		st = &snapState{}
		s.snaps[specName] = st
	}
	return st
}

// loadManifestLocked reads manifest.json if present; a missing,
// unreadable or wrong-version manifest becomes an empty one (every
// run is then a snapshot miss). Whatever the segment already holds is
// then untracked, so it is all counted dead — compaction reclaims the
// orphaned bytes instead of the segment growing without bound after a
// manifest loss. Caller holds st.mu.
func (s *Store) loadManifestLocked(specName string, st *snapState) {
	if st.loaded {
		return
	}
	st.loaded = true
	data, err := s.be.ReadFile(manifestKey(specName))
	if err == nil {
		var m snapManifest
		if err := json.Unmarshal(data, &m); err == nil && m.Version == manifestVersion && m.Runs != nil {
			st.manifest = &m
			return
		}
	}
	st.manifest = &snapManifest{Version: manifestVersion, Runs: map[string]snapEntry{}}
	if fi, err := s.be.Stat(segmentKey(specName)); err == nil {
		st.manifest.Dead = fi.Size
	}
}

// saveManifestLocked writes the manifest atomically (the backend's
// WriteFile contract). Caller holds st.mu.
func (s *Store) saveManifestLocked(specName string, st *snapState) error {
	data, err := json.MarshalIndent(st.manifest, "", "  ")
	if err != nil {
		return err
	}
	return s.be.WriteFile(manifestKey(specName), append(data, '\n'))
}

// xmlFP fingerprints a run's authoritative XML blob: stat identity
// plus a content digest. The digest is what validation trusts — stat
// fields are recorded for diagnostics and cannot promote a stale
// entry, only the hash can.
type xmlFP struct {
	size     int64
	modNanos int64
	sha      string
}

// xmlFingerprint stats and digests a run's XML blob.
func (s *Store) xmlFingerprint(specName, runName string) (xmlFP, error) {
	key := runXMLKey(specName, runName)
	fi, err := s.be.Stat(key)
	if err != nil {
		return xmlFP{}, err
	}
	data, err := s.be.ReadFile(key)
	if err != nil {
		return xmlFP{}, err
	}
	sum := sha256.Sum256(data)
	return xmlFP{size: fi.Size, modNanos: fi.ModTime.UnixNano(), sha: hex.EncodeToString(sum[:])}, nil
}

// fingerprintXML digests already-read XML bytes plus the stat of the
// blob they were just written to — the import paths hold the bytes in
// memory and need not read them back.
func (s *Store) fingerprintXML(specName, runName string, data []byte) (xmlFP, error) {
	fi, err := s.be.Stat(runXMLKey(specName, runName))
	if err != nil {
		return xmlFP{}, err
	}
	sum := sha256.Sum256(data)
	return xmlFP{size: fi.Size, modNanos: fi.ModTime.UnixNano(), sha: hex.EncodeToString(sum[:])}, nil
}

// fresh reports whether a manifest entry still describes this XML.
// Content hash decides; an entry written before hashing existed (empty
// XMLSHA256) is never fresh.
func (e snapEntry) fresh(fp xmlFP) bool {
	return e.XMLSHA256 != "" && e.XMLSHA256 == fp.sha
}

// hasFreshSnapshot reports whether a run has a live manifest entry of
// the current codec version whose XML content hash matches the stored
// blob — the freshness probe (no segment read, no decode) behind
// Snapshot's idempotency. A frame that is fresh by this test but
// corrupt in the segment still self-heals on the next load.
func (s *Store) hasFreshSnapshot(specName, runName string) bool {
	if s.noSnapshot {
		return false
	}
	st := s.snap(specName)
	st.mu.Lock()
	s.loadManifestLocked(specName, st)
	e, ok := st.manifest.Runs[runName]
	st.mu.Unlock()
	if !ok || e.Codec != codec.Version {
		return false
	}
	fp, err := s.xmlFingerprint(specName, runName)
	return err == nil && e.fresh(fp)
}

// segmentRecord frames one run inside the segment file: the run name,
// length-prefixed, followed by the codec frame. The name is part of
// the record so a reader can never mistake one run's frame for
// another's — a reader racing a compaction may land its stale offset
// on a different, equal-length record whose checksum verifies, and
// only the embedded name catches that.
func segmentRecord(runName string, frame []byte) []byte {
	out := binary.AppendUvarint(make([]byte, 0, len(runName)+len(frame)+binary.MaxVarintLen32), uint64(len(runName)))
	out = append(out, runName...)
	return append(out, frame...)
}

// parseSegmentRecord splits a record into its run name and frame.
func parseSegmentRecord(buf []byte) (runName string, frame []byte, err error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || n > uint64(len(buf)-w) {
		return "", nil, fmt.Errorf("store: malformed segment record header")
	}
	return string(buf[w : w+int(n)]), buf[w+int(n):], nil
}

// loadRunSnapshot attempts the snapshot fast path for one run: a
// manifest entry whose fingerprint matches the stored XML, a segment
// record naming this very run whose frame checksum verifies, and a
// frame that decodes against the spec. Any failure returns
// (nil, false) and the caller re-parses XML.
func (s *Store) loadRunSnapshot(specName, runName string, sp *spec.Spec) (*wfrun.Run, bool) {
	if s.noSnapshot {
		return nil, false
	}
	st := s.snap(specName)
	st.mu.Lock()
	s.loadManifestLocked(specName, st)
	e, ok := st.manifest.Runs[runName]
	st.mu.Unlock()
	if !ok || e.Codec != codec.Version {
		return nil, false
	}
	fp, err := s.xmlFingerprint(specName, runName)
	if err != nil || !e.fresh(fp) {
		return nil, false
	}
	buf := make([]byte, e.Length)
	if err := s.be.ReadAt(segmentKey(specName), buf, e.Offset); err != nil {
		return nil, false
	}
	name, frame, err := parseSegmentRecord(buf)
	if err != nil || name != runName {
		return nil, false
	}
	r, err := codec.DecodeRun(frame, sp)
	if err != nil {
		return nil, false
	}
	return r, true
}

// snapBatchItem is one run of a batched snapshot append.
type snapBatchItem struct {
	name string
	run  *wfrun.Run
	fp   xmlFP
}

// writeRunSnapshot appends a freshly parsed run to the segment and
// records it in the manifest — the write-behind half of the snapshot
// cache, called after every XML parse. The caller supplies the XML
// fingerprint it captured BEFORE parsing: if the blob was overwritten
// since, the recorded fingerprint no longer matches the store and the
// entry demotes itself to a miss instead of serving a stale frame.
// Errors are returned for callers that care (Snapshot); the LoadRun
// path treats them as best-effort.
func (s *Store) writeRunSnapshot(specName, runName string, r *wfrun.Run, fp xmlFP) error {
	_, err := s.writeRunSnapshotBatch(specName, []snapBatchItem{
		{name: runName, run: r, fp: fp},
	}, false)
	return err
}

// writeRunSnapshotBatch appends many runs in one pass: frames are
// encoded up front, the segment grows by ONE backend append, and the
// manifest is rewritten once however many runs the batch carries —
// bulk imports would otherwise pay one full-manifest rewrite per run.
// With durable set the segment append is synced before the manifest
// records the frames — the group-commit durability point of the
// ingest pipeline. The write-behind cache paths leave it unset; they
// can always re-parse the authoritative XML.
//
// The batch is also one ledger record: every item's frame content
// hash becomes a Merkle leaf, the batch root is chained onto the
// spec's ledger head, and the record is appended to ledger.log before
// the manifest commits to it. The write order — segment (synced),
// ledger (synced), manifest — means a crash at any boundary leaves
// the previous manifest pointing at still-valid append-only state.
//
// A run whose name AND frame hash match its live manifest entry is
// deduped: the old segment bytes are reused (valid forever under
// append-only + compaction-of-live), no new frame is written, and the
// run is simply re-attested in the new batch record. Bulk re-imports
// of identical runs therefore cost hashing, not segment growth.
//
// Returns the hex content hash of each item's frame, aligned with
// items.
func (s *Store) writeRunSnapshotBatch(specName string, items []snapBatchItem, durable bool) ([]string, error) {
	if s.noSnapshot || len(items) == 0 {
		return nil, nil
	}
	records := make([][]byte, len(items))
	hashes := make([]string, len(items))
	leafs := make([]ledger.BatchLeaf, len(items))
	for i, it := range items {
		frame, err := codec.EncodeRun(it.run)
		if err != nil {
			return nil, err
		}
		h := codec.ContentHash(frame)
		hashes[i] = hex.EncodeToString(h[:])
		leafs[i] = ledger.BatchLeaf{Run: it.name, Hash: hashes[i]}
		records[i] = segmentRecord(it.name, frame)
	}
	st := s.snap(specName)
	st.mu.Lock()
	defer st.mu.Unlock()
	s.loadManifestLocked(specName, st)
	s.loadLedgerLocked(specName, st)
	var off int64
	if fi, err := s.be.Stat(segmentKey(specName)); err == nil {
		off = fi.Size
	}
	var seg bytes.Buffer
	entries := make([]snapEntry, len(items))
	for i, it := range items {
		if old, ok := st.manifest.Runs[it.name]; ok && old.Codec == codec.Version && old.Hash == hashes[i] &&
			s.segmentFrameIntact(specName, it.name, old) {
			// Dedup: identical frame already live (and verified intact)
			// in the segment.
			e := old
			e.XMLSize, e.XMLModNanos, e.XMLSHA256 = it.fp.size, it.fp.modNanos, it.fp.sha
			entries[i] = e
			continue
		}
		entries[i] = snapEntry{
			Offset:      off + int64(seg.Len()),
			Length:      int64(len(records[i])),
			Codec:       codec.Version,
			Nodes:       it.run.NumNodes(),
			Edges:       it.run.NumEdges(),
			XMLSize:     it.fp.size,
			XMLModNanos: it.fp.modNanos,
			XMLSHA256:   it.fp.sha,
			Hash:        hashes[i],
		}
		seg.Write(records[i])
	}
	if seg.Len() > 0 {
		if err := s.be.Append(segmentKey(specName), seg.Bytes(), durable); err != nil {
			return nil, err
		}
	}
	rec, err := ledger.NewRecord(st.ledgerSeq+1, st.ledgerHead, leafs)
	if err != nil {
		return nil, err
	}
	line, err := ledger.MarshalRecord(rec)
	if err != nil {
		return nil, err
	}
	if err := s.be.Append(ledgerKey(specName), line, durable); err != nil {
		return nil, err
	}
	st.ledgerSeq = rec.Seq
	st.ledgerHead, _ = ledger.Parse(rec.Head)
	for i, it := range items {
		if old, ok := st.manifest.Runs[it.name]; ok && old.Offset != entries[i].Offset {
			st.manifest.Dead += old.Length
			st.manifest.Live -= old.Length
		}
		e := entries[i]
		e.Batch = rec.Seq
		if _, ok := st.manifest.Runs[it.name]; !ok || st.manifest.Runs[it.name].Offset != e.Offset {
			st.manifest.Live += e.Length
		}
		st.manifest.Runs[it.name] = e
	}
	if err := s.saveManifestLocked(specName, st); err != nil {
		return nil, err
	}
	return hashes, s.maybeCompactLocked(specName, st)
}

// segmentFrameIntact re-reads a manifest entry's segment record and
// checks it still carries this run's frame with the recorded content
// hash — the guard that keeps dedup from re-attesting bytes that were
// corrupted or lost since the entry was written. A reused entry is
// therefore always backed by verified bytes; a failed check simply
// costs a fresh append.
func (s *Store) segmentFrameIntact(specName, runName string, e snapEntry) bool {
	buf := make([]byte, e.Length)
	if err := s.be.ReadAt(segmentKey(specName), buf, e.Offset); err != nil {
		return false
	}
	name, frame, err := parseSegmentRecord(buf)
	if err != nil || name != runName {
		return false
	}
	h := codec.ContentHash(frame)
	return hex.EncodeToString(h[:]) == e.Hash
}

// readLedger loads a spec's ledger log through the backend — the
// byte-level twin of ledger.ReadLog.
func (s *Store) readLedger(specName string) ([]ledger.Record, error) {
	data, err := s.be.ReadFile(ledgerKey(specName))
	if err != nil {
		if isNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	recs, _, perr := ledger.ParseLog(data)
	return recs, perr
}

// loadLedgerLocked positions the append cursor at the tail of the
// spec's ledger log — and repairs a torn tail first. A crash mid-
// append leaves a partial final line; readers tolerate it, but a
// subsequent append would weld new bytes onto the torn fragment,
// merging them into one malformed MIDDLE line that VerifyLedger can
// no longer tell from tampering. Truncating back to the valid prefix
// before any further append keeps crash debris and tampering
// distinguishable. A malformed interior line is NOT repaired here —
// appends continue from the last parseable record and VerifyLedger is
// the one to report the damage. Caller holds st.mu.
func (s *Store) loadLedgerLocked(specName string, st *snapState) {
	if st.ledgerLoaded {
		return
	}
	st.ledgerLoaded = true
	data, err := s.be.ReadFile(ledgerKey(specName))
	if err != nil {
		return
	}
	recs, valid, perr := ledger.ParseLog(data)
	if perr == nil && valid < len(data) {
		// Torn tail from a crashed append: truncate to the valid prefix.
		_ = s.be.WriteFile(ledgerKey(specName), data[:valid])
	}
	if len(recs) == 0 {
		return
	}
	last := recs[len(recs)-1]
	st.ledgerSeq = last.Seq
	st.ledgerHead, _ = ledger.Parse(last.Head)
}

// dropRunSnapshot removes a run's manifest entry (delete and
// re-import paths). The frame bytes become dead weight until
// compaction.
func (s *Store) dropRunSnapshot(specName, runName string) {
	st := s.snap(specName)
	st.mu.Lock()
	defer st.mu.Unlock()
	s.loadManifestLocked(specName, st)
	e, ok := st.manifest.Runs[runName]
	if !ok {
		return
	}
	delete(st.manifest.Runs, runName)
	st.manifest.Dead += e.Length
	st.manifest.Live -= e.Length
	if err := s.saveManifestLocked(specName, st); err != nil {
		return
	}
	s.maybeCompactLocked(specName, st)
}

// maybeCompactLocked rewrites the segment without dead frames once
// they dominate. Caller holds st.mu.
func (s *Store) maybeCompactLocked(specName string, st *snapState) error {
	m := st.manifest
	if m.Dead < compactMinDeadBytes || float64(m.Dead) < compactMinDeadRatio*float64(m.Dead+m.Live) {
		return nil
	}
	return s.compactLocked(specName, st)
}

// Compact rewrites a spec's snapshot segment without its dead bytes
// now, regardless of the automatic thresholds — an operational lever
// (and test hook) over the same code path the thresholds trigger.
// The ledger is untouched: compaction moves live frames, it does not
// change them, so every inclusion proof survives byte-for-byte.
func (s *Store) Compact(specName string) error {
	if s.noSnapshot {
		return nil
	}
	if err := ValidateName(specName); err != nil {
		return err
	}
	st := s.snap(specName)
	st.mu.Lock()
	defer st.mu.Unlock()
	s.loadManifestLocked(specName, st)
	if _, err := s.be.Stat(segmentKey(specName)); err != nil {
		if isNotExist(err) {
			return nil // nothing snapshotted yet
		}
		return err
	}
	return s.compactLocked(specName, st)
}

// compactLocked is the segment rewrite itself. Caller holds st.mu. A
// reader that raced the atomic replacement sees offsets that no
// longer line up — the record it lands on either fails the frame
// checksum or names a different run, so it falls back to XML;
// compaction needs no reader coordination.
func (s *Store) compactLocked(specName string, st *snapState) error {
	m := st.manifest
	old, err := s.be.ReadFile(segmentKey(specName))
	if err != nil {
		return err
	}
	fresh := make(map[string]snapEntry, len(m.Runs))
	var out bytes.Buffer
	for name, e := range m.Runs {
		if e.Offset < 0 || e.Offset+e.Length > int64(len(old)) {
			return fmt.Errorf("store: segment entry %q out of bounds", name)
		}
		rec := old[e.Offset : e.Offset+e.Length]
		e.Offset = int64(out.Len())
		out.Write(rec)
		fresh[name] = e
	}
	if err := s.be.WriteFile(segmentKey(specName), out.Bytes()); err != nil {
		return err
	}
	m.Runs = fresh
	m.Live = int64(out.Len())
	m.Dead = 0
	return s.saveManifestLocked(specName, st)
}

// writeSpecSnapshot persists the binary spec frame (best-effort).
func (s *Store) writeSpecSnapshot(specName string, sp *spec.Spec) error {
	if s.noSnapshot {
		return nil
	}
	return s.be.WriteFile(specBinKey(specName), codec.EncodeSpec(sp))
}

// loadSpecSnapshot attempts to decode spec.bin, guarded by the XML
// blob's fingerprint... specifications change so rarely that the
// guard is simply "spec.xml must not be newer than spec.bin".
func (s *Store) loadSpecSnapshot(specName string) (*spec.Spec, bool) {
	if s.noSnapshot {
		return nil, false
	}
	binInfo, err := s.be.Stat(specBinKey(specName))
	if err != nil {
		return nil, false
	}
	xmlInfo, err := s.be.Stat(specXMLKey(specName))
	if err != nil || xmlInfo.ModTime.After(binInfo.ModTime) {
		return nil, false
	}
	data, err := s.be.ReadFile(specBinKey(specName))
	if err != nil {
		return nil, false
	}
	sp, err := codec.DecodeSpec(data)
	if err != nil {
		return nil, false
	}
	return sp, true
}

// SnapshotStats reports what a Snapshot pass did.
type SnapshotStats struct {
	Runs      int // runs examined
	Fresh     int // already snapshotted and up to date
	Written   int // snapshot frames written (or rewritten)
	LiveBytes int64
	DeadBytes int64
}

// Snapshot materializes the snapshot layer for every stored run of a
// specification: runs without a fresh manifest entry are parsed from
// XML and appended to the segment, and the spec's own binary frame is
// written. It is idempotent — a second call writes nothing.
func (s *Store) Snapshot(specName string) (SnapshotStats, error) {
	var stats SnapshotStats
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return stats, err
	}
	if err := s.writeSpecSnapshot(specName, sp); err != nil {
		return stats, err
	}
	names, err := s.ListRuns(specName)
	if err != nil {
		return stats, err
	}
	stats.Runs = len(names)
	for _, name := range names {
		if s.hasFreshSnapshot(specName, name) {
			stats.Fresh++
			continue
		}
		// Parse from XML and snapshot; LoadRun's write-behind would do
		// this too, but going through loadRunXML keeps the accounting
		// exact even when the run is already in the memory cache.
		fp, err := s.xmlFingerprint(specName, name)
		if err != nil {
			return stats, fmt.Errorf("store: %w", err)
		}
		r, err := s.loadRunXML(specName, name, sp)
		if err != nil {
			return stats, err
		}
		if err := s.writeRunSnapshot(specName, name, r, fp); err != nil {
			return stats, err
		}
		s.cacheRun(specName, name, r)
		stats.Written++
	}
	st := s.snap(specName)
	st.mu.Lock()
	// Load explicitly: with zero runs the loop above never touched the
	// manifest and it may still be nil.
	s.loadManifestLocked(specName, st)
	stats.LiveBytes = st.manifest.Live
	stats.DeadBytes = st.manifest.Dead
	st.mu.Unlock()
	return stats, nil
}

// PreloadStats reports where a Preload pass got its runs from.
type PreloadStats struct {
	Spec         string
	Runs         int
	FromSnapshot int
	FromXML      int
}

// Preload warms the in-memory caches of one specification: the spec
// itself plus every stored run, decoded from the snapshot layer where
// possible and parsed from XML (with snapshot repair) otherwise. After
// Preload returns, LoadRun and the cohort paths never touch the parser
// for existing runs.
func (s *Store) Preload(specName string) (PreloadStats, error) {
	stats := PreloadStats{Spec: specName}
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return stats, err
	}
	names, err := s.ListRuns(specName)
	if err != nil {
		return stats, err
	}
	stats.Runs = len(names)
	for _, name := range names {
		s.mu.RLock()
		_, cached := s.runs[runKey(specName, name)]
		s.mu.RUnlock()
		if cached {
			stats.FromSnapshot++ // already warm; count as non-parse
			continue
		}
		if r, ok := s.loadRunSnapshot(specName, name, sp); ok {
			s.cacheRun(specName, name, r)
			stats.FromSnapshot++
			continue
		}
		fp, fpErr := s.xmlFingerprint(specName, name)
		r, err := s.loadRunXML(specName, name, sp)
		if err != nil {
			return stats, err
		}
		if fpErr == nil {
			_ = s.writeRunSnapshot(specName, name, r, fp) // best-effort repair
		}
		s.cacheRun(specName, name, r)
		stats.FromXML++
	}
	return stats, nil
}

// PreloadAll preloads every specification in the repository — the
// warm-start path provserved runs at boot. Specs are isolated from
// each other: one spec's unparseable run costs only that spec its
// warmth, the rest still preload; the joined error reports every
// failure alongside the stats of what did load.
func (s *Store) PreloadAll() ([]PreloadStats, error) {
	specs, err := s.ListSpecs()
	if err != nil {
		return nil, err
	}
	out := make([]PreloadStats, 0, len(specs))
	var errs []error
	for _, name := range specs {
		st, err := s.Preload(name)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		out = append(out, st)
	}
	return out, errors.Join(errs...)
}

// ManifestRuns returns the names of runs with live snapshot entries,
// mainly for tests and diagnostics.
func (s *Store) ManifestRuns(specName string) []string {
	st := s.snap(specName)
	st.mu.Lock()
	defer st.mu.Unlock()
	s.loadManifestLocked(specName, st)
	out := make([]string, 0, len(st.manifest.Runs))
	for name := range st.manifest.Runs {
		out = append(out, name)
	}
	return out
}
