package store

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
)

// seedLineage builds a repository with a three-version lineage
// demo → demo-v2 → demo-v3 (each step one or two random mutations) and
// a couple of runs under the first two versions.
func seedLineage(t *testing.T, dir string) *Store {
	t.Helper()
	st := openTestStore(t, dir)
	sp, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("demo", sp); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	v1, err := st.LoadSpec("demo")
	if err != nil {
		t.Fatal(err)
	}
	muts, err := gen.Mutate(v1, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSpecVersion("demo", "demo-v2", muts[len(muts)-1].Spec); err != nil {
		t.Fatal(err)
	}
	v2, err := st.LoadSpec("demo-v2")
	if err != nil {
		t.Fatal(err)
	}
	muts, err = gen.Mutate(v2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSpecVersion("demo-v2", "demo-v3", muts[0].Spec); err != nil {
		t.Fatal(err)
	}
	params := gen.RunParams{ProbP: 0.85, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}
	for i := 0; i < 2; i++ {
		r, err := gen.RandomRun(v1, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveRun("demo", runName(i), r); err != nil {
			t.Fatal(err)
		}
		r2, err := gen.RandomRun(v2, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveRun("demo-v2", runName(i), r2); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func runName(i int) string { return string(rune('a'+i)) + "run" }

func TestLineageChainAndMappings(t *testing.T) {
	st := seedLineage(t, t.TempDir())
	chain, err := st.Lineage("demo-v3")
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 3 || chain[0] != "demo-v3" || chain[1] != "demo-v2" || chain[2] != "demo" {
		t.Fatalf("lineage = %v, want [demo-v3 demo-v2 demo]", chain)
	}
	if parent, err := st.Parent("demo"); err != nil || parent != "" {
		t.Fatalf("Parent(demo) = %q, %v; want root", parent, err)
	}

	// One-step mapping: linked, persisted.
	m, linked, err := st.SpecMapping("demo", "demo-v2")
	if err != nil {
		t.Fatal(err)
	}
	if !linked {
		t.Error("demo → demo-v2 not reported as lineage-linked")
	}
	if err := m.Validate(); err != nil {
		t.Error(err)
	}
	// Two-step mapping composes; still linked.
	m13, linked, err := st.SpecMapping("demo", "demo-v3")
	if err != nil {
		t.Fatal(err)
	}
	if !linked {
		t.Error("demo → demo-v3 not reported as lineage-linked")
	}
	if err := m13.Validate(); err != nil {
		t.Error(err)
	}
	// Reverse direction: inverted, linked.
	rev, linked, err := st.SpecMapping("demo-v3", "demo")
	if err != nil {
		t.Fatal(err)
	}
	if !linked {
		t.Error("demo-v3 → demo not reported as lineage-linked")
	}
	if len(rev.Pairs) != len(m13.Pairs) {
		t.Errorf("inverted mapping has %d pairs, forward %d", len(rev.Pairs), len(m13.Pairs))
	}
	// Identity.
	ident, linked, err := st.SpecMapping("demo", "demo")
	if err != nil || !linked {
		t.Fatalf("identity mapping: %v, linked=%v", err, linked)
	}
	if ident.Cost != 0 {
		t.Errorf("identity mapping cost %g", ident.Cost)
	}
}

func TestCrossDiffEndToEnd(t *testing.T) {
	st := seedLineage(t, t.TempDir())
	res, linked, err := st.CrossDiff("demo", runName(0), "demo-v2", runName(0), cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	if !linked {
		t.Error("cross diff over lineage-linked specs not reported as linked")
	}
	if math.IsNaN(res.Distance) || math.IsInf(res.Distance, 0) || res.Distance < 0 {
		t.Fatalf("cross distance %g is not finite non-negative", res.Distance)
	}
	if res.Distance < res.EngineDistance {
		t.Errorf("total %g below engine distance %g", res.Distance, res.EngineDistance)
	}
	if err := res.Projected.Validate(); err != nil {
		t.Errorf("projected run invalid: %v", err)
	}
	// Same-spec cross diff degenerates to the plain diff.
	plain, err := st.Diff("demo", runName(0), runName(1), cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	same, _, err := st.CrossDiff("demo", runName(0), "demo", runName(1), cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(same.Distance-plain.Distance) > 1e-9 {
		t.Errorf("same-spec cross distance %g != plain %g", same.Distance, plain.Distance)
	}
}

// TestMappingSurvivesRestart is the acceptance round-trip: a mapping
// computed at PutSpecVersion time must decode from its snapshot frame
// in a fresh Store over the same directory, give identical cross-diff
// answers, and recompute transparently when the frame is corrupted.
func TestMappingSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	st := seedLineage(t, dir)
	before, _, err := st.CrossDiff("demo", runName(0), "demo-v2", runName(1), cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	mBefore, _, err := st.SpecMapping("demo", "demo-v2")
	if err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh store over the same persisted state.
	st2 := openTestStore(t, dir)
	mAfter, linked, err := st2.SpecMapping("demo", "demo-v2")
	if err != nil {
		t.Fatal(err)
	}
	if !linked {
		t.Error("lineage link lost across restart")
	}
	if mAfter.Cost != mBefore.Cost || len(mAfter.Pairs) != len(mBefore.Pairs) {
		t.Errorf("mapping drifted across restart: cost %g/%d pairs vs %g/%d",
			mAfter.Cost, len(mAfter.Pairs), mBefore.Cost, len(mBefore.Pairs))
	}
	after, _, err := st2.CrossDiff("demo", runName(0), "demo-v2", runName(1), cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(after.Distance-before.Distance) > 1e-9 {
		t.Errorf("cross distance drifted across restart: %g vs %g", after.Distance, before.Distance)
	}

	// Corrupt the frame: a third store must fall back to recomputing
	// and still answer identically.
	frame := mappingBinKey("demo-v2")
	data, err := st2.Backend().ReadFile(frame)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := st2.Backend().WriteFile(frame, data); err != nil {
		t.Fatal(err)
	}
	st3 := openTestStore(t, dir)
	mRepaired, _, err := st3.SpecMapping("demo", "demo-v2")
	if err != nil {
		t.Fatal(err)
	}
	if mRepaired.Cost != mBefore.Cost {
		t.Errorf("recomputed mapping cost %g != original %g", mRepaired.Cost, mBefore.Cost)
	}
}

func TestLineageRejectsBadNames(t *testing.T) {
	st := seedLineage(t, t.TempDir())
	if _, err := st.Lineage("../etc"); err == nil {
		t.Error("traversal name accepted")
	}
	if err := st.PutSpecVersion("demo", "demo", nil); err == nil {
		t.Error("self-parent accepted")
	}
	if _, _, err := st.SpecMapping("demo", "no-such-spec"); err == nil {
		t.Error("unknown spec accepted")
	}
}

// TestSaveSpecDropsStaleMappings: overwriting a (run-less) spec must
// evict cached mappings that point into the replaced spec object, or
// every later CrossDiff would fail with a spec-identity mismatch.
func TestSaveSpecDropsStaleMappings(t *testing.T) {
	st := openStore(t)
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("a", pa); err != nil {
		t.Fatal(err)
	}
	mb, err := gen.Catalog("MB")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("b", mb); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.SpecMapping("a", "b"); err != nil {
		t.Fatal(err)
	}
	// Overwrite spec "a" (no runs yet, so this is allowed).
	em, err := gen.Catalog("EMBOSS")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec("a", em); err != nil {
		t.Fatal(err)
	}
	m, _, err := st.SpecMapping("a", "b")
	if err != nil {
		t.Fatal(err)
	}
	cur, err := st.LoadSpec("a")
	if err != nil {
		t.Fatal(err)
	}
	if m.A != cur {
		t.Fatal("SpecMapping served a mapping into the replaced spec object")
	}
	// And cross-diffing with runs built on the current object works.
	rng := rand.New(rand.NewSource(2))
	r, err := gen.RandomRun(cur, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRun("a", "r0", r); err != nil {
		t.Fatal(err)
	}
	spb, err := st.LoadSpec("b")
	if err != nil {
		t.Fatal(err)
	}
	rb, err := gen.RandomRun(spb, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveRun("b", "r0", rb); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.CrossDiff("a", "r0", "b", "r0", cost.Unit{}); err != nil {
		t.Fatalf("cross diff after spec overwrite: %v", err)
	}
}

// TestPutSpecVersionRejectsCycles: closing a lineage loop would leave
// every walk over the involved specs failing forever, so the link must
// be refused at put time.
func TestPutSpecVersionRejectsCycles(t *testing.T) {
	st := seedLineage(t, t.TempDir())
	// demo-v3 descends from demo; linking demo under demo-v3 (or any
	// descendant) must be refused.
	sp, err := st.LoadSpec("demo")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.PutSpecVersion("demo-v3", "demo", sp); err == nil {
		t.Fatal("direct lineage cycle accepted")
	}
	if err := st.PutSpecVersion("demo-v2", "demo", sp); err == nil {
		t.Fatal("two-step lineage cycle accepted")
	}
	// Lineage must still work afterwards.
	if _, err := st.Lineage("demo-v3"); err != nil {
		t.Fatalf("lineage broken after rejected cycle: %v", err)
	}
}
