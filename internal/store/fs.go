package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// fsBackend is the classic directory-tree backend: every key maps to
// the file of the same relative path under root, byte-compatible with
// repositories written before the backend seam existed.
type fsBackend struct {
	root string
}

// NewFSBackend opens (creating if needed) a filesystem backend rooted
// at dir.
func NewFSBackend(dir string) (Backend, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &fsBackend{root: dir}, nil
}

func (b *fsBackend) Kind() string { return "fs" }

func (b *fsBackend) path(key string) string {
	return filepath.Join(b.root, filepath.FromSlash(key))
}

func (b *fsBackend) ReadFile(key string) ([]byte, error) {
	return os.ReadFile(b.path(key))
}

// WriteFile is atomic: temp file in the destination directory, then
// rename. Readers racing the write see old or new bytes, never a
// prefix — the manifest and compaction paths depend on it.
func (b *fsBackend) WriteFile(key string, data []byte) error {
	path := b.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (b *fsBackend) Append(key string, data []byte, sync bool) error {
	path := b.path(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func (b *fsBackend) ReadAt(key string, p []byte, off int64) error {
	f, err := os.Open(b.path(key))
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.ReadAt(p, off)
	return err
}

func (b *fsBackend) Stat(key string) (BlobInfo, error) {
	fi, err := os.Stat(b.path(key))
	if err != nil {
		return BlobInfo{}, err
	}
	return BlobInfo{Size: fi.Size(), ModTime: fi.ModTime()}, nil
}

func (b *fsBackend) List(dir string) ([]Entry, error) {
	entries, err := os.ReadDir(b.path(dir))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	out := make([]Entry, 0, len(entries))
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			continue // in-flight atomic write, not a blob
		}
		out = append(out, Entry{Name: e.Name(), Dir: e.IsDir()})
	}
	return out, nil
}

func (b *fsBackend) Remove(key string) error {
	return os.Remove(b.path(key))
}

func (b *fsBackend) Close() error { return nil }
