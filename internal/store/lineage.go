package store

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/evolve"
	"repro/internal/spec"
)

// Spec lineage: the store tracks which specification a version evolved
// from, and keeps the spec-to-spec edit mapping of every parent→child
// step as a binary snapshot frame, so cross-version queries never
// recompute a mapping that was already computed when the version was
// registered.
//
// Layout, per child specification:
//
//	<root>/<child>/lineage.json           {"version":1,"parent":"<name>"}
//	<root>/<child>/snapshot/lineage.bin   codec frame of the parent→child mapping
//
// lineage.json is authoritative; the mapping frame is a cache — if it
// is missing, corrupt, or decodes against drifted spec trees, the
// mapping is recomputed from the stored specifications and the frame
// rewritten. Mappings between lineage-linked specs further apart than
// one step are composed from the per-step mappings; unlinked pairs are
// mapped directly on demand (and cached in memory only).

// lineageVersion guards the lineage.json schema.
const lineageVersion = 1

type lineageDoc struct {
	Version int    `json:"version"`
	Parent  string `json:"parent"`
}

func lineageKey(specName string) string    { return specName + "/lineage.json" }
func mappingBinKey(specName string) string { return specName + "/snapshot/lineage.bin" }

// PutSpecVersion stores child as a new specification version evolved
// from the stored specification parentName: the child spec is saved
// under childName, the lineage link is recorded, and the parent→child
// edit mapping is computed (under evolve.DefaultCosts) and persisted
// as a snapshot frame.
func (s *Store) PutSpecVersion(parentName, childName string, child *spec.Spec) error {
	if err := validName(parentName); err != nil {
		return err
	}
	if err := validName(childName); err != nil {
		return err
	}
	if parentName == childName {
		return fmt.Errorf("store: a specification cannot be its own parent")
	}
	if child == nil {
		return fmt.Errorf("store: nil specification")
	}
	// Refuse links that would close a cycle: if the child already
	// appears in the parent's ancestry, writing this record would
	// leave every lineage walk over these specs failing forever.
	parentChain, err := s.Lineage(parentName)
	if err != nil {
		return err
	}
	for _, anc := range parentChain {
		if anc == childName {
			return fmt.Errorf("store: linking %q under %q would create a lineage cycle (%q descends from %q)",
				childName, parentName, parentName, childName)
		}
	}
	parent, err := s.LoadSpec(parentName)
	if err != nil {
		return err
	}
	if err := s.SaveSpec(childName, child); err != nil {
		return err
	}
	m, err := evolve.SpecDiff(parent, child, evolve.DefaultCosts())
	if err != nil {
		return err
	}
	doc, err := json.Marshal(lineageDoc{Version: lineageVersion, Parent: parentName})
	if err != nil {
		return err
	}
	if err := s.be.WriteFile(lineageKey(childName), append(doc, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.writeMappingSnapshot(childName, m) // best-effort cache frame
	// SaveSpec above already dropped any mapping involving the child.
	s.cacheMapping(mappingKey(parentName, childName), m)
	return nil
}

// writeMappingSnapshot persists the parent→child mapping frame
// (best-effort: a failure only costs a recompute on next load).
func (s *Store) writeMappingSnapshot(childName string, m *evolve.SpecMapping) {
	data, err := codec.EncodeSpecMapping(m)
	if err != nil {
		return
	}
	_ = s.be.WriteFile(mappingBinKey(childName), data)
}

// Parent returns the recorded parent version of a specification, or ""
// when the specification has no lineage link.
func (s *Store) Parent(specName string) (string, error) {
	if err := validName(specName); err != nil {
		return "", err
	}
	data, err := s.be.ReadFile(lineageKey(specName))
	if err != nil {
		if isNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("store: %w", err)
	}
	var doc lineageDoc
	if err := json.Unmarshal(data, &doc); err != nil || doc.Version != lineageVersion {
		return "", fmt.Errorf("store: malformed lineage record for %q", specName)
	}
	if err := validName(doc.Parent); err != nil {
		return "", fmt.Errorf("store: lineage record of %q: %w", specName, err)
	}
	return doc.Parent, nil
}

// Lineage returns the version chain of a specification, oldest-last:
// [name, parent, grandparent, ...].
func (s *Store) Lineage(specName string) ([]string, error) {
	if err := validName(specName); err != nil {
		return nil, err
	}
	chain := []string{specName}
	seen := map[string]bool{specName: true}
	cur := specName
	for {
		parent, err := s.Parent(cur)
		if err != nil {
			return nil, err
		}
		if parent == "" {
			return chain, nil
		}
		if seen[parent] {
			return nil, fmt.Errorf("store: lineage of %q contains a cycle at %q", specName, parent)
		}
		seen[parent] = true
		chain = append(chain, parent)
		cur = parent
	}
}

func mappingKey(a, b string) string { return a + "\x00" + b }

// maxCachedMappings bounds the in-memory mapping cache. Lineage-step
// mappings are bounded by the number of stored specs, but unlinked
// pairs are client-controlled (every /specs/{a}/evolve/{b} pair is a
// distinct key), so past the cap those are computed per call instead
// of growing the map without bound.
const maxCachedMappings = 256

// cacheMapping inserts a computed mapping unless the cache is at
// capacity; it returns the canonical mapping for the key (the first
// one cached wins when goroutines race).
func (s *Store) cacheMapping(key string, m *evolve.SpecMapping) *evolve.SpecMapping {
	s.mapMu.Lock()
	defer s.mapMu.Unlock()
	if have, ok := s.mappings[key]; ok {
		return have
	}
	if len(s.mappings) < maxCachedMappings {
		s.mappings[key] = m
	}
	return m
}

// dropMappings evicts every cached mapping involving the named spec —
// called when a specification is overwritten so no mapping keeps
// pointers into the replaced spec object.
func (s *Store) dropMappings(specName string) {
	s.mapMu.Lock()
	defer s.mapMu.Unlock()
	for key := range s.mappings {
		a, b, _ := strings.Cut(key, "\x00")
		if a == specName || b == specName {
			delete(s.mappings, key)
		}
	}
}

// Linked reports whether two stored specifications are lineage-linked
// (equal, or one descends from the other) — the cheap pre-check for
// cross-version diffing, walking only lineage records.
func (s *Store) Linked(aName, bName string) (bool, error) {
	if err := validName(aName); err != nil {
		return false, err
	}
	if err := validName(bName); err != nil {
		return false, err
	}
	if aName == bName {
		return true, nil
	}
	chain, err := s.Lineage(bName)
	if err != nil {
		return false, err
	}
	for _, anc := range chain {
		if anc == aName {
			return true, nil
		}
	}
	chain, err = s.Lineage(aName)
	if err != nil {
		return false, err
	}
	for _, anc := range chain {
		if anc == bName {
			return true, nil
		}
	}
	return false, nil
}

// stepMapping returns the parent→child mapping of one lineage step,
// from the snapshot frame when it decodes cleanly against the current
// spec trees, recomputed (and the frame repaired) otherwise.
func (s *Store) stepMapping(parentName, childName string) (*evolve.SpecMapping, error) {
	s.mapMu.Lock()
	if m, ok := s.mappings[mappingKey(parentName, childName)]; ok {
		s.mapMu.Unlock()
		return m, nil
	}
	s.mapMu.Unlock()
	parent, err := s.LoadSpec(parentName)
	if err != nil {
		return nil, err
	}
	child, err := s.LoadSpec(childName)
	if err != nil {
		return nil, err
	}
	var m *evolve.SpecMapping
	if data, err := s.be.ReadFile(mappingBinKey(childName)); err == nil {
		m, _ = codec.DecodeSpecMapping(data, parent, child)
	}
	if m == nil {
		if m, err = evolve.SpecDiff(parent, child, evolve.DefaultCosts()); err != nil {
			return nil, err
		}
		s.writeMappingSnapshot(childName, m)
	}
	return s.cacheMapping(mappingKey(parentName, childName), m), nil
}

// SpecMapping returns the edit mapping from specification version a to
// version b, and whether the two are lineage-linked. Linked pairs
// compose the persisted per-step mappings (inverted when a descends
// from b); unlinked pairs are mapped directly and cached in memory.
func (s *Store) SpecMapping(aName, bName string) (m *evolve.SpecMapping, linked bool, err error) {
	if err := validName(aName); err != nil {
		return nil, false, err
	}
	if err := validName(bName); err != nil {
		return nil, false, err
	}
	if aName == bName {
		sp, err := s.LoadSpec(aName)
		if err != nil {
			return nil, false, err
		}
		return evolve.Identity(sp), true, nil
	}
	// b descends from a?
	chain, err := s.Lineage(bName)
	if err != nil {
		return nil, false, err
	}
	for i, anc := range chain {
		if anc != aName {
			continue
		}
		// chain[i] == a ... chain[0] == b; compose steps downward.
		m, err := s.stepMapping(chain[i], chain[i-1])
		if err != nil {
			return nil, false, err
		}
		for j := i - 1; j > 0; j-- {
			step, err := s.stepMapping(chain[j], chain[j-1])
			if err != nil {
				return nil, false, err
			}
			if m, err = evolve.Compose(m, step); err != nil {
				return nil, false, err
			}
		}
		return m, true, nil
	}
	// a descends from b?
	chain, err = s.Lineage(aName)
	if err != nil {
		return nil, false, err
	}
	for _, anc := range chain[1:] {
		if anc == bName {
			rev, _, err := s.SpecMapping(bName, aName)
			if err != nil {
				return nil, false, err
			}
			return rev.Invert(), true, nil
		}
	}
	// Unlinked: map directly, cache in memory only.
	s.mapMu.Lock()
	if m, ok := s.mappings[mappingKey(aName, bName)]; ok {
		s.mapMu.Unlock()
		return m, false, nil
	}
	s.mapMu.Unlock()
	a, err := s.LoadSpec(aName)
	if err != nil {
		return nil, false, err
	}
	b, err := s.LoadSpec(bName)
	if err != nil {
		return nil, false, err
	}
	if m, err = evolve.SpecDiff(a, b, evolve.DefaultCosts()); err != nil {
		return nil, false, err
	}
	return s.cacheMapping(mappingKey(aName, bName), m), false, nil
}

// CrossDiff compares a run of specification version a with a run of
// version b through their spec mapping: runA is projected into b's
// node space, differenced against runB, and the regions the mapping
// could not carry are priced as inserts and deletes. It reports
// whether the two versions are lineage-linked.
func (s *Store) CrossDiff(aName, runA, bName, runB string, m cost.Model) (*evolve.CrossResult, bool, error) {
	return s.CrossDiffWith(core.NewEngine(m), aName, runA, bName, runB, m)
}

// CrossDiffWith is CrossDiff with a caller-owned engine for version
// b's specification under the same cost model — the pooled path the
// HTTP service uses.
func (s *Store) CrossDiffWith(eng *core.Engine, aName, runA, bName, runB string, m cost.Model) (*evolve.CrossResult, bool, error) {
	mapping, linked, err := s.SpecMapping(aName, bName)
	if err != nil {
		return nil, false, err
	}
	ra, err := s.LoadRun(aName, runA)
	if err != nil {
		return nil, linked, err
	}
	rb, err := s.LoadRun(bName, runB)
	if err != nil {
		return nil, linked, err
	}
	res, err := evolve.CrossDiffWith(eng, mapping, ra, rb, m)
	if err != nil {
		return nil, linked, err
	}
	return res, linked, nil
}
