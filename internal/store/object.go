package store

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// objectBackend is an object-store-shaped backend: blobs are
// content-addressed, write-once chunk objects under objects/, and one
// small JSON index maps logical keys onto chunk lists. It is the
// S3/MinIO access pattern — immutable objects plus an index, no
// in-place mutation, no directories — run against a local "bucket"
// directory so CI needs no external service.
//
// Layout of the bucket:
//
//	bucket.json                 key → [{hash,size}...] index (atomic rewrite)
//	objects/<hh>/<sha256-hex>   immutable chunk objects
//
// WriteFile stores one chunk and repoints the key (atomicity comes
// from the index rename, exactly like an object-store PUT); Append
// adds a chunk to the key's list, so append-heavy files (the segment,
// the ledger, live journals) never rewrite earlier bytes. Identical
// content dedupes onto one object. Chunks orphaned by overwrites or
// removals are left in place — they are cheap, content-addressed, and
// a future GC sweep can collect anything the index no longer
// references.
type objectBackend struct {
	dir string

	mu    sync.RWMutex
	index map[string]objectEntry
}

type objectEntry struct {
	Chunks   []objectChunk `json:"chunks"`
	ModNanos int64         `json:"mod_nanos"`
}

type objectChunk struct {
	Hash string `json:"hash"`
	Size int64  `json:"size"`
}

type objectIndex struct {
	Version int                    `json:"version"`
	Keys    map[string]objectEntry `json:"keys"`
}

const objectIndexVersion = 1

// NewObjectBackend opens (creating if needed) an object backend over
// the local bucket directory dir.
func NewObjectBackend(dir string) (Backend, error) {
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	b := &objectBackend{dir: dir, index: make(map[string]objectEntry)}
	data, err := os.ReadFile(b.indexPath())
	if err == nil {
		var idx objectIndex
		if err := json.Unmarshal(data, &idx); err != nil {
			return nil, fmt.Errorf("store: corrupt bucket index %s: %w", b.indexPath(), err)
		}
		if idx.Version != objectIndexVersion {
			return nil, fmt.Errorf("store: bucket index version %d, want %d", idx.Version, objectIndexVersion)
		}
		if idx.Keys != nil {
			b.index = idx.Keys
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	return b, nil
}

func (b *objectBackend) Kind() string      { return "object" }
func (b *objectBackend) indexPath() string { return filepath.Join(b.dir, "bucket.json") }

func (b *objectBackend) chunkPath(hash string) string {
	return filepath.Join(b.dir, "objects", hash[:2], hash)
}

// putChunk stores data as a content-addressed object, returning its
// chunk descriptor. An object that already exists is reused — content
// addressing makes the write idempotent. With sync set the bytes are
// fsynced before the object becomes visible.
func (b *objectBackend) putChunk(data []byte, sync bool) (objectChunk, error) {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	ch := objectChunk{Hash: hash, Size: int64(len(data))}
	path := b.chunkPath(hash)
	if _, err := os.Stat(path); err == nil {
		return ch, nil // dedup: immutable object already present
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return objectChunk{}, err
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return objectChunk{}, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return objectChunk{}, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return objectChunk{}, err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return objectChunk{}, err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return objectChunk{}, err
	}
	return ch, nil
}

// saveIndexLocked atomically rewrites bucket.json. Caller holds b.mu.
func (b *objectBackend) saveIndexLocked(sync bool) error {
	data, err := json.Marshal(objectIndex{Version: objectIndexVersion, Keys: b.index})
	if err != nil {
		return err
	}
	tmp := b.indexPath() + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, b.indexPath()); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

func (b *objectBackend) ReadFile(key string) ([]byte, error) {
	b.mu.RLock()
	e, ok := b.index[key]
	b.mu.RUnlock()
	if !ok {
		return nil, notExist("read", key)
	}
	var total int64
	for _, ch := range e.Chunks {
		total += ch.Size
	}
	out := make([]byte, 0, total)
	for _, ch := range e.Chunks {
		data, err := os.ReadFile(b.chunkPath(ch.Hash))
		if err != nil {
			return nil, fmt.Errorf("store: object %s chunk %s: %w", key, ch.Hash, err)
		}
		if int64(len(data)) != ch.Size {
			return nil, fmt.Errorf("store: object %s chunk %s is %d bytes, index says %d", key, ch.Hash, len(data), ch.Size)
		}
		out = append(out, data...)
	}
	return out, nil
}

func (b *objectBackend) WriteFile(key string, data []byte) error {
	ch, err := b.putChunk(data, false)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.index[key] = objectEntry{Chunks: []objectChunk{ch}, ModNanos: time.Now().UnixNano()}
	return b.saveIndexLocked(false)
}

func (b *objectBackend) Append(key string, data []byte, sync bool) error {
	ch, err := b.putChunk(data, sync)
	if err != nil {
		return err
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.index[key]
	e.Chunks = append(append([]objectChunk(nil), e.Chunks...), ch)
	e.ModNanos = time.Now().UnixNano()
	b.index[key] = e
	return b.saveIndexLocked(sync)
}

func (b *objectBackend) ReadAt(key string, p []byte, off int64) error {
	b.mu.RLock()
	e, ok := b.index[key]
	b.mu.RUnlock()
	if !ok {
		return notExist("readat", key)
	}
	if off < 0 {
		return fmt.Errorf("store: object %s: negative offset %d", key, off)
	}
	filled := 0
	pos := int64(0)
	for _, ch := range e.Chunks {
		if filled == len(p) {
			break
		}
		end := pos + ch.Size
		if end <= off {
			pos = end
			continue
		}
		data, err := os.ReadFile(b.chunkPath(ch.Hash))
		if err != nil {
			return fmt.Errorf("store: object %s chunk %s: %w", key, ch.Hash, err)
		}
		start := int64(0)
		if off > pos {
			start = off - pos
		}
		filled += copy(p[filled:], data[start:])
		pos = end
	}
	if filled < len(p) {
		return fmt.Errorf("store: object %s: read %d of %d bytes at offset %d", key, filled, len(p), off)
	}
	return nil
}

func (b *objectBackend) Stat(key string) (BlobInfo, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	e, ok := b.index[key]
	if !ok {
		return BlobInfo{}, notExist("stat", key)
	}
	var total int64
	for _, ch := range e.Chunks {
		total += ch.Size
	}
	return BlobInfo{Size: total, ModTime: time.Unix(0, e.ModNanos)}, nil
}

func (b *objectBackend) List(dir string) ([]Entry, error) {
	prefix := ""
	if dir != "" {
		prefix = strings.TrimSuffix(dir, "/") + "/"
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	seen := make(map[string]bool)
	var out []Entry
	for key := range b.index {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		rest := key[len(prefix):]
		name, more := rest, false
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			name, more = rest[:i], true
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, Entry{Name: name, Dir: more})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (b *objectBackend) Remove(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.index[key]; !ok {
		return notExist("remove", key)
	}
	delete(b.index, key)
	return b.saveIndexLocked(false)
}

func (b *objectBackend) Close() error { return nil }
