package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/sptree"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// seedDir fills a fresh repository with the PA workflow under "pa"
// and n generated runs r0..r{n-1}, returning its directory.
func seedDir(t testing.TB, n int) string {
	t.Helper()
	dir := t.TempDir()
	s := openTestStore(t, dir)
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < n; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveRun("pa", fmt.Sprintf("r%d", i), r); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// xmlOnly strips the snapshot layer from a repository so loads must
// take the XML path.
func xmlOnly(t testing.TB, dir string) {
	t.Helper()
	be := openTestBackend(t, dir)
	entries, err := be.List("pa/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := be.Remove("pa/snapshot/" + e.Name); err != nil {
			t.Fatal(err)
		}
	}
}

func reopen(t testing.TB, dir string) *Store {
	t.Helper()
	return openTestStore(t, dir)
}

// TestSnapshotRoundTrip is the snapshot analogue of the codec
// property test, through the full store: a run loaded by a cold store
// from its snapshot is indistinguishable from the same run loaded by
// a cold store forced onto the XML path.
func TestSnapshotRoundTrip(t *testing.T) {
	const n = 6
	dir := seedDir(t, n)
	if _, err := reopen(t, dir).Snapshot("pa"); err != nil {
		t.Fatal(err)
	}

	snapStore := reopen(t, dir)
	snapRuns := make(map[string]*wfrun.Run, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("r%d", i)
		r, err := snapStore.LoadRun("pa", name)
		if err != nil {
			t.Fatal(err)
		}
		assertInManifest(t, snapStore, name)
		snapRuns[name] = r
	}

	xmlOnly(t, dir)
	cold := reopen(t, dir)
	eng := core.NewEngine(cost.Unit{})
	sp, err := snapStore.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	for name, viaSnap := range snapRuns {
		viaXML, err := cold.LoadRun("pa", name)
		if err != nil {
			t.Fatal(err)
		}
		if viaXML.Tree.String() != viaSnap.Tree.String() {
			t.Errorf("%s: snapshot tree differs from XML tree:\n%s\nvs\n%s", name, viaSnap.Tree, viaXML.Tree)
		}
		if !sptree.Equivalent(viaXML.Tree, viaSnap.Tree) {
			t.Errorf("%s: snapshot tree not equivalent to XML tree", name)
		}
		if viaXML.Graph.String() != viaSnap.Graph.String() {
			t.Errorf("%s: snapshot graph differs from XML graph", name)
		}
		// Differencing needs both runs on one spec object: re-parse the
		// XML against the snapshot store's spec for the distance check.
		data, err := cold.Backend().ReadFile(runXMLKey("pa", name))
		if err != nil {
			t.Fatal(err)
		}
		sameSpec, err := wfxml.DecodeRun(bytes.NewReader(data), sp)
		if err != nil {
			t.Fatal(err)
		}
		if d, err := eng.Distance(viaSnap, sameSpec); err != nil || d != 0 {
			t.Errorf("%s: distance snapshot-vs-xml = %v, %v; want 0, nil", name, d, err)
		}
	}
}

// assertInManifest fails unless the run has a live manifest entry.
func assertInManifest(t *testing.T, s *Store, runName string) {
	t.Helper()
	for _, n := range s.ManifestRuns("pa") {
		if n == runName {
			return
		}
	}
	t.Fatalf("run %q has no snapshot manifest entry", runName)
}

// TestSnapshotCorruptionFallsBackToXML flips bytes throughout the
// segment file and requires every load to still return a correct,
// valid run via the XML fallback — and the fallback to repair the
// snapshot so the next cold start is warm again.
func TestSnapshotCorruptionFallsBackToXML(t *testing.T) {
	dir := seedDir(t, 4)
	if _, err := reopen(t, dir).Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	be := openTestBackend(t, dir)
	data, err := be.ReadFile(segmentKey("pa"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(data); i += 7 {
		data[i] ^= 0xff
	}
	if err := be.WriteFile(segmentKey("pa"), data); err != nil {
		t.Fatal(err)
	}
	corrupted := reopen(t, dir)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("r%d", i)
		r, err := corrupted.LoadRun("pa", name)
		if err != nil {
			t.Fatalf("load %s over corrupt snapshot: %v", name, err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("run %s loaded over corrupt snapshot is invalid: %v", name, err)
		}
	}
	// The fallback repaired the frames: a fresh store preloads without
	// touching the XML parser.
	pre, err := reopen(t, dir).Preload("pa")
	if err != nil {
		t.Fatal(err)
	}
	if pre.FromXML != 0 {
		t.Fatalf("after repair, Preload still parsed %d runs from XML", pre.FromXML)
	}
}

// TestDeleteRunDropsSnapshot is the regression test for the delete
// path: a deleted run must disappear from the manifest and stay gone
// after a restart, with exactly one change notification.
func TestDeleteRunDropsSnapshot(t *testing.T) {
	dir := seedDir(t, 3)
	s := reopen(t, dir)
	if _, err := s.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	var single, bulk int
	s.OnRunChange(func(spec, run string) { single++ })
	s.OnRunsBulkChange(func(spec string, runs []string) { bulk++ })
	if err := s.DeleteRun("pa", "r1"); err != nil {
		t.Fatal(err)
	}
	if single != 1 || bulk != 0 {
		t.Fatalf("delete fired %d single + %d bulk notifications, want 1 + 0", single, bulk)
	}
	for _, n := range s.ManifestRuns("pa") {
		if n == "r1" {
			t.Fatal("deleted run still in snapshot manifest")
		}
	}
	// Restart: the run must not resurrect from the snapshot layer.
	restarted := reopen(t, dir)
	if _, err := restarted.LoadRun("pa", "r1"); err == nil {
		t.Fatal("deleted run loadable after restart")
	}
	runs, err := restarted.ListRuns("pa")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("ListRuns after delete+restart = %v", runs)
	}
	pre, err := restarted.Preload("pa")
	if err != nil {
		t.Fatal(err)
	}
	if pre.Runs != 2 || pre.FromXML != 0 {
		t.Fatalf("Preload after delete+restart = %+v, want 2 runs all from snapshot", pre)
	}
}

// TestSaveRunInvalidatesSnapshot: re-importing a run must demote its
// old snapshot frame — a restarted store serves the new content.
func TestSaveRunInvalidatesSnapshot(t *testing.T) {
	dir := seedDir(t, 2)
	s := reopen(t, dir)
	if _, err := s.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	sp, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	fresh, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRun("pa", "r0", fresh); err != nil {
		t.Fatal(err)
	}
	// What a fresh parse of the new XML yields:
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, fresh, "r0"); err != nil {
		t.Fatal(err)
	}
	want, err := wfxml.DecodeRun(bytes.NewReader(buf.Bytes()), sp)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopen(t, dir).LoadRun("pa", "r0")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tree.LabelSignature() != want.Tree.LabelSignature() {
		t.Fatal("restarted store served the pre-overwrite run")
	}
}

func TestPreloadWarmsEverything(t *testing.T) {
	dir := seedDir(t, 5)
	if _, err := reopen(t, dir).Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	s := reopen(t, dir)
	all, err := s.PreloadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].Runs != 5 || all[0].FromSnapshot != 5 || all[0].FromXML != 0 {
		t.Fatalf("PreloadAll = %+v", all)
	}
	// Everything must now come from memory: repeated loads share the
	// cached object.
	a, err := s.LoadRun("pa", "r0")
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.LoadRun("pa", "r0")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("post-Preload loads did not share the cached run")
	}
}

// TestSnapshotZeroRuns: snapshotting (and preloading) a spec with no
// runs must be a no-op, not a crash — provserved warm-starts every
// spec, including ones where import-spec just ran.
func TestSnapshotZeroRuns(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	stats, err := s.Snapshot("pa")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != 0 || stats.Written != 0 || stats.LiveBytes != 0 {
		t.Fatalf("zero-run Snapshot = %+v", stats)
	}
	pre, err := s.Preload("pa")
	if err != nil {
		t.Fatal(err)
	}
	if pre.Runs != 0 {
		t.Fatalf("zero-run Preload = %+v", pre)
	}
}

// TestSnapshotRejectsWrongRunRecord: a manifest entry pointing at a
// record that names a different run (the compaction-race shape: a
// stale offset landing on another run's equal-length, checksum-valid
// record) must demote to the XML path, never serve the wrong run.
func TestSnapshotRejectsWrongRunRecord(t *testing.T) {
	dir := seedDir(t, 2)
	s := reopen(t, dir)
	if _, err := s.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	// Point r0's manifest entry at r1's record.
	st := s.snap("pa")
	st.mu.Lock()
	e0, e1 := st.manifest.Runs["r0"], st.manifest.Runs["r1"]
	e1.XMLSize, e1.XMLModNanos = e0.XMLSize, e0.XMLModNanos // keep r0's fingerprint valid
	st.manifest.Runs["r0"] = snapEntry{
		Offset: e1.Offset, Length: e1.Length, Codec: e1.Codec,
		Nodes: e1.Nodes, Edges: e1.Edges,
		XMLSize: e0.XMLSize, XMLModNanos: e0.XMLModNanos,
	}
	st.mu.Unlock()
	sp, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.loadRunSnapshot("pa", "r0", sp); ok {
		t.Fatal("snapshot served a record naming a different run")
	}
	// The full load path still answers correctly via XML.
	r0, err := s.LoadRun("pa", "r0")
	if err != nil {
		t.Fatal(err)
	}
	r1, err := s.LoadRun("pa", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if r0.Tree.LabelSignature() == r1.Tree.LabelSignature() {
		t.Fatal("r0 and r1 unexpectedly identical; test fixture is degenerate")
	}
}

// TestManifestLossCountsSegmentDead: losing manifest.json must not
// orphan the segment's bytes — they are re-counted as dead so
// compaction accounting stays truthful and can reclaim them.
func TestManifestLossCountsSegmentDead(t *testing.T) {
	dir := seedDir(t, 3)
	if _, err := reopen(t, dir).Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	if err := openTestBackend(t, dir).WriteFile(manifestKey("pa"), []byte("{corrupt")); err != nil {
		t.Fatal(err)
	}
	s := reopen(t, dir)
	// Loads still work (XML fallback repairs into a fresh manifest).
	if _, err := s.LoadRun("pa", "r0"); err != nil {
		t.Fatal(err)
	}
	st := s.snap("pa")
	st.mu.Lock()
	dead := st.manifest.Dead
	st.mu.Unlock()
	if dead == 0 {
		t.Fatal("orphaned segment bytes not counted as dead after manifest loss")
	}
}

// TestSnapshotIdempotent: a second Snapshot writes nothing.
func TestSnapshotIdempotent(t *testing.T) {
	dir := seedDir(t, 3)
	s := reopen(t, dir)
	first, err := s.Snapshot("pa")
	if err != nil {
		t.Fatal(err)
	}
	if first.Written != 3 {
		t.Fatalf("first Snapshot wrote %d frames, want 3", first.Written)
	}
	second, err := s.Snapshot("pa")
	if err != nil {
		t.Fatal(err)
	}
	if second.Written != 0 || second.Fresh != 3 {
		t.Fatalf("second Snapshot = %+v, want all fresh", second)
	}
}

// TestSnapshotCompaction: repeatedly re-importing runs accrues dead
// segment bytes; once past the threshold the segment is rewritten and
// every surviving run still loads from it.
func TestSnapshotCompaction(t *testing.T) {
	dir := seedDir(t, 2)
	s := reopen(t, dir)
	sp, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	// Churn: overwrite r0 many times, snapshotting each version via a
	// load. Dead bytes grow with every overwrite.
	for i := 0; i < 30; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveRun("pa", "r0", r); err != nil {
			t.Fatal(err)
		}
		if _, err := s.LoadRun("pa", "r0"); err != nil {
			t.Fatal(err)
		}
	}
	// Cover the never-loaded r1 too, then force a compaction
	// deterministically through the internal hook to prove the rewrite
	// preserves every live run. (Real compactions trigger on the
	// dead-byte thresholds, which are sized for production churn.)
	if _, err := s.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	st := s.snap("pa")
	st.mu.Lock()
	st.manifest.Dead = compactMinDeadBytes + 1
	err = s.maybeCompactLocked("pa", st)
	live := st.manifest.Live
	st.mu.Unlock()
	if err != nil {
		t.Fatalf("compaction: %v", err)
	}
	fi, err := s.Backend().Stat(segmentKey("pa"))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size != live {
		t.Fatalf("segment is %d bytes after compaction, manifest says %d live", fi.Size, live)
	}
	pre, err := reopen(t, dir).Preload("pa")
	if err != nil {
		t.Fatal(err)
	}
	if pre.FromXML != 0 {
		t.Fatalf("post-compaction Preload parsed %d runs from XML", pre.FromXML)
	}
}

// --- cold-start benchmarks -----------------------------------------
//
// The acceptance bar for the snapshot layer: preloading a 32-run
// cohort from snapshots must beat re-parsing the XML by >= 5x.

func benchColdPreload(b *testing.B, dir string, xmlPath bool) PreloadStats {
	b.Helper()
	var last PreloadStats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := reopen(b, dir)
		// The XML variant measures the pure re-parse cost: snapshot
		// reads AND write-behind repair are both off, so neither
		// benchmark pays for the other's disk traffic.
		s.noSnapshot = xmlPath
		pre, err := s.Preload("pa")
		if err != nil {
			b.Fatal(err)
		}
		last = pre
	}
	return last
}

func BenchmarkColdPreloadSnapshot(b *testing.B) {
	dir := seedDir(b, 32)
	if _, err := reopen(b, dir).Snapshot("pa"); err != nil {
		b.Fatal(err)
	}
	pre := benchColdPreload(b, dir, false)
	if pre.FromXML != 0 {
		b.Fatalf("snapshot preload fell back to XML for %d runs", pre.FromXML)
	}
}

func BenchmarkColdPreloadXML(b *testing.B) {
	dir := seedDir(b, 32)
	pre := benchColdPreload(b, dir, true)
	if pre.FromSnapshot != 0 {
		b.Fatalf("XML preload served %d runs from snapshots", pre.FromSnapshot)
	}
}
