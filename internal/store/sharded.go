package store

import (
	"fmt"
	"hash/fnv"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Sharded backend: a multi-tenant repository spread across N child
// backends. Every key's first path segment is the specification name,
// and a specification lives WHOLLY on one shard — snapshot segment,
// ledger, lineage, live journals and all — so per-spec invariants
// (ledger hash chain, segment offsets, proofs) are identical to the
// single-backend repository byte for byte.
//
// Placement is decided by a consistent-hash ring (virtualNodes points
// per shard, FNV-1a), but discovery beats hashing: at open, each
// shard's existing top-level directories pin their specs to that
// shard, so re-opening with a different shard count never strands
// data the ring would now place elsewhere. The same spec found on two
// shards is a configuration error and fails the open.

// virtualNodes is the number of ring points per shard; enough that a
// 2–16 shard ring spreads tenants within a few percent of even.
const virtualNodes = 64

// ShardStats is one shard's slice of the repository plus its
// operation counters, surfaced through /v1/stats and /v1/metrics.
type ShardStats struct {
	Index        int    `json:"index"`
	Kind         string `json:"kind"`
	Specs        int    `json:"specs"`
	Reads        int64  `json:"reads"`
	Writes       int64  `json:"writes"`
	Appends      int64  `json:"appends"`
	BytesRead    int64  `json:"bytes_read"`
	BytesWritten int64  `json:"bytes_written"`
}

type shardCounters struct {
	reads, writes, appends  atomic.Int64
	bytesRead, bytesWritten atomic.Int64
}

type ringPoint struct {
	hash  uint32
	shard int
}

type shardedBackend struct {
	shards   []Backend
	counters []shardCounters
	ring     []ringPoint // sorted by hash

	mu        sync.RWMutex
	placement map[string]int // spec name -> shard index
}

// NewShardedBackend combines child backends into one backend routing
// specifications across them. Existing specs are discovered on their
// shards and pinned there; new specs are placed by consistent hash.
func NewShardedBackend(shards ...Backend) (Backend, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("store: sharded backend needs at least one shard")
	}
	sb := &shardedBackend{
		shards:    shards,
		counters:  make([]shardCounters, len(shards)),
		placement: make(map[string]int),
	}
	for i := range shards {
		for v := 0; v < virtualNodes; v++ {
			h := fnv.New32a()
			fmt.Fprintf(h, "shard-%d-%d", i, v)
			sb.ring = append(sb.ring, ringPoint{hash: h.Sum32(), shard: i})
		}
	}
	sort.Slice(sb.ring, func(i, j int) bool { return sb.ring[i].hash < sb.ring[j].hash })
	for i, be := range shards {
		entries, err := be.List("")
		if err != nil {
			return nil, fmt.Errorf("store: discovering shard %d: %w", i, err)
		}
		for _, e := range entries {
			if !e.Dir {
				continue
			}
			if prev, ok := sb.placement[e.Name]; ok && prev != i {
				return nil, fmt.Errorf("store: spec %q present on shards %d and %d", e.Name, prev, i)
			}
			sb.placement[e.Name] = i
		}
	}
	return sb, nil
}

// hashShard is the ring lookup for a spec with no discovered home.
func (sb *shardedBackend) hashShard(spec string) int {
	h := fnv.New32a()
	h.Write([]byte(spec))
	hv := h.Sum32()
	i := sort.Search(len(sb.ring), func(i int) bool { return sb.ring[i].hash >= hv })
	if i == len(sb.ring) {
		i = 0
	}
	return sb.ring[i].shard
}

// route picks (and pins) the shard owning a key's specification.
func (sb *shardedBackend) route(key string) int {
	spec, _, _ := strings.Cut(key, "/")
	sb.mu.RLock()
	idx, ok := sb.placement[spec]
	sb.mu.RUnlock()
	if ok {
		return idx
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if idx, ok := sb.placement[spec]; ok {
		return idx
	}
	idx = sb.hashShard(spec)
	sb.placement[spec] = idx
	return idx
}

func (sb *shardedBackend) Kind() string { return "sharded" }

func (sb *shardedBackend) ReadFile(key string) ([]byte, error) {
	i := sb.route(key)
	data, err := sb.shards[i].ReadFile(key)
	if err == nil {
		sb.counters[i].reads.Add(1)
		sb.counters[i].bytesRead.Add(int64(len(data)))
	}
	return data, err
}

func (sb *shardedBackend) WriteFile(key string, data []byte) error {
	i := sb.route(key)
	if err := sb.shards[i].WriteFile(key, data); err != nil {
		return err
	}
	sb.counters[i].writes.Add(1)
	sb.counters[i].bytesWritten.Add(int64(len(data)))
	return nil
}

func (sb *shardedBackend) Append(key string, data []byte, sync bool) error {
	i := sb.route(key)
	if err := sb.shards[i].Append(key, data, sync); err != nil {
		return err
	}
	sb.counters[i].appends.Add(1)
	sb.counters[i].bytesWritten.Add(int64(len(data)))
	return nil
}

func (sb *shardedBackend) ReadAt(key string, p []byte, off int64) error {
	i := sb.route(key)
	if err := sb.shards[i].ReadAt(key, p, off); err != nil {
		return err
	}
	sb.counters[i].reads.Add(1)
	sb.counters[i].bytesRead.Add(int64(len(p)))
	return nil
}

func (sb *shardedBackend) Stat(key string) (BlobInfo, error) {
	return sb.shards[sb.route(key)].Stat(key)
}

// List of the root merges every shard's top level; any other
// directory routes to its spec's shard.
func (sb *shardedBackend) List(dir string) ([]Entry, error) {
	if dir != "" {
		return sb.shards[sb.route(dir)].List(dir)
	}
	merged := make(map[string]Entry)
	for _, be := range sb.shards {
		entries, err := be.List("")
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			merged[e.Name] = e
		}
	}
	out := make([]Entry, 0, len(merged))
	for _, e := range merged {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (sb *shardedBackend) Remove(key string) error {
	return sb.shards[sb.route(key)].Remove(key)
}

func (sb *shardedBackend) Close() error {
	var first error
	for _, be := range sb.shards {
		if err := be.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ShardStats reports each shard's placement count and operation
// counters; Store.ShardStats surfaces it when the store runs sharded.
func (sb *shardedBackend) ShardStats() []ShardStats {
	counts := make([]int, len(sb.shards))
	sb.mu.RLock()
	for _, idx := range sb.placement {
		counts[idx]++
	}
	sb.mu.RUnlock()
	out := make([]ShardStats, len(sb.shards))
	for i := range sb.shards {
		out[i] = ShardStats{
			Index:        i,
			Kind:         sb.shards[i].Kind(),
			Specs:        counts[i],
			Reads:        sb.counters[i].reads.Load(),
			Writes:       sb.counters[i].writes.Load(),
			Appends:      sb.counters[i].appends.Load(),
			BytesRead:    sb.counters[i].bytesRead.Load(),
			BytesWritten: sb.counters[i].bytesWritten.Load(),
		}
	}
	return out
}

// OpenSharded opens a repository over a sharded backend routing
// specifications across the given child backends.
func OpenSharded(shards ...Backend) (*Store, error) {
	sb, err := NewShardedBackend(shards...)
	if err != nil {
		return nil, err
	}
	return OpenBackend(sb), nil
}

// OpenRepository is the CLI-facing constructor behind the -backend and
// -shards flags: it opens dir over the named backend kind, sharded
// across shards child backends rooted at dir/shard-0..shard-(n-1)
// when shards > 1. An empty kind means "fs" and shards <= 1 means a
// plain single backend — together the exact behavior of store.Open.
func OpenRepository(dir, kind string, shards int) (*Store, error) {
	if shards <= 1 {
		be, err := NewBackend(kind, dir)
		if err != nil {
			return nil, err
		}
		return OpenBackend(be), nil
	}
	children := make([]Backend, shards)
	for i := range children {
		be, err := NewBackend(kind, filepath.Join(dir, fmt.Sprintf("shard-%d", i)))
		if err != nil {
			return nil, err
		}
		children[i] = be
	}
	return OpenSharded(children...)
}
