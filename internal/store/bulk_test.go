package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/wfxml"
)

// genRunXML renders n fresh runs of the stored "pa" spec as RunData.
func genRunXML(t testing.TB, s *Store, n int, seed int64, prefix string) []RunData {
	t.Helper()
	sp, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]RunData, n)
	for i := range out {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		name := fmt.Sprintf("%s%d", prefix, i)
		if err := wfxml.EncodeRun(&buf, r, name); err != nil {
			t.Fatal(err)
		}
		out[i] = RunData{Name: name, XML: buf.Bytes()}
	}
	return out
}

func TestImportRunsBulk(t *testing.T) {
	dir := seedDir(t, 2)
	s := reopen(t, dir)
	batch := genRunXML(t, s, 5, 7, "bulk")

	var singles int
	var bulks [][]string
	s.OnRunChange(func(spec, run string) { singles++ })
	s.OnRunsBulkChange(func(spec string, runs []string) {
		if spec != "pa" {
			t.Errorf("bulk notification for spec %q", spec)
		}
		bulks = append(bulks, append([]string(nil), runs...))
	})

	stats, err := s.ImportRuns("pa", batch, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Imported) != 5 || stats.Nodes == 0 || stats.Edges == 0 {
		t.Fatalf("ImportRuns stats = %+v", stats)
	}
	if singles != 0 {
		t.Fatalf("bulk import fired %d per-run notifications, want 0", singles)
	}
	if len(bulks) != 1 || len(bulks[0]) != 5 {
		t.Fatalf("bulk import fired %v coalesced notifications, want one with 5 runs", bulks)
	}

	// All runs listed, loadable, snapshotted and cached.
	runs, err := s.ListRuns("pa")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 7 {
		t.Fatalf("ListRuns = %v, want 7 entries", runs)
	}
	for _, rd := range batch {
		assertInManifest(t, s, rd.Name)
		a, err := s.LoadRun("pa", rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("imported run %s invalid: %v", rd.Name, err)
		}
	}
	// A restarted store preloads the whole cohort from snapshots.
	pre, err := reopen(t, dir).Preload("pa")
	if err != nil {
		t.Fatal(err)
	}
	if pre.Runs != 7 || pre.FromXML > 2 {
		t.Fatalf("post-import Preload = %+v, want 7 runs with only the seed pair possibly from XML", pre)
	}
}

func TestImportRunsRejectsBadBatch(t *testing.T) {
	dir := seedDir(t, 1)
	s := reopen(t, dir)
	good := genRunXML(t, s, 2, 3, "ok")

	// A malformed document rejects the whole batch before any write.
	batch := append(append([]RunData(nil), good...), RunData{Name: "broken", XML: []byte("<run>not closed")})
	if _, err := s.ImportRuns("pa", batch, 2); err == nil {
		t.Fatal("bulk import with a malformed document succeeded")
	}
	runs, _ := s.ListRuns("pa")
	if len(runs) != 1 {
		t.Fatalf("failed bulk import left runs behind: %v", runs)
	}

	// Invalid and duplicate names likewise.
	if _, err := s.ImportRuns("pa", []RunData{{Name: "../evil", XML: good[0].XML}}, 1); err == nil {
		t.Fatal("traversal name accepted")
	}
	if _, err := s.ImportRuns("pa", []RunData{
		{Name: "dup", XML: good[0].XML},
		{Name: "dup", XML: good[1].XML},
	}, 1); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestImportDirAndExportRoundTrip(t *testing.T) {
	dir := seedDir(t, 3)
	s := reopen(t, dir)

	// Export the whole spec as a tar...
	var tarBuf bytes.Buffer
	if err := s.ExportSpec("pa", nil, &tarBuf); err != nil {
		t.Fatal(err)
	}
	runs, err := ReadRunTar(bytes.NewReader(tarBuf.Bytes()), 1<<20, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("tar round trip found %d runs, want 3", len(runs))
	}

	// ...then import the archive's runs under fresh names via a dir.
	stage := t.TempDir()
	for _, rd := range runs {
		if err := os.WriteFile(filepath.Join(stage, "copy-"+rd.Name+".xml"), rd.XML, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := s.ImportDir("pa", stage, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Imported) != 3 {
		t.Fatalf("ImportDir imported %v", stats.Imported)
	}
	all, err := s.ListRuns("pa")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 6 {
		t.Fatalf("runs after import-dir = %v", all)
	}
	// The copies must equal the originals.
	for _, rd := range runs {
		orig, err := s.LoadRun("pa", rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		cp, err := s.LoadRun("pa", "copy-"+rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		if orig.Tree.LabelSignature() != cp.Tree.LabelSignature() {
			t.Errorf("copy of %s differs from original", rd.Name)
		}
	}
}

func TestReadRunTarRejectsOversize(t *testing.T) {
	dir := seedDir(t, 2)
	s := reopen(t, dir)
	var tarBuf bytes.Buffer
	if err := s.ExportSpec("pa", nil, &tarBuf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRunTar(bytes.NewReader(tarBuf.Bytes()), 16, 1<<24); err == nil {
		t.Fatal("per-run size limit not enforced")
	}
	if _, err := ReadRunTar(bytes.NewReader(tarBuf.Bytes()), 1<<20, 16); err == nil {
		t.Fatal("total size limit not enforced")
	}
}
