package store

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/wfxml"
)

// BenchmarkIngestWithLedger measures the durable group-commit write
// path with ledger attestation end to end: each iteration commits a
// batch of 16 pre-parsed runs through ImportParsed — XML write,
// frame encode + content hash, one fsynced segment append, one
// fsynced ledger batch record, one manifest save. Two content
// variants alternate under the same 16 run names so no iteration is
// served by the content-hash dedup path: every batch writes and
// attests 16 fresh frames, and the steady-state churn (dead bytes,
// occasional compaction) is part of the measured cost.
func BenchmarkIngestWithLedger(b *testing.B) {
	dir := seedDir(b, 0)
	s := reopen(b, dir)
	sp, err := s.LoadSpec("pa")
	if err != nil {
		b.Fatal(err)
	}
	const batchSize = 16
	variants := make([][]ParsedRun, 2)
	for v := range variants {
		rng := rand.New(rand.NewSource(int64(100 + v)))
		batch := make([]ParsedRun, batchSize)
		for i := range batch {
			r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
			if err != nil {
				b.Fatal(err)
			}
			name := fmt.Sprintf("w%d", i)
			var buf bytes.Buffer
			if err := wfxml.EncodeRun(&buf, r, name); err != nil {
				b.Fatal(err)
			}
			batch[i] = ParsedRun{Name: name, XML: buf.Bytes(), Run: r}
		}
		variants[v] = batch
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ImportParsed("pa", variants[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}
