package store

// Ledger queries over the snapshot layer: per-run inclusion proofs,
// per-spec heads, the whole-repository root, and the verifier that
// re-hashes segment frames against the ledger. The ledger itself is
// written by writeRunSnapshotBatch (one record per group commit);
// everything here only reads.

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"repro/internal/codec"
	"repro/internal/ledger"
)

// RunProof is everything a client needs to verify one run's inclusion
// in the repository history without trusting the server: fold Leaf up
// Path to Root, chain Prev+Root and then each root in Chain to Head,
// and compare Head against the spec's head in /v1/stats (whose
// per-spec heads in turn determine the repository root).
type RunProof struct {
	Spec string `json:"spec"`
	Run  string `json:"run"`
	// Hash is the content hash of the run's codec frame; Leaf its
	// Merkle leaf H(0x00||hash).
	Hash string `json:"hash"`
	Leaf string `json:"leaf"`
	// Batch is the ledger seq of the record that attested the frame,
	// Index the leaf's position among the record's BatchSize leaves.
	Batch     int64 `json:"batch"`
	Index     int   `json:"index"`
	BatchSize int   `json:"batch_size"`
	// Path is the leaf-to-root sibling path inside the batch.
	Path []ledger.Step `json:"path"`
	Root string        `json:"root"`
	// Prev is the ledger head before the batch; Chain the roots of
	// every later batch, oldest first; Head the spec's current head.
	Prev  string   `json:"prev"`
	Chain []string `json:"chain"`
	Head  string   `json:"head"`
}

// SpecLedger summarizes one spec's ledger for /v1/stats.
type SpecLedger struct {
	Head    string `json:"head"`
	Batches int64  `json:"batches"`
}

// snapEntryFor returns a run's manifest entry, forcing the run
// through LoadRun first when no hashed entry exists yet (which
// write-behind-snapshots it, attesting it to the ledger).
func (s *Store) snapEntryFor(specName, runName string) (snapEntry, error) {
	lookup := func() (snapEntry, bool) {
		st := s.snap(specName)
		st.mu.Lock()
		defer st.mu.Unlock()
		s.loadManifestLocked(specName, st)
		e, ok := st.manifest.Runs[runName]
		return e, ok && e.Codec == codec.Version && e.Hash != "" && e.Batch > 0
	}
	if e, ok := lookup(); ok {
		return e, nil
	}
	if _, err := s.LoadRun(specName, runName); err != nil {
		return snapEntry{}, err
	}
	if e, ok := lookup(); ok {
		return e, nil
	}
	return snapEntry{}, fmt.Errorf("store: run %q of %q has no ledger entry (snapshot layer disabled?)", runName, specName)
}

// RunProof builds the inclusion proof of one run's current frame. The
// run is loaded (and thus attested) first if it has never been
// snapshotted.
func (s *Store) RunProof(specName, runName string) (*RunProof, error) {
	if err := ValidateName(specName); err != nil {
		return nil, err
	}
	if err := ValidateName(runName); err != nil {
		return nil, err
	}
	e, err := s.snapEntryFor(specName, runName)
	if err != nil {
		return nil, err
	}
	recs, err := s.readLedger(specName)
	if err != nil {
		return nil, fmt.Errorf("store: ledger of %q: %w", specName, err)
	}
	var rec *ledger.Record
	for i := range recs {
		if recs[i].Seq == e.Batch {
			rec = &recs[i]
			break
		}
	}
	if rec == nil {
		return nil, fmt.Errorf("store: ledger of %q has no batch %d attesting run %q", specName, e.Batch, runName)
	}
	idx := -1
	for i, l := range rec.Runs {
		if l.Run == runName && l.Hash == e.Hash {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("store: batch %d of %q does not attest run %q with hash %s", e.Batch, specName, runName, e.Hash)
	}
	leaves, err := rec.LeafHashes()
	if err != nil {
		return nil, err
	}
	path, err := ledger.Prove(leaves, idx)
	if err != nil {
		return nil, err
	}
	p := &RunProof{
		Spec:      specName,
		Run:       runName,
		Hash:      e.Hash,
		Leaf:      leaves[idx].Hex(),
		Batch:     rec.Seq,
		Index:     idx,
		BatchSize: len(rec.Runs),
		Path:      path,
		Root:      rec.Root,
		Prev:      rec.Prev,
		Chain:     make([]string, 0, len(recs)-int(rec.Seq)),
		Head:      recs[len(recs)-1].Head,
	}
	for _, r := range recs {
		if r.Seq > rec.Seq {
			p.Chain = append(p.Chain, r.Root)
		}
	}
	return p, nil
}

// VerifyProof replays a RunProof completely client-side, returning
// the ledger head it implies. Comparing that head with the spec's
// published head is the caller's job.
func VerifyProof(p *RunProof) (string, error) {
	content, err := ledger.Parse(p.Hash)
	if err != nil {
		return "", err
	}
	leaf := ledger.Leaf(content)
	if leaf.Hex() != p.Leaf {
		return "", fmt.Errorf("store: proof leaf %s does not match hash %s", p.Leaf, p.Hash)
	}
	root, err := ledger.FoldProof(leaf, p.Path)
	if err != nil {
		return "", err
	}
	if root.Hex() != p.Root {
		return "", fmt.Errorf("store: proof path folds to %s, batch root is %s", root.Hex(), p.Root)
	}
	head, err := ledger.Parse(p.Prev)
	if err != nil {
		return "", err
	}
	head = ledger.Extend(head, root)
	for _, r := range p.Chain {
		rh, err := ledger.Parse(r)
		if err != nil {
			return "", err
		}
		head = ledger.Extend(head, rh)
	}
	if head.Hex() != p.Head {
		return "", fmt.Errorf("store: proof chain folds to %s, ledger head is %s", head.Hex(), p.Head)
	}
	return head.Hex(), nil
}

// LedgerHeads returns every spec's ledger summary plus the
// repository root folded over them (sorted spec order).
func (s *Store) LedgerHeads() (map[string]SpecLedger, string, error) {
	specs, err := s.ListSpecs()
	if err != nil {
		return nil, "", err
	}
	sort.Strings(specs)
	out := make(map[string]SpecLedger, len(specs))
	heads := make(map[string]ledger.Hash, len(specs))
	for _, name := range specs {
		recs, _ := s.readLedger(name)
		sl := SpecLedger{Head: ledger.Zero.Hex(), Batches: int64(len(recs))}
		if len(recs) > 0 {
			sl.Head = recs[len(recs)-1].Head
		}
		out[name] = sl
		heads[name], _ = ledger.Parse(sl.Head)
	}
	return out, ledger.RepoRoot(specs, heads).Hex(), nil
}

// VerifyIssue is one divergence found by VerifyLedger: the spec, the
// first batch it implicates (0 when no batch can be named), the run if
// one is implicated, and what went wrong.
type VerifyIssue struct {
	Spec   string `json:"spec"`
	Batch  int64  `json:"batch"`
	Run    string `json:"run,omitempty"`
	Detail string `json:"detail"`
}

func (i VerifyIssue) String() string {
	msg := fmt.Sprintf("spec %s", i.Spec)
	if i.Batch > 0 {
		msg += fmt.Sprintf(" batch %d", i.Batch)
	}
	if i.Run != "" {
		msg += fmt.Sprintf(" run %s", i.Run)
	}
	return msg + ": " + i.Detail
}

// VerifyReport is the outcome of a VerifyLedger pass.
type VerifyReport struct {
	Specs   int           `json:"specs"`
	Batches int64         `json:"batches"`
	Runs    int           `json:"runs"`
	Issues  []VerifyIssue `json:"issues,omitempty"`
}

// OK reports whether the pass found no divergence.
func (r VerifyReport) OK() bool { return len(r.Issues) == 0 }

// VerifyLedger re-validates the ledger chain of each named spec (all
// specs when none are named) and re-hashes every live run frame in
// the segment against its attested content hash. Issues are reported
// in batch order per spec, so Issues[0] names the first divergent
// batch. Dead segment bytes (dropped or superseded frames awaiting
// compaction) are not covered — only what the manifest still points
// at.
func (s *Store) VerifyLedger(specNames ...string) (VerifyReport, error) {
	var report VerifyReport
	if len(specNames) == 0 {
		all, err := s.ListSpecs()
		if err != nil {
			return report, err
		}
		specNames = all
	}
	sort.Strings(specNames)
	for _, specName := range specNames {
		if err := ValidateName(specName); err != nil {
			return report, err
		}
		if _, err := s.be.Stat(specXMLKey(specName)); err != nil {
			return report, fmt.Errorf("store: unknown spec %q: %w", specName, err)
		}
		report.Specs++
		s.verifySpecLedger(specName, &report)
	}
	sort.SliceStable(report.Issues, func(i, j int) bool {
		a, b := report.Issues[i], report.Issues[j]
		if a.Spec != b.Spec {
			return a.Spec < b.Spec
		}
		return a.Batch < b.Batch
	})
	return report, nil
}

func (s *Store) verifySpecLedger(specName string, report *VerifyReport) {
	recs, lerr := s.readLedger(specName)
	report.Batches += int64(len(recs))
	if lerr != nil {
		report.Issues = append(report.Issues, VerifyIssue{
			Spec: specName, Batch: int64(len(recs)) + 1, Detail: lerr.Error(),
		})
	}
	if bad, err := ledger.VerifyChain(recs); err != nil {
		report.Issues = append(report.Issues, VerifyIssue{Spec: specName, Batch: bad, Detail: err.Error()})
	}
	bySeq := make(map[int64]*ledger.Record, len(recs))
	for i := range recs {
		bySeq[recs[i].Seq] = &recs[i]
	}

	st := s.snap(specName)
	st.mu.Lock()
	s.loadManifestLocked(specName, st)
	entries := make(map[string]snapEntry, len(st.manifest.Runs))
	for name, e := range st.manifest.Runs {
		entries[name] = e
	}
	st.mu.Unlock()

	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)

	// scanned lazily maps run name -> set of content hashes actually
	// present anywhere in the segment; built on the first offset miss
	// so stale offsets (a compaction that crashed before its manifest
	// save) fall back to content, not position.
	var scanned map[string]map[string]bool
	for _, name := range names {
		e := entries[name]
		report.Runs++
		issue := func(detail string) {
			report.Issues = append(report.Issues, VerifyIssue{Spec: specName, Batch: e.Batch, Run: name, Detail: detail})
		}
		if e.Hash == "" || e.Batch <= 0 {
			issue("manifest entry carries no content hash")
			continue
		}
		rec, ok := bySeq[e.Batch]
		if !ok {
			issue(fmt.Sprintf("attesting batch %d missing from ledger", e.Batch))
			continue
		}
		attested := false
		for _, l := range rec.Runs {
			if l.Run == name && l.Hash == e.Hash {
				attested = true
				break
			}
		}
		if !attested {
			issue(fmt.Sprintf("batch %d does not attest hash %s", e.Batch, e.Hash))
			continue
		}
		if s.segmentFrameIntact(specName, name, e) {
			continue
		}
		if scanned == nil {
			seg, _ := s.be.ReadFile(segmentKey(specName))
			scanned = scanSegment(seg)
		}
		if scanned[name][e.Hash] {
			continue // frame intact, just at a different offset
		}
		issue(fmt.Sprintf("segment frame does not hash to attested %s", e.Hash))
	}
}

// scanSegment walks segment bytes record by record, collecting every
// (run name, frame content hash) it can parse. Used as the verifier's
// fallback when manifest offsets are stale; a malformed region ends
// the scan (later records are unreachable without valid framing).
func scanSegment(data []byte) map[string]map[string]bool {
	out := map[string]map[string]bool{}
	for pos := 0; pos < len(data); {
		n, w := binary.Uvarint(data[pos:])
		if w <= 0 || n > uint64(len(data)-pos-w) {
			break
		}
		nameEnd := pos + w + int(n)
		name := string(data[pos+w : nameEnd])
		size, err := codec.FrameSize(data[nameEnd:])
		if err != nil {
			break
		}
		h := codec.ContentHash(data[nameEnd : nameEnd+size])
		if out[name] == nil {
			out[name] = map[string]bool{}
		}
		out[name][hex.EncodeToString(h[:])] = true
		pos = nameEnd + size
	}
	return out
}
