package store

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

func seedLiveSpec(t *testing.T, dir string) (*Store, []wfrun.Event) {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 10, SeriesRatio: 1.5, Forks: 1, Loops: 1}, rng)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	if err := st.SaveSpec("s", sp); err != nil {
		t.Fatalf("save spec: %v", err)
	}
	run, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st, wfrun.Events(run)
}

func TestLiveRunLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, evs := seedLiveSpec(t, dir)

	half := len(evs) / 2
	status, err := st.AppendLiveEvents("s", "r1", evs[:half])
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if status.Events != half {
		t.Fatalf("events = %d, want %d", status.Events, half)
	}
	if names, _ := st.ListLiveRuns("s"); len(names) != 1 || names[0] != "r1" {
		t.Fatalf("live runs = %v, want [r1]", names)
	}

	// Reopen mid-run: the persisted event log replays.
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	status2, ok, err := st2.LiveStatusOf("s", "r1")
	if err != nil || !ok {
		t.Fatalf("status after reopen: ok=%v err=%v", ok, err)
	}
	if status2.Events != half {
		t.Fatalf("replayed events = %d, want %d", status2.Events, half)
	}

	if _, err := st2.AppendLiveEvents("s", "r1", evs[half:]); err != nil {
		t.Fatalf("append rest: %v", err)
	}
	run, err := st2.CompleteLiveRun("s", "r1")
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if err := run.Validate(); err != nil {
		t.Fatalf("completed run invalid: %v", err)
	}

	// Live state is gone; the run is a regular stored run whose XML
	// re-parses to the same diffable content as the in-memory result.
	if _, ok, _ := st2.LiveStatusOf("s", "r1"); ok {
		t.Fatal("live state survived completion")
	}
	if _, err := os.Stat(filepath.Join(dir, "s", "live", "r1.events")); !os.IsNotExist(err) {
		t.Fatalf("event log survived completion: %v", err)
	}
	if _, err := st2.LoadRun("s", "r1"); err != nil {
		t.Fatalf("load completed run: %v", err)
	}

	// A second run imported normally diffs against the live-completed
	// one identically from the warm cache and from a cold re-parse.
	sp, _ := st2.LoadSpec("s")
	lv := wfrun.NewLive(sp)
	for _, ev := range evs {
		if err := lv.Append(ev); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	other, err := lv.Complete()
	if err != nil {
		t.Fatalf("complete twin: %v", err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, other, "r2"); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := st2.ImportParsed("s", []ParsedRun{{Name: "r2", XML: buf.Bytes(), Run: other}}); err != nil {
		t.Fatalf("import twin: %v", err)
	}
	warm, err := st2.Diff("s", "r1", "r2", cost.Unit{})
	if err != nil {
		t.Fatalf("warm diff: %v", err)
	}
	st3, err := Open(dir)
	if err != nil {
		t.Fatalf("cold open: %v", err)
	}
	cold, err := st3.Diff("s", "r1", "r2", cost.Unit{})
	if err != nil {
		t.Fatalf("cold diff: %v", err)
	}
	if warm.Distance != cold.Distance {
		t.Fatalf("warm/cold diffs differ: %v vs %v", warm.Distance, cold.Distance)
	}

	// Appending to a completed (stored) run name is a conflict.
	if _, err := st2.AppendLiveEvents("s", "r1", evs[:1]); !errors.Is(err, ErrDuplicateRun) {
		t.Fatalf("append to stored run = %v, want ErrDuplicateRun", err)
	}
}

func TestLiveRunAbandonAndErrors(t *testing.T) {
	dir := t.TempDir()
	st, evs := seedLiveSpec(t, dir)
	if _, err := st.AppendLiveEvents("s", "r", evs[:3]); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st.AbandonLiveRun("s", "r"); err != nil {
		t.Fatalf("abandon: %v", err)
	}
	if _, ok, _ := st.LiveStatusOf("s", "r"); ok {
		t.Fatal("live state survived abandon")
	}
	if err := st.AbandonLiveRun("s", "r"); err == nil {
		t.Fatal("expected abandoning a missing run to fail")
	}
	if _, err := st.CompleteLiveRun("s", "missing"); err == nil {
		t.Fatal("expected completing a missing run to fail")
	}
	// A bad event reports its index but keeps the prefix.
	status, err := st.AppendLiveEvents("s", "r", []wfrun.Event{evs[0], {From: "zz", To: "qq"}})
	if err == nil {
		t.Fatal("expected a bad event to fail")
	}
	if status.Events != 1 {
		t.Fatalf("events after partial batch = %d, want 1", status.Events)
	}
}
