package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

func seedLiveSpec(t *testing.T, dir string) (*Store, []wfrun.Event) {
	t.Helper()
	st := openTestStore(t, dir)
	rng := rand.New(rand.NewSource(11))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 10, SeriesRatio: 1.5, Forks: 1, Loops: 1}, rng)
	if err != nil {
		t.Fatalf("spec: %v", err)
	}
	if err := st.SaveSpec("s", sp); err != nil {
		t.Fatalf("save spec: %v", err)
	}
	run, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return st, wfrun.Events(run)
}

func TestLiveRunLifecycle(t *testing.T) {
	dir := t.TempDir()
	st, evs := seedLiveSpec(t, dir)

	half := len(evs) / 2
	status, err := st.AppendLiveEvents("s", "r1", evs[:half])
	if err != nil {
		t.Fatalf("append: %v", err)
	}
	if status.Events != half {
		t.Fatalf("events = %d, want %d", status.Events, half)
	}
	if names, _ := st.ListLiveRuns("s"); len(names) != 1 || names[0] != "r1" {
		t.Fatalf("live runs = %v, want [r1]", names)
	}

	// Reopen mid-run: the persisted event log replays.
	st2 := openTestStore(t, dir)
	status2, ok, err := st2.LiveStatusOf("s", "r1")
	if err != nil || !ok {
		t.Fatalf("status after reopen: ok=%v err=%v", ok, err)
	}
	if status2.Events != half {
		t.Fatalf("replayed events = %d, want %d", status2.Events, half)
	}

	if _, err := st2.AppendLiveEvents("s", "r1", evs[half:]); err != nil {
		t.Fatalf("append rest: %v", err)
	}
	run, err := st2.CompleteLiveRun("s", "r1")
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if err := run.Validate(); err != nil {
		t.Fatalf("completed run invalid: %v", err)
	}

	// Live state is gone; the run is a regular stored run whose XML
	// re-parses to the same diffable content as the in-memory result.
	if _, ok, _ := st2.LiveStatusOf("s", "r1"); ok {
		t.Fatal("live state survived completion")
	}
	if _, err := st2.Backend().Stat(liveKey("s", "r1")); !isNotExist(err) {
		t.Fatalf("event log survived completion: %v", err)
	}
	if _, err := st2.LoadRun("s", "r1"); err != nil {
		t.Fatalf("load completed run: %v", err)
	}

	// A second run imported normally diffs against the live-completed
	// one identically from the warm cache and from a cold re-parse.
	sp, _ := st2.LoadSpec("s")
	lv := wfrun.NewLive(sp)
	for _, ev := range evs {
		if err := lv.Append(ev); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	other, err := lv.Complete()
	if err != nil {
		t.Fatalf("complete twin: %v", err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, other, "r2"); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := st2.ImportParsed("s", []ParsedRun{{Name: "r2", XML: buf.Bytes(), Run: other}}); err != nil {
		t.Fatalf("import twin: %v", err)
	}
	warm, err := st2.Diff("s", "r1", "r2", cost.Unit{})
	if err != nil {
		t.Fatalf("warm diff: %v", err)
	}
	st3 := openTestStore(t, dir)
	cold, err := st3.Diff("s", "r1", "r2", cost.Unit{})
	if err != nil {
		t.Fatalf("cold diff: %v", err)
	}
	if warm.Distance != cold.Distance {
		t.Fatalf("warm/cold diffs differ: %v vs %v", warm.Distance, cold.Distance)
	}

	// Appending to a completed (stored) run name is a conflict.
	if _, err := st2.AppendLiveEvents("s", "r1", evs[:1]); !errors.Is(err, ErrDuplicateRun) {
		t.Fatalf("append to stored run = %v, want ErrDuplicateRun", err)
	}
}

func TestLiveRunAbandonAndErrors(t *testing.T) {
	dir := t.TempDir()
	st, evs := seedLiveSpec(t, dir)
	if _, err := st.AppendLiveEvents("s", "r", evs[:3]); err != nil {
		t.Fatalf("append: %v", err)
	}
	if err := st.AbandonLiveRun("s", "r"); err != nil {
		t.Fatalf("abandon: %v", err)
	}
	if _, ok, _ := st.LiveStatusOf("s", "r"); ok {
		t.Fatal("live state survived abandon")
	}
	if err := st.AbandonLiveRun("s", "r"); err == nil {
		t.Fatal("expected abandoning a missing run to fail")
	}
	if _, err := st.CompleteLiveRun("s", "missing"); err == nil {
		t.Fatal("expected completing a missing run to fail")
	}
	// A bad event reports its index but keeps the prefix.
	status, err := st.AppendLiveEvents("s", "r", []wfrun.Event{evs[0], {From: "zz", To: "qq"}})
	if err == nil {
		t.Fatal("expected a bad event to fail")
	}
	if status.Events != 1 {
		t.Fatalf("events after partial batch = %d, want 1", status.Events)
	}
}

// TestLiveJournalTornTailMidRecord: a crash mid-append leaves half an
// event line at the journal tail. Replay must apply only the complete
// lines, truncate the fragment, and keep accepting events — the next
// append must not weld onto the torn bytes.
func TestLiveJournalTornTailMidRecord(t *testing.T) {
	dir := t.TempDir()
	st, evs := seedLiveSpec(t, dir)
	if _, err := st.AppendLiveEvents("s", "r", evs[:3]); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Simulate the torn write: half of a marshaled event, no newline.
	line, err := json.Marshal(evs[3])
	if err != nil {
		t.Fatal(err)
	}
	be := openTestBackend(t, dir)
	if err := be.Append(liveKey("s", "r"), line[:len(line)/2], false); err != nil {
		t.Fatal(err)
	}

	cold := openTestStore(t, dir)
	status, ok, err := cold.LiveStatusOf("s", "r")
	if err != nil || !ok {
		t.Fatalf("status after torn tail: ok=%v err=%v", ok, err)
	}
	if status.Events != 3 {
		t.Fatalf("replayed %d events, want the 3 complete ones", status.Events)
	}
	// The fragment is gone from the journal, not just skipped. Read
	// through a fresh backend handle: the repair went through the cold
	// store's backend, and instances that cache state (object) must
	// see it from persisted bytes, not a stale in-memory view.
	data, err := openTestBackend(t, dir).ReadFile(liveKey("s", "r"))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 0 && data[len(data)-1] != '\n' {
		t.Fatal("journal still ends in a torn fragment after replay")
	}
	// The producer retries from where the store says it is: appending
	// the rest completes the run cleanly.
	if _, err := cold.AppendLiveEvents("s", "r", evs[3:]); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	run, err := cold.CompleteLiveRun("s", "r")
	if err != nil {
		t.Fatalf("complete: %v", err)
	}
	if err := run.Validate(); err != nil {
		t.Fatalf("completed run invalid: %v", err)
	}
}

// TestLiveJournalUnterminatedParseableTail: an unterminated final
// line that happens to be valid JSON is still a torn write — the
// terminating newline IS the commit marker. Replay must drop it, so
// the producer's retry of that event is an append, not a duplicate.
func TestLiveJournalUnterminatedParseableTail(t *testing.T) {
	dir := t.TempDir()
	st, evs := seedLiveSpec(t, dir)
	if _, err := st.AppendLiveEvents("s", "r", evs[:2]); err != nil {
		t.Fatalf("append: %v", err)
	}
	line, err := json.Marshal(evs[2])
	if err != nil {
		t.Fatal(err)
	}
	be := openTestBackend(t, dir)
	if err := be.Append(liveKey("s", "r"), line, false); err != nil { // no trailing newline
		t.Fatal(err)
	}

	cold := openTestStore(t, dir)
	status, ok, err := cold.LiveStatusOf("s", "r")
	if err != nil || !ok {
		t.Fatalf("status: ok=%v err=%v", ok, err)
	}
	if status.Events != 2 {
		t.Fatalf("replay applied the uncommitted tail: %d events, want 2", status.Events)
	}
	// Retrying the dropped event must land it exactly once.
	status, err = cold.AppendLiveEvents("s", "r", evs[2:3])
	if err != nil {
		t.Fatalf("retry append: %v", err)
	}
	if status.Events != 3 {
		t.Fatalf("after retry: %d events, want 3", status.Events)
	}
	// And the journal now replays to the same 3 events.
	again := openTestStore(t, dir)
	status, ok, err = again.LiveStatusOf("s", "r")
	if err != nil || !ok || status.Events != 3 {
		t.Fatalf("second replay: ok=%v err=%v events=%d, want 3", ok, err, status.Events)
	}
}

// TestCompleteLiveRunRacesAppend: completion racing a concurrent
// append must stay coherent under the race detector. Two orderings
// are legal: completion wins and the late append bounces off the
// stored run, or the append sneaks in first (re-executing a spec edge
// grows a parallel subtree) and completion rejects the now-invalid
// run, leaving the live state intact. Either way nothing is corrupted
// or wedged.
func TestCompleteLiveRunRacesAppend(t *testing.T) {
	dir := t.TempDir()
	st, evs := seedLiveSpec(t, dir)
	if _, err := st.AppendLiveEvents("s", "r", evs); err != nil {
		t.Fatalf("append: %v", err)
	}
	var wg sync.WaitGroup
	var completeErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, completeErr = st.CompleteLiveRun("s", "r")
	}()
	go func() {
		defer wg.Done()
		_, _ = st.AppendLiveEvents("s", "r", evs[:1])
	}()
	wg.Wait()

	if completeErr != nil {
		// The append won: the live run is still there, still serving
		// status, and can be abandoned cleanly.
		if _, ok, err := st.LiveStatusOf("s", "r"); err != nil || !ok {
			t.Fatalf("live run gone after failed completion: ok=%v err=%v", ok, err)
		}
		if err := st.AbandonLiveRun("s", "r"); err != nil {
			t.Fatalf("abandon after failed completion: %v", err)
		}
		return
	}
	// Completion won: live state is gone and the stored run is valid.
	if _, ok, _ := st.LiveStatusOf("s", "r"); ok {
		t.Fatal("live state survived completion")
	}
	run, err := st.LoadRun("s", "r")
	if err != nil {
		t.Fatalf("load completed run: %v", err)
	}
	if err := run.Validate(); err != nil {
		t.Fatalf("completed run invalid: %v", err)
	}
	// The journal is gone; a fresh append under the same name is a
	// duplicate-run conflict, not a resurrection.
	if _, err := st.AppendLiveEvents("s", "r", evs[:1]); !errors.Is(err, ErrDuplicateRun) {
		t.Fatalf("append after completion = %v, want ErrDuplicateRun", err)
	}
}
