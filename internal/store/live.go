package store

// Live (still-executing) runs. A live run accumulates node-status
// events through wfrun.Live; its event log is persisted as JSON lines
// under <spec>/live/<run>.events so an interrupted server replays
// in-flight runs on restart. Completion promotes the run into the
// regular repository through the same ImportParsed path bulk ingest
// uses, so it gets the snapshot segment, ledger attestation and
// coalesced cache notification every other run gets — and the stored
// XML re-parses to exactly the run the live derivation produced.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// LiveStatus is a snapshot of one in-flight run.
type LiveStatus struct {
	Spec   string `json:"spec"`
	Run    string `json:"run"`
	Events int    `json:"events"`
	Nodes  int    `json:"nodes"`
	Edges  int    `json:"edges"`
	// Counts is the executed-instance histogram indexed by
	// specification leaf index — the drift monitor's raw material.
	Counts []int `json:"counts"`
}

type liveRun struct {
	lv  *wfrun.Live
	key string // backend key of the event journal
}

func liveDirKey(specName string) string { return specName + "/live" }
func liveKey(specName, runName string) string {
	return specName + "/live/" + runName + ".events"
}

// liveEntry returns the in-memory state for a live run, replaying its
// persisted event log if the store was reopened since the events
// arrived. With create=false a run with no state and no log yields
// (nil, nil).
//
// Replay is where crash debris gets repaired: a torn trailing line
// (an append the crash cut short — unterminated, whether or not its
// prefix happens to parse) is dropped AND truncated away, because the
// next append would otherwise weld new bytes onto the fragment and
// turn it into a malformed MIDDLE line that a later replay must treat
// as corruption. A malformed line that IS newline-terminated is
// exactly that corruption, and errors.
func (s *Store) liveEntry(specName, runName string, create bool) (*liveRun, error) {
	key := runKey(specName, runName)
	if e, ok := s.live[key]; ok {
		return e, nil
	}
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return nil, err
	}
	jkey := liveKey(specName, runName)
	data, err := s.be.ReadFile(jkey)
	if err != nil && !isNotExist(err) {
		return nil, fmt.Errorf("store: %w", err)
	}
	missing := err != nil
	if missing && !create {
		return nil, nil
	}
	lv := wfrun.NewLive(sp)
	if len(data) > 0 {
		complete := data
		var torn bool
		if nl := bytes.LastIndexByte(data, '\n'); nl < 0 {
			complete, torn = nil, true
		} else if nl != len(data)-1 {
			complete, torn = data[:nl+1], len(bytes.TrimSpace(data[nl+1:])) > 0
		}
		for i, line := range bytes.Split(complete, []byte("\n")) {
			line = bytes.TrimSpace(line)
			if len(line) == 0 {
				continue
			}
			var ev wfrun.Event
			if err := json.Unmarshal(line, &ev); err != nil {
				return nil, fmt.Errorf("store: corrupt live event log %s line %d: %w", jkey, i+1, err)
			}
			if err := lv.Append(ev); err != nil {
				return nil, fmt.Errorf("store: replaying %s line %d: %w", jkey, i+1, err)
			}
		}
		lv.Sync()
		if torn {
			// Truncate the torn trailing write back to the valid prefix so
			// subsequent appends start on a line boundary.
			if err := s.be.WriteFile(jkey, complete); err != nil {
				return nil, fmt.Errorf("store: repairing %s: %w", jkey, err)
			}
		}
	}
	if missing {
		// Materialize the journal so the run is visible (ListLiveRuns,
		// restart replay) even before its first event arrives.
		if err := s.be.WriteFile(jkey, nil); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	e := &liveRun{lv: lv, key: jkey}
	s.live[key] = e
	return e, nil
}

func (s *Store) liveStatus(specName, runName string, lv *wfrun.Live) LiveStatus {
	return LiveStatus{
		Spec:   specName,
		Run:    runName,
		Events: lv.Events(),
		Nodes:  lv.Nodes(),
		Edges:  lv.Edges(),
		Counts: lv.Counts(),
	}
}

// AppendLiveEvents applies a batch of node-status events to a live
// run, creating it on first touch. Events are validated one at a time:
// on error, the events before the failing one remain applied and
// persisted, and the returned status reflects them. A name already
// present as a stored (completed) run is rejected with
// ErrDuplicateRun.
func (s *Store) AppendLiveEvents(specName, runName string, evs []wfrun.Event) (LiveStatus, error) {
	if err := validName(specName); err != nil {
		return LiveStatus{}, err
	}
	if err := validName(runName); err != nil {
		return LiveStatus{}, err
	}
	if _, err := s.be.Stat(runXMLKey(specName, runName)); err == nil {
		return LiveStatus{}, fmt.Errorf("store: run %s/%s: %w", specName, runName, ErrDuplicateRun)
	}
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	e, err := s.liveEntry(specName, runName, true)
	if err != nil {
		return LiveStatus{}, err
	}
	var buf bytes.Buffer
	flush := func() error {
		if buf.Len() == 0 {
			return nil
		}
		return s.be.Append(e.key, buf.Bytes(), false)
	}
	for i, ev := range evs {
		if err := e.lv.Append(ev); err != nil {
			ferr := flush()
			e.lv.Sync()
			if ferr != nil {
				return s.liveStatus(specName, runName, e.lv), fmt.Errorf("store: %w", ferr)
			}
			return s.liveStatus(specName, runName, e.lv), fmt.Errorf("store: event %d: %w", i, err)
		}
		line, err := json.Marshal(ev)
		if err != nil {
			return s.liveStatus(specName, runName, e.lv), fmt.Errorf("store: %w", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	if err := flush(); err != nil {
		return s.liveStatus(specName, runName, e.lv), fmt.Errorf("store: %w", err)
	}
	e.lv.Sync()
	return s.liveStatus(specName, runName, e.lv), nil
}

// LiveStatusOf reports the state of one live run; ok is false when the
// run has no live state.
func (s *Store) LiveStatusOf(specName, runName string) (LiveStatus, bool, error) {
	if err := validName(specName); err != nil {
		return LiveStatus{}, false, err
	}
	if err := validName(runName); err != nil {
		return LiveStatus{}, false, err
	}
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	e, err := s.liveEntry(specName, runName, false)
	if err != nil {
		return LiveStatus{}, false, err
	}
	if e == nil {
		return LiveStatus{}, false, nil
	}
	return s.liveStatus(specName, runName, e.lv), true, nil
}

// ListLiveRuns names every in-flight run of a specification, loaded or
// only persisted.
func (s *Store) ListLiveRuns(specName string) ([]string, error) {
	if err := validName(specName); err != nil {
		return nil, err
	}
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	names := make(map[string]bool)
	prefix := specName + "/"
	for key := range s.live {
		if strings.HasPrefix(key, prefix) {
			names[strings.TrimPrefix(key, prefix)] = true
		}
	}
	entries, err := s.be.List(liveDirKey(specName))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name, ".events"); ok {
			names[n] = true
		}
	}
	out := make([]string, 0, len(names))
	for n := range names {
		out = append(out, n)
	}
	sort.Strings(out)
	return out, nil
}

// CompleteLiveRun finishes a live run: the assembled tree is validated
// against the specification, the run is imported through the bulk
// group-commit path (snapshot + ledger + coalesced notification), and
// the live state is dropped.
func (s *Store) CompleteLiveRun(specName, runName string) (*wfrun.Run, error) {
	if err := validName(specName); err != nil {
		return nil, err
	}
	if err := validName(runName); err != nil {
		return nil, err
	}
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	e, err := s.liveEntry(specName, runName, false)
	if err != nil {
		return nil, err
	}
	if e == nil {
		return nil, fmt.Errorf("store: no live run %s/%s: %w", specName, runName, os.ErrNotExist)
	}
	run, err := e.lv.Complete()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, run, runName); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if _, err := s.ImportParsed(specName, []ParsedRun{{Name: runName, XML: buf.Bytes(), Run: run}}); err != nil {
		return nil, err
	}
	_ = s.be.Remove(e.key)
	delete(s.live, runKey(specName, runName))
	return run, nil
}

// LiveCount reports how many live runs are loaded in memory — the
// /metrics gauge. Persisted-but-unloaded runs are not counted until
// something touches them.
func (s *Store) LiveCount() int {
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	return len(s.live)
}

// AbandonLiveRun discards a live run's state and event log.
func (s *Store) AbandonLiveRun(specName, runName string) error {
	if err := validName(specName); err != nil {
		return err
	}
	if err := validName(runName); err != nil {
		return err
	}
	s.liveMu.Lock()
	defer s.liveMu.Unlock()
	key := runKey(specName, runName)
	_, ok := s.live[key]
	if ok {
		delete(s.live, key)
	}
	err := s.be.Remove(liveKey(specName, runName))
	if !ok && isNotExist(err) {
		return fmt.Errorf("store: no live run %s/%s: %w", specName, runName, os.ErrNotExist)
	}
	if err != nil && !isNotExist(err) {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
