// Package store is a provenance repository: XML specifications with
// their collected runs, addressable by name, plus differencing and
// cohort analysis over stored runs. It provides the persistence layer
// the PDiffView prototype keeps behind its import/export menus
// ("view, store, generate and import/export SP-specifications and
// their associated runs", Section VII).
//
// Persistence goes through the Backend interface — a local directory
// tree (the classic layout), an in-memory map, an object-store-style
// bucket, or a consistent-hash shard fan-out over any of those. Both
// specifications and parsed runs are cached under a read-write lock,
// so repeated differencing of stored runs (the cohort paths) parses
// each XML document once and then serves all readers concurrently.
//
// Logical layout (identical to the on-disk layout of the fs backend):
//
//	<spec>/spec.xml
//	<spec>/runs/<run>.xml
package store

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/evolve"
	"repro/internal/spec"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// Store is a backend-backed provenance repository. It is safe for
// concurrent use; loaded specifications are cached so runs of the same
// specification share one *spec.Spec (a requirement for differencing),
// and parsed runs are cached so differencing the same stored runs
// repeatedly does not re-parse their XML. Cached runs are shared:
// treat them as immutable (differencing only reads them).
type Store struct {
	be Backend

	mu    sync.RWMutex
	specs map[string]*spec.Spec
	runs  map[string]*wfrun.Run // "<spec>/<run>" → parsed run

	snapsMu sync.Mutex
	snaps   map[string]*snapState // per-spec snapshot manifests
	// noSnapshot disables the snapshot layer entirely (reads and
	// write-behind) — the pure-XML configuration the cold-start
	// benchmarks compare against.
	noSnapshot bool

	hookMu    sync.RWMutex
	hooks     []func(specName, runName string)
	bulkHooks []func(specName string, runNames []string)

	mapMu    sync.Mutex
	mappings map[string]*evolve.SpecMapping // "a\x00b" → spec mapping

	liveMu sync.Mutex
	live   map[string]*liveRun // "<spec>/<run>" → in-flight run state
}

// Open opens (creating if needed) a repository rooted at dir on the
// filesystem backend — the historical constructor, byte-compatible
// with repositories written before backends existed.
func Open(dir string) (*Store, error) {
	be, err := NewFSBackend(dir)
	if err != nil {
		return nil, err
	}
	return OpenBackend(be), nil
}

// OpenBackend opens a repository over an explicit storage backend.
// The store takes ownership: Close closes the backend.
func OpenBackend(be Backend) *Store {
	return &Store{
		be:       be,
		specs:    make(map[string]*spec.Spec),
		runs:     make(map[string]*wfrun.Run),
		snaps:    make(map[string]*snapState),
		mappings: make(map[string]*evolve.SpecMapping),
		live:     make(map[string]*liveRun),
	}
}

// Backend returns the storage backend the repository lives on.
func (s *Store) Backend() Backend { return s.be }

// BackendKind names the storage backend for stats and diagnostics.
func (s *Store) BackendKind() string { return s.be.Kind() }

// ShardStats reports per-shard storage counters when the repository
// runs over a sharded backend, nil otherwise.
func (s *Store) ShardStats() []ShardStats {
	if sb, ok := s.be.(interface{ ShardStats() []ShardStats }); ok {
		return sb.ShardStats()
	}
	return nil
}

// Close releases the storage backend.
func (s *Store) Close() error { return s.be.Close() }

func runKey(specName, runName string) string { return specName + "/" + runName }

// ValidateName reports whether a spec or run name is safe to join into
// the repository root. Every boundary that accepts untrusted names
// (the CLI, the HTTP service) must call it before the name reaches the
// backend: path separators, traversal components, NUL bytes and
// hidden/dot names are all rejected, so a stored object can never
// escape <root>/<spec>/runs/.
func ValidateName(name string) error {
	switch {
	case name == "":
		return fmt.Errorf("store: empty name")
	case len(name) > 255:
		return fmt.Errorf("store: name longer than 255 bytes")
	case strings.ContainsAny(name, "/\\"):
		return fmt.Errorf("store: name %q contains a path separator", name)
	case strings.ContainsRune(name, 0):
		return fmt.Errorf("store: name contains a NUL byte")
	case name == "." || name == ".." || strings.HasPrefix(name, "."):
		return fmt.Errorf("store: invalid name %q", name)
	}
	return nil
}

func validName(name string) error { return ValidateName(name) }

// OnRunChange registers fn to be called after a run is imported,
// overwritten or deleted, with the spec and run names. Hooks fire
// after the store's own caches are updated, outside the store lock;
// the HTTP service uses this to invalidate its diff-result cache.
func (s *Store) OnRunChange(fn func(specName, runName string)) {
	s.hookMu.Lock()
	s.hooks = append(s.hooks, fn)
	s.hookMu.Unlock()
}

func (s *Store) notifyRunChange(specName, runName string) {
	s.hookMu.RLock()
	hooks := s.hooks
	s.hookMu.RUnlock()
	for _, fn := range hooks {
		fn(specName, runName)
	}
}

// OnRunsBulkChange registers fn to be called once per bulk import
// with every imported run name — the coalesced counterpart of
// OnRunChange. A bulk import fires the bulk hooks exactly once per
// spec and does NOT fire the per-run hooks; subscribers maintaining
// per-run state should register both.
func (s *Store) OnRunsBulkChange(fn func(specName string, runNames []string)) {
	s.hookMu.Lock()
	s.bulkHooks = append(s.bulkHooks, fn)
	s.hookMu.Unlock()
}

func (s *Store) notifyBulkChange(specName string, runNames []string) {
	s.hookMu.RLock()
	bulk := s.bulkHooks
	s.hookMu.RUnlock()
	for _, fn := range bulk {
		fn(specName, runNames)
	}
}

// Backend keys of the repository layout.
func specXMLKey(name string) string { return name + "/spec.xml" }
func runsDirKey(name string) string { return name + "/runs" }
func runXMLKey(specName, runName string) string {
	return specName + "/runs/" + runName + ".xml"
}

// SaveSpec stores a specification under the given name. Saving over an
// existing specification is rejected once runs exist (their trees
// reference the stored specification).
func (s *Store) SaveSpec(name string, sp *spec.Spec) error {
	if err := validName(name); err != nil {
		return err
	}
	runs, _ := s.ListRuns(name)
	if len(runs) > 0 {
		return fmt.Errorf("store: specification %q already has %d runs; refusing to overwrite", name, len(runs))
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeSpec(&buf, sp, name); err != nil {
		return err
	}
	if err := s.be.WriteFile(specXMLKey(name), buf.Bytes()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	_ = s.writeSpecSnapshot(name, sp) // best-effort warm-start frame
	s.mu.Lock()
	s.specs[name] = sp
	s.mu.Unlock()
	// Cached spec mappings hold pointers into the replaced spec
	// object; drop them so cross-version queries rebuild against the
	// new one.
	s.dropMappings(name)
	return nil
}

// LoadSpec returns the named specification, cached after first load.
func (s *Store) LoadSpec(name string) (*spec.Spec, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.RLock()
	if sp, ok := s.specs[name]; ok {
		s.mu.RUnlock()
		return sp, nil
	}
	s.mu.RUnlock()
	sp, fromSnap := s.loadSpecSnapshot(name)
	if !fromSnap {
		data, err := s.be.ReadFile(specXMLKey(name))
		if err != nil {
			return nil, fmt.Errorf("store: unknown specification %q: %w", name, err)
		}
		if sp, err = wfxml.DecodeSpec(bytes.NewReader(data)); err != nil {
			return nil, err
		}
		_ = s.writeSpecSnapshot(name, sp) // best-effort warm-start frame
	}
	s.mu.Lock()
	// Another goroutine may have raced the load; keep the first.
	if have, ok := s.specs[name]; ok {
		sp = have
	} else {
		s.specs[name] = sp
	}
	s.mu.Unlock()
	return sp, nil
}

// ListSpecs returns the stored specification names, sorted.
func (s *Store) ListSpecs() ([]string, error) {
	entries, err := s.be.List("")
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.Dir {
			if _, err := s.be.Stat(specXMLKey(e.Name)); err == nil {
				out = append(out, e.Name)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// SaveRun stores a run under the named specification. The run must
// belong to the stored specification object (load it via LoadSpec
// before executing or deriving runs).
func (s *Store) SaveRun(specName, runName string, r *wfrun.Run) error {
	if err := validName(specName); err != nil {
		return err
	}
	if err := validName(runName); err != nil {
		return err
	}
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return err
	}
	if r.Spec != sp {
		return fmt.Errorf("store: run does not belong to stored specification %q; build runs against LoadSpec(%q)", specName, specName)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeRun(&buf, r, runName); err != nil {
		return err
	}
	if err := s.be.WriteFile(runXMLKey(specName, runName), buf.Bytes()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// Evict rather than cache the caller's object: the cache must only
	// ever serve what a fresh parse of the stored XML would produce.
	// The snapshot entry goes with it — the next load re-parses the new
	// XML and repairs the snapshot write-behind.
	s.mu.Lock()
	delete(s.runs, runKey(specName, runName))
	s.mu.Unlock()
	s.dropRunSnapshot(specName, runName)
	s.notifyRunChange(specName, runName)
	return nil
}

// LoadRun loads a stored run, deriving its annotated tree against the
// cached specification. Parsed runs are cached: repeated loads (and
// every Diff/Cohort call) share one *wfrun.Run, which callers must
// treat as read-only.
//
// A cache miss first tries the snapshot layer — a checksummed binary
// frame recorded by a previous parse — and only falls back to the XML
// parse (re-deriving the tree) when the snapshot is absent, stale or
// corrupt; the fallback then repairs the snapshot write-behind.
func (s *Store) LoadRun(specName, runName string) (*wfrun.Run, error) {
	if err := validName(specName); err != nil {
		return nil, err
	}
	if err := validName(runName); err != nil {
		return nil, err
	}
	key := runKey(specName, runName)
	s.mu.RLock()
	if r, ok := s.runs[key]; ok {
		s.mu.RUnlock()
		return r, nil
	}
	s.mu.RUnlock()
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return nil, err
	}
	if r, ok := s.loadRunSnapshot(specName, runName, sp); ok {
		return s.cacheRun(specName, runName, r), nil
	}
	fp, fpErr := s.xmlFingerprint(specName, runName)
	r, err := s.loadRunXML(specName, runName, sp)
	if err != nil {
		return nil, err
	}
	if fpErr == nil {
		_ = s.writeRunSnapshot(specName, runName, r, fp) // best-effort repair
	}
	return s.cacheRun(specName, runName, r), nil
}

// loadRunXML parses a run's authoritative XML document and derives its
// tree — the slow path behind the run cache and the snapshot layer.
func (s *Store) loadRunXML(specName, runName string, sp *spec.Spec) (*wfrun.Run, error) {
	data, err := s.be.ReadFile(runXMLKey(specName, runName))
	if err != nil {
		return nil, fmt.Errorf("store: unknown run %q of %q: %w", runName, specName, err)
	}
	return wfxml.DecodeRun(bytes.NewReader(data), sp)
}

// cacheRun publishes a parsed run, keeping the first copy if another
// goroutine raced the load so all readers share one tree.
func (s *Store) cacheRun(specName, runName string, r *wfrun.Run) *wfrun.Run {
	key := runKey(specName, runName)
	s.mu.Lock()
	if have, ok := s.runs[key]; ok {
		r = have
	} else {
		s.runs[key] = r
	}
	s.mu.Unlock()
	return r
}

// ListRuns returns the run names stored under a specification, sorted.
func (s *Store) ListRuns(specName string) ([]string, error) {
	if err := validName(specName); err != nil {
		return nil, err
	}
	entries, err := s.be.List(runsDirKey(specName))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.Dir && strings.HasSuffix(e.Name, ".xml") {
			out = append(out, strings.TrimSuffix(e.Name, ".xml"))
		}
	}
	sort.Strings(out)
	return out, nil
}

// DeleteRun removes a stored run everywhere it lives: the XML blob,
// the parsed-run cache, and the snapshot manifest (so a restart can
// never resurrect it). Exactly one change notification fires, after
// all state is consistent.
func (s *Store) DeleteRun(specName, runName string) error {
	if err := validName(specName); err != nil {
		return err
	}
	if err := validName(runName); err != nil {
		return err
	}
	if err := s.be.Remove(runXMLKey(specName, runName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.mu.Lock()
	delete(s.runs, runKey(specName, runName))
	s.mu.Unlock()
	s.dropRunSnapshot(specName, runName)
	s.notifyRunChange(specName, runName)
	return nil
}

// Diff loads two stored runs (cached after first parse) and
// differences them. The Result owns a fresh engine, so its Mapping and
// Script stay valid indefinitely; batch callers should prefer DiffWith
// or Cohort.
func (s *Store) Diff(specName, runA, runB string, m cost.Model) (*core.Result, error) {
	return s.DiffWith(core.NewEngine(m), specName, runA, runB)
}

// DiffWith differences two stored runs with a caller-owned engine,
// the allocation-free path for batch differencing over the repository.
// The usual engine contract applies: extract Mapping/Script from the
// Result before reusing the engine, and do not share one engine
// across goroutines.
func (s *Store) DiffWith(eng *core.Engine, specName, runA, runB string) (*core.Result, error) {
	a, err := s.LoadRun(specName, runA)
	if err != nil {
		return nil, err
	}
	b, err := s.LoadRun(specName, runB)
	if err != nil {
		return nil, err
	}
	return eng.Diff(a, b)
}

// Cohort loads the named stored runs of a specification (all of them
// when runNames is nil) and computes their pairwise edit-distance
// matrix, fanning the differencing out with one engine per worker.
func (s *Store) Cohort(specName string, runNames []string, m cost.Model) (*analysis.Matrix, error) {
	return s.CohortWith(specName, runNames, m, analysis.Options{})
}

// CohortWith is Cohort with explicit analysis options — worker count
// and a per-pair progress callback, which the HTTP service streams to
// clients watching a long cohort computation.
func (s *Store) CohortWith(specName string, runNames []string, m cost.Model, opts analysis.Options) (*analysis.Matrix, error) {
	if runNames == nil {
		var err error
		runNames, err = s.ListRuns(specName)
		if err != nil {
			return nil, err
		}
	}
	runs := make([]*wfrun.Run, len(runNames))
	for i, name := range runNames {
		r, err := s.LoadRun(specName, name)
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}
	return analysis.DistanceMatrixWith(runs, runNames, m, opts)
}
