// Package store is a small on-disk provenance repository: XML
// specifications with their collected runs, addressable by name, plus
// differencing and cohort analysis over stored runs. It provides the
// persistence layer the PDiffView prototype keeps behind its
// import/export menus ("view, store, generate and import/export
// SP-specifications and their associated runs", Section VII).
//
// Layout:
//
//	<root>/<spec>/spec.xml
//	<root>/<spec>/runs/<run>.xml
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/spec"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// Store is a directory-backed provenance repository. It is safe for
// concurrent use; loaded specifications are cached so runs of the same
// specification share one *spec.Spec (a requirement for differencing).
type Store struct {
	root string

	mu    sync.Mutex
	specs map[string]*spec.Spec
}

// Open opens (creating if needed) a repository rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{root: dir, specs: make(map[string]*spec.Spec)}, nil
}

func validName(name string) error {
	if name == "" || strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("store: invalid name %q", name)
	}
	return nil
}

func (s *Store) specDir(name string) string  { return filepath.Join(s.root, name) }
func (s *Store) specPath(name string) string { return filepath.Join(s.root, name, "spec.xml") }
func (s *Store) runPath(specName, runName string) string {
	return filepath.Join(s.root, specName, "runs", runName+".xml")
}

// SaveSpec stores a specification under the given name. Saving over an
// existing specification is rejected once runs exist (their trees
// reference the stored specification).
func (s *Store) SaveSpec(name string, sp *spec.Spec) error {
	if err := validName(name); err != nil {
		return err
	}
	runs, _ := s.ListRuns(name)
	if len(runs) > 0 {
		return fmt.Errorf("store: specification %q already has %d runs; refusing to overwrite", name, len(runs))
	}
	if err := os.MkdirAll(filepath.Join(s.specDir(name), "runs"), 0o755); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	f, err := os.Create(s.specPath(name))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	if err := wfxml.EncodeSpec(f, sp, name); err != nil {
		return err
	}
	s.mu.Lock()
	s.specs[name] = sp
	s.mu.Unlock()
	return nil
}

// LoadSpec returns the named specification, cached after first load.
func (s *Store) LoadSpec(name string) (*spec.Spec, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if sp, ok := s.specs[name]; ok {
		s.mu.Unlock()
		return sp, nil
	}
	s.mu.Unlock()
	f, err := os.Open(s.specPath(name))
	if err != nil {
		return nil, fmt.Errorf("store: unknown specification %q: %w", name, err)
	}
	defer f.Close()
	sp, err := wfxml.DecodeSpec(f)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	// Another goroutine may have raced the load; keep the first.
	if have, ok := s.specs[name]; ok {
		sp = have
	} else {
		s.specs[name] = sp
	}
	s.mu.Unlock()
	return sp, nil
}

// ListSpecs returns the stored specification names, sorted.
func (s *Store) ListSpecs() ([]string, error) {
	entries, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			if _, err := os.Stat(s.specPath(e.Name())); err == nil {
				out = append(out, e.Name())
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// SaveRun stores a run under the named specification. The run must
// belong to the stored specification object (load it via LoadSpec
// before executing or deriving runs).
func (s *Store) SaveRun(specName, runName string, r *wfrun.Run) error {
	if err := validName(specName); err != nil {
		return err
	}
	if err := validName(runName); err != nil {
		return err
	}
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return err
	}
	if r.Spec != sp {
		return fmt.Errorf("store: run does not belong to stored specification %q; build runs against LoadSpec(%q)", specName, specName)
	}
	f, err := os.Create(s.runPath(specName, runName))
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return wfxml.EncodeRun(f, r, runName)
}

// LoadRun loads a stored run, deriving its annotated tree against the
// cached specification.
func (s *Store) LoadRun(specName, runName string) (*wfrun.Run, error) {
	if err := validName(specName); err != nil {
		return nil, err
	}
	if err := validName(runName); err != nil {
		return nil, err
	}
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(s.runPath(specName, runName))
	if err != nil {
		return nil, fmt.Errorf("store: unknown run %q of %q: %w", runName, specName, err)
	}
	defer f.Close()
	return wfxml.DecodeRun(f, sp)
}

// ListRuns returns the run names stored under a specification, sorted.
func (s *Store) ListRuns(specName string) ([]string, error) {
	if err := validName(specName); err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(filepath.Join(s.specDir(specName), "runs"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".xml") {
			out = append(out, strings.TrimSuffix(e.Name(), ".xml"))
		}
	}
	sort.Strings(out)
	return out, nil
}

// DeleteRun removes a stored run.
func (s *Store) DeleteRun(specName, runName string) error {
	if err := validName(specName); err != nil {
		return err
	}
	if err := validName(runName); err != nil {
		return err
	}
	if err := os.Remove(s.runPath(specName, runName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Diff loads two stored runs and differences them.
func (s *Store) Diff(specName, runA, runB string, m cost.Model) (*core.Result, error) {
	a, err := s.LoadRun(specName, runA)
	if err != nil {
		return nil, err
	}
	b, err := s.LoadRun(specName, runB)
	if err != nil {
		return nil, err
	}
	return core.Diff(a, b, m)
}
