package store

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// memoryBackend keeps every blob in a mutex-guarded map — the fastest
// test backend and the natural home of ephemeral tenants. Directories
// are implicit in the keys. "Reopening" a memory backend is handing
// the same instance to a fresh Store; Close keeps the data for exactly
// that reason.
type memoryBackend struct {
	mu    sync.RWMutex
	blobs map[string]memBlob
}

type memBlob struct {
	data []byte
	mod  time.Time
}

// NewMemoryBackend returns an empty in-memory backend.
func NewMemoryBackend() Backend {
	return &memoryBackend{blobs: make(map[string]memBlob)}
}

func (b *memoryBackend) Kind() string { return "memory" }

func (b *memoryBackend) ReadFile(key string) ([]byte, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	blob, ok := b.blobs[key]
	if !ok {
		return nil, notExist("read", key)
	}
	out := make([]byte, len(blob.data))
	copy(out, blob.data)
	return out, nil
}

func (b *memoryBackend) WriteFile(key string, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	b.mu.Lock()
	b.blobs[key] = memBlob{data: cp, mod: time.Now()}
	b.mu.Unlock()
	return nil
}

func (b *memoryBackend) Append(key string, data []byte, sync bool) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	blob := b.blobs[key]
	// Copy-on-append: readers hold slices of the old array.
	next := make([]byte, 0, len(blob.data)+len(data))
	next = append(append(next, blob.data...), data...)
	b.blobs[key] = memBlob{data: next, mod: time.Now()}
	return nil
}

func (b *memoryBackend) ReadAt(key string, p []byte, off int64) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	blob, ok := b.blobs[key]
	if !ok {
		return notExist("readat", key)
	}
	if off < 0 || off+int64(len(p)) > int64(len(blob.data)) {
		return notExist("readat", key) // past EOF: demotes snapshot reads
	}
	copy(p, blob.data[off:])
	return nil
}

func (b *memoryBackend) Stat(key string) (BlobInfo, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	blob, ok := b.blobs[key]
	if !ok {
		return BlobInfo{}, notExist("stat", key)
	}
	return BlobInfo{Size: int64(len(blob.data)), ModTime: blob.mod}, nil
}

func (b *memoryBackend) List(dir string) ([]Entry, error) {
	prefix := ""
	if dir != "" {
		prefix = strings.TrimSuffix(dir, "/") + "/"
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	seen := make(map[string]bool)
	var out []Entry
	for key := range b.blobs {
		if !strings.HasPrefix(key, prefix) {
			continue
		}
		rest := key[len(prefix):]
		name, more := rest, false
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			name, more = rest[:i], true
		}
		if seen[name] {
			continue
		}
		seen[name] = true
		out = append(out, Entry{Name: name, Dir: more})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

func (b *memoryBackend) Remove(key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.blobs[key]; !ok {
		return notExist("remove", key)
	}
	delete(b.blobs, key)
	return nil
}

func (b *memoryBackend) Close() error { return nil }
