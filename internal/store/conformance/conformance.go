// Package conformance is the executable contract of store.Backend: a
// reusable test suite every storage backend — filesystem, in-memory,
// object-store, sharded, or a fault-injection decorator wrapping any
// of them — must pass identically before the repository may run on
// it.
//
// A backend test hands RunConformance a factory that opens the SAME
// underlying state on every call ("reopen" semantics — for stateful
// in-process backends the factory simply returns the same instance):
//
//	func TestMyBackend(t *testing.T) {
//		dir := t.TempDir()
//		conformance.RunConformance(t, func() store.Backend {
//			be, err := store.NewFSBackend(dir)
//			if err != nil {
//				t.Fatal(err)
//			}
//			return be
//		})
//	}
//
// The suite checks two layers. The blob layer: read/write byte
// identity, append-exactly semantics, ReadAt windows, listing,
// canonical not-exist errors (errors.Is(err, fs.ErrNotExist) AND
// os.IsNotExist), atomic WriteFile visibility under concurrent
// readers, and persistence across reopen. The repository layer, run
// through a *store.Store over the backend: import→read byte identity,
// exactly-one coalesced bulk notification, snapshot freshness
// demotion after overwrite, ledger proof round-trips across reopen,
// all-or-nothing bulk validation, and tolerance of torn trailing
// writes in both the ledger log and live-run event journals (the
// crash shapes a power loss mid-append leaves behind).
package conformance

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/store"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// RunConformance runs the full backend contract against the state
// opened by the factory. Each call to open must return a backend over
// the same underlying state; the suite uses repeated calls to model
// process restarts. Subtests use disjoint key namespaces, so one
// factory state serves the whole suite.
func RunConformance(t *testing.T, open func() store.Backend) {
	t.Helper()
	t.Run("BlobReadWrite", func(t *testing.T) { testBlobReadWrite(t, open) })
	t.Run("BlobAppend", func(t *testing.T) { testBlobAppend(t, open) })
	t.Run("BlobReadAt", func(t *testing.T) { testBlobReadAt(t, open) })
	t.Run("BlobList", func(t *testing.T) { testBlobList(t, open) })
	t.Run("BlobNotExist", func(t *testing.T) { testBlobNotExist(t, open) })
	t.Run("WriteFileAtomic", func(t *testing.T) { testWriteFileAtomic(t, open) })
	t.Run("ImportReadIdentity", func(t *testing.T) { testImportReadIdentity(t, open) })
	t.Run("ExactlyOneNotification", func(t *testing.T) { testExactlyOneNotification(t, open) })
	t.Run("SnapshotFreshnessDemotion", func(t *testing.T) { testSnapshotFreshness(t, open) })
	t.Run("LedgerProofAcrossReopen", func(t *testing.T) { testLedgerProofReopen(t, open) })
	t.Run("BulkAllOrNothing", func(t *testing.T) { testBulkAllOrNothing(t, open) })
	t.Run("TornLedgerTail", func(t *testing.T) { testTornLedgerTail(t, open) })
	t.Run("TornLiveJournalTail", func(t *testing.T) { testTornLiveTail(t, open) })
}

// --- blob layer ----------------------------------------------------

func testBlobReadWrite(t *testing.T, open func() store.Backend) {
	be := open()
	key := "c-rw/spec.xml"
	want := []byte("<spec>hello</spec>\n")
	if err := be.WriteFile(key, want); err != nil {
		t.Fatal(err)
	}
	got, err := be.ReadFile(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("read %q, want %q", got, want)
	}
	// The returned slice is the caller's: mutating it must not corrupt
	// the stored blob.
	for i := range got {
		got[i] = 'X'
	}
	again, err := be.ReadFile(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, want) {
		t.Fatal("mutating a read buffer corrupted the stored blob")
	}
	// Overwrite replaces wholesale.
	want2 := []byte("replaced")
	if err := be.WriteFile(key, want2); err != nil {
		t.Fatal(err)
	}
	if got, _ := be.ReadFile(key); !bytes.Equal(got, want2) {
		t.Fatalf("after overwrite read %q, want %q", got, want2)
	}
	// Reopen: the write persisted.
	if got, err := open().ReadFile(key); err != nil || !bytes.Equal(got, want2) {
		t.Fatalf("after reopen read %q, %v; want %q", got, err, want2)
	}
	info, err := be.Stat(key)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != int64(len(want2)) {
		t.Fatalf("Stat size = %d, want %d", info.Size, len(want2))
	}
}

func testBlobAppend(t *testing.T, open func() store.Backend) {
	be := open()
	key := "c-append/snapshot/ledger.log"
	// Append to a missing key creates it.
	if err := be.Append(key, []byte("one\n"), false); err != nil {
		t.Fatal(err)
	}
	if err := be.Append(key, []byte("two\n"), true); err != nil {
		t.Fatal(err)
	}
	// An empty append is a no-op, not an error.
	if err := be.Append(key, nil, false); err != nil {
		t.Fatal(err)
	}
	want := []byte("one\ntwo\n")
	if got, err := be.ReadFile(key); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("after appends read %q, %v; want %q", got, err, want)
	}
	// Reopen: appends persisted in order.
	if got, err := open().ReadFile(key); err != nil || !bytes.Equal(got, want) {
		t.Fatalf("after reopen read %q, %v; want %q", got, err, want)
	}
}

func testBlobReadAt(t *testing.T, open func() store.Backend) {
	be := open()
	key := "c-readat/snapshot/runs.seg"
	if err := be.WriteFile(key, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 4)
	if err := be.ReadAt(key, p, 3); err != nil {
		t.Fatal(err)
	}
	if string(p) != "3456" {
		t.Fatalf("ReadAt(3,4) = %q, want 3456", p)
	}
	if err := be.ReadAt(key, p, 0); err != nil || string(p) != "0123" {
		t.Fatalf("ReadAt(0,4) = %q, %v", p, err)
	}
	// A window past the end must error, never return short data.
	if err := be.ReadAt(key, p, 8); err == nil {
		t.Fatal("ReadAt past end succeeded")
	}
	if err := be.ReadAt(key, p, 100); err == nil {
		t.Fatal("ReadAt far past end succeeded")
	}
}

func testBlobList(t *testing.T, open func() store.Backend) {
	be := open()
	// A missing directory lists as empty, not as an error.
	if entries, err := be.List("c-list-missing"); err != nil || len(entries) != 0 {
		t.Fatalf("List of missing dir = %v, %v; want empty, nil", entries, err)
	}
	for _, key := range []string{"c-list/spec.xml", "c-list/runs/r1.xml", "c-list/runs/r2.xml"} {
		if err := be.WriteFile(key, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	root, err := be.List("")
	if err != nil {
		t.Fatal(err)
	}
	foundRoot := false
	for _, e := range root {
		if e.Name == "c-list" {
			foundRoot = true
			if !e.Dir {
				t.Fatal("c-list listed as a file at the root")
			}
		}
	}
	if !foundRoot {
		t.Fatalf("root listing %v misses c-list", root)
	}
	inside, err := be.List("c-list")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	dirs := make(map[string]bool)
	for _, e := range inside {
		names = append(names, e.Name)
		dirs[e.Name] = e.Dir
	}
	if len(names) != 2 || dirs["spec.xml"] || !dirs["runs"] {
		t.Fatalf("List(c-list) = %v dirs=%v", names, dirs)
	}
	runs, err := be.List("c-list/runs")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].Name != "r1.xml" || runs[1].Name != "r2.xml" {
		t.Fatalf("List(c-list/runs) = %v, want sorted r1.xml r2.xml", runs)
	}
	// Remove drops the entry from listings.
	if err := be.Remove("c-list/runs/r1.xml"); err != nil {
		t.Fatal(err)
	}
	runs, _ = be.List("c-list/runs")
	if len(runs) != 1 || runs[0].Name != "r2.xml" {
		t.Fatalf("after Remove, List = %v", runs)
	}
}

func testBlobNotExist(t *testing.T, open func() store.Backend) {
	be := open()
	const key = "c-missing/never/was.xml"
	check := func(op string, err error) {
		t.Helper()
		if err == nil {
			t.Fatalf("%s of a missing key succeeded", op)
		}
		if !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("%s error %v does not satisfy errors.Is(fs.ErrNotExist)", op, err)
		}
		if !os.IsNotExist(err) {
			t.Fatalf("%s error %v does not satisfy os.IsNotExist", op, err)
		}
	}
	_, err := be.ReadFile(key)
	check("ReadFile", err)
	_, err = be.Stat(key)
	check("Stat", err)
	check("Remove", be.Remove(key))
	check("ReadAt", be.ReadAt(key, make([]byte, 1), 0))
}

func testWriteFileAtomic(t *testing.T, open func() store.Backend) {
	be := open()
	key := "c-atomic/spec.xml"
	a := bytes.Repeat([]byte{'a'}, 1<<15)
	b := bytes.Repeat([]byte{'b'}, 1<<15)
	if err := be.WriteFile(key, a); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			payload := a
			if i%2 == 1 {
				payload = b
			}
			if err := be.WriteFile(key, payload); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		got, err := be.ReadFile(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(a) {
			t.Fatalf("reader saw a %d-byte torso, want %d", len(got), len(a))
		}
		for _, c := range got {
			if c != got[0] {
				t.Fatal("reader saw a mixed old/new blob; WriteFile is not atomic")
			}
		}
	}
}

// --- repository layer ----------------------------------------------

// seedSpec saves the PA catalog workflow under specName and returns
// the store's canonical spec object.
func seedSpec(t *testing.T, st *store.Store, specName string) {
	t.Helper()
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec(specName, pa); err != nil {
		t.Fatal(err)
	}
}

// genRuns renders n fresh random runs of a stored spec as import-ready
// RunData.
func genRuns(t *testing.T, st *store.Store, specName string, n int, seed int64, prefix string) []store.RunData {
	t.Helper()
	sp, err := st.LoadSpec(specName)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]store.RunData, n)
	for i := range out {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		name := fmt.Sprintf("%s%d", prefix, i)
		if err := wfxml.EncodeRun(&buf, r, name); err != nil {
			t.Fatal(err)
		}
		out[i] = store.RunData{Name: name, XML: buf.Bytes()}
	}
	return out
}

func testImportReadIdentity(t *testing.T, open func() store.Backend) {
	const spec = "c-import"
	st := store.OpenBackend(open())
	seedSpec(t, st, spec)
	batch := genRuns(t, st, spec, 3, 1, "r")
	if _, err := st.ImportRuns(spec, batch, 2); err != nil {
		t.Fatal(err)
	}
	// A cold store over the same state serves byte-identical XML and
	// parses every run.
	cold := store.OpenBackend(open())
	for _, rd := range batch {
		got, err := cold.Backend().ReadFile(spec + "/runs/" + rd.Name + ".xml")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, rd.XML) {
			t.Fatalf("stored XML of %s differs from imported bytes", rd.Name)
		}
		r, err := cold.LoadRun(spec, rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("run %s invalid after round-trip: %v", rd.Name, err)
		}
	}
	names, err := cold.ListRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 {
		t.Fatalf("ListRuns = %v, want 3 runs", names)
	}
}

func testExactlyOneNotification(t *testing.T, open func() store.Backend) {
	const spec = "c-notify"
	st := store.OpenBackend(open())
	seedSpec(t, st, spec)
	var mu sync.Mutex
	var singles int
	var bulks [][]string
	st.OnRunChange(func(_, _ string) { mu.Lock(); singles++; mu.Unlock() })
	st.OnRunsBulkChange(func(_ string, runs []string) {
		mu.Lock()
		bulks = append(bulks, append([]string(nil), runs...))
		mu.Unlock()
	})
	batch := genRuns(t, st, spec, 4, 2, "n")
	if _, err := st.ImportRuns(spec, batch, 2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if singles != 0 {
		t.Fatalf("bulk import fired %d per-run notifications, want 0", singles)
	}
	if len(bulks) != 1 || len(bulks[0]) != 4 {
		t.Fatalf("bulk import fired %d bulk notifications %v, want exactly one with 4 names", len(bulks), bulks)
	}
}

func testSnapshotFreshness(t *testing.T, open func() store.Backend) {
	const spec = "c-fresh"
	st := store.OpenBackend(open())
	seedSpec(t, st, spec)
	if _, err := st.ImportRuns(spec, genRuns(t, st, spec, 1, 3, "r"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Snapshot(spec); err != nil {
		t.Fatal(err)
	}
	// Overwrite r0 with different content; a cold store must serve the
	// new run, not the stale snapshot frame.
	fresh := genRuns(t, st, spec, 1, 99, "r")
	if _, err := st.ImportRuns(spec, fresh, 1); err != nil {
		t.Fatal(err)
	}
	cold := store.OpenBackend(open())
	got, err := cold.LoadRun(spec, "r0")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := cold.LoadSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := wfxml.DecodeRun(bytes.NewReader(fresh[0].XML), sp)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tree.LabelSignature() != want.Tree.LabelSignature() {
		t.Fatal("cold store served the pre-overwrite snapshot")
	}
}

func testLedgerProofReopen(t *testing.T, open func() store.Backend) {
	const spec = "c-ledger"
	st := store.OpenBackend(open())
	seedSpec(t, st, spec)
	if _, err := st.ImportRuns(spec, genRuns(t, st, spec, 3, 4, "p"), 2); err != nil {
		t.Fatal(err)
	}
	proof := func(s *store.Store, run string) []byte {
		t.Helper()
		p, err := s.RunProof(spec, run)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := store.VerifyProof(p); err != nil {
			t.Fatalf("proof of %s does not verify: %v", run, err)
		}
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	before := map[string][]byte{}
	for _, run := range []string{"p0", "p1", "p2"} {
		before[run] = proof(st, run)
	}
	cold := store.OpenBackend(open())
	for run, want := range before {
		if got := proof(cold, run); !bytes.Equal(got, want) {
			t.Fatalf("proof of %s drifted across reopen:\n before %s\n after  %s", run, want, got)
		}
	}
	// The chain continues across the reopen instead of restarting.
	if _, err := cold.ImportRuns(spec, genRuns(t, cold, spec, 1, 5, "q"), 1); err != nil {
		t.Fatal(err)
	}
	heads, _, err := cold.LedgerHeads()
	if err != nil {
		t.Fatal(err)
	}
	if heads[spec].Batches != 2 {
		t.Fatalf("post-reopen import chained to batch %d, want 2", heads[spec].Batches)
	}
	report, err := cold.VerifyLedger(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("ledger verify red after reopen: %+v", report.Issues)
	}
}

func testBulkAllOrNothing(t *testing.T, open func() store.Backend) {
	const spec = "c-bulk"
	st := store.OpenBackend(open())
	seedSpec(t, st, spec)
	good := genRuns(t, st, spec, 2, 6, "g")
	// One malformed document must reject the whole batch untouched.
	batch := append(append([]store.RunData(nil), good...),
		store.RunData{Name: "bad", XML: []byte("<not-a-run")})
	if _, err := st.ImportRuns(spec, batch, 2); err == nil {
		t.Fatal("batch with a malformed document imported")
	}
	names, err := st.ListRuns(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("failed batch left runs behind: %v", names)
	}
	// So must a duplicate name.
	dup := append(append([]store.RunData(nil), good...), good[0])
	if _, err := st.ImportRuns(spec, dup, 2); !errors.Is(err, store.ErrDuplicateRun) {
		t.Fatalf("duplicate batch error = %v, want ErrDuplicateRun", err)
	}
	if names, _ := st.ListRuns(spec); len(names) != 0 {
		t.Fatalf("duplicate batch left runs behind: %v", names)
	}
}

func testTornLedgerTail(t *testing.T, open func() store.Backend) {
	const spec = "c-torn-ledger"
	st := store.OpenBackend(open())
	seedSpec(t, st, spec)
	if _, err := st.ImportRuns(spec, genRuns(t, st, spec, 2, 7, "a"), 1); err != nil {
		t.Fatal(err)
	}
	// A crash mid-append leaves an unterminated fragment at the tail of
	// the ledger log.
	if err := open().Append(spec+"/snapshot/ledger.log", []byte(`{"v":1,"seq":2,"torn`), false); err != nil {
		t.Fatal(err)
	}
	cold := store.OpenBackend(open())
	// The next import must NOT weld onto the fragment: the chain stays
	// verifiable and every proof still anchors.
	if _, err := cold.ImportRuns(spec, genRuns(t, cold, spec, 2, 8, "b"), 1); err != nil {
		t.Fatal(err)
	}
	report, err := cold.VerifyLedger(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("torn ledger tail broke verification: %+v", report.Issues)
	}
	for _, run := range []string{"a0", "a1", "b0", "b1"} {
		p, err := cold.RunProof(spec, run)
		if err != nil {
			t.Fatalf("proof of %s after torn tail: %v", run, err)
		}
		if _, err := store.VerifyProof(p); err != nil {
			t.Fatalf("proof of %s does not verify after torn tail: %v", run, err)
		}
	}
}

func testTornLiveTail(t *testing.T, open func() store.Backend) {
	const spec = "c-torn-live"
	st := store.OpenBackend(open())
	rng := rand.New(rand.NewSource(13))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 10, SeriesRatio: 1.5, Forks: 1, Loops: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.SaveSpec(spec, sp); err != nil {
		t.Fatal(err)
	}
	canon, err := st.LoadSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	run, err := gen.RandomRun(canon, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	evs := wfrun.Events(run)
	half := len(evs) / 2
	if _, err := st.AppendLiveEvents(spec, "r", evs[:half]); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: an unterminated fragment at the journal tail.
	if err := open().Append(spec+"/live/r.events", []byte(`{"from":"torn`), false); err != nil {
		t.Fatal(err)
	}
	cold := store.OpenBackend(open())
	status, ok, err := cold.LiveStatusOf(spec, "r")
	if err != nil || !ok {
		t.Fatalf("live status after torn tail: ok=%v err=%v", ok, err)
	}
	if status.Events != half {
		t.Fatalf("replayed %d events, want the %d complete ones", status.Events, half)
	}
	// The run finishes normally from the repaired journal.
	if _, err := cold.AppendLiveEvents(spec, "r", evs[half:]); err != nil {
		t.Fatal(err)
	}
	done, err := cold.CompleteLiveRun(spec, "r")
	if err != nil {
		t.Fatal(err)
	}
	if err := done.Validate(); err != nil {
		t.Fatalf("completed run invalid after torn-tail recovery: %v", err)
	}
}
