package conformance_test

import (
	"testing"

	"repro/internal/store"
	"repro/internal/store/conformance"
)

func TestFSBackend(t *testing.T) {
	dir := t.TempDir()
	conformance.RunConformance(t, func() store.Backend {
		be, err := store.NewFSBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		return be
	})
}

func TestMemoryBackend(t *testing.T) {
	be := store.NewMemoryBackend()
	conformance.RunConformance(t, func() store.Backend { return be })
}

func TestObjectBackend(t *testing.T) {
	dir := t.TempDir()
	conformance.RunConformance(t, func() store.Backend {
		be, err := store.NewObjectBackend(dir)
		if err != nil {
			t.Fatal(err)
		}
		return be
	})
}

// The sharded fan-out must satisfy the same contract as its shards —
// run here over two persistent memory shards.
func TestShardedBackend(t *testing.T) {
	shards := []store.Backend{store.NewMemoryBackend(), store.NewMemoryBackend()}
	conformance.RunConformance(t, func() store.Backend {
		be, err := store.NewShardedBackend(shards...)
		if err != nil {
			t.Fatal(err)
		}
		return be
	})
}
