package store

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
)

// seedCohort stores a spec and n runs, returning the reopened store
// (cold caches) and the run names.
func seedCohort(t *testing.T, n int) (*Store, []string) {
	t.Helper()
	s := openStore(t)
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('a' + i))
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveRun("pa", names[i], r); err != nil {
			t.Fatal(err)
		}
	}
	return reopenStore(s), names
}

func TestRunCache(t *testing.T) {
	s, names := seedCohort(t, 3)
	r1, err := s.LoadRun("pa", names[0])
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s.LoadRun("pa", names[0])
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("LoadRun should cache the parsed run object")
	}
	if err := s.DeleteRun("pa", names[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.LoadRun("pa", names[0]); err == nil {
		t.Fatal("deleted run must be evicted from the cache")
	}
}

// TestCohortMatchesPairwiseDiff: the cohort matrix equals per-pair
// store Diff results, and engine-threaded DiffWith agrees with Diff.
func TestCohortMatchesPairwiseDiff(t *testing.T) {
	s, names := seedCohort(t, 4)
	mx, err := s.Cohort("pa", nil, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mx.Labels) != len(names) {
		t.Fatalf("labels = %v", mx.Labels)
	}
	eng := core.NewEngine(cost.Unit{})
	for i := range names {
		for j := range names {
			res, err := s.Diff("pa", names[i], names[j], cost.Unit{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Distance != mx.D[i][j] {
				t.Fatalf("matrix[%d][%d] = %g, Diff = %g", i, j, mx.D[i][j], res.Distance)
			}
			res2, err := s.DiffWith(eng, "pa", names[i], names[j])
			if err != nil {
				t.Fatal(err)
			}
			if res2.Distance != res.Distance {
				t.Fatalf("DiffWith(%d,%d) = %g, Diff = %g", i, j, res2.Distance, res.Distance)
			}
		}
	}
}

// TestCohortEnginePerGoroutineRace exercises the intended concurrency
// model under -race: parsed runs are shared via the store cache while
// every goroutine differences them with its own engine (Cohort does
// the same internally via analysis.DistanceMatrix).
func TestCohortEnginePerGoroutineRace(t *testing.T) {
	s, names := seedCohort(t, 5)
	want, err := s.Cohort("pa", names, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			eng := core.NewEngine(cost.Unit{})
			for i := range names {
				for j := range names {
					res, err := s.DiffWith(eng, "pa", names[i], names[j])
					if err != nil {
						errs <- err
						return
					}
					if res.Distance != want.D[i][j] {
						t.Errorf("goroutine %d: pair (%d,%d) = %g, want %g", g, i, j, res.Distance, want.D[i][j])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
