package store

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

func TestSaveLoadSpecAndRuns(t *testing.T) {
	s := openStore(t)
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	// Cached: the same object comes back.
	sp2, err := s.LoadSpec("pa")
	if err != nil {
		t.Fatal(err)
	}
	if sp != sp2 {
		t.Fatal("LoadSpec should cache the specification object")
	}

	rng := rand.New(rand.NewSource(1))
	for _, name := range []string{"mon", "tue", "wed"} {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.SaveRun("pa", name, r); err != nil {
			t.Fatal(err)
		}
	}
	runs, err := s.ListRuns("pa")
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 || runs[0] != "mon" || runs[2] != "wed" {
		t.Fatalf("runs = %v", runs)
	}
	r, err := s.LoadRun("pa", "tue")
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec != sp {
		t.Fatal("loaded run must reference the cached specification")
	}
	specs, err := s.ListSpecs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0] != "pa" {
		t.Fatalf("specs = %v", specs)
	}
}

func TestDiffStoredRuns(t *testing.T) {
	s := openStore(t)
	pa, _ := gen.Catalog("PA")
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, _ := s.LoadSpec("pa")
	rng := rand.New(rand.NewSource(2))
	r1, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRun("pa", "a", r1); err != nil {
		t.Fatal(err)
	}
	r2, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRun("pa", "b", r2); err != nil {
		t.Fatal(err)
	}
	res, err := s.Diff("pa", "a", "b", cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Distance < 0 {
		t.Fatal("negative distance")
	}
	same, err := s.Diff("pa", "a", "a", cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if same.Distance != 0 {
		t.Fatalf("self distance = %g", same.Distance)
	}
}

func TestSaveRunRejectsForeignSpec(t *testing.T) {
	s := openStore(t)
	pa, _ := gen.Catalog("PA")
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	// A run built against a *different* PA object must be rejected.
	other, _ := gen.Catalog("PA")
	r, err := wfrun.Execute(other, wfrun.FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRun("pa", "x", r); err == nil {
		t.Fatal("foreign-spec run must be rejected")
	}
}

func TestOverwriteProtection(t *testing.T) {
	s := openStore(t)
	pa, _ := gen.Catalog("PA")
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, _ := s.LoadSpec("pa")
	r, err := wfrun.Execute(sp, wfrun.FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SaveRun("pa", "r1", r); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveSpec("pa", pa); err == nil {
		t.Fatal("overwriting a specification with runs must fail")
	}
	if err := s.DeleteRun("pa", "r1"); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteRun("pa", "r1"); err == nil {
		t.Fatal("double delete must fail")
	}
}

func TestNameValidation(t *testing.T) {
	s := openStore(t)
	pa, _ := gen.Catalog("PA")
	for _, bad := range []string{"", "a/b", "..", "."} {
		if err := s.SaveSpec(bad, pa); err == nil {
			t.Fatalf("name %q must be rejected", bad)
		}
		if _, err := s.LoadSpec(bad); err == nil {
			t.Fatalf("load of %q must be rejected", bad)
		}
	}
	if _, err := s.LoadSpec("ghost"); err == nil {
		t.Fatal("unknown spec must fail")
	}
	if _, err := s.LoadRun("ghost", "r"); err == nil {
		t.Fatal("run of unknown spec must fail")
	}
}

// TestPathTraversalNames locks down the name hardening ValidateName
// provides to every boundary (CLI flags, HTTP path values): traversal
// components and separator-containing names must never be joined into
// the repository root.
func TestPathTraversalNames(t *testing.T) {
	s := openStore(t)
	pa, _ := gen.Catalog("PA")
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, _ := s.LoadSpec("pa")
	r, err := wfrun.Execute(sp, wfrun.FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	bad := []string{
		"..", ".", "", "a/b", `a\b`, "../escape", "..\\escape",
		"runs/../../../etc", "a\x00b", ".hidden",
	}
	for _, name := range bad {
		if err := ValidateName(name); err == nil {
			t.Errorf("ValidateName(%q) accepted a traversal-capable name", name)
		}
		if _, err := s.LoadRun("pa", name); err == nil {
			t.Errorf("LoadRun run=%q must be rejected", name)
		}
		if _, err := s.LoadRun(name, "r"); err == nil {
			t.Errorf("LoadRun spec=%q must be rejected", name)
		}
		if err := s.SaveRun(name, "r", r); err == nil {
			t.Errorf("SaveRun spec=%q must be rejected", name)
		}
		if err := s.SaveRun("pa", name, r); err == nil {
			t.Errorf("SaveRun run=%q must be rejected", name)
		}
		if err := s.DeleteRun("pa", name); err == nil {
			t.Errorf("DeleteRun run=%q must be rejected", name)
		}
		if _, err := s.ListRuns(name); err == nil {
			t.Errorf("ListRuns spec=%q must be rejected", name)
		}
	}
	for _, ok := range []string{"pa", "run-1", "run_2", "Run3", "2024-07-28T12:00"} {
		if err := ValidateName(ok); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", ok, err)
		}
	}
}

// TestRunChangeHooks verifies OnRunChange fires on both import and
// delete with the right names.
func TestRunChangeHooks(t *testing.T) {
	s := openStore(t)
	pa, _ := gen.Catalog("PA")
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	sp, _ := s.LoadSpec("pa")
	r, err := wfrun.Execute(sp, wfrun.FullDecider{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []string
	s.OnRunChange(func(spec, run string) {
		mu.Lock()
		events = append(events, spec+"/"+run)
		mu.Unlock()
	})
	if err := s.SaveRun("pa", "x", r); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteRun("pa", "x"); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "pa/x" || events[1] != "pa/x" {
		t.Fatalf("events = %v", events)
	}
}

func TestConcurrentLoads(t *testing.T) {
	s := openStore(t)
	pa, _ := gen.Catalog("PA")
	if err := s.SaveSpec("pa", pa); err != nil {
		t.Fatal(err)
	}
	// Clear the cache by reopening the store on the same backend.
	s2 := reopenStore(s)
	var wg sync.WaitGroup
	specs := make([]interface{}, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp, err := s2.LoadSpec("pa")
			if err != nil {
				t.Error(err)
				return
			}
			specs[i] = sp
		}(i)
	}
	wg.Wait()
	for i := 1; i < 8; i++ {
		if specs[i] != specs[0] {
			t.Fatal("concurrent loads must converge on one specification object")
		}
	}
}
