package store

import (
	"os"
	"sync"
	"testing"
)

// The store tests run against whichever backend
// PROVSTORE_TEST_BACKEND selects (fs, memory or object; default fs),
// so CI exercises the identical suite across every implementation.
// "Reopening" a store means constructing a fresh *Store over the same
// persisted state keyed by dir — for the memory backend a
// process-local registry maps dirs to long-lived instances, since its
// state lives in the instance itself.

var memBackends = struct {
	mu sync.Mutex
	m  map[string]Backend
}{m: make(map[string]Backend)}

func testBackendKind() string {
	if k := os.Getenv("PROVSTORE_TEST_BACKEND"); k != "" {
		return k
	}
	return "fs"
}

// openTestBackend returns the backend under test for dir; calling it
// again with the same dir reopens the same persisted state.
func openTestBackend(t testing.TB, dir string) Backend {
	t.Helper()
	kind := testBackendKind()
	if kind == "memory" {
		memBackends.mu.Lock()
		defer memBackends.mu.Unlock()
		be, ok := memBackends.m[dir]
		if !ok {
			be = NewMemoryBackend()
			memBackends.m[dir] = be
		}
		return be
	}
	be, err := NewBackend(kind, dir)
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// openTestStore opens (or reopens) a repository on dir under the
// backend kind being tested.
func openTestStore(t testing.TB, dir string) *Store {
	t.Helper()
	return OpenBackend(openTestBackend(t, dir))
}

func openStore(t *testing.T) *Store {
	t.Helper()
	return openTestStore(t, t.TempDir())
}

// reopenStore builds a fresh *Store (empty caches) over the same
// backend — the backend-agnostic stand-in for "restart the process".
func reopenStore(s *Store) *Store { return OpenBackend(s.Backend()) }
