package store

import (
	"errors"
	"fmt"
	"io/fs"
	"time"
)

// Backend is the store's entire persistence surface, abstracted to a
// small blob interface so the repository can live on a local directory
// tree, in memory, or in an object store. Keys are slash-separated
// logical paths mirroring the classic on-disk layout:
//
//	<spec>/spec.xml                     authoritative specification XML
//	<spec>/runs/<run>.xml               authoritative run XML
//	<spec>/snapshot/manifest.json       snapshot index
//	<spec>/snapshot/runs.seg            append-only run frames
//	<spec>/snapshot/spec.bin            binary specification frame
//	<spec>/snapshot/ledger.log          Merkle ledger (JSON lines)
//	<spec>/snapshot/lineage.bin         parent→child mapping frame
//	<spec>/lineage.json                 lineage link
//	<spec>/live/<run>.events            live-run event journal
//
// Contract, shared by every implementation and enforced by the
// conformance suite (internal/store/conformance):
//
//   - WriteFile is atomic: readers observe either the old bytes or the
//     new bytes, never a prefix. Parent "directories" are implicit.
//   - Append appends exactly the given bytes; with sync set the data
//     is durable before Append returns (the group-commit fsync point).
//     Appending to a missing key creates it.
//   - A missing key surfaces as an error satisfying
//     errors.Is(err, fs.ErrNotExist) — and os.IsNotExist — from
//     ReadFile, ReadAt, Stat and Remove.
//   - List of a missing directory returns (nil, nil), matching the
//     store's historical "no runs yet" tolerance.
//
// Implementations must be safe for concurrent use; the store
// serializes writers per spec but readers run concurrently.
type Backend interface {
	// Kind names the implementation ("fs", "memory", "object",
	// "sharded") for stats and diagnostics.
	Kind() string
	ReadFile(key string) ([]byte, error)
	WriteFile(key string, data []byte) error
	Append(key string, data []byte, sync bool) error
	// ReadAt fills p from the blob starting at offset off; short blobs
	// return an error.
	ReadAt(key string, p []byte, off int64) error
	Stat(key string) (BlobInfo, error)
	List(dir string) ([]Entry, error)
	Remove(key string) error
	Close() error
}

// Entry is one name inside a backend "directory".
type Entry struct {
	Name string
	Dir  bool
}

// BlobInfo describes a stored blob.
type BlobInfo struct {
	Size    int64
	ModTime time.Time
}

// notExist builds the canonical missing-key error: a *fs.PathError
// wrapping fs.ErrNotExist, so errors.Is(err, fs.ErrNotExist) and
// os.IsNotExist both hold — the store and the HTTP error mapper rely
// on exactly that.
func notExist(op, key string) error {
	return &fs.PathError{Op: op, Path: key, Err: fs.ErrNotExist}
}

// isNotExist reports whether a backend error means "no such key" —
// the backend-agnostic twin of os.IsNotExist.
func isNotExist(err error) bool { return errors.Is(err, fs.ErrNotExist) }

// NewBackend constructs a backend by kind name — the -backend flag of
// provserved and provstore, and the PROVSTORE_TEST_BACKEND selector of
// the test helpers. dir is the storage root for the fs and object
// kinds and is ignored for memory.
func NewBackend(kind, dir string) (Backend, error) {
	switch kind {
	case "", "fs":
		return NewFSBackend(dir)
	case "memory":
		return NewMemoryBackend(), nil
	case "object":
		return NewObjectBackend(dir)
	default:
		return nil, fmt.Errorf("store: unknown backend kind %q (want fs, memory or object)", kind)
	}
}
