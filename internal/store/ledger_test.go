package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// proofJSON marshals a run's proof for byte-for-byte comparisons.
func proofJSON(t *testing.T, s *Store, run string) []byte {
	t.Helper()
	p, err := s.RunProof("pa", run)
	if err != nil {
		t.Fatalf("proof %s: %v", run, err)
	}
	if _, err := VerifyProof(p); err != nil {
		t.Fatalf("proof %s does not verify: %v", run, err)
	}
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func requireVerifyOK(t *testing.T, s *Store) VerifyReport {
	t.Helper()
	report, err := s.VerifyLedger()
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("verify found divergence: %+v", report.Issues)
	}
	return report
}

// TestLedgerAttestsAndProves covers the happy path: a bulk import is
// one ledger batch, every run's proof verifies and anchors to the
// published head, and the repository root folds the per-spec heads.
func TestLedgerAttestsAndProves(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	batch := genRunXML(t, s, 5, 11, "w")
	stats, err := s.ImportRuns("pa", batch, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Hashes) != 5 {
		t.Fatalf("import returned %d hashes, want 5", len(stats.Hashes))
	}
	heads, root, err := s.LedgerHeads()
	if err != nil {
		t.Fatal(err)
	}
	if heads["pa"].Batches != 1 {
		t.Fatalf("batches = %d, want 1", heads["pa"].Batches)
	}
	if root == "" || strings.Trim(root, "0") == "" {
		t.Fatalf("repo root empty: %q", root)
	}
	for i, rd := range batch {
		p, err := s.RunProof("pa", rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Hash != stats.Hashes[i] {
			t.Fatalf("proof hash %s != import hash %s", p.Hash, stats.Hashes[i])
		}
		if p.Batch != 1 || p.BatchSize != 5 || p.Index != i {
			t.Fatalf("proof shape = batch %d size %d index %d", p.Batch, p.BatchSize, p.Index)
		}
		head, err := VerifyProof(p)
		if err != nil {
			t.Fatal(err)
		}
		if head != heads["pa"].Head {
			t.Fatalf("proof head %s != published head %s", head, heads["pa"].Head)
		}
	}
	report := requireVerifyOK(t, s)
	if report.Specs != 1 || report.Batches != 1 || report.Runs != 5 {
		t.Fatalf("report = %+v", report)
	}
}

// TestLedgerDedupOnReimport: re-importing byte-identical runs must
// not grow the segment (the frames are content-addressed) while still
// re-attesting the batch in a new ledger record.
func TestLedgerDedupOnReimport(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	batch := genRunXML(t, s, 4, 3, "d")
	if _, err := s.ImportRuns("pa", batch, 2); err != nil {
		t.Fatal(err)
	}
	before, err := s.Backend().Stat(segmentKey("pa"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportRuns("pa", batch, 2); err != nil {
		t.Fatal(err)
	}
	after, err := s.Backend().Stat(segmentKey("pa"))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size != before.Size {
		t.Fatalf("identical re-import grew segment: %d -> %d bytes", before.Size, after.Size)
	}
	heads, _, err := s.LedgerHeads()
	if err != nil {
		t.Fatal(err)
	}
	if heads["pa"].Batches != 2 {
		t.Fatalf("re-import did not append a batch: %d", heads["pa"].Batches)
	}
	for _, rd := range batch {
		p, err := s.RunProof("pa", rd.Name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Batch != 2 {
			t.Fatalf("re-attested run still proves against batch %d", p.Batch)
		}
		if _, err := VerifyProof(p); err != nil {
			t.Fatal(err)
		}
	}
	requireVerifyOK(t, s)
}

// TestLedgerChainAcrossRestart: a cold store continues the chain
// instead of restarting it, and everything committed before the
// restart still proves.
func TestLedgerChainAcrossRestart(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	if _, err := s.ImportRuns("pa", genRunXML(t, s, 3, 5, "a"), 2); err != nil {
		t.Fatal(err)
	}
	headsBefore, rootBefore, err := s.LedgerHeads()
	if err != nil {
		t.Fatal(err)
	}

	s2 := reopen(t, dir)
	heads, root, err := s2.LedgerHeads()
	if err != nil {
		t.Fatal(err)
	}
	if root != rootBefore || heads["pa"] != headsBefore["pa"] {
		t.Fatalf("restart changed ledger: %+v -> %+v", headsBefore, heads)
	}
	if _, err := s2.ImportRuns("pa", genRunXML(t, s2, 2, 6, "b"), 2); err != nil {
		t.Fatal(err)
	}
	heads, _, err = s2.LedgerHeads()
	if err != nil {
		t.Fatal(err)
	}
	if heads["pa"].Batches != 2 {
		t.Fatalf("post-restart import did not chain: batches = %d", heads["pa"].Batches)
	}
	for _, run := range []string{"a0", "a1", "a2", "b0", "b1"} {
		proofJSON(t, s2, run)
	}
	requireVerifyOK(t, s2)
}

// TestStaleSnapshotSameSizeSameMtime is the regression test for the
// fingerprint bug: rewriting a run's XML with same-length content and
// the original mtime (os.Chtimes) used to slip past the size+mtime
// fingerprint, serving the stale snapshot. The content hash must
// demote the entry to a re-parse.
func TestStaleSnapshotSameSizeSameMtime(t *testing.T) {
	if testBackendKind() != "fs" {
		t.Skip("os.Chtimes mtime pinning needs the fs backend")
	}
	dir := seedDir(t, 1)
	s := reopen(t, dir)
	if _, err := s.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "pa", "runs", "r0.xml")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Same length, different content: break the document's last closing
	// tag so a real re-parse must fail loudly.
	i := bytes.LastIndex(data, []byte("</"))
	if i < 0 {
		t.Fatal("no closing tag in run XML")
	}
	mutated := append([]byte(nil), data...)
	mutated[i] = 'X'
	if len(mutated) != len(data) || bytes.Equal(mutated, data) {
		t.Fatal("mutation did not preserve length or did nothing")
	}
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}
	// Pin the original mtime: the stat fingerprint is now identical.
	if err := os.Chtimes(path, fi.ModTime(), fi.ModTime()); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != fi.Size() || !after.ModTime().Equal(fi.ModTime()) {
		t.Fatalf("rewrite changed the stat fingerprint; test is not exercising the hash")
	}

	cold := reopen(t, dir)
	if cold.hasFreshSnapshot("pa", "r0") {
		t.Fatal("same-size same-mtime rewrite still counts as fresh")
	}
	if _, err := cold.LoadRun("pa", "r0"); err == nil {
		t.Fatal("LoadRun served a stale snapshot instead of re-parsing the rewritten XML")
	}
}

// TestSameContentMtimeDriftStaysFresh: the flip side of hash-based
// freshness — rewriting identical bytes with a new mtime must NOT
// demote the snapshot (stat drift, same content).
func TestSameContentMtimeDriftStaysFresh(t *testing.T) {
	if testBackendKind() != "fs" {
		t.Skip("os.Chtimes mtime pinning needs the fs backend")
	}
	dir := seedDir(t, 1)
	s := reopen(t, dir)
	if _, err := s.Snapshot("pa"); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "pa", "runs", "r0.xml")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(time.Hour)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	cold := reopen(t, dir)
	if !cold.hasFreshSnapshot("pa", "r0") {
		t.Fatal("identical content with drifted mtime demoted the snapshot")
	}
	pre, err := cold.Preload("pa")
	if err != nil {
		t.Fatal(err)
	}
	if pre.FromXML != 0 {
		t.Fatalf("preload re-parsed %d runs despite identical content", pre.FromXML)
	}
}

// TestCompactionPreservesProofs: compaction rewrites the segment but
// must not touch history — every inclusion proof is byte-for-byte
// identical across it, and verify stays green.
func TestCompactionPreservesProofs(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	if _, err := s.ImportRuns("pa", genRunXML(t, s, 6, 9, "c"), 2); err != nil {
		t.Fatal(err)
	}
	// Dead bytes: drop one run, overwrite another with fresh content.
	if err := s.DeleteRun("pa", "c0"); err != nil {
		t.Fatal(err)
	}
	redo := genRunXML(t, s, 2, 77, "c")[1:] // fresh content for c1
	if _, err := s.ImportRuns("pa", redo, 1); err != nil {
		t.Fatal(err)
	}
	live := []string{"c1", "c2", "c3", "c4", "c5"}
	before := make(map[string][]byte, len(live))
	for _, run := range live {
		before[run] = proofJSON(t, s, run)
	}

	st := s.snap("pa")
	st.mu.Lock()
	st.manifest.Dead = compactMinDeadBytes + 1
	err := s.maybeCompactLocked("pa", st)
	st.mu.Unlock()
	if err != nil {
		t.Fatalf("compaction: %v", err)
	}

	for _, run := range live {
		after := proofJSON(t, s, run)
		if !bytes.Equal(before[run], after) {
			t.Fatalf("compaction changed proof of %s:\n before %s\n after  %s", run, before[run], after)
		}
	}
	requireVerifyOK(t, s)
}

// TestCrashedCompactionLeavesVerifyGreen simulates dying between the
// segment rewrite and the manifest save: the rewritten segment is on
// disk but the manifest still holds pre-compaction offsets. Offsets
// are stale, content is not — verify must fall back to scanning and
// stay green, and loads must still work.
func TestCrashedCompactionLeavesVerifyGreen(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	if _, err := s.ImportRuns("pa", genRunXML(t, s, 5, 13, "k"), 2); err != nil {
		t.Fatal(err)
	}
	// A hole at the front guarantees compaction shifts every offset.
	if err := s.DeleteRun("pa", "k0"); err != nil {
		t.Fatal(err)
	}
	preCompaction, err := s.Backend().ReadFile(manifestKey("pa"))
	if err != nil {
		t.Fatal(err)
	}
	st := s.snap("pa")
	st.mu.Lock()
	st.manifest.Dead = compactMinDeadBytes + 1
	err = s.maybeCompactLocked("pa", st)
	st.mu.Unlock()
	if err != nil {
		t.Fatalf("compaction: %v", err)
	}
	// "Crash": the manifest save never happened.
	if err := s.Backend().WriteFile(manifestKey("pa"), preCompaction); err != nil {
		t.Fatal(err)
	}

	cold := reopen(t, dir)
	requireVerifyOK(t, cold)
	for _, run := range []string{"k1", "k2", "k3", "k4"} {
		if _, err := cold.LoadRun("pa", run); err != nil {
			t.Fatalf("load %s after crashed compaction: %v", run, err)
		}
		proofJSON(t, cold, run)
	}
}

// TestVerifyDetectsFlippedByte: one flipped byte in any live segment
// record — frame body, record header or embedded name — must turn
// verify red, naming the batch.
func TestVerifyDetectsFlippedByte(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	if _, err := s.ImportRuns("pa", genRunXML(t, s, 3, 21, "f"), 2); err != nil {
		t.Fatal(err)
	}
	be := openTestBackend(t, dir)
	orig, err := be.ReadFile(segmentKey("pa"))
	if err != nil {
		t.Fatal(err)
	}
	for _, pos := range []int{0, 1, len(orig) / 2, len(orig) - 1} {
		tampered := append([]byte(nil), orig...)
		tampered[pos] ^= 0x01
		if err := be.WriteFile(segmentKey("pa"), tampered); err != nil {
			t.Fatal(err)
		}
		report, err := reopen(t, dir).VerifyLedger("pa")
		if err != nil {
			t.Fatal(err)
		}
		if report.OK() {
			t.Fatalf("flipped byte at offset %d not detected", pos)
		}
		if report.Issues[0].Batch <= 0 {
			t.Fatalf("issue does not name a batch: %+v", report.Issues[0])
		}
	}
	// Restore: clean state verifies again.
	if err := be.WriteFile(segmentKey("pa"), orig); err != nil {
		t.Fatal(err)
	}
	requireVerifyOK(t, reopen(t, dir))
}

// TestVerifyDetectsLedgerTampering: rewriting a committed batch
// record breaks either its own root or the next record's chain link.
func TestVerifyDetectsLedgerTampering(t *testing.T) {
	dir := seedDir(t, 0)
	s := reopen(t, dir)
	if _, err := s.ImportRuns("pa", genRunXML(t, s, 2, 31, "t"), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ImportRuns("pa", genRunXML(t, s, 2, 32, "u"), 1); err != nil {
		t.Fatal(err)
	}
	be := openTestBackend(t, dir)
	orig, err := be.ReadFile(ledgerKey("pa"))
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(bytes.TrimSpace(orig), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("expected 2 ledger records, got %d", len(lines))
	}
	// Flip one hex digit inside the first record.
	tampered := bytes.Replace(orig, []byte(`"seq":1`), []byte(`"seq":9`), 1)
	if bytes.Equal(tampered, orig) {
		t.Fatal("tampering had no effect")
	}
	if err := be.WriteFile(ledgerKey("pa"), tampered); err != nil {
		t.Fatal(err)
	}
	report, err := reopen(t, dir).VerifyLedger("pa")
	if err != nil {
		t.Fatal(err)
	}
	if report.OK() {
		t.Fatal("rewritten ledger record not detected")
	}
}

// TestVerifyUnknownSpec: naming a spec that does not exist is an
// error, not a silent pass.
func TestVerifyUnknownSpec(t *testing.T) {
	s := reopen(t, seedDir(t, 0))
	if _, err := s.VerifyLedger("nope"); err == nil {
		t.Fatal("verify of unknown spec succeeded")
	}
}
