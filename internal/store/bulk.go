package store

import (
	"archive/tar"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

// RunData is one run of a bulk import: its name and raw XML document.
type RunData struct {
	Name string
	XML  []byte
}

// ErrDuplicateRun marks a batch that names the same run more than
// once; HTTP callers map it onto 409 Conflict.
var ErrDuplicateRun = errors.New("store: duplicate run name in batch")

// ParsedRun is one pre-parsed run of a batched commit: the
// authoritative XML bytes together with the run decoded from exactly
// those bytes (the parsed-run cache invariant).
type ParsedRun struct {
	Name string
	XML  []byte
	Run  *wfrun.Run
}

// ImportStats summarizes a bulk import.
type ImportStats struct {
	Spec     string
	Imported []string // run names, in input order
	Nodes    int      // total run-graph nodes imported
	Edges    int      // total run-graph edges imported
	// Hashes holds the hex content hash of each imported run's codec
	// frame, aligned with Imported — the run's ledger identity. Empty
	// when the snapshot layer is disabled or its write failed.
	Hashes []string
}

// ImportRuns imports a batch of runs into a specification in one
// pass: every document is parsed and derived concurrently (workers
// goroutines; <= 0 means GOMAXPROCS), written as authoritative XML,
// snapshotted into the segment, and published to the parsed-run cache
// — the parse happened from exactly the bytes now stored, so the
// cache invariant ("only ever serve what a fresh parse would
// produce") holds without eviction.
//
// Change notification is coalesced: the per-run OnRunChange hooks do
// NOT fire; instead every OnRunsBulkChange hook fires exactly once
// with the full name list, so a subscriber maintaining a per-spec
// cohort matrix performs one rebuild instead of len(runs) incremental
// updates.
//
// Validation is all-or-nothing per batch: names are checked and every
// document parsed before anything is written, so a malformed document
// rejects the whole batch without touching the repository.
func (s *Store) ImportRuns(specName string, runs []RunData, workers int) (ImportStats, error) {
	stats := ImportStats{Spec: specName}
	if err := validName(specName); err != nil {
		return stats, err
	}
	if len(runs) == 0 {
		return stats, nil
	}
	seen := make(map[string]bool, len(runs))
	for _, rd := range runs {
		if err := validName(rd.Name); err != nil {
			return stats, err
		}
		if seen[rd.Name] {
			return stats, fmt.Errorf("run %q appears twice in bulk import: %w", rd.Name, ErrDuplicateRun)
		}
		seen[rd.Name] = true
	}
	sp, err := s.LoadSpec(specName)
	if err != nil {
		return stats, err
	}

	// Phase 1: parse everything concurrently, nothing written yet.
	parsed := make([]*wfrun.Run, len(runs))
	errs := make([]error, len(runs))
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(runs) {
					return
				}
				r, err := wfxml.DecodeRun(bytes.NewReader(runs[i].XML), sp)
				if err != nil {
					errs[i] = fmt.Errorf("store: run %q: %w", runs[i].Name, err)
					continue
				}
				parsed[i] = r
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return stats, err
		}
	}

	// Phase 2 is the shared batched commit.
	batch := make([]ParsedRun, len(runs))
	for i, rd := range runs {
		batch[i] = ParsedRun{Name: rd.Name, XML: rd.XML, Run: parsed[i]}
	}
	return s.ImportParsed(specName, batch)
}

// ImportParsed is the group-commit half of the bulk import, shared
// with the server's ingest pipeline: runs that are already parsed
// (each Run decoded from exactly its XML bytes) are written as
// authoritative XML, snapshotted in ONE synced segment append + ONE
// manifest save, published to the parsed-run cache, and announced
// with ONE coalesced OnRunsBulkChange notification — the per-run
// OnRunChange hooks do not fire.
//
// Names are validated and checked for duplicates (ErrDuplicateRun) up
// front. A mid-write failure keeps the runs already fully written
// (they are individually valid), snapshots and announces them, and
// returns the error alongside the partial ImportStats.
func (s *Store) ImportParsed(specName string, runs []ParsedRun) (ImportStats, error) {
	stats := ImportStats{Spec: specName}
	if err := validName(specName); err != nil {
		return stats, err
	}
	if len(runs) == 0 {
		return stats, nil
	}
	seen := make(map[string]bool, len(runs))
	for _, pr := range runs {
		if err := validName(pr.Name); err != nil {
			return stats, err
		}
		if seen[pr.Name] {
			return stats, fmt.Errorf("run %q appears twice in batch: %w", pr.Name, ErrDuplicateRun)
		}
		seen[pr.Name] = true
		if pr.Run == nil {
			return stats, fmt.Errorf("store: run %q has no parsed form", pr.Name)
		}
	}
	if _, err := s.LoadSpec(specName); err != nil {
		return stats, err
	}
	batch := make([]snapBatchItem, 0, len(runs))
	for _, pr := range runs {
		key := runXMLKey(specName, pr.Name)
		if err := s.be.WriteFile(key, pr.XML); err != nil {
			// WriteFile is atomic, but stay defensive: drop whatever the
			// backend may have left so the run cannot poison later
			// listings and cohorts.
			_ = s.be.Remove(key)
			return s.bulkAbort(stats, specName, batch, err)
		}
		fp, err := s.fingerprintXML(specName, pr.Name, pr.XML)
		if err != nil {
			_ = s.be.Remove(key)
			return s.bulkAbort(stats, specName, batch, fmt.Errorf("store: %w", err))
		}
		batch = append(batch, snapBatchItem{name: pr.Name, run: pr.Run, fp: fp})
		s.mu.Lock()
		s.runs[runKey(specName, pr.Name)] = pr.Run
		s.mu.Unlock()
		stats.Imported = append(stats.Imported, pr.Name)
		stats.Nodes += pr.Run.NumNodes()
		stats.Edges += pr.Run.NumEdges()
	}
	// The segment append is synced: for pipeline clients the batch
	// commit IS the durability point they were promised. Snapshot
	// failures stay best-effort (the stored XML is authoritative).
	stats.Hashes, _ = s.writeRunSnapshotBatch(specName, batch, true)
	s.notifyBulkChange(specName, stats.Imported)
	return stats, nil
}

// bulkAbort reports a mid-write failure. Runs already fully written
// stay stored (they are individually valid); their snapshots are
// written and one coalesced notification covers them so subscribers
// cannot miss the partial import.
func (s *Store) bulkAbort(stats ImportStats, specName string, batch []snapBatchItem, err error) (ImportStats, error) {
	if len(stats.Imported) > 0 {
		stats.Hashes, _ = s.writeRunSnapshotBatch(specName, batch, true)
		s.notifyBulkChange(specName, stats.Imported)
	}
	return stats, err
}

// ImportDir bulk-imports every *.xml file of a local directory as runs
// of a specification, named by base filename. The directory is
// EXTERNAL input (the provstore import-dir subcommand), so it is read
// with plain os calls regardless of the repository's backend.
func (s *Store) ImportDir(specName, dir string, workers int) (ImportStats, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ImportStats{Spec: specName}, fmt.Errorf("store: %w", err)
	}
	var runs []RunData
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") || e.Name() == "spec.xml" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return ImportStats{Spec: specName}, fmt.Errorf("store: %w", err)
		}
		runs = append(runs, RunData{Name: strings.TrimSuffix(e.Name(), ".xml"), XML: data})
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].Name < runs[j].Name })
	return s.ImportRuns(specName, runs, workers)
}

// ExportSpec streams a specification and all (or the named subset of)
// its runs as a tar archive: spec.xml at the root, runs under runs/.
// The archive round-trips through ImportTar / the runs:bulk endpoint.
func (s *Store) ExportSpec(specName string, runNames []string, w io.Writer) error {
	if err := validName(specName); err != nil {
		return err
	}
	if _, err := s.LoadSpec(specName); err != nil {
		return err
	}
	if runNames == nil {
		var err error
		runNames, err = s.ListRuns(specName)
		if err != nil {
			return err
		}
	}
	tw := tar.NewWriter(w)
	addFile := func(name, key string) error {
		data, err := s.be.ReadFile(key)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: time.Unix(0, 0), // deterministic archives
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		if _, err := tw.Write(data); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		return nil
	}
	if err := addFile("spec.xml", specXMLKey(specName)); err != nil {
		return err
	}
	for _, name := range runNames {
		if err := validName(name); err != nil {
			return err
		}
		if err := addFile("runs/"+name+".xml", runXMLKey(specName, name)); err != nil {
			return err
		}
	}
	return tw.Close()
}

// ReadRunTar collects run documents from a tar stream: every regular
// *.xml entry except spec.xml becomes a run named by its base
// filename. Entry names are validated before they can touch the
// repository; maxRun bounds a single document and maxTotal the whole
// stream.
func ReadRunTar(r io.Reader, maxRun, maxTotal int64) ([]RunData, error) {
	tr := tar.NewReader(r)
	var runs []RunData
	var total int64
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("store: tar: %w", err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		base := path.Base(path.Clean(hdr.Name))
		if !strings.HasSuffix(base, ".xml") || base == "spec.xml" {
			continue
		}
		name := strings.TrimSuffix(base, ".xml")
		if err := ValidateName(name); err != nil {
			return nil, err
		}
		if hdr.Size > maxRun {
			return nil, fmt.Errorf("store: run %q is %d bytes (limit %d)", name, hdr.Size, maxRun)
		}
		total += hdr.Size
		if total > maxTotal {
			return nil, fmt.Errorf("store: bulk import exceeds %d bytes", maxTotal)
		}
		data, err := io.ReadAll(io.LimitReader(tr, maxRun+1))
		if err != nil {
			return nil, fmt.Errorf("store: tar: %w", err)
		}
		if int64(len(data)) > maxRun {
			return nil, fmt.Errorf("store: run %q exceeds %d bytes", name, maxRun)
		}
		runs = append(runs, RunData{Name: name, XML: data})
	}
	return runs, nil
}
