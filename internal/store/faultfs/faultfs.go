// Package faultfs is a deterministic fault-injection decorator for
// store.Backend: it forwards every operation to an inner backend
// until a scheduled rule fires, then fails that operation the way
// real storage fails — a generic I/O error, ENOSPC, a partial append
// that commits a prefix before erroring (the torn-write shape), or a
// silently dropped fsync. Rules are keyed by operation and key suffix
// and fire on the Nth match, so a test script reads as "the 2nd
// append to the ledger log runs out of disk" and replays identically
// every run.
//
// The crash/recovery differential tests drive it like this: run a
// workload against a wrapped backend, let a rule fire mid-commit,
// Clear() the rules (the machine rebooted), reopen a fresh store over
// the same backend, and require the recovered repository to serve
// exactly what a never-faulted twin serves — or to fail loudly via
// VerifyLedger, never to be silently wrong.
package faultfs

import (
	"fmt"
	"io/fs"
	"strings"
	"sync"
	"syscall"

	"repro/internal/store"
)

// Op names a backend operation a rule can target.
type Op string

const (
	OpRead   Op = "read"
	OpWrite  Op = "write"
	OpAppend Op = "append"
	OpReadAt Op = "readat"
	OpStat   Op = "stat"
	OpList   Op = "list"
	OpRemove Op = "remove"
)

// Mode is how a fired rule fails the operation.
type Mode int

const (
	// ErrIO fails the operation with a generic injected I/O error.
	ErrIO Mode = iota
	// ENOSPC fails the operation with syscall.ENOSPC.
	ENOSPC
	// PartialThenErr commits a prefix of the data before erroring —
	// the torn-write crash shape. Only meaningful on Append; WriteFile
	// is atomic by contract, so there it degrades to ErrIO.
	PartialThenErr
	// DropSync lets an Append succeed but silently discards its
	// durability request (sync=true is forwarded as sync=false).
	DropSync
)

func (m Mode) String() string {
	switch m {
	case ErrIO:
		return "errio"
	case ENOSPC:
		return "enospc"
	case PartialThenErr:
		return "partial"
	case DropSync:
		return "dropsync"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// errInjected marks every fault this package raises.
var errInjected = fmt.Errorf("faultfs: injected fault")

// IsInjected reports whether an error came from a fired rule.
func IsInjected(err error) bool {
	for ; err != nil; err = unwrap(err) {
		if err == errInjected {
			return true
		}
	}
	return false
}

func unwrap(err error) error {
	u, ok := err.(interface{ Unwrap() error })
	if !ok {
		return nil
	}
	return u.Unwrap()
}

// Rule schedules one fault: the Nth operation of kind Op whose key
// ends in KeySuffix fails with Mode. N is 1-based; N<=0 means every
// match. An empty KeySuffix matches every key.
type Rule struct {
	Op        Op
	KeySuffix string
	N         int
	Mode      Mode
}

type ruleState struct {
	Rule
	matches int
	spent   bool
}

// Backend decorates an inner store.Backend with scheduled faults.
type Backend struct {
	inner store.Backend

	mu       sync.Mutex
	rules    []*ruleState
	injected []string // log of fired faults, for assertions
}

// Wrap decorates a backend; with no rules scheduled it is a
// transparent proxy.
func Wrap(inner store.Backend) *Backend {
	return &Backend{inner: inner}
}

// Fail schedules a rule.
func (b *Backend) Fail(r Rule) {
	b.mu.Lock()
	b.rules = append(b.rules, &ruleState{Rule: r})
	b.mu.Unlock()
}

// Clear drops every scheduled rule — the reboot between a crash and
// recovery. Fired-fault history is kept for assertions.
func (b *Backend) Clear() {
	b.mu.Lock()
	b.rules = nil
	b.mu.Unlock()
}

// Injected returns a description of every fault that fired, in order.
func (b *Backend) Injected() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.injected...)
}

// check consumes at most one matching rule for the operation and
// returns its mode. ok is false when no fault is due.
func (b *Backend) check(op Op, key string) (Mode, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, r := range b.rules {
		if r.spent || r.Op != op || !strings.HasSuffix(key, r.KeySuffix) {
			continue
		}
		r.matches++
		if r.N > 0 && r.matches != r.N {
			continue
		}
		if r.N > 0 {
			r.spent = true
		}
		b.injected = append(b.injected, fmt.Sprintf("%s %s %s", op, key, r.Mode))
		return r.Mode, true
	}
	return 0, false
}

func (b *Backend) fail(op Op, key string, m Mode) error {
	err := errInjected
	if m == ENOSPC {
		err = syscall.ENOSPC
	}
	return &fs.PathError{Op: string(op), Path: key, Err: err}
}

func (b *Backend) Kind() string { return b.inner.Kind() }

func (b *Backend) ReadFile(key string) ([]byte, error) {
	if m, ok := b.check(OpRead, key); ok {
		return nil, b.fail(OpRead, key, m)
	}
	return b.inner.ReadFile(key)
}

func (b *Backend) WriteFile(key string, data []byte) error {
	if m, ok := b.check(OpWrite, key); ok {
		// WriteFile is atomic by contract: a partial mode still fails
		// without committing anything.
		return b.fail(OpWrite, key, m)
	}
	return b.inner.WriteFile(key, data)
}

func (b *Backend) Append(key string, data []byte, sync bool) error {
	m, ok := b.check(OpAppend, key)
	if !ok {
		return b.inner.Append(key, data, sync)
	}
	switch m {
	case PartialThenErr:
		// Commit a strict prefix, then fail — what a full disk or a
		// power cut leaves behind.
		if n := len(data) / 2; n > 0 {
			if err := b.inner.Append(key, data[:n], false); err != nil {
				return err
			}
		}
		return b.fail(OpAppend, key, m)
	case DropSync:
		return b.inner.Append(key, data, false)
	default:
		return b.fail(OpAppend, key, m)
	}
}

func (b *Backend) ReadAt(key string, p []byte, off int64) error {
	if m, ok := b.check(OpReadAt, key); ok {
		return b.fail(OpReadAt, key, m)
	}
	return b.inner.ReadAt(key, p, off)
}

func (b *Backend) Stat(key string) (store.BlobInfo, error) {
	if m, ok := b.check(OpStat, key); ok {
		return store.BlobInfo{}, b.fail(OpStat, key, m)
	}
	return b.inner.Stat(key)
}

func (b *Backend) List(dir string) ([]store.Entry, error) {
	if m, ok := b.check(OpList, dir); ok {
		return nil, b.fail(OpList, dir, m)
	}
	return b.inner.List(dir)
}

func (b *Backend) Remove(key string) error {
	if m, ok := b.check(OpRemove, key); ok {
		return b.fail(OpRemove, key, m)
	}
	return b.inner.Remove(key)
}

func (b *Backend) Close() error { return b.inner.Close() }
