package faultfs_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"syscall"
	"testing"

	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/store"
	"repro/internal/store/conformance"
	"repro/internal/store/faultfs"
	"repro/internal/wfxml"
)

// forEachBackend runs a crash scenario over every real backend kind.
func forEachBackend(t *testing.T, f func(t *testing.T, open func() store.Backend)) {
	t.Run("fs", func(t *testing.T) {
		dir := t.TempDir()
		f(t, func() store.Backend {
			be, err := store.NewFSBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			return be
		})
	})
	t.Run("memory", func(t *testing.T) {
		be := store.NewMemoryBackend()
		f(t, func() store.Backend { return be })
	})
	t.Run("object", func(t *testing.T) {
		dir := t.TempDir()
		f(t, func() store.Backend {
			be, err := store.NewObjectBackend(dir)
			if err != nil {
				t.Fatal(err)
			}
			return be
		})
	})
}

// catalog returns the deterministic PA workflow.
func catalog(t *testing.T) *spec.Spec {
	t.Helper()
	sp, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// makeBatch renders n runs of sp as RunData; same seed, same bytes —
// so the pristine and the faulted repository ingest identical input.
func makeBatch(t *testing.T, sp *spec.Spec, n int, seed int64, prefix string) []store.RunData {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	out := make([]store.RunData, n)
	for i := range out {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		name := fmt.Sprintf("%s%d", prefix, i)
		if err := wfxml.EncodeRun(&buf, r, name); err != nil {
			t.Fatal(err)
		}
		out[i] = store.RunData{Name: name, XML: buf.Bytes()}
	}
	return out
}

const specName = "crash"

// requireEqualToPristine asserts the recovered repository serves
// exactly what a never-faulted twin ingesting the same batches
// serves: identical run sets, byte-identical XML, valid parses, and
// a green ledger.
func requireEqualToPristine(t *testing.T, recovered *store.Store, batches ...[]store.RunData) {
	t.Helper()
	pristine := store.OpenBackend(store.NewMemoryBackend())
	if err := pristine.SaveSpec(specName, catalog(t)); err != nil {
		t.Fatal(err)
	}
	for _, b := range batches {
		if _, err := pristine.ImportRuns(specName, b, 2); err != nil {
			t.Fatal(err)
		}
	}
	want, err := pristine.ListRuns(specName)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recovered.ListRuns(specName)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("recovered runs %v, pristine %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered runs %v, pristine %v", got, want)
		}
		a, err := recovered.Backend().ReadFile(specName + "/runs/" + want[i] + ".xml")
		if err != nil {
			t.Fatal(err)
		}
		b, err := pristine.Backend().ReadFile(specName + "/runs/" + want[i] + ".xml")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("run %s differs between recovered and pristine repositories", want[i])
		}
		r, err := recovered.LoadRun(specName, want[i])
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Validate(); err != nil {
			t.Fatalf("recovered run %s invalid: %v", want[i], err)
		}
	}
	report, err := recovered.VerifyLedger(specName)
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("recovered ledger verify red: %+v", report.Issues)
	}
}

// TestSegmentAppendENOSPC: the snapshot segment append hits a full
// disk mid-commit. The snapshot layer is best-effort, so the import
// itself survives on the authoritative XML, and after reboot the
// repository equals the never-faulted twin.
func TestSegmentAppendENOSPC(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func() store.Backend) {
		sp := catalog(t)
		a := makeBatch(t, sp, 3, 1, "a")
		b := makeBatch(t, sp, 2, 2, "b")

		fb := faultfs.Wrap(open())
		st := store.OpenBackend(fb)
		if err := st.SaveSpec(specName, sp); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ImportRuns(specName, a, 2); err != nil {
			t.Fatal(err)
		}
		fb.Fail(faultfs.Rule{Op: faultfs.OpAppend, KeySuffix: "runs.seg", N: 1, Mode: faultfs.ENOSPC})
		if _, err := st.ImportRuns(specName, b, 2); err != nil {
			t.Fatalf("import must survive a best-effort snapshot failure, got %v", err)
		}
		if len(fb.Injected()) == 0 {
			t.Fatal("the scheduled fault never fired")
		}

		fb.Clear() // reboot
		requireEqualToPristine(t, store.OpenBackend(fb), a, b)
	})
}

// TestLedgerTornAppend: power dies halfway through the ledger-line
// append — the torn-tail crash shape. Recovery must truncate the
// fragment, keep the chain verifiable, and keep attesting new
// batches.
func TestLedgerTornAppend(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func() store.Backend) {
		sp := catalog(t)
		a := makeBatch(t, sp, 3, 3, "a")
		b := makeBatch(t, sp, 2, 4, "b")
		c := makeBatch(t, sp, 2, 5, "c")

		fb := faultfs.Wrap(open())
		st := store.OpenBackend(fb)
		if err := st.SaveSpec(specName, sp); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ImportRuns(specName, a, 2); err != nil {
			t.Fatal(err)
		}
		fb.Fail(faultfs.Rule{Op: faultfs.OpAppend, KeySuffix: "ledger.log", N: 1, Mode: faultfs.PartialThenErr})
		if _, err := st.ImportRuns(specName, b, 2); err != nil {
			t.Fatalf("import must survive a best-effort ledger failure, got %v", err)
		}

		fb.Clear() // reboot
		recovered := store.OpenBackend(fb)
		// The chain must keep extending over the repaired log.
		if _, err := recovered.ImportRuns(specName, c, 2); err != nil {
			t.Fatal(err)
		}
		requireEqualToPristine(t, recovered, a, b, c)
		for _, run := range []string{"c0", "c1"} {
			p, err := recovered.RunProof(specName, run)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := store.VerifyProof(p); err != nil {
				t.Fatalf("proof of %s after torn-tail recovery: %v", run, err)
			}
		}
	})
}

// TestRunWriteFailsMidBatch: the 2nd run document of a batch fails to
// write. The batch errors, the prefix stays (individually valid), and
// the client's retry after reboot converges on the pristine state.
func TestRunWriteFailsMidBatch(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func() store.Backend) {
		sp := catalog(t)
		a := makeBatch(t, sp, 3, 6, "a")
		b := makeBatch(t, sp, 3, 7, "b")

		fb := faultfs.Wrap(open())
		st := store.OpenBackend(fb)
		if err := st.SaveSpec(specName, sp); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ImportRuns(specName, a, 2); err != nil {
			t.Fatal(err)
		}
		fb.Fail(faultfs.Rule{Op: faultfs.OpWrite, KeySuffix: "b1.xml", N: 1, Mode: faultfs.ErrIO})
		stats, err := st.ImportRuns(specName, b, 1)
		if err == nil {
			t.Fatal("import with a failed run write reported success")
		}
		if !faultfs.IsInjected(err) {
			t.Fatalf("error %v does not unwrap to the injected fault", err)
		}
		if len(stats.Imported) >= len(b) {
			t.Fatalf("partial stats report %d imports of a failed batch of %d", len(stats.Imported), len(b))
		}

		fb.Clear() // reboot; the client retries the whole batch
		recovered := store.OpenBackend(fb)
		if _, err := recovered.ImportRuns(specName, b, 2); err != nil {
			t.Fatal(err)
		}
		requireEqualToPristine(t, recovered, a, b)
	})
}

// TestDroppedSyncStillConsistent: a storage stack that lies about
// fsync must not corrupt anything the process itself can observe —
// recovery from the surviving bytes equals the pristine twin.
func TestDroppedSyncStillConsistent(t *testing.T) {
	forEachBackend(t, func(t *testing.T, open func() store.Backend) {
		sp := catalog(t)
		a := makeBatch(t, sp, 3, 8, "a")

		fb := faultfs.Wrap(open())
		fb.Fail(faultfs.Rule{Op: faultfs.OpAppend, KeySuffix: "", N: 0, Mode: faultfs.DropSync})
		st := store.OpenBackend(fb)
		if err := st.SaveSpec(specName, sp); err != nil {
			t.Fatal(err)
		}
		if _, err := st.ImportRuns(specName, a, 2); err != nil {
			t.Fatal(err)
		}
		fb.Clear()
		requireEqualToPristine(t, store.OpenBackend(fb), a)
	})
}

// TestDecoratorScheduling covers the rule mechanics themselves.
func TestDecoratorScheduling(t *testing.T) {
	fb := faultfs.Wrap(store.NewMemoryBackend())
	if err := fb.WriteFile("s/a.txt", []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Nth-op: only the 2nd matching append fails.
	fb.Fail(faultfs.Rule{Op: faultfs.OpAppend, KeySuffix: ".log", N: 2, Mode: faultfs.ENOSPC})
	if err := fb.Append("s/x.log", []byte("one\n"), false); err != nil {
		t.Fatalf("1st append failed early: %v", err)
	}
	err := fb.Append("s/x.log", []byte("two\n"), false)
	if err == nil {
		t.Fatal("2nd append did not fail")
	}
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("ENOSPC rule raised %v", err)
	}
	// Spent: the 3rd append succeeds again.
	if err := fb.Append("s/x.log", []byte("three\n"), false); err != nil {
		t.Fatalf("spent rule still firing: %v", err)
	}
	got, err := fb.ReadFile("s/x.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "one\nthree\n" {
		t.Fatalf("log content %q, want the failed append absent", got)
	}
	// PartialThenErr commits a strict prefix.
	fb.Fail(faultfs.Rule{Op: faultfs.OpAppend, KeySuffix: "y.log", N: 1, Mode: faultfs.PartialThenErr})
	err = fb.Append("s/y.log", []byte("abcdef"), true)
	if !faultfs.IsInjected(err) {
		t.Fatalf("partial append error = %v, want injected", err)
	}
	got, err = fb.ReadFile("s/y.log")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("partial append committed %q, want the half prefix", got)
	}
	if n := len(fb.Injected()); n != 2 {
		t.Fatalf("injected log has %d entries, want 2: %v", n, fb.Injected())
	}
	// Clear drops pending rules.
	fb.Fail(faultfs.Rule{Op: faultfs.OpRead, Mode: faultfs.ErrIO})
	fb.Clear()
	if _, err := fb.ReadFile("s/a.txt"); err != nil {
		t.Fatalf("cleared rule still firing: %v", err)
	}
}

// A rule-free decorator must be indistinguishable from its inner
// backend — it passes the full conformance contract.
func TestWrappedBackendConformance(t *testing.T) {
	fb := faultfs.Wrap(store.NewMemoryBackend())
	conformance.RunConformance(t, func() store.Backend { return fb })
}
