package store

import (
	"encoding/json"
	"os"
	"testing"
)

// TestWriteStoreBenchArtifact materializes the cold-start benchmarks
// as a JSON file (path in $BENCH_STORE_JSON) — the committed
// BENCH_store.json baseline and the CI benchmark artifact both come
// from this. It is skipped in normal test runs, and it fails outright
// if the snapshot path does not beat the XML re-parse by >= 5x on the
// 32-run cohort (the PR's acceptance bar).
func TestWriteStoreBenchArtifact(t *testing.T) {
	path := os.Getenv("BENCH_STORE_JSON")
	if path == "" {
		t.Skip("BENCH_STORE_JSON not set")
	}
	type entry struct {
		NsPerOp      int64   `json:"ns_per_op"`
		AllocsPerOp  int64   `json:"allocs_per_op"`
		BytesPerOp   int64   `json:"bytes_per_op"`
		N            int     `json:"n"`
		MsPerOp      float64 `json:"ms_per_op"`
		SpeedupVsXML float64 `json:"speedup_vs_xml,omitempty"`
	}
	run := func(fn func(*testing.B)) entry {
		r := testing.Benchmark(fn)
		return entry{
			NsPerOp:     r.NsPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			N:           r.N,
			MsPerOp:     float64(r.NsPerOp()) / 1e6,
		}
	}
	snap := run(BenchmarkColdPreloadSnapshot)
	xml := run(BenchmarkColdPreloadXML)
	if snap.NsPerOp > 0 {
		snap.SpeedupVsXML = float64(xml.NsPerOp) / float64(snap.NsPerOp)
	}
	out := map[string]entry{
		"cold_preload_snapshot_32": snap,
		"cold_preload_xml_32":      xml,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: snapshot %.3fms vs xml %.3fms per 32-run cold preload (%.1fx)",
		path, snap.MsPerOp, xml.MsPerOp, snap.SpeedupVsXML)
	if snap.SpeedupVsXML < 5 {
		t.Errorf("cold snapshot preload is only %.2fx faster than XML re-parse, want >= 5x", snap.SpeedupVsXML)
	}
}
