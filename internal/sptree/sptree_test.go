package sptree

import (
	"testing"

	"repro/internal/graph"
)

func q(from, to string) *Node {
	return NewQ(graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to)}, from, to)
}

func TestTypeString(t *testing.T) {
	for typ, want := range map[Type]string{Q: "Q", S: "S", P: "P", F: "F", L: "L"} {
		if typ.String() != want {
			t.Errorf("Type(%d).String() = %q, want %q", typ, typ.String(), want)
		}
	}
}

func TestNewInternalTerminals(t *testing.T) {
	s := NewInternal(S, q("a", "b"), q("b", "c"), q("c", "d"))
	if s.Src != "a" || s.Dst != "d" {
		t.Fatalf("S terminals = (%s,%s), want (a,d)", s.Src, s.Dst)
	}
	p := NewInternal(P, q("a", "b"), q("a", "b"))
	if p.Src != "a" || p.Dst != "b" {
		t.Fatalf("P terminals = (%s,%s), want (a,b)", p.Src, p.Dst)
	}
}

func TestInsertRemoveChild(t *testing.T) {
	s := NewInternal(S, q("a", "b"), q("b", "c"))
	mid := q("x", "y")
	s.InsertChild(1, mid)
	if len(s.Children) != 3 || s.Children[1] != mid {
		t.Fatalf("InsertChild misplaced: %v", s.Children)
	}
	if mid.Parent != s {
		t.Fatal("parent pointer not set")
	}
	got := s.RemoveChild(1)
	if got != mid || got.Parent != nil || len(s.Children) != 2 {
		t.Fatal("RemoveChild wrong")
	}
	if s.ChildIndex(mid) != -1 {
		t.Fatal("removed child still indexed")
	}
}

func TestLeavesAndCounts(t *testing.T) {
	tree := NewInternal(S, q("a", "b"), NewInternal(P, q("b", "c"), q("b", "c")), q("c", "d"))
	if n := tree.CountLeaves(); n != 4 {
		t.Fatalf("CountLeaves = %d, want 4", n)
	}
	if n := tree.CountNodes(); n != 6 {
		t.Fatalf("CountNodes = %d, want 6", n)
	}
	leaves := tree.Leaves()
	if len(leaves) != 4 || leaves[0].Src != "a" || leaves[3].Dst != "d" {
		t.Fatalf("Leaves order wrong: %v", leaves)
	}
}

func TestFinalizeAssignsPreorderIDs(t *testing.T) {
	tree := NewInternal(S, q("a", "b"), NewInternal(P, q("b", "c"), q("b", "c")))
	tree.Finalize()
	seen := map[int]bool{}
	prev := -1
	tree.Walk(func(n *Node) bool {
		if seen[n.ID] {
			t.Fatalf("duplicate ID %d", n.ID)
		}
		seen[n.ID] = true
		if n.ID <= prev {
			t.Fatalf("IDs not preorder: %d after %d", n.ID, prev)
		}
		prev = n.ID
		return true
	})
	if tree.ID != 0 {
		t.Fatalf("root ID = %d, want 0", tree.ID)
	}
}

func TestCloneIndependence(t *testing.T) {
	tree := NewInternal(S, q("a", "b"), q("b", "c"))
	c := tree.Clone()
	if !Equivalent(tree, c) {
		t.Fatal("clone not equivalent")
	}
	c.Children[0].Src = "zzz"
	if tree.Children[0].Src == "zzz" {
		t.Fatal("clone shares nodes with original")
	}
	if c.Children[0].Parent != c {
		t.Fatal("clone parent pointers broken")
	}
}

func TestCanonicalizeMergesAndFlattens(t *testing.T) {
	// S(S(q1,q2),q3) must canonicalize to S(q1,q2,q3).
	tree := NewInternal(S, NewInternal(S, q("a", "b"), q("b", "c")), q("c", "d"))
	c := Canonicalize(tree)
	if len(c.Children) != 3 || c.Type != S {
		t.Fatalf("canonicalization failed: %s", c)
	}
	// P of P merges too, and single-child wrappers vanish.
	tree2 := NewInternal(P, NewInternal(P, q("a", "b"), q("a", "b")), q("a", "b"))
	c2 := Canonicalize(tree2)
	if len(c2.Children) != 3 || c2.Type != P {
		t.Fatalf("P canonicalization failed: %s", c2)
	}
	if Canonicalize(q("a", "b")).Type != Q {
		t.Fatal("leaf canonicalization failed")
	}
}

func TestCanonicalizeRejectsAnnotated(t *testing.T) {
	f := &Node{Type: F}
	f.Adopt(q("a", "b"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic canonicalizing annotated tree")
		}
	}()
	Canonicalize(f)
}

func TestEquivalence(t *testing.T) {
	a := NewInternal(P, q("a", "b"), NewInternal(S, q("a", "c"), q("c", "b")))
	b := NewInternal(P, NewInternal(S, q("a", "c"), q("c", "b")), q("a", "b"))
	if !Equivalent(a, b) {
		t.Fatal("P reordering should be equivalent")
	}
	// S order is significant.
	s1 := NewInternal(S, q("a", "b"), q("b", "c"))
	s2 := NewInternal(S, q("b", "c"), q("a", "b"))
	if Equivalent(s1, s2) {
		t.Fatal("S reordering should not be equivalent")
	}
}

func TestLabelSignatureIgnoresInstances(t *testing.T) {
	mk := func(inst string) *Node {
		n := NewQ(graph.Edge{From: graph.NodeID("x" + inst), To: graph.NodeID("y" + inst)}, "x", "y")
		return NewInternal(P, n, NewQ(graph.Edge{From: graph.NodeID("x" + inst), To: graph.NodeID("y" + inst), Key: 1}, "x", "y"))
	}
	a, b := mk("a"), mk("b")
	if EquivalentRuns(a, b) == false {
		// Both are P nodes over two (x,y) edges with keys 0 and 1.
		t.Log(a.LabelSignature(), b.LabelSignature())
		t.Fatal("label signature should ignore instance names")
	}
	if Equivalent(a, b) {
		t.Fatal("edge-identity signature should distinguish instances")
	}
}

func TestTrueAndPseudo(t *testing.T) {
	p := NewInternal(P, q("a", "b"))
	if p.True() {
		t.Fatal("single-child node is pseudo")
	}
	p.Adopt(q("a", "b"))
	if !p.True() {
		t.Fatal("two-child node is true")
	}
}

func TestBranchFreeAndElementary(t *testing.T) {
	// P with one child (pseudo) is branch-free; with two it is not.
	pseudo := NewInternal(P, NewInternal(S, q("a", "c"), q("c", "b")))
	if !BranchFree(pseudo) {
		t.Fatal("pseudo P should be branch-free")
	}
	truP := NewInternal(P, q("a", "b"), q("a", "b"))
	if BranchFree(truP) {
		t.Fatal("true P is not branch-free")
	}
	// Elementary: branch-free child of a true P/F/L node.
	root := NewInternal(P, q("a", "b"), q("a", "b"))
	root.Finalize()
	if !Elementary(root.Children[0]) {
		t.Fatal("child of true P should be elementary")
	}
	sRoot := NewInternal(S, q("a", "b"), q("b", "c"))
	sRoot.Finalize()
	if Elementary(sRoot.Children[0]) {
		t.Fatal("child of S node is not elementary")
	}
	if Elementary(root) {
		t.Fatal("root is never elementary")
	}
}

func TestValidateSpecTree(t *testing.T) {
	ok := NewInternal(S, q("a", "b"), NewInternal(P, q("b", "c"), q("b", "c")))
	ok.Finalize()
	if err := ValidateSpecTree(ok); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}

	// S under S violates alternation.
	bad := NewInternal(S, NewInternal(S, q("a", "b"), q("b", "c")), q("c", "d"))
	bad.Finalize()
	if err := ValidateSpecTree(bad); err == nil {
		t.Fatal("same-type parent not detected")
	}

	// Single-child P.
	bad2 := NewInternal(S, q("a", "b"), NewInternal(P, q("b", "c")))
	bad2.Finalize()
	if err := ValidateSpecTree(bad2); err == nil {
		t.Fatal("single-child P not detected")
	}

	// F with two children is invalid in a specification.
	f := &Node{Type: F}
	f.Adopt(q("a", "b"))
	f.Adopt(q("a", "b"))
	f.Finalize()
	if err := ValidateSpecTree(f); err == nil {
		t.Fatal("two-child specification F not detected")
	}

	// Q with children.
	brokenQ := q("a", "b")
	brokenQ.Adopt(q("a", "b"))
	brokenQ.Finalize()
	if err := ValidateSpecTree(brokenQ); err == nil {
		t.Fatal("Q with children not detected")
	}
}

func TestValidateRunTree(t *testing.T) {
	// Specification: S(q(a,b), P(q(b,c), S(q(b,d), q(d,c)))).
	specTree := NewInternal(S, q("a", "b"),
		NewInternal(P, q("b", "c"), NewInternal(S, q("b", "d"), q("d", "c"))))
	specTree.Finalize()

	mkRun := func(branch int) *Node {
		leaf := func(sp *Node, from, to string) *Node {
			n := NewQ(graph.Edge{From: graph.NodeID(from), To: graph.NodeID(to)}, sp.Src, sp.Dst)
			n.Spec = sp
			return n
		}
		sp := specTree
		run := &Node{Type: S, Spec: sp, Src: sp.Src, Dst: sp.Dst}
		run.Adopt(leaf(sp.Children[0], "aa", "ba"))
		pSpec := sp.Children[1]
		p := &Node{Type: P, Spec: pSpec, Src: pSpec.Src, Dst: pSpec.Dst}
		if branch == 0 {
			p.Adopt(leaf(pSpec.Children[0], "ba", "ca"))
		} else {
			sSpec := pSpec.Children[1]
			s := &Node{Type: S, Spec: sSpec, Src: sSpec.Src, Dst: sSpec.Dst}
			s.Adopt(leaf(sSpec.Children[0], "ba", "da"))
			s.Adopt(leaf(sSpec.Children[1], "da", "ca"))
			p.Adopt(s)
		}
		run.Adopt(p)
		run.Finalize()
		return run
	}

	if err := ValidateRunTree(mkRun(0), specTree); err != nil {
		t.Fatalf("valid run (branch 0) rejected: %v", err)
	}
	if err := ValidateRunTree(mkRun(1), specTree); err != nil {
		t.Fatalf("valid run (branch 1) rejected: %v", err)
	}

	// Duplicate P branch.
	dup := mkRun(0)
	p := dup.Children[1]
	p.Adopt(p.Children[0].Clone())
	p.Children[1].Parent = p
	if err := ValidateRunTree(dup, specTree); err == nil {
		t.Fatal("duplicate specification branch under P not detected")
	}

	// Missing S child.
	broken := mkRun(0)
	broken.RemoveChild(0)
	if err := ValidateRunTree(broken, specTree); err == nil {
		t.Fatal("missing series child not detected")
	}

	// Wrong root spec pointer.
	wrong := mkRun(0)
	wrong.Spec = specTree.Children[0]
	if err := ValidateRunTree(wrong, specTree); err == nil {
		t.Fatal("wrong root homology not detected")
	}
}
