package sptree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// randomSPTree builds a random binary S/P tree with n leaves; edges
// are synthesized so leaf identity is unique.
func randomSPTree(rng *rand.Rand, n int, next *int) *Node {
	if n <= 1 {
		*next++
		return NewQ(graph.Edge{From: graph.NodeID("u"), To: graph.NodeID("v"), Key: *next}, "u", "v")
	}
	left := 1 + rng.Intn(n-1)
	a := randomSPTree(rng, left, next)
	b := randomSPTree(rng, n-left, next)
	if rng.Intn(2) == 0 {
		return NewInternal(S, a, b)
	}
	return NewInternal(P, a, b)
}

// TestQuickCanonicalizeIdempotent: canonicalizing a canonical tree is
// the identity (up to ≡).
func TestQuickCanonicalizeIdempotent(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%30) + 1
		next := 0
		tree := randomSPTree(rng, n, &next)
		c1 := Canonicalize(tree)
		c2 := Canonicalize(c1)
		return Equivalent(c1, c2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCanonicalizePreservesLeaves: canonicalization never gains
// or loses leaves and keeps S-order intact.
func TestQuickCanonicalizePreservesLeaves(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%30) + 1
		next := 0
		tree := randomSPTree(rng, n, &next)
		c := Canonicalize(tree)
		if c.CountLeaves() != tree.CountLeaves() {
			return false
		}
		// The canonical tree satisfies the spec invariants.
		return ValidateSpecTree(c) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCloneEquivalent: clones are equivalent and structurally
// independent.
func TestQuickCloneEquivalent(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%20) + 1
		next := 0
		tree := Canonicalize(randomSPTree(rng, n, &next))
		c := tree.Clone()
		if !Equivalent(tree, c) {
			return false
		}
		// Mutating the clone leaves the original intact.
		if len(c.Children) > 0 {
			c.RemoveChild(0)
			return tree.CountLeaves() != c.CountLeaves()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSignatureInsensitiveToPShuffle: shuffling P children leaves
// the signature unchanged; shuffling S children of distinguishable
// subtrees changes it.
func TestQuickSignatureInsensitiveToPShuffle(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%20) + 2
		next := 0
		tree := Canonicalize(randomSPTree(rng, n, &next))
		sig := tree.Signature()
		var shuffle func(v *Node)
		shuffle = func(v *Node) {
			if v.Type == P || v.Type == F {
				rng.Shuffle(len(v.Children), func(i, j int) {
					v.Children[i], v.Children[j] = v.Children[j], v.Children[i]
				})
			}
			for _, c := range v.Children {
				shuffle(c)
			}
		}
		shuffle(tree)
		return tree.Signature() == sig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFinalizeCountsAgree: Finalize assigns exactly CountNodes
// distinct IDs.
func TestQuickFinalizeCountsAgree(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%25) + 1
		next := 0
		tree := randomSPTree(rng, n, &next)
		tree.Finalize()
		ids := map[int]bool{}
		tree.Walk(func(v *Node) bool {
			ids[v.ID] = true
			return true
		})
		return len(ids) == tree.CountNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
