package sptree

import (
	"testing"

	"repro/internal/graph"
)

// buildIndexFixture returns a small "specification" tree and a "run"
// tree whose nodes point at spec nodes, with fork copies producing a
// multi-member homology class.
func buildIndexFixture() (spec, run *Node) {
	e := func(a, b string) graph.Edge {
		return graph.Edge{From: graph.NodeID(a), To: graph.NodeID(b)}
	}
	sq1 := NewQ(e("1", "2"), "1", "2")
	sq2 := NewQ(e("2", "3"), "2", "3")
	spec = NewInternal(S, sq1, sq2)
	spec.Finalize()

	q1 := NewQ(e("1a", "2a"), "1", "2")
	q1.Spec = sq1
	q2a := NewQ(e("2a", "3a"), "2", "3")
	q2a.Spec = sq2
	q2b := NewQ(e("2a", "3a"), "2", "3")
	q2b.Spec = sq2
	f := NewInternal(F, q2a, q2b)
	f.Spec = sq2
	run = NewInternal(S, q1, f)
	run.Spec = spec
	return spec, run
}

func TestIndexAssignsDensePreorder(t *testing.T) {
	_, run := buildIndexFixture()
	// Deliberately stale IDs: Index must repair them.
	run.Walk(func(v *Node) bool { v.ID = 99; return true })
	ti := run.Index()
	if ti.Len() != run.CountNodes() {
		t.Fatalf("indexed %d nodes, tree has %d", ti.Len(), run.CountNodes())
	}
	for id, v := range ti.Nodes {
		if v.ID != id {
			t.Fatalf("Nodes[%d].ID = %d", id, v.ID)
		}
	}
	// Preorder: parent before child.
	run.Walk(func(v *Node) bool {
		for _, c := range v.Children {
			if c.ID <= v.ID {
				t.Fatalf("child ID %d not after parent ID %d", c.ID, v.ID)
			}
		}
		return true
	})
}

func TestIndexHomologyClasses(t *testing.T) {
	spec, run := buildIndexFixture()
	run.Finalize()
	ti := run.Index()
	counts := map[int]int{}
	seen := map[[2]int32]bool{}
	for id, v := range ti.Nodes {
		if v.Spec == nil {
			if ti.SpecID[id] != -1 {
				t.Fatalf("node %d: spec-less node has class %d", id, ti.SpecID[id])
			}
			continue
		}
		s := ti.SpecID[id]
		if int(s) != v.Spec.ID {
			t.Fatalf("node %d: class %d, want %d", id, s, v.Spec.ID)
		}
		r := ti.ClassRank[id]
		if r < 0 || int(r) >= ti.Class(int(s)) {
			t.Fatalf("node %d: rank %d out of range [0,%d)", id, r, ti.Class(int(s)))
		}
		if seen[[2]int32{s, r}] {
			t.Fatalf("node %d: duplicate (class, rank) = (%d, %d)", id, s, r)
		}
		seen[[2]int32{s, r}] = true
		counts[int(s)]++
	}
	for s, n := range counts {
		if ti.Class(s) != n {
			t.Fatalf("class %d size %d, counted %d", s, ti.Class(s), n)
		}
	}
	// The fork leaf class (spec ID of sq2) holds the F node and both
	// copies: 3 members.
	sq2 := spec.Children[1]
	if got := ti.Class(sq2.ID); got != 3 {
		t.Fatalf("class of second spec leaf has %d members, want 3", got)
	}
	if ti.Class(1000) != 0 {
		t.Fatal("out-of-range class must be empty")
	}
}

func TestIndexRebuildReuse(t *testing.T) {
	_, run := buildIndexFixture()
	run.Finalize()
	ti := run.Index()
	first := ti.Len()
	// Rebuilding on a finalized tree must not grow and must not write.
	before := make([]int, 0, first)
	run.Walk(func(v *Node) bool { before = append(before, v.ID); return true })
	ti.Rebuild(run)
	if ti.Len() != first {
		t.Fatalf("rebuild changed length %d -> %d", first, ti.Len())
	}
	i := 0
	run.Walk(func(v *Node) bool {
		if v.ID != before[i] {
			t.Fatalf("rebuild changed ID of node %d", i)
		}
		i++
		return true
	})
}
