package sptree

import "fmt"

// ValidateSpecTree checks the structural invariants of an annotated
// specification SP-tree (Lemma 4.2, extended with L nodes per
// Section VI):
//
//  1. every internal node is S, P, F or L;
//  2. every leaf is a Q node;
//  3. every S or P node has a type different from its parent;
//  4. every S or P node has at least two children;
//  5. every F or L node has exactly one child, of type S, Q or P.
//
// Property 5 admits P children as the complete-subgraph generalization
// used for loops in Section VI (and by Fig. 17(b) for forks).
func ValidateSpecTree(root *Node) error {
	var rec func(n *Node) error
	rec = func(n *Node) error {
		switch n.Type {
		case Q:
			if len(n.Children) != 0 {
				return fmt.Errorf("sptree: Q node %d has %d children", n.ID, len(n.Children))
			}
			return nil
		case S, P:
			if len(n.Children) < 2 {
				return fmt.Errorf("sptree: %s node %d has %d children, want >= 2", n.Type, n.ID, len(n.Children))
			}
			if n.Parent != nil && n.Parent.Type == n.Type {
				return fmt.Errorf("sptree: %s node %d has parent of same type", n.Type, n.ID)
			}
		case F, L:
			if len(n.Children) != 1 {
				return fmt.Errorf("sptree: %s node %d has %d children, want exactly 1 in a specification tree", n.Type, n.ID, len(n.Children))
			}
			switch n.Children[0].Type {
			case S, Q, P:
			default:
				return fmt.Errorf("sptree: %s node %d has child of type %s, want S, Q or P", n.Type, n.ID, n.Children[0].Type)
			}
		default:
			return fmt.Errorf("sptree: node %d has unknown type %d", n.ID, uint8(n.Type))
		}
		if n.Spec != nil {
			return fmt.Errorf("sptree: specification node %d carries a Spec pointer", n.ID)
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("sptree: node %d has child with broken parent pointer", n.ID)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	if root.Parent != nil {
		return fmt.Errorf("sptree: root has a parent")
	}
	return rec(root)
}

// ValidateRunTree checks that root is a structurally valid annotated
// run tree for the specification tree spec (Lemma 4.4 plus the
// alignment induced by the tree execution function f′ of Section IV-C):
//
//   - every run node carries Spec = h(v), of matching type;
//   - an S node has exactly the specification's children, positionally
//     homologous;
//   - a P node has a nonempty subset of the specification's children,
//     all derived from distinct specification branches;
//   - an F or L node has one or more children, all derived from the
//     specification node's single child.
func ValidateRunTree(root, spec *Node) error {
	if root.Parent != nil {
		return fmt.Errorf("sptree: root has a parent")
	}
	if root.Spec != spec {
		return fmt.Errorf("sptree: root derives from specification node %v, want tree root", specID(root.Spec))
	}
	var rec func(n *Node) error
	rec = func(n *Node) error {
		h := n.Spec
		if h == nil {
			return fmt.Errorf("sptree: run node %d has no Spec pointer", n.ID)
		}
		if h.Type != n.Type {
			return fmt.Errorf("sptree: run node %d has type %s but derives from %s node %d", n.ID, n.Type, h.Type, h.ID)
		}
		switch n.Type {
		case Q:
			if len(n.Children) != 0 {
				return fmt.Errorf("sptree: run Q node %d has children", n.ID)
			}
			if n.Src != h.Src || n.Dst != h.Dst {
				return fmt.Errorf("sptree: run Q node %d terminals (%s,%s) disagree with specification edge (%s,%s)",
					n.ID, n.Src, n.Dst, h.Src, h.Dst)
			}
			return nil
		case S:
			if len(n.Children) != len(h.Children) {
				return fmt.Errorf("sptree: run S node %d has %d children, specification has %d", n.ID, len(n.Children), len(h.Children))
			}
			for i, c := range n.Children {
				if c.Spec != h.Children[i] {
					return fmt.Errorf("sptree: run S node %d child %d not positionally homologous", n.ID, i)
				}
			}
		case P:
			if len(n.Children) == 0 {
				return fmt.Errorf("sptree: run P node %d has no children", n.ID)
			}
			seen := make(map[*Node]bool, len(n.Children))
			for _, c := range n.Children {
				if c.Spec == nil || c.Spec.Parent != h {
					return fmt.Errorf("sptree: run P node %d has child not derived from a specification branch", n.ID)
				}
				if seen[c.Spec] {
					return fmt.Errorf("sptree: run P node %d has two children derived from the same specification branch", n.ID)
				}
				seen[c.Spec] = true
			}
		case F, L:
			if len(n.Children) == 0 {
				return fmt.Errorf("sptree: run %s node %d has no children", n.Type, n.ID)
			}
			want := h.Children[0]
			for _, c := range n.Children {
				if c.Spec != want {
					return fmt.Errorf("sptree: run %s node %d has a copy not derived from the specification child", n.Type, n.ID)
				}
			}
		}
		for _, c := range n.Children {
			if c.Parent != n {
				return fmt.Errorf("sptree: run node %d has child with broken parent pointer", n.ID)
			}
			if err := rec(c); err != nil {
				return err
			}
		}
		return nil
	}
	return rec(root)
}

func specID(n *Node) interface{} {
	if n == nil {
		return "<nil>"
	}
	return n.ID
}

// BranchFree reports whether T[n] is a branch-free subtree, i.e.
// contains no true P, F or L node (Definition 4.1; L nodes are handled
// like F nodes per Section VI).
func BranchFree(n *Node) bool {
	free := true
	n.Walk(func(v *Node) bool {
		if (v.Type == P || v.Type == F || v.Type == L) && v.True() {
			free = false
			return false
		}
		return true
	})
	return free
}

// Elementary reports whether T[n] is an elementary subtree: branch-free
// with a parent that is a true P, F or L node (Definition 4.1).
func Elementary(n *Node) bool {
	if n.Parent == nil {
		return false
	}
	switch n.Parent.Type {
	case P, F, L:
	default:
		return false
	}
	return n.Parent.True() && BranchFree(n)
}
