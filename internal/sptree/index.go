package sptree

// TreeIndex is a flat, preorder view of a (run) tree built in one pass
// by Index. It gives every node a dense integer identity and groups
// run-tree nodes by homology class — the specification-tree node h(v)
// they derive from — so differencing can replace pointer-keyed maps
// with flat slices indexed by (preorder ID, class rank).
//
// After indexing:
//
//	Nodes[v.ID] == v                  for every node v of the tree;
//	SpecID[v.ID]                      is h(v).ID, or -1 when v.Spec is nil;
//	ClassRank[v.ID]                   is v's preorder rank among nodes of
//	                                  the same homology class;
//	ClassSize[s]                      is the number of nodes whose class
//	                                  is the specification node with ID s
//	                                  (len(ClassSize) == max class ID + 1).
//
// Indexing a tree whose IDs are already dense preorder (the state
// Finalize leaves behind, and what Execute/Derive produce) performs no
// writes to the tree, so already-finalized trees may be indexed from
// several goroutines concurrently. Trees with stale IDs are repaired
// in place and must not be indexed concurrently.
type TreeIndex struct {
	Nodes     []*Node
	SpecID    []int32
	ClassRank []int32
	ClassSize []int32
}

// Index assigns dense preorder IDs (repairing stale ones) and returns
// the flat index of the subtree rooted at n in a single pass.
func (n *Node) Index() *TreeIndex {
	ti := &TreeIndex{}
	ti.Rebuild(n)
	return ti
}

// Rebuild re-indexes the subtree rooted at root, reusing the
// TreeIndex's buffers. It is the allocation-free path for callers that
// index many trees with one scratch TreeIndex.
func (ti *TreeIndex) Rebuild(root *Node) {
	ti.Nodes = ti.Nodes[:0]
	ti.SpecID = ti.SpecID[:0]
	ti.ClassRank = ti.ClassRank[:0]
	ti.ClassSize = ti.ClassSize[:0]
	ti.walk(root)
}

func (ti *TreeIndex) walk(v *Node) {
	id := len(ti.Nodes)
	if v.ID != id {
		v.ID = id
	}
	ti.Nodes = append(ti.Nodes, v)
	s, r := int32(-1), int32(-1)
	if v.Spec != nil {
		s = int32(v.Spec.ID)
		for int(s) >= len(ti.ClassSize) {
			ti.ClassSize = append(ti.ClassSize, 0)
		}
		r = ti.ClassSize[s]
		ti.ClassSize[s]++
	}
	ti.SpecID = append(ti.SpecID, s)
	ti.ClassRank = append(ti.ClassRank, r)
	for _, c := range v.Children {
		ti.walk(c)
	}
}

// Class returns the number of nodes in homology class s, tolerating
// classes beyond the indexed range (size 0).
func (ti *TreeIndex) Class(s int) int {
	if s < 0 || s >= len(ti.ClassSize) {
		return 0
	}
	return int(ti.ClassSize[s])
}

// Len returns the number of indexed nodes.
func (ti *TreeIndex) Len() int { return len(ti.Nodes) }
