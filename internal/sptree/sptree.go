// Package sptree implements the annotated SP-tree representation of
// SP-workflow specifications and runs (Section IV of Bao et al.).
//
// An SP-tree captures the series/parallel decomposition of an SP-graph:
// leaves are Q nodes (single edges), internal nodes are S (series,
// ordered children) or P (parallel, unordered children). Annotated
// SP-trees additionally carry F (fork, unordered children) and L (loop,
// ordered children) nodes describing well-nested fork and loop
// executions.
//
// Trees are *semi-ordered*: the child order of S and L nodes is
// significant, the child order of P and F nodes is not. Two trees are
// equivalent (≡) iff they differ only in the order of children of P or
// F nodes (Lemma 4.3/4.5).
package sptree

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/graph"
)

// Type is the type of an SP-tree node.
type Type uint8

// Node types of annotated SP-trees.
const (
	Q Type = iota // leaf: a single edge of the underlying graph
	S             // series composition (children ordered)
	P             // parallel composition (children unordered)
	F             // fork execution (children unordered)
	L             // loop execution (children ordered)
)

// String returns the single-letter name of the type.
func (t Type) String() string {
	switch t {
	case Q:
		return "Q"
	case S:
		return "S"
	case P:
		return "P"
	case F:
		return "F"
	case L:
		return "L"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Node is a node of an annotated SP-tree. The same structure serves
// specification trees (Spec == nil) and run trees (Spec points at the
// specification-tree node the run node derives from, i.e. h(v) of
// Section V-A).
type Node struct {
	Type     Type
	Children []*Node
	Parent   *Node

	// Edge is, for Q leaves, the underlying graph edge: a
	// specification edge in specification trees, a run edge in run
	// trees.
	Edge graph.Edge

	// Spec is h(v): the specification-tree node this run-tree node
	// derives from. Nil in specification trees.
	Spec *Node

	// Src and Dst are the labels of the two terminals of
	// Graph(T[v]) — two invariants of v never changed by subtree
	// edit operations (Section IV-D).
	Src, Dst string

	// ID is a stable preorder identifier assigned by Finalize;
	// useful as a map key and in rendering.
	ID int
}

// NewQ returns a new Q leaf for the given edge with terminal labels.
func NewQ(e graph.Edge, src, dst string) *Node {
	return &Node{Type: Q, Edge: e, Src: src, Dst: dst}
}

// NewInternal returns a new internal node of the given type adopting
// the children. Terminal labels are derived from the children: for S
// and L the span from first to last child, otherwise the (common)
// terminals of the first child.
func NewInternal(t Type, children ...*Node) *Node {
	if t == Q {
		panic("sptree: NewInternal called with type Q")
	}
	n := &Node{Type: t}
	for _, c := range children {
		n.Adopt(c)
	}
	n.refreshTerminals()
	return n
}

func (n *Node) refreshTerminals() {
	if len(n.Children) == 0 {
		return
	}
	switch n.Type {
	case S:
		n.Src = n.Children[0].Src
		n.Dst = n.Children[len(n.Children)-1].Dst
	default:
		n.Src = n.Children[0].Src
		n.Dst = n.Children[0].Dst
	}
}

// Adopt appends child to n.Children and sets its parent pointer.
func (n *Node) Adopt(child *Node) {
	child.Parent = n
	n.Children = append(n.Children, child)
}

// InsertChild inserts child at position i (0 ≤ i ≤ len(Children)).
func (n *Node) InsertChild(i int, child *Node) {
	if i < 0 || i > len(n.Children) {
		panic(fmt.Sprintf("sptree: insert position %d out of range [0,%d]", i, len(n.Children)))
	}
	child.Parent = n
	n.Children = append(n.Children, nil)
	copy(n.Children[i+1:], n.Children[i:])
	n.Children[i] = child
}

// RemoveChild removes the i-th child and returns it. The child's
// parent pointer is cleared.
func (n *Node) RemoveChild(i int) *Node {
	if i < 0 || i >= len(n.Children) {
		panic(fmt.Sprintf("sptree: remove position %d out of range [0,%d)", i, len(n.Children)))
	}
	c := n.Children[i]
	n.Children = append(n.Children[:i], n.Children[i+1:]...)
	c.Parent = nil
	return c
}

// ChildIndex returns the position of child among n's children, or -1.
func (n *Node) ChildIndex(child *Node) int {
	for i, c := range n.Children {
		if c == child {
			return i
		}
	}
	return -1
}

// IsLeaf reports whether n is a Q node.
func (n *Node) IsLeaf() bool { return n.Type == Q }

// True reports whether n is a true node, i.e. has more than one child
// (Section IV-D). Internal nodes with a single child are pseudo nodes.
func (n *Node) True() bool { return len(n.Children) > 1 }

// Leaves returns the Q nodes of the subtree in left-to-right order.
func (n *Node) Leaves() []*Node {
	var out []*Node
	n.Walk(func(v *Node) bool {
		if v.Type == Q {
			out = append(out, v)
		}
		return true
	})
	return out
}

// CountLeaves returns the number of Q nodes in the subtree.
func (n *Node) CountLeaves() int {
	if n.Type == Q {
		return 1
	}
	total := 0
	for _, c := range n.Children {
		total += c.CountLeaves()
	}
	return total
}

// CountNodes returns the number of nodes in the subtree.
func (n *Node) CountNodes() int {
	total := 1
	for _, c := range n.Children {
		total += c.CountNodes()
	}
	return total
}

// Walk visits the subtree in preorder. If fn returns false the node's
// children are skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// Finalize assigns preorder IDs and repairs parent pointers across the
// subtree. Call it once a tree is fully built.
func (n *Node) Finalize() {
	id := 0
	var rec func(v *Node)
	rec = func(v *Node) {
		v.ID = id
		id++
		for _, c := range v.Children {
			c.Parent = v
			rec(c)
		}
	}
	n.Parent = nil
	rec(n)
}

// Clone returns a deep copy of the subtree. Spec pointers are shared
// (they reference the immutable specification tree); parent pointers
// are rebuilt within the copy and the copy's root parent is nil.
func (n *Node) Clone() *Node {
	c := &Node{
		Type: n.Type,
		Edge: n.Edge,
		Spec: n.Spec,
		Src:  n.Src,
		Dst:  n.Dst,
		ID:   n.ID,
	}
	for _, child := range n.Children {
		c.Adopt(child.Clone())
	}
	return c
}

// Canonicalize merges adjacent same-type S/S and P/P nodes and removes
// single-child S and P nodes, producing the canonical SP-tree of
// Section IV-A. It must only be used on pure SP-trees (no F/L nodes):
// pseudo P nodes are meaningful in annotated run trees and must not be
// collapsed there. The result is a new tree.
func Canonicalize(n *Node) *Node {
	c := canonicalize(n)
	c.Parent = nil
	c.Finalize()
	return c
}

func canonicalize(n *Node) *Node {
	if n.Type == Q {
		return NewQ(n.Edge, n.Src, n.Dst)
	}
	if n.Type != S && n.Type != P {
		panic(fmt.Sprintf("sptree: Canonicalize on annotated tree (found %s node)", n.Type))
	}
	var kids []*Node
	for _, child := range n.Children {
		cc := canonicalize(child)
		if cc.Type == n.Type {
			kids = append(kids, cc.Children...)
		} else {
			kids = append(kids, cc)
		}
	}
	if len(kids) == 1 {
		return kids[0]
	}
	return NewInternal(n.Type, kids...)
}

// Signature returns a canonical string for the subtree under
// semi-ordered equivalence: children of P and F nodes are sorted by
// their signatures, children of S and L nodes keep their order. Q
// leaves are rendered by their edge, so signatures distinguish runs by
// node-instance identity.
func (n *Node) Signature() string {
	return n.signature(func(q *Node) string { return q.Edge.String() })
}

// LabelSignature is like Signature but renders Q leaves by the labels
// of their endpoints (and the specification edge key), so two runs that
// differ only in node-instance naming — i.e. isomorphic runs — have
// equal label signatures.
func (n *Node) LabelSignature() string {
	return n.signature(func(q *Node) string {
		key := q.Edge.Key
		if q.Spec != nil {
			key = q.Spec.Edge.Key
		}
		return fmt.Sprintf("(%s,%s)#%d", q.Src, q.Dst, key)
	})
}

func (n *Node) signature(leaf func(*Node) string) string {
	if n.Type == Q {
		return "Q" + leaf(n)
	}
	parts := make([]string, len(n.Children))
	for i, c := range n.Children {
		parts[i] = c.signature(leaf)
	}
	if n.Type == P || n.Type == F {
		sort.Strings(parts)
	}
	return n.Type.String() + "(" + strings.Join(parts, ",") + ")"
}

// Equivalent reports whether two trees are equivalent (≡), i.e. equal
// up to reordering of children of P and F nodes, comparing Q leaves by
// edge identity.
func Equivalent(a, b *Node) bool { return a.Signature() == b.Signature() }

// EquivalentRuns reports whether two run trees represent the same run
// up to node-instance renaming (label-based equivalence).
func EquivalentRuns(a, b *Node) bool { return a.LabelSignature() == b.LabelSignature() }

// String renders the subtree as an indented multi-line listing.
func (n *Node) String() string {
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *Node) render(b *strings.Builder, depth int) {
	b.WriteString(strings.Repeat("  ", depth))
	if n.Type == Q {
		fmt.Fprintf(b, "Q %s", n.Edge)
	} else {
		fmt.Fprintf(b, "%s [%s..%s]", n.Type, n.Src, n.Dst)
	}
	b.WriteByte('\n')
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}
