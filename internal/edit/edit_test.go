package edit

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/sptree"
)

// findRunNode returns the first node of the given type in preorder.
func findRunNode(root *sptree.Node, typ sptree.Type, pred func(*sptree.Node) bool) *sptree.Node {
	var out *sptree.Node
	root.Walk(func(n *sptree.Node) bool {
		if out == nil && n.Type == typ && (pred == nil || pred(n)) {
			out = n
		}
		return out == nil
	})
	return out
}

func TestDeleteElementaryFromTrueFork(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	fork := findRunNode(r1.Tree, sptree.F, func(n *sptree.Node) bool { return len(n.Children) == 2 })
	if fork == nil {
		t.Fatal("R1 should contain a two-copy fork")
	}
	child := fork.Children[0]
	if err := DeleteElementary(child); err != nil {
		t.Fatal(err)
	}
	if len(fork.Children) != 1 {
		t.Fatal("child not removed")
	}
	// The fork is now pseudo: removing its last child must fail.
	if err := DeleteElementary(fork.Children[0]); err == nil {
		t.Fatal("deleting the only child of a pseudo node must fail")
	}
	if err := sptree.ValidateRunTree(r1.Tree, sp.Tree); err != nil {
		t.Fatalf("tree invalid after legal deletion: %v", err)
	}
}

func TestDeleteElementaryRejectsRootAndSChildren(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	if err := DeleteElementary(r1.Tree); err == nil {
		t.Fatal("deleting the root must fail")
	}
	s := findRunNode(r1.Tree, sptree.S, nil)
	if err := DeleteElementary(s.Children[0]); err == nil {
		t.Fatal("deleting a child of an S node must fail")
	}
}

func TestDeleteElementaryRejectsNonBranchFree(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r2 := fixtures.Fig2R2(sp)
	// The root F has two copies; one contains a true inner F, so the
	// copy subtree is not branch-free.
	root := r2.Tree
	var nonFree *sptree.Node
	for _, c := range root.Children {
		if !sptree.BranchFree(c) {
			nonFree = c
		}
	}
	if nonFree == nil {
		t.Fatal("expected a non-branch-free copy in R2")
	}
	if err := DeleteElementary(nonFree); err == nil {
		t.Fatal("deleting a non-branch-free subtree in one step must fail")
	}
}

func TestInsertElementaryForkCopy(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	fork := findRunNode(r1.Tree, sptree.F, func(n *sptree.Node) bool { return len(n.Children) == 2 })
	copyTree := fork.Children[0].Clone()
	if err := InsertElementary(fork, -1, copyTree); err != nil {
		t.Fatal(err)
	}
	if len(fork.Children) != 3 {
		t.Fatal("copy not inserted")
	}
	if err := sptree.ValidateRunTree(r1.Tree, sp.Tree); err != nil {
		t.Fatalf("tree invalid after insertion: %v", err)
	}
}

func TestInsertElementaryRejectsDuplicateBranch(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	p := findRunNode(r1.Tree, sptree.P, func(n *sptree.Node) bool { return len(n.Children) >= 2 })
	dup := p.Children[0].Clone()
	if err := InsertElementary(p, -1, dup); err == nil {
		t.Fatal("inserting a duplicate specification branch under P must fail")
	}
}

func TestInsertElementaryRejectsWrongParentType(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	s := findRunNode(r1.Tree, sptree.S, nil)
	leaf := findRunNode(r1.Tree, sptree.Q, nil).Clone()
	if err := InsertElementary(s, -1, leaf); err == nil {
		t.Fatal("inserting under an S node must fail")
	}
}

func TestInsertElementaryRejectsForeignSubtree(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	fork := findRunNode(r1.Tree, sptree.F, func(n *sptree.Node) bool { return len(n.Children) == 2 })
	// A leaf from elsewhere in the tree does not derive from the
	// fork's specification child.
	foreign := findRunNode(r1.Tree, sptree.Q, func(n *sptree.Node) bool {
		return n.Spec != nil && n.Spec.Parent != fork.Spec.Children[0]
	}).Clone()
	if err := InsertElementary(fork, -1, foreign); err == nil {
		t.Fatal("inserting a foreign subtree must fail")
	}
}

func TestPathOf(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	// A branch-free fork copy is an elementary path like (2a,3b,6a).
	fork := findRunNode(r1.Tree, sptree.F, func(n *sptree.Node) bool { return len(n.Children) == 2 })
	inst, labels := PathOf(fork.Children[0])
	if len(inst) != 3 || len(labels) != 3 {
		t.Fatalf("path = %v / %v", inst, labels)
	}
	if labels[0] != "2" || labels[2] != "6" {
		t.Fatalf("labels = %v, want 2..6", labels)
	}
	if inst, _ := PathOf(&sptree.Node{Type: sptree.P}); inst != nil {
		t.Fatal("empty subtree should yield empty path")
	}
}

func TestOpAndScriptRendering(t *testing.T) {
	ops := []Op{
		{Kind: Insert, Cost: 1, Length: 2, PathNodes: []string{"2a", "4b", "6a"}},
		{Kind: Delete, Cost: 1, Length: 2, PathNodes: []string{"2a", "3b", "6a"}, LoopOp: true},
		{Kind: Insert, Cost: 1, Length: 1, PathNodes: []string{"s", "t"}, Temporary: true},
	}
	s := &Script{Ops: ops}
	if s.TotalCost() != 3 {
		t.Fatalf("TotalCost = %g", s.TotalCost())
	}
	out := s.String()
	if !strings.Contains(out, "Λ→(2a,4b,6a)") {
		t.Fatalf("missing insertion rendering:\n%s", out)
	}
	if !strings.Contains(out, "(2a,3b,6a)→Λ") || !strings.Contains(out, "[loop]") {
		t.Fatalf("missing deletion/loop rendering:\n%s", out)
	}
	if !strings.Contains(out, "[temp]") {
		t.Fatalf("missing temp tag:\n%s", out)
	}
	if ops[0].String() == ops[1].String() {
		t.Fatal("distinct ops render identically")
	}
	if Delete.String() != "delete" || Insert.String() != "insert" {
		t.Fatal("Kind.String broken")
	}
}

func TestInsertPositionOutOfRange(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	fork := findRunNode(r1.Tree, sptree.F, func(n *sptree.Node) bool { return len(n.Children) == 2 })
	c := fork.Children[0].Clone()
	if err := InsertElementary(fork, 99, c); err == nil {
		t.Fatal("out-of-range position must fail")
	}
}
