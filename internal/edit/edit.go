// Package edit implements the edit operations of Bao et al. at the
// annotated SP-tree level: insertion and deletion of elementary
// subtrees (Section IV-D), which correspond one-to-one to elementary
// path insertions/deletions on run graphs (Lemma 4.6) and, for the
// children of L nodes, to the path expansion/contraction operations of
// Section VI.
//
// Operations are applied destructively to a working run tree; every
// application enforces the local validity constraints so that each
// intermediate tree remains a valid run tree.
package edit

import (
	"fmt"
	"strings"

	"repro/internal/sptree"
)

// Kind distinguishes insertions from deletions.
type Kind uint8

// Operation kinds.
const (
	Delete Kind = iota
	Insert
)

// String returns "delete" or "insert".
func (k Kind) String() string {
	if k == Delete {
		return "delete"
	}
	return "insert"
}

// Op records one applied elementary edit operation, in both the tree
// domain (for costs) and the path domain (for display): the elementary
// subtree edited had Length leaves and terminals labeled SrcLabel and
// DstLabel; PathNodes/PathLabels walk the corresponding elementary
// path through the run graph.
type Op struct {
	Kind       Kind
	Cost       float64
	Length     int
	SrcLabel   string
	DstLabel   string
	PathNodes  []string
	PathLabels []string
	// LoopOp reports that the operation edits a child of an L node,
	// i.e. is a path expansion (insert) or contraction (delete) of a
	// loop iteration in the graph domain.
	LoopOp bool
	// Temporary marks operations on scratch subtrees introduced to
	// work around unstable matches (Definition 5.2); they come in
	// insert/delete pairs.
	Temporary bool
}

// String renders the operation in the paper's Λ→p / p→Λ notation.
func (o Op) String() string {
	path := "(" + strings.Join(o.PathNodes, ",") + ")"
	tag := ""
	if o.LoopOp {
		tag = " [loop]"
	}
	if o.Temporary {
		tag += " [temp]"
	}
	if o.Kind == Insert {
		return fmt.Sprintf("Λ→%s cost=%g%s", path, o.Cost, tag)
	}
	return fmt.Sprintf("%s→Λ cost=%g%s", path, o.Cost, tag)
}

// Script is a sequence of applied edit operations.
type Script struct {
	Ops []Op
}

// TotalCost sums the costs of all operations.
func (s *Script) TotalCost() float64 {
	total := 0.0
	for _, op := range s.Ops {
		total += op.Cost
	}
	return total
}

// String renders one operation per line.
func (s *Script) String() string {
	var b strings.Builder
	for i, op := range s.Ops {
		fmt.Fprintf(&b, "%3d. %s\n", i+1, op.String())
	}
	return b.String()
}

// CheckDeletable verifies that the subtree rooted at v may be removed
// by a single elementary deletion: T[v] is branch-free and p(v) is a
// true P, F or L node (Definition 4.1 and Lemma 5.6).
func CheckDeletable(v *sptree.Node) error {
	p := v.Parent
	if p == nil {
		return fmt.Errorf("edit: cannot delete the root")
	}
	switch p.Type {
	case sptree.P, sptree.F, sptree.L:
	default:
		return fmt.Errorf("edit: parent of deleted subtree is %s, want P, F or L", p.Type)
	}
	if !p.True() {
		return fmt.Errorf("edit: parent is a pseudo %s node; deleting its only child would invalidate the run", p.Type)
	}
	if !sptree.BranchFree(v) {
		return fmt.Errorf("edit: subtree is not branch-free; not an elementary deletion")
	}
	return nil
}

// DeleteElementary removes the elementary subtree rooted at v from its
// parent after validating the operation.
func DeleteElementary(v *sptree.Node) error {
	if err := CheckDeletable(v); err != nil {
		return err
	}
	p := v.Parent
	i := p.ChildIndex(v)
	if i < 0 {
		return fmt.Errorf("edit: node is not among its parent's children")
	}
	p.RemoveChild(i)
	return nil
}

// CheckInsertable verifies that sub may be attached as a child of
// parent: parent is a P, F or L node; sub is branch-free; sub derives
// from the right part of the specification; and, for P parents, no
// existing child already derives from the same specification branch
// (a P node may not execute the same branch twice).
func CheckInsertable(parent, sub *sptree.Node) error {
	if sub.Spec == nil || parent.Spec == nil {
		return fmt.Errorf("edit: insertion requires specification-aligned run trees")
	}
	if !sptree.BranchFree(sub) {
		return fmt.Errorf("edit: inserted subtree is not branch-free; not an elementary insertion")
	}
	switch parent.Type {
	case sptree.P:
		if sub.Spec.Parent != parent.Spec {
			return fmt.Errorf("edit: inserted subtree does not derive from a branch of the P node")
		}
		for _, c := range parent.Children {
			if c.Spec == sub.Spec {
				return fmt.Errorf("edit: P node already executes specification branch of inserted subtree")
			}
		}
	case sptree.F, sptree.L:
		if sub.Spec != parent.Spec.Children[0] {
			return fmt.Errorf("edit: inserted subtree does not derive from the %s node's specification child", parent.Type)
		}
	default:
		return fmt.Errorf("edit: insertion parent is %s, want P, F or L", parent.Type)
	}
	return nil
}

// InsertElementary attaches sub as the pos-th child of parent
// (pos == -1 appends) after validating the operation.
func InsertElementary(parent *sptree.Node, pos int, sub *sptree.Node) error {
	if err := CheckInsertable(parent, sub); err != nil {
		return err
	}
	if pos < 0 {
		pos = len(parent.Children)
	}
	if pos > len(parent.Children) {
		return fmt.Errorf("edit: insert position %d out of range", pos)
	}
	parent.InsertChild(pos, sub)
	return nil
}

// PathOf returns the node-instance and label sequences of the
// elementary path represented by a branch-free subtree: the leaves in
// order give consecutive edges of the path. For subtrees whose leaves
// are not chained (synthetic skeletons), the sequence still lists the
// edge endpoints in order.
func PathOf(v *sptree.Node) (instances, labels []string) {
	leaves := v.Leaves()
	if len(leaves) == 0 {
		return nil, nil
	}
	instances = append(instances, string(leaves[0].Edge.From))
	labels = append(labels, leaves[0].Src)
	for _, q := range leaves {
		instances = append(instances, string(q.Edge.To))
		labels = append(labels, q.Dst)
	}
	return instances, labels
}
