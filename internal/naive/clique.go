package naive

import (
	"fmt"

	"repro/internal/graph"
)

// CliqueInstance is an undirected bipartite graph H = (X ∪ Y, E) with
// |X| = |Y| = N, given by its adjacency matrix, plus the clique size
// parameter l of Theorem 1.
type CliqueInstance struct {
	N   int
	Adj [][]bool // Adj[x][y]: edge between X[x] and Y[y]
	L   int
}

// NumEdges returns m = |E(H)|.
func (ci *CliqueInstance) NumEdges() int {
	m := 0
	for _, row := range ci.Adj {
		for _, v := range row {
			if v {
				m++
			}
		}
	}
	return m
}

// Reduction holds the workflow-difference instance encoding a
// bipartite clique instance per the proof of Theorem 1.
type Reduction struct {
	// Spec is the 4-node forbidden-minor specification graph Gs.
	Spec *graph.Graph
	// R1 encodes H; R2 encodes the complete l × l bipartite graph.
	R1, R2 *graph.Graph
	// Gamma is the threshold (m − l²) + 4(n − l): an edit script of
	// cost ≤ Gamma exists iff H contains an l × l bipartite clique.
	Gamma int
}

// BuildCliqueReduction constructs the two runs of the Theorem 1 proof.
func BuildCliqueReduction(ci *CliqueInstance) (*Reduction, error) {
	if ci.L > ci.N || ci.L < 1 {
		return nil, fmt.Errorf("naive: clique size %d out of range for n=%d", ci.L, ci.N)
	}
	spec := graph.New()
	for _, n := range []string{"s", "v1", "v2", "t"} {
		spec.MustAddNode(graph.NodeID(n), n)
	}
	spec.MustAddEdge("s", "v1")
	spec.MustAddEdge("s", "v2")
	spec.MustAddEdge("v1", "v2")
	spec.MustAddEdge("v1", "t")
	spec.MustAddEdge("v2", "t")

	r1 := graph.New()
	r1.MustAddNode("s1", "s")
	r1.MustAddNode("t1", "t")
	for i := 0; i < ci.N; i++ {
		x := graph.NodeID(fmt.Sprintf("x%d", i))
		y := graph.NodeID(fmt.Sprintf("y%d", i))
		r1.MustAddNode(x, "v1")
		r1.MustAddNode(y, "v2")
	}
	for i := 0; i < ci.N; i++ {
		x := graph.NodeID(fmt.Sprintf("x%d", i))
		y := graph.NodeID(fmt.Sprintf("y%d", i))
		r1.MustAddEdge("s1", x)
		r1.MustAddEdge("s1", y)
		r1.MustAddEdge(x, "t1")
		r1.MustAddEdge(y, "t1")
	}
	for x := 0; x < ci.N; x++ {
		for y := 0; y < ci.N; y++ {
			if ci.Adj[x][y] {
				r1.MustAddEdge(graph.NodeID(fmt.Sprintf("x%d", x)), graph.NodeID(fmt.Sprintf("y%d", y)))
			}
		}
	}

	r2 := graph.New()
	r2.MustAddNode("s2", "s")
	r2.MustAddNode("t2", "t")
	for i := 0; i < ci.L; i++ {
		x := graph.NodeID(fmt.Sprintf("x%d", i))
		y := graph.NodeID(fmt.Sprintf("y%d", i))
		r2.MustAddNode(x, "v1")
		r2.MustAddNode(y, "v2")
		r2.MustAddEdge("s2", x)
		r2.MustAddEdge("s2", y)
		r2.MustAddEdge(x, "t2")
		r2.MustAddEdge(y, "t2")
	}
	for x := 0; x < ci.L; x++ {
		for y := 0; y < ci.L; y++ {
			r2.MustAddEdge(graph.NodeID(fmt.Sprintf("x%d", x)), graph.NodeID(fmt.Sprintf("y%d", y)))
		}
	}

	gamma := (ci.NumEdges() - ci.L*ci.L) + 4*(ci.N-ci.L)
	return &Reduction{Spec: spec, R1: r1, R2: r2, Gamma: gamma}, nil
}

// HasClique decides by brute force whether H contains an l × l
// bipartite clique. Exponential; for demonstration only.
func (ci *CliqueInstance) HasClique() bool {
	xs := combinations(ci.N, ci.L)
	ys := combinations(ci.N, ci.L)
	for _, xset := range xs {
		for _, yset := range ys {
			ok := true
		check:
			for _, x := range xset {
				for _, y := range yset {
					if !ci.Adj[x][y] {
						ok = false
						break check
					}
				}
			}
			if ok {
				return true
			}
		}
	}
	return false
}

func combinations(n, k int) [][]int {
	var out [][]int
	var cur []int
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i < n; i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// CliqueEditCost computes, for a candidate clique (X1, Y1) of size l,
// the cost of the canonical edit script of the Theorem 1 proof:
// delete cross edges outside the clique, then delete the length-2
// paths through unused X and Y nodes. It equals Gamma exactly when
// (X1, Y1) is a clique.
func (r *Reduction) CliqueEditCost(ci *CliqueInstance, x1, y1 []int) int {
	inX := map[int]bool{}
	for _, x := range x1 {
		inX[x] = true
	}
	inY := map[int]bool{}
	for _, y := range y1 {
		inY[y] = true
	}
	cost := 0
	for x := 0; x < ci.N; x++ {
		for y := 0; y < ci.N; y++ {
			if ci.Adj[x][y] && !(inX[x] && inY[y]) {
				cost++ // delete edge (x, y)
			}
		}
	}
	// Missing clique edges must be inserted.
	for _, x := range x1 {
		for _, y := range y1 {
			if !ci.Adj[x][y] {
				cost += 2 // delete nothing, but insertion breaks the Gamma bound; count both directions
			}
		}
	}
	cost += 2 * (ci.N - ci.L) // paths s1 -> x -> t1 for x outside X1
	cost += 2 * (ci.N - ci.L) // paths s1 -> y -> t1 for y outside Y1
	return cost
}
