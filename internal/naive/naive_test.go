package naive

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/graph"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

func TestDataflowDiff(t *testing.T) {
	r1 := graph.New()
	for _, n := range []string{"a", "b", "c"} {
		r1.MustAddNode(graph.NodeID(n), n)
	}
	r1.MustAddEdge("a", "b")
	r1.MustAddEdge("b", "c")
	r2 := graph.New()
	for _, n := range []string{"a", "b", "d"} {
		r2.MustAddNode(graph.NodeID(n), n)
	}
	r2.MustAddEdge("a", "b")
	r2.MustAddEdge("b", "d")
	res, err := DataflowDiff(r1, r2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.OnlyIn1) != 1 || res.OnlyIn1[0] != [2]string{"b", "c"} {
		t.Fatalf("OnlyIn1 = %v", res.OnlyIn1)
	}
	if len(res.NodesOnlyIn2) != 1 || res.NodesOnlyIn2[0] != "d" {
		t.Fatalf("NodesOnlyIn2 = %v", res.NodesOnlyIn2)
	}
}

func TestDataflowDiffRejectsRepeatedModules(t *testing.T) {
	r := graph.New()
	r.MustAddNode("3a", "3")
	r.MustAddNode("3b", "3")
	r.MustAddEdge("3a", "3b")
	if _, err := DataflowDiff(r, r); err == nil {
		t.Fatal("repeated labels must be rejected; this is exactly where the naive approach breaks (Section I)")
	}
}

type randomDecider struct{ rng *rand.Rand }

func (d *randomDecider) ParallelSubset(p *sptree.Node) []int {
	var subset []int
	for i := range p.Children {
		if d.rng.Intn(100) < 60 {
			subset = append(subset, i)
		}
	}
	if len(subset) == 0 {
		subset = []int{d.rng.Intn(len(p.Children))}
	}
	return subset
}
func (d *randomDecider) ForkCopies(*sptree.Node) int     { return 1 + d.rng.Intn(3) }
func (d *randomDecider) LoopIterations(*sptree.Node) int { return 1 + d.rng.Intn(3) }

// TestDeletionOracleAgreesWithDP cross-validates Algorithm 3 against
// explicit enumeration on small random runs.
func TestDeletionOracleAgreesWithDP(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	rng := rand.New(rand.NewSource(3))
	for _, m := range []cost.Model{cost.Unit{}, cost.Length{}, cost.Power{Epsilon: 0.5}} {
		for trial := 0; trial < 25; trial++ {
			r, err := wfrun.Execute(sp, &randomDecider{rng: rng})
			if err != nil {
				t.Fatal(err)
			}
			want := DeletionOracle(r.Tree, m)
			got := core.DeletionCost(r.Tree, m)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s trial %d: DP X = %g, oracle = %g\n%s", m.Name(), trial, got, want, r.Tree)
			}
		}
	}
}

// TestMappingOracleAgreesWithDP cross-validates Algorithm 4/6 against
// explicit enumeration of all well-formed mappings.
func TestMappingOracleAgreesWithDP(t *testing.T) {
	sp := fixtures.Fig2SpecWithLoop()
	rng := rand.New(rand.NewSource(17))
	w := WOracle(sp, cost.Unit{})
	for _, m := range []cost.Model{cost.Unit{}, cost.Length{}} {
		wm := WOracle(sp, m)
		del := func(v *sptree.Node) float64 { return core.DeletionCost(v, m) }
		for trial := 0; trial < 15; trial++ {
			r1, err := wfrun.Execute(sp, &randomDecider{rng: rng})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := wfrun.Execute(sp, &randomDecider{rng: rng})
			if err != nil {
				t.Fatal(err)
			}
			want := MappingOracle(r1.Tree, r2.Tree, del, wm)
			got, err := core.Distance(r1, r2, m)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s trial %d: DP distance %g, oracle %g\nT1:\n%s\nT2:\n%s",
					m.Name(), trial, got, want, r1.Tree, r2.Tree)
			}
		}
	}
	_ = w
}

func TestCliqueReduction(t *testing.T) {
	// A 3x3 instance containing a 2x2 clique on {0,1}x{0,1}.
	ci := &CliqueInstance{
		N: 3,
		Adj: [][]bool{
			{true, true, false},
			{true, true, true},
			{false, false, false},
		},
		L: 2,
	}
	red, err := BuildCliqueReduction(ci)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.HasClique() {
		t.Fatal("instance should contain a 2x2 clique")
	}
	// Both runs must be valid under the general workflow model
	// (label homomorphism into the non-SP specification).
	if _, err := graph.FindHomomorphism(red.R1, red.Spec); err != nil {
		t.Fatalf("R1 invalid: %v", err)
	}
	if _, err := graph.FindHomomorphism(red.R2, red.Spec); err != nil {
		t.Fatalf("R2 invalid: %v", err)
	}
	wantGamma := (ci.NumEdges() - 4) + 4*(3-2)
	if red.Gamma != wantGamma {
		t.Fatalf("Gamma = %d, want %d", red.Gamma, wantGamma)
	}
	// The canonical script over the true clique costs exactly Gamma.
	if got := red.CliqueEditCost(ci, []int{0, 1}, []int{0, 1}); got != red.Gamma {
		t.Fatalf("clique edit cost = %d, want Gamma = %d", got, red.Gamma)
	}
	// A non-clique selection costs strictly more.
	if got := red.CliqueEditCost(ci, []int{0, 2}, []int{0, 1}); got <= red.Gamma {
		t.Fatalf("non-clique selection cost = %d, should exceed Gamma = %d", got, red.Gamma)
	}
}

func TestHasCliqueNegative(t *testing.T) {
	ci := &CliqueInstance{
		N: 3,
		Adj: [][]bool{
			{true, false, false},
			{false, true, false},
			{false, false, true},
		},
		L: 2,
	}
	if ci.HasClique() {
		t.Fatal("perfect matching has no 2x2 clique")
	}
	if !(&CliqueInstance{N: 3, Adj: ci.Adj, L: 1}).HasClique() {
		t.Fatal("any edge is a 1x1 clique")
	}
}

func TestBuildCliqueReductionValidation(t *testing.T) {
	ci := &CliqueInstance{N: 2, Adj: [][]bool{{true, true}, {true, true}}, L: 3}
	if _, err := BuildCliqueReduction(ci); err == nil {
		t.Fatal("l > n must be rejected")
	}
}
