package naive

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// The differential oracle suite: thousands of randomized
// Engine-vs-reference comparisons per CI run, plus metric-property
// checks (identity, symmetry, triangle inequality) for every built-in
// cost model. The reference implementation (Distance in reference.go)
// shares no code with the arena engine, so any divergence pinpoints a
// bug in the engine's flat memo layout, scratch reuse or W_TG
// persistence rather than in the recurrences themselves.

var differentialModels = []cost.Model{
	cost.Unit{},
	cost.Length{},
	cost.Power{Epsilon: 0.5},
	cost.Power{Epsilon: 0.25},
}

// differentialConfig is one row of the table: a spec shape plus run
// replication parameters. Node counts grow with Edges and MaxF/MaxL.
type differentialConfig struct {
	name        string
	edges       int
	seriesRatio float64
	forks       int
	loops       int
	params      gen.RunParams
	trials      int
}

func differentialTable() []differentialConfig {
	return []differentialConfig{
		{"tiny-series", 4, 3, 0, 0, gen.RunParams{ProbP: 0.8, ProbF: 0.5, MaxF: 2, ProbL: 0.5, MaxL: 2}, 30},
		{"tiny-parallel", 5, 1.0 / 3, 1, 0, gen.RunParams{ProbP: 0.6, ProbF: 0.5, MaxF: 2, ProbL: 0.5, MaxL: 2}, 30},
		{"small-mixed", 8, 1, 1, 1, gen.RunParams{ProbP: 0.7, ProbF: 0.6, MaxF: 2, ProbL: 0.6, MaxL: 2}, 50},
		{"small-forks", 10, 1, 3, 0, gen.RunParams{ProbP: 0.8, ProbF: 0.6, MaxF: 3, ProbL: 0.5, MaxL: 2}, 40},
		{"small-loops", 10, 1, 0, 3, gen.RunParams{ProbP: 0.8, ProbF: 0.5, MaxF: 2, ProbL: 0.6, MaxL: 3}, 40},
		{"medium-mixed", 16, 1, 2, 2, gen.RunParams{ProbP: 0.85, ProbF: 0.5, MaxF: 3, ProbL: 0.5, MaxL: 3}, 50},
		{"medium-parallel", 18, 0.5, 2, 1, gen.RunParams{ProbP: 0.7, ProbF: 0.5, MaxF: 2, ProbL: 0.5, MaxL: 2}, 30},
		{"large-series", 28, 3, 3, 2, gen.RunParams{ProbP: 0.9, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}, 25},
		{"large-mixed", 36, 1, 4, 3, gen.RunParams{ProbP: 0.9, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}, 25},
		{"huge-replication", 24, 1, 5, 4, gen.RunParams{ProbP: 0.95, ProbF: 0.8, MaxF: 3, ProbL: 0.8, MaxL: 3}, 20},
	}
}

// TestEngineMatchesReference is the main differential property: for
// random series-parallel specifications across the size table, the
// optimized arena Engine and the naive map-based reference agree on
// δ(R1, R2) under every built-in cost model. Engines are reused across
// all trials of a configuration, so W_TG memo persistence across
// specification changes is exercised too. Well over 1000 comparisons
// run per invocation; the exact count is logged.
func TestEngineMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260728))
	engines := make([]*core.Engine, len(differentialModels))
	for i, m := range differentialModels {
		engines[i] = core.NewEngine(m)
	}
	comparisons := 0
	maxNodes := 0
	for _, cfg := range differentialTable() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for trial := 0; trial < cfg.trials; trial++ {
				sp, err := gen.RandomSpec(gen.SpecConfig{
					Edges:       cfg.edges,
					SeriesRatio: cfg.seriesRatio,
					Forks:       cfg.forks,
					Loops:       cfg.loops,
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
				r1, err := gen.RandomRun(sp, cfg.params, rng)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := gen.RandomRun(sp, cfg.params, rng)
				if err != nil {
					t.Fatal(err)
				}
				if n := r1.Tree.CountNodes(); n > maxNodes {
					maxNodes = n
				}
				mi := trial % len(differentialModels)
				m := differentialModels[mi]
				want, err := Distance(r1, r2, m)
				if err != nil {
					t.Fatal(err)
				}
				got, err := engines[mi].Distance(r1, r2)
				if err != nil {
					t.Fatal(err)
				}
				comparisons++
				if math.Abs(got-want) > 1e-9 {
					t.Fatalf("trial %d %s: engine %g, reference %g\nT1:\n%s\nT2:\n%s",
						trial, m.Name(), got, want, r1.Tree, r2.Tree)
				}
				// A second diff of the same pair on the warm engine must
				// not drift (memo generation bugs would show here).
				again, err := engines[mi].Distance(r1, r2)
				if err != nil {
					t.Fatal(err)
				}
				comparisons++
				if again != got {
					t.Fatalf("trial %d %s: warm re-diff drifted: %g then %g", trial, m.Name(), got, again)
				}
				// Symmetry, cross-checked against the reference too.
				rev, err := engines[mi].Distance(r2, r1)
				if err != nil {
					t.Fatal(err)
				}
				comparisons++
				if math.Abs(rev-want) > 1e-9 {
					t.Fatalf("trial %d %s: asymmetric: d(a,b)=%g d(b,a)=%g", trial, m.Name(), got, rev)
				}
			}
		})
	}
	t.Logf("differential suite: %d engine-vs-reference comparisons, largest tree %d nodes", comparisons, maxNodes)
	if comparisons < 1000 {
		t.Errorf("differential suite ran only %d comparisons; want >= 1000 per invocation", comparisons)
	}
}

// TestReferenceMatchesExponentialOracle anchors the polynomial
// reference itself against the explicit exponential enumeration on
// small instances, closing the loop: oracle == reference == engine.
func TestReferenceMatchesExponentialOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	params := gen.RunParams{ProbP: 0.7, ProbF: 0.6, MaxF: 2, ProbL: 0.6, MaxL: 2}
	for trial := 0; trial < 25; trial++ {
		sp, err := gen.RandomSpec(gen.SpecConfig{
			Edges:       5 + rng.Intn(8),
			SeriesRatio: 1,
			Forks:       rng.Intn(3),
			Loops:       rng.Intn(2),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		if r1.NumEdges() > 30 || r2.NumEdges() > 30 {
			continue // keep the exponential oracle fast
		}
		m := differentialModels[trial%len(differentialModels)]
		del := func(v *sptree.Node) float64 { return core.DeletionCost(v, m) }
		want := MappingOracle(r1.Tree, r2.Tree, del, WOracle(sp, m))
		got, err := Distance(r1, r2, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d %s: reference %g, oracle %g\nT1:\n%s\nT2:\n%s",
				trial, m.Name(), got, want, r1.Tree, r2.Tree)
		}
	}
}

// TestSpecEvolveMatchesReference mirrors the engine-vs-oracle harness
// for the spec-evolution distance: on small random specification pairs
// (both mutation-related and unrelated), the flat-memo evolve engine
// and the map-based SpecDistance reference (which enumerates every
// unordered child assignment explicitly) must agree exactly. Identity
// and symmetry are cross-checked on the reference too.
func TestSpecEvolveMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260729))
	c := evolve.DefaultCosts()
	eng := evolve.NewEngine(c)
	comparisons := 0
	maxNodes := 0
	smallSpec := func() *spec.Spec {
		for {
			sp, err := gen.RandomSpec(gen.SpecConfig{
				Edges:       3 + rng.Intn(8),
				SeriesRatio: []float64{0.5, 1, 2}[rng.Intn(3)],
				Forks:       rng.Intn(2),
				Loops:       rng.Intn(2),
			}, rng)
			if err != nil {
				t.Fatal(err)
			}
			if sp.Tree.CountNodes() <= 20 {
				return sp
			}
		}
	}
	for trial := 0; trial < 60; trial++ {
		a := smallSpec()
		var b *spec.Spec
		if trial%2 == 0 {
			muts, err := gen.Mutate(a, 1+rng.Intn(2), rng)
			if err != nil {
				t.Fatal(err)
			}
			b = muts[len(muts)-1].Spec
		} else {
			b = smallSpec()
		}
		if n := a.Tree.CountNodes() + b.Tree.CountNodes(); n > maxNodes {
			maxNodes = n
		}
		want := SpecDistance(a, b, c)
		m, err := eng.Diff(a, b)
		if err != nil {
			t.Fatal(err)
		}
		comparisons++
		if math.Abs(m.Cost-want) > 1e-9 {
			t.Fatalf("trial %d: engine %g, reference %g\nA:\n%s\nB:\n%s",
				trial, m.Cost, want, a.Tree, b.Tree)
		}
		// Symmetry holds on the reference too.
		if rev := SpecDistance(b, a, c); math.Abs(rev-want) > 1e-9 {
			t.Fatalf("trial %d: reference asymmetric: %g vs %g", trial, want, rev)
		}
		// Identity on the reference.
		if self := SpecDistance(a, a, c); self != 0 {
			t.Fatalf("trial %d: reference self-distance %g, want 0", trial, self)
		}
		comparisons += 2
	}
	t.Logf("spec-evolution differential: %d comparisons, largest pair %d tree nodes", comparisons, maxNodes)
}

// TestMetricProperties checks the distance is a metric in practice for
// every built-in cost model: identity on identical runs, symmetry, and
// the triangle inequality over sampled triples of cohort members.
func TestMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	params := gen.RunParams{ProbP: 0.85, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}
	for _, m := range differentialModels {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			eng := core.NewEngine(m)
			for trial := 0; trial < 6; trial++ {
				sp, err := gen.RandomSpec(gen.SpecConfig{
					Edges:       10 + rng.Intn(16),
					SeriesRatio: 1,
					Forks:       rng.Intn(4),
					Loops:       rng.Intn(3),
				}, rng)
				if err != nil {
					t.Fatal(err)
				}
				const cohort = 5
				runs := make([]*wfrun.Run, cohort)
				for i := range runs {
					if runs[i], err = gen.RandomRun(sp, params, rng); err != nil {
						t.Fatal(err)
					}
				}
				d := make([][]float64, cohort)
				for i := range d {
					d[i] = make([]float64, cohort)
				}
				for i := 0; i < cohort; i++ {
					// Identity: d(a, a) = 0.
					self, err := eng.Distance(runs[i], runs[i])
					if err != nil {
						t.Fatal(err)
					}
					if self != 0 {
						t.Fatalf("trial %d: d(r%d, r%d) = %g, want 0", trial, i, i, self)
					}
					for j := i + 1; j < cohort; j++ {
						dij, err := eng.Distance(runs[i], runs[j])
						if err != nil {
							t.Fatal(err)
						}
						dji, err := eng.Distance(runs[j], runs[i])
						if err != nil {
							t.Fatal(err)
						}
						// Symmetry.
						if math.Abs(dij-dji) > 1e-9 {
							t.Fatalf("trial %d: d(r%d,r%d)=%g but d(r%d,r%d)=%g", trial, i, j, dij, j, i, dji)
						}
						if dij < 0 {
							t.Fatalf("trial %d: negative distance %g", trial, dij)
						}
						d[i][j], d[j][i] = dij, dij
					}
				}
				// Triangle inequality over every triple of the cohort.
				for a := 0; a < cohort; a++ {
					for b := a + 1; b < cohort; b++ {
						for c := 0; c < cohort; c++ {
							if c == a || c == b {
								continue
							}
							if d[a][b] > d[a][c]+d[c][b]+1e-9 {
								t.Fatalf("trial %d %s: triangle violated: d(%d,%d)=%g > d(%d,%d)+d(%d,%d)=%g",
									trial, m.Name(), a, b, d[a][b], a, c, c, b, d[a][c]+d[c][b])
							}
						}
					}
				}
			}
		})
	}
}
