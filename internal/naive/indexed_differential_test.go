package naive

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/metricindex"
	"repro/internal/wfrun"
)

// The metric-index differential suite: random cohorts across every
// differential cost model, with the exhaustive dense-matrix analytics
// as the oracle. The index answers through lower bounds and pruning,
// so any divergence — an extra neighbor, a reordered outlier, a
// histogram bound above the true distance — pinpoints an unsound
// bound or a broken tie-break, not a cosmetic drift: nearest and
// outlier answers must match the dense path byte for byte.

// randomCohort draws one specification and n runs of it.
func randomCohort(t *testing.T, rng *rand.Rand, n int) ([]string, []*wfrun.Run) {
	t.Helper()
	sp, err := gen.RandomSpec(gen.SpecConfig{
		Edges:       8 + rng.Intn(10),
		SeriesRatio: 1,
		Forks:       1 + rng.Intn(2),
		Loops:       rng.Intn(3),
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	params := gen.RunParams{ProbP: 0.8, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}
	names := make([]string, n)
	runs := make([]*wfrun.Run, n)
	for i := range runs {
		names[i] = fmt.Sprintf("r%02d", i)
		if runs[i], err = gen.RandomRun(sp, params, rng); err != nil {
			t.Fatal(err)
		}
	}
	return names, runs
}

// TestIndexedAnalyticsMatchExhaustive runs ~50 random cohorts (13
// cohort draws x the 4 differential cost models) and checks, per
// cohort:
//
//   - index-pruned kNN answers equal cluster.Nearest over the dense
//     matrix exactly (reflect.DeepEqual), for every query item;
//   - outlier scores and ranks equal cluster.Outliers bitwise;
//   - SampledKMedoids with the sample covering the whole cohort stays
//     within 5% of the full-PAM objective;
//   - the histogram lower bound never exceeds the naive-oracle
//     distance (the property the pruning soundness rests on).
func TestIndexedAnalyticsMatchExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	cohorts := 0
	for trial := 0; trial < 13; trial++ {
		n := 10 + rng.Intn(6)
		names, runs := randomCohort(t, rng, n)
		for _, m := range differentialModels {
			cohorts++
			t.Run(fmt.Sprintf("trial%d-%s", trial, m.Name()), func(t *testing.T) {
				ix := metricindex.New(m, metricindex.Options{Landmarks: 3, Workers: 2})
				if err := ix.Reset(names, runs); err != nil {
					t.Fatal(err)
				}
				co := ix.Snapshot()
				mx, err := analysis.DistanceMatrix(runs, names, m)
				if err != nil {
					t.Fatal(err)
				}

				for i := 0; i < n; i++ {
					for _, k := range []int{1, 3, n - 1} {
						want, err := cluster.Nearest(mx.D, i, k)
						if err != nil {
							t.Fatal(err)
						}
						got, err := cluster.IndexedNearest(co, i, k)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got, want) {
							t.Fatalf("kNN(%d, k=%d):\n got %v\nwant %v", i, k, got, want)
						}
					}
				}

				wantO, err := cluster.Outliers(mx.D, 3)
				if err != nil {
					t.Fatal(err)
				}
				gotO, err := cluster.IndexedOutliers(co, 3)
				if err != nil {
					t.Fatal(err)
				}
				if len(gotO) != len(wantO) {
					t.Fatalf("outliers: %d vs %d", len(gotO), len(wantO))
				}
				for r := range gotO {
					if gotO[r].Index != wantO[r].Index || gotO[r].Score != wantO[r].Score {
						t.Fatalf("outlier rank %d: got %+v, want %+v", r, gotO[r], wantO[r])
					}
				}

				pam, err := cluster.KMedoids(mx.D, 3, 17)
				if err != nil {
					t.Fatal(err)
				}
				skm, err := cluster.SampledKMedoids(context.Background(), co, 3, 17, cluster.SampleOptions{SampleSize: n})
				if err != nil {
					t.Fatal(err)
				}
				if skm.Cost > pam.Cost*1.05+1e-9 {
					t.Fatalf("sampled objective %g strays beyond 5%% of PAM %g", skm.Cost, pam.Cost)
				}

				// Histogram-bound property against the naive oracle on a
				// few random pairs.
				for p := 0; p < 4; p++ {
					i, j := rng.Intn(n), rng.Intn(n)
					hb, err := metricindex.HistogramBound(m, runs[i], runs[j])
					if err != nil {
						t.Fatal(err)
					}
					d, err := Distance(runs[i], runs[j], m)
					if err != nil {
						t.Fatal(err)
					}
					if hb > d+1e-9 {
						t.Fatalf("histogram bound %g exceeds naive distance %g (pair %d,%d)", hb, d, i, j)
					}
				}
			})
		}
	}
	if cohorts < 50 {
		t.Fatalf("only %d cohorts exercised, want ~50", cohorts)
	}
	t.Logf("differential cohorts: %d", cohorts)
}

// TestHistogramBoundPropertyWeighted extends the bound property to
// weighted models (whose rate folds the minimum label weight) and to
// a label-priced Func model, whose rate must be vacuously 0.
func TestHistogramBoundPropertyWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	names, runs := randomCohort(t, rng, 8)
	_ = names
	w := cost.Weighted{Base: cost.Unit{}, W: map[string]float64{"a": 0.5, "b": 2}}
	for i := 0; i < len(runs); i++ {
		for j := i + 1; j < len(runs); j++ {
			hb, err := metricindex.HistogramBound(w, runs[i], runs[j])
			if err != nil {
				t.Fatal(err)
			}
			d, err := Distance(runs[i], runs[j], w)
			if err != nil {
				t.Fatal(err)
			}
			if hb > d+1e-9 {
				t.Fatalf("weighted bound %g exceeds %g at (%d,%d)", hb, d, i, j)
			}
		}
	}
	f := cost.Func{Fn: func(l int, s, d string) float64 { return 0.1 }, Label: "flat"}
	hb, err := metricindex.HistogramBound(f, runs[0], runs[1])
	if err != nil || hb != 0 {
		t.Fatalf("func-model bound should be vacuous: %g %v", hb, err)
	}
}
