package naive

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// Distance is the naive-but-polynomial reference implementation of the
// run edit distance: the same recurrences as MappingOracle and
// DeletionOracle, made tractable on trees of hundreds of nodes by
// plain pointer-keyed memo maps (and a quadratic DP for the L case in
// place of full monotone enumeration). It shares no code with
// core.Engine — no arenas, no flat preorder indexing, no generation
// stamps, no scratch reuse — so agreement between the two on
// randomized workloads is evidence the engine's optimizations preserve
// the metric, which is exactly what the differential test harness
// asserts thousands of times per CI run.
//
// The F (fork) case still enumerates bipartite matchings explicitly,
// so it is exponential in the per-node fork copy count; keep fork/loop
// replication modest (the differential suite uses MaxF, MaxL <= 3).
func Distance(r1, r2 *wfrun.Run, m cost.Model) (float64, error) {
	if r1.Spec == nil || r1.Spec != r2.Spec {
		return 0, fmt.Errorf("naive: runs belong to different specifications")
	}
	if r1.Tree == nil || r2.Tree == nil {
		return 0, fmt.Errorf("naive: runs lack annotated SP-trees")
	}
	rd := &refDiff{
		m:   m,
		sp:  r1.Spec,
		red: map[*sptree.Node]map[int]float64{},
		x:   map[*sptree.Node]float64{},
		w:   map[[2]*sptree.Node]float64{},
		c:   map[[2]*sptree.Node]float64{},
	}
	return rd.cost(r1.Tree, r2.Tree), nil
}

// refDiff carries the memo maps of one reference computation.
type refDiff struct {
	m   cost.Model
	sp  *spec.Spec
	red map[*sptree.Node]map[int]float64 // reduction sets (Algorithm 3)
	x   map[*sptree.Node]float64         // X(v), min subtree-deletion cost
	w   map[[2]*sptree.Node]float64      // W_TG over specification nodes
	c   map[[2]*sptree.Node]float64      // γ(M(v1, v2)) over homologous pairs
}

// X is the minimum cost of deleting T[v]: reduce to a branch-free
// subtree with l leaves, then delete that elementary subtree in one
// operation.
func (rd *refDiff) X(v *sptree.Node) float64 {
	if got, ok := rd.x[v]; ok {
		return got
	}
	best := math.Inf(1)
	for l, c := range rd.reduction(v) {
		if cand := c + rd.m.PathCost(l, v.Src, v.Dst); cand < best {
			best = cand
		}
	}
	rd.x[v] = best
	return best
}

// reduction maps achievable branch-free leaf counts of T[v] to the
// minimum cost of reaching them — reductionSet with memoization, which
// turns the shared-subproblem blowup into a polynomial DP.
func (rd *refDiff) reduction(v *sptree.Node) map[int]float64 {
	if got, ok := rd.red[v]; ok {
		return got
	}
	var out map[int]float64
	switch v.Type {
	case sptree.Q:
		out = map[int]float64{1: 0}
	case sptree.P, sptree.F, sptree.L:
		out = map[int]float64{}
		sumX := 0.0
		for _, c := range v.Children {
			sumX += rd.X(c)
		}
		for _, keep := range v.Children {
			others := sumX - rd.X(keep)
			for l, c := range rd.reduction(keep) {
				if cur, ok := out[l]; !ok || c+others < cur {
					out[l] = c + others
				}
			}
		}
	case sptree.S:
		out = map[int]float64{0: 0}
		for _, c := range v.Children {
			next := map[int]float64{}
			childSet := rd.reduction(c)
			for l0, c0 := range out {
				for l1, c1 := range childSet {
					if cur, ok := next[l0+l1]; !ok || c0+c1 < cur {
						next[l0+l1] = c0 + c1
					}
				}
			}
			out = next
		}
		delete(out, 0)
	}
	rd.red[v] = out
	return out
}

// W is W_TG(a, b) over specification nodes: the minimum insertion cost
// of a branch-free execution of a child of a other than b.
func (rd *refDiff) W(a, b *sptree.Node) float64 {
	key := [2]*sptree.Node{a, b}
	if got, ok := rd.w[key]; ok {
		return got
	}
	best := math.Inf(1)
	for _, c := range a.Children {
		if c == b {
			continue
		}
		for _, l := range rd.sp.AchievableLengths(c) {
			if cand := rd.m.PathCost(l, a.Src, a.Dst); cand < best {
				best = cand
			}
		}
	}
	rd.w[key] = best
	return best
}

// cost is γ(M(v1, v2)): the minimum cost over well-formed mappings of
// T1[v1] onto T2[v2], for homologous v1, v2.
func (rd *refDiff) cost(v1, v2 *sptree.Node) float64 {
	key := [2]*sptree.Node{v1, v2}
	if got, ok := rd.c[key]; ok {
		return got
	}
	var out float64
	switch v1.Type {
	case sptree.Q:
		out = 0

	case sptree.S:
		// Children of mapped S nodes are preserved pairwise.
		for i := range v1.Children {
			out += rd.cost(v1.Children[i], v2.Children[i])
		}

	case sptree.P:
		out = rd.parallel(v1, v2)

	case sptree.F:
		out = rd.matchings(v1.Children, v2.Children, nil, map[int]bool{})

	case sptree.L:
		out = rd.monotone(v1.Children, v2.Children)

	default:
		panic("naive: unknown node type")
	}
	rd.c[key] = out
	return out
}

// parallel mirrors the engine's P handling: the single-homologous-
// children case may unstably re-pair via W_TG; otherwise children pair
// up by specification branch and each pair is kept only when mapping
// beats deleting both sides.
func (rd *refDiff) parallel(v1, v2 *sptree.Node) float64 {
	if len(v1.Children) == 1 && len(v2.Children) == 1 &&
		v1.Children[0].Spec == v2.Children[0].Spec {
		c1, c2 := v1.Children[0], v2.Children[0]
		mapped := rd.cost(c1, c2)
		swap := rd.X(c1) + rd.X(c2) + 2*rd.W(v1.Spec, c1.Spec)
		return math.Min(mapped, swap)
	}
	by1 := map[*sptree.Node]*sptree.Node{}
	for _, c := range v1.Children {
		by1[c.Spec] = c
	}
	total := 0.0
	for _, c2 := range v2.Children {
		if c1, ok := by1[c2.Spec]; ok {
			total += math.Min(rd.cost(c1, c2), rd.X(c1)+rd.X(c2))
			delete(by1, c2.Spec)
		} else {
			total += rd.X(c2)
		}
	}
	for _, c1 := range by1 {
		total += rd.X(c1)
	}
	return total
}

// matchings enumerates every partial injective assignment of left fork
// copies onto right fork copies (unassigned copies on either side are
// deleted), over memoized pair costs. Exponential in the copy count,
// which stays small in the differential workloads.
func (rd *refDiff) matchings(left, right []*sptree.Node, assigned []int, used map[int]bool) float64 {
	if len(assigned) == len(left) {
		total := 0.0
		for i, j := range assigned {
			if j < 0 {
				total += rd.X(left[i])
			} else {
				total += rd.cost(left[i], right[j])
			}
		}
		for j := range right {
			if !used[j] {
				total += rd.X(right[j])
			}
		}
		return total
	}
	best := rd.matchings(left, right, append(assigned, -1), used)
	for j := range right {
		if used[j] {
			continue
		}
		used[j] = true
		if c := rd.matchings(left, right, append(assigned, j), used); c < best {
			best = c
		}
		used[j] = false
	}
	return best
}

// monotone computes the minimum-cost non-crossing matching of ordered
// loop iterations by the classic quadratic edit-distance DP.
func (rd *refDiff) monotone(left, right []*sptree.Node) float64 {
	m, n := len(left), len(right)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + rd.X(right[j-1])
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] + rd.X(left[i-1])
		for j := 1; j <= n; j++ {
			best := prev[j] + rd.X(left[i-1])
			if c := cur[j-1] + rd.X(right[j-1]); c < best {
				best = c
			}
			if c := prev[j-1] + rd.cost(left[i-1], right[j-1]); c < best {
				best = c
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}
