package naive

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// TestOraclesOnRandomSpecs widens the cross-validation of Algorithms 3
// and 4/6 beyond the Fig. 2 fixture: random specifications with forks
// and loops, random run pairs, three cost models. Sizes stay small so
// the exponential oracles remain tractable.
func TestOraclesOnRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(20240612))
	models := []cost.Model{cost.Unit{}, cost.Length{}, cost.Power{Epsilon: 0.5}}
	params := gen.RunParams{ProbP: 0.7, ProbF: 0.6, MaxF: 2, ProbL: 0.6, MaxL: 2}
	for trial := 0; trial < 30; trial++ {
		sp, err := gen.RandomSpec(gen.SpecConfig{
			Edges:       6 + rng.Intn(10),
			SeriesRatio: []float64{3, 1, 1.0 / 3}[rng.Intn(3)],
			Forks:       rng.Intn(3),
			Loops:       rng.Intn(2),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		if r1.NumEdges() > 40 || r2.NumEdges() > 40 {
			continue // keep the oracles fast
		}
		m := models[trial%len(models)]

		// Algorithm 3 vs explicit enumeration, both runs.
		for _, r := range []*wfrun.Run{r1, r2} {
			want := DeletionOracle(r.Tree, m)
			got := core.DeletionCost(r.Tree, m)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d %s: X mismatch: DP %g, oracle %g\nspec:\n%s\nrun:\n%s",
					trial, m.Name(), got, want, sp.Tree, r.Tree)
			}
		}

		// Algorithm 4/6 vs mapping enumeration.
		del := func(v *sptree.Node) float64 { return core.DeletionCost(v, m) }
		want := MappingOracle(r1.Tree, r2.Tree, del, WOracle(sp, m))
		got, err := core.Distance(r1, r2, m)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d %s: distance mismatch: DP %g, oracle %g\nT1:\n%s\nT2:\n%s",
				trial, m.Name(), got, want, r1.Tree, r2.Tree)
		}

		// And the script must realize the distance on these random
		// specifications too.
		res, err := core.Diff(r1, r2, m)
		if err != nil {
			t.Fatal(err)
		}
		script, final, err := res.Script()
		if err != nil {
			t.Fatalf("trial %d %s: script failed: %v", trial, m.Name(), err)
		}
		if math.Abs(script.TotalCost()-res.Distance) > 1e-9 {
			t.Fatalf("trial %d %s: script cost %g != distance %g",
				trial, m.Name(), script.TotalCost(), res.Distance)
		}
		if !sptree.EquivalentRuns(final, r2.Tree) {
			t.Fatalf("trial %d %s: script did not produce T2", trial, m.Name())
		}
	}
}

// TestDeriveRoundTripOnRandomSpecs checks f″ on random specifications:
// materialize a random run, re-derive the tree from the bare graph
// (with edge references for multigraphs), and compare sizes and
// validity.
func TestDeriveRoundTripOnRandomSpecs(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	params := gen.RunParams{ProbP: 0.7, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}
	for trial := 0; trial < 40; trial++ {
		sp, err := gen.RandomSpec(gen.SpecConfig{
			Edges:       8 + rng.Intn(30),
			SeriesRatio: 1,
			Forks:       rng.Intn(4),
			Loops:       rng.Intn(3),
		}, rng)
		if err != nil {
			t.Fatal(err)
		}
		r, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := wfrun.Derive(sp, r.Graph, r.EdgeRefs())
		if err != nil {
			t.Fatalf("trial %d: derive failed: %v\nspec:\n%s\nrun graph: %s",
				trial, err, sp.Tree, r.Graph)
		}
		if err := r2.Validate(); err != nil {
			t.Fatalf("trial %d: derived run invalid: %v", trial, err)
		}
		if r2.Tree.CountLeaves() != r.Graph.NumEdges()-len(r2.ImplicitEdges) {
			t.Fatalf("trial %d: leaf/edge mismatch", trial)
		}
		// The derived tree and the executed tree represent the same
		// graph, so their distance must be 0 (they may differ in
		// fork factoring, but f″ canonicalizes deterministically and
		// distance-0 must hold between a run and itself re-derived
		// whenever the factorizations coincide; at minimum the
		// distance is well-defined and symmetric).
		d12, err := core.Distance(r, r2, cost.Unit{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		d21, err := core.Distance(r2, r, cost.Unit{})
		if err != nil {
			t.Fatal(err)
		}
		if d12 != d21 {
			t.Fatalf("trial %d: asymmetric distance %g vs %g", trial, d12, d21)
		}
	}
}
