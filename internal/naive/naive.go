// Package naive provides the baselines the paper positions its
// algorithm against: the naive dataflow set-difference diff (which
// suffices only when module names do not repeat, Section I), explicit
// exponential-time oracles for the subtree-deletion cost and the
// minimum-cost well-formed mapping (used to cross-validate the
// polynomial algorithms on small instances), and the bipartite-clique
// reduction of Theorem 1 demonstrating NP-hardness on general flow
// networks.
package naive

import (
	"fmt"
	"math"

	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// DataflowDiff computes the naive difference of two runs as plain
// node/edge set differences keyed by label. It is only meaningful for
// dataflow executions where every module executes at most once; it
// fails when a label repeats in either run.
type DataflowDiffResult struct {
	// OnlyIn1 and OnlyIn2 hold the label pairs of edges present in
	// exactly one run.
	OnlyIn1, OnlyIn2 [][2]string
	// NodesOnlyIn1 and NodesOnlyIn2 hold labels of modules executed
	// in exactly one run.
	NodesOnlyIn1, NodesOnlyIn2 []string
}

// DataflowDiff performs the immediate label pairing possible for
// dataflow runs.
func DataflowDiff(r1, r2 *graph.Graph) (*DataflowDiffResult, error) {
	if !r1.UniqueLabels() || !r2.UniqueLabels() {
		return nil, fmt.Errorf("naive: dataflow diff requires unique labels; use the SP differencing algorithm for runs with repeated modules")
	}
	res := &DataflowDiffResult{}
	labels1 := map[string]bool{}
	labels2 := map[string]bool{}
	for _, n := range r1.Nodes() {
		labels1[r1.Label(n)] = true
	}
	for _, n := range r2.Nodes() {
		labels2[r2.Label(n)] = true
	}
	for l := range labels1 {
		if !labels2[l] {
			res.NodesOnlyIn1 = append(res.NodesOnlyIn1, l)
		}
	}
	for l := range labels2 {
		if !labels1[l] {
			res.NodesOnlyIn2 = append(res.NodesOnlyIn2, l)
		}
	}
	edges1 := map[[2]string]bool{}
	edges2 := map[[2]string]bool{}
	for _, e := range r1.Edges() {
		edges1[[2]string{r1.Label(e.From), r1.Label(e.To)}] = true
	}
	for _, e := range r2.Edges() {
		edges2[[2]string{r2.Label(e.From), r2.Label(e.To)}] = true
	}
	for e := range edges1 {
		if !edges2[e] {
			res.OnlyIn1 = append(res.OnlyIn1, e)
		}
	}
	for e := range edges2 {
		if !edges1[e] {
			res.OnlyIn2 = append(res.OnlyIn2, e)
		}
	}
	return res, nil
}

// DeletionOracle computes the minimum cost of deleting a run subtree
// by explicit enumeration of every reduction choice: which child each
// true P/F/L node keeps, and every split of leaves across S children.
// Exponential in the worst case; use only on small trees to
// cross-check Algorithm 3.
func DeletionOracle(v *sptree.Node, m cost.Model) float64 {
	red := reductionSet(v, m)
	best := math.Inf(1)
	for l, c := range red {
		if cand := c + m.PathCost(l, v.Src, v.Dst); cand < best {
			best = cand
		}
	}
	return best
}

// reductionSet maps achievable branch-free leaf counts of T[v] to the
// minimum cost of reaching them.
func reductionSet(v *sptree.Node, m cost.Model) map[int]float64 {
	switch v.Type {
	case sptree.Q:
		return map[int]float64{1: 0}
	case sptree.P, sptree.F, sptree.L:
		out := map[int]float64{}
		for i, keep := range v.Children {
			others := 0.0
			for j, c := range v.Children {
				if j != i {
					others += DeletionOracle(c, m)
				}
			}
			for l, c := range reductionSet(keep, m) {
				if cur, ok := out[l]; !ok || c+others < cur {
					out[l] = c + others
				}
			}
		}
		return out
	case sptree.S:
		out := map[int]float64{0: 0}
		for _, c := range v.Children {
			next := map[int]float64{}
			childSet := reductionSet(c, m)
			for l0, c0 := range out {
				for l1, c1 := range childSet {
					if cur, ok := next[l0+l1]; !ok || c0+c1 < cur {
						next[l0+l1] = c0 + c1
					}
				}
			}
			out = next
		}
		delete(out, 0)
		return out
	}
	return nil
}

// MappingOracle computes the minimum cost γ(M) over all well-formed
// mappings from T1[v1] to T2[v2] by explicit enumeration: every
// partial matching of F children, every monotone matching of L
// children, every keep/drop choice of P branch pairs. del supplies
// X(·) for each side; w supplies W_TG for unstable P pairs.
// Exponential; use only on small trees to cross-check Algorithm 4/6.
func MappingOracle(v1, v2 *sptree.Node, del func(*sptree.Node) float64, w func(p, c *sptree.Node) float64) float64 {
	if v1.Spec != v2.Spec {
		panic("naive: mapping oracle on non-homologous nodes")
	}
	switch v1.Type {
	case sptree.Q:
		return 0

	case sptree.S:
		total := 0.0
		for i := range v1.Children {
			total += MappingOracle(v1.Children[i], v2.Children[i], del, w)
		}
		return total

	case sptree.P:
		if len(v1.Children) == 1 && len(v2.Children) == 1 &&
			v1.Children[0].Spec == v2.Children[0].Spec {
			c1, c2 := v1.Children[0], v2.Children[0]
			mapped := MappingOracle(c1, c2, del, w)
			swap := del(c1) + del(c2) + 2*w(v1.Spec, c1.Spec)
			return math.Min(mapped, swap)
		}
		by1 := map[*sptree.Node]*sptree.Node{}
		for _, c := range v1.Children {
			by1[c.Spec] = c
		}
		total := 0.0
		for _, c2 := range v2.Children {
			if c1, ok := by1[c2.Spec]; ok {
				total += math.Min(MappingOracle(c1, c2, del, w), del(c1)+del(c2))
				delete(by1, c2.Spec)
			} else {
				total += del(c2)
			}
		}
		for _, c1 := range by1 {
			total += del(c1)
		}
		return total

	case sptree.F:
		return enumerateMatchings(v1.Children, v2.Children, nil, map[int]bool{}, del, w)

	case sptree.L:
		return enumerateMonotone(v1.Children, v2.Children, 0, 0, del, w)
	}
	panic("naive: unknown node type")
}

// enumerateMatchings tries every assignment of left children to right
// children or deletion.
func enumerateMatchings(left, right []*sptree.Node, assigned []int, used map[int]bool,
	del func(*sptree.Node) float64, w func(p, c *sptree.Node) float64) float64 {
	if len(assigned) == len(left) {
		total := 0.0
		for i, j := range assigned {
			if j < 0 {
				total += del(left[i])
			} else {
				total += MappingOracle(left[i], right[j], del, w)
			}
		}
		for j := range right {
			if !used[j] {
				total += del(right[j])
			}
		}
		return total
	}
	best := enumerateMatchings(left, right, append(assigned, -1), used, del, w)
	for j := range right {
		if used[j] {
			continue
		}
		used[j] = true
		if c := enumerateMatchings(left, right, append(assigned, j), used, del, w); c < best {
			best = c
		}
		used[j] = false
	}
	return best
}

// enumerateMonotone tries every non-crossing matching.
func enumerateMonotone(left, right []*sptree.Node, i, j int,
	del func(*sptree.Node) float64, w func(p, c *sptree.Node) float64) float64 {
	if i == len(left) {
		total := 0.0
		for ; j < len(right); j++ {
			total += del(right[j])
		}
		return total
	}
	if j == len(right) {
		total := 0.0
		for ; i < len(left); i++ {
			total += del(left[i])
		}
		return total
	}
	best := enumerateMonotone(left, right, i+1, j, del, w) + del(left[i])
	if c := enumerateMonotone(left, right, i, j+1, del, w) + del(right[j]); c < best {
		best = c
	}
	if c := enumerateMonotone(left, right, i+1, j+1, del, w) + MappingOracle(left[i], right[j], del, w); c < best {
		best = c
	}
	return best
}

// WOracle computes W_TG(a, b) directly from the specification: the
// minimum insertion cost over branch-free executions of the other
// children of a.
func WOracle(sp *spec.Spec, m cost.Model) func(a, b *sptree.Node) float64 {
	return func(a, b *sptree.Node) float64 {
		best := math.Inf(1)
		for _, c := range a.Children {
			if c == b {
				continue
			}
			for _, l := range sp.AchievableLengths(c) {
				if cand := m.PathCost(l, a.Src, a.Dst); cand < best {
					best = cand
				}
			}
		}
		return best
	}
}
