package naive

import (
	"math"

	"repro/internal/evolve"
	"repro/internal/spec"
	"repro/internal/sptree"
)

// SpecDistance is the naive reference implementation of the
// spec-evolution edit distance of package evolve: the same recurrence
// (match with Rename/Retype, delete-root, insert-root, replace; child
// forests aligned non-crossing for ordered parents and by minimum-cost
// matching otherwise), implemented with pointer-keyed memo maps,
// explicit enumeration of every injective child assignment in the
// unordered case, and its own quadratic DP in the ordered case. It
// shares no code with evolve — no flat indexing, no arenas, no
// match.Scratch — so agreement between the two on randomized spec
// pairs is evidence the engine's optimizations preserve the distance.
//
// The unordered case is exponential in the child count; keep reference
// specs small (the differential suite stays under ~20 tree nodes).
func SpecDistance(a, b *spec.Spec, c evolve.Costs) float64 {
	rd := &specRef{
		c:   c,
		del: map[*sptree.Node]float64{},
		d:   map[[2]*sptree.Node]float64{},
	}
	return rd.dist(a.Tree, b.Tree)
}

type specRef struct {
	c   evolve.Costs
	del map[*sptree.Node]float64
	d   map[[2]*sptree.Node]float64
}

// delCost prices deleting (or inserting) the whole subtree.
func (rd *specRef) delCost(v *sptree.Node) float64 {
	if got, ok := rd.del[v]; ok {
		return got
	}
	var out float64
	if v.Type == sptree.Q {
		out = rd.c.Leaf
	} else {
		out = rd.c.Node
		for _, ch := range v.Children {
			out += rd.delCost(ch)
		}
	}
	rd.del[v] = out
	return out
}

func specOrdered(t sptree.Type) bool { return t == sptree.S || t == sptree.L }

func (rd *specRef) dist(v1, v2 *sptree.Node) float64 {
	key := [2]*sptree.Node{v1, v2}
	if got, ok := rd.d[key]; ok {
		return got
	}
	best := math.Inf(1)

	// Match v1 to v2.
	switch {
	case v1.Type == sptree.Q && v2.Type == sptree.Q:
		rel := 0.0
		if v1.Src != v2.Src || v1.Dst != v2.Dst {
			rel = rd.c.Rename
		}
		best = rel
	case v1.Type != sptree.Q && v2.Type != sptree.Q:
		rel := 0.0
		if v1.Type != v2.Type {
			rel = rd.c.Retype
		}
		var forest float64
		if specOrdered(v1.Type) && specOrdered(v2.Type) {
			forest = rd.orderedForest(v1.Children, v2.Children)
		} else {
			forest = rd.unorderedForest(v1.Children, v2.Children, nil, map[int]bool{})
		}
		best = rel + forest
	}

	// Delete v1's root, promoting one child.
	if v1.Type != sptree.Q {
		sum := 0.0
		for _, ch := range v1.Children {
			sum += rd.delCost(ch)
		}
		for _, ch := range v1.Children {
			if cand := rd.c.Node + sum - rd.delCost(ch) + rd.dist(ch, v2); cand < best {
				best = cand
			}
		}
	}
	// Insert v2's root.
	if v2.Type != sptree.Q {
		sum := 0.0
		for _, ch := range v2.Children {
			sum += rd.delCost(ch)
		}
		for _, ch := range v2.Children {
			if cand := rd.c.Node + sum - rd.delCost(ch) + rd.dist(v1, ch); cand < best {
				best = cand
			}
		}
	}
	// Replace the whole subtree.
	if cand := rd.delCost(v1) + rd.delCost(v2); cand < best {
		best = cand
	}

	rd.d[key] = best
	return best
}

// orderedForest is the classic quadratic alignment DP over ordered
// child sequences.
func (rd *specRef) orderedForest(left, right []*sptree.Node) float64 {
	m, n := len(left), len(right)
	prev := make([]float64, n+1)
	cur := make([]float64, n+1)
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + rd.delCost(right[j-1])
	}
	for i := 1; i <= m; i++ {
		cur[0] = prev[0] + rd.delCost(left[i-1])
		for j := 1; j <= n; j++ {
			best := prev[j] + rd.delCost(left[i-1])
			if c := cur[j-1] + rd.delCost(right[j-1]); c < best {
				best = c
			}
			if c := prev[j-1] + rd.dist(left[i-1], right[j-1]); c < best {
				best = c
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[n]
}

// unorderedForest enumerates every partial injective assignment of
// left children onto right children; unassigned children on either
// side are deleted/inserted.
func (rd *specRef) unorderedForest(left, right []*sptree.Node, assigned []int, used map[int]bool) float64 {
	if len(assigned) == len(left) {
		total := 0.0
		for i, j := range assigned {
			if j < 0 {
				total += rd.delCost(left[i])
			} else {
				total += rd.dist(left[i], right[j])
			}
		}
		for j := range right {
			if !used[j] {
				total += rd.delCost(right[j])
			}
		}
		return total
	}
	best := rd.unorderedForest(left, right, append(assigned, -1), used)
	for j := range right {
		if used[j] {
			continue
		}
		used[j] = true
		if c := rd.unorderedForest(left, right, append(assigned, j), used); c < best {
			best = c
		}
		used[j] = false
	}
	return best
}
