package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Space is a metric cohort answering queries through lower bounds: the
// contract internal/metricindex's Cohort satisfies. Bound must never
// exceed Distance (after the implementation's own float slack), and
// Distance must agree bitwise with the distances a dense matrix of the
// same cohort would hold — that is what lets the Indexed* queries
// return byte-identical answers to their matrix counterparts while
// skipping most exact evaluations. Pruned receives the count of
// candidate pairs a query eliminated without calling Distance, for the
// implementation's instrumentation.
type Space interface {
	Len() int
	Bound(i, j int) float64
	Distance(i, j int) (float64, error)
	Pruned(n int64)
}

// Projector is an optional Space refinement: a contractive 1-D
// projection (|Proj(i) - Proj(j)| ≤ d(i, j)). Queries then enumerate
// candidates in projection order around the query point and stop
// outright once the projection gap alone exceeds their pruning radius,
// instead of bound-testing all n candidates.
type Projector interface {
	Proj(i int) float64
}

// projSlack mirrors the float-safety slack a Space applies to its
// bounds: projection gaps are lower bounds derived by the same
// triangle argument, so they get the same conservative haircut before
// being compared against exact distances.
const projSlack = 1e-9

func loosenGap(b float64) float64 {
	b -= projSlack * (1 + b)
	if b < 0 {
		return 0
	}
	return b
}

// projOrder is a cohort's items sorted by projection, shared across
// the n queries of an outlier scan.
type projOrder struct {
	order []int     // item indices, ascending by projection
	pos   []int     // pos[item] = index into order
	proj  []float64 // proj[item]
}

func buildProjOrder(sp Space) *projOrder {
	pr, ok := sp.(Projector)
	if !ok {
		return nil
	}
	n := sp.Len()
	po := &projOrder{
		order: make([]int, n),
		pos:   make([]int, n),
		proj:  make([]float64, n),
	}
	for i := 0; i < n; i++ {
		po.order[i] = i
		po.proj[i] = pr.Proj(i)
	}
	sort.SliceStable(po.order, func(a, b int) bool { return po.proj[po.order[a]] < po.proj[po.order[b]] })
	for p, item := range po.order {
		po.pos[item] = p
	}
	return po
}

// knnState is the current top-k of one nearest-neighbor query, kept
// ascending by (distance, index) — exactly the order Nearest sorts by,
// so the final slice is the dense answer verbatim.
type knnState struct {
	top []Neighbor
	k   int
}

func (s *knnState) full() bool { return len(s.top) == s.k }

func (s *knnState) worst() Neighbor { return s.top[len(s.top)-1] }

// prunable reports whether a candidate with lower bound lb can be
// discarded: with a full top-k of worst entry (wd, wi), the candidate
// j's true pair (d_j, j) is lexicographically ≥ (lb, j); when that is
// strictly beyond (wd, wi) the candidate can never enter the final
// top-k (indices are unique, so the comparison is strict whenever
// lb > wd, or lb == wd with j on the far side of wi).
func (s *knnState) prunable(lb float64, j int) bool {
	if !s.full() {
		return false
	}
	w := s.worst()
	return lb > w.Distance || (lb == w.Distance && j > w.Index)
}

func (s *knnState) add(d float64, j int) {
	nb := Neighbor{Index: j, Distance: d}
	if s.full() {
		if w := s.worst(); nb.Distance > w.Distance || (nb.Distance == w.Distance && nb.Index > w.Index) {
			return
		}
		s.top = s.top[:len(s.top)-1]
	}
	at := sort.Search(len(s.top), func(p int) bool {
		t := s.top[p]
		return t.Distance > nb.Distance || (t.Distance == nb.Distance && t.Index > nb.Index)
	})
	s.top = append(s.top, Neighbor{})
	copy(s.top[at+1:], s.top[at:])
	s.top[at] = nb
}

// indexedNearest answers one kNN query over sp, using po (may be nil)
// for projection-ordered enumeration. k must already be clamped to
// [1, n-1].
func indexedNearest(sp Space, po *projOrder, i, k int) ([]Neighbor, error) {
	n := sp.Len()
	st := &knnState{top: make([]Neighbor, 0, k), k: k}
	consider := func(j int) error {
		if j == i {
			return nil
		}
		if st.prunable(sp.Bound(i, j), j) {
			sp.Pruned(1)
			return nil
		}
		d, err := sp.Distance(i, j)
		if err != nil {
			return err
		}
		st.add(d, j)
		return nil
	}
	if po == nil {
		for j := 0; j < n; j++ {
			if err := consider(j); err != nil {
				return nil, err
			}
		}
		return st.top, nil
	}

	// Expand outward from the query's projection position, nearest
	// projection first. Once the top-k is full, a side whose next
	// candidate's (slacked) projection gap strictly exceeds the current
	// worst distance holds no further contenders at all — the gap only
	// grows outward — so the whole remainder is pruned in bulk. At
	// exact equality the candidate could still tie into the top-k by
	// index, so equality keeps scanning (the per-candidate bound check
	// settles it).
	qp := po.proj[i]
	lo, hi := po.pos[i]-1, po.pos[i]+1
	outOfReach := func(p int) bool {
		if !st.full() {
			return false
		}
		return loosenGap(math.Abs(po.proj[po.order[p]]-qp)) > st.worst().Distance
	}
	for lo >= 0 || hi < n {
		fromLow := hi >= n ||
			(lo >= 0 && math.Abs(po.proj[po.order[lo]]-qp) <= math.Abs(po.proj[po.order[hi]]-qp))
		p := hi
		if fromLow {
			p = lo
		}
		if outOfReach(p) {
			// The gap only grows outward, so everything from p to the
			// end of its side is out of reach too.
			if fromLow {
				sp.Pruned(int64(p + 1))
				lo = -1
			} else {
				sp.Pruned(int64(n - p))
				hi = n
			}
			continue
		}
		if fromLow {
			lo--
		} else {
			hi++
		}
		if err := consider(po.order[p]); err != nil {
			return nil, err
		}
	}
	return st.top, nil
}

// IndexedNearest answers Nearest over a metric index view instead of a
// dense matrix: the k items closest to item i, ascending by distance
// with ties toward lower indices, byte-identical to the dense answer.
// Candidates whose lower bound already places them beyond the running
// k-th neighbor are never exactly diffed. k is clamped to [0, n-1].
func IndexedNearest(sp Space, i, k int) ([]Neighbor, error) {
	n := sp.Len()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty cohort")
	}
	if i < 0 || i >= n {
		return nil, fmt.Errorf("cluster: item %d outside cohort of %d items", i, n)
	}
	if k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return nil, nil
	}
	return indexedNearest(sp, buildProjOrder(sp), i, k)
}

// IndexedOutliers answers Outliers over a metric index view: every
// item scored by mean distance to its k nearest neighbors, sorted
// most-anomalous first. Scores and order are byte-identical to the
// dense path (the k nearest distances are summed in the same ascending
// order); only MeanAll, which would force all n-1 exact distances per
// item, is left zero. k is clamped to [1, n-1]; a single-item cohort
// yields one zero score.
func IndexedOutliers(sp Space, k int) ([]OutlierScore, error) {
	n := sp.Len()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty cohort")
	}
	if n == 1 {
		return []OutlierScore{{Index: 0}}, nil
	}
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	po := buildProjOrder(sp)
	out := make([]OutlierScore, n)
	for i := 0; i < n; i++ {
		nb, err := indexedNearest(sp, po, i, k)
		if err != nil {
			return nil, err
		}
		sum := 0.0
		for _, v := range nb {
			sum += v.Distance
		}
		out[i] = OutlierScore{Index: i, Score: sum / float64(k)}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	return out, nil
}

// SampleOptions tunes SampledKMedoids. The zero value picks a sample
// of min(n, 40+2k) items (the classic CLARA sizing) and 2 restarts.
type SampleOptions struct {
	// SampleSize is the number of items PAM runs on per restart;
	// <= 0 means min(n, 40+2k).
	SampleSize int
	// Restarts is the number of independent samples tried; <= 0
	// means 2. The restart with the lowest exact full-cohort objective
	// wins.
	Restarts int
}

// SampledKMedoids clusters a cohort without a full distance matrix, in
// the CLARA/CLARANS tradition: each restart draws a deterministic
// random sample, runs exact PAM on the sample's (memoized) distance
// submatrix, then assigns the whole cohort to the sample's medoids
// with bound-guided pruning — per item, candidate medoids are tried in
// ascending-bound order and abandoned once a bound exceeds the best
// exact distance so far. The restart whose full-cohort objective is
// lowest wins. Cost is the exact PAM objective of the returned
// medoids; Silhouette is reported as 0 (it would need all pairwise
// distances, which is the matrix this function exists to avoid).
// Results are deterministic for a fixed seed.
func SampledKMedoids(ctx context.Context, sp Space, k int, seed int64, opts SampleOptions) (*Clustering, error) {
	n := sp.Len()
	if n == 0 {
		return nil, fmt.Errorf("cluster: empty cohort")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d outside [1, %d]", k, n)
	}
	s := opts.SampleSize
	if s <= 0 {
		s = 40 + 2*k
	}
	if s > n {
		s = n
	}
	if s < k {
		s = k
	}
	restarts := opts.Restarts
	if restarts <= 0 {
		restarts = 2
	}

	// memo holds exact distances across restarts keyed by ordered pair,
	// so overlapping samples and repeated medoids never re-diff.
	memo := map[[2]int]float64{}
	dist := func(i, j int) (float64, error) {
		if i == j {
			return 0, nil
		}
		key := [2]int{i, j}
		if i > j {
			key = [2]int{j, i}
		}
		if d, ok := memo[key]; ok {
			return d, nil
		}
		d, err := sp.Distance(i, j)
		if err != nil {
			return 0, err
		}
		memo[key] = d
		return d, nil
	}

	var best *Clustering
	for r := 0; r < restarts; r++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(r)))
		var sample []int
		if s == n {
			sample = make([]int, n)
			for i := range sample {
				sample[i] = i
			}
		} else {
			sample = append([]int(nil), rng.Perm(n)[:s]...)
			sort.Ints(sample)
		}

		sub := make([][]float64, s)
		for a := range sub {
			sub[a] = make([]float64, s)
		}
		for a := 0; a < s; a++ {
			for b := a + 1; b < s; b++ {
				d, err := dist(sample[a], sample[b])
				if err != nil {
					return nil, err
				}
				sub[a][b], sub[b][a] = d, d
			}
		}
		cl, err := KMedoidsContext(ctx, sub, k, seed+int64(r))
		if err != nil {
			return nil, err
		}
		medoids := make([]int, k)
		for c, m := range cl.Medoids {
			medoids[c] = sample[m]
		}

		assign := make([]int, n)
		cost := 0.0
		for i := 0; i < n; i++ {
			if i%256 == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			d, c, err := nearestMedoid(sp, dist, medoids, i)
			if err != nil {
				return nil, err
			}
			assign[i] = c
			cost += d
		}
		if best == nil || cost < best.Cost {
			best = &Clustering{
				K:          k,
				Medoids:    medoids,
				Assign:     assign,
				Cost:       cost,
				Iterations: cl.Iterations,
			}
		}
	}
	best.Medoids, best.Assign = canonicalClusters(best.Medoids, best.Assign)
	return best, nil
}

// nearestMedoid finds item i's closest medoid exactly while pruning:
// medoids are tried in ascending lower-bound order and the scan stops
// once the next bound strictly exceeds the best exact distance found
// (a bound equal to the best could still win its tie by list position,
// so equality keeps evaluating). Ties on exact distance resolve toward
// the earlier medoid in the list, matching assignAll.
func nearestMedoid(sp Space, dist func(int, int) (float64, error), medoids []int, i int) (float64, int, error) {
	type cand struct {
		c  int // medoid list position
		lb float64
	}
	cands := make([]cand, len(medoids))
	for c, m := range medoids {
		cands[c] = cand{c: c, lb: sp.Bound(i, m)}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].lb < cands[b].lb })
	bestD, bestC := math.Inf(1), -1
	for at, cd := range cands {
		if bestC >= 0 && cd.lb > bestD {
			sp.Pruned(int64(len(cands) - at))
			break
		}
		d, err := dist(i, medoids[cd.c])
		if err != nil {
			return 0, 0, err
		}
		if d < bestD || (d == bestD && cd.c < bestC) {
			bestD, bestC = d, cd.c
		}
	}
	return bestD, bestC, nil
}
