package cluster

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// euclidSpace is a Space over 2-D points: exact distances are
// Euclidean, the lower bound is the triangle gap against point 0 as
// the single landmark. A genuine metric with nontrivial (non-tight)
// bounds, so pruning and exactness are both exercised.
type euclidSpace struct {
	pts    [][2]float64
	lm     []float64 // distance to point 0
	dcalls int
	pruned int64
}

func newEuclidSpace(pts [][2]float64) *euclidSpace {
	s := &euclidSpace{pts: pts, lm: make([]float64, len(pts))}
	for i := range pts {
		s.lm[i] = euclid(pts[i], pts[0])
	}
	return s
}

func euclid(a, b [2]float64) float64 {
	return math.Hypot(a[0]-b[0], a[1]-b[1])
}

func (s *euclidSpace) Len() int { return len(s.pts) }

func (s *euclidSpace) Bound(i, j int) float64 {
	if i == j {
		return 0
	}
	return loosenGap(math.Abs(s.lm[i] - s.lm[j]))
}

func (s *euclidSpace) Distance(i, j int) (float64, error) {
	if i != j {
		s.dcalls++
	}
	return euclid(s.pts[i], s.pts[j]), nil
}

func (s *euclidSpace) Pruned(n int64) { s.pruned += n }

// projSpace adds the contractive projection (the landmark distance
// itself) so the enumeration path is exercised too.
type projSpace struct{ *euclidSpace }

func (s projSpace) Proj(i int) float64 { return s.lm[i] }

// clusteredPoints draws points around a few well-separated centers.
func clusteredPoints(n int, rng *rand.Rand) [][2]float64 {
	centers := [][2]float64{{0, 0}, {40, 5}, {10, 60}}
	pts := make([][2]float64, n)
	for i := range pts {
		c := centers[rng.Intn(len(centers))]
		pts[i] = [2]float64{c[0] + rng.Float64()*3, c[1] + rng.Float64()*3}
	}
	return pts
}

func denseFrom(s *euclidSpace) [][]float64 {
	n := s.Len()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			d[i][j] = euclid(s.pts[i], s.pts[j])
		}
	}
	return d
}

// TestIndexedNearestMatchesDense: for every query item and several k,
// the index-guided kNN answer equals Nearest over the dense matrix
// exactly — with and without the projection fast path — while calling
// Distance on fewer pairs than the dense row holds.
func TestIndexedNearestMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := clusteredPoints(40, rng)
	d := denseFrom(newEuclidSpace(pts))
	n := len(pts)
	for _, k := range []int{1, 3, 7, n - 1} {
		for i := 0; i < n; i++ {
			want, err := Nearest(d, i, k)
			if err != nil {
				t.Fatal(err)
			}
			bo := newEuclidSpace(pts)
			got, err := IndexedNearest(bo, i, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("bound-only i=%d k=%d:\n got %v\nwant %v", i, k, got, want)
			}
			pr := newEuclidSpace(pts)
			got2, err := IndexedNearest(projSpace{pr}, i, k)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got2, want) {
				t.Fatalf("projected i=%d k=%d:\n got %v\nwant %v", i, k, got2, want)
			}
			// Candidate accounting: every non-query item is either
			// exactly evaluated or counted pruned, never both.
			if bo.dcalls+int(bo.pruned) != n-1 {
				t.Fatalf("bound-only accounting: %d diffs + %d pruned != %d", bo.dcalls, bo.pruned, n-1)
			}
			if pr.dcalls+int(pr.pruned) != n-1 {
				t.Fatalf("projected accounting: %d diffs + %d pruned != %d", pr.dcalls, pr.pruned, n-1)
			}
		}
	}
	// On a clustered cohort with small k the bounds must actually
	// prune: re-run one query and demand fewer diffs than the full row.
	s := newEuclidSpace(pts)
	if _, err := IndexedNearest(projSpace{s}, 0, 3); err != nil {
		t.Fatal(err)
	}
	if s.dcalls >= n-1 || s.pruned == 0 {
		t.Fatalf("no pruning: %d diffs, %d pruned of %d candidates", s.dcalls, s.pruned, n-1)
	}
}

// TestIndexedOutliersMatchesDense: scores and ranking are
// byte-identical to the dense path; only MeanAll is zero.
func TestIndexedOutliersMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := clusteredPoints(30, rng)
	// One genuine outlier far from every center.
	pts = append(pts, [2]float64{200, 200})
	s := newEuclidSpace(pts)
	d := denseFrom(s)
	for _, k := range []int{1, 3, 5} {
		want, err := Outliers(d, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := IndexedOutliers(projSpace{newEuclidSpace(pts)}, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("k=%d: %d scores, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i].Index != want[i].Index || got[i].Score != want[i].Score {
				t.Fatalf("k=%d rank %d: got %+v, want %+v", k, i, got[i], want[i])
			}
			if got[i].MeanAll != 0 {
				t.Fatalf("indexed MeanAll should be 0, got %g", got[i].MeanAll)
			}
		}
		if got[0].Index != len(pts)-1 {
			t.Fatalf("planted outlier not ranked first: %+v", got[0])
		}
	}
}

func TestIndexedNearestEdgeCases(t *testing.T) {
	s := newEuclidSpace([][2]float64{{0, 0}, {1, 0}, {5, 0}})
	if _, err := IndexedNearest(newEuclidSpace(nil), 0, 1); err == nil {
		t.Fatal("empty cohort should fail")
	}
	if _, err := IndexedNearest(s, -1, 1); err == nil {
		t.Fatal("negative item should fail")
	}
	if _, err := IndexedNearest(s, 3, 1); err == nil {
		t.Fatal("out-of-range item should fail")
	}
	if nn, err := IndexedNearest(s, 0, 0); err != nil || nn != nil {
		t.Fatalf("k=0: %v %v", nn, err)
	}
	nn, err := IndexedNearest(s, 0, 99)
	if err != nil || len(nn) != 2 {
		t.Fatalf("k clamp: %v %v", nn, err)
	}
	if _, err := IndexedOutliers(newEuclidSpace(nil), 1); err == nil {
		t.Fatal("empty outliers should fail")
	}
	one, err := IndexedOutliers(newEuclidSpace([][2]float64{{0, 0}}), 3)
	if err != nil || len(one) != 1 || one[0].Score != 0 {
		t.Fatalf("singleton outliers: %v %v", one, err)
	}
}

// TestSampledKMedoidsFullSample: with the sample covering the whole
// cohort, the sampled objective must be within 5% of exact full PAM
// (restart 0 runs exact PAM on the full matrix, so in practice it
// matches), deterministic call over call.
func TestSampledKMedoidsFullSample(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pts := clusteredPoints(30, rng)
	s := newEuclidSpace(pts)
	d := denseFrom(s)
	pam, err := KMedoids(d, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SampledKMedoids(context.Background(), projSpace{s}, 3, 11, SampleOptions{SampleSize: len(pts)})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost > pam.Cost*1.05+1e-9 {
		t.Fatalf("sampled objective %g not within 5%% of PAM %g", got.Cost, pam.Cost)
	}
	if got.K != 3 || len(got.Medoids) != 3 || len(got.Assign) != len(pts) || got.Silhouette != 0 {
		t.Fatalf("shape: %+v", got)
	}
	if !sortedAscending(got.Medoids) {
		t.Fatalf("medoids not canonical: %v", got.Medoids)
	}
	for c, m := range got.Medoids {
		if got.Assign[m] != c {
			t.Fatalf("medoid %d assigned to %d, not %d", m, got.Assign[m], c)
		}
	}
	again, err := SampledKMedoids(context.Background(), projSpace{newEuclidSpace(pts)}, 3, 11, SampleOptions{SampleSize: len(pts)})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("nondeterministic:\n%+v\n%+v", got, again)
	}
}

// TestSampledKMedoidsSubsample: a genuine subsample still recovers
// well-separated blobs and reports the exact objective of its medoids.
func TestSampledKMedoidsSubsample(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	pts := clusteredPoints(120, rng)
	s := newEuclidSpace(pts)
	got, err := SampledKMedoids(context.Background(), projSpace{s}, 3, 9, SampleOptions{SampleSize: 60, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the reported cost against an independent recomputation.
	cost := 0.0
	for i := range pts {
		best := math.Inf(1)
		for _, m := range got.Medoids {
			if d := euclid(pts[i], pts[m]); d < best {
				best = d
			}
		}
		cost += best
	}
	if math.Abs(cost-got.Cost) > 1e-9 {
		t.Fatalf("reported cost %g, recomputed %g", got.Cost, cost)
	}
	// Compared against exact PAM on the full matrix the subsampled
	// objective stays close on clearly clustered data.
	pam, err := KMedoids(denseFrom(s), 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost > pam.Cost*1.05+1e-9 {
		t.Fatalf("subsampled objective %g strays beyond 5%% of PAM %g", got.Cost, pam.Cost)
	}
}

func TestSampledKMedoidsErrors(t *testing.T) {
	s := newEuclidSpace([][2]float64{{0, 0}, {1, 0}})
	if _, err := SampledKMedoids(context.Background(), newEuclidSpace(nil), 1, 1, SampleOptions{}); err == nil {
		t.Fatal("empty cohort should fail")
	}
	if _, err := SampledKMedoids(context.Background(), s, 0, 1, SampleOptions{}); err == nil {
		t.Fatal("k=0 should fail")
	}
	if _, err := SampledKMedoids(context.Background(), s, 3, 1, SampleOptions{}); err == nil {
		t.Fatal("k>n should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SampledKMedoids(ctx, s, 1, 1, SampleOptions{}); err != context.Canceled {
		t.Fatalf("cancelled context: %v", err)
	}
}

func sortedAscending(xs []int) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] >= xs[i] {
			return false
		}
	}
	return true
}

// countdownCtx reports cancellation only after a fixed number of Err
// polls — the instrument for catching mid-computation cancellation
// points without any timing dependence.
type countdownCtx struct {
	context.Context
	polls int
	after int
}

func (c *countdownCtx) Err() error {
	c.polls++
	if c.polls > c.after {
		return context.Canceled
	}
	return nil
}

// TestKMedoidsContextCancelsMidSwap: the regression test for the SWAP
// phase's cancellation point. The context stays live through the
// first medoid row of the first SWAP round and cancels on the next
// poll, so the run must abort mid-SWAP with ctx.Err() — if the poll
// inside the medoid loop is ever removed, the countdown is never
// consumed and the call wrongly succeeds.
func TestKMedoidsContextCancelsMidSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := twoBlobs(14, 6, rng)
	ctx := &countdownCtx{Context: context.Background(), after: 1}
	cl, err := KMedoidsContext(ctx, d, 3, 1)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled mid-SWAP, got cl=%v err=%v", cl, err)
	}
	if ctx.polls < 2 {
		t.Fatalf("SWAP polled the context %d times, expected at least 2", ctx.polls)
	}
	// Same input without cancellation still converges (and KMedoids
	// remains the uncancellable façade over the same implementation).
	if _, err := KMedoids(d, 3, 1); err != nil {
		t.Fatal(err)
	}
}
