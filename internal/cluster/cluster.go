// Package cluster answers the paper's cohort-level questions over a
// computed edit-distance matrix: which executions of a workflow behave
// alike (k-medoids partitioning), which are anomalous (distance-based
// outlier scoring), and which stored runs most resemble a given one
// (k-nearest-neighbor queries). The paper motivates provenance
// differencing precisely with such questions — "identify parameter
// settings and approaches which lead to good biological results"
// (Section I) — and its edit distance is a metric, so medoids are
// genuinely the most representative executions of their cluster.
//
// All functions consume a symmetric pairwise distance matrix (the
// analysis package computes and incrementally maintains one per
// cohort); none of them differences runs themselves, so they run in
// time polynomial in the cohort size regardless of run sizes.
package cluster

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Clustering is the result of a k-medoids (PAM) partitioning.
type Clustering struct {
	// K is the number of clusters.
	K int
	// Medoids holds the item index of each cluster's medoid, sorted
	// ascending (cluster c is "the cluster around Medoids[c]").
	Medoids []int
	// Assign maps each item index to its cluster number in [0, K).
	Assign []int
	// Cost is the total distance of every item to its medoid — the
	// PAM objective the SWAP phase minimizes.
	Cost float64
	// Silhouette is the mean silhouette coefficient over all items
	// (0 when K == 1 or every cluster is a singleton): a [-1, 1]
	// cohesion/separation score useful for choosing K.
	Silhouette float64
	// Iterations counts SWAP rounds until convergence.
	Iterations int
}

// Members returns the item indices of cluster c, ascending.
func (c *Clustering) Members(cl int) []int {
	var out []int
	for i, a := range c.Assign {
		if a == cl {
			out = append(out, i)
		}
	}
	return out
}

// validateMatrix rejects matrices the algorithms cannot run on:
// non-square, asymmetric beyond float tolerance, negative or NaN
// entries, or nonzero diagonals.
func validateMatrix(d [][]float64) error {
	n := len(d)
	if n == 0 {
		return fmt.Errorf("cluster: empty distance matrix")
	}
	for i, row := range d {
		if len(row) != n {
			return fmt.Errorf("cluster: row %d has %d entries in a %d-item matrix", i, len(row), n)
		}
		if row[i] != 0 {
			return fmt.Errorf("cluster: nonzero self-distance %g at %d", row[i], i)
		}
		for j, v := range row {
			if math.IsNaN(v) || v < 0 {
				return fmt.Errorf("cluster: invalid distance %g at (%d,%d)", v, i, j)
			}
			if math.Abs(v-d[j][i]) > 1e-9 {
				return fmt.Errorf("cluster: asymmetric matrix: d[%d][%d]=%g, d[%d][%d]=%g", i, j, v, j, i, d[j][i])
			}
		}
	}
	return nil
}

// KMedoids partitions the items of a distance matrix into k clusters
// by PAM: seeded k-medoids++ initialization (the first medoid is the
// deterministic global medoid; each further medoid is drawn with
// probability proportional to squared distance from the chosen set),
// then repeated best-improvement SWAP until no single medoid/non-medoid
// exchange lowers the objective. Results are deterministic for a fixed
// seed; ties break toward lower item indices.
func KMedoids(d [][]float64, k int, seed int64) (*Clustering, error) {
	return KMedoidsContext(context.Background(), d, k, seed)
}

// KMedoidsContext is KMedoids with cancellation: the SWAP phase is
// O(k·n²) per round and rounds can stack up on large cohorts, so the
// context is polled before every medoid row and an abandoned request
// (client gone, server shutting down) stops mid-SWAP instead of
// running the exchange search to completion. Returns ctx.Err() when
// cancelled.
func KMedoidsContext(ctx context.Context, d [][]float64, k int, seed int64) (*Clustering, error) {
	if err := validateMatrix(d); err != nil {
		return nil, err
	}
	n := len(d)
	if k < 1 || k > n {
		return nil, fmt.Errorf("cluster: k=%d outside [1, %d]", k, n)
	}
	rng := rand.New(rand.NewSource(seed))

	// Initialization. The first medoid is the item minimizing total
	// distance — the cohort medoid — independent of the seed.
	medoids := make([]int, 0, k)
	isMedoid := make([]bool, n)
	best, bestSum := 0, math.Inf(1)
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += d[i][j]
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	medoids = append(medoids, best)
	isMedoid[best] = true
	nearest := make([]float64, n) // distance to the closest chosen medoid
	for i := 0; i < n; i++ {
		nearest[i] = d[i][best]
	}
	for len(medoids) < k {
		total := 0.0
		for i := 0; i < n; i++ {
			if !isMedoid[i] {
				total += nearest[i] * nearest[i]
			}
		}
		pick := -1
		if total > 0 {
			r := rng.Float64() * total
			acc := 0.0
			for i := 0; i < n; i++ {
				if isMedoid[i] {
					continue
				}
				acc += nearest[i] * nearest[i]
				if acc >= r {
					pick = i
					break
				}
			}
		}
		if pick < 0 {
			// All remaining items coincide with chosen medoids
			// (total == 0, e.g. duplicate runs): take the lowest
			// unchosen index.
			for i := 0; i < n; i++ {
				if !isMedoid[i] {
					pick = i
					break
				}
			}
		}
		medoids = append(medoids, pick)
		isMedoid[pick] = true
		for i := 0; i < n; i++ {
			if d[i][pick] < nearest[i] {
				nearest[i] = d[i][pick]
			}
		}
	}

	assign := make([]int, n)
	cost := assignAll(d, medoids, assign)

	// SWAP: best-improvement exchanges until a local optimum.
	iters := 0
	cand := make([]int, n)
	for {
		iters++
		bestDelta := -1e-12 // require a strict improvement
		bestM, bestH := -1, -1
		for mi, m := range medoids {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			for h := 0; h < n; h++ {
				if isMedoid[h] {
					continue
				}
				medoids[mi] = h
				c := assignAll(d, medoids, cand)
				medoids[mi] = m
				if delta := c - cost; delta < bestDelta {
					bestDelta, bestM, bestH = delta, mi, h
				}
			}
		}
		if bestM < 0 {
			break
		}
		isMedoid[medoids[bestM]] = false
		medoids[bestM] = bestH
		isMedoid[bestH] = true
		cost = assignAll(d, medoids, assign)
	}

	medoids, assign = canonicalClusters(medoids, assign)
	return &Clustering{
		K:          k,
		Medoids:    medoids,
		Assign:     assign,
		Cost:       cost,
		Silhouette: silhouette(d, assign, k),
		Iterations: iters,
	}, nil
}

// canonicalClusters sorts the medoids ascending and renumbers the
// assignment to match, so equal partitions always render identically.
// The inputs are rewritten in place and returned.
func canonicalClusters(medoids, assign []int) ([]int, []int) {
	k := len(medoids)
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return medoids[order[a]] < medoids[order[b]] })
	sortedMedoids := make([]int, k)
	renumber := make([]int, k)
	for newC, oldC := range order {
		sortedMedoids[newC] = medoids[oldC]
		renumber[oldC] = newC
	}
	for i := range assign {
		assign[i] = renumber[assign[i]]
	}
	copy(medoids, sortedMedoids)
	return medoids, assign
}

// assignAll assigns every item to its closest medoid (ties toward the
// earlier medoid in the list) and returns the total assignment cost.
func assignAll(d [][]float64, medoids []int, assign []int) float64 {
	total := 0.0
	for i := range assign {
		bestC, bestD := 0, math.Inf(1)
		for c, m := range medoids {
			if d[i][m] < bestD {
				bestC, bestD = c, d[i][m]
			}
		}
		assign[i] = bestC
		total += bestD
	}
	return total
}

// silhouette computes the mean silhouette coefficient of a partition.
func silhouette(d [][]float64, assign []int, k int) float64 {
	if k < 2 {
		return 0
	}
	n := len(assign)
	sizes := make([]int, k)
	for _, a := range assign {
		sizes[a]++
	}
	sum, counted := 0.0, 0
	meanTo := make([]float64, k)
	for i := 0; i < n; i++ {
		if sizes[assign[i]] < 2 {
			continue // silhouette of a singleton is defined as 0
		}
		for c := range meanTo {
			meanTo[c] = 0
		}
		for j := 0; j < n; j++ {
			if j != i {
				meanTo[assign[j]] += d[i][j]
			}
		}
		a := meanTo[assign[i]] / float64(sizes[assign[i]]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == assign[i] || sizes[c] == 0 {
				continue
			}
			if v := meanTo[c] / float64(sizes[c]); v < b {
				b = v
			}
		}
		if den := math.Max(a, b); den > 0 {
			sum += (b - a) / den
		}
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// OutlierScore ranks one item by how far it sits from its local
// neighborhood.
type OutlierScore struct {
	// Index is the item index in the matrix.
	Index int
	// Score is the mean distance to the item's k nearest neighbors —
	// the classic distance-based outlier measure (larger = more
	// anomalous). Unlike total-distance ranking it is robust to a
	// cohort made of several tight clusters of different sizes.
	Score float64
	// MeanAll is the mean distance to every other item, reported for
	// context.
	MeanAll float64
}

// Outliers scores every item by its mean distance to its k nearest
// neighbors and returns the scores sorted most-anomalous first (ties
// toward lower indices). k is clamped to [1, n-1]; a single-item
// matrix yields one zero score.
func Outliers(d [][]float64, k int) ([]OutlierScore, error) {
	if err := validateMatrix(d); err != nil {
		return nil, err
	}
	n := len(d)
	if n == 1 {
		return []OutlierScore{{Index: 0}}, nil
	}
	if k < 1 {
		k = 1
	}
	if k > n-1 {
		k = n - 1
	}
	out := make([]OutlierScore, n)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		sum := 0.0
		for j := 0; j < n; j++ {
			if j != i {
				row = append(row, d[i][j])
				sum += d[i][j]
			}
		}
		sort.Float64s(row)
		knnSum := 0.0
		for _, v := range row[:k] {
			knnSum += v
		}
		out[i] = OutlierScore{
			Index:   i,
			Score:   knnSum / float64(k),
			MeanAll: sum / float64(n-1),
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score > out[b].Score
		}
		return out[a].Index < out[b].Index
	})
	return out, nil
}

// Neighbor is one entry of a nearest-neighbor answer.
type Neighbor struct {
	Index    int
	Distance float64
}

// Nearest returns the k items closest to item i, ascending by distance
// (ties toward lower indices), excluding i itself. k is clamped to
// [0, n-1].
func Nearest(d [][]float64, i, k int) ([]Neighbor, error) {
	if err := validateMatrix(d); err != nil {
		return nil, err
	}
	n := len(d)
	if i < 0 || i >= n {
		return nil, fmt.Errorf("cluster: item %d outside matrix of %d items", i, n)
	}
	if k > n-1 {
		k = n - 1
	}
	if k <= 0 {
		return nil, nil
	}
	out := make([]Neighbor, 0, n-1)
	for j := 0; j < n; j++ {
		if j != i {
			out = append(out, Neighbor{Index: j, Distance: d[i][j]})
		}
	}
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Distance != out[b].Distance {
			return out[a].Distance < out[b].Distance
		}
		return out[a].Index < out[b].Index
	})
	return out[:k], nil
}
