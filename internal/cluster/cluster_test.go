package cluster

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// twoBlobs builds a distance matrix of two well-separated groups:
// items [0, split) are mutually close, items [split, n) are mutually
// close, and cross-group distances are large.
func twoBlobs(n, split int, rng *rand.Rand) [][]float64 {
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			var v float64
			if (i < split) == (j < split) {
				v = 1 + rng.Float64()
			} else {
				v = 50 + rng.Float64()
			}
			d[i][j], d[j][i] = v, v
		}
	}
	return d
}

func TestKMedoidsRecoversBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := twoBlobs(12, 5, rng)
	cl, err := KMedoids(d, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cl.K != 2 || len(cl.Medoids) != 2 || len(cl.Assign) != 12 {
		t.Fatalf("shape: %+v", cl)
	}
	// All of group 1 shares a cluster, all of group 2 shares the other.
	for i := 1; i < 5; i++ {
		if cl.Assign[i] != cl.Assign[0] {
			t.Fatalf("item %d not with its blob: %v", i, cl.Assign)
		}
	}
	for i := 6; i < 12; i++ {
		if cl.Assign[i] != cl.Assign[5] {
			t.Fatalf("item %d not with its blob: %v", i, cl.Assign)
		}
	}
	if cl.Assign[0] == cl.Assign[5] {
		t.Fatalf("blobs merged: %v", cl.Assign)
	}
	// Medoids are sorted and belong to their own clusters.
	if cl.Medoids[0] >= cl.Medoids[1] {
		t.Fatalf("medoids not sorted: %v", cl.Medoids)
	}
	for c, m := range cl.Medoids {
		if cl.Assign[m] != c {
			t.Fatalf("medoid %d assigned to cluster %d, not %d", m, cl.Assign[m], c)
		}
	}
	if cl.Silhouette < 0.8 {
		t.Fatalf("well-separated blobs should have high silhouette, got %g", cl.Silhouette)
	}
}

// TestKMedoidsDeterministic: identical inputs and seed produce
// identical clusterings, call after call.
func TestKMedoidsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	d := twoBlobs(16, 7, rng)
	first, err := KMedoids(d, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, err := KMedoids(d, 3, 42)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d diverged:\n%+v\n%+v", i, first, again)
		}
	}
}

func TestKMedoidsDegenerate(t *testing.T) {
	// k = n: every item its own medoid, zero cost.
	d := twoBlobs(4, 2, rand.New(rand.NewSource(3)))
	cl, err := KMedoids(d, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cost != 0 {
		t.Fatalf("k=n cost = %g, want 0", cl.Cost)
	}
	if !reflect.DeepEqual(cl.Medoids, []int{0, 1, 2, 3}) {
		t.Fatalf("medoids = %v", cl.Medoids)
	}
	// k = 1: the single medoid is the global medoid.
	cl1, err := KMedoids(d, 1, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl1.Medoids) != 1 || cl1.Silhouette != 0 {
		t.Fatalf("k=1: %+v", cl1)
	}
	// Identical items (all-zero matrix) must still terminate.
	zero := make([][]float64, 3)
	for i := range zero {
		zero[i] = make([]float64, 3)
	}
	if _, err := KMedoids(zero, 2, 5); err != nil {
		t.Fatal(err)
	}
	// Invalid inputs.
	if _, err := KMedoids(d, 0, 1); err == nil {
		t.Fatal("k=0 must error")
	}
	if _, err := KMedoids(d, 5, 1); err == nil {
		t.Fatal("k>n must error")
	}
	if _, err := KMedoids(nil, 1, 1); err == nil {
		t.Fatal("empty matrix must error")
	}
	bad := [][]float64{{0, 1}, {2, 0}}
	if _, err := KMedoids(bad, 1, 1); err == nil {
		t.Fatal("asymmetric matrix must error")
	}
	neg := [][]float64{{0, -1}, {-1, 0}}
	if _, err := KMedoids(neg, 1, 1); err == nil {
		t.Fatal("negative distance must error")
	}
}

// TestKMedoidsImprovesOnInit: SWAP must reach the optimal medoid pair
// on a configuration where greedy init alone is suboptimal.
func TestKMedoidsObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := twoBlobs(10, 5, rng)
	cl, err := KMedoids(d, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check: no medoid pair beats the PAM result.
	n := len(d)
	bestCost := math.Inf(1)
	assign := make([]int, n)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if c := assignAll(d, []int{a, b}, assign); c < bestCost {
				bestCost = c
			}
		}
	}
	if cl.Cost > bestCost+1e-9 {
		t.Fatalf("PAM cost %g worse than exhaustive optimum %g", cl.Cost, bestCost)
	}
}

func TestOutliers(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Two tight blobs plus one far-away item: total-distance ranking
	// would also flag blob members of the smaller blob; knn scoring
	// must single out item 8.
	d := twoBlobs(8, 4, rng)
	n := 9
	for i := range d {
		d[i] = append(d[i], 500)
	}
	last := make([]float64, n)
	for j := 0; j < n-1; j++ {
		last[j] = 500
	}
	d = append(d, last)
	scores, err := Outliers(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != n {
		t.Fatalf("got %d scores", len(scores))
	}
	if scores[0].Index != 8 {
		t.Fatalf("top outlier = %+v, want item 8", scores[0])
	}
	if scores[0].Score < 100*scores[1].Score {
		t.Fatalf("outlier not separated: %+v vs %+v", scores[0], scores[1])
	}
	// Scores are sorted descending.
	for i := 1; i < len(scores); i++ {
		if scores[i].Score > scores[i-1].Score {
			t.Fatalf("scores unsorted at %d: %+v", i, scores)
		}
	}
	// k clamping: k far beyond n must not panic and equals mean-all.
	wide, err := Outliers(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range wide {
		if math.Abs(s.Score-s.MeanAll) > 1e-9 {
			t.Fatalf("k>=n-1 score %g != mean %g", s.Score, s.MeanAll)
		}
	}
	one, err := Outliers([][]float64{{0}}, 3)
	if err != nil || len(one) != 1 || one[0].Score != 0 {
		t.Fatalf("singleton: %v %v", one, err)
	}
}

func TestNearest(t *testing.T) {
	d := [][]float64{
		{0, 1, 4, 2},
		{1, 0, 5, 3},
		{4, 5, 0, 6},
		{2, 3, 6, 0},
	}
	nn, err := Nearest(d, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []Neighbor{{Index: 1, Distance: 1}, {Index: 3, Distance: 2}}
	if !reflect.DeepEqual(nn, want) {
		t.Fatalf("nearest = %v, want %v", nn, want)
	}
	// k clamps to n-1; k <= 0 yields nothing; bad index errors.
	all, err := Nearest(d, 2, 99)
	if err != nil || len(all) != 3 {
		t.Fatalf("clamped: %v %v", all, err)
	}
	none, err := Nearest(d, 1, 0)
	if err != nil || none != nil {
		t.Fatalf("k=0: %v %v", none, err)
	}
	if _, err := Nearest(d, 7, 1); err == nil {
		t.Fatal("out-of-range index must error")
	}
	// Equal distances break ties toward lower indices.
	tie := [][]float64{{0, 2, 2}, {2, 0, 2}, {2, 2, 0}}
	nt, err := Nearest(tie, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if nt[0].Index != 0 || nt[1].Index != 1 {
		t.Fatalf("tie order: %v", nt)
	}
}
