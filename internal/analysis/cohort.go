package analysis

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// CohortMatrix is a shared, incrementally maintained pairwise
// edit-distance matrix over a growing cohort of runs. Where
// DistanceMatrix recomputes all O(n²) pairs from scratch, a
// CohortMatrix differences only the new row when a run is added — the
// O(n) pairs that did not exist before — and keeps one reusable
// differencing engine per worker shard across calls, so the per-spec
// W_TG memo and all flat scratch tables stay warm for the lifetime of
// the cohort.
//
// Reads (Snapshot, Labels, Len) are safe for arbitrary concurrency
// with mutations; mutations (Reset, Add, Remove) serialize among
// themselves. The published matrix is immutable — every mutation
// builds fresh rows and swaps them in under the write lock — so a
// Snapshot taken at any moment is internally consistent.
type CohortMatrix struct {
	model   cost.Model
	workers int

	// computeMu serializes mutations; the engines are owned by
	// whichever mutation holds it.
	computeMu sync.Mutex
	engines   []*core.Engine

	mu      sync.RWMutex
	labels  []string
	index   map[string]int
	runs    []*wfrun.Run
	d       [][]float64
	version int64

	diffCalls atomic.Int64
	rebuilds  atomic.Int64
}

// NewCohortMatrix returns an empty cohort matrix for the given cost
// model. workers caps the differencing fan-out of Reset and Add;
// <= 0 means one worker per pair up to GOMAXPROCS (the
// DistanceMatrixWith default).
func NewCohortMatrix(m cost.Model, workers int) *CohortMatrix {
	return &CohortMatrix{
		model:   m,
		workers: workers,
		index:   map[string]int{},
	}
}

// Len returns the current cohort size.
func (c *CohortMatrix) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.labels)
}

// Version returns a counter bumped by every successful mutation;
// consumers caching derived artifacts (clusterings, outlier rankings)
// can key them by it.
func (c *CohortMatrix) Version() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.version
}

// DiffCalls reports how many engine differencing calls the matrix has
// performed since creation — the incremental-maintenance tests and
// benchmarks assert on it.
func (c *CohortMatrix) DiffCalls() int64 { return c.diffCalls.Load() }

// Rebuilds reports how many full O(n²) recomputations (Reset calls)
// the matrix has performed — bulk-import coalescing asserts exactly
// one rebuild per batch, however many runs it carried.
func (c *CohortMatrix) Rebuilds() int64 { return c.rebuilds.Load() }

// Labels returns a copy of the cohort's run names in matrix order.
func (c *CohortMatrix) Labels() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.labels...)
}

// Members returns the cohort's names and runs in matrix order (the
// runs are the shared immutable objects, not copies) — the handoff a
// representation switch needs to rebuild the same cohort elsewhere.
func (c *CohortMatrix) Members() ([]string, []*wfrun.Run) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]string(nil), c.labels...), append([]*wfrun.Run(nil), c.runs...)
}

// Has reports whether a run name is in the cohort.
func (c *CohortMatrix) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.index[name]
	return ok
}

// Snapshot returns a deep copy of the current matrix, or nil when the
// cohort is empty. The copy is the caller's to keep: later mutations
// never touch it.
func (c *CohortMatrix) Snapshot() *Matrix {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.labels) == 0 {
		return nil
	}
	mx := &Matrix{
		Labels: append([]string(nil), c.labels...),
		D:      make([][]float64, len(c.d)),
	}
	for i, row := range c.d {
		mx.D[i] = append([]float64(nil), row...)
	}
	return mx
}

// growEngines ensures at least n reusable engines exist, one per
// worker shard. Caller must hold computeMu; workers then index the
// slice read-only.
func (c *CohortMatrix) growEngines(n int) {
	for len(c.engines) < n {
		c.engines = append(c.engines, core.NewEngine(c.model))
	}
}

func (c *CohortMatrix) workerCount(pairs int) int {
	w := c.workers
	if w <= 0 {
		w = defaultWorkers()
	}
	if w > pairs {
		w = pairs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Reset replaces the whole cohort and recomputes every pairwise
// distance with a sharded symmetric-half fan-out: worker w owns the
// rows i ≡ w (mod workers) of the upper triangle and differences them
// with its own engine. Rows shrink linearly with i, so round-robin row
// ownership balances the shards to within one row's work.
func (c *CohortMatrix) Reset(names []string, runs []*wfrun.Run) error {
	if len(names) != len(runs) {
		return fmt.Errorf("analysis: %d names for %d runs", len(names), len(runs))
	}
	if err := uniqueNames(names); err != nil {
		return err
	}
	c.computeMu.Lock()
	defer c.computeMu.Unlock()
	c.rebuilds.Add(1)
	n := len(runs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	// Repair stale tree IDs once, single-threaded, exactly like
	// DistanceMatrixWith: afterwards the per-shard engines index the
	// shared trees concurrently but read-only.
	var ti sptree.TreeIndex
	for _, r := range runs {
		if r != nil && r.Tree != nil {
			ti.Rebuild(r.Tree)
		}
	}
	workers := c.workerCount(n * (n - 1) / 2)
	c.growEngines(workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := c.engines[w]
			for i := w; i < n; i += workers {
				for j := i + 1; j < n; j++ {
					dist, err := eng.Distance(runs[i], runs[j])
					if err != nil {
						errs[w] = fmt.Errorf("analysis: runs %q and %q: %w", names[i], names[j], err)
						return
					}
					c.diffCalls.Add(1)
					d[i][j] = dist
					d[j][i] = dist
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	index := make(map[string]int, n)
	for i, name := range names {
		index[name] = i
	}
	c.mu.Lock()
	c.labels = append([]string(nil), names...)
	c.runs = append([]*wfrun.Run(nil), runs...)
	c.index = index
	c.d = d
	c.version++
	c.mu.Unlock()
	return nil
}

// Add appends a run to the cohort, differencing only the n new pairs
// (new run versus each existing member) across the worker shards. If
// the name is already present the old row is replaced — the
// re-imported-run path — which still costs only O(n) diffs.
func (c *CohortMatrix) Add(name string, run *wfrun.Run) error {
	if run == nil || run.Tree == nil {
		return fmt.Errorf("analysis: nil run %q", name)
	}
	c.computeMu.Lock()
	defer c.computeMu.Unlock()

	// Work on private copies of the member list: the published state
	// is only swapped at the end, under the write lock.
	c.mu.RLock()
	labels := append([]string(nil), c.labels...)
	runs := append([]*wfrun.Run(nil), c.runs...)
	oldD := c.d
	replaced := -1
	if i, ok := c.index[name]; ok {
		replaced = i
	}
	c.mu.RUnlock()

	if replaced >= 0 {
		labels = append(labels[:replaced], labels[replaced+1:]...)
		runs = append(runs[:replaced], runs[replaced+1:]...)
	}
	n := len(runs)

	var ti sptree.TreeIndex
	ti.Rebuild(run.Tree)
	for _, r := range runs {
		if r.Tree != nil {
			ti.Rebuild(r.Tree)
		}
	}
	row := make([]float64, n)
	workers := c.workerCount(n)
	c.growEngines(workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := c.engines[w]
			for j := w; j < n; j += workers {
				dist, err := eng.Distance(run, runs[j])
				if err != nil {
					errs[w] = fmt.Errorf("analysis: runs %q and %q: %w", name, labels[j], err)
					return
				}
				c.diffCalls.Add(1)
				row[j] = dist
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Assemble the (n+1)×(n+1) matrix from the surviving rows of the
	// published matrix plus the new row/column.
	d := make([][]float64, n+1)
	for i := 0; i < n; i++ {
		d[i] = make([]float64, n+1)
		srcRow := i
		if replaced >= 0 && i >= replaced {
			srcRow++
		}
		for j := 0; j < n; j++ {
			srcCol := j
			if replaced >= 0 && j >= replaced {
				srcCol++
			}
			d[i][j] = oldD[srcRow][srcCol]
		}
		d[i][n] = row[i]
	}
	d[n] = append(append([]float64(nil), row...), 0)

	labels = append(labels, name)
	runs = append(runs, run)
	index := make(map[string]int, len(labels))
	for i, l := range labels {
		index[l] = i
	}
	c.mu.Lock()
	c.labels = labels
	c.runs = runs
	c.index = index
	c.d = d
	c.version++
	c.mu.Unlock()
	return nil
}

// Remove drops a run from the cohort (no differencing at all) and
// reports whether it was present.
func (c *CohortMatrix) Remove(name string) bool {
	c.computeMu.Lock()
	defer c.computeMu.Unlock()
	c.mu.RLock()
	i, ok := c.index[name]
	oldD := c.d
	oldLabels := c.labels
	oldRuns := c.runs
	c.mu.RUnlock()
	if !ok {
		return false
	}
	n := len(oldLabels) - 1
	labels := make([]string, 0, n)
	labels = append(labels, oldLabels[:i]...)
	labels = append(labels, oldLabels[i+1:]...)
	runs := make([]*wfrun.Run, 0, n)
	runs = append(runs, oldRuns[:i]...)
	runs = append(runs, oldRuns[i+1:]...)
	d := make([][]float64, n)
	for r := 0; r < n; r++ {
		src := r
		if r >= i {
			src++
		}
		d[r] = make([]float64, 0, n)
		d[r] = append(d[r], oldD[src][:i]...)
		d[r] = append(d[r], oldD[src][i+1:]...)
	}
	index := make(map[string]int, n)
	for j, l := range labels {
		index[l] = j
	}
	c.mu.Lock()
	c.labels = labels
	c.runs = runs
	c.index = index
	c.d = d
	c.version++
	c.mu.Unlock()
	return true
}

func uniqueNames(names []string) error {
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			return fmt.Errorf("analysis: duplicate run name %q in cohort", n)
		}
		seen[n] = true
	}
	return nil
}
