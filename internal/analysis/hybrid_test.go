package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

// hybridRuns generates n runs of one random-but-fixed specification
// (cohortRuns caps at 26 names; the hybrid tests cross thresholds).
func hybridRuns(t testing.TB, n int) ([]string, []*wfrun.Run) {
	t.Helper()
	rng := rand.New(rand.NewSource(123))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 10, SeriesRatio: 1, Forks: 2, Loops: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	runs := make([]*wfrun.Run, n)
	for i := range runs {
		names[i] = fmt.Sprintf("r%02d", i)
		if runs[i], err = gen.RandomRun(sp, gen.DefaultRunParams(), rng); err != nil {
			t.Fatal(err)
		}
	}
	return names, runs
}

// TestHybridSwitchesUpAndDown: steady Adds cross the threshold into
// the index, Removes cross back below half the threshold into the
// dense matrix, and the cumulative counters survive both switches.
func TestHybridSwitchesUpAndDown(t *testing.T) {
	names, runs := hybridRuns(t, 10)
	hc := NewHybridCohort(cost.Unit{}, 2, HybridOptions{IndexThreshold: 6, Landmarks: 2})
	for i := 0; i < 5; i++ {
		if err := hc.Add(names[i], runs[i]); err != nil {
			t.Fatal(err)
		}
		if hc.Indexed() {
			t.Fatalf("indexed at %d runs, threshold 6", hc.Len())
		}
	}
	denseDiffs := hc.DiffCalls()
	if denseDiffs == 0 {
		t.Fatal("dense phase recorded no diffs")
	}
	if v := hc.View(); v.Indexed() || v.Len() != 5 || v.Matrix == nil {
		t.Fatalf("dense view: %+v", v)
	}

	// The sixth Add re-homes the cohort into the index.
	if err := hc.Add(names[5], runs[5]); err != nil {
		t.Fatal(err)
	}
	if !hc.Indexed() || hc.Len() != 6 {
		t.Fatalf("not indexed at threshold: indexed=%v len=%d", hc.Indexed(), hc.Len())
	}
	if hc.DiffCalls() < denseDiffs {
		t.Fatalf("diff counter went backwards across switch-up: %d -> %d", denseDiffs, hc.DiffCalls())
	}
	if v := hc.View(); !v.Indexed() || v.Len() != 6 || v.Index == nil {
		t.Fatalf("indexed view: %+v", v)
	}
	if hc.Snapshot() != nil {
		t.Fatal("indexed cohort should have no dense Snapshot")
	}
	for i := 6; i < 10; i++ {
		if err := hc.Add(names[i], runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !hc.Indexed() || hc.Len() != 10 {
		t.Fatalf("grown cohort: indexed=%v len=%d", hc.Indexed(), hc.Len())
	}
	upDiffs := hc.DiffCalls()

	// Shrinking below threshold/2 = 3 returns to the dense matrix.
	if !hc.Remove(names[9]) || !hc.Remove(names[8]) || !hc.Remove(names[7]) {
		t.Fatal("remove failed")
	}
	for i := 6; i >= 2; i-- {
		// Hysteresis: the index persists at or above threshold/2 even
		// though these sizes are below the switch-up threshold.
		if !hc.Indexed() {
			t.Fatalf("index dropped early at len %d", hc.Len())
		}
		if !hc.Remove(names[i]) {
			t.Fatalf("remove %s failed", names[i])
		}
	}
	if hc.Indexed() || hc.Len() != 2 {
		t.Fatalf("not back to dense: indexed=%v len=%d", hc.Indexed(), hc.Len())
	}
	if hc.Remove("nope") {
		t.Fatal("removing a missing run returned true")
	}
	if hc.DiffCalls() < upDiffs {
		t.Fatalf("diff counter went backwards across switch-down: %d -> %d", upDiffs, hc.DiffCalls())
	}
	if hc.Rebuilds() < 2 {
		t.Fatalf("rebuilds = %d, want at least the two switch rebuilds", hc.Rebuilds())
	}
	got, _ := hc.Members()
	if !reflect.DeepEqual(got, names[:2]) {
		t.Fatalf("members after churn: %v", got)
	}
}

// TestHybridViewMatchesDense: the indexed view answers exact
// distances identical to a dense matrix of the same cohort.
func TestHybridViewMatchesDense(t *testing.T) {
	names, runs := hybridRuns(t, 8)
	hc := NewHybridCohort(cost.Length{}, 2, HybridOptions{IndexThreshold: 4, Landmarks: 2})
	if err := hc.Reset(names, runs); err != nil {
		t.Fatal(err)
	}
	if !hc.Indexed() {
		t.Fatal("Reset above threshold should index")
	}
	want, err := DistanceMatrix(runs, names, cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	v := hc.View()
	if !reflect.DeepEqual(v.Labels(), want.Labels) {
		t.Fatalf("labels: %v vs %v", v.Labels(), want.Labels)
	}
	for i := 0; i < len(runs); i++ {
		for j := 0; j < len(runs); j++ {
			d, err := v.Index.Distance(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if d != want.D[i][j] {
				t.Fatalf("d(%d,%d): index %g, dense %g", i, j, d, want.D[i][j])
			}
			if b := v.Index.Bound(i, j); b > d {
				t.Fatalf("bound(%d,%d)=%g > exact %g", i, j, b, d)
			}
		}
	}
	if hc.PrunedPairs() != 0 {
		t.Fatalf("exhaustive distance reads pruned %d pairs", hc.PrunedPairs())
	}

	// Reset below threshold goes dense again, same geometry.
	if err := hc.Reset(names[:3], runs[:3]); err != nil {
		t.Fatal(err)
	}
	if hc.Indexed() {
		t.Fatal("small Reset should be dense")
	}
	v2 := hc.View()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if v2.Matrix.D[i][j] != want.D[i][j] {
				t.Fatalf("dense rebuild drifted at (%d,%d)", i, j)
			}
		}
	}
}

// TestHybridDisabledNeverIndexes: a negative threshold pins the
// cohort to the dense representation at any size.
func TestHybridDisabledNeverIndexes(t *testing.T) {
	names, runs := hybridRuns(t, 6)
	hc := NewHybridCohort(cost.Unit{}, 2, HybridOptions{IndexThreshold: -1})
	if err := hc.Reset(names, runs); err != nil {
		t.Fatal(err)
	}
	if hc.Indexed() {
		t.Fatal("disabled hybrid indexed anyway")
	}
	for i, name := range names {
		if err := hc.Add(name+"x", runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if hc.Indexed() || hc.Len() != 12 {
		t.Fatalf("disabled hybrid: indexed=%v len=%d", hc.Indexed(), hc.Len())
	}
}

// TestHybridVersionAndEmptyView: version bumps on every mutation and
// an empty cohort views as an empty CohortView.
func TestHybridVersionAndEmptyView(t *testing.T) {
	names, runs := hybridRuns(t, 2)
	hc := NewHybridCohort(cost.Unit{}, 1, HybridOptions{})
	if v := hc.View(); v.Len() != 0 || v.Indexed() || v.Labels() != nil {
		t.Fatalf("empty view: %+v", v)
	}
	v0 := hc.Version()
	if err := hc.Add(names[0], runs[0]); err != nil {
		t.Fatal(err)
	}
	if hc.Version() <= v0 {
		t.Fatal("Add did not bump version")
	}
	v1 := hc.Version()
	if !hc.Remove(names[0]) {
		t.Fatal("remove failed")
	}
	if hc.Version() <= v1 {
		t.Fatal("Remove did not bump version")
	}
	if hc.Has(names[0]) || hc.Len() != 0 {
		t.Fatalf("empty again: has=%v len=%d", hc.Has(names[0]), hc.Len())
	}
}
