// Package analysis builds on pairwise run differencing to support the
// paper's motivating workflow: a scientist executes an experiment many
// times with different parameter settings and wants to see which
// executions behave alike (Section I: "identify parameter settings and
// approaches which lead to good biological results"). It provides
// distance matrices over run cohorts, medoid selection,
// nearest-neighbor queries and average-linkage (UPGMA) hierarchical
// clustering with a text dendrogram.
package analysis

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// defaultWorkers is the differencing fan-out used when Options.Workers
// is unset.
func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

// Matrix is a symmetric pairwise edit-distance matrix over a cohort of
// runs of the same specification.
type Matrix struct {
	Labels []string
	D      [][]float64
}

// Options tunes DistanceMatrixWith. The zero value means "all cores,
// no progress reporting".
type Options struct {
	// Workers caps the differencing fan-out; <= 0 means GOMAXPROCS.
	Workers int
	// Progress, when non-nil, is called after each pair is
	// differenced with the number of completed pairs and the total
	// pair count. Calls are serialized (never concurrent), but arrive
	// from worker goroutines under the matrix lock: a callback that
	// blocks throttles the whole fan-out, so consumers doing I/O here
	// must bound it (the HTTP service uses per-write deadlines).
	Progress func(done, total int)
	// Context, when non-nil, aborts the fan-out early: once it is
	// cancelled no further pairs are dispatched or differenced and
	// DistanceMatrixWith returns the context error. The HTTP service
	// passes the request context so a client that disconnects (or a
	// repository wiped mid-stream) stops burning workers instead of
	// finishing a matrix nobody will read.
	Context context.Context
}

// DistanceMatrix computes all pairwise edit distances under the given
// cost model. Labels default to r0, r1, ... when names is nil.
func DistanceMatrix(runs []*wfrun.Run, names []string, m cost.Model) (*Matrix, error) {
	return DistanceMatrixWith(runs, names, m, Options{})
}

// DistanceMatrixWith is DistanceMatrix with explicit worker and
// progress-reporting control.
func DistanceMatrixWith(runs []*wfrun.Run, names []string, m cost.Model, opts Options) (*Matrix, error) {
	n := len(runs)
	if n == 0 {
		return nil, fmt.Errorf("analysis: empty cohort")
	}
	labels := names
	if labels == nil {
		labels = make([]string, n)
		for i := range labels {
			labels[i] = fmt.Sprintf("r%d", i)
		}
	}
	if len(labels) != n {
		return nil, fmt.Errorf("analysis: %d labels for %d runs", len(labels), n)
	}
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	// Repair any stale tree IDs once, single-threaded: the per-worker
	// engines index the shared trees concurrently, which is read-only
	// exactly when IDs are already dense preorder.
	var ti sptree.TreeIndex
	for _, r := range runs {
		if r.Tree != nil {
			ti.Rebuild(r.Tree)
		}
	}
	// The O(n²) pairs are independent differencing problems; fan them
	// out over the available cores, one reusable diff engine per
	// worker so a whole cohort performs O(1) steady-state allocation.
	// Each worker writes disjoint cells, so only the error and the
	// progress counter need synchronization.
	type pair struct{ i, j int }
	total := n * (n - 1) / 2
	pairs := make(chan pair)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	done := 0
	workers := opts.Workers
	if workers <= 0 {
		workers = defaultWorkers()
	}
	if workers > total+1 {
		workers = total + 1
	}
	// A nil context means no cancellation: selecting on a nil channel
	// blocks forever, so the send/cancel selects below degrade to
	// plain sends.
	var cancelled <-chan struct{}
	if opts.Context != nil {
		cancelled = opts.Context.Done()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := core.NewEngine(m)
			for p := range pairs {
				select {
				case <-cancelled:
					// Drain without differencing so the producer can
					// finish promptly even if it already queued pairs.
					continue
				default:
				}
				dist, err := eng.Distance(runs[p.i], runs[p.j])
				if err == nil {
					// Each worker writes disjoint cells.
					d[p.i][p.j] = dist
					d[p.j][p.i] = dist
				}
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("analysis: runs %d and %d: %w", p.i, p.j, err)
				}
				done++
				if opts.Progress != nil {
					opts.Progress(done, total)
				}
				mu.Unlock()
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			select {
			case pairs <- pair{i, j}:
			case <-cancelled:
				mu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("analysis: cohort aborted: %w", opts.Context.Err())
				}
				mu.Unlock()
				break dispatch
			}
		}
	}
	close(pairs)
	wg.Wait()
	if opts.Context != nil && firstErr == nil {
		// The last dispatched pairs may have raced a late
		// cancellation; report it so callers never mistake a
		// fully-computed matrix for an aborted one and vice versa.
		if err := opts.Context.Err(); err != nil {
			firstErr = fmt.Errorf("analysis: cohort aborted: %w", err)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &Matrix{Labels: labels, D: d}, nil
}

// Medoid returns the index of the run with minimum total distance to
// the rest of the cohort — the "most typical" execution.
func (mx *Matrix) Medoid() int {
	best, bestSum := 0, math.Inf(1)
	for i := range mx.D {
		sum := 0.0
		for j := range mx.D[i] {
			sum += mx.D[i][j]
		}
		if sum < bestSum {
			best, bestSum = i, sum
		}
	}
	return best
}

// Outlier returns the index of the run with maximum total distance to
// the rest of the cohort.
func (mx *Matrix) Outlier() int {
	worst, worstSum := 0, -1.0
	for i := range mx.D {
		sum := 0.0
		for j := range mx.D[i] {
			sum += mx.D[i][j]
		}
		if sum > worstSum {
			worst, worstSum = i, sum
		}
	}
	return worst
}

// Nearest returns the index and distance of the run closest to run i.
func (mx *Matrix) Nearest(i int) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for j := range mx.D[i] {
		if j != i && mx.D[i][j] < bestD {
			best, bestD = j, mx.D[i][j]
		}
	}
	return best, bestD
}

// String renders the matrix as an aligned table.
func (mx *Matrix) String() string {
	var b strings.Builder
	w := 8
	for _, l := range mx.Labels {
		if len(l) > w {
			w = len(l)
		}
	}
	fmt.Fprintf(&b, "%*s", w+1, "")
	for _, l := range mx.Labels {
		fmt.Fprintf(&b, "%*s", w+1, l)
	}
	b.WriteByte('\n')
	for i, row := range mx.D {
		fmt.Fprintf(&b, "%*s", w+1, mx.Labels[i])
		for _, v := range row {
			fmt.Fprintf(&b, "%*s", w+1, trimFloat(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

// Dendrogram is a node of the UPGMA clustering tree: either a leaf
// (Run >= 0) or an internal merge of two subtrees at the given height.
type Dendrogram struct {
	Run         int // leaf index, or -1 for internal nodes
	Label       string
	Height      float64
	Left, Right *Dendrogram
	size        int
}

// Leaves returns the run indices under the node, left to right.
func (d *Dendrogram) Leaves() []int {
	if d.Run >= 0 {
		return []int{d.Run}
	}
	return append(d.Left.Leaves(), d.Right.Leaves()...)
}

// Cluster performs average-linkage (UPGMA) agglomerative clustering of
// the cohort and returns the dendrogram root.
func (mx *Matrix) Cluster() *Dendrogram {
	n := len(mx.D)
	active := make([]*Dendrogram, n)
	for i := range active {
		active[i] = &Dendrogram{Run: i, Label: mx.Labels[i], size: 1}
	}
	// dist holds the current inter-cluster distances.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = append([]float64(nil), mx.D[i]...)
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for merges := 0; merges < n-1; merges++ {
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < len(active); i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < len(active); j++ {
				if !alive[j] {
					continue
				}
				if dist[i][j] < bd {
					bi, bj, bd = i, j, dist[i][j]
				}
			}
		}
		merged := &Dendrogram{
			Run:    -1,
			Height: bd,
			Left:   active[bi],
			Right:  active[bj],
			size:   active[bi].size + active[bj].size,
		}
		// UPGMA update: distance to the merged cluster is the
		// size-weighted average of distances to its parts.
		wi := float64(active[bi].size)
		wj := float64(active[bj].size)
		for k := range active {
			if !alive[k] || k == bi || k == bj {
				continue
			}
			nd := (wi*dist[bi][k] + wj*dist[bj][k]) / (wi + wj)
			dist[bi][k] = nd
			dist[k][bi] = nd
		}
		active[bi] = merged
		alive[bj] = false
	}
	for i, a := range alive {
		if a {
			return active[i]
		}
	}
	return nil
}

// Render draws the dendrogram as indented text, children sorted for
// determinism, with merge heights annotated.
func (d *Dendrogram) Render() string {
	var b strings.Builder
	var rec func(n *Dendrogram, depth int)
	rec = func(n *Dendrogram, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.Run >= 0 {
			fmt.Fprintf(&b, "%s- %s\n", indent, n.Label)
			return
		}
		fmt.Fprintf(&b, "%s+ merged at distance %s\n", indent, trimFloat(n.Height))
		kids := []*Dendrogram{n.Left, n.Right}
		sort.Slice(kids, func(i, j int) bool {
			li, lj := kids[i].Leaves(), kids[j].Leaves()
			return li[0] < lj[0]
		})
		for _, k := range kids {
			rec(k, depth+1)
		}
	}
	rec(d, 0)
	return b.String()
}

// CutAt slices the dendrogram at a height threshold, returning the
// clusters (as run index sets) whose merge heights are all <= h.
func (d *Dendrogram) CutAt(h float64) [][]int {
	var out [][]int
	var rec func(n *Dendrogram)
	rec = func(n *Dendrogram) {
		if n.Run >= 0 || n.Height <= h {
			out = append(out, n.Leaves())
			return
		}
		rec(n.Left)
		rec(n.Right)
	}
	rec(d)
	for _, c := range out {
		sort.Ints(c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
