package analysis

import (
	"context"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

// cohortRuns generates n runs of a random-but-fixed specification.
func cohortRuns(t testing.TB, n int) ([]string, []*wfrun.Run) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 12, SeriesRatio: 1, Forks: 2, Loops: 1}, rng)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	runs := make([]*wfrun.Run, n)
	for i := range runs {
		names[i] = "r" + string(rune('a'+i))
		if runs[i], err = gen.RandomRun(sp, gen.DefaultRunParams(), rng); err != nil {
			t.Fatal(err)
		}
	}
	return names, runs
}

// TestCohortMatrixMatchesDistanceMatrix: a Reset-built cohort matrix
// equals the one-shot DistanceMatrix, whatever the shard count.
func TestCohortMatrixMatchesDistanceMatrix(t *testing.T) {
	names, runs := cohortRuns(t, 7)
	want, err := DistanceMatrix(runs, names, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 16} {
		cm := NewCohortMatrix(cost.Unit{}, workers)
		if err := cm.Reset(names, runs); err != nil {
			t.Fatal(err)
		}
		got := cm.Snapshot()
		if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.D, want.D) {
			t.Fatalf("workers=%d: matrix mismatch\ngot  %v\nwant %v", workers, got.D, want.D)
		}
	}
}

// TestCohortMatrixIncrementalAdd: growing the cohort one run at a time
// converges to the full-recompute matrix while differencing only the
// new pairs — O(n) per import, asserted through the diff-call counter.
func TestCohortMatrixIncrementalAdd(t *testing.T) {
	names, runs := cohortRuns(t, 8)
	cm := NewCohortMatrix(cost.Unit{}, 2)
	for i := range runs {
		before := cm.DiffCalls()
		if err := cm.Add(names[i], runs[i]); err != nil {
			t.Fatal(err)
		}
		if got, want := cm.DiffCalls()-before, int64(i); got != want {
			t.Fatalf("adding run %d performed %d diffs, want exactly %d", i, got, want)
		}
	}
	want, err := DistanceMatrix(runs, names, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	got := cm.Snapshot()
	if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.D, want.D) {
		t.Fatalf("incremental matrix diverged from full recompute\ngot  %v\nwant %v", got.D, want.D)
	}
	// Total incremental work: n(n-1)/2 diffs, same as one full build —
	// but each import only paid its own row.
	if total := cm.DiffCalls(); total != int64(len(runs)*(len(runs)-1)/2) {
		t.Fatalf("total diffs = %d", total)
	}
}

// TestCohortMatrixReplaceAndRemove: re-adding an existing name
// replaces its row (O(n) diffs, not a rebuild); Remove drops the
// row/column with zero diffs.
func TestCohortMatrixReplaceAndRemove(t *testing.T) {
	names, runs := cohortRuns(t, 6)
	cm := NewCohortMatrix(cost.Length{}, 0)
	if err := cm.Reset(names[:5], runs[:5]); err != nil {
		t.Fatal(err)
	}
	v := cm.Version()

	// Replace rb's run with a different one.
	before := cm.DiffCalls()
	if err := cm.Add(names[1], runs[5]); err != nil {
		t.Fatal(err)
	}
	if got := cm.DiffCalls() - before; got != 4 {
		t.Fatalf("replace performed %d diffs, want 4", got)
	}
	if cm.Version() == v {
		t.Fatal("version must change on replace")
	}
	// The replaced cohort must equal a from-scratch matrix over the
	// same member set (order differs: replaced rows move to the end).
	swapped := append(append([]*wfrun.Run(nil), runs[0]), runs[2], runs[3], runs[4], runs[5])
	labels := []string{names[0], names[2], names[3], names[4], names[1]}
	want, err := DistanceMatrix(swapped, labels, cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	got := cm.Snapshot()
	if !reflect.DeepEqual(got.Labels, want.Labels) || !reflect.DeepEqual(got.D, want.D) {
		t.Fatalf("after replace:\ngot  %v %v\nwant %v %v", got.Labels, got.D, want.Labels, want.D)
	}

	// Remove a middle member.
	before = cm.DiffCalls()
	if !cm.Remove(names[2]) {
		t.Fatal("remove of present run must report true")
	}
	if cm.Remove("nope") {
		t.Fatal("remove of absent run must report false")
	}
	if cm.DiffCalls() != before {
		t.Fatal("remove must not difference anything")
	}
	kept := []*wfrun.Run{runs[0], runs[3], runs[4], runs[5]}
	keptNames := []string{names[0], names[3], names[4], names[1]}
	want2, err := DistanceMatrix(kept, keptNames, cost.Length{})
	if err != nil {
		t.Fatal(err)
	}
	got2 := cm.Snapshot()
	if !reflect.DeepEqual(got2.Labels, want2.Labels) || !reflect.DeepEqual(got2.D, want2.D) {
		t.Fatalf("after remove:\ngot  %v %v\nwant %v %v", got2.Labels, got2.D, want2.Labels, want2.D)
	}
	if cm.Has(names[2]) || !cm.Has(names[0]) || cm.Len() != 4 {
		t.Fatalf("membership bookkeeping broken: %v", cm.Labels())
	}
}

// TestCohortMatrixIncrementalSavesDiffs is the acceptance bound: for a
// 32-run cohort, importing one more run must cost >= 5x fewer engine
// diffs than recomputing the whole matrix.
func TestCohortMatrixIncrementalSavesDiffs(t *testing.T) {
	names, runs := cohortRuns(t, 33)
	cm := NewCohortMatrix(cost.Unit{}, 0)
	if err := cm.Reset(names[:32], runs[:32]); err != nil {
		t.Fatal(err)
	}
	fullDiffs := cm.DiffCalls() // 32*31/2 = 496
	before := cm.DiffCalls()
	if err := cm.Add(names[32], runs[32]); err != nil {
		t.Fatal(err)
	}
	incDiffs := cm.DiffCalls() - before // 32
	if incDiffs*5 > fullDiffs {
		t.Fatalf("incremental import cost %d diffs vs %d for the full build; want >= 5x fewer", incDiffs, fullDiffs)
	}
	t.Logf("full build: %d diffs; incremental import: %d diffs (%.1fx fewer)",
		fullDiffs, incDiffs, float64(fullDiffs)/float64(incDiffs))
}

// TestCohortMatrixConcurrentReads: snapshots taken while mutations are
// in flight are always internally consistent (square, labeled,
// symmetric, zero diagonal).
func TestCohortMatrixConcurrentReads(t *testing.T) {
	names, runs := cohortRuns(t, 8)
	cm := NewCohortMatrix(cost.Unit{}, 2)
	if err := cm.Reset(names[:4], runs[:4]); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mx := cm.Snapshot()
				if mx == nil {
					continue
				}
				if len(mx.Labels) != len(mx.D) {
					t.Errorf("snapshot: %d labels, %d rows", len(mx.Labels), len(mx.D))
					return
				}
				for i, row := range mx.D {
					if len(row) != len(mx.D) || row[i] != 0 {
						t.Errorf("snapshot row %d inconsistent", i)
						return
					}
				}
			}
		}()
	}
	for i := 4; i < 8; i++ {
		if err := cm.Add(names[i], runs[i]); err != nil {
			t.Fatal(err)
		}
		cm.Remove(names[i-4])
	}
	close(stop)
	wg.Wait()
}

func TestCohortMatrixErrors(t *testing.T) {
	names, runs := cohortRuns(t, 3)
	cm := NewCohortMatrix(cost.Unit{}, 1)
	if err := cm.Reset([]string{"a"}, runs[:2]); err == nil {
		t.Fatal("length mismatch must error")
	}
	if err := cm.Reset([]string{"a", "a"}, runs[:2]); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate names must error, got %v", err)
	}
	if err := cm.Add("x", nil); err == nil {
		t.Fatal("nil run must error")
	}
	if cm.Snapshot() != nil {
		t.Fatal("empty cohort snapshots to nil")
	}
	_ = names
}

// TestDistanceMatrixCancellation: a cancelled context aborts the
// fan-out with an error instead of finishing the matrix.
func TestDistanceMatrixCancellation(t *testing.T) {
	names, runs := cohortRuns(t, 10)
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	var once sync.Once
	_, err := DistanceMatrixWith(runs, names, cost.Unit{}, Options{
		Workers: 2,
		Context: ctx,
		Progress: func(done, total int) {
			once.Do(func() {
				cancel()
				close(started)
			})
		},
	})
	<-started
	if err == nil || !strings.Contains(err.Error(), "aborted") {
		t.Fatalf("cancelled cohort returned %v, want aborted error", err)
	}
	// An already-cancelled context aborts before any differencing.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	calls := 0
	_, err = DistanceMatrixWith(runs, names, cost.Unit{}, Options{
		Context:  ctx2,
		Progress: func(done, total int) { calls++ },
	})
	if err == nil {
		t.Fatal("pre-cancelled cohort must error")
	}
	// A nil context preserves the old behavior.
	if _, err := DistanceMatrixWith(runs[:3], names[:3], cost.Unit{}, Options{}); err != nil {
		t.Fatal(err)
	}
}
