package analysis

import (
	"repro/internal/cost"
	"repro/internal/metricindex"
	"repro/internal/wfrun"
	"sync"
)

// DefaultIndexThreshold is the cohort size at which a HybridCohort
// abandons the dense O(n²) matrix for the metric index. Below it the
// matrix is cheap to keep current and answers every query shape
// (including silhouettes and MeanAll context) exactly; above it the
// O(n²) diff bill dominates everything else the server does.
const DefaultIndexThreshold = 256

// HybridOptions tunes a HybridCohort.
type HybridOptions struct {
	// IndexThreshold is the cohort size at which the dense matrix is
	// replaced by the metric index: 0 means DefaultIndexThreshold,
	// negative disables indexing entirely (always dense).
	IndexThreshold int
	// Landmarks is the metric index's landmark count; <= 0 means
	// metricindex.DefaultLandmarks.
	Landmarks int
}

// HybridCohort maintains one cohort under the CohortMatrix discipline
// (incremental Add/Remove, bulk-coalesced Reset, exported diff
// counters) while choosing the representation by size: a dense
// CohortMatrix below the index threshold, a metricindex.Index at or
// above it. Switches preserve the cohort and the cumulative counters;
// switching down waits until the cohort falls below half the
// threshold, so a membership hovering at the boundary never thrashes
// O(n²) rebuilds.
//
// Unlike CohortMatrix, reads block while a mutation is in flight (the
// representation pointer itself is what mutations replace); the
// published views handed out by View/Snapshot remain immutable and
// survive any later mutation.
type HybridCohort struct {
	model     cost.Model
	workers   int
	threshold int // <= 0: indexing disabled
	landmarks int

	mu      sync.RWMutex
	cm      *CohortMatrix // exactly one of cm/ix is non-nil
	ix      *metricindex.Index
	version int64

	// Counters of retired representations, so DiffCalls/Rebuilds stay
	// cumulative across switches.
	baseDiffs    int64
	basePruned   int64
	baseRebuilds int64
}

// NewHybridCohort returns an empty hybrid cohort (dense until the
// threshold is reached) for the given cost model. workers caps the
// differencing fan-out as in NewCohortMatrix.
func NewHybridCohort(m cost.Model, workers int, opts HybridOptions) *HybridCohort {
	th := opts.IndexThreshold
	if th == 0 {
		th = DefaultIndexThreshold
	}
	return &HybridCohort{
		model:     m,
		workers:   workers,
		threshold: th,
		landmarks: opts.Landmarks,
		cm:        NewCohortMatrix(m, workers),
	}
}

func (hc *HybridCohort) indexEligible(n int) bool {
	return hc.threshold > 0 && n >= hc.threshold
}

func (hc *HybridCohort) newIndex() *metricindex.Index {
	return metricindex.New(hc.model, metricindex.Options{Landmarks: hc.landmarks, Workers: hc.workers})
}

// retireCM and retireIX fold a representation's counters into the
// cumulative base before dropping it. Caller must hold hc.mu.
func (hc *HybridCohort) retireCM() {
	if hc.cm != nil {
		hc.baseDiffs += hc.cm.DiffCalls()
		hc.baseRebuilds += hc.cm.Rebuilds()
		hc.cm = nil
	}
}

func (hc *HybridCohort) retireIX() {
	if hc.ix != nil {
		hc.baseDiffs += hc.ix.ExactDiffs()
		hc.basePruned += hc.ix.PrunedPairs()
		hc.baseRebuilds += hc.ix.Rebuilds()
		hc.ix = nil
	}
}

// Len returns the current cohort size.
func (hc *HybridCohort) Len() int {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	if hc.ix != nil {
		return hc.ix.Len()
	}
	return hc.cm.Len()
}

// Has reports whether a run name is in the cohort.
func (hc *HybridCohort) Has(name string) bool {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	if hc.ix != nil {
		return hc.ix.Has(name)
	}
	return hc.cm.Has(name)
}

// Labels returns a copy of the cohort's run names.
func (hc *HybridCohort) Labels() []string {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	if hc.ix != nil {
		return hc.ix.Labels()
	}
	return hc.cm.Labels()
}

// Members returns the cohort's names and runs.
func (hc *HybridCohort) Members() ([]string, []*wfrun.Run) {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	if hc.ix != nil {
		return hc.ix.Members()
	}
	return hc.cm.Members()
}

// Version returns a counter bumped by every successful mutation,
// monotone across representation switches.
func (hc *HybridCohort) Version() int64 {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	return hc.version
}

// Indexed reports whether the cohort currently lives in the metric
// index.
func (hc *HybridCohort) Indexed() bool {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	return hc.ix != nil
}

// DiffCalls reports the cumulative exact differencing calls across
// both representations and all switches.
func (hc *HybridCohort) DiffCalls() int64 {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	n := hc.baseDiffs
	if hc.ix != nil {
		n += hc.ix.ExactDiffs()
	} else {
		n += hc.cm.DiffCalls()
	}
	return n
}

// PrunedPairs reports the cumulative candidate pairs index queries
// eliminated without an exact diff (0 while the cohort has only ever
// been dense).
func (hc *HybridCohort) PrunedPairs() int64 {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	n := hc.basePruned
	if hc.ix != nil {
		n += hc.ix.PrunedPairs()
	}
	return n
}

// Rebuilds reports the cumulative full rebuilds (Reset calls) across
// both representations.
func (hc *HybridCohort) Rebuilds() int64 {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	n := hc.baseRebuilds
	if hc.ix != nil {
		n += hc.ix.Rebuilds()
	} else {
		n += hc.cm.Rebuilds()
	}
	return n
}

// Snapshot returns a deep copy of the dense matrix, or nil when the
// cohort is empty or currently indexed. Callers that must have a
// matrix at any size (the ?exact= escape hatch) should compute a
// one-shot DistanceMatrixWith instead.
func (hc *HybridCohort) Snapshot() *Matrix {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	if hc.cm == nil {
		return nil
	}
	return hc.cm.Snapshot()
}

// CohortView is the representation-agnostic result of View: exactly
// one of Matrix (dense) and Index (metric index) is non-nil for a
// non-empty cohort. Both variants are immutable.
type CohortView struct {
	Matrix *Matrix
	Index  *metricindex.Cohort
}

// Len returns the number of runs in the view.
func (v *CohortView) Len() int {
	switch {
	case v == nil:
		return 0
	case v.Matrix != nil:
		return len(v.Matrix.Labels)
	case v.Index != nil:
		return v.Index.Len()
	}
	return 0
}

// Labels returns the view's run names in cohort order.
func (v *CohortView) Labels() []string {
	switch {
	case v == nil:
		return nil
	case v.Matrix != nil:
		return v.Matrix.Labels
	case v.Index != nil:
		return v.Index.Labels()
	}
	return nil
}

// Indexed reports whether the view is index-backed.
func (v *CohortView) Indexed() bool { return v != nil && v.Index != nil }

// View returns an immutable view of the cohort in its current
// representation (a CohortView with both fields nil when empty).
func (hc *HybridCohort) View() *CohortView {
	hc.mu.RLock()
	defer hc.mu.RUnlock()
	if hc.ix != nil {
		return &CohortView{Index: hc.ix.Snapshot()}
	}
	return &CohortView{Matrix: hc.cm.Snapshot()}
}

// Reset replaces the whole cohort, choosing the representation by the
// new size. The old representation is only retired once the new build
// succeeds.
func (hc *HybridCohort) Reset(names []string, runs []*wfrun.Run) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if hc.indexEligible(len(runs)) {
		ix := hc.ix
		if ix == nil {
			ix = hc.newIndex()
		}
		if err := ix.Reset(names, runs); err != nil {
			return err
		}
		if hc.ix == nil {
			hc.retireCM()
			hc.ix = ix
		}
	} else {
		cm := hc.cm
		if cm == nil {
			cm = NewCohortMatrix(hc.model, hc.workers)
		}
		if err := cm.Reset(names, runs); err != nil {
			return err
		}
		if hc.cm == nil {
			hc.retireIX()
			hc.cm = cm
		}
	}
	hc.version++
	return nil
}

// Add appends (or replaces) one run. A dense cohort that reaches the
// threshold is re-homed into a fresh metric index — m·n diffs, paid
// once — so steady incremental growth crosses over without any caller
// involvement.
func (hc *HybridCohort) Add(name string, run *wfrun.Run) error {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if hc.ix != nil {
		if err := hc.ix.Add(name, run); err != nil {
			return err
		}
		hc.version++
		return nil
	}
	if err := hc.cm.Add(name, run); err != nil {
		return err
	}
	hc.version++
	if hc.indexEligible(hc.cm.Len()) {
		names, runs := hc.cm.Members()
		ix := hc.newIndex()
		if err := ix.Reset(names, runs); err != nil {
			return err // cohort stays dense and correct; caller may retry
		}
		hc.retireCM()
		hc.ix = ix
	}
	return nil
}

// Remove drops a run and reports whether it was present. An indexed
// cohort shrinking below half the threshold returns to a dense matrix
// (best-effort: on a rebuild error the index, which is still correct,
// stays).
func (hc *HybridCohort) Remove(name string) bool {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	if hc.ix == nil {
		ok := hc.cm.Remove(name)
		if ok {
			hc.version++
		}
		return ok
	}
	ok := hc.ix.Remove(name)
	if !ok {
		return false
	}
	hc.version++
	if hc.threshold > 0 && hc.ix.Len() < hc.threshold/2 {
		names, runs := hc.ix.Members()
		cm := NewCohortMatrix(hc.model, hc.workers)
		if err := cm.Reset(names, runs); err == nil {
			hc.retireIX()
			hc.cm = cm
		}
	}
	return true
}
