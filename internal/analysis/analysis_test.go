package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

func cohort(t *testing.T, n int, seed int64) []*wfrun.Run {
	t.Helper()
	sp := fixtures.Fig2SpecWithLoop()
	rng := rand.New(rand.NewSource(seed))
	runs := make([]*wfrun.Run, n)
	for i := range runs {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = r
	}
	return runs
}

func TestDistanceMatrixProperties(t *testing.T) {
	runs := cohort(t, 6, 1)
	mx, err := DistanceMatrix(runs, nil, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	n := len(runs)
	for i := 0; i < n; i++ {
		if mx.D[i][i] != 0 {
			t.Fatalf("diagonal not zero at %d", i)
		}
		for j := 0; j < n; j++ {
			if mx.D[i][j] != mx.D[j][i] {
				t.Fatalf("asymmetric at (%d,%d)", i, j)
			}
			if mx.D[i][j] < 0 {
				t.Fatalf("negative distance at (%d,%d)", i, j)
			}
		}
	}
	out := mx.String()
	if !strings.Contains(out, "r0") || !strings.Contains(out, "r5") {
		t.Fatalf("labels missing:\n%s", out)
	}
}

func TestDistanceMatrixErrors(t *testing.T) {
	if _, err := DistanceMatrix(nil, nil, cost.Unit{}); err == nil {
		t.Fatal("empty cohort must fail")
	}
	runs := cohort(t, 2, 2)
	if _, err := DistanceMatrix(runs, []string{"only-one"}, cost.Unit{}); err == nil {
		t.Fatal("label count mismatch must fail")
	}
	spA := fixtures.Fig2Spec()
	spB := fixtures.Fig2Spec()
	mixed := []*wfrun.Run{fixtures.Fig2R1(spA), fixtures.Fig2R2(spB)}
	if _, err := DistanceMatrix(mixed, nil, cost.Unit{}); err == nil {
		t.Fatal("mixed specifications must fail")
	}
}

func TestMedoidAndOutlier(t *testing.T) {
	// Three identical runs plus one very different run: the outlier
	// must be the different one, the medoid one of the identical.
	sp := fixtures.Fig2Spec()
	same1 := fixtures.Fig2R1(sp)
	same2 := fixtures.Fig2R1(sp)
	same3 := fixtures.Fig2R1(sp)
	diff := fixtures.Fig2R2(sp)
	mx, err := DistanceMatrix([]*wfrun.Run{same1, same2, diff, same3}, nil, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if got := mx.Outlier(); got != 2 {
		t.Fatalf("outlier = %d, want 2\n%s", got, mx)
	}
	if got := mx.Medoid(); got == 2 {
		t.Fatalf("medoid must not be the outlier\n%s", mx)
	}
	if j, d := mx.Nearest(0); d != 0 || (j != 1 && j != 3) {
		t.Fatalf("nearest(0) = %d,%g", j, d)
	}
}

func TestClusterSeparatesGroups(t *testing.T) {
	sp := fixtures.Fig2Spec()
	runs := []*wfrun.Run{
		fixtures.Fig2R1(sp), fixtures.Fig2R1(sp), // group A
		fixtures.Fig2R2(sp), fixtures.Fig2R2(sp), // group B
	}
	mx, err := DistanceMatrix(runs, []string{"a1", "a2", "b1", "b2"}, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	root := mx.Cluster()
	if root == nil {
		t.Fatal("no dendrogram")
	}
	leaves := root.Leaves()
	if len(leaves) != 4 {
		t.Fatalf("leaves = %v", leaves)
	}
	// Cutting just above zero separates {a1,a2} from {b1,b2}.
	clusters := root.CutAt(0)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v, want two groups", clusters)
	}
	want := map[int]int{0: 0, 1: 0, 2: 1, 3: 1}
	for ci, c := range clusters {
		for _, r := range c {
			if want[r] != ci && want[r] != 1-ci {
				t.Fatalf("run %d in wrong cluster: %v", r, clusters)
			}
		}
		// Members of one cluster must share a group.
		g := want[c[0]]
		for _, r := range c {
			if want[r] != g {
				t.Fatalf("mixed cluster: %v", clusters)
			}
		}
	}
	// Cutting above the root yields one cluster.
	if all := root.CutAt(1e9); len(all) != 1 || len(all[0]) != 4 {
		t.Fatalf("CutAt(inf) = %v", all)
	}
	text := root.Render()
	for _, l := range []string{"a1", "b2", "merged at distance"} {
		if !strings.Contains(text, l) {
			t.Fatalf("dendrogram missing %q:\n%s", l, text)
		}
	}
}

func TestClusterSingleRun(t *testing.T) {
	sp := fixtures.Fig2Spec()
	mx, err := DistanceMatrix([]*wfrun.Run{fixtures.Fig2R1(sp)}, nil, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	root := mx.Cluster()
	if root == nil || root.Run != 0 {
		t.Fatalf("single-run dendrogram should be the leaf itself, got %+v", root)
	}
}

// TestDistanceMatrixProgress checks the per-pair progress callback:
// monotone completed counts, the right total, and a final done==total
// event, with the matrix identical to the callback-free path.
func TestDistanceMatrixProgress(t *testing.T) {
	runs := cohort(t, 5, 3)
	total := len(runs) * (len(runs) - 1) / 2
	var events [][2]int
	mx, err := DistanceMatrixWith(runs, nil, cost.Unit{}, Options{
		Workers: 3,
		Progress: func(done, tot int) {
			events = append(events, [2]int{done, tot})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != total {
		t.Fatalf("got %d progress events, want %d", len(events), total)
	}
	for i, ev := range events {
		if ev[0] != i+1 || ev[1] != total {
			t.Fatalf("event %d = %v, want {%d %d}", i, ev, i+1, total)
		}
	}
	plain, err := DistanceMatrix(runs, nil, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.D {
		for j := range plain.D[i] {
			if mx.D[i][j] != plain.D[i][j] {
				t.Fatalf("matrix differs at %d,%d", i, j)
			}
		}
	}
}
