package graph

import (
	"strings"
	"testing"
)

func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New()
	for _, n := range []string{"s", "a", "b", "t"} {
		g.MustAddNode(NodeID(n), n)
	}
	g.MustAddEdge("s", "a")
	g.MustAddEdge("s", "b")
	g.MustAddEdge("a", "t")
	g.MustAddEdge("b", "t")
	return g
}

func TestAddNodeDuplicate(t *testing.T) {
	g := New()
	if err := g.AddNode("x", "lab"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddNode("x", "lab"); err != nil {
		t.Fatalf("re-adding identical node should be a no-op, got %v", err)
	}
	if err := g.AddNode("x", "other"); err == nil {
		t.Fatal("expected error re-adding node with different label")
	}
	if err := g.AddNode("", "lab"); err == nil {
		t.Fatal("expected error for empty node id")
	}
	if g.NumNodes() != 1 {
		t.Fatalf("NumNodes = %d, want 1", g.NumNodes())
	}
}

func TestAddEdgeUnknownEndpoint(t *testing.T) {
	g := New()
	g.MustAddNode("a", "a")
	if _, err := g.AddEdge("a", "b"); err == nil {
		t.Fatal("expected error for unknown target")
	}
	if _, err := g.AddEdge("b", "a"); err == nil {
		t.Fatal("expected error for unknown source")
	}
}

func TestParallelEdgeKeys(t *testing.T) {
	g := New()
	g.MustAddNode("a", "a")
	g.MustAddNode("b", "b")
	e0 := g.MustAddEdge("a", "b")
	e1 := g.MustAddEdge("a", "b")
	if e0.Key != 0 || e1.Key != 1 {
		t.Fatalf("parallel keys = %d, %d; want 0, 1", e0.Key, e1.Key)
	}
	if e0.String() != "(a,b)" || e1.String() != "(a,b)#1" {
		t.Fatalf("edge strings = %q, %q", e0.String(), e1.String())
	}
	if g.OutDegree("a") != 2 || g.InDegree("b") != 2 {
		t.Fatalf("degrees wrong: out=%d in=%d", g.OutDegree("a"), g.InDegree("b"))
	}
}

func TestRemoveEdgeAndNode(t *testing.T) {
	g := diamond(t)
	e := g.Out("s")[0]
	if !g.RemoveEdge(e) {
		t.Fatal("RemoveEdge returned false for present edge")
	}
	if g.RemoveEdge(e) {
		t.Fatal("RemoveEdge returned true for absent edge")
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	if !g.RemoveNode("a") {
		t.Fatal("RemoveNode returned false")
	}
	if g.HasNode("a") {
		t.Fatal("node a still present")
	}
	for _, e := range g.Edges() {
		if e.From == "a" || e.To == "a" {
			t.Fatalf("dangling edge %s", e)
		}
	}
}

func TestSourceSink(t *testing.T) {
	g := diamond(t)
	s, err := g.Source()
	if err != nil || s != "s" {
		t.Fatalf("Source = %v, %v", s, err)
	}
	tt, err := g.Sink()
	if err != nil || tt != "t" {
		t.Fatalf("Sink = %v, %v", tt, err)
	}
	g.MustAddNode("u", "u") // isolated node: second source and sink
	if _, err := g.Source(); err == nil {
		t.Fatal("expected multiple-source error")
	}
}

func TestTopoOrderAndCycle(t *testing.T) {
	g := diamond(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[NodeID]int{}
	for i, n := range order {
		pos[n] = i
	}
	for _, e := range g.Edges() {
		if pos[e.From] >= pos[e.To] {
			t.Fatalf("edge %s violates topological order", e)
		}
	}
	g.MustAddEdge("t", "s")
	if g.IsAcyclic() {
		t.Fatal("cycle not detected")
	}
}

func TestCheckFlowNetwork(t *testing.T) {
	g := diamond(t)
	s, tt, err := g.CheckFlowNetwork()
	if err != nil || s != "s" || tt != "t" {
		t.Fatalf("CheckFlowNetwork = %v,%v,%v", s, tt, err)
	}
	// A node off every s-t path.
	g2 := diamond(t)
	g2.MustAddNode("x", "x")
	g2.MustAddEdge("s", "x")
	if _, _, err := g2.CheckFlowNetwork(); err == nil {
		t.Fatal("expected error: x is a second sink")
	}
	if _, _, err := New().CheckFlowNetwork(); err == nil {
		t.Fatal("expected error for empty graph")
	}
}

func TestReachability(t *testing.T) {
	g := diamond(t)
	from := g.ReachableFrom("a")
	if !from["t"] || from["b"] || !from["a"] {
		t.Fatalf("ReachableFrom(a) = %v", from)
	}
	to := g.CoReachableTo("a")
	if !to["s"] || to["b"] {
		t.Fatalf("CoReachableTo(a) = %v", to)
	}
}

func TestUniqueLabelsAndNodeByLabel(t *testing.T) {
	g := diamond(t)
	if !g.UniqueLabels() {
		t.Fatal("labels should be unique")
	}
	n, err := g.NodeByLabel("a")
	if err != nil || n != "a" {
		t.Fatalf("NodeByLabel = %v, %v", n, err)
	}
	g.MustAddNode("a2", "a")
	if g.UniqueLabels() {
		t.Fatal("duplicate label not detected")
	}
	if _, err := g.NodeByLabel("a"); err == nil {
		t.Fatal("expected ambiguity error")
	}
	if _, err := g.NodeByLabel("zzz"); err == nil {
		t.Fatal("expected missing-label error")
	}
}

func TestClonePreservesKeys(t *testing.T) {
	g := New()
	g.MustAddNode("a", "a")
	g.MustAddNode("b", "b")
	g.MustAddEdge("a", "b")
	g.MustAddEdge("a", "b")
	c := g.Clone()
	if c.String() != g.String() {
		t.Fatalf("clone differs:\n%s\nvs\n%s", c, g)
	}
	c.MustAddNode("z", "z")
	if g.HasNode("z") {
		t.Fatal("clone is not independent")
	}
}

func TestStringDeterministic(t *testing.T) {
	g := diamond(t)
	s := g.String()
	if !strings.Contains(s, "s[s]") || !strings.Contains(s, "(a,t)") {
		t.Fatalf("unexpected rendering: %s", s)
	}
	if s != g.String() {
		t.Fatal("String not deterministic")
	}
}

func TestFindHomomorphism(t *testing.T) {
	spec := diamond(t)
	run := New()
	for _, n := range []struct{ id, label string }{
		{"sa", "s"}, {"aa", "a"}, {"ab", "a"}, {"ta", "t"},
	} {
		run.MustAddNode(NodeID(n.id), n.label)
	}
	run.MustAddEdge("sa", "aa")
	run.MustAddEdge("sa", "ab")
	run.MustAddEdge("aa", "ta")
	run.MustAddEdge("ab", "ta")
	h, err := FindHomomorphism(run, spec)
	if err != nil {
		t.Fatal(err)
	}
	if h["aa"] != "a" || h["ab"] != "a" || h["sa"] != "s" {
		t.Fatalf("homomorphism wrong: %v", h)
	}
}

func TestFindHomomorphismRejectsBadEdge(t *testing.T) {
	spec := diamond(t)
	run := New()
	run.MustAddNode("sa", "s")
	run.MustAddNode("ba", "b")
	run.MustAddNode("aa", "a")
	run.MustAddNode("ta", "t")
	run.MustAddEdge("sa", "ba")
	run.MustAddEdge("ba", "aa") // (b,a) is not a specification edge
	run.MustAddEdge("aa", "ta")
	if _, err := FindHomomorphism(run, spec); err == nil {
		t.Fatal("expected rejection of edge with no specification image")
	}
}

func TestFindHomomorphismRejectsUnknownLabel(t *testing.T) {
	spec := diamond(t)
	run := New()
	run.MustAddNode("sa", "s")
	run.MustAddNode("xa", "x")
	run.MustAddNode("ta", "t")
	run.MustAddEdge("sa", "xa")
	run.MustAddEdge("xa", "ta")
	if _, err := FindHomomorphism(run, spec); err == nil {
		t.Fatal("expected rejection of unknown label")
	}
}

func TestElementaryPath(t *testing.T) {
	g := New()
	for _, n := range []string{"s", "x", "y", "t", "z"} {
		g.MustAddNode(NodeID(n), n)
	}
	// Two parallel paths s->x->y->t and s->z->t make the internal
	// nodes degree-1 and the terminals branch.
	g.MustAddEdge("s", "x")
	g.MustAddEdge("x", "y")
	g.MustAddEdge("y", "t")
	g.MustAddEdge("s", "z")
	g.MustAddEdge("z", "t")
	if err := ElementaryPath(g, []NodeID{"s", "x", "y", "t"}); err != nil {
		t.Fatalf("valid elementary path rejected: %v", err)
	}
	if err := ElementaryPath(g, []NodeID{"s", "x"}); err == nil {
		t.Fatal("path ending at degree-1 node x should be rejected")
	}
	if err := ElementaryPath(g, []NodeID{"s"}); err == nil {
		t.Fatal("zero-edge path should be rejected")
	}
	if err := ElementaryPath(g, []NodeID{"s", "y", "t"}); err == nil {
		t.Fatal("path with missing edge should be rejected")
	}
}
