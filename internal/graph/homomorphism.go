package graph

import "fmt"

// Homomorphism maps run nodes to specification nodes.
type Homomorphism map[NodeID]NodeID

// FindHomomorphism computes the label-preserving homomorphism h from a
// run graph R to a specification graph G required by the validity
// definition of Section III-B:
//
//  1. Label(v) = Label(h(v)) for every run node v,
//  2. h(s(R)) = s(G) and h(t(R)) = t(G),
//  3. (h(u), h(v)) ∈ E(G) for every run edge (u, v).
//
// Because specification labels are unique, h is fully determined by
// labels; this function computes it and verifies all three conditions.
// R must additionally be acyclic (runs unfold loops).
func FindHomomorphism(run, spec *Graph) (Homomorphism, error) {
	if !spec.UniqueLabels() {
		return nil, fmt.Errorf("graph: specification labels are not unique")
	}
	if !run.IsAcyclic() {
		return nil, fmt.Errorf("graph: run graph has a cycle")
	}
	sR, tR, err := run.CheckFlowNetwork()
	if err != nil {
		return nil, fmt.Errorf("graph: run is not a flow network: %w", err)
	}
	sG, tG, err := spec.CheckFlowNetwork()
	if err != nil {
		return nil, fmt.Errorf("graph: specification is not a flow network: %w", err)
	}
	byLabel := make(map[string]NodeID, spec.NumNodes())
	for _, n := range spec.Nodes() {
		byLabel[spec.Label(n)] = n
	}
	h := make(Homomorphism, run.NumNodes())
	for _, v := range run.Nodes() {
		g, ok := byLabel[run.Label(v)]
		if !ok {
			return nil, fmt.Errorf("graph: run node %s has label %q absent from specification", v, run.Label(v))
		}
		h[v] = g
	}
	if h[sR] != sG {
		return nil, fmt.Errorf("graph: run source %s does not map to specification source %s", sR, sG)
	}
	if h[tR] != tG {
		return nil, fmt.Errorf("graph: run sink %s does not map to specification sink %s", tR, tG)
	}
	specHasEdge := make(map[[2]NodeID]bool, spec.NumEdges())
	for _, e := range spec.Edges() {
		specHasEdge[[2]NodeID{e.From, e.To}] = true
	}
	for _, e := range run.Edges() {
		if !specHasEdge[[2]NodeID{h[e.From], h[e.To]}] {
			return nil, fmt.Errorf("graph: run edge %s has no image (%s,%s) in specification",
				e, h[e.From], h[e.To])
		}
	}
	return h, nil
}

// ElementaryPath reports whether the node sequence p = v0, v1, ..., vk
// is an elementary path in g per Definition 3.4: every internal node
// has exactly one incoming and one outgoing edge, the start has at
// least two outgoing edges, and the end has at least two incoming
// edges. Paths must have at least one edge.
func ElementaryPath(g *Graph, p []NodeID) error {
	if len(p) < 2 {
		return fmt.Errorf("graph: elementary path needs at least one edge")
	}
	for i := 0; i+1 < len(p); i++ {
		if !hasAnyEdge(g, p[i], p[i+1]) {
			return fmt.Errorf("graph: missing edge (%s,%s)", p[i], p[i+1])
		}
	}
	for i := 1; i+1 < len(p); i++ {
		if g.InDegree(p[i]) != 1 || g.OutDegree(p[i]) != 1 {
			return fmt.Errorf("graph: internal node %s has degree (in=%d,out=%d), want (1,1)",
				p[i], g.InDegree(p[i]), g.OutDegree(p[i]))
		}
	}
	if g.OutDegree(p[0]) < 2 {
		return fmt.Errorf("graph: path start %s has out-degree %d, want >= 2", p[0], g.OutDegree(p[0]))
	}
	if g.InDegree(p[len(p)-1]) < 2 {
		return fmt.Errorf("graph: path end %s has in-degree %d, want >= 2", p[len(p)-1], g.InDegree(p[len(p)-1]))
	}
	return nil
}

func hasAnyEdge(g *Graph, from, to NodeID) bool {
	for _, e := range g.Out(from) {
		if e.To == to {
			return true
		}
	}
	return false
}
