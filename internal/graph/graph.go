// Package graph provides node-labeled directed multigraphs and the
// flow-network predicates used by the workflow model of Bao et al.
// (Definition 3.1): a flow network is a directed graph with a unique
// source, a unique sink, and every node on some source-sink path.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a Graph. IDs are arbitrary non-empty
// strings; in specifications they coincide with the (unique) labels, in
// runs they are label instances such as "3b".
type NodeID string

// Edge is a directed edge between two nodes. Key disambiguates parallel
// edges between the same endpoints (SP-graphs are multigraphs); for
// simple graphs Key is 0.
type Edge struct {
	From NodeID
	To   NodeID
	Key  int
}

// String renders the edge as "(u,v)" or "(u,v)#k" for parallel edges.
func (e Edge) String() string {
	if e.Key == 0 {
		return fmt.Sprintf("(%s,%s)", e.From, e.To)
	}
	return fmt.Sprintf("(%s,%s)#%d", e.From, e.To, e.Key)
}

// Graph is a node-labeled directed multigraph. The zero value is an
// empty graph ready to use.
type Graph struct {
	nodes  []NodeID
	labels map[NodeID]string
	edges  []Edge
	out    map[NodeID][]Edge
	in     map[NodeID][]Edge
	keySeq map[[2]NodeID]int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		labels: make(map[NodeID]string),
		out:    make(map[NodeID][]Edge),
		in:     make(map[NodeID][]Edge),
		keySeq: make(map[[2]NodeID]int),
	}
}

// AddNode inserts a node with the given label. Adding an existing node
// with the same label is a no-op; with a different label it is an error.
func (g *Graph) AddNode(id NodeID, label string) error {
	if id == "" {
		return fmt.Errorf("graph: empty node id")
	}
	if have, ok := g.labels[id]; ok {
		if have != label {
			return fmt.Errorf("graph: node %s already exists with label %q (got %q)", id, have, label)
		}
		return nil
	}
	g.nodes = append(g.nodes, id)
	g.labels[id] = label
	return nil
}

// MustAddNode is AddNode that panics on error; for hand-built fixtures.
func (g *Graph) MustAddNode(id NodeID, label string) {
	if err := g.AddNode(id, label); err != nil {
		panic(err)
	}
}

// AddEdge inserts a directed edge and returns it. Both endpoints must
// already exist. Parallel edges receive increasing keys.
func (g *Graph) AddEdge(from, to NodeID) (Edge, error) {
	if _, ok := g.labels[from]; !ok {
		return Edge{}, fmt.Errorf("graph: unknown node %s", from)
	}
	if _, ok := g.labels[to]; !ok {
		return Edge{}, fmt.Errorf("graph: unknown node %s", to)
	}
	pair := [2]NodeID{from, to}
	key := g.keySeq[pair]
	g.keySeq[pair] = key + 1
	e := Edge{From: from, To: to, Key: key}
	g.edges = append(g.edges, e)
	g.out[from] = append(g.out[from], e)
	g.in[to] = append(g.in[to], e)
	return e, nil
}

// MustAddEdge is AddEdge that panics on error.
func (g *Graph) MustAddEdge(from, to NodeID) Edge {
	e, err := g.AddEdge(from, to)
	if err != nil {
		panic(err)
	}
	return e
}

// RemoveEdge deletes a specific edge. It reports whether the edge was
// present.
func (g *Graph) RemoveEdge(e Edge) bool {
	idx := -1
	for i, have := range g.edges {
		if have == e {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	g.edges = append(g.edges[:idx], g.edges[idx+1:]...)
	g.out[e.From] = removeEdge(g.out[e.From], e)
	g.in[e.To] = removeEdge(g.in[e.To], e)
	return true
}

// RemoveNode deletes a node and all incident edges. It reports whether
// the node was present.
func (g *Graph) RemoveNode(id NodeID) bool {
	if _, ok := g.labels[id]; !ok {
		return false
	}
	for _, e := range append([]Edge(nil), g.out[id]...) {
		g.RemoveEdge(e)
	}
	for _, e := range append([]Edge(nil), g.in[id]...) {
		g.RemoveEdge(e)
	}
	delete(g.labels, id)
	delete(g.out, id)
	delete(g.in, id)
	for i, n := range g.nodes {
		if n == id {
			g.nodes = append(g.nodes[:i], g.nodes[i+1:]...)
			break
		}
	}
	return true
}

func removeEdge(s []Edge, e Edge) []Edge {
	for i, have := range s {
		if have == e {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// Nodes returns the node IDs in insertion order. The slice is a copy.
func (g *Graph) Nodes() []NodeID {
	return append([]NodeID(nil), g.nodes...)
}

// Edges returns all edges in insertion order. The slice is a copy.
func (g *Graph) Edges() []Edge {
	return append([]Edge(nil), g.edges...)
}

// NumNodes returns |V(G)|.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns |E(G)|.
func (g *Graph) NumEdges() int { return len(g.edges) }

// HasNode reports whether id is a node of g.
func (g *Graph) HasNode(id NodeID) bool {
	_, ok := g.labels[id]
	return ok
}

// Label returns the label on a node; empty if the node is unknown.
func (g *Graph) Label(id NodeID) string { return g.labels[id] }

// Out returns the outgoing edges of a node (copy).
func (g *Graph) Out(id NodeID) []Edge { return append([]Edge(nil), g.out[id]...) }

// In returns the incoming edges of a node (copy).
func (g *Graph) In(id NodeID) []Edge { return append([]Edge(nil), g.in[id]...) }

// OutDegree returns the number of outgoing edges of a node.
func (g *Graph) OutDegree(id NodeID) int { return len(g.out[id]) }

// InDegree returns the number of incoming edges of a node.
func (g *Graph) InDegree(id NodeID) int { return len(g.in[id]) }

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.nodes {
		c.MustAddNode(n, g.labels[n])
	}
	for _, e := range g.edges {
		// Preserve keys by replaying insertions in order: AddEdge
		// assigns keys sequentially per endpoint pair, matching the
		// original assignment order.
		c.MustAddEdge(e.From, e.To)
	}
	return c
}

// Source returns the unique node with in-degree zero, or an error if
// there is not exactly one.
func (g *Graph) Source() (NodeID, error) {
	var srcs []NodeID
	for _, n := range g.nodes {
		if len(g.in[n]) == 0 {
			srcs = append(srcs, n)
		}
	}
	if len(srcs) != 1 {
		return "", fmt.Errorf("graph: want exactly one source, have %d", len(srcs))
	}
	return srcs[0], nil
}

// Sink returns the unique node with out-degree zero, or an error if
// there is not exactly one.
func (g *Graph) Sink() (NodeID, error) {
	var sinks []NodeID
	for _, n := range g.nodes {
		if len(g.out[n]) == 0 {
			sinks = append(sinks, n)
		}
	}
	if len(sinks) != 1 {
		return "", fmt.Errorf("graph: want exactly one sink, have %d", len(sinks))
	}
	return sinks[0], nil
}

// IsAcyclic reports whether the graph has no directed cycle.
func (g *Graph) IsAcyclic() bool {
	_, err := g.TopoOrder()
	return err == nil
}

// TopoOrder returns the nodes in a topological order, or an error if
// the graph has a cycle.
func (g *Graph) TopoOrder() ([]NodeID, error) {
	indeg := make(map[NodeID]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n] = len(g.in[n])
	}
	var queue []NodeID
	for _, n := range g.nodes {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	order := make([]NodeID, 0, len(g.nodes))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		order = append(order, n)
		for _, e := range g.out[n] {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, e.To)
			}
		}
	}
	if len(order) != len(g.nodes) {
		return nil, fmt.Errorf("graph: cycle detected")
	}
	return order, nil
}

// ReachableFrom returns the set of nodes reachable from start
// (including start) following edge direction.
func (g *Graph) ReachableFrom(start NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{start: true}
	stack := []NodeID{start}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.out[n] {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	return seen
}

// CoReachableTo returns the set of nodes that can reach end (including
// end) following edge direction.
func (g *Graph) CoReachableTo(end NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{end: true}
	stack := []NodeID{end}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.in[n] {
			if !seen[e.From] {
				seen[e.From] = true
				stack = append(stack, e.From)
			}
		}
	}
	return seen
}

// CheckFlowNetwork verifies Definition 3.1: a unique source s, a unique
// sink t, and every node on some s-t path. It returns (s, t, nil) on
// success.
func (g *Graph) CheckFlowNetwork() (s, t NodeID, err error) {
	if len(g.nodes) == 0 {
		return "", "", fmt.Errorf("graph: empty graph is not a flow network")
	}
	s, err = g.Source()
	if err != nil {
		return "", "", err
	}
	t, err = g.Sink()
	if err != nil {
		return "", "", err
	}
	if s == t && len(g.nodes) > 1 {
		return "", "", fmt.Errorf("graph: source equals sink in multi-node graph")
	}
	fromS := g.ReachableFrom(s)
	toT := g.CoReachableTo(t)
	for _, n := range g.nodes {
		if !fromS[n] || !toT[n] {
			return "", "", fmt.Errorf("graph: node %s is not on any %s-%s path", n, s, t)
		}
	}
	return s, t, nil
}

// UniqueLabels reports whether all node labels are distinct, as the
// workflow specification model requires.
func (g *Graph) UniqueLabels() bool {
	seen := make(map[string]bool, len(g.nodes))
	for _, n := range g.nodes {
		l := g.labels[n]
		if seen[l] {
			return false
		}
		seen[l] = true
	}
	return true
}

// NodeByLabel returns the node carrying the given label. It fails if
// zero or multiple nodes carry it.
func (g *Graph) NodeByLabel(label string) (NodeID, error) {
	var found []NodeID
	for _, n := range g.nodes {
		if g.labels[n] == label {
			found = append(found, n)
		}
	}
	if len(found) != 1 {
		return "", fmt.Errorf("graph: label %q carried by %d nodes", label, len(found))
	}
	return found[0], nil
}

// String renders a deterministic multi-line description, useful in
// tests and error messages.
func (g *Graph) String() string {
	nodes := g.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	var b strings.Builder
	b.WriteString("nodes:")
	for _, n := range nodes {
		fmt.Fprintf(&b, " %s[%s]", n, g.labels[n])
	}
	edges := g.Edges()
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		if edges[i].To != edges[j].To {
			return edges[i].To < edges[j].To
		}
		return edges[i].Key < edges[j].Key
	})
	b.WriteString("\nedges:")
	for _, e := range edges {
		b.WriteString(" " + e.String())
	}
	return b.String()
}
