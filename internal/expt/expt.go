// Package expt reproduces the paper's evaluation (Section VIII): one
// runner per table/figure, each emitting the same rows/series the
// paper reports. Runners take an Options value so benchmarks can use
// reduced sample counts while the CLI can run at paper scale.
package expt

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/spec"
	"repro/internal/wfrun"
)

// Table is a labeled numeric result table.
type Table struct {
	Name      string
	Cols      []string
	RowLabels []string // optional; empty means no label column
	Rows      [][]float64
}

// TSV renders the table as tab-separated values with a header line.
func (t *Table) TSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Name)
	if len(t.RowLabels) > 0 {
		b.WriteString("name\t")
	}
	b.WriteString(strings.Join(t.Cols, "\t"))
	b.WriteByte('\n')
	for i, row := range t.Rows {
		if len(t.RowLabels) > 0 {
			b.WriteString(t.RowLabels[i])
			b.WriteByte('\t')
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = formatCell(v)
		}
		b.WriteString(strings.Join(parts, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

func formatCell(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.6g", v)
}

// Options controls workload scale. Zero values fall back to Defaults.
type Options struct {
	// Samples is the number of run pairs (or sample specifications)
	// averaged per data point. The paper uses 100-200.
	Samples int
	// Fig11Sizes are the total-edge targets for the real-workflow
	// experiment (paper: 200..2000 step 200).
	Fig11Sizes []int
	// Fig12Sizes are the specification edge counts for the
	// series-vs-parallel experiment (paper: 100..1000 step 100).
	Fig12Sizes []int
	// Probs are the fork/loop probabilities for Figs. 14/15
	// (paper: 0..1 step 0.1).
	Probs []float64
	// Epsilons are the cost exponents for Fig. 16 (paper: 0..1).
	Epsilons []float64
	// Seed makes runs reproducible.
	Seed int64
}

// Defaults returns a reduced workload suitable for tests and benches.
func Defaults() Options {
	return Options{
		Samples:    3,
		Fig11Sizes: []int{200, 400, 600},
		Fig12Sizes: []int{100, 200, 300},
		Probs:      []float64{0, 0.25, 0.5, 0.75, 1},
		Epsilons:   []float64{0, 0.25, 0.5, 0.75, 1},
		Seed:       1,
	}
}

// PaperScale returns the full workload of Section VIII.
func PaperScale() Options {
	sizes11 := make([]int, 0, 10)
	for e := 200; e <= 2000; e += 200 {
		sizes11 = append(sizes11, e)
	}
	sizes12 := make([]int, 0, 10)
	for e := 100; e <= 1000; e += 100 {
		sizes12 = append(sizes12, e)
	}
	probs := make([]float64, 0, 11)
	for p := 0.0; p <= 1.0001; p += 0.1 {
		probs = append(probs, math.Round(p*10)/10)
	}
	eps := make([]float64, 0, 11)
	for e := 0.0; e <= 1.0001; e += 0.1 {
		eps = append(eps, math.Round(e*10)/10)
	}
	return Options{
		Samples:    100,
		Fig11Sizes: sizes11,
		Fig12Sizes: sizes12,
		Probs:      probs,
		Epsilons:   eps,
		Seed:       1,
	}
}

func (o Options) withDefaults() Options {
	d := Defaults()
	if o.Samples <= 0 {
		o.Samples = d.Samples
	}
	if len(o.Fig11Sizes) == 0 {
		o.Fig11Sizes = d.Fig11Sizes
	}
	if len(o.Fig12Sizes) == 0 {
		o.Fig12Sizes = d.Fig12Sizes
	}
	if len(o.Probs) == 0 {
		o.Probs = d.Probs
	}
	if len(o.Epsilons) == 0 {
		o.Epsilons = d.Epsilons
	}
	if o.Seed == 0 {
		o.Seed = d.Seed
	}
	return o
}

// Table1 reproduces Table I: characteristics of the six real workflow
// specifications.
func Table1() (*Table, error) {
	t := &Table{
		Name: "Table I: characteristics of real workflow specifications",
		Cols: []string{"|V|", "|E|", "|F|", "||F||", "|L|", "||L||"},
	}
	for _, name := range gen.CatalogNames {
		sp, err := gen.Catalog(name)
		if err != nil {
			return nil, err
		}
		st := sp.Stats()
		t.RowLabels = append(t.RowLabels, name)
		t.Rows = append(t.Rows, []float64{
			float64(st.V), float64(st.E),
			float64(st.Forks), float64(st.ForkSz),
			float64(st.Loops), float64(st.LoopSz),
		})
	}
	return t, nil
}

// timeDiff measures the wall-clock time of one differencing call (the
// paper omits XML parse time; we likewise measure only the algorithm).
// The caller threads one reusable engine through a whole sweep, so
// measurements exclude repeated scratch allocation and mirror the
// production batch path.
func timeDiff(eng *core.Engine, r1, r2 *wfrun.Run) (float64, float64, error) {
	start := time.Now()
	res, err := eng.Diff(r1, r2)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start).Seconds(), res.Distance, nil
}

// Fig11 reproduces Fig. 11: differencing time on the six real
// workflows, varying the total number of edges across the two runs,
// unit cost, averaged over sample pairs. Columns are seconds per
// workflow; rows are total edge counts.
func Fig11(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	t := &Table{Name: "Fig. 11: real scientific workflows (seconds)", Cols: append([]string{"edges"}, gen.CatalogNames...)}
	specs := make([]*spec.Spec, len(gen.CatalogNames))
	for i, name := range gen.CatalogNames {
		sp, err := gen.Catalog(name)
		if err != nil {
			return nil, err
		}
		specs[i] = sp
	}
	eng := core.NewEngine(cost.Unit{})
	for _, total := range o.Fig11Sizes {
		row := []float64{float64(total)}
		for _, sp := range specs {
			sum := 0.0
			for s := 0; s < o.Samples; s++ {
				r1, err := gen.RunWithTargetEdges(sp, total/2, 0.1, gen.DefaultRunParams(), rng)
				if err != nil {
					return nil, err
				}
				r2, err := gen.RunWithTargetEdges(sp, total/2, 0.1, gen.DefaultRunParams(), rng)
				if err != nil {
					return nil, err
				}
				secs, _, err := timeDiff(eng, r1, r2)
				if err != nil {
					return nil, err
				}
				sum += secs
			}
			row = append(row, sum/float64(o.Samples))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// seriesParallelPoint runs one (ratio, size) cell of Figs. 12/13.
func seriesParallelPoint(eng *core.Engine, ratio float64, edges, samples int, rng *rand.Rand) (secs, dist float64, err error) {
	params := gen.RunParams{ProbP: 0.95, MaxF: 1, MaxL: 1}
	for s := 0; s < samples; s++ {
		sp, err := gen.RandomSpec(gen.SpecConfig{Edges: edges, SeriesRatio: ratio}, rng)
		if err != nil {
			return 0, 0, err
		}
		r1, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			return 0, 0, err
		}
		r2, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			return 0, 0, err
		}
		se, d, err := timeDiff(eng, r1, r2)
		if err != nil {
			return 0, 0, err
		}
		secs += se
		dist += d
	}
	n := float64(samples)
	return secs / n, dist / n, nil
}

// Fig12and13 reproduces Figs. 12 (execution time) and 13 (edit
// distance) for series/parallel ratios 3, 1 and 1/3 over random
// fork/loop-free specifications with probP = 95%.
func Fig12and13(o Options) (timeT, distT *Table, err error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	ratios := []float64{3, 1, 1.0 / 3}
	cols := []string{"spec_edges", "r=3", "r=1", "r=1/3"}
	timeT = &Table{Name: "Fig. 12: series vs parallel (seconds)", Cols: cols}
	distT = &Table{Name: "Fig. 13: series vs parallel (edit distance)", Cols: cols}
	eng := core.NewEngine(cost.Unit{})
	for _, edges := range o.Fig12Sizes {
		trow := []float64{float64(edges)}
		drow := []float64{float64(edges)}
		for _, r := range ratios {
			secs, dist, err := seriesParallelPoint(eng, r, edges, o.Samples, rng)
			if err != nil {
				return nil, nil, err
			}
			trow = append(trow, secs)
			drow = append(drow, dist)
		}
		timeT.Rows = append(timeT.Rows, trow)
		distT.Rows = append(distT.Rows, drow)
	}
	return timeT, distT, nil
}

// forkLoopParams builds the run parameters for one side of the
// Fig. 14/15 experiment: fork-heavy or loop-heavy with the given
// probability, probP = 1 and maxF = maxL = 20.
func forkLoopParams(forkHeavy bool, prob float64) gen.RunParams {
	p := gen.RunParams{ProbP: 1, MaxF: 20, MaxL: 20}
	if forkHeavy {
		p.ProbF = prob
		p.ProbL = 0
	} else {
		p.ProbL = prob
		p.ProbF = 0
	}
	return p
}

// Fig14and15 reproduces Figs. 14 (execution time) and 15 (edit
// distance): specification with 100 edges, ratio 0.5, 5 forks and 5
// loops; run pairs are fork-fork, fork-loop and loop-loop with the
// fork/loop probability swept over Probs.
func Fig14and15(o Options) (timeT, distT *Table, err error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	cols := []string{"prob", "fork_vs_fork", "fork_vs_loop", "loop_vs_loop"}
	timeT = &Table{Name: "Fig. 14: fork vs loop (seconds)", Cols: cols}
	distT = &Table{Name: "Fig. 15: fork vs loop (edit distance)", Cols: cols}
	type combo struct{ aFork, bFork bool }
	combos := []combo{{true, true}, {true, false}, {false, false}}
	eng := core.NewEngine(cost.Unit{})
	for _, p := range o.Probs {
		trow := []float64{p}
		drow := []float64{p}
		for _, cb := range combos {
			secs, dist := 0.0, 0.0
			for s := 0; s < o.Samples; s++ {
				sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 100, SeriesRatio: 0.5, Forks: 5, Loops: 5}, rng)
				if err != nil {
					return nil, nil, err
				}
				r1, err := gen.RandomRun(sp, forkLoopParams(cb.aFork, p), rng)
				if err != nil {
					return nil, nil, err
				}
				r2, err := gen.RandomRun(sp, forkLoopParams(cb.bFork, p), rng)
				if err != nil {
					return nil, nil, err
				}
				se, d, err := timeDiff(eng, r1, r2)
				if err != nil {
					return nil, nil, err
				}
				secs += se
				dist += d
			}
			trow = append(trow, secs/float64(o.Samples))
			drow = append(drow, dist/float64(o.Samples))
		}
		timeT.Rows = append(timeT.Rows, trow)
		distT.Rows = append(distT.Rows, drow)
	}
	return timeT, distT, nil
}

// Fig16 reproduces the cost-model sensitivity experiment: for each
// exponent ε, compute the ε-optimal edit script between random runs of
// the Fig. 17(b) specification, then report its percent error when
// re-priced under the unit (ε = 0) and length (ε = 1) models, both on
// average and in the worst case.
func Fig16(o Options) (*Table, error) {
	o = o.withDefaults()
	rng := rand.New(rand.NewSource(o.Seed))
	sp, err := gen.Fig17bSpec(nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Name: "Fig. 16: influence of the cost model (percent error)",
		Cols: []string{"epsilon", "avg_err_unit", "worst_err_unit", "avg_err_length", "worst_err_length"},
	}
	params := gen.RunParams{ProbP: 0.5, ProbF: 1, MaxF: 5, MaxL: 1}
	unit := cost.Unit{}
	length := cost.Length{}
	// Pre-generate the run pairs so every ε sees the same workload.
	type pair struct{ a, b *wfrun.Run }
	pairs := make([]pair, o.Samples)
	for i := range pairs {
		a, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			return nil, err
		}
		b, err := gen.RandomRun(sp, params, rng)
		if err != nil {
			return nil, err
		}
		pairs[i] = pair{a, b}
	}
	engU := core.NewEngine(unit)
	engL := core.NewEngine(length)
	for _, eps := range o.Epsilons {
		model := cost.Power{Epsilon: eps}
		eng := core.NewEngine(model)
		sumU, worstU, sumL, worstL := 0.0, 0.0, 0.0, 0.0
		for _, pr := range pairs {
			res, err := eng.Diff(pr.a, pr.b)
			if err != nil {
				return nil, err
			}
			// Extract the script before eng's next Diff reuses its
			// scratch tables.
			script, _, err := res.Script()
			if err != nil {
				return nil, err
			}
			optU, err := engU.Distance(pr.a, pr.b)
			if err != nil {
				return nil, err
			}
			optL, err := engL.Distance(pr.a, pr.b)
			if err != nil {
				return nil, err
			}
			errU := percentError(core.EvaluateScript(script, unit), optU)
			errL := percentError(core.EvaluateScript(script, length), optL)
			sumU += errU
			sumL += errL
			worstU = math.Max(worstU, errU)
			worstL = math.Max(worstL, errL)
		}
		n := float64(len(pairs))
		t.Rows = append(t.Rows, []float64{eps, sumU / n, worstU, sumL / n, worstL})
	}
	return t, nil
}

func percentError(got, opt float64) float64 {
	if opt == 0 {
		if got == 0 {
			return 0
		}
		return 100
	}
	return (got - opt) / opt * 100
}
