package expt

import (
	"strings"
	"testing"
)

func TestTable1(t *testing.T) {
	tab, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 || len(tab.RowLabels) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	tsv := tab.TSV()
	// Spot-check the PGAQ row against Table I.
	if !strings.Contains(tsv, "PGAQ\t37\t41\t4\t22\t2\t26") {
		t.Fatalf("PGAQ row wrong:\n%s", tsv)
	}
	if !strings.Contains(tsv, "PA\t11\t13\t3\t6\t1\t6") {
		t.Fatalf("PA row wrong:\n%s", tsv)
	}
}

func tinyOptions() Options {
	return Options{
		Samples:    1,
		Fig11Sizes: []int{120},
		Fig12Sizes: []int{60},
		Probs:      []float64{0.2, 0.8},
		Epsilons:   []float64{0, 1},
		Seed:       11,
	}
}

func TestFig11Smoke(t *testing.T) {
	tab, err := Fig11(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 7 {
		t.Fatalf("shape = %dx%d", len(tab.Rows), len(tab.Rows[0]))
	}
	for i, v := range tab.Rows[0][1:] {
		if v <= 0 {
			t.Fatalf("column %d: non-positive time %g", i, v)
		}
	}
}

func TestFig12and13Smoke(t *testing.T) {
	timeT, distT, err := Fig12and13(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(timeT.Rows) != 1 || len(distT.Rows) != 1 {
		t.Fatal("wrong row count")
	}
	if len(timeT.Cols) != 4 {
		t.Fatalf("cols = %v", timeT.Cols)
	}
	for _, v := range timeT.Rows[0][1:] {
		if v <= 0 {
			t.Fatal("non-positive time")
		}
	}
	for _, v := range distT.Rows[0][1:] {
		if v < 0 {
			t.Fatal("negative distance")
		}
	}
}

func TestFig14and15Smoke(t *testing.T) {
	timeT, distT, err := Fig14and15(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(timeT.Rows) != 2 || len(distT.Rows) != 2 {
		t.Fatal("wrong row count")
	}
	// At high fork probability, FF distance should be smaller than FL
	// distance more often than not; smoke-check non-negativity only
	// (shape assertions live in EXPERIMENTS.md generation).
	for _, row := range distT.Rows {
		for _, v := range row[1:] {
			if v < 0 {
				t.Fatal("negative distance")
			}
		}
	}
}

func TestFig16Smoke(t *testing.T) {
	o := tinyOptions()
	o.Samples = 2
	tab, err := Fig16(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatal("wrong row count")
	}
	for _, row := range tab.Rows {
		eps, avgU, worstU, avgL, worstL := row[0], row[1], row[2], row[3], row[4]
		if avgU < 0 || avgL < 0 || worstU < avgU || worstL < avgL {
			t.Fatalf("inconsistent errors at eps=%g: %v", eps, row)
		}
		// The ε-optimal script is exactly optimal under its own
		// extreme: ε=0 has zero unit error, ε=1 zero length error.
		if eps == 0 && avgU > 1e-9 {
			t.Fatalf("unit error at eps=0 should be 0, got %g", avgU)
		}
		if eps == 1 && avgL > 1e-9 {
			t.Fatalf("length error at eps=1 should be 0, got %g", avgL)
		}
	}
}

func TestTSVFormat(t *testing.T) {
	tab := &Table{Name: "x", Cols: []string{"a", "b"}, Rows: [][]float64{{1, 2.5}}}
	tsv := tab.TSV()
	if !strings.Contains(tsv, "# x\n") || !strings.Contains(tsv, "1\t2.5") {
		t.Fatalf("bad TSV:\n%s", tsv)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Samples == 0 || len(o.Fig11Sizes) == 0 || o.Seed == 0 {
		t.Fatal("defaults not applied")
	}
	p := PaperScale()
	if p.Samples != 100 || len(p.Fig11Sizes) != 10 || len(p.Probs) != 11 {
		t.Fatalf("paper scale wrong: %+v", p)
	}
}
