// Package spec implements SP-workflow specifications (G, F, L) of
// Sections III-D and VI of Bao et al.: a series-parallel specification
// graph G with unique node labels, overlaid with a laminar family of
// fork subgraphs F and loop subgraphs L, together with the annotated
// SP-tree produced by Algorithm 1.
package spec

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/spgraph"
	"repro/internal/sptree"
)

// EdgeSet identifies a fork or loop subgraph by its set of
// specification edges (the Leaf set of the subtree representing it).
type EdgeSet []graph.Edge

// Spec is a validated SP-workflow specification. It is immutable after
// New.
type Spec struct {
	// G is the series-parallel specification graph; node IDs equal
	// the (unique) labels.
	G *graph.Graph
	// Tree is the annotated SP-tree for (G, F, L) built by
	// Algorithm 1 (extended with L nodes per Section VI).
	Tree *sptree.Node
	// Forks and Loops are the declared subgraph families.
	Forks []EdgeSet
	Loops []EdgeSet

	leafIndex map[graph.Edge]int
	leafOrder []graph.Edge
	interval  map[*sptree.Node][2]int
	qByEdge   map[graph.Edge]*sptree.Node
	lengths   map[*sptree.Node][]int
}

// New validates the specification and builds its annotated SP-tree.
// The graph must be a series-parallel flow network with unique labels;
// the edge sets of forks ∪ loops must form a laminar family without
// duplicates, and each must identify a complete subgraph (an entire
// decomposition subtree or a consecutive run of two or more children
// of an S node).
func New(g *graph.Graph, forks, loops []EdgeSet) (*Spec, error) {
	if !g.UniqueLabels() {
		return nil, fmt.Errorf("spec: node labels are not unique")
	}
	tree, err := spgraph.Decompose(g)
	if err != nil {
		return nil, err
	}
	s := &Spec{
		G:         g,
		Forks:     append([]EdgeSet(nil), forks...),
		Loops:     append([]EdgeSet(nil), loops...),
		leafIndex: make(map[graph.Edge]int),
		interval:  make(map[*sptree.Node][2]int),
		qByEdge:   make(map[graph.Edge]*sptree.Node),
		lengths:   make(map[*sptree.Node][]int),
	}
	for i, leaf := range tree.Leaves() {
		s.leafIndex[leaf.Edge] = i
		s.leafOrder = append(s.leafOrder, leaf.Edge)
	}
	if err := s.checkLaminar(); err != nil {
		return nil, err
	}
	s.Tree = tree
	s.indexIntervals(tree)

	// Algorithm 1: insert F and L nodes, smallest subgraphs first so
	// inner annotations are in place before outer ones.
	type annot struct {
		set EdgeSet
		typ sptree.Type
	}
	var all []annot
	for _, h := range s.Forks {
		all = append(all, annot{h, sptree.F})
	}
	for _, h := range s.Loops {
		all = append(all, annot{h, sptree.L})
	}
	sort.SliceStable(all, func(i, j int) bool { return len(all[i].set) < len(all[j].set) })
	for _, a := range all {
		if err := s.insertAnnotation(a.set, a.typ); err != nil {
			return nil, err
		}
	}
	s.Tree.Finalize()
	if err := sptree.ValidateSpecTree(s.Tree); err != nil {
		return nil, err
	}
	// Re-index over the final tree (leaf order is preserved by
	// annotation inserts; intervals gain the new internal nodes).
	s.interval = make(map[*sptree.Node][2]int)
	s.indexIntervals(s.Tree)
	return s, nil
}

// checkLaminar verifies Definition 3.6 on forks ∪ loops: any two sets
// are nested or disjoint, and no two sets are equal.
func (s *Spec) checkLaminar() error {
	sets := make([]map[graph.Edge]bool, 0, len(s.Forks)+len(s.Loops))
	names := make([]string, 0, cap(sets))
	add := func(kind string, i int, es EdgeSet) error {
		m := make(map[graph.Edge]bool, len(es))
		for _, e := range es {
			if _, ok := s.leafIndex[e]; !ok {
				return fmt.Errorf("spec: %s %d references unknown edge %s", kind, i, e)
			}
			if m[e] {
				return fmt.Errorf("spec: %s %d lists edge %s twice", kind, i, e)
			}
			m[e] = true
		}
		if len(m) == 0 {
			return fmt.Errorf("spec: %s %d is empty", kind, i)
		}
		sets = append(sets, m)
		names = append(names, fmt.Sprintf("%s %d", kind, i))
		return nil
	}
	for i, h := range s.Forks {
		if err := add("fork", i, h); err != nil {
			return err
		}
	}
	for i, h := range s.Loops {
		if err := add("loop", i, h); err != nil {
			return err
		}
	}
	for i := range sets {
		for j := i + 1; j < len(sets); j++ {
			inter, onlyI, onlyJ := 0, 0, 0
			for e := range sets[i] {
				if sets[j][e] {
					inter++
				} else {
					onlyI++
				}
			}
			onlyJ = len(sets[j]) - inter
			switch {
			case inter == 0:
			case onlyI == 0 && onlyJ == 0:
				return fmt.Errorf("spec: %s and %s have identical edge sets", names[i], names[j])
			case onlyI == 0 || onlyJ == 0:
			default:
				return fmt.Errorf("spec: %s and %s properly intersect; family is not laminar", names[i], names[j])
			}
		}
	}
	return nil
}

// indexIntervals records, for every tree node, the half-open interval
// of leaf indices its subtree spans, and the Q node for every edge.
func (s *Spec) indexIntervals(n *sptree.Node) (lo, hi int) {
	if n.Type == sptree.Q {
		i := s.leafIndex[n.Edge]
		s.interval[n] = [2]int{i, i + 1}
		s.qByEdge[n.Edge] = n
		return i, i + 1
	}
	lo, hi = -1, -1
	for _, c := range n.Children {
		clo, chi := s.indexIntervals(c)
		if lo == -1 || clo < lo {
			lo = clo
		}
		if chi > hi {
			hi = chi
		}
	}
	s.interval[n] = [2]int{lo, hi}
	return lo, hi
}

// insertAnnotation implements one step of Algorithm 1: wrap the
// subtree(s) representing the subgraph with edge set h in a new node of
// the given type (F or L).
func (s *Spec) insertAnnotation(h EdgeSet, typ sptree.Type) error {
	lo, hi, err := s.contiguousSpan(h)
	if err != nil {
		return err
	}
	v := s.deepestCovering(s.Tree, lo, hi)
	iv := s.interval[v]
	if iv[0] == lo && iv[1] == hi {
		// Case 1: the subgraph is exactly Leaf(T[v]); insert the
		// annotation node between p(v) and v.
		wrap := &sptree.Node{Type: typ, Src: v.Src, Dst: v.Dst}
		if p := v.Parent; p == nil {
			wrap.Adopt(v)
			s.Tree = wrap
		} else {
			i := p.ChildIndex(v)
			p.RemoveChild(i)
			wrap.Adopt(v)
			p.InsertChild(i, wrap)
		}
		s.interval[wrap] = [2]int{lo, hi}
		return nil
	}
	if v.Type != sptree.S {
		return fmt.Errorf("spec: subgraph %v is not a complete subgraph (deepest covering node is %s)", h, v.Type)
	}
	// Case 2: the subgraph is a consecutive subsequence of two or
	// more children of an S node; group them under a fresh S node and
	// wrap that.
	first, last := -1, -1
	for i, c := range v.Children {
		ci := s.interval[c]
		if ci[0] == lo {
			first = i
		}
		if ci[1] == hi {
			last = i
		}
	}
	if first < 0 || last < 0 || last < first {
		return fmt.Errorf("spec: subgraph %v does not align with children of its covering S node", h)
	}
	span := 0
	for i := first; i <= last; i++ {
		ci := s.interval[v.Children[i]]
		span += ci[1] - ci[0]
	}
	if span != hi-lo {
		return fmt.Errorf("spec: subgraph %v does not align with children of its covering S node", h)
	}
	grouped := make([]*sptree.Node, 0, last-first+1)
	for i := first; i <= last; i++ {
		grouped = append(grouped, v.Children[first])
		v.RemoveChild(first)
	}
	inner := sptree.NewInternal(sptree.S, grouped...)
	wrap := sptree.NewInternal(typ, inner)
	v.InsertChild(first, wrap)
	s.interval[inner] = [2]int{lo, hi}
	s.interval[wrap] = [2]int{lo, hi}
	return nil
}

// contiguousSpan maps an edge set to its leaf-index interval and
// verifies contiguity and exact coverage.
func (s *Spec) contiguousSpan(h EdgeSet) (lo, hi int, err error) {
	if len(h) == 0 {
		return 0, 0, fmt.Errorf("spec: empty subgraph")
	}
	lo, hi = -1, -1
	in := make(map[int]bool, len(h))
	for _, e := range h {
		i, ok := s.leafIndex[e]
		if !ok {
			return 0, 0, fmt.Errorf("spec: unknown edge %s in subgraph", e)
		}
		in[i] = true
		if lo == -1 || i < lo {
			lo = i
		}
		if i >= hi {
			hi = i + 1
		}
	}
	if hi-lo != len(in) {
		return 0, 0, fmt.Errorf("spec: subgraph %v is not a contiguous leaf span; not a complete subgraph", h)
	}
	return lo, hi, nil
}

// deepestCovering finds the deepest node whose leaf interval contains
// [lo, hi).
func (s *Spec) deepestCovering(n *sptree.Node, lo, hi int) *sptree.Node {
	for {
		descended := false
		for _, c := range n.Children {
			ci := s.interval[c]
			if ci[0] <= lo && hi <= ci[1] {
				n = c
				descended = true
				break
			}
		}
		if !descended {
			return n
		}
	}
}

// QNode returns the specification-tree leaf representing edge e.
func (s *Spec) QNode(e graph.Edge) *sptree.Node { return s.qByEdge[e] }

// LeafIndex returns the position of edge e in the tree's leaf order.
func (s *Spec) LeafIndex(e graph.Edge) (int, bool) {
	i, ok := s.leafIndex[e]
	return i, ok
}

// Interval returns the half-open leaf-index interval spanned by a
// specification-tree node.
func (s *Spec) Interval(n *sptree.Node) (lo, hi int) {
	iv := s.interval[n]
	return iv[0], iv[1]
}

// EdgeByLabels resolves a specification edge by the labels of its
// endpoints and parallel key.
func (s *Spec) EdgeByLabels(src, dst string, key int) (graph.Edge, bool) {
	e := graph.Edge{From: graph.NodeID(src), To: graph.NodeID(dst), Key: key}
	_, ok := s.leafIndex[e]
	return e, ok
}

// AchievableLengths returns, in increasing order, the lengths of
// elementary paths obtainable as branch-free executions of the subtree
// rooted at specification node n: a Q contributes length 1, an S sums
// one choice per child, a P picks exactly one branch, and an F or L
// keeps a single copy or iteration (more would make the node true and
// the subtree no longer branch-free). Used for W_TG and insertion
// skeleton pricing.
func (s *Spec) AchievableLengths(n *sptree.Node) []int {
	if got, ok := s.lengths[n]; ok {
		return got
	}
	maxLen := s.G.NumEdges()
	set := make([]bool, maxLen+1)
	switch n.Type {
	case sptree.Q:
		set[1] = true
	case sptree.P:
		for _, c := range n.Children {
			for _, l := range s.AchievableLengths(c) {
				set[l] = true
			}
		}
	case sptree.F, sptree.L:
		for _, l := range s.AchievableLengths(n.Children[0]) {
			set[l] = true
		}
	case sptree.S:
		cur := []bool{true} // lengths achievable so far; cur[0]=true
		for _, c := range n.Children {
			next := make([]bool, maxLen+1)
			for base, ok := range cur {
				if !ok {
					continue
				}
				for _, l := range s.AchievableLengths(c) {
					if base+l <= maxLen {
						next[base+l] = true
					}
				}
			}
			cur = next
		}
		set = cur
	}
	var out []int
	for l, ok := range set {
		if ok && l > 0 {
			out = append(out, l)
		}
	}
	s.lengths[n] = out
	return out
}

// Stats summarizes a specification as in Table I of the paper.
type Stats struct {
	V, E          int // |V|, |E| of the specification graph
	Forks, ForkSz int // |F| and ||F|| (total edges across forks)
	Loops, LoopSz int // |L| and ||L||
}

// Stats returns the Table I characteristics of the specification.
func (s *Spec) Stats() Stats {
	st := Stats{V: s.G.NumNodes(), E: s.G.NumEdges(), Forks: len(s.Forks), Loops: len(s.Loops)}
	for _, h := range s.Forks {
		st.ForkSz += len(h)
	}
	for _, h := range s.Loops {
		st.LoopSz += len(h)
	}
	return st
}
