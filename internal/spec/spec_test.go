package spec

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/sptree"
)

// fig2 builds the specification graph of Fig. 2(a).
func fig2Graph() *graph.Graph {
	g := graph.New()
	for i := 1; i <= 7; i++ {
		id := graph.NodeID(fmt.Sprint(i))
		g.MustAddNode(id, fmt.Sprint(i))
	}
	for _, e := range [][2]string{
		{"1", "2"}, {"2", "3"}, {"3", "6"}, {"2", "4"}, {"4", "6"},
		{"2", "5"}, {"5", "6"}, {"6", "7"},
	} {
		g.MustAddEdge(graph.NodeID(e[0]), graph.NodeID(e[1]))
	}
	return g
}

func es(pairs ...[2]string) EdgeSet {
	var out EdgeSet
	for _, p := range pairs {
		out = append(out, graph.Edge{From: graph.NodeID(p[0]), To: graph.NodeID(p[1])})
	}
	return out
}

func fig2Forks() []EdgeSet {
	return []EdgeSet{
		es([2]string{"2", "3"}, [2]string{"3", "6"}),
		es([2]string{"2", "4"}, [2]string{"4", "6"}),
		es([2]string{"2", "5"}, [2]string{"5", "6"}),
		es([2]string{"1", "2"}, [2]string{"2", "3"}, [2]string{"3", "6"},
			[2]string{"2", "4"}, [2]string{"4", "6"}, [2]string{"2", "5"},
			[2]string{"5", "6"}, [2]string{"6", "7"}),
	}
}

func countType(root *sptree.Node, typ sptree.Type) int {
	n := 0
	root.Walk(func(v *sptree.Node) bool {
		if v.Type == typ {
			n++
		}
		return true
	})
	return n
}

func TestFig2AnnotatedTree(t *testing.T) {
	sp, err := New(fig2Graph(), fig2Forks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sptree.ValidateSpecTree(sp.Tree); err != nil {
		t.Fatal(err)
	}
	// Fig. 6(b): the root is the whole-graph F; below it an S with
	// (1,2), a P of three F nodes, and (6,7).
	if sp.Tree.Type != sptree.F {
		t.Fatalf("root type = %s, want F\n%s", sp.Tree.Type, sp.Tree)
	}
	s := sp.Tree.Children[0]
	if s.Type != sptree.S || len(s.Children) != 3 {
		t.Fatalf("copy should be S with 3 children:\n%s", sp.Tree)
	}
	if got := countType(sp.Tree, sptree.F); got != 4 {
		t.Fatalf("F nodes = %d, want 4", got)
	}
	mid := s.Children[1]
	if mid.Type != sptree.P || len(mid.Children) != 3 {
		t.Fatalf("middle should be P of 3 branches:\n%s", sp.Tree)
	}
	for _, c := range mid.Children {
		if c.Type != sptree.F {
			t.Fatalf("each branch should be wrapped in F:\n%s", sp.Tree)
		}
	}
	if sp.Tree.Src != "1" || sp.Tree.Dst != "7" {
		t.Fatalf("root terminals (%s,%s)", sp.Tree.Src, sp.Tree.Dst)
	}
}

func TestFig2WithLoopTree(t *testing.T) {
	loops := []EdgeSet{
		es([2]string{"2", "3"}, [2]string{"3", "6"}, [2]string{"2", "4"},
			[2]string{"4", "6"}, [2]string{"2", "5"}, [2]string{"5", "6"}),
	}
	sp, err := New(fig2Graph(), fig2Forks()[:3], loops)
	if err != nil {
		t.Fatal(err)
	}
	if got := countType(sp.Tree, sptree.L); got != 1 {
		t.Fatalf("L nodes = %d, want 1", got)
	}
	// The L node wraps the middle parallel block.
	var lnode *sptree.Node
	sp.Tree.Walk(func(v *sptree.Node) bool {
		if v.Type == sptree.L {
			lnode = v
		}
		return true
	})
	if lnode.Src != "2" || lnode.Dst != "6" {
		t.Fatalf("loop terminals (%s,%s), want (2,6)", lnode.Src, lnode.Dst)
	}
	if lnode.Children[0].Type != sptree.P {
		t.Fatalf("loop child should be the parallel block:\n%s", sp.Tree)
	}
}

func TestStats(t *testing.T) {
	sp, err := New(fig2Graph(), fig2Forks()[:3], []EdgeSet{
		es([2]string{"2", "3"}, [2]string{"3", "6"}, [2]string{"2", "4"},
			[2]string{"4", "6"}, [2]string{"2", "5"}, [2]string{"5", "6"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sp.Stats()
	want := Stats{V: 7, E: 8, Forks: 3, ForkSz: 6, Loops: 1, LoopSz: 6}
	if st != want {
		t.Fatalf("Stats = %+v, want %+v", st, want)
	}
}

func TestNonLaminarRejected(t *testing.T) {
	// (2,3,6) and a properly-intersecting set {(3,6),(2,4)}.
	forks := []EdgeSet{
		es([2]string{"2", "3"}, [2]string{"3", "6"}),
		es([2]string{"3", "6"}, [2]string{"2", "4"}),
	}
	if _, err := New(fig2Graph(), forks, nil); err == nil {
		t.Fatal("properly intersecting family must be rejected")
	}
}

func TestDuplicateSetRejected(t *testing.T) {
	h := es([2]string{"2", "3"}, [2]string{"3", "6"})
	if _, err := New(fig2Graph(), []EdgeSet{h}, []EdgeSet{h}); err == nil {
		t.Fatal("a fork and a loop over the same edge set must be rejected")
	}
	if _, err := New(fig2Graph(), []EdgeSet{h, h}, nil); err == nil {
		t.Fatal("duplicate forks must be rejected")
	}
}

func TestIncompleteSubgraphRejected(t *testing.T) {
	// {(2,3),(3,6),(2,4)} is contiguous in leaf order but not a
	// consecutive-children span of the S node (it cuts a P branch in
	// half).
	forks := []EdgeSet{es([2]string{"2", "3"}, [2]string{"3", "6"}, [2]string{"2", "4"})}
	if _, err := New(fig2Graph(), forks, nil); err == nil {
		t.Fatal("non-complete subgraph must be rejected")
	}
}

func TestUnknownEdgeRejected(t *testing.T) {
	forks := []EdgeSet{es([2]string{"1", "7"})}
	if _, err := New(fig2Graph(), forks, nil); err == nil {
		t.Fatal("unknown edge must be rejected")
	}
}

func TestEmptySetRejected(t *testing.T) {
	if _, err := New(fig2Graph(), []EdgeSet{{}}, nil); err == nil {
		t.Fatal("empty subgraph must be rejected")
	}
}

func TestNonUniqueLabelsRejected(t *testing.T) {
	g := graph.New()
	g.MustAddNode("a", "x")
	g.MustAddNode("b", "x")
	g.MustAddEdge("a", "b")
	if _, err := New(g, nil, nil); err == nil {
		t.Fatal("duplicate labels must be rejected")
	}
}

func TestConsecutiveChildrenFork(t *testing.T) {
	// Chain 1->2->3->4; fork over the middle segment {(2,3),(3,4)}
	// exercises Case 2 of Algorithm 1 (grouping consecutive children
	// of an S node under a fresh S).
	g := graph.New()
	for i := 1; i <= 5; i++ {
		id := graph.NodeID(fmt.Sprint(i))
		g.MustAddNode(id, fmt.Sprint(i))
	}
	for i := 1; i <= 4; i++ {
		g.MustAddEdge(graph.NodeID(fmt.Sprint(i)), graph.NodeID(fmt.Sprint(i+1)))
	}
	sp, err := New(g, []EdgeSet{es([2]string{"2", "3"}, [2]string{"3", "4"})}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sptree.ValidateSpecTree(sp.Tree); err != nil {
		t.Fatal(err)
	}
	if sp.Tree.Type != sptree.S || len(sp.Tree.Children) != 3 {
		t.Fatalf("root should be S(Q, F, Q):\n%s", sp.Tree)
	}
	f := sp.Tree.Children[1]
	if f.Type != sptree.F || f.Children[0].Type != sptree.S || len(f.Children[0].Children) != 2 {
		t.Fatalf("fork should wrap a grouped S:\n%s", sp.Tree)
	}
	if f.Src != "2" || f.Dst != "4" {
		t.Fatalf("fork terminals (%s,%s), want (2,4)", f.Src, f.Dst)
	}
}

func TestAchievableLengths(t *testing.T) {
	sp, err := New(fig2Graph(), fig2Forks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Whole workflow: every path 1->2->x->6->7 has length 4.
	root := sp.Tree
	if got := fmt.Sprint(sp.AchievableLengths(root)); got != "[4]" {
		t.Fatalf("root achievable lengths = %s, want [4]", got)
	}
	// Middle P block: each branch has length 2.
	mid := root.Children[0].Children[1]
	if got := fmt.Sprint(sp.AchievableLengths(mid)); got != "[2]" {
		t.Fatalf("middle achievable lengths = %s, want [2]", got)
	}
}

func TestAchievableLengthsMixed(t *testing.T) {
	// s -> (a | b->c) -> t gives branch lengths 1 and 2, so the whole
	// chain achieves {3, 4}.
	g := graph.New()
	for _, n := range []string{"s", "a", "b", "c", "t"} {
		g.MustAddNode(graph.NodeID(n), n)
	}
	g.MustAddEdge("s", "a") // will become part of chain: s->a->...? build explicitly below
	_ = g
	g2 := graph.New()
	for _, n := range []string{"s", "m", "x", "t"} {
		g2.MustAddNode(graph.NodeID(n), n)
	}
	g2.MustAddEdge("s", "m")
	g2.MustAddEdge("m", "t") // direct branch, length 1
	g2.MustAddEdge("m", "x") // long branch m->x->t, length 2
	g2.MustAddEdge("x", "t")
	sp, err := New(g2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(sp.AchievableLengths(sp.Tree)); got != "[2 3]" {
		t.Fatalf("achievable lengths = %s, want [2 3]", got)
	}
}

func TestIntervalsAndQNodes(t *testing.T) {
	sp, err := New(fig2Graph(), fig2Forks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := sp.Interval(sp.Tree)
	if lo != 0 || hi != 8 {
		t.Fatalf("root interval [%d,%d), want [0,8)", lo, hi)
	}
	e := graph.Edge{From: "2", To: "4"}
	q := sp.QNode(e)
	if q == nil || q.Edge != e {
		t.Fatal("QNode lookup failed")
	}
	if i, ok := sp.LeafIndex(e); !ok || i < 0 || i >= 8 {
		t.Fatalf("LeafIndex = %d,%v", i, ok)
	}
	if _, ok := sp.EdgeByLabels("2", "4", 0); !ok {
		t.Fatal("EdgeByLabels failed")
	}
	if _, ok := sp.EdgeByLabels("2", "9", 0); ok {
		t.Fatal("EdgeByLabels should fail for unknown edge")
	}
}

func TestSpecTreeRendering(t *testing.T) {
	sp, err := New(fig2Graph(), fig2Forks(), nil)
	if err != nil {
		t.Fatal(err)
	}
	out := sp.Tree.String()
	if !strings.Contains(out, "F [1..7]") {
		t.Fatalf("rendering missing root F: %s", out)
	}
}
