// Package codec is the versioned binary serialization of SP-workflow
// specifications and runs that backs the store's snapshot layer. Where
// the XML format (package wfxml) is the authoritative, interchange
// representation — parsed through full validation and the tree
// execution function f″ of Algorithms 2 and 5 — the binary format is a
// faithful snapshot of the *result* of that parse: the run graph, its
// implicit loop edges, and the derived annotated SP-tree with every
// node's alignment into the specification tree recorded as a preorder
// ID. Decoding therefore rebuilds a Run without re-running flow-network
// checks, SP decomposition or derivation, which is what makes a cold
// repository boot several times faster than re-parsing XML.
//
// Safety does not rest on trusting the bytes: every frame carries a
// CRC-32 checksum and a format version, decoders bound every count
// against the frame they are reading, and the store treats any decode
// failure as a cache miss that falls back to the XML re-parse. A
// snapshot can be deleted at any time without losing data.
package codec

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/evolve"
	"repro/internal/graph"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// Version is the current binary format version. Decoders reject frames
// carrying any other version, which the store treats as "re-encode
// from XML" — bumping it is how an incompatible format change ships.
const Version = 1

// Frame layout: magic (4 bytes), version (1 byte), payload length
// (4 bytes LE), CRC-32 (IEEE) of the payload (4 bytes LE), payload.
const (
	magicSpec    = "PDSP"
	magicRun     = "PDRN"
	magicMapping = "PDMP"
	headerLen    = 4 + 1 + 4 + 4
	maxFrameLen  = 1 << 30 // defensive bound on a declared payload length
)

// frame wraps a payload with magic, version and checksum.
func frame(magic string, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	copy(out, magic)
	out[4] = Version
	binary.LittleEndian.PutUint32(out[5:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[9:], crc32.ChecksumIEEE(payload))
	copy(out[headerLen:], payload)
	return out
}

// unframe validates magic, version, length and checksum, returning the
// payload.
func unframe(magic string, data []byte) ([]byte, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("codec: frame truncated (%d bytes)", len(data))
	}
	if string(data[:4]) != magic {
		return nil, fmt.Errorf("codec: bad magic %q, want %q", data[:4], magic)
	}
	if data[4] != Version {
		return nil, fmt.Errorf("codec: format version %d, want %d", data[4], Version)
	}
	n := binary.LittleEndian.Uint32(data[5:])
	if n > maxFrameLen || int(n) != len(data)-headerLen {
		return nil, fmt.Errorf("codec: payload length %d does not match frame of %d bytes", n, len(data))
	}
	payload := data[headerLen:]
	if sum := crc32.ChecksumIEEE(payload); sum != binary.LittleEndian.Uint32(data[9:]) {
		return nil, fmt.Errorf("codec: checksum mismatch")
	}
	return payload, nil
}

// ContentHash is the canonical content address of an encoded frame:
// the SHA-256 digest of the frame bytes exactly as written, header
// included. Because the encoders are deterministic (maps are emitted
// in sorted order, trees in preorder), two frames hash equal iff they
// encode the same logical document under the same format version —
// which is what lets the store dedup re-imports and the ledger treat
// the hash as the identity of a committed run.
func ContentHash(data []byte) [sha256.Size]byte {
	return sha256.Sum256(data)
}

// FrameSize reports the total byte length of the frame starting at
// data[0] — header plus declared payload — without validating the
// checksum. It accepts any of the three frame magics, so a scanner can
// walk a log of concatenated frames record by record. An unknown
// magic, unknown version or truncated/oversized declared length is an
// error: the scanner cannot know where the next record starts.
func FrameSize(data []byte) (int, error) {
	if len(data) < headerLen {
		return 0, fmt.Errorf("codec: frame truncated (%d bytes)", len(data))
	}
	switch string(data[:4]) {
	case magicSpec, magicRun, magicMapping:
	default:
		return 0, fmt.Errorf("codec: bad magic %q", data[:4])
	}
	if data[4] != Version {
		return 0, fmt.Errorf("codec: format version %d, want %d", data[4], Version)
	}
	n := binary.LittleEndian.Uint32(data[5:])
	if n > maxFrameLen || int(n) > len(data)-headerLen {
		return 0, fmt.Errorf("codec: declared payload length %d exceeds remaining %d bytes", n, len(data)-headerLen)
	}
	return headerLen + int(n), nil
}

// --- primitive writers/readers --------------------------------------

type writer struct{ buf []byte }

func (w *writer) uvarint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *writer) intv(v int)       { w.uvarint(uint64(v)) }
func (w *writer) byteVal(b byte)   { w.buf = append(w.buf, b) }
func (w *writer) str(s string)     { w.intv(len(s)); w.buf = append(w.buf, s...) }

type reader struct {
	buf []byte
	pos int
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("codec: truncated varint at offset %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// intv reads a count/index bounded by the remaining payload — any
// legitimate count is at most one byte of payload per element, so this
// rejects corrupt lengths before they can size an allocation.
func (r *reader) intv() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(r.buf)) {
		return 0, fmt.Errorf("codec: count %d exceeds payload size %d", v, len(r.buf))
	}
	return int(v), nil
}

func (r *reader) byteVal() (byte, error) {
	if r.pos >= len(r.buf) {
		return 0, fmt.Errorf("codec: truncated payload at offset %d", r.pos)
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) str() (string, error) {
	n, err := r.intv()
	if err != nil {
		return "", err
	}
	if r.pos+n > len(r.buf) {
		return "", fmt.Errorf("codec: string of %d bytes overruns payload", n)
	}
	s := string(r.buf[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

func (r *reader) done() error {
	if r.pos != len(r.buf) {
		return fmt.Errorf("codec: %d trailing bytes after payload", len(r.buf)-r.pos)
	}
	return nil
}

// --- graph ----------------------------------------------------------

// encodeGraph writes nodes (id, label) in insertion order and edges as
// node-index pairs in insertion order. Replaying AddEdge in that order
// reproduces parallel-edge keys exactly, so edges can be referenced by
// their position in this list.
func encodeGraph(w *writer, g *graph.Graph) map[graph.Edge]int {
	nodes := g.Nodes()
	nodeIdx := make(map[graph.NodeID]int, len(nodes))
	w.intv(len(nodes))
	for i, n := range nodes {
		nodeIdx[n] = i
		w.str(string(n))
		w.str(g.Label(n))
	}
	edges := g.Edges()
	edgeIdx := make(map[graph.Edge]int, len(edges))
	w.intv(len(edges))
	for i, e := range edges {
		edgeIdx[e] = i
		w.intv(nodeIdx[e.From])
		w.intv(nodeIdx[e.To])
	}
	return edgeIdx
}

// decodeGraph replays an encoded graph, returning it with the edge
// list in encoding order.
func decodeGraph(r *reader) (*graph.Graph, []graph.Edge, error) {
	g := graph.New()
	nn, err := r.intv()
	if err != nil {
		return nil, nil, err
	}
	nodes := make([]graph.NodeID, nn)
	for i := 0; i < nn; i++ {
		id, err := r.str()
		if err != nil {
			return nil, nil, err
		}
		label, err := r.str()
		if err != nil {
			return nil, nil, err
		}
		if err := g.AddNode(graph.NodeID(id), label); err != nil {
			return nil, nil, fmt.Errorf("codec: %w", err)
		}
		nodes[i] = graph.NodeID(id)
	}
	ne, err := r.intv()
	if err != nil {
		return nil, nil, err
	}
	edges := make([]graph.Edge, ne)
	for i := 0; i < ne; i++ {
		fi, err := r.intv()
		if err != nil {
			return nil, nil, err
		}
		ti, err := r.intv()
		if err != nil {
			return nil, nil, err
		}
		if fi >= nn || ti >= nn {
			return nil, nil, fmt.Errorf("codec: edge %d references node %d/%d of %d", i, fi, ti, nn)
		}
		e, err := g.AddEdge(nodes[fi], nodes[ti])
		if err != nil {
			return nil, nil, fmt.Errorf("codec: %w", err)
		}
		edges[i] = e
	}
	return g, edges, nil
}

// --- specification --------------------------------------------------

// EncodeSpec serializes a specification: its graph plus the fork and
// loop edge sets (as edge indices). Decoding revalidates through
// spec.New, so a specification decoded from a snapshot is bit-for-bit
// the same object a fresh XML parse would build.
func EncodeSpec(sp *spec.Spec) []byte {
	w := &writer{}
	edgeIdx := encodeGraph(w, sp.G)
	writeEdgeSets := func(sets []spec.EdgeSet) {
		w.intv(len(sets))
		for _, h := range sets {
			w.intv(len(h))
			for _, e := range h {
				w.intv(edgeIdx[e])
			}
		}
	}
	writeEdgeSets(sp.Forks)
	writeEdgeSets(sp.Loops)
	return frame(magicSpec, w.buf)
}

// DecodeSpec parses a specification frame and rebuilds the validated
// Spec (including its annotated SP-tree).
func DecodeSpec(data []byte) (*spec.Spec, error) {
	payload, err := unframe(magicSpec, data)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: payload}
	g, edges, err := decodeGraph(r)
	if err != nil {
		return nil, err
	}
	readEdgeSets := func() ([]spec.EdgeSet, error) {
		n, err := r.intv()
		if err != nil {
			return nil, err
		}
		sets := make([]spec.EdgeSet, n)
		for i := range sets {
			m, err := r.intv()
			if err != nil {
				return nil, err
			}
			set := make(spec.EdgeSet, m)
			for j := range set {
				ei, err := r.intv()
				if err != nil {
					return nil, err
				}
				if ei >= len(edges) {
					return nil, fmt.Errorf("codec: edge set references edge %d of %d", ei, len(edges))
				}
				set[j] = edges[ei]
			}
			sets[i] = set
		}
		return sets, nil
	}
	forks, err := readEdgeSets()
	if err != nil {
		return nil, err
	}
	loops, err := readEdgeSets()
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return spec.New(g, forks, loops)
}

// --- spec mapping ---------------------------------------------------

// specTreeDigest fingerprints a specification tree over both the
// edge-identity signature and the label signature, so a mapping frame
// detects not just size drift but renames — whether they touch the
// module IDs, the labels, or both.
func specTreeDigest(root *sptree.Node) uint32 {
	return crc32.ChecksumIEEE([]byte(root.Signature() + "\x00" + root.LabelSignature()))
}

// EncodeSpecMapping serializes a spec-evolution mapping as pairs of
// preorder node IDs, together with both trees' node counts and
// label-sensitive digests, so a frame decoded against drifted
// specification versions — even a same-shape rename — fails fast
// instead of serving a stale mapping.
func EncodeSpecMapping(m *evolve.SpecMapping) ([]byte, error) {
	if m == nil || m.A == nil || m.B == nil || m.A.Tree == nil || m.B.Tree == nil {
		return nil, fmt.Errorf("codec: mapping lacks specifications")
	}
	w := &writer{}
	w.intv(m.A.Tree.CountNodes())
	w.intv(m.B.Tree.CountNodes())
	w.buf = binary.LittleEndian.AppendUint32(w.buf, specTreeDigest(m.A.Tree))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, specTreeDigest(m.B.Tree))
	w.buf = binary.LittleEndian.AppendUint64(w.buf, math.Float64bits(m.Cost))
	w.intv(len(m.Pairs))
	for _, p := range m.Pairs {
		w.intv(p[0].ID)
		w.intv(p[1].ID)
	}
	return frame(magicMapping, w.buf), nil
}

// DecodeSpecMapping parses a mapping frame against the two
// specification versions it aligns, rebuilding and revalidating the
// SpecMapping (injectivity, node membership, kind compatibility). Any
// structural drift — a different node count, an out-of-range ID —
// fails loudly; the store treats that as "recompute the mapping".
func DecodeSpecMapping(data []byte, a, b *spec.Spec) (*evolve.SpecMapping, error) {
	if a == nil || b == nil || a.Tree == nil || b.Tree == nil {
		return nil, fmt.Errorf("codec: nil specification")
	}
	payload, err := unframe(magicMapping, data)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: payload}
	aNodes := flattenSpecTree(a.Tree)
	bNodes := flattenSpecTree(b.Tree)
	wantA, err := r.intv()
	if err != nil {
		return nil, err
	}
	wantB, err := r.intv()
	if err != nil {
		return nil, err
	}
	if wantA != len(aNodes) || wantB != len(bNodes) {
		return nil, fmt.Errorf("codec: mapping expects %d/%d-node specification trees, have %d/%d",
			wantA, wantB, len(aNodes), len(bNodes))
	}
	if r.pos+8 > len(r.buf) {
		return nil, fmt.Errorf("codec: truncated mapping digests")
	}
	digA := binary.LittleEndian.Uint32(r.buf[r.pos:])
	digB := binary.LittleEndian.Uint32(r.buf[r.pos+4:])
	r.pos += 8
	if digA != specTreeDigest(a.Tree) || digB != specTreeDigest(b.Tree) {
		return nil, fmt.Errorf("codec: mapping was recorded against different specification contents")
	}
	if r.pos+8 > len(r.buf) {
		return nil, fmt.Errorf("codec: truncated mapping cost")
	}
	cost := math.Float64frombits(binary.LittleEndian.Uint64(r.buf[r.pos:]))
	r.pos += 8
	n, err := r.intv()
	if err != nil {
		return nil, err
	}
	pairs := make([][2]*sptree.Node, 0, n)
	for i := 0; i < n; i++ {
		ai, err := r.intv()
		if err != nil {
			return nil, err
		}
		bi, err := r.intv()
		if err != nil {
			return nil, err
		}
		if ai >= len(aNodes) || bi >= len(bNodes) {
			return nil, fmt.Errorf("codec: mapping pair %d references node %d/%d of %d/%d",
				i, ai, bi, len(aNodes), len(bNodes))
		}
		pairs = append(pairs, [2]*sptree.Node{aNodes[ai], bNodes[bi]})
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	return evolve.NewMapping(a, b, cost, pairs)
}

// --- run ------------------------------------------------------------

// EncodeRun serializes a run: its graph, the implicit loop edges, and
// the derived annotated SP-tree with each node's specification
// alignment stored as the preorder ID of h(v) in the specification
// tree. The spec-tree node count is recorded so a snapshot decoded
// against a structurally different specification fails fast instead of
// mis-aligning.
func EncodeRun(r *wfrun.Run) ([]byte, error) {
	if r == nil || r.Tree == nil || r.Spec == nil || r.Spec.Tree == nil {
		return nil, fmt.Errorf("codec: run has no derived tree")
	}
	w := &writer{}
	edgeIdx := encodeGraph(w, r.Graph)
	w.intv(len(r.ImplicitEdges))
	for _, e := range r.ImplicitEdges {
		i, ok := edgeIdx[e]
		if !ok {
			return nil, fmt.Errorf("codec: implicit edge %s is not a graph edge", e)
		}
		w.intv(i)
	}
	w.intv(r.Spec.Tree.CountNodes())
	if err := encodeTree(w, r.Tree, edgeIdx); err != nil {
		return nil, err
	}
	return frame(magicRun, w.buf), nil
}

// encodeTree writes the run tree in preorder: type, spec preorder ID,
// then for Q leaves the run-edge index, for internal nodes the child
// count followed by the children.
func encodeTree(w *writer, n *sptree.Node, edgeIdx map[graph.Edge]int) error {
	if n.Spec == nil {
		return fmt.Errorf("codec: run-tree %s node has no specification alignment", n.Type)
	}
	w.byteVal(byte(n.Type))
	w.intv(n.Spec.ID)
	if n.Type == sptree.Q {
		i, ok := edgeIdx[n.Edge]
		if !ok {
			return fmt.Errorf("codec: tree leaf edge %s is not a graph edge", n.Edge)
		}
		w.intv(i)
		return nil
	}
	w.intv(len(n.Children))
	for _, c := range n.Children {
		if err := encodeTree(w, c, edgeIdx); err != nil {
			return err
		}
	}
	return nil
}

// DecodeRun parses a run frame against its specification, rebuilding
// the graph and the annotated tree directly — no flow-network checks,
// no SP decomposition, no derivation. The checksum plus the structural
// bounds below (every spec ID in range and of the expected node type,
// every edge index valid) keep a corrupt or mismatched snapshot from
// producing a malformed Run; the store falls back to the XML parse
// whenever this returns an error.
func DecodeRun(data []byte, sp *spec.Spec) (*wfrun.Run, error) {
	if sp == nil || sp.Tree == nil {
		return nil, fmt.Errorf("codec: nil specification")
	}
	payload, err := unframe(magicRun, data)
	if err != nil {
		return nil, err
	}
	r := &reader{buf: payload}
	g, edges, err := decodeGraph(r)
	if err != nil {
		return nil, err
	}
	ni, err := r.intv()
	if err != nil {
		return nil, err
	}
	implicit := make([]graph.Edge, ni)
	for i := range implicit {
		ei, err := r.intv()
		if err != nil {
			return nil, err
		}
		if ei >= len(edges) {
			return nil, fmt.Errorf("codec: implicit edge index %d of %d", ei, len(edges))
		}
		implicit[i] = edges[ei]
	}
	// Specification-tree nodes indexed by preorder ID (Finalize
	// guarantees ID == preorder position).
	specNodes := flattenSpecTree(sp.Tree)
	wantSpecNodes, err := r.intv()
	if err != nil {
		return nil, err
	}
	if wantSpecNodes != len(specNodes) {
		return nil, fmt.Errorf("codec: snapshot expects a %d-node specification tree, have %d", wantSpecNodes, len(specNodes))
	}
	d := &treeDecoder{r: r, specNodes: specNodes, edges: edges}
	root, err := d.decode(0)
	if err != nil {
		return nil, err
	}
	if err := r.done(); err != nil {
		return nil, err
	}
	root.Finalize()
	return &wfrun.Run{Spec: sp, Tree: root, Graph: g, ImplicitEdges: implicit}, nil
}

func flattenSpecTree(root *sptree.Node) []*sptree.Node {
	out := make([]*sptree.Node, 0, 64)
	root.Walk(func(n *sptree.Node) bool {
		out = append(out, n)
		return true
	})
	return out
}

type treeDecoder struct {
	r         *reader
	specNodes []*sptree.Node
	edges     []graph.Edge
	nodes     int
}

// maxTreeDepth bounds recursion against adversarial nesting; real run
// trees are no deeper than the specification tree times the loop
// nesting, far below this.
const maxTreeDepth = 10_000

func (d *treeDecoder) decode(depth int) (*sptree.Node, error) {
	if depth > maxTreeDepth {
		return nil, fmt.Errorf("codec: tree deeper than %d", maxTreeDepth)
	}
	d.nodes++
	if d.nodes > len(d.r.buf)+1 {
		return nil, fmt.Errorf("codec: tree node count exceeds payload bound")
	}
	tb, err := d.r.byteVal()
	if err != nil {
		return nil, err
	}
	typ := sptree.Type(tb)
	if typ > sptree.L {
		return nil, fmt.Errorf("codec: unknown tree node type %d", tb)
	}
	specID, err := d.r.intv()
	if err != nil {
		return nil, err
	}
	if specID >= len(d.specNodes) {
		return nil, fmt.Errorf("codec: spec node ID %d of %d", specID, len(d.specNodes))
	}
	tg := d.specNodes[specID]
	// A run node's type always equals its specification node's type
	// (f″ maps Q↔Q, S↔S, …); checking it here rejects snapshots
	// decoded against the wrong specification.
	if tg.Type != typ {
		return nil, fmt.Errorf("codec: run %s node aligned to specification %s node", typ, tg.Type)
	}
	n := &sptree.Node{Type: typ, Spec: tg, Src: tg.Src, Dst: tg.Dst}
	if typ == sptree.Q {
		ei, err := d.r.intv()
		if err != nil {
			return nil, err
		}
		if ei >= len(d.edges) {
			return nil, fmt.Errorf("codec: leaf edge index %d of %d", ei, len(d.edges))
		}
		n.Edge = d.edges[ei]
		return n, nil
	}
	nc, err := d.r.intv()
	if err != nil {
		return nil, err
	}
	if nc == 0 {
		return nil, fmt.Errorf("codec: internal %s node with no children", typ)
	}
	for i := 0; i < nc; i++ {
		c, err := d.decode(depth + 1)
		if err != nil {
			return nil, err
		}
		n.Adopt(c)
	}
	return n, nil
}
