package codec

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/evolve"
	"repro/internal/gen"
	"repro/internal/sptree"
	"repro/internal/wfrun"
	"repro/internal/wfxml"
)

func TestSpecRoundTrip(t *testing.T) {
	for _, name := range gen.CatalogNames {
		sp, err := gen.Catalog(name)
		if err != nil {
			t.Fatal(err)
		}
		data := EncodeSpec(sp)
		got, err := DecodeSpec(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if got.Tree.Signature() != sp.Tree.Signature() {
			t.Errorf("%s: decoded tree differs:\n%s\nvs\n%s", name, got.Tree, sp.Tree)
		}
		if got.Stats() != sp.Stats() {
			t.Errorf("%s: stats %+v, want %+v", name, got.Stats(), sp.Stats())
		}
		// The decoded spec must XML-encode identically to the original:
		// the snapshot never changes what a client would see.
		var a, b bytes.Buffer
		if err := wfxml.EncodeSpec(&a, sp, name); err != nil {
			t.Fatal(err)
		}
		if err := wfxml.EncodeSpec(&b, got, name); err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s: XML of decoded spec differs", name)
		}
	}
}

// TestRunRoundTripMatchesXMLParse is the property the store's snapshot
// fast path rests on: for a run parsed from XML, encoding it to the
// binary format and decoding it back yields a run indistinguishable
// from the XML parse — same tree (exactly, not just up to ≡), same
// graph, same implicit edges, distance zero under differencing.
func TestRunRoundTripMatchesXMLParse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	eng := core.NewEngine(cost.Unit{})
	for _, name := range gen.CatalogNames {
		sp, err := gen.Catalog(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			executed, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
			if err != nil {
				t.Fatal(err)
			}
			// Canonical reference: the XML round trip (what the store
			// serves from disk).
			var xmlBuf bytes.Buffer
			if err := wfxml.EncodeRun(&xmlBuf, executed, "r"); err != nil {
				t.Fatal(err)
			}
			ref, err := wfxml.DecodeRun(bytes.NewReader(xmlBuf.Bytes()), sp)
			if err != nil {
				t.Fatal(err)
			}
			data, err := EncodeRun(ref)
			if err != nil {
				t.Fatalf("%s/%d: encode: %v", name, i, err)
			}
			got, err := DecodeRun(data, sp)
			if err != nil {
				t.Fatalf("%s/%d: decode: %v", name, i, err)
			}
			assertSameRun(t, name, ref, got)
			if d, err := eng.Distance(ref, got); err != nil || d != 0 {
				t.Errorf("%s/%d: distance(ref, decoded) = %v, %v; want 0, nil", name, i, d, err)
			}
		}
	}
}

// TestRunRoundTripFaithful checks the codec reproduces exactly the
// tree it was given even when that tree is not the canonical form the
// XML parse would derive (fork groupings from Execute can differ).
func TestRunRoundTripFaithful(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sp, err := gen.Catalog("SAXPF")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeRun(r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRun(data, sp)
		if err != nil {
			t.Fatal(err)
		}
		assertSameRun(t, "SAXPF", r, got)
	}
}

func assertSameRun(t *testing.T, name string, want, got *wfrun.Run) {
	t.Helper()
	if got.Tree.String() != want.Tree.String() {
		t.Errorf("%s: decoded tree differs:\n%s\nvs\n%s", name, got.Tree, want.Tree)
	}
	if !sptree.Equivalent(got.Tree, want.Tree) {
		t.Errorf("%s: decoded tree not equivalent", name)
	}
	if got.Graph.String() != want.Graph.String() {
		t.Errorf("%s: decoded graph differs", name)
	}
	if len(got.ImplicitEdges) != len(want.ImplicitEdges) {
		t.Fatalf("%s: %d implicit edges, want %d", name, len(got.ImplicitEdges), len(want.ImplicitEdges))
	}
	seen := make(map[string]bool)
	for _, e := range want.ImplicitEdges {
		seen[e.String()] = true
	}
	for _, e := range got.ImplicitEdges {
		if !seen[e.String()] {
			t.Errorf("%s: unexpected implicit edge %s", name, e)
		}
	}
	// Alignment: every decoded node points at a real spec-tree node of
	// matching type.
	got.Tree.Walk(func(n *sptree.Node) bool {
		if n.Spec == nil {
			t.Errorf("%s: decoded node %s has no spec alignment", name, n.Type)
			return false
		}
		if n.Spec.Type != n.Type {
			t.Errorf("%s: decoded %s node aligned to %s spec node", name, n.Type, n.Spec.Type)
		}
		return true
	})
}

// TestDecodeRejectsCorruption flips every byte of an encoded run in
// turn and requires DecodeRun to fail cleanly (no panic, no silent
// wrong result) — the property the store's XML fallback relies on.
func TestDecodeRejectsCorruption(t *testing.T) {
	sp, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	r, err := gen.RandomRun(sp, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeRun(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if _, err := DecodeRun(mut, sp); err == nil {
			t.Fatalf("corruption at byte %d decoded without error", i)
		}
	}
	// Truncations likewise.
	for _, n := range []int{0, 3, headerLen - 1, headerLen, len(data) / 2, len(data) - 1} {
		if _, err := DecodeRun(data[:n], sp); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}

func TestDecodeRejectsWrongSpec(t *testing.T) {
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	mb, err := gen.Catalog("MB")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	r, err := gen.RandomRun(pa, gen.DefaultRunParams(), rng)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeRun(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRun(data, mb); err == nil {
		t.Fatal("decoding a PA snapshot against the MB specification succeeded")
	}
}

func TestSpecMappingRoundTrip(t *testing.T) {
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	muts, err := gen.Mutate(pa, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	v2 := muts[len(muts)-1].Spec
	m, err := evolve.SpecDiff(pa, v2, evolve.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpecMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSpecMapping(data, pa, v2)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != m.Cost {
		t.Errorf("round-trip changed cost: %g -> %g", m.Cost, got.Cost)
	}
	if len(got.Pairs) != len(m.Pairs) {
		t.Fatalf("round-trip changed pair count: %d -> %d", len(m.Pairs), len(got.Pairs))
	}
	for i := range m.Pairs {
		if got.Pairs[i][0] != m.Pairs[i][0] || got.Pairs[i][1] != m.Pairs[i][1] {
			t.Fatalf("round-trip changed pair %d", i)
		}
	}
	if err := got.Validate(); err != nil {
		t.Error(err)
	}
}

func TestSpecMappingRejectsCorruptionAndWrongSpecs(t *testing.T) {
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	muts, err := gen.Mutate(pa, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	v2 := muts[0].Spec
	m, err := evolve.SpecDiff(pa, v2, evolve.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpecMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	// Byte flips must never decode into a mapping silently. (The cost
	// field is checksummed like everything else, so even a flipped
	// float is caught at the frame layer.)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		if _, err := DecodeSpecMapping(mut, pa, v2); err == nil {
			t.Fatalf("corruption at byte %d decoded without error", i)
		}
	}
	for _, n := range []int{0, headerLen - 1, len(data) / 2, len(data) - 1} {
		if _, err := DecodeSpecMapping(data[:n], pa, v2); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
	// Decoding against the wrong version pair must fail fast.
	mb, err := gen.Catalog("MB")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSpecMapping(data, mb, v2); err == nil {
		t.Error("mapping decoded against the wrong source specification")
	}
	if _, err := DecodeSpecMapping(data, pa, mb); err == nil {
		t.Error("mapping decoded against the wrong target specification")
	}
}

// TestSpecMappingRejectsSameShapeRename: a mapping frame decoded
// against a spec whose structure is unchanged but whose labels were
// edited out of band must be rejected (node counts alone would pass),
// so the store recomputes instead of serving a stale mapping.
func TestSpecMappingRejectsSameShapeRename(t *testing.T) {
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := wfxml.EncodeSpec(&buf, pa, "pa"); err != nil {
		t.Fatal(err)
	}
	// Same shape, one module label renamed.
	renamedXML := strings.Replace(buf.String(), `label="m5"`, `label="zz"`, 1)
	if renamedXML == buf.String() {
		t.Fatal("fixture: label replacement did not apply")
	}
	renamed, err := wfxml.DecodeSpec(strings.NewReader(renamedXML))
	if err != nil {
		t.Fatal(err)
	}
	if renamed.Tree.CountNodes() != pa.Tree.CountNodes() {
		t.Fatal("fixture: rename changed the tree shape")
	}
	m, err := evolve.SpecDiff(pa, pa, evolve.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeSpecMapping(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeSpecMapping(data, pa, renamed); err == nil {
		t.Error("mapping decoded against a same-shape renamed specification")
	}
	if _, err := DecodeSpecMapping(data, pa, pa); err != nil {
		t.Errorf("mapping failed to decode against its own specs: %v", err)
	}
}
