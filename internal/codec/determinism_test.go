package codec_test

// Frame canonicality: parsing the same run document twice must encode
// to identical frames, byte for byte. The group-commit pipeline's
// differential guarantee (batched ingest leaves a store byte-identical
// to sequential ingest) rests on this; a map-ordered slice anywhere in
// parse or derivation breaks it only intermittently, so this test
// hammers repeated decode->encode round trips.

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/codec"
	"repro/internal/gen"
	"repro/internal/wfxml"
)

func TestEncodeRunDeterministic(t *testing.T) {
	pa, err := gen.Catalog("PA")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(3000); seed < 3010; seed++ {
		r, err := gen.RandomRun(pa, gen.DefaultRunParams(), rand.New(rand.NewSource(seed)))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := wfxml.EncodeRun(&buf, r, "probe"); err != nil {
			t.Fatal(err)
		}
		xml := buf.Bytes()
		var first []byte
		for trial := 0; trial < 30; trial++ {
			rr, err := wfxml.DecodeRun(bytes.NewReader(xml), pa)
			if err != nil {
				t.Fatal(err)
			}
			fr, err := codec.EncodeRun(rr)
			if err != nil {
				t.Fatal(err)
			}
			if first == nil {
				first = fr
			} else if !bytes.Equal(first, fr) {
				i := 0
				for i < len(first) && i < len(fr) && first[i] == fr[i] {
					i++
				}
				t.Fatalf("seed %d trial %d: frame differs at byte %d of %d/%d", seed, trial, i, len(first), len(fr))
			}
		}
	}
}
