package metricindex

// boundSlack is the relative slack subtracted from every lower bound
// before it is compared against an exact distance. The engine computes
// distances in floating point, so a mathematically tight triangle
// bound can exceed the exact distance by a few ulps; slacking the
// bound keeps pruning strictly conservative, preserving byte-identity
// with the exhaustive oracle, at the cost of a vanishing number of
// extra exact diffs.
const boundSlack = 1e-9

// loosen applies the float-safety slack to a lower bound.
func loosen(b float64) float64 {
	b -= boundSlack * (1 + b)
	if b < 0 {
		return 0
	}
	return b
}

// Cohort is an immutable query view over one published generation of
// an Index: the receiver cluster.Indexed* queries run against. Reads
// (Len, Labels, Bound, Proj) touch only the captured state and are
// safe from any number of goroutines; Distance serializes on the
// owning index's compute lock and feeds its exact/pruned counters.
type Cohort struct {
	ix *Index
	st *state
}

// Len returns the number of runs in the view.
func (c *Cohort) Len() int { return len(c.st.labels) }

// Labels returns a copy of the run names in index order.
func (c *Cohort) Labels() []string { return append([]string(nil), c.st.labels...) }

// Label returns the name of run i.
func (c *Cohort) Label(i int) string { return c.st.labels[i] }

// IndexOf resolves a run name to its position in the view.
func (c *Cohort) IndexOf(name string) (int, bool) {
	i, ok := c.st.index[name]
	return i, ok
}

// Landmarks reports how many landmark anchors the view carries.
func (c *Cohort) Landmarks() int { return len(c.st.anchors) }

// Bound returns a lower bound on the exact distance between runs i
// and j: the best of the landmark triangle bound
// max_m |d(i,L_m) - d(j,L_m)| and the histogram bound rate·L1(h_i,h_j),
// slacked for float safety. Never above Distance(i, j).
func (c *Cohort) Bound(i, j int) float64 {
	if i == j {
		return 0
	}
	ri, rj := c.st.lm[i], c.st.lm[j]
	b := 0.0
	for m := range ri {
		d := ri[m] - rj[m]
		if d < 0 {
			d = -d
		}
		if d > b {
			b = d
		}
	}
	if c.st.rate > 0 {
		if h := c.st.rate * histL1(c.st.hists[i], c.st.hists[j]); h > b {
			b = h
		}
	}
	return loosen(b)
}

// Distance returns the exact edit distance between runs i and j via
// one counted engine diff (0 immediately when i == j). The pair is
// diffed in ascending index order — the convention every dense-matrix
// builder uses — because the engine's floating-point summation order
// can differ by an ulp between d(a,b) and d(b,a), and byte-identity
// with the exhaustive path requires the same orientation.
func (c *Cohort) Distance(i, j int) (float64, error) {
	if i == j {
		return 0, nil
	}
	if i > j {
		i, j = j, i
	}
	return c.ix.exactDistance(c.st.runs[i], c.st.runs[j])
}

// Proj returns a contractive 1-D projection of run i — its distance to
// the first landmark — so |Proj(i) - Proj(j)| ≤ d(i, j) by the
// triangle inequality. Queries sorted by projection can enumerate
// candidates nearest-projection-first and stop as soon as the
// projection gap alone exceeds their pruning radius.
func (c *Cohort) Proj(i int) float64 {
	if len(c.st.lm[i]) == 0 {
		return 0
	}
	return c.st.lm[i][0]
}

// Pruned records n candidate pairs eliminated without an exact diff on
// the owning index's counters.
func (c *Cohort) Pruned(n int64) { c.ix.pruned.Add(n) }
