// Package metricindex accelerates cohort analytics over the run edit
// distance by exploiting that the distance is a true metric (the
// identity/symmetry/triangle properties the differential suite in
// internal/naive verifies). It maintains, per cohort, two cheap
// per-run summaries:
//
//   - distances to m landmark runs chosen by max-min (farthest-point)
//     sampling, giving the triangle-inequality lower bound
//     |d(q,L) - d(x,L)| <= d(q,x) for every landmark L; and
//   - a spec-node status histogram (Q-leaf counts per specification
//     node), whose L1 gap scaled by a model-derived rate is a provable
//     lower bound on the edit distance (see bound.go).
//
// Nearest-neighbor, outlier and clustering queries (internal/cluster's
// Indexed* entry points) consult these bounds before any exact dynamic
// program, so a query over n runs performs O(n) cheap bound
// evaluations but only a handful of exact diffs — sub-quadratic cohort
// analytics where the dense matrix needs O(n²) diffs up front.
//
// The index follows the CohortMatrix maintenance discipline: mutations
// (Reset, Add, Remove) serialize among themselves and publish
// immutable state, so a Snapshot taken at any moment is internally
// consistent and stays valid however the index changes afterwards.
// Pruned/exact counters are exported the way CohortMatrix.DiffCalls
// is, and the naive-oracle differential harness asserts pruned answers
// are byte-identical to exhaustive ones.
//
// The cost model must satisfy the metric conditions of Section III-C.2
// (CheckMetric): triangle pruning is only sound for a true metric.
package metricindex

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// DefaultLandmarks is the landmark count used when Options.Landmarks
// is unset: enough anchors for strong triangle bounds on 10k-run
// cohorts while keeping per-run storage and per-add diff cost O(1).
const DefaultLandmarks = 8

// Options tunes an Index. The zero value means DefaultLandmarks
// anchors and a GOMAXPROCS build fan-out.
type Options struct {
	// Landmarks is the target number of landmark anchors; <= 0 means
	// DefaultLandmarks.
	Landmarks int
	// Workers caps the differencing fan-out of Reset and landmark
	// promotion; <= 0 means GOMAXPROCS (the CohortMatrix default).
	Workers int
}

// anchor is one landmark: a run kept as a pure reference point. An
// anchor survives the removal of its underlying cohort member — the
// stored distances to it remain valid triangle bounds regardless of
// membership — so Remove never recomputes anything.
type anchor struct {
	name string
	run  *wfrun.Run
}

// state is one published, immutable generation of the index: every
// mutation builds fresh rows and swaps the whole struct in, so readers
// holding a *state (via Cohort) never observe partial updates.
type state struct {
	sp   *spec.Spec
	rate float64 // histogram lower-bound rate; 0 disables the bound

	labels  []string
	index   map[string]int
	runs    []*wfrun.Run
	hists   [][]int32   // per run: Q-leaf counts per spec-node ID
	lm      [][]float64 // lm[i][j] = d(runs[i], anchors[j].run)
	anchors []anchor
}

// Index is an incrementally maintained vantage-point/landmark index
// over the runs of one specification under one cost model.
type Index struct {
	model     cost.Model
	landmarks int
	workers   int

	// computeMu serializes mutations and exact diffs; the engines are
	// owned by whoever holds it.
	computeMu sync.Mutex
	engines   []*core.Engine

	mu      sync.RWMutex
	st      *state
	version int64

	exact    atomic.Int64
	pruned   atomic.Int64
	rebuilds atomic.Int64
}

// New returns an empty index for the given cost model.
func New(m cost.Model, opts Options) *Index {
	lm := opts.Landmarks
	if lm <= 0 {
		lm = DefaultLandmarks
	}
	return &Index{
		model:     m,
		landmarks: lm,
		workers:   opts.Workers,
		st:        &state{index: map[string]int{}},
	}
}

// Len returns the current cohort size.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.st.labels)
}

// Labels returns a copy of the cohort's run names in index order.
func (ix *Index) Labels() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]string(nil), ix.st.labels...)
}

// Has reports whether a run name is in the cohort.
func (ix *Index) Has(name string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.st.index[name]
	return ok
}

// Version returns a counter bumped by every successful mutation.
func (ix *Index) Version() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.version
}

// Members returns the cohort's names and runs in index order (the runs
// are the shared immutable objects, not copies).
func (ix *Index) Members() ([]string, []*wfrun.Run) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return append([]string(nil), ix.st.labels...), append([]*wfrun.Run(nil), ix.st.runs...)
}

// ExactDiffs reports how many exact engine diffs the index has
// performed since creation — landmark maintenance plus every
// non-pruned candidate of the queries it served.
func (ix *Index) ExactDiffs() int64 { return ix.exact.Load() }

// PrunedPairs reports how many candidate pairs were eliminated by a
// lower bound without an exact diff.
func (ix *Index) PrunedPairs() int64 { return ix.pruned.Load() }

// Rebuilds reports how many full Reset builds the index has performed
// (bulk-import coalescing asserts one per batch).
func (ix *Index) Rebuilds() int64 { return ix.rebuilds.Load() }

// Landmarks reports the current number of landmark anchors.
func (ix *Index) Landmarks() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.st.anchors)
}

// Snapshot returns an immutable view of the current cohort for
// querying, or nil when the cohort is empty. The view stays valid (and
// answers consistently) however the index is mutated afterwards; its
// exact diffs share the index's engine and counters.
func (ix *Index) Snapshot() *Cohort {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.st.labels) == 0 {
		return nil
	}
	return &Cohort{ix: ix, st: ix.st}
}

func (ix *Index) publish(st *state) {
	ix.mu.Lock()
	ix.st = st
	ix.version++
	ix.mu.Unlock()
}

// growEngines ensures at least n reusable engines exist. Caller must
// hold computeMu.
func (ix *Index) growEngines(n int) {
	for len(ix.engines) < n {
		ix.engines = append(ix.engines, core.NewEngine(ix.model))
	}
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }

func (ix *Index) workerCount(jobs int) int {
	w := ix.workers
	if w <= 0 {
		w = defaultWorkers()
	}
	if w > jobs {
		w = jobs
	}
	if w < 1 {
		w = 1
	}
	return w
}

// validateCohort rejects member lists the index cannot hold: length
// mismatch, duplicate names, nil runs, or runs of mixed specifications.
func validateCohort(names []string, runs []*wfrun.Run) (*spec.Spec, error) {
	if len(names) != len(runs) {
		return nil, fmt.Errorf("metricindex: %d names for %d runs", len(names), len(runs))
	}
	seen := make(map[string]bool, len(names))
	var sp *spec.Spec
	for i, n := range names {
		if seen[n] {
			return nil, fmt.Errorf("metricindex: duplicate run name %q in cohort", n)
		}
		seen[n] = true
		r := runs[i]
		if r == nil || r.Tree == nil {
			return nil, fmt.Errorf("metricindex: nil run %q", n)
		}
		if sp == nil {
			sp = r.Spec
		} else if r.Spec != sp {
			return nil, fmt.Errorf("metricindex: run %q belongs to a different specification", n)
		}
	}
	return sp, nil
}

// prepare repairs stale tree IDs single-threaded and pre-warms the
// specification's achievable-length memo, so the per-shard engines can
// afterwards index the shared trees concurrently but read-only. Caller
// must hold computeMu.
func prepare(sp *spec.Spec, runs []*wfrun.Run) {
	var ti sptree.TreeIndex
	for _, r := range runs {
		if r != nil && r.Tree != nil {
			ti.Rebuild(r.Tree)
		}
	}
	if sp != nil {
		warmLengths(sp, sp.Tree)
	}
}

func warmLengths(sp *spec.Spec, n *sptree.Node) {
	sp.AchievableLengths(n)
	for _, c := range n.Children {
		warmLengths(sp, c)
	}
}

// Reset replaces the whole cohort: histograms for every run, then
// landmarks chosen by max-min sampling with their distance columns
// computed by a sharded fan-out (m·n exact diffs total — the only
// quadratic-free build cost of the index).
func (ix *Index) Reset(names []string, runs []*wfrun.Run) error {
	sp, err := validateCohort(names, runs)
	if err != nil {
		return err
	}
	ix.computeMu.Lock()
	defer ix.computeMu.Unlock()
	ix.rebuilds.Add(1)

	n := len(runs)
	st := &state{
		sp:     sp,
		labels: append([]string(nil), names...),
		index:  make(map[string]int, n),
		runs:   append([]*wfrun.Run(nil), runs...),
	}
	for i, name := range names {
		st.index[name] = i
	}
	if n == 0 {
		ix.publish(st)
		return nil
	}
	prepare(sp, runs)
	st.rate = lowerBoundRate(ix.model, sp)
	st.hists = make([][]int32, n)
	specN := sp.Tree.CountNodes()
	for i, r := range runs {
		st.hists[i] = statusHistogram(r, specN)
	}
	st.lm = make([][]float64, n)
	for i := range st.lm {
		st.lm[i] = make([]float64, 0, ix.landmarks)
	}

	// Max-min landmark selection: the first anchor is item 0; each
	// further anchor is the item farthest (by min distance) from the
	// chosen set, which spreads anchors across the cohort's clusters.
	// Ties break toward lower indices; a max-min gap of zero means the
	// remaining items duplicate existing anchors, so more landmarks
	// cannot improve any bound and selection stops early.
	target := ix.landmarks
	if target > n {
		target = n
	}
	for len(st.anchors) < target {
		pick := 0
		if len(st.anchors) > 0 {
			best := -1.0
			for i := range st.runs {
				min := st.lm[i][0]
				for _, d := range st.lm[i][1:] {
					if d < min {
						min = d
					}
				}
				if min > best {
					best, pick = min, i
				}
			}
			if best <= 0 {
				break
			}
		}
		if err := ix.appendAnchorColumn(st, anchor{name: st.labels[pick], run: st.runs[pick]}); err != nil {
			return err
		}
	}
	ix.publish(st)
	return nil
}

// appendAnchorColumn registers a new landmark and fills every item's
// distance to it with a sharded fan-out. Caller must hold computeMu
// and own st exclusively (rows are extended in place).
func (ix *Index) appendAnchorColumn(st *state, a anchor) error {
	n := len(st.runs)
	col := make([]float64, n)
	workers := ix.workerCount(n)
	ix.growEngines(workers)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			eng := ix.engines[w]
			for i := w; i < n; i += workers {
				d, err := eng.Distance(st.runs[i], a.run)
				if err != nil {
					errs[w] = fmt.Errorf("metricindex: runs %q and %q: %w", st.labels[i], a.name, err)
					return
				}
				ix.exact.Add(1)
				col[i] = d
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	for i := range st.lm {
		st.lm[i] = append(st.lm[i], col[i])
	}
	st.anchors = append(st.anchors, a)
	return nil
}

// Add appends a run to the cohort: one histogram walk plus one exact
// diff per landmark (O(m), not O(n)). While the anchor set is below
// target the new cohort may additionally promote one max-min landmark,
// which costs that landmark's n-diff column — the amortized price of
// building the index incrementally instead of by Reset. If the name is
// already present the old row is replaced.
func (ix *Index) Add(name string, run *wfrun.Run) error {
	if run == nil || run.Tree == nil {
		return fmt.Errorf("metricindex: nil run %q", name)
	}
	ix.computeMu.Lock()
	defer ix.computeMu.Unlock()

	ix.mu.RLock()
	old := ix.st
	ix.mu.RUnlock()

	if old.sp != nil && run.Spec != old.sp {
		return fmt.Errorf("metricindex: run %q belongs to a different specification", name)
	}
	sp := old.sp
	if sp == nil {
		sp = run.Spec
	}
	prepare(sp, []*wfrun.Run{run})

	// Copy the surviving rows (dropping a replaced row), then append
	// the new member.
	st := &state{
		sp:      sp,
		rate:    old.rate,
		anchors: old.anchors,
	}
	if old.sp == nil {
		st.rate = lowerBoundRate(ix.model, sp)
	}
	drop := -1
	if i, ok := old.index[name]; ok {
		drop = i
	}
	n := len(old.labels)
	kept := n
	if drop >= 0 {
		kept--
	}
	st.labels = make([]string, 0, kept+1)
	st.runs = make([]*wfrun.Run, 0, kept+1)
	st.hists = make([][]int32, 0, kept+1)
	st.lm = make([][]float64, 0, kept+1)
	for i := 0; i < n; i++ {
		if i == drop {
			continue
		}
		st.labels = append(st.labels, old.labels[i])
		st.runs = append(st.runs, old.runs[i])
		st.hists = append(st.hists, old.hists[i])
		st.lm = append(st.lm, old.lm[i])
	}

	row := make([]float64, len(st.anchors))
	ix.growEngines(1)
	eng := ix.engines[0]
	for j, a := range st.anchors {
		d, err := eng.Distance(run, a.run)
		if err != nil {
			return fmt.Errorf("metricindex: runs %q and %q: %w", name, a.name, err)
		}
		ix.exact.Add(1)
		row[j] = d
	}
	st.labels = append(st.labels, name)
	st.runs = append(st.runs, run)
	st.hists = append(st.hists, statusHistogram(run, sp.Tree.CountNodes()))
	st.lm = append(st.lm, row)
	st.index = make(map[string]int, len(st.labels))
	for i, l := range st.labels {
		st.index[l] = i
	}

	if len(st.anchors) < ix.landmarks && len(st.anchors) < len(st.runs) {
		if err := ix.promote(st); err != nil {
			return err
		}
	}
	ix.publish(st)
	return nil
}

// promote adds the max-min item as a new landmark, copying every row
// first so rows already published under the previous state are never
// extended in place. Caller must hold computeMu.
func (ix *Index) promote(st *state) error {
	pick, best := 0, -1.0
	for i, row := range st.lm {
		min := 0.0
		if len(row) > 0 {
			min = row[0]
			for _, d := range row[1:] {
				if d < min {
					min = d
				}
			}
		}
		if min > best {
			best, pick = min, i
		}
	}
	if best <= 0 && len(st.anchors) > 0 {
		return nil // remaining items duplicate existing anchors
	}
	for i, row := range st.lm {
		st.lm[i] = append(make([]float64, 0, len(row)+1), row...)
	}
	return ix.appendAnchorColumn(st, anchor{name: st.labels[pick], run: st.runs[pick]})
}

// Remove drops a run from the cohort (no differencing at all: anchors
// are reference points, not members, so even a landmark's member row
// can leave without invalidating any stored geometry) and reports
// whether it was present.
func (ix *Index) Remove(name string) bool {
	ix.computeMu.Lock()
	defer ix.computeMu.Unlock()

	ix.mu.RLock()
	old := ix.st
	ix.mu.RUnlock()

	drop, ok := old.index[name]
	if !ok {
		return false
	}
	n := len(old.labels) - 1
	st := &state{
		sp:      old.sp,
		rate:    old.rate,
		anchors: old.anchors,
		labels:  make([]string, 0, n),
		runs:    make([]*wfrun.Run, 0, n),
		hists:   make([][]int32, 0, n),
		lm:      make([][]float64, 0, n),
		index:   make(map[string]int, n),
	}
	for i := 0; i <= n; i++ {
		if i == drop {
			continue
		}
		st.labels = append(st.labels, old.labels[i])
		st.runs = append(st.runs, old.runs[i])
		st.hists = append(st.hists, old.hists[i])
		st.lm = append(st.lm, old.lm[i])
	}
	for i, l := range st.labels {
		st.index[l] = i
	}
	ix.publish(st)
	return true
}

// exactDistance performs one counted engine diff. Exact diffs
// serialize on computeMu, so queries and mutations never share an
// engine.
func (ix *Index) exactDistance(r1, r2 *wfrun.Run) (float64, error) {
	ix.computeMu.Lock()
	defer ix.computeMu.Unlock()
	ix.growEngines(1)
	d, err := ix.engines[0].Distance(r1, r2)
	if err == nil {
		ix.exact.Add(1)
	}
	return d, err
}
