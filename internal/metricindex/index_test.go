package metricindex

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

// testCohort generates n runs of one random-but-fixed specification.
func testCohort(t testing.TB, seed int64, n int) ([]string, []*wfrun.Run) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 12, SeriesRatio: 1, Forks: 2, Loops: 2}, rng)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, n)
	runs := make([]*wfrun.Run, n)
	params := gen.RunParams{ProbP: 0.8, ProbF: 0.6, MaxF: 3, ProbL: 0.6, MaxL: 3}
	for i := range runs {
		names[i] = "r" + string(rune('0'+i/10)) + string(rune('0'+i%10))
		if runs[i], err = gen.RandomRun(sp, params, rng); err != nil {
			t.Fatal(err)
		}
	}
	return names, runs
}

// TestBoundNeverExceedsDistance is the index's core soundness
// property under every analyzable cost model: the published lower
// bound of any pair never exceeds its exact distance.
func TestBoundNeverExceedsDistance(t *testing.T) {
	names, runs := testCohort(t, 21, 14)
	for _, m := range []cost.Model{cost.Unit{}, cost.Length{}, cost.Power{Epsilon: 0.5}} {
		ix := New(m, Options{Landmarks: 4, Workers: 2})
		if err := ix.Reset(names, runs); err != nil {
			t.Fatal(err)
		}
		co := ix.Snapshot()
		for i := 0; i < co.Len(); i++ {
			if co.Bound(i, i) != 0 {
				t.Fatalf("%s: Bound(%d,%d) = %g, want 0", m.Name(), i, i, co.Bound(i, i))
			}
			for j := i + 1; j < co.Len(); j++ {
				b := co.Bound(i, j)
				d, err := co.Distance(i, j)
				if err != nil {
					t.Fatal(err)
				}
				if b > d {
					t.Fatalf("%s: Bound(%d,%d) = %g exceeds exact %g", m.Name(), i, j, b, d)
				}
				if b != co.Bound(j, i) {
					t.Fatalf("%s: asymmetric bound at (%d,%d)", m.Name(), i, j)
				}
			}
		}
	}
}

// TestIncrementalAddMatchesReset: an index grown one Add at a time
// answers kNN queries identically to one built by a single Reset, and
// both match the brute-force engine answer.
func TestIncrementalAddMatchesReset(t *testing.T) {
	names, runs := testCohort(t, 22, 12)
	bulk := New(cost.Length{}, Options{Landmarks: 3, Workers: 2})
	if err := bulk.Reset(names, runs); err != nil {
		t.Fatal(err)
	}
	inc := New(cost.Length{}, Options{Landmarks: 3, Workers: 2})
	for i, name := range names {
		if err := inc.Add(name, runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if inc.Len() != bulk.Len() || inc.Landmarks() == 0 {
		t.Fatalf("incremental index: %d runs, %d landmarks", inc.Len(), inc.Landmarks())
	}
	if !reflect.DeepEqual(inc.Labels(), bulk.Labels()) {
		t.Fatalf("label order diverged:\n%v\n%v", inc.Labels(), bulk.Labels())
	}

	// Brute-force dense matrix straight from the engine.
	eng := core.NewEngine(cost.Length{})
	n := len(runs)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v, err := eng.Distance(runs[i], runs[j])
			if err != nil {
				t.Fatal(err)
			}
			d[i][j], d[j][i] = v, v
		}
	}
	coB, coI := bulk.Snapshot(), inc.Snapshot()
	for i := 0; i < n; i++ {
		want, err := cluster.Nearest(d, i, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotB, err := cluster.IndexedNearest(coB, i, 4)
		if err != nil {
			t.Fatal(err)
		}
		gotI, err := cluster.IndexedNearest(coI, i, 4)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(gotB, want) {
			t.Fatalf("bulk kNN(%d):\n got %v\nwant %v", i, gotB, want)
		}
		if !reflect.DeepEqual(gotI, want) {
			t.Fatalf("incremental kNN(%d):\n got %v\nwant %v", i, gotI, want)
		}
	}
}

// TestQueryAccounting: over one kNN query every non-query candidate is
// either exactly diffed or counted pruned — the counters the CI bench
// gate and /stats rely on must partition the candidate set.
func TestQueryAccounting(t *testing.T) {
	names, runs := testCohort(t, 23, 16)
	ix := New(cost.Length{}, Options{Landmarks: 4, Workers: 2})
	if err := ix.Reset(names, runs); err != nil {
		t.Fatal(err)
	}
	co := ix.Snapshot()
	exact0, pruned0 := ix.ExactDiffs(), ix.PrunedPairs()
	if _, err := cluster.IndexedNearest(co, 0, 3); err != nil {
		t.Fatal(err)
	}
	de, dp := ix.ExactDiffs()-exact0, ix.PrunedPairs()-pruned0
	if de+dp != int64(co.Len()-1) {
		t.Fatalf("accounting: %d exact + %d pruned != %d candidates", de, dp, co.Len()-1)
	}
	if ix.Rebuilds() != 1 {
		t.Fatalf("rebuilds = %d, want 1", ix.Rebuilds())
	}
}

// TestReplaceRemoveAndSnapshotImmutability: membership mutations keep
// the geometry sound, anchors survive member removal, and published
// snapshots never change underneath a reader.
func TestReplaceRemoveAndSnapshotImmutability(t *testing.T) {
	names, runs := testCohort(t, 24, 10)
	ix := New(cost.Unit{}, Options{Landmarks: 3})
	if err := ix.Reset(names, runs); err != nil {
		t.Fatal(err)
	}
	co := ix.Snapshot()
	v0 := ix.Version()
	marks := ix.Landmarks()

	// Reset picks item 0 as the first landmark; removing that member
	// must not drop the anchor or any stored column.
	if !ix.Remove(names[0]) {
		t.Fatal("Remove of a present run returned false")
	}
	if ix.Remove(names[0]) {
		t.Fatal("second Remove returned true")
	}
	if ix.Len() != 9 || ix.Has(names[0]) {
		t.Fatalf("after remove: len %d, has %v", ix.Len(), ix.Has(names[0]))
	}
	if ix.Landmarks() != marks {
		t.Fatalf("anchors dropped with their member: %d -> %d", marks, ix.Landmarks())
	}
	if ix.Version() == v0 {
		t.Fatal("version not bumped")
	}

	// Replacing an existing name keeps the cohort size.
	if err := ix.Add(names[1], runs[2]); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 9 {
		t.Fatalf("replace changed size to %d", ix.Len())
	}

	// The old snapshot still reads the pre-mutation cohort.
	if co.Len() != 10 || co.Label(0) != names[0] {
		t.Fatalf("snapshot mutated: len %d, label %q", co.Len(), co.Label(0))
	}
	if i, ok := co.IndexOf(names[0]); !ok || i != 0 {
		t.Fatalf("snapshot lost member: %d %v", i, ok)
	}

	// Bounds on the mutated index remain sound.
	co2 := ix.Snapshot()
	for i := 0; i < co2.Len(); i++ {
		for j := i + 1; j < co2.Len(); j++ {
			d, err := co2.Distance(i, j)
			if err != nil {
				t.Fatal(err)
			}
			if b := co2.Bound(i, j); b > d {
				t.Fatalf("post-mutation Bound(%d,%d)=%g > %g", i, j, b, d)
			}
		}
	}
}

func TestValidationErrors(t *testing.T) {
	names, runs := testCohort(t, 25, 4)
	other, otherRuns := testCohort(t, 26, 1)
	_ = other
	ix := New(cost.Unit{}, Options{})
	if err := ix.Reset([]string{"a", "a"}, runs[:2]); err == nil {
		t.Fatal("duplicate names should fail")
	}
	if err := ix.Reset([]string{"a"}, []*wfrun.Run{nil}); err == nil {
		t.Fatal("nil run should fail")
	}
	if err := ix.Reset(names[:2], runs[:1]); err == nil {
		t.Fatal("length mismatch should fail")
	}
	mixed := []*wfrun.Run{runs[0], otherRuns[0]}
	if err := ix.Reset(names[:2], mixed); err == nil {
		t.Fatal("mixed specifications should fail")
	}
	if err := ix.Reset(names, runs); err != nil {
		t.Fatal(err)
	}
	if err := ix.Add("x", otherRuns[0]); err == nil {
		t.Fatal("cross-spec Add should fail")
	}
	if err := ix.Add("x", nil); err == nil {
		t.Fatal("nil Add should fail")
	}
	if ix.Len() != 4 {
		t.Fatalf("failed mutations changed the cohort: %d", ix.Len())
	}
}

// TestEmptyAndIdenticalCohorts: degenerate shapes — empty Reset,
// nil Snapshot, and a cohort of identical runs where max-min selection
// stops at one landmark because more cannot improve any bound.
func TestEmptyAndIdenticalCohorts(t *testing.T) {
	ix := New(cost.Unit{}, Options{Landmarks: 4})
	if err := ix.Reset(nil, nil); err != nil {
		t.Fatal(err)
	}
	if ix.Snapshot() != nil {
		t.Fatal("empty cohort should snapshot to nil")
	}
	_, runs := testCohort(t, 27, 1)
	same := []*wfrun.Run{runs[0], runs[0], runs[0]}
	if err := ix.Reset([]string{"a", "b", "c"}, same); err != nil {
		t.Fatal(err)
	}
	if ix.Landmarks() != 1 {
		t.Fatalf("identical cohort grew %d landmarks, want 1", ix.Landmarks())
	}
	co := ix.Snapshot()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if b := co.Bound(i, j); b != 0 {
				t.Fatalf("identical runs Bound(%d,%d) = %g", i, j, b)
			}
		}
	}
}

// TestHistogramBoundBasics: the standalone property entry point — zero
// for identical runs, zero (vacuous) for unanalyzable models, errors
// on spec mismatches.
func TestHistogramBoundBasics(t *testing.T) {
	_, runs := testCohort(t, 28, 2)
	if b, err := HistogramBound(cost.Length{}, runs[0], runs[0]); err != nil || b != 0 {
		t.Fatalf("self bound: %g %v", b, err)
	}
	b, err := HistogramBound(cost.Length{}, runs[0], runs[1])
	if err != nil || b < 0 {
		t.Fatalf("bound: %g %v", b, err)
	}
	f := cost.Func{Fn: func(l int, s, d string) float64 { return float64(l) }, Label: "f"}
	if b, err := HistogramBound(f, runs[0], runs[1]); err != nil || b != 0 {
		t.Fatalf("func model should be vacuous: %g %v", b, err)
	}
	if _, err := HistogramBound(cost.Unit{}, runs[0], nil); err == nil {
		t.Fatal("nil run should fail")
	}
	_, other := testCohort(t, 29, 1)
	if _, err := HistogramBound(cost.Unit{}, runs[0], other[0]); err == nil {
		t.Fatal("cross-spec bound should fail")
	}
}
