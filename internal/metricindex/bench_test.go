package metricindex

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/gen"
	"repro/internal/wfrun"
)

// The 10k-cohort benchmarks: the scale the metric index exists for,
// where a dense matrix would need ~50M exact diffs before the first
// query. The cohort is built once per process (sync.Once) and shared;
// each benchmark asserts its pruning ratio besides timing, so the CI
// bench gate catches both a slowdown and a silent loss of bound
// strength.

const benchCohortSize = 10000

// benchGroups are run-generation parameter mixes; runs drawn from the
// same mix form a behavioral cluster (similar loop/fork replication),
// giving the cohort the multi-modal structure real experiment
// repositories show and landmark bounds thrive on.
var benchGroups = []gen.RunParams{
	{ProbP: 0.9, ProbF: 0.2, MaxF: 1, ProbL: 0.2, MaxL: 1},
	{ProbP: 0.9, ProbF: 0.9, MaxF: 2, ProbL: 0.2, MaxL: 1},
	{ProbP: 0.9, ProbF: 0.2, MaxF: 1, ProbL: 0.9, MaxL: 2},
	{ProbP: 0.9, ProbF: 0.9, MaxF: 2, ProbL: 0.9, MaxL: 2},
	{ProbP: 0.9, ProbF: 0.9, MaxF: 3, ProbL: 0.3, MaxL: 2},
	{ProbP: 0.9, ProbF: 0.3, MaxF: 2, ProbL: 0.9, MaxL: 3},
	{ProbP: 0.9, ProbF: 0.9, MaxF: 3, ProbL: 0.9, MaxL: 3},
	{ProbP: 0.5, ProbF: 0.5, MaxF: 2, ProbL: 0.5, MaxL: 2},
	{ProbP: 0.9, ProbF: 0.6, MaxF: 2, ProbL: 0.6, MaxL: 4},
	{ProbP: 0.9, ProbF: 0.9, MaxF: 4, ProbL: 0.2, MaxL: 1},
	{ProbP: 0.7, ProbF: 0.8, MaxF: 2, ProbL: 0.8, MaxL: 2},
	{ProbP: 0.9, ProbF: 0.4, MaxF: 3, ProbL: 0.7, MaxL: 3},
	{ProbP: 0.8, ProbF: 0.9, MaxF: 3, ProbL: 0.4, MaxL: 4},
	{ProbP: 0.6, ProbF: 0.7, MaxF: 2, ProbL: 0.9, MaxL: 4},
	{ProbP: 0.9, ProbF: 0.5, MaxF: 4, ProbL: 0.5, MaxL: 2},
	{ProbP: 0.9, ProbF: 0.8, MaxF: 4, ProbL: 0.8, MaxL: 4},
	{ProbP: 0.8, ProbF: 0.2, MaxF: 1, ProbL: 0.8, MaxL: 5},
	{ProbP: 0.7, ProbF: 0.9, MaxF: 5, ProbL: 0.3, MaxL: 1},
	{ProbP: 0.9, ProbF: 0.7, MaxF: 3, ProbL: 0.9, MaxL: 5},
	{ProbP: 0.8, ProbF: 0.6, MaxF: 5, ProbL: 0.6, MaxL: 5},
}

var bench10k struct {
	once sync.Once
	ix   *Index
	err  error
}

// setup10k builds the shared 10k-run index under the length cost
// model (histogram rate 1 — the model cohort analytics default to for
// large repositories because it prices structural change directly).
func setup10k(b *testing.B) *Index {
	b.Helper()
	bench10k.once.Do(func() {
		rng := rand.New(rand.NewSource(20260807))
		sp, err := gen.RandomSpec(gen.SpecConfig{Edges: 10, SeriesRatio: 1, Forks: 2, Loops: 2}, rng)
		if err != nil {
			bench10k.err = err
			return
		}
		names := make([]string, benchCohortSize)
		runs := make([]*wfrun.Run, benchCohortSize)
		for i := range runs {
			names[i] = fmt.Sprintf("r%05d", i)
			if runs[i], err = gen.RandomRun(sp, benchGroups[i%len(benchGroups)], rng); err != nil {
				bench10k.err = err
				return
			}
		}
		ix := New(cost.Length{}, Options{})
		if err := ix.Reset(names, runs); err != nil {
			bench10k.err = err
			return
		}
		bench10k.ix = ix
	})
	if bench10k.err != nil {
		b.Fatal(bench10k.err)
	}
	return bench10k.ix
}

// BenchmarkIndexedNearest10k: one kNN query against the 10k cohort per
// op. The dense alternative pays ~n²/2 diffs up front; the index pays
// a few dozen per query. Fails if the bounds prune less than 90% of
// candidates — the sub-quadratic claim, enforced.
func BenchmarkIndexedNearest10k(b *testing.B) {
	ix := setup10k(b)
	co := ix.Snapshot()
	exact0, pruned0 := ix.ExactDiffs(), ix.PrunedPairs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.IndexedNearest(co, (i*1237)%co.Len(), 5); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	exact := ix.ExactDiffs() - exact0
	pruned := ix.PrunedPairs() - pruned0
	ratio := float64(pruned) / float64(exact+pruned)
	b.ReportMetric(ratio*100, "%pruned")
	if ratio < 0.90 {
		b.Fatalf("pruning ratio %.1f%% below the 90%% gate (%d exact, %d pruned)", ratio*100, exact, pruned)
	}
}

// BenchmarkSampledKMedoids10k: cluster the 10k cohort per op. Exact
// PAM needs the full matrix (~50M diffs); the sampled variant must
// stay under 10% of the pairwise bill (in practice it is far below —
// the gate catches the index silently degrading to quadratic).
func BenchmarkSampledKMedoids10k(b *testing.B) {
	ix := setup10k(b)
	co := ix.Snapshot()
	exact0 := ix.ExactDiffs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.SampledKMedoids(context.Background(), co, 8, int64(i+1), cluster.SampleOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	n := int64(co.Len())
	allPairs := n * (n - 1) / 2
	perOp := (ix.ExactDiffs() - exact0) / int64(b.N)
	b.ReportMetric(float64(perOp), "diffs/op")
	if frac := float64(perOp) / float64(allPairs); frac > 0.10 {
		b.Fatalf("sampled k-medoids used %.1f%% of all pairs, gate is 10%% (%d of %d)", frac*100, perOp, allPairs)
	}
}
