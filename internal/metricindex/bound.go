package metricindex

import (
	"fmt"

	"repro/internal/cost"
	"repro/internal/spec"
	"repro/internal/sptree"
	"repro/internal/wfrun"
)

// This file implements the histogram lower bound on the run edit
// distance.
//
// The status histogram of a run counts its run-tree Q leaves per
// homology class (the specification-tree node h(v) each leaf derives
// from). In any well-formed mapping between two runs, mapped leaves
// are homologous — they land in the same bucket on both sides — so the
// leaves the mapping fails to pair number at least the L1 gap between
// the two histograms. Every edit operation inserts or deletes one
// elementary path of length l, which accounts for exactly l unmapped
// leaves and costs γ(l, src, dst); summing over the operations of an
// optimal edit script,
//
//	d(r1, r2) = Σ γ(l_i, ·) ≥ Σ l_i · min_l γ(l, ·)/l ≥ rate · L1(h1, h2)
//
// where rate = min over achievable operation lengths l of γ(l, ·)/l,
// minimized over terminal labels. Operation lengths are branch-free
// execution lengths of specification subtrees (X and W_TG in
// internal/naive both price exactly those), and every such length is
// at most the maximum achievable length of the specification root — so
// minimizing γ(l)/l over l = 1..Lmax is sound.
//
// The rate is model-specific: 1 for the length model (the bound is
// exact leaf accounting), 1/Lmax for unit cost, Lmax^(ε-1) for
// sublinear powers. For label-dependent models the label minimum must
// also be taken; for models we cannot analyze (cost.Func, unknown
// implementations) the rate is 0, which soundly disables the
// histogram bound and leaves triangle pruning on its own.

// statusHistogram counts the run's Q leaves per specification-node ID.
// Specification IDs are dense preorder, so specN = CountNodes() of the
// specification tree covers every class.
func statusHistogram(r *wfrun.Run, specN int) []int32 {
	h := make([]int32, specN)
	r.Tree.Walk(func(v *sptree.Node) bool {
		if v.IsLeaf() && v.Spec != nil && v.Spec.ID >= 0 && v.Spec.ID < specN {
			h[v.Spec.ID]++
		}
		return true
	})
	return h
}

// histL1 returns Σ |a[i] - b[i]| over the shared prefix plus the tail
// of the longer histogram (differing lengths only arise across
// specifications, which the index rejects, but stay safe).
func histL1(a, b []int32) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var sum int64
	for i := 0; i < n; i++ {
		d := int64(a[i]) - int64(b[i])
		if d < 0 {
			d = -d
		}
		sum += d
	}
	for _, v := range a[n:] {
		sum += int64(v)
	}
	for _, v := range b[n:] {
		sum += int64(v)
	}
	return float64(sum)
}

// maxOpLength is the largest elementary-path length any edit operation
// on runs of sp can have: the maximum branch-free execution length of
// the specification root.
func maxOpLength(sp *spec.Spec) int {
	ls := sp.AchievableLengths(sp.Tree)
	if len(ls) == 0 {
		return sp.G.NumEdges()
	}
	return ls[len(ls)-1] // AchievableLengths is ascending
}

// labelFreeRate is min over l = 1..maxLen of m.PathCost(l, "", "")/l
// for models whose cost ignores terminal labels; 0 for models it
// cannot vouch for.
func labelFreeRate(m cost.Model, maxLen int) float64 {
	switch m.(type) {
	case cost.Unit, cost.Length, cost.Power:
	default:
		return 0
	}
	if maxLen < 1 {
		maxLen = 1
	}
	rate := m.PathCost(1, "", "")
	for l := 2; l <= maxLen; l++ {
		if r := m.PathCost(l, "", "") / float64(l); r < rate {
			rate = r
		}
	}
	if rate < 0 {
		return 0
	}
	return rate
}

// lowerBoundRate derives the histogram-bound rate for a model over
// runs of sp. A rate of 0 disables the histogram bound (it is always a
// valid, vacuous lower bound).
func lowerBoundRate(m cost.Model, sp *spec.Spec) float64 {
	maxLen := maxOpLength(sp)
	switch w := m.(type) {
	case cost.Unit, cost.Length, cost.Power:
		return labelFreeRate(m, maxLen)
	case cost.Weighted:
		// PathCost = Base(l) · (w_src + w_dst)/2 with absent labels
		// weighing 1, so every operation costs at least
		// min(1, min declared weight) times the base price.
		minW := 1.0
		for _, v := range w.W {
			if v < minW {
				minW = v
			}
		}
		if minW <= 0 {
			return 0
		}
		return minW * labelFreeRate(w.Base, maxLen)
	default:
		return 0
	}
}

// LowerBoundRate exposes the histogram-bound rate for a model over
// runs of sp: every unmapped leaf instance costs at least this much
// under m, and 0 means the bound is unavailable (vacuous). The live
// drift monitor prices excess executed instances with it.
func LowerBoundRate(m cost.Model, sp *spec.Spec) float64 { return lowerBoundRate(m, sp) }

// HistogramBound returns the histogram lower bound on the edit
// distance between two runs of the same specification under model m:
// a number never exceeding the exact Engine/naive distance. It
// recomputes histograms and rate from scratch — the property-test
// entry point; Index queries use the precomputed per-run forms.
func HistogramBound(m cost.Model, r1, r2 *wfrun.Run) (float64, error) {
	if r1 == nil || r2 == nil || r1.Tree == nil || r2.Tree == nil {
		return 0, fmt.Errorf("metricindex: runs lack annotated SP-trees")
	}
	if r1.Spec == nil || r1.Spec != r2.Spec {
		return 0, fmt.Errorf("metricindex: runs belong to different specifications")
	}
	rate := lowerBoundRate(m, r1.Spec)
	if rate == 0 {
		return 0, nil
	}
	specN := r1.Spec.Tree.CountNodes()
	h1 := statusHistogram(r1, specN)
	h2 := statusHistogram(r2, specN)
	return rate * histL1(h1, h2), nil
}
