package params

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/fixtures"
	"repro/internal/graph"
)

func edgeByLabels(r interface {
	Label(graph.NodeID) string
	Edges() []graph.Edge
}, from, to string) graph.Edge {
	for _, e := range r.Edges() {
		if r.Label(e.From) == from && r.Label(e.To) == to {
			return e
		}
	}
	panic("edge not found: " + from + "->" + to)
}

func TestDataDiffHighlightsParams(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)
	res, err := core.Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	a1 := NewAnnotations()
	a2 := NewAnnotations()
	// Same module instance 1a in both runs, differing e-value.
	a1.SetParam("1a", "evalue", "1e-5")
	a2.SetParam("1a", "evalue", "1e-10")
	a1.SetParam("1a", "db", "swissprot")
	a2.SetParam("1a", "db", "swissprot") // identical: not reported
	rep := DataDiff(res, a1, a2)
	if rep.MatchedEdges == 0 || rep.MatchedNodes == 0 {
		t.Fatal("mapping should align nodes and edges")
	}
	if len(rep.Params) != 1 {
		t.Fatalf("param changes = %+v, want exactly the evalue change", rep.Params)
	}
	pc := rep.Params[0]
	if pc.Key != "evalue" || pc.V1 != "1e-5" || pc.V2 != "1e-10" || pc.Label != "1" {
		t.Fatalf("wrong change: %+v", pc)
	}
	out := rep.String()
	if !strings.Contains(out, "evalue") || !strings.Contains(out, "parameter differences") {
		t.Fatalf("report rendering:\n%s", out)
	}
}

func TestDataDiffHighlightsEdgeData(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	r2 := fixtures.Fig2R2(sp)
	res, err := core.Diff(r1, r2, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	a1 := NewAnnotations()
	a2 := NewAnnotations()
	e1 := edgeByLabels(r1.Graph, "1", "2")
	a1.SetData(e1, "sha:aaa")
	// All (1,2) instances in r2 carry different data.
	for _, e := range r2.Graph.Edges() {
		if r2.Graph.Label(e.From) == "1" && r2.Graph.Label(e.To) == "2" {
			a2.SetData(e, "sha:bbb")
		}
	}
	rep := DataDiff(res, a1, a2)
	if len(rep.Data) != 1 {
		t.Fatalf("data changes = %+v, want 1", rep.Data)
	}
	if rep.Data[0].V1 != "sha:aaa" || rep.Data[0].V2 != "sha:bbb" {
		t.Fatalf("wrong data change: %+v", rep.Data[0])
	}
	if !strings.Contains(rep.String(), "data differences") {
		t.Fatal("report missing data section")
	}
}

func TestCleanReport(t *testing.T) {
	sp := fixtures.Fig2Spec()
	r1 := fixtures.Fig2R1(sp)
	res, err := core.Diff(r1, r1, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	rep := DataDiff(res, NewAnnotations(), NewAnnotations())
	if len(rep.Params) != 0 || len(rep.Data) != 0 {
		t.Fatalf("unexpected changes: %+v", rep)
	}
	if !strings.Contains(rep.String(), "no parameter or data differences") {
		t.Fatal("clean report text wrong")
	}
}

// TestLeafPenaltySteersMatching builds a fork with two copies per run
// where the control structure is symmetric but the data identifies
// which copy is which; the penalty must flip the matching.
func TestLeafPenaltySteersMatching(t *testing.T) {
	sp := fixtures.Fig2Spec()
	// R1 and R1b: same shape (two (2,3,6) copies), but data marks
	// copies differently.
	r1 := fixtures.Fig2R1(sp)
	r1b := fixtures.Fig2R1(sp)

	a1 := NewAnnotations()
	a2 := NewAnnotations()
	tag := func(a *Annotations, r interface {
		Label(graph.NodeID) string
		Edges() []graph.Edge
	}, id string) {
		for _, e := range r.Edges() {
			a.SetData(e, id+e.String())
		}
	}
	// Identical data: penalty adds nothing; distance stays 0.
	tag(a1, r1.Graph, "x")
	tag(a2, r1b.Graph, "x")
	res0, err := core.Diff(r1, r1b, cost.Unit{}, core.WithLeafPenalty(LeafPenalty(a1, a2, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if res0.Distance != 0 {
		t.Fatalf("identically-tagged runs should still be distance 0, got %g", res0.Distance)
	}

	// Now make every pairing mismatch: each matched leaf costs 5, so
	// the penalized objective must exceed the control-flow distance.
	a3 := NewAnnotations()
	tag(a3, r1b.Graph, "y")
	resP, err := core.Diff(r1, r1b, cost.Unit{}, core.WithLeafPenalty(LeafPenalty(a1, a3, 5)))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Distance(r1, r1b, cost.Unit{})
	if err != nil {
		t.Fatal(err)
	}
	if plain != 0 {
		t.Fatalf("control-flow distance should be 0, got %g", plain)
	}
	if resP.Distance <= 0 {
		t.Fatalf("penalized objective should be positive, got %g", resP.Distance)
	}
	// With mismatch cost 5 per leaf vs delete+insert cost 2 per leaf
	// subtree, the optimum re-pairs nothing it can cheaply replace;
	// the objective is bounded by full delete+insert of both runs.
	if resP.Distance > 5*8*2 {
		t.Fatalf("penalized objective implausibly large: %g", resP.Distance)
	}
}
