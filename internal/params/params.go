// Package params implements the data dimension of provenance
// differencing sketched in Section I of the paper: two executions may
// share control flow yet differ in parameter settings (annotations on
// nodes) and in the data flowing between modules (annotations on
// edges). Data enters in two ways: as an optional factor in the
// matching (a leaf penalty steering the mapping away from pairing
// copies whose data disagree), and as a highlighted report over the
// matched nodes and edges once the mapping is fixed.
package params

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sptree"
)

// Annotations attaches data to a run: parameter settings per module
// instance and a data identifier (e.g. a content hash) per edge.
type Annotations struct {
	NodeParams map[graph.NodeID]map[string]string
	EdgeData   map[graph.Edge]string
}

// NewAnnotations returns an empty annotation set.
func NewAnnotations() *Annotations {
	return &Annotations{
		NodeParams: make(map[graph.NodeID]map[string]string),
		EdgeData:   make(map[graph.Edge]string),
	}
}

// SetParam records one parameter setting on a module instance.
func (a *Annotations) SetParam(node graph.NodeID, key, value string) {
	m, ok := a.NodeParams[node]
	if !ok {
		m = make(map[string]string)
		a.NodeParams[node] = m
	}
	m[key] = value
}

// SetData records the data identifier carried by an edge.
func (a *Annotations) SetData(e graph.Edge, id string) { a.EdgeData[e] = id }

// LeafPenalty builds a matching penalty from edge data: matching two
// leaf edges whose data identifiers differ costs weight. Pass it to
// core.Diff via core.WithLeafPenalty to make data a factor in the
// matching.
func LeafPenalty(a1, a2 *Annotations, weight float64) func(q1, q2 *sptree.Node) float64 {
	return func(q1, q2 *sptree.Node) float64 {
		d1, ok1 := a1.EdgeData[q1.Edge]
		d2, ok2 := a2.EdgeData[q2.Edge]
		if ok1 && ok2 && d1 != d2 {
			return weight
		}
		return 0
	}
}

// ParamChange reports one differing parameter on a matched module
// pair.
type ParamChange struct {
	Node1, Node2 graph.NodeID
	Label        string
	Key          string
	V1, V2       string // empty means unset on that side
}

// DataChange reports a differing data identifier on a matched edge
// pair.
type DataChange struct {
	Edge1, Edge2 graph.Edge
	V1, V2       string
}

// Report is the highlighted data difference over a fixed mapping.
type Report struct {
	Params []ParamChange
	Data   []DataChange
	// MatchedNodes counts aligned module-instance pairs;
	// MatchedEdges counts aligned edge pairs.
	MatchedNodes, MatchedEdges int
}

// DataDiff aligns the two runs by the computed mapping and highlights
// the parameter and data differences on matched nodes and edges
// (Section I: "once the matching is done the data differences can be
// highlighted as annotations on nodes ... and edges").
func DataDiff(res *core.Result, a1, a2 *Annotations) *Report {
	rep := &Report{}
	// Matched Q leaves align edges; edge alignments induce node
	// alignments at their endpoints.
	nodePairs := map[graph.NodeID]graph.NodeID{}
	labels := map[graph.NodeID]string{}
	for _, p := range res.Mapping() {
		q1, q2 := p[0], p[1]
		if q1.Type != sptree.Q {
			continue
		}
		rep.MatchedEdges++
		if d1, d2 := a1.EdgeData[q1.Edge], a2.EdgeData[q2.Edge]; d1 != d2 {
			rep.Data = append(rep.Data, DataChange{Edge1: q1.Edge, Edge2: q2.Edge, V1: d1, V2: d2})
		}
		for _, pair := range [][2]graph.NodeID{
			{q1.Edge.From, q2.Edge.From},
			{q1.Edge.To, q2.Edge.To},
		} {
			if _, seen := nodePairs[pair[0]]; !seen {
				nodePairs[pair[0]] = pair[1]
			}
		}
		labels[q1.Edge.From] = q1.Src
		labels[q1.Edge.To] = q1.Dst
	}
	rep.MatchedNodes = len(nodePairs)
	// Deterministic order.
	keys := make([]graph.NodeID, 0, len(nodePairs))
	for n1 := range nodePairs {
		keys = append(keys, n1)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, n1 := range keys {
		n2 := nodePairs[n1]
		p1 := a1.NodeParams[n1]
		p2 := a2.NodeParams[n2]
		allKeys := map[string]bool{}
		for k := range p1 {
			allKeys[k] = true
		}
		for k := range p2 {
			allKeys[k] = true
		}
		ks := make([]string, 0, len(allKeys))
		for k := range allKeys {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			if p1[k] != p2[k] {
				rep.Params = append(rep.Params, ParamChange{
					Node1: n1, Node2: n2, Label: labels[n1], Key: k, V1: p1[k], V2: p2[k],
				})
			}
		}
	}
	return rep
}

// String renders the report for display.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "matched %d module instances and %d data links\n", r.MatchedNodes, r.MatchedEdges)
	if len(r.Params) == 0 && len(r.Data) == 0 {
		b.WriteString("no parameter or data differences on the matched provenance\n")
		return b.String()
	}
	if len(r.Params) > 0 {
		b.WriteString("parameter differences:\n")
		for _, p := range r.Params {
			fmt.Fprintf(&b, "  %s (%s vs %s): %s = %q vs %q\n",
				p.Label, p.Node1, p.Node2, p.Key, p.V1, p.V2)
		}
	}
	if len(r.Data) > 0 {
		b.WriteString("data differences:\n")
		for _, d := range r.Data {
			fmt.Fprintf(&b, "  %s vs %s: %q vs %q\n", d.Edge1, d.Edge2, d.V1, d.V2)
		}
	}
	return b.String()
}
