package ledger

import (
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func contentHash(i int) Hash {
	return sha256.Sum256([]byte(fmt.Sprintf("frame-%d", i)))
}

func leaves(n int) []Hash {
	out := make([]Hash, n)
	for i := range out {
		out[i] = Leaf(contentHash(i))
	}
	return out
}

func TestHashHexRoundTrip(t *testing.T) {
	h := contentHash(7)
	back, err := Parse(h.Hex())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if back != h {
		t.Fatalf("round trip changed hash: %s != %s", back.Hex(), h.Hex())
	}
	if _, err := Parse("zz"); err == nil {
		t.Fatal("Parse accepted non-hex input")
	}
	if _, err := Parse("abcd"); err == nil {
		t.Fatal("Parse accepted short input")
	}
}

func TestDomainSeparation(t *testing.T) {
	// The same 32 bytes hashed at different levels must never collide.
	c := contentHash(0)
	if Leaf(c) == c {
		t.Fatal("leaf hash equals content hash")
	}
	if node(c, c) == Extend(c, c) {
		t.Fatal("interior node and chain link collide")
	}
}

// TestProofsAllSizes exercises inclusion proofs for every index of
// every batch size up to 33 (past one promoted-odd-node level and one
// full level doubling).
func TestProofsAllSizes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		ls := leaves(n)
		root := Root(ls)
		for i := 0; i < n; i++ {
			steps, err := Prove(ls, i)
			if err != nil {
				t.Fatalf("n=%d i=%d Prove: %v", n, i, err)
			}
			got, err := FoldProof(ls[i], steps)
			if err != nil {
				t.Fatalf("n=%d i=%d FoldProof: %v", n, i, err)
			}
			if got != root {
				t.Fatalf("n=%d i=%d proof does not reach root", n, i)
			}
		}
	}
}

func TestProofRejectsWrongLeaf(t *testing.T) {
	ls := leaves(8)
	root := Root(ls)
	steps, err := Prove(ls, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := FoldProof(Leaf(contentHash(99)), steps)
	if err != nil {
		t.Fatal(err)
	}
	if got == root {
		t.Fatal("proof verified for a leaf that is not in the tree")
	}
	if _, err := Prove(ls, 8); err == nil {
		t.Fatal("Prove accepted out-of-range index")
	}
	if _, err := FoldProof(ls[0], []Step{{Dir: "X", Sibling: ls[1].Hex()}}); err == nil {
		t.Fatal("FoldProof accepted bad direction")
	}
}

func TestSingleLeafRootIsLeaf(t *testing.T) {
	ls := leaves(1)
	if Root(ls) != ls[0] {
		t.Fatal("single-leaf root should be the leaf itself")
	}
	steps, err := Prove(ls, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 0 {
		t.Fatalf("single-leaf proof should be empty, got %d steps", len(steps))
	}
}

func TestRepoRootOrderIndependence(t *testing.T) {
	heads := map[string]Hash{"a": contentHash(1), "b": contentHash(2)}
	r1 := RepoRoot([]string{"a", "b"}, heads)
	r2 := RepoRoot([]string{"b", "a"}, heads)
	if r1 == r2 {
		t.Fatal("repo root must depend on canonical spec order")
	}
	if !RepoRoot(nil, nil).IsZero() {
		t.Fatal("empty repository root should be zero")
	}
	// Length-prefixed names: ("ab","c") must differ from ("a","bc").
	h := contentHash(3)
	x := RepoRoot([]string{"ab"}, map[string]Hash{"ab": h})
	y := RepoRoot([]string{"a"}, map[string]Hash{"a": h})
	if x == y {
		t.Fatal("repo root ambiguous under name concatenation")
	}
}

func batchRecord(t *testing.T, seq int64, prev Hash, ids ...int) Record {
	t.Helper()
	var bl []BatchLeaf
	for _, id := range ids {
		bl = append(bl, BatchLeaf{Run: fmt.Sprintf("r%d", id), Hash: contentHash(id).Hex()})
	}
	rec, err := NewRecord(seq, prev, bl)
	if err != nil {
		t.Fatalf("NewRecord: %v", err)
	}
	return rec
}

func TestLogAppendReadVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	prev := Zero
	for seq := int64(1); seq <= 3; seq++ {
		rec := batchRecord(t, seq, prev, int(seq)*10, int(seq)*10+1)
		if err := Append(path, rec, seq == 3); err != nil {
			t.Fatalf("Append: %v", err)
		}
		prev, _ = Parse(rec.Head)
	}
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatalf("ReadLog: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	if bad, err := VerifyChain(recs); err != nil || bad != 0 {
		t.Fatalf("VerifyChain: bad=%d err=%v", bad, err)
	}
}

func TestReadLogMissingFileIsEmpty(t *testing.T) {
	recs, err := ReadLog(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || len(recs) != 0 {
		t.Fatalf("missing log: recs=%d err=%v", len(recs), err)
	}
}

func TestReadLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	rec := batchRecord(t, 1, Zero, 1)
	if err := Append(path, rec, false); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a JSON line, no newline.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"prev":"ab`); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err := ReadLog(path)
	if err != nil {
		t.Fatalf("torn tail should not be an error: %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records, want 1", len(recs))
	}
}

func TestReadLogMalformedMiddleIsError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.log")
	r1 := batchRecord(t, 1, Zero, 1)
	if err := Append(path, r1, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	head, _ := Parse(r1.Head)
	if err := Append(path, batchRecord(t, 2, head, 2), false); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadLog(path)
	if err == nil {
		t.Fatal("malformed middle line should be an error")
	}
	if len(recs) != 1 {
		t.Fatalf("got %d records before the malformed line, want 1", len(recs))
	}
}

func TestVerifyChainDetectsTampering(t *testing.T) {
	r1 := batchRecord(t, 1, Zero, 1, 2, 3)
	h1, _ := Parse(r1.Head)
	r2 := batchRecord(t, 2, h1, 4, 5)
	h2, _ := Parse(r2.Head)
	r3 := batchRecord(t, 3, h2, 6)

	// Swap one leaf hash inside batch 2: root no longer matches.
	bad2 := r2
	bad2.Runs = append([]BatchLeaf(nil), r2.Runs...)
	bad2.Runs[0].Hash = contentHash(99).Hex()
	if bad, err := VerifyChain([]Record{r1, bad2, r3}); err == nil || bad != 2 {
		t.Fatalf("tampered leaf: bad=%d err=%v", bad, err)
	}

	// Rewrite batch 2 wholesale (recomputed root AND head): batch 3's
	// prev link must expose it.
	forged, err := NewRecord(2, h1, []BatchLeaf{{Run: "x", Hash: contentHash(50).Hex()}})
	if err != nil {
		t.Fatal(err)
	}
	if bad, err := VerifyChain([]Record{r1, forged, r3}); err == nil || bad != 3 {
		t.Fatalf("forged batch: bad=%d err=%v", bad, err)
	}

	// Dropped batch: seq gap.
	if bad, err := VerifyChain([]Record{r1, r3}); err == nil || bad != 2 {
		t.Fatalf("dropped batch: bad=%d err=%v", bad, err)
	}

	// Sound chain sanity.
	if bad, err := VerifyChain([]Record{r1, r2, r3}); err != nil || bad != 0 {
		t.Fatalf("sound chain rejected: bad=%d err=%v", bad, err)
	}
}

func TestRecordCheckErrorNamesBatch(t *testing.T) {
	rec := batchRecord(t, 4, Zero, 1)
	rec.Root = strings.Repeat("00", 32)
	err := rec.Check(Zero)
	if err == nil || !strings.Contains(err.Error(), "batch 4") {
		t.Fatalf("error should name the batch: %v", err)
	}
}
