// Package ledger implements the tamper-evident Merkle ledger that
// turns the store's snapshot layer into a verifiable history. Each
// group-committed batch of runs becomes one Merkle tree whose leaves
// are the content hashes of the committed codec frames; the batch root
// is chained onto the previous ledger head, so the head after batch N
// commits to every frame in batches 1..N. A per-run inclusion proof is
// the classic leaf-to-root sibling path plus the chain of later batch
// roots, and a whole-repository root folds the per-spec heads together
// so one hash covers everything.
//
// All hashing is domain-separated SHA-256: leaves, interior nodes,
// chain links and the repository root each prepend a distinct tag
// byte, so a value from one level can never be replayed at another
// (the standard second-preimage defence for Merkle trees).
//
// The on-disk form is an append-only log of JSON-line batch records
// (one per group commit). Records are self-delimiting lines, so a
// torn final line — a crash mid-append — is recognised and ignored,
// while any earlier malformed line is evidence of tampering.
package ledger

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
)

// Hash is a SHA-256 digest. The zero value is the chain seed: the
// "previous head" of a spec's very first batch.
type Hash [sha256.Size]byte

// Zero is the chain seed / absent-hash sentinel.
var Zero Hash

// Domain-separation tags. Every hash in the ledger is
// SHA-256(tag || ...), with a distinct tag per level.
const (
	tagLeaf  = 0x00 // leaf: H(0x00 || frame content hash)
	tagNode  = 0x01 // interior: H(0x01 || left || right)
	tagChain = 0x02 // chain link: H(0x02 || prev head || batch root)
	tagRepo  = 0x03 // repository root over per-spec heads
)

// Hex renders the digest as lowercase hex.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// IsZero reports whether h is the zero (seed) hash.
func (h Hash) IsZero() bool { return h == Zero }

// Parse decodes a lowercase-hex digest.
func Parse(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("ledger: bad hash %q: %w", s, err)
	}
	if len(b) != sha256.Size {
		return Zero, fmt.Errorf("ledger: bad hash length %d, want %d", len(b), sha256.Size)
	}
	copy(h[:], b)
	return h, nil
}

// Leaf maps a frame content hash onto its Merkle leaf.
func Leaf(content Hash) Hash {
	return sha256.Sum256(append([]byte{tagLeaf}, content[:]...))
}

// node combines two child hashes into their parent.
func node(left, right Hash) Hash {
	buf := make([]byte, 1, 1+2*sha256.Size)
	buf[0] = tagNode
	buf = append(buf, left[:]...)
	buf = append(buf, right[:]...)
	return sha256.Sum256(buf)
}

// Extend chains a batch root onto the previous ledger head.
func Extend(prev, root Hash) Hash {
	buf := make([]byte, 1, 1+2*sha256.Size)
	buf[0] = tagChain
	buf = append(buf, prev[:]...)
	buf = append(buf, root[:]...)
	return sha256.Sum256(buf)
}

// Root computes the Merkle root over leaf hashes. An odd node at any
// level is promoted unchanged (no duplication — duplication admits
// trivial second preimages). Root of an empty batch is Zero; callers
// never commit empty batches.
func Root(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return Zero
	}
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, node(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// Step is one hop of an inclusion proof: the sibling hash and which
// side of the running hash it sits on ("L" = sibling is the left
// operand, "R" = the right).
type Step struct {
	Dir     string `json:"dir"`
	Sibling string `json:"hash"`
}

// Prove returns the leaf-to-root sibling path for leaves[idx]. Levels
// where the node is promoted without a sibling contribute no step.
func Prove(leaves []Hash, idx int) ([]Step, error) {
	if idx < 0 || idx >= len(leaves) {
		return nil, fmt.Errorf("ledger: proof index %d out of range [0,%d)", idx, len(leaves))
	}
	var steps []Step
	level := append([]Hash(nil), leaves...)
	for len(level) > 1 {
		sib := idx ^ 1
		if sib < len(level) {
			dir := "R"
			if sib < idx {
				dir = "L"
			}
			steps = append(steps, Step{Dir: dir, Sibling: level[sib].Hex()})
		}
		next := level[:0]
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, node(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
		idx /= 2
	}
	return steps, nil
}

// FoldProof replays an inclusion path from a leaf hash, returning the
// implied batch root.
func FoldProof(leaf Hash, steps []Step) (Hash, error) {
	h := leaf
	for _, st := range steps {
		sib, err := Parse(st.Sibling)
		if err != nil {
			return Zero, err
		}
		switch st.Dir {
		case "L":
			h = node(sib, h)
		case "R":
			h = node(h, sib)
		default:
			return Zero, fmt.Errorf("ledger: bad proof direction %q", st.Dir)
		}
	}
	return h, nil
}

// RepoRoot folds per-spec ledger heads into one repository-wide root.
// Specs are taken in sorted-name order with length-prefixed names, so
// the root is deterministic and unambiguous. An empty repository has
// root Zero.
func RepoRoot(specs []string, heads map[string]Hash) Hash {
	if len(specs) == 0 {
		return Zero
	}
	buf := []byte{tagRepo}
	for _, name := range specs {
		var n [4]byte
		n[0] = byte(len(name))
		n[1] = byte(len(name) >> 8)
		n[2] = byte(len(name) >> 16)
		n[3] = byte(len(name) >> 24)
		buf = append(buf, n[:]...)
		buf = append(buf, name...)
		h := heads[name]
		buf = append(buf, h[:]...)
	}
	return sha256.Sum256(buf)
}

// BatchLeaf names one committed frame inside a batch record: the run
// it belongs to and the hex content hash of its codec frame.
type BatchLeaf struct {
	Run  string `json:"run"`
	Hash string `json:"hash"`
}

// Record is one group commit in a spec's append-only ledger log.
// Seq numbers start at 1 and are contiguous; Prev is the head before
// this batch, Head = Extend(Prev, Root) the head after it.
type Record struct {
	Seq  int64       `json:"seq"`
	Prev string      `json:"prev"`
	Root string      `json:"root"`
	Head string      `json:"head"`
	Runs []BatchLeaf `json:"runs"`
}

// NewRecord assembles and hashes the record for one committed batch.
func NewRecord(seq int64, prev Hash, leaves []BatchLeaf) (Record, error) {
	if len(leaves) == 0 {
		return Record{}, fmt.Errorf("ledger: empty batch")
	}
	lh, err := leafHashes(leaves)
	if err != nil {
		return Record{}, err
	}
	root := Root(lh)
	return Record{
		Seq:  seq,
		Prev: prev.Hex(),
		Root: root.Hex(),
		Head: Extend(prev, root).Hex(),
		Runs: leaves,
	}, nil
}

func leafHashes(leaves []BatchLeaf) ([]Hash, error) {
	out := make([]Hash, len(leaves))
	for i, l := range leaves {
		content, err := Parse(l.Hash)
		if err != nil {
			return nil, fmt.Errorf("ledger: run %q: %w", l.Run, err)
		}
		out[i] = Leaf(content)
	}
	return out, nil
}

// LeafHashes returns the Merkle leaves of the record's batch.
func (r Record) LeafHashes() ([]Hash, error) { return leafHashes(r.Runs) }

// Check recomputes the record's root and head against the expected
// previous head, reporting the first inconsistency. A passing check
// means the record is internally consistent AND correctly chained.
func (r Record) Check(prev Hash) error {
	if r.Prev != prev.Hex() {
		return fmt.Errorf("ledger: batch %d prev hash %s does not chain onto head %s", r.Seq, r.Prev, prev.Hex())
	}
	lh, err := r.LeafHashes()
	if err != nil {
		return fmt.Errorf("ledger: batch %d: %w", r.Seq, err)
	}
	if got := Root(lh).Hex(); got != r.Root {
		return fmt.Errorf("ledger: batch %d root mismatch: recorded %s, recomputed %s", r.Seq, r.Root, got)
	}
	root, err := Parse(r.Root)
	if err != nil {
		return fmt.Errorf("ledger: batch %d: %w", r.Seq, err)
	}
	if got := Extend(prev, root).Hex(); got != r.Head {
		return fmt.Errorf("ledger: batch %d head mismatch: recorded %s, recomputed %s", r.Seq, r.Head, got)
	}
	return nil
}

// MarshalRecord renders a record as the exact newline-terminated JSON
// line Append would write — the building block for stores that append
// through their own storage backend instead of the local filesystem.
func MarshalRecord(rec Record) ([]byte, error) {
	line, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// Append writes the record as one JSON line at the end of the log,
// fsyncing when durable. The write is a single O_APPEND write of a
// complete line, so concurrent readers see either the old log or the
// old log plus one whole record — and a crash mid-write leaves a torn
// final line that ReadLog discards.
func Append(path string, rec Record, durable bool) error {
	line, err := MarshalRecord(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return err
	}
	if durable {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

// ReadLog loads every record of a spec's ledger log in order. A
// missing file is an empty ledger. A torn final line (crash during
// append) is silently dropped; a malformed line anywhere else is
// returned as an error alongside the records that precede it, so a
// verifier can report the first divergent batch while an appender can
// still continue the chain from the last good record.
func ReadLog(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	recs, _, err := ParseLog(data)
	return recs, err
}

// ParseLog parses an in-memory ledger log. Alongside the records it
// returns the byte length of the cleanly parsed prefix — every
// complete, well-formed line. A torn final line (no terminating
// newline: a crash mid-append) is dropped without error and excluded
// from the prefix, so an appender can truncate the log back to valid
// before continuing the chain — appending after torn bytes would weld
// them onto the next record and turn crash debris into what looks like
// tampering. A malformed line that IS newline-terminated is returned
// as an error, exactly as in ReadLog.
func ParseLog(data []byte) (recs []Record, valid int, err error) {
	for pos, lineNo := 0, 1; pos < len(data); lineNo++ {
		nl := bytes.IndexByte(data[pos:], '\n')
		if nl < 0 {
			// Torn tail: an append that never completed. Not tampering.
			return recs, valid, nil
		}
		line := data[pos : pos+nl]
		pos += nl + 1
		if len(bytes.TrimSpace(line)) == 0 {
			valid = pos
			continue
		}
		var rec Record
		if uerr := json.Unmarshal(line, &rec); uerr != nil {
			return recs, valid, fmt.Errorf("ledger: record at line %d malformed: %w", lineNo, uerr)
		}
		recs = append(recs, rec)
		valid = pos
	}
	return recs, valid, nil
}

// VerifyChain checks seq contiguity, chaining and per-record roots
// across a full log. On failure it returns the 1-based seq of the
// first divergent batch; seq 0 with a nil error means the chain is
// sound.
func VerifyChain(recs []Record) (int64, error) {
	prev := Zero
	for i, rec := range recs {
		if rec.Seq != int64(i)+1 {
			return int64(i) + 1, fmt.Errorf("ledger: batch at position %d has seq %d, want %d", i, rec.Seq, int64(i)+1)
		}
		if err := rec.Check(prev); err != nil {
			return rec.Seq, err
		}
		head, err := Parse(rec.Head)
		if err != nil {
			return rec.Seq, err
		}
		prev = head
	}
	return 0, nil
}
