// Package benchgate implements the CI performance-regression gate:
// it parses `go test -bench` output, compares ns/op and allocs/op
// against a committed JSON baseline, and reports every benchmark that
// regressed past a threshold. The committed baseline is the contract
// "this code is at least this fast"; the gate turns silent slowdowns
// into red CI the same way a failing test turns silent breakage red.
//
// Two metrics are gated. allocs/op is deterministic across machines,
// so any regression there is a real code change. ns/op is noisy —
// different CI runners, thermal throttle, neighbors — so the
// threshold is generous (30% by default) and catches the step-change
// regressions (an accidental O(n²), a dropped cache, a lock in a hot
// loop) rather than micro-drift. New benchmarks absent from the
// baseline pass trivially until `benchgate -update` records them.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Baseline is the committed BENCH_baseline.json document.
type Baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches `go test -bench` result lines:
//
//	BenchmarkName-8  123  4567 ns/op  89 B/op  10 allocs/op
//
// The -8 GOMAXPROCS suffix is stripped so baselines transfer between
// machines with different core counts.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// Parse reads benchmark results from `go test -bench` output,
// ignoring everything that is not a result line. Sub-benchmarks keep
// their full slash-joined name. A benchmark appearing multiple times
// (e.g. -count=N) keeps its fastest ns/op and smallest allocs/op —
// the least-noisy sample of each.
func Parse(r io.Reader) (map[string]Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := make(map[string]Result)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchgate: bad ns/op in %q: %w", sc.Text(), err)
		}
		res := Result{NsPerOp: ns, BytesPerOp: -1, AllocsPerOp: -1}
		rest := m[4]
		if bm := regexp.MustCompile(`([0-9]+) B/op`).FindStringSubmatch(rest); bm != nil {
			res.BytesPerOp, _ = strconv.ParseInt(bm[1], 10, 64)
		}
		if am := regexp.MustCompile(`([0-9]+) allocs/op`).FindStringSubmatch(rest); am != nil {
			res.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		if have, ok := out[name]; ok {
			if have.NsPerOp < res.NsPerOp {
				res.NsPerOp = have.NsPerOp
			}
			if have.AllocsPerOp >= 0 && (res.AllocsPerOp < 0 || have.AllocsPerOp < res.AllocsPerOp) {
				res.AllocsPerOp = have.AllocsPerOp
			}
			if have.BytesPerOp >= 0 && (res.BytesPerOp < 0 || have.BytesPerOp < res.BytesPerOp) {
				res.BytesPerOp = have.BytesPerOp
			}
		}
		out[name] = res
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Finding is one gate verdict line.
type Finding struct {
	Name   string
	Metric string  // "ns/op" or "allocs/op"
	Base   float64 // baseline value
	Cur    float64 // current value
	Ratio  float64 // cur / base
	Failed bool
}

func (f Finding) String() string {
	verdict := "ok"
	if f.Failed {
		verdict = "REGRESSION"
	}
	return fmt.Sprintf("%-12s %-40s %-10s %12.1f -> %12.1f  (%.2fx)",
		verdict, f.Name, f.Metric, f.Base, f.Cur, f.Ratio)
}

// Compare gates current results against the baseline. A benchmark
// fails when its ns/op or allocs/op exceeds baseline*(1+threshold).
// Benchmarks missing from either side are skipped (new benchmarks
// enter the baseline via -update; retired ones leave it the same
// way). Returns all findings (for the report) and whether any failed.
func Compare(base *Baseline, current map[string]Result, threshold float64) (findings []Finding, failed bool) {
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := base.Benchmarks[name]
		c, ok := current[name]
		if !ok {
			continue
		}
		if b.NsPerOp > 0 {
			f := Finding{Name: name, Metric: "ns/op", Base: b.NsPerOp, Cur: c.NsPerOp, Ratio: c.NsPerOp / b.NsPerOp}
			f.Failed = f.Ratio > 1+threshold
			findings = append(findings, f)
			failed = failed || f.Failed
		}
		if b.AllocsPerOp > 0 && c.AllocsPerOp >= 0 {
			f := Finding{
				Name: name, Metric: "allocs/op",
				Base: float64(b.AllocsPerOp), Cur: float64(c.AllocsPerOp),
				Ratio: float64(c.AllocsPerOp) / float64(b.AllocsPerOp),
			}
			f.Failed = f.Ratio > 1+threshold
			findings = append(findings, f)
			failed = failed || f.Failed
		}
	}
	return findings, failed
}

// Load reads a baseline file.
func Load(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("benchgate: %s: %w", path, err)
	}
	if b.Benchmarks == nil {
		b.Benchmarks = map[string]Result{}
	}
	return &b, nil
}

// Save writes a baseline file (stable key order via MarshalIndent).
func Save(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Update merges current results into the baseline: every measured
// benchmark replaces (or creates) its entry; entries not measured
// this run are kept untouched.
func Update(b *Baseline, current map[string]Result) {
	for name, res := range current {
		b.Benchmarks[name] = res
	}
}
