package benchgate

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `
goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDistanceMatrix-8   	    1512	    789123 ns/op	  144087 B/op	     853 allocs/op
BenchmarkEngineReuse/fresh-8	    1386	    866000 ns/op	  402000 B/op	    1410 allocs/op
BenchmarkEngineReuse/engine-8	    2984	    401000 ns/op	    2100 B/op	      29 allocs/op
BenchmarkNoMem-8            	 1000000	      1050 ns/op
PASS
ok  	repro	4.639s
`

func TestParse(t *testing.T) {
	got, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benchmarks: %v", len(got), got)
	}
	dm := got["BenchmarkDistanceMatrix"]
	if dm.NsPerOp != 789123 || dm.AllocsPerOp != 853 || dm.BytesPerOp != 144087 {
		t.Fatalf("DistanceMatrix = %+v", dm)
	}
	sub := got["BenchmarkEngineReuse/engine"]
	if sub.NsPerOp != 401000 || sub.AllocsPerOp != 29 {
		t.Fatalf("sub-benchmark = %+v", sub)
	}
	if nm := got["BenchmarkNoMem"]; nm.NsPerOp != 1050 || nm.AllocsPerOp != -1 {
		t.Fatalf("no-benchmem line = %+v", nm)
	}
}

func TestParseKeepsFastestOfRepeats(t *testing.T) {
	out := `
BenchmarkX-8   100   2000 ns/op   50 B/op   7 allocs/op
BenchmarkX-8   100   1500 ns/op   50 B/op   9 allocs/op
BenchmarkX-8   100   1800 ns/op   40 B/op   8 allocs/op
`
	got, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	x := got["BenchmarkX"]
	if x.NsPerOp != 1500 || x.AllocsPerOp != 7 || x.BytesPerOp != 40 {
		t.Fatalf("repeat merge = %+v", x)
	}
}

func TestCompareGates(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkFast":   {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkGone":   {NsPerOp: 1000, AllocsPerOp: 10},
		"BenchmarkJitter": {NsPerOp: 1000, AllocsPerOp: 10},
	}}
	current := map[string]Result{
		"BenchmarkFast":   {NsPerOp: 2100, AllocsPerOp: 10}, // 2.1x ns regression
		"BenchmarkJitter": {NsPerOp: 1250, AllocsPerOp: 10}, // within 30%
		"BenchmarkNew":    {NsPerOp: 99999, AllocsPerOp: 9}, // not in baseline
	}
	findings, failed := Compare(base, current, 0.30)
	if !failed {
		t.Fatal("2.1x slowdown passed the gate")
	}
	var failedNames []string
	for _, f := range findings {
		if f.Failed {
			failedNames = append(failedNames, f.Name+" "+f.Metric)
		}
	}
	if len(failedNames) != 1 || failedNames[0] != "BenchmarkFast ns/op" {
		t.Fatalf("failed findings = %v, want only BenchmarkFast ns/op", failedNames)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := &Baseline{Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
	}}
	_, failed := Compare(base, map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 131},
	}, 0.30)
	if !failed {
		t.Fatal("31% alloc regression passed the gate")
	}
	_, failed = Compare(base, map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 129},
	}, 0.30)
	if failed {
		t.Fatal("29% alloc growth failed the gate")
	}
}

func TestSaveLoadUpdateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	b := &Baseline{Note: "test", Benchmarks: map[string]Result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100, BytesPerOp: 5},
	}}
	Update(b, map[string]Result{
		"BenchmarkA": {NsPerOp: 900, AllocsPerOp: 90, BytesPerOp: 4},
		"BenchmarkB": {NsPerOp: 50, AllocsPerOp: 1},
	})
	if err := Save(path, b); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Note != "test" || len(got.Benchmarks) != 2 || got.Benchmarks["BenchmarkA"].NsPerOp != 900 {
		t.Fatalf("round trip = %+v", got)
	}
}
