package match

import (
	"math/rand"
	"testing"
)

// randInstance builds a random flat-cost instance plus equivalent
// closures.
func randInstance(rng *rand.Rand, m, n int) (pairCost, del, ins []float64) {
	pairCost = make([]float64, m*n)
	for i := range pairCost {
		pairCost[i] = float64(rng.Intn(40))
	}
	del = make([]float64, m)
	for i := range del {
		del[i] = float64(5 + rng.Intn(30))
	}
	ins = make([]float64, n)
	for j := range ins {
		ins[j] = float64(5 + rng.Intn(30))
	}
	return
}

// TestScratchMatchesClosureAPI: the flat-row Scratch methods must
// produce exactly the results of the closure-based package functions,
// and a Scratch reused across many instances must not leak state.
func TestScratchMatchesClosureAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	var s Scratch
	for iter := 0; iter < 200; iter++ {
		m, n := rng.Intn(8), rng.Intn(8)
		pairCost, del, ins := randInstance(rng, m, n)
		pair := func(i, j int) float64 { return pairCost[i*n+j] }
		delF := func(i int) float64 { return del[i] }
		insF := func(j int) float64 { return ins[j] }

		for name, pairRes := range map[string][2]Result{
			"bipartite":   {s.Bipartite(m, n, pairCost, del, ins).Clone(), Bipartite(m, n, pair, delF, insF)},
			"noncrossing": {s.NonCrossing(m, n, pairCost, del, ins).Clone(), NonCrossing(m, n, pair, delF, insF)},
		} {
			got, want := pairRes[0], pairRes[1]
			if got.Cost != want.Cost {
				t.Fatalf("iter %d %s: scratch cost %g != closure %g", iter, name, got.Cost, want.Cost)
			}
			if len(got.Pairs) != len(want.Pairs) {
				t.Fatalf("iter %d %s: pairs %v != %v", iter, name, got.Pairs, want.Pairs)
			}
			for k := range got.Pairs {
				if got.Pairs[k] != want.Pairs[k] {
					t.Fatalf("iter %d %s: pairs %v != %v", iter, name, got.Pairs, want.Pairs)
				}
			}
		}
	}
}

// TestMatchedIndex: Matched must agree with a scan of Pairs for every
// left index, including out-of-range queries.
func TestMatchedIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 50; iter++ {
		m, n := 1+rng.Intn(7), 1+rng.Intn(7)
		pairCost, del, ins := randInstance(rng, m, n)
		var s Scratch
		for _, res := range []Result{
			s.Bipartite(m, n, pairCost, del, ins).Clone(),
			s.NonCrossing(m, n, pairCost, del, ins).Clone(),
		} {
			for i := -1; i <= m; i++ {
				wantJ, wantOK := 0, false
				for _, p := range res.Pairs {
					if p[0] == i {
						wantJ, wantOK = p[1], true
					}
				}
				if j, ok := res.Matched(i); j != wantJ || ok != wantOK {
					t.Fatalf("Matched(%d) = (%d,%v), want (%d,%v); pairs %v", i, j, ok, wantJ, wantOK, res.Pairs)
				}
			}
		}
	}
}

// TestScratchResultAliasing documents the Scratch contract: results
// are invalidated by the next call, so Clone detaches them.
func TestScratchResultAliasing(t *testing.T) {
	var s Scratch
	pc := []float64{0, 100, 100, 0}
	first := s.Bipartite(2, 2, pc, []float64{50, 50}, []float64{50, 50}).Clone()
	// A different instance overwrites the scratch buffers.
	s.Bipartite(2, 2, []float64{100, 0, 0, 100}, []float64{50, 50}, []float64{50, 50})
	if len(first.Pairs) != 2 || first.Pairs[0] != [2]int{0, 0} || first.Pairs[1] != [2]int{1, 1} {
		t.Fatalf("cloned result mutated by later scratch use: %v", first.Pairs)
	}
}
