package match

import (
	"math"
	"math/rand"
	"testing"
)

func mat(rows [][]float64) func(i, j int) float64 {
	return func(i, j int) float64 { return rows[i][j] }
}

func constf(v float64) func(int) float64 { return func(int) float64 { return v } }

func TestBipartiteSimple(t *testing.T) {
	// Classic 3x3 assignment.
	costs := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	res := Bipartite(3, 3, mat(costs), constf(100), constf(100))
	if res.Cost != 5 { // 1 + 2 + 2
		t.Fatalf("cost = %g, want 5", res.Cost)
	}
	if len(res.Pairs) != 3 {
		t.Fatalf("pairs = %v, want full matching", res.Pairs)
	}
}

func TestBipartitePrefersDeleteInsert(t *testing.T) {
	// Pairing costs 10; deleting and inserting costs 2+3=5.
	res := Bipartite(1, 1, func(i, j int) float64 { return 10 }, constf(2), constf(3))
	if res.Cost != 5 {
		t.Fatalf("cost = %g, want 5", res.Cost)
	}
	if len(res.Pairs) != 0 {
		t.Fatalf("expected no pairs, got %v", res.Pairs)
	}
}

func TestBipartiteUnbalanced(t *testing.T) {
	// 1 left, 3 right: left pairs with the cheap right, others inserted.
	pair := func(i, j int) float64 { return float64(j + 1) }
	res := Bipartite(1, 3, pair, constf(50), constf(4))
	// Options: pair with j=0 (1) + insert two (8) = 9.
	if res.Cost != 9 {
		t.Fatalf("cost = %g, want 9", res.Cost)
	}
	if len(res.Pairs) != 1 || res.Pairs[0] != [2]int{0, 0} {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	if j, ok := res.Matched(0); !ok || j != 0 {
		t.Fatalf("Matched(0) = %d,%v", j, ok)
	}
}

func TestBipartiteEmpty(t *testing.T) {
	res := Bipartite(0, 0, nil, nil, nil)
	if res.Cost != 0 || len(res.Pairs) != 0 {
		t.Fatalf("empty problem should be free, got %+v", res)
	}
}

// bruteBipartite enumerates all one-to-one partial matchings.
func bruteBipartite(m, n int, pair func(i, j int) float64, del func(int) float64, ins func(int) float64) float64 {
	best := math.Inf(1)
	assign := make([]int, m) // -1 = deleted, else right index
	usedR := make([]bool, n)
	var rec func(i int)
	rec = func(i int) {
		if i == m {
			total := 0.0
			for l, r := range assign {
				if r < 0 {
					total += del(l)
				} else {
					total += pair(l, r)
				}
			}
			for r := 0; r < n; r++ {
				if !usedR[r] {
					total += ins(r)
				}
			}
			if total < best {
				best = total
			}
			return
		}
		assign[i] = -1
		rec(i + 1)
		for r := 0; r < n; r++ {
			if !usedR[r] {
				usedR[r] = true
				assign[i] = r
				rec(i + 1)
				usedR[r] = false
			}
		}
		assign[i] = -1
	}
	rec(0)
	return best
}

func TestBipartiteAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		m, n := rng.Intn(5), rng.Intn(5)
		pc := make([][]float64, m)
		for i := range pc {
			pc[i] = make([]float64, n)
			for j := range pc[i] {
				pc[i][j] = float64(rng.Intn(20))
			}
		}
		dels := make([]float64, m)
		for i := range dels {
			dels[i] = float64(rng.Intn(20))
		}
		inss := make([]float64, n)
		for j := range inss {
			inss[j] = float64(rng.Intn(20))
		}
		pair := func(i, j int) float64 { return pc[i][j] }
		del := func(i int) float64 { return dels[i] }
		ins := func(j int) float64 { return inss[j] }
		got := Bipartite(m, n, pair, del, ins)
		want := bruteBipartite(m, n, pair, del, ins)
		if math.Abs(got.Cost-want) > 1e-9 {
			t.Fatalf("trial %d (m=%d n=%d): hungarian %g, brute force %g", trial, m, n, got.Cost, want)
		}
		// The reported pairs must account for the reported cost.
		total := 0.0
		usedL := map[int]bool{}
		usedR := map[int]bool{}
		for _, p := range got.Pairs {
			if usedL[p[0]] || usedR[p[1]] {
				t.Fatalf("trial %d: pair reuse in %v", trial, got.Pairs)
			}
			usedL[p[0]], usedR[p[1]] = true, true
			total += pc[p[0]][p[1]]
		}
		for i := 0; i < m; i++ {
			if !usedL[i] {
				total += dels[i]
			}
		}
		for j := 0; j < n; j++ {
			if !usedR[j] {
				total += inss[j]
			}
		}
		if math.Abs(total-got.Cost) > 1e-9 {
			t.Fatalf("trial %d: pairs total %g != reported %g", trial, total, got.Cost)
		}
	}
}

// bruteNonCrossing enumerates monotone matchings.
func bruteNonCrossing(m, n int, pair func(i, j int) float64, del func(int) float64, ins func(int) float64) float64 {
	memo := make(map[[2]int]float64)
	var rec func(i, j int) float64
	rec = func(i, j int) float64 {
		if i == m {
			total := 0.0
			for r := j; r < n; r++ {
				total += ins(r)
			}
			return total
		}
		if j == n {
			total := 0.0
			for l := i; l < m; l++ {
				total += del(l)
			}
			return total
		}
		k := [2]int{i, j}
		if v, ok := memo[k]; ok {
			return v
		}
		best := math.Min(rec(i+1, j)+del(i), rec(i, j+1)+ins(j))
		best = math.Min(best, rec(i+1, j+1)+pair(i, j))
		memo[k] = best
		return best
	}
	return rec(0, 0)
}

func TestNonCrossingAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		m, n := rng.Intn(6), rng.Intn(6)
		pc := make([][]float64, m)
		for i := range pc {
			pc[i] = make([]float64, n)
			for j := range pc[i] {
				pc[i][j] = float64(rng.Intn(20))
			}
		}
		dels := make([]float64, m)
		for i := range dels {
			dels[i] = float64(rng.Intn(20))
		}
		inss := make([]float64, n)
		for j := range inss {
			inss[j] = float64(rng.Intn(20))
		}
		pair := func(i, j int) float64 { return pc[i][j] }
		del := func(i int) float64 { return dels[i] }
		ins := func(j int) float64 { return inss[j] }
		got := NonCrossing(m, n, pair, del, ins)
		want := bruteNonCrossing(m, n, pair, del, ins)
		if math.Abs(got.Cost-want) > 1e-9 {
			t.Fatalf("trial %d (m=%d n=%d): dp %g, brute force %g", trial, m, n, got.Cost, want)
		}
		// Pairs must be strictly increasing in both coordinates.
		for k := 1; k < len(got.Pairs); k++ {
			if got.Pairs[k][0] <= got.Pairs[k-1][0] || got.Pairs[k][1] <= got.Pairs[k-1][1] {
				t.Fatalf("trial %d: crossing pairs %v", trial, got.Pairs)
			}
		}
	}
}

func TestNonCrossingForbidsCrossing(t *testing.T) {
	// Pair costs strongly favor the crossing matching (0,1),(1,0);
	// non-crossing must refuse it.
	pc := [][]float64{
		{100, 0},
		{0, 100},
	}
	res := NonCrossing(2, 2, mat(pc), constf(10), constf(10))
	// Best monotone options: match (0,0)&(1,1) = 200, match (0,1) +
	// del 1 + ins 0 = 0+10+10 = 20, etc.
	if res.Cost != 20 {
		t.Fatalf("cost = %g, want 20", res.Cost)
	}
	bip := Bipartite(2, 2, mat(pc), constf(10), constf(10))
	if bip.Cost != 0 {
		t.Fatalf("unrestricted matching should take the crossing for 0, got %g", bip.Cost)
	}
}
